// Concurrent stress tests: hammer malloc/free (with size churn that
// drives slab morphing) from many goroutines on every allocator. The
// point is not the numbers but the data-race and crash surface — run
// with `go test -race`. The lock-free page map means Free's slab lookup
// races with concurrent slab publication and retirement by design; the
// race detector checks the atomic publish protocol holds up.
package nvalloc

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/experiment"
	"nvalloc/internal/pmem"
)

// stressAllocators covers the three NVAlloc variants and the five
// baselines — every heap implementation in the repository.
var stressAllocators = []string{
	"PMDK", "nvm_malloc", "PAllocator", "Makalu", "Ralloc",
	"NVAlloc-LOG", "NVAlloc-GC", "NVAlloc-IC",
}

func TestConcurrentStressAllAllocators(t *testing.T) {
	stressAll(t, experiment.OpenHeap)
}

// TestConcurrentStressAllAllocatorsReal is the same stress run on the
// direct device. The simulated device serializes every access behind
// per-line locks, which can hide ordering races between allocator-level
// atomics; real mode removes that accidental synchronization, so this is
// the variant where `go test -race` exercises the allocators' own
// publish protocols at full concurrency. Standing test: runs in every
// `go test ./...`, not just under -race.
func TestConcurrentStressAllAllocatorsReal(t *testing.T) {
	stressAll(t, experiment.OpenHeapDirect)
}

func stressAll(t *testing.T, open func(name string, cfg experiment.Config) (alloc.Heap, error)) {
	ops := 4000
	if testing.Short() {
		ops = 600
	}
	for _, name := range stressAllocators {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := experiment.Config{DeviceBytes: 128 << 20}
			h, err := open(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			const workers = 4
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs <- stressWorker(h.NewThread(), rand.New(rand.NewSource(int64(w))), ops)
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// stressWorker mixes small and large malloc/free with phases of
// size-class churn: fill a class, free most of it, then allocate a
// different class so partially-empty slabs become morph candidates and
// old-class blocks get freed through the slow path.
func stressWorker(th interface {
	Malloc(size uint64) (pmem.PAddr, error)
	Free(addr pmem.PAddr) error
	Close()
}, rng *rand.Rand, ops int) error {
	defer th.Close()
	classes := []uint64{32, 64, 96, 192, 512, 1024}
	var live []pmem.PAddr
	for i := 0; i < ops; i++ {
		switch {
		case len(live) > 0 && (rng.Intn(3) == 0 || len(live) > 256):
			k := rng.Intn(len(live))
			p := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := th.Free(p); err != nil {
				return fmt.Errorf("free %#x: %w", p, err)
			}
		case rng.Intn(64) == 0:
			// Occasional extent keeps the large path in the mix.
			p, err := th.Malloc(32 << 10)
			if err != nil {
				return fmt.Errorf("malloc large: %w", err)
			}
			live = append(live, p)
		default:
			size := classes[(i/97)%len(classes)] // phase through classes
			p, err := th.Malloc(size)
			if err != nil {
				return fmt.Errorf("malloc %d: %w", size, err)
			}
			live = append(live, p)
		}
		// Periodically drop most of the live set so slab usage sinks
		// below the SU threshold and morphing can fire.
		if i > 0 && i%701 == 0 {
			keep := len(live) / 10
			for len(live) > keep {
				p := live[len(live)-1]
				live = live[:len(live)-1]
				if err := th.Free(p); err != nil {
					return fmt.Errorf("churn free %#x: %w", p, err)
				}
			}
		}
	}
	for _, p := range live {
		if err := th.Free(p); err != nil {
			return fmt.Errorf("final free %#x: %w", p, err)
		}
	}
	return nil
}
