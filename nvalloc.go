// Package nvalloc is a Go reproduction of NVAlloc (Dang et al.,
// ASPLOS 2022): a fast, fail-safe persistent memory allocator that
// rethinks heap metadata management with three techniques —
//
//   - interleaved mapping: slab bitmap bits, WAL entries and
//     bookkeeping-log entries of consecutive operations land in different
//     CPU cache lines, eliminating cache line reflushes;
//   - slab morphing: mostly-empty slabs transform crash-consistently
//     between size classes, removing the fragmentation of static slab
//     segregation;
//   - log-structured bookkeeping: large-allocation metadata is appended
//     to a sequential persistent log instead of updated in place,
//     removing small random writes.
//
// Because real Optane hardware is not assumed, the allocator runs on a
// simulated persistent memory device (see NewDevice) that models flush
// latency, reflush distance, sequential/random write asymmetry, XPBuffer
// pressure, ADR/eADR persistence domains and power-failure crashes, with
// a deterministic virtual-time model for multi-threaded contention. All
// of the paper's experiments regenerate on top of it (see cmd/nvbench).
//
// # Quick start
//
//	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: 1 << 30})
//	heap, err := nvalloc.Create(dev, nvalloc.Options{})
//	th := heap.NewThread()        // one per goroutine
//	p, err := th.Malloc(128)      // persistent address (device offset)
//	err = th.Free(p)
//
// For crash-safe pointers, publish allocations into root slots:
//
//	p, err := th.MallocTo(heap.RootSlot(0), 128)
//	// ... crash ...
//	heap, recoveryNS, err := nvalloc.Open(dev, nvalloc.Options{})
//	p = nvalloc.PAddr(dev.ReadU64(heap.RootSlot(0))) // still valid
package nvalloc

import (
	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

// PAddr is a persistent address: a byte offset into the device.
type PAddr = pmem.PAddr

// Null is the zero PAddr.
const Null = pmem.Null

// Device is a simulated persistent memory device.
type Device = pmem.Device

// DeviceConfig configures a Device.
type DeviceConfig = pmem.Config

// Persistence-domain modes.
const (
	// ModeADR requires explicit flushes for persistence (default).
	ModeADR = pmem.ModeADR
	// ModeEADR places CPU caches in the persistence domain.
	ModeEADR = pmem.ModeEADR
)

// NewDevice creates a simulated persistent memory device.
func NewDevice(cfg DeviceConfig) *Device { return pmem.New(cfg) }

// Variant selects the crash-consistency model.
type Variant = core.Variant

// Consistency variants.
const (
	// LOG is NVAlloc-LOG: WAL-based, strongly consistent.
	LOG = core.LOG
	// GC is NVAlloc-GC: post-crash conservative GC, weakly consistent.
	GC = core.GC
	// IC is NVAlloc-IC: internal collection — eager bitmap persistence
	// with no WAL; applications resolve crash-time leaks by iterating
	// Heap.Objects (the paper's future-work variant).
	IC = core.IC
)

// Object is a live allocation reported by Heap.Objects.
type Object = core.Object

// Options configures a heap; the zero value gives the paper's defaults
// for NVAlloc-LOG. See core.Options for every knob.
type Options struct {
	// Variant selects NVAlloc-LOG (default) or NVAlloc-GC.
	Variant Variant
	// Arenas is the number of per-core arenas (default 16).
	Arenas int
	// Stripes is the interleaved-mapping stripe count (default 6).
	Stripes int
	// SU is the slab morphing space-utilization threshold (default 0.20).
	SU float64
	// DisableInterleaving turns off interleaved mapping everywhere (the
	// recommended setting on eADR devices, where flushes are free; Create
	// applies it automatically for eADR devices unless ForceInterleaving).
	DisableInterleaving bool
	// ForceInterleaving keeps interleaving on even on eADR.
	ForceInterleaving bool
	// DisableMorphing turns off slab morphing.
	DisableMorphing bool
	// Advanced exposes every internal toggle; when non-nil it overrides
	// all the fields above.
	Advanced *core.Options
}

func (o Options) toCore(dev *Device) core.Options {
	if o.Advanced != nil {
		return *o.Advanced
	}
	c := core.DefaultOptions(o.Variant)
	if o.Arenas > 0 {
		c.Arenas = o.Arenas
	}
	if o.Stripes > 0 {
		c.Stripes = o.Stripes
	}
	if o.SU > 0 {
		c.SU = o.SU
	}
	if o.DisableMorphing {
		c.Morphing = false
	}
	off := o.DisableInterleaving || (dev.EADR() && !o.ForceInterleaving)
	if off {
		// The paper disables interleaved mapping on eADR
		// (pmem_has_auto_flush() detection, Section 6.7).
		c.InterleaveBitmap = false
		c.InterleaveTcache = false
		c.InterleaveWAL = false
	}
	return c
}

// Heap is a persistent heap backed by a Device.
type Heap struct {
	*core.Heap
}

// Thread is a per-goroutine allocation handle.
type Thread = alloc.Thread

// NumRootSlots is the number of persistent root pointers per heap.
const NumRootSlots = alloc.NumRootSlots

// Create formats dev as a fresh NVAlloc heap.
func Create(dev *Device, opts Options) (*Heap, error) {
	h, err := core.Create(dev, opts.toCore(dev))
	if err != nil {
		return nil, err
	}
	return &Heap{h}, nil
}

// Open recovers an existing heap from dev after a restart or crash and
// returns the virtual nanoseconds the recovery consumed.
func Open(dev *Device, opts Options) (*Heap, int64, error) {
	h, ns, err := core.Open(dev, opts.toCore(dev))
	if err != nil {
		return nil, 0, err
	}
	return &Heap{h}, ns, nil
}

// Check opens a throwaway clone of dev and reports everything wrong
// with the heap image, without modifying it. Empty means the image
// opens cleanly.
func Check(dev *Device, opts Options) []string {
	return core.Check(dev, opts.toCore(dev))
}

// Scavenge repairs a damaged heap image in place — conservatively, by
// quarantining or dropping damaged structures — until it opens cleanly,
// then returns the heap and a description of every repair made.
func Scavenge(dev *Device, opts Options) (*Heap, []string, error) {
	h, repairs, err := core.Scavenge(dev, opts.toCore(dev))
	if err != nil {
		return nil, repairs, err
	}
	return &Heap{h}, repairs, nil
}

// Allocator errors re-exported for callers.
var (
	ErrOutOfMemory = alloc.ErrOutOfMemory
	ErrBadAddress  = alloc.ErrBadAddress
	ErrBadSize     = alloc.ErrBadSize
	ErrClosed      = alloc.ErrClosed
	// ErrCorrupted is the sentinel wrapped by every corruption error
	// detected while opening or recovering a heap (match with errors.Is;
	// get the region/address detail with errors.As on *pmem.CorruptError).
	ErrCorrupted = pmem.ErrCorrupted
)
