#!/usr/bin/env python3
"""Compare an `nvbench -exp crashmc` CSV dump against crashmc_baseline.json.

Usage: check_crashmc.py <out-dir>

Enforced (see the baseline's comment field):
  - serial sweep: per-allocator boundary floors, 100% coverage, zero
    oracle violations, every required torn line class exercised;
  - concurrent families: per-family conflicting-pair floors, DPOR
    pruning at or above min_pruning, at least min_schedules_run variant
    schedules executed, and zero violations across every explored
    schedule x boundary.

Exits non-zero with a list of regressions. Regenerate the baseline
(never in CI) with: go run ./cmd/nvbench -exp crashmc -crashmc.update
"""
import csv
import json
import sys

outdir = sys.argv[1] if len(sys.argv) > 1 else "crashmc_out"
base = json.load(open("crashmc_baseline.json"))
fail = []

# Table 0: headline serial coverage. Table 1: torn classes.
head = {r["allocator"]: r for r in csv.DictReader(open(f"{outdir}/crashmc_table0.csv"))
        if r["allocator"]}
torn = {}
for r in csv.DictReader(open(f"{outdir}/crashmc_table1.csv")):
    if int(r["torn"] or 0) > 0:
        torn.setdefault(r["allocator"], set()).add(r["class"])

for name, floor in base["min_boundaries"].items():
    r = head.get(name)
    if r is None:
        fail.append(f"{name}: missing from report")
        continue
    try:
        b, e, v = int(r["boundaries"]), int(r["explored"]), int(r["violations"])
    except ValueError:
        fail.append(f"{name}: {r['boundaries']}")
        continue
    if b < floor:
        fail.append(f"{name}: {b} boundaries < baseline floor {floor}")
    if e < b:
        fail.append(f"{name}: coverage {e}/{b} < 100%")
    if v and base["require_zero_violations"]:
        fail.append(f"{name}: {v} oracle violations")
    print(f"{name}: {b} boundaries (floor {floor}), {e} explored, {v} violations")
for name, req in base["required_torn_classes"].items():
    missing = set(req) - torn.get(name, set())
    if missing:
        fail.append(f"{name}: torn sweep missed line classes {sorted(missing)}")

# Table 3: the concurrent families' DPOR schedule enumeration.
conc = base.get("concurrent")
if conc:
    rows = [r for r in csv.DictReader(open(f"{outdir}/crashmc_table3.csv"))
            if r["allocator"]]
    seen = set()
    for r in rows:
        who = f"{r['allocator']}/{r['family']}"
        try:
            conflicts = int(r["conflicts"])
            run = int(r["schedules_run"])
            pruning = float(r["pruning"].rstrip("%")) / 100
            v = int(r["violations"])
        except ValueError:
            fail.append(f"{who}: {r['conflicts']}")
            continue
        seen.add(r["family"])
        floor = conc["min_conflicts"].get(r["family"])
        if floor is not None and conflicts < floor:
            fail.append(f"{who}: {conflicts} conflicting pairs < baseline floor {floor}")
        if run < conc["min_schedules_run"]:
            fail.append(f"{who}: only {run} variant schedules executed")
        if pruning < conc["min_pruning"]:
            fail.append(f"{who}: DPOR pruned {pruning:.0%} of the naive "
                        f"schedule space < floor {conc['min_pruning']:.0%}")
        if v and conc["require_zero_violations"]:
            fail.append(f"{who}: {v} oracle violations under variant schedules")
        print(f"{who}: {conflicts} conflicts (floor {floor}), {run} schedules, "
              f"{pruning:.0%} pruned, {v} violations")
    missing = set(conc["min_conflicts"]) - seen
    if missing:
        fail.append(f"concurrent families missing from report: {sorted(missing)}")

# Table 4: the fence-elision family. Every merged post-commit fence on
# the LOG hot paths is proven by this trace: full coverage, zero
# violations, and both at-risk line classes (wal-entry, bitmap-stripe)
# explored clean and torn.
fence = base.get("fence_elision")
if fence:
    rows = [r for r in csv.DictReader(open(f"{outdir}/crashmc_table4.csv"))
            if r["allocator"]]
    if not rows:
        fail.append("fence-elision family missing from report")
    for r in rows:
        who = f"{r['allocator']}/fence-elision"
        try:
            b, e, v = int(r["boundaries"]), int(r["explored"]), int(r["violations"])
            cls = {"wal-entry": (int(r["wal_clean"]), int(r["wal_torn"])),
                   "bitmap-stripe": (int(r["bitmap_clean"]), int(r["bitmap_torn"]))}
        except ValueError:
            fail.append(f"{who}: {r['boundaries']}")
            continue
        if b < fence["min_boundaries"]:
            fail.append(f"{who}: {b} boundaries < baseline floor {fence['min_boundaries']}")
        if e < b:
            fail.append(f"{who}: coverage {e}/{b} < 100%")
        if v and base["require_zero_violations"]:
            fail.append(f"{who}: {v} oracle violations")
        for c in fence["require_classes_clean"]:
            if cls.get(c, (0, 0))[0] == 0:
                fail.append(f"{who}: no clean boundary with a {c} line in flight")
        for c in fence["require_classes_torn"]:
            if cls.get(c, (0, 0))[1] == 0:
                fail.append(f"{who}: no torn variant of an in-flight {c} line")
        print(f"{who}: {b} boundaries (floor {fence['min_boundaries']}), "
              f"{e} explored, {v} violations, classes {cls}")

if fail:
    sys.exit("crashmc coverage regression:\n  " + "\n  ".join(fail))
print("coverage baseline satisfied")
