package nvalloc

import (
	"math/rand"
	"strings"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/experiment"
	"nvalloc/internal/pmem"
)

// TestModeEquivalence is the differential check between the two execution
// modes: at one thread, the simulated device and the direct device must
// produce bit-identical allocation behaviour — the same address for every
// Malloc in a deterministic script, and the same Used/Peak accounting.
// The modes differ only in how time and flushes are charged; if an
// address ever diverges, device state (Mode/EADR/Size or the layout
// derived from them) has leaked into an allocation decision and the
// wall-clock numbers no longer describe the simulated allocator.
func TestModeEquivalence(t *testing.T) {
	cfg := experiment.Config{DeviceBytes: 128 << 20}
	for _, name := range stressAllocators {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sim, err := experiment.OpenHeap(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dir, err := experiment.OpenHeapDirect(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			simAddrs := modeScript(t, sim)
			dirAddrs := modeScript(t, dir)
			if len(simAddrs) != len(dirAddrs) {
				t.Fatalf("op count diverged: simulated %d, direct %d", len(simAddrs), len(dirAddrs))
			}
			for i := range simAddrs {
				if simAddrs[i] != dirAddrs[i] {
					t.Fatalf("address %d diverged: simulated %#x, direct %#x", i, simAddrs[i], dirAddrs[i])
				}
			}
			if s, d := sim.Used(), dir.Used(); s != d {
				t.Fatalf("Used diverged: simulated %d, direct %d", s, d)
			}
			if s, d := sim.Peak(), dir.Peak(); s != d {
				t.Fatalf("Peak diverged: simulated %d, direct %d", s, d)
			}
		})
	}
}

// TestVirtualTimeTablesGolden pins a deterministic virtual-time table to
// the output captured before the device-interface refactor (verified
// bit-identical across the pre/post trees): any drift means the real-mode
// work moved a flush or a fence in the simulation, which the execution-
// mode split promises never to do. fig1a is all single-threaded cells, so
// it is bit-stable under any scheduler and any engine worker count.
func TestVirtualTimeTablesGolden(t *testing.T) {
	const golden = `
== fig1a: Ratio of cache line reflushes vs regular flushes (1 thread) ==
  benchmark     allocator   reflush%  flush%
  Threadtest    PMDK        66.5%     33.5%
  Threadtest    nvm_malloc  74.8%     25.2%
  Threadtest    PAllocator  70.9%     29.1%
  Prod-con      PMDK        66.6%     33.4%
  Prod-con      nvm_malloc  74.9%     25.1%
  Prod-con      PAllocator  74.6%     25.4%
  Shbench       PMDK        41.1%     58.9%
  Shbench       nvm_malloc  37.3%     62.7%
  Shbench       PAllocator  30.7%     69.3%
  Larson-small  PMDK        41.9%     58.1%
  Larson-small  nvm_malloc  38.5%     61.5%
  Larson-small  PAllocator  33.2%     66.8%
`
	cfg := experiment.Config{Threads: []int{1}, Scale: 0.2}
	tables := experiment.Experiments["fig1a"](cfg)
	if len(tables) != 1 {
		t.Fatalf("fig1a produced %d tables, want 1", len(tables))
	}
	var buf strings.Builder
	tables[0].Print(&buf)
	// Print pads every cell to column width; compare modulo the trailing
	// padding so the golden stays readable in source.
	trim := func(s string) string {
		lines := strings.Split(s, "\n")
		for i := range lines {
			lines[i] = strings.TrimRight(lines[i], " ")
		}
		return strings.Join(lines, "\n")
	}
	if got := trim(buf.String()); got != golden {
		t.Errorf("fig1a table drifted from the pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// modeScript runs a deterministic single-threaded malloc/free mix (small
// classes, extents, churn phases that trigger morphing) and returns every
// address Malloc handed out, in order.
func modeScript(t *testing.T, h alloc.Heap) []pmem.PAddr {
	t.Helper()
	th := h.NewThread()
	defer th.Close()
	rng := rand.New(rand.NewSource(7))
	classes := []uint64{32, 64, 96, 192, 512, 1024, 4096}
	var (
		addrs []pmem.PAddr
		live  []pmem.PAddr
	)
	for i := 0; i < 3000; i++ {
		switch {
		case len(live) > 0 && (rng.Intn(3) == 0 || len(live) > 200):
			k := rng.Intn(len(live))
			p := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := th.Free(p); err != nil {
				t.Fatalf("free %#x: %v", p, err)
			}
		case rng.Intn(48) == 0:
			p, err := th.Malloc(40 << 10)
			if err != nil {
				t.Fatalf("malloc extent: %v", err)
			}
			addrs = append(addrs, p)
			live = append(live, p)
		default:
			size := classes[(i/83)%len(classes)]
			p, err := th.Malloc(size)
			if err != nil {
				t.Fatalf("malloc %d: %v", size, err)
			}
			addrs = append(addrs, p)
			live = append(live, p)
		}
		if i > 0 && i%601 == 0 {
			keep := len(live) / 8
			for len(live) > keep {
				p := live[len(live)-1]
				live = live[:len(live)-1]
				if err := th.Free(p); err != nil {
					t.Fatalf("churn free %#x: %v", p, err)
				}
			}
		}
	}
	return addrs
}
