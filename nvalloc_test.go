package nvalloc

import (
	"testing"

	"nvalloc/internal/pmem"
)

func TestPublicQuickstartFlow(t *testing.T) {
	dev := NewDevice(DeviceConfig{Size: 64 << 20, Strict: true})
	heap, err := Create(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	th := heap.NewThread()
	p, err := th.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	dev.WriteU64(p, 42)
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if err := heap.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCrashRecoveryFlow(t *testing.T) {
	dev := NewDevice(DeviceConfig{Size: 64 << 20, Strict: true})
	heap, err := Create(dev, Options{Variant: LOG})
	if err != nil {
		t.Fatal(err)
	}
	th := heap.NewThread()
	p, err := th.MallocTo(heap.RootSlot(0), 256)
	if err != nil {
		t.Fatal(err)
	}
	dev.WriteU64(p, 777)
	th.Ctx().Flush(pmem.CatOther, p, 8)
	th.Ctx().Merge()
	dev.Crash()

	heap2, ns, err := Open(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ns <= 0 {
		t.Fatal("recovery time not reported")
	}
	got := PAddr(dev.ReadU64(heap2.RootSlot(0)))
	if got != p || dev.ReadU64(got) != 777 {
		t.Fatal("published object lost across crash")
	}
}

func TestEADRDisablesInterleavingAutomatically(t *testing.T) {
	dev := NewDevice(DeviceConfig{Size: 64 << 20, Mode: ModeEADR})
	opts := Options{}.toCore(dev)
	if opts.InterleaveBitmap || opts.InterleaveTcache || opts.InterleaveWAL {
		t.Fatal("interleaving must auto-disable on eADR")
	}
	forced := Options{ForceInterleaving: true}.toCore(dev)
	if !forced.InterleaveBitmap {
		t.Fatal("ForceInterleaving ignored")
	}
	adr := NewDevice(DeviceConfig{Size: 64 << 20})
	if o := (Options{}).toCore(adr); !o.InterleaveBitmap {
		t.Fatal("interleaving must default on for ADR")
	}
}

func TestOptionKnobsReachCore(t *testing.T) {
	dev := NewDevice(DeviceConfig{Size: 64 << 20})
	o := Options{Variant: GC, Arenas: 3, Stripes: 4, SU: 0.3, DisableMorphing: true}.toCore(dev)
	if o.Variant != GC || o.Arenas != 3 || o.Stripes != 4 || o.SU != 0.3 || o.Morphing {
		t.Fatalf("options not forwarded: %+v", o)
	}
}

func TestICVariantPublicSurface(t *testing.T) {
	dev := NewDevice(DeviceConfig{Size: 64 << 20, Strict: true})
	heap, err := Create(dev, Options{Variant: IC})
	if err != nil {
		t.Fatal(err)
	}
	th := heap.NewThread()
	p, err := th.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	th.Ctx().Merge()
	dev.Crash()
	heap2, _, err := Open(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	heap2.Objects(func(o Object) bool {
		if o.Addr == p {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("IC crash survivor not enumerable via Objects")
	}
}
