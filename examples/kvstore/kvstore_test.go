package main

import (
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/fptree"
	"nvalloc/internal/pmem"
)

// TestKVStoreModeEquivalence promotes the kvstore example to a tier-1
// differential test: the identical FPTree workload runs on both
// execution modes — the simulated device (through a crash and WAL-replay
// recovery) and the direct device (through a plain reopen) — and the
// final key/value states must match each other and the in-memory model
// exactly. A divergence means device mode leaked into tree or allocator
// behaviour, or recovery dropped committed state.
func TestKVStoreModeEquivalence(t *testing.T) {
	n := uint64(20000)
	if testing.Short() {
		n = 4000
	}

	model := make(map[uint64]uint64)
	for k := uint64(0); k < n; k++ {
		if k%3 != 0 {
			model[k] = k * 3
		}
	}

	// Simulated device: load, crash, recover, read back.
	simState := func() map[uint64]uint64 {
		dev := pmem.New(pmem.Config{Size: 256 << 20, Strict: true})
		h, err := core.Create(dev, core.DefaultOptions(core.LOG))
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		tree, err := fptree.Create(h, th, treeRootSlot)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := workload(th, tree, n); err != nil {
			t.Fatal(err)
		}
		th.Ctx().Merge()
		dev.Crash()

		h2, _, err := core.Open(dev, core.DefaultOptions(core.LOG))
		if err != nil {
			t.Fatalf("recover after crash: %v", err)
		}
		th2 := h2.NewThread()
		defer th2.Close()
		tree2, err := fptree.Open(h2, th2, treeRootSlot)
		if err != nil {
			t.Fatalf("reopen tree after crash: %v", err)
		}
		return snapshot(th2, tree2, n)
	}()

	// Direct device: same workload, flush-and-reopen (there is no crash
	// API in direct mode; a kill -9 on an mmap'd file is exercised by
	// the nvkv smoke drill).
	dirState := func() map[uint64]uint64 {
		dev, err := pmem.NewDirect(pmem.DirectConfig{Size: 256 << 20})
		if err != nil {
			t.Fatal(err)
		}
		h, err := core.Create(dev, core.DefaultOptions(core.LOG))
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		tree, err := fptree.Create(h, th, treeRootSlot)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := workload(th, tree, n); err != nil {
			t.Fatal(err)
		}
		if f, ok := th.(alloc.Flusher); ok {
			f.Flush()
		}
		th.Close()

		h2, _, err := core.Open(dev, core.DefaultOptions(core.LOG))
		if err != nil {
			t.Fatalf("reopen direct heap: %v", err)
		}
		th2 := h2.NewThread()
		defer th2.Close()
		tree2, err := fptree.Open(h2, th2, treeRootSlot)
		if err != nil {
			t.Fatalf("reopen direct tree: %v", err)
		}
		return snapshot(th2, tree2, n)
	}()

	if len(simState) != len(model) {
		t.Fatalf("simulated state has %d keys, model %d", len(simState), len(model))
	}
	if len(dirState) != len(model) {
		t.Fatalf("direct state has %d keys, model %d", len(dirState), len(model))
	}
	for k, want := range model {
		if got, ok := simState[k]; !ok || got != want {
			t.Fatalf("simulated: key %d = %d,%v, want %d", k, got, ok, want)
		}
		if got, ok := dirState[k]; !ok || got != want {
			t.Fatalf("direct: key %d = %d,%v, want %d", k, got, ok, want)
		}
	}
}
