// kvstore: a persistent key-value store built on FPTree (the paper's
// Section 6.3 application) over the NVAlloc heap. It loads a dataset,
// simulates a crash, recovers the heap and the tree, and verifies that
// every committed pair survived.
package main

import (
	"fmt"
	"log"

	"nvalloc"
	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/fptree"
	"nvalloc/internal/pmem"
)

const treeRootSlot = 0

// workload loads n key-value pairs (every insert allocates a pair blob
// through the allocator) and deletes every third one (each delete frees
// one). The tier-1 mode-equivalence test runs the identical workload on
// both execution modes and diffs the final state.
func workload(th alloc.Thread, tree *fptree.Tree, n uint64) (deleted int, err error) {
	for k := uint64(0); k < n; k++ {
		if err := tree.Insert(th, k, k*3); err != nil {
			return deleted, err
		}
	}
	for k := uint64(0); k < n; k += 3 {
		ok, err := tree.Delete(th, k)
		if err != nil {
			return deleted, err
		}
		if ok {
			deleted++
		}
	}
	return deleted, nil
}

// snapshot reads the tree's state over the workload's key range back
// into a plain map.
func snapshot(th alloc.Thread, tree *fptree.Tree, n uint64) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for k := uint64(0); k < n; k++ {
		if v, ok := tree.Get(th, k); ok {
			m[k] = v
		}
	}
	return m
}

func main() {
	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: 512 << 20, Strict: true})
	heap, err := nvalloc.Create(dev, nvalloc.Options{Variant: nvalloc.LOG})
	if err != nil {
		log.Fatal(err)
	}

	th := heap.NewThread()
	tree, err := fptree.Create(heap.Heap, th, treeRootSlot)
	if err != nil {
		log.Fatal(err)
	}

	const n = 50000
	deleted, err := workload(th, tree, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d pairs, deleted %d, live %d\n", n, deleted, tree.Len())
	th.Ctx().Merge()

	// Power failure: everything not flushed is gone.
	dev.Crash()
	fmt.Println("-- crash --")

	// Recover the heap (WAL replay) and rebuild the tree's inner nodes
	// by walking the persistent leaf chain.
	heap2, recoveryNS, err := nvalloc.Open(dev, nvalloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heap recovered in %.2f ms of virtual time\n", float64(recoveryNS)/1e6)

	th2 := heap2.NewThread()
	tree2, err := fptree.Open(heap2.Heap, th2, treeRootSlot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree recovered: %d live pairs\n", tree2.Len())

	// Verify everything.
	bad := 0
	for k := uint64(0); k < n; k++ {
		v, ok := tree2.Get(th2, k)
		wantDeleted := k%3 == 0
		switch {
		case wantDeleted && ok:
			bad++
		case !wantDeleted && (!ok || v != k*3):
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("%d pairs corrupted after recovery", bad)
	}
	fmt.Println("all pairs verified after crash recovery")

	// The store keeps working.
	if err := tree2.Insert(th2, 1<<40, 42); err != nil {
		log.Fatal(err)
	}
	if v, ok := tree2.Get(th2, 1<<40); !ok || v != 42 {
		log.Fatal("post-recovery insert failed")
	}
	th2.Close()
	if err := heap2.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done")
}

// Compile-time documentation of the public surface this example uses.
var (
	_ func() *core.Heap = func() *core.Heap { return (&nvalloc.Heap{}).Heap }
	_ pmem.PAddr        = nvalloc.Null
	_ *pmem.Device      = (*nvalloc.Device)(nil)
)
