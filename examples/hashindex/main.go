// hashindex: a persistent hash index (internal/phash) as a session store.
// Loads sessions, crashes, recovers in O(1) (the index needs no rebuild —
// buckets are persistent), and verifies every committed session.
package main

import (
	"fmt"
	"log"

	"nvalloc"
	"nvalloc/internal/phash"
)

func main() {
	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: 512 << 20, Strict: true})
	heap, err := nvalloc.Create(dev, nvalloc.Options{Variant: nvalloc.LOG})
	if err != nil {
		log.Fatal(err)
	}
	th := heap.NewThread()

	idx, err := phash.Create(heap.Heap, th, 0, 4096, 64)
	if err != nil {
		log.Fatal(err)
	}

	// Store 100k sessions: key = session ID, value = user ID.
	const sessions = 100000
	for sid := uint64(0); sid < sessions; sid++ {
		if err := idx.Put(th, sid, sid%977); err != nil {
			log.Fatal(err)
		}
	}
	// Expire a third of them.
	expired := 0
	for sid := uint64(0); sid < sessions; sid += 3 {
		ok, err := idx.Delete(th, sid)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			expired++
		}
	}
	fmt.Printf("stored %d sessions, expired %d, live %d\n", sessions, expired, idx.Len())
	th.Ctx().Merge()

	dev.Crash()
	fmt.Println("-- crash --")

	heap2, ns, err := nvalloc.Open(dev, nvalloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	th2 := heap2.NewThread()
	idx2, err := phash.Open(heap2.Heap, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %.2f ms virtual time; index attached with no rebuild\n", float64(ns)/1e6)

	bad := 0
	for sid := uint64(0); sid < sessions; sid++ {
		v, ok := idx2.Get(th2, sid)
		if sid%3 == 0 {
			if ok {
				bad++
			}
		} else if !ok || v != sid%977 {
			bad++
		}
	}
	if bad != 0 {
		log.Fatalf("%d sessions corrupted", bad)
	}
	fmt.Printf("all %d live sessions verified after crash\n", idx2.Len())
	th2.Close()
	if err := heap2.Close(); err != nil {
		log.Fatal(err)
	}
}
