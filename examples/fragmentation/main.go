// fragmentation: shows slab morphing defeating static slab segregation.
// The workload allocates a size class, frees most of it, then switches to
// a different size class — the scenario where classic allocators strand
// nearly empty slabs (Section 3.2) and NVAlloc morphs them (Section 5.2).
package main

import (
	"fmt"
	"log"

	"nvalloc"
)

func run(morphing bool) (peak uint64, morphs uint64) {
	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: 1 << 30})
	heap, err := nvalloc.Create(dev, nvalloc.Options{
		Variant:         nvalloc.LOG,
		Arenas:          1,
		DisableMorphing: !morphing,
	})
	if err != nil {
		log.Fatal(err)
	}
	th := heap.NewThread()
	defer th.Close()

	// Phase 1: 100k objects of 100 B.
	var ptrs []nvalloc.PAddr
	for i := 0; i < 100000; i++ {
		p, err := th.Malloc(100)
		if err != nil {
			log.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Phase 2: free ~97% at random positions — every slab keeps a few
	// live blocks, so none can be returned.
	for i, p := range ptrs {
		if i%32 != 0 {
			if err := th.Free(p); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Phase 3: the workload switches to 1000 B objects.
	for i := 0; i < 10000; i++ {
		if _, err := th.Malloc(1000); err != nil {
			log.Fatal(err)
		}
	}
	m, _ := heap.MorphStats()
	return heap.Peak(), m
}

func main() {
	withPeak, morphs := run(true)
	withoutPeak, _ := run(false)
	fmt.Printf("workload: 100k x 100 B, free 97%%, then 10k x 1000 B\n\n")
	fmt.Printf("static slab segregation:  peak %6.1f MiB\n", float64(withoutPeak)/(1<<20))
	fmt.Printf("with slab morphing:       peak %6.1f MiB  (%d slabs morphed)\n",
		float64(withPeak)/(1<<20), morphs)
	fmt.Printf("memory saved:             %.1f%%\n", 100*(1-float64(withPeak)/float64(withoutPeak)))
}
