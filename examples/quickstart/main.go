// Quickstart: create a simulated persistent memory device, format it as
// an NVAlloc heap, allocate and free objects, and inspect the flush
// statistics that drive the paper's results.
package main

import (
	"fmt"
	"log"

	"nvalloc"
)

func main() {
	// A 256 MiB simulated persistent memory device (ADR mode: data is
	// durable only after an explicit flush, as on real Optane).
	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: 256 << 20})

	// Format it as an NVAlloc-LOG heap (strongly consistent variant).
	heap, err := nvalloc.Create(dev, nvalloc.Options{Variant: nvalloc.LOG})
	if err != nil {
		log.Fatal(err)
	}

	// Each goroutine gets its own Thread handle (with its own tcache).
	th := heap.NewThread()

	// Small allocations come from 64 KiB slabs with interleaved bitmaps.
	small, err := th.Malloc(100)
	if err != nil {
		log.Fatal(err)
	}
	dev.WriteU64(small, 0xC0FFEE)
	fmt.Printf("small object at %#x (100 B -> rounded to its size class)\n", small)

	// Large allocations (> 16 KiB) go through the extent allocator and
	// the log-structured bookkeeping log.
	big, err := th.Malloc(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("large extent at %#x (1 MiB)\n", big)

	// Crash-safe allocation: MallocTo persists the new address into a
	// root slot, so the object is reachable after a restart.
	durable, err := th.MallocTo(heap.RootSlot(0), 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("durable object at %#x, anchored in root slot 0\n", durable)

	// Free everything.
	for _, p := range []nvalloc.PAddr{small, big} {
		if err := th.Free(p); err != nil {
			log.Fatal(err)
		}
	}
	if err := th.FreeFrom(heap.RootSlot(0)); err != nil {
		log.Fatal(err)
	}

	th.Close()
	stats := dev.Stats()
	fmt.Printf("\nflush profile: %d flushes, %d reflushes (%.1f%%), %d sequential, %d random\n",
		stats.Flushes, stats.Reflushes, 100*stats.ReflushRatio(),
		stats.SeqFlushes, stats.RandFlushes)
	fmt.Printf("virtual time spent: %.2f us\n", float64(stats.MaxClockNS)/1e3)

	if err := heap.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean shutdown complete")
}
