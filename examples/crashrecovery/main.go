// crashrecovery: demonstrates both consistency models surviving a power
// failure at an arbitrary point, including a crash in the middle of a
// slab morph (the paper's Section 5.2 flag-based undo).
package main

import (
	"fmt"
	"log"

	"nvalloc"
	"nvalloc/internal/pmem"
)

func main() {
	demoVariant(nvalloc.LOG)
	demoVariant(nvalloc.GC)
	demoInternalCollection()
	demoMorphCrash()
}

// demoInternalCollection shows the NVAlloc-IC model: nothing is lost at a
// crash — the application walks the collection and decides what to keep.
func demoInternalCollection() {
	fmt.Println("=== NVAlloc-IC (internal collection) ===")
	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: 256 << 20, Strict: true})
	heap, err := nvalloc.Create(dev, nvalloc.Options{Variant: nvalloc.IC})
	if err != nil {
		log.Fatal(err)
	}
	th := heap.NewThread()
	// Tag each object so the post-crash walk can recognize the keepers.
	const keepTag = 0x4B454550 // "KEEP"
	for i := 0; i < 300; i++ {
		p, err := th.Malloc(64)
		if err != nil {
			log.Fatal(err)
		}
		tag := uint64(0)
		if i%3 == 0 {
			tag = keepTag
		}
		dev.WriteU64(p, tag)
		th.Ctx().Flush(pmem.CatOther, p, 8)
	}
	th.Ctx().Merge()
	dev.Crash()
	fmt.Println("power failure injected (no roots were published)")

	heap2, _, err := nvalloc.Open(dev, nvalloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	th2 := heap2.NewThread()
	kept, dropped := 0, 0
	var toFree []nvalloc.PAddr
	heap2.Objects(func(o nvalloc.Object) bool {
		if o.Slab && dev.ReadU64(o.Addr) == keepTag {
			kept++
		} else if o.Slab {
			toFree = append(toFree, o.Addr)
		}
		return true
	})
	for _, p := range toFree {
		if err := th2.Free(p); err != nil {
			log.Fatal(err)
		}
		dropped++
	}
	fmt.Printf("collection walk: kept %d tagged objects, reclaimed %d untagged\n\n", kept, dropped)
	th2.Close()
}

func demoVariant(v nvalloc.Variant) {
	fmt.Printf("=== %v ===\n", map[nvalloc.Variant]string{nvalloc.LOG: "NVAlloc-LOG (WAL)", nvalloc.GC: "NVAlloc-GC (conservative GC)"}[v])
	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: 256 << 20, Strict: true})
	heap, err := nvalloc.Create(dev, nvalloc.Options{Variant: v})
	if err != nil {
		log.Fatal(err)
	}
	th := heap.NewThread()

	// Build a persistent linked list anchored at root slot 0. Each node:
	// [next PAddr][payload u64].
	const nodes = 1000
	var head nvalloc.PAddr
	for i := 0; i < nodes; i++ {
		p, err := th.Malloc(64)
		if err != nil {
			log.Fatal(err)
		}
		dev.WriteU64(p, uint64(head))
		dev.WriteU64(p+8, uint64(i))
		th.Ctx().Flush(pmem.CatOther, p, 16)
		head = p
	}
	th.Ctx().PersistU64(pmem.CatOther, heap.RootSlot(0), uint64(head))

	// Also leak some allocations (never published anywhere).
	for i := 0; i < 500; i++ {
		if _, err := th.Malloc(64); err != nil {
			log.Fatal(err)
		}
	}
	th.Ctx().Merge()
	usedBefore := heap.Used()

	dev.Crash()
	fmt.Println("power failure injected")

	heap2, ns, err := nvalloc.Open(dev, nvalloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %.2f ms of virtual time\n", float64(ns)/1e6)

	// Walk the recovered list.
	count := 0
	for p := nvalloc.PAddr(dev.ReadU64(heap2.RootSlot(0))); p != nvalloc.Null; p = nvalloc.PAddr(dev.ReadU64(p)) {
		count++
	}
	fmt.Printf("list intact: %d/%d nodes\n", count, nodes)
	if v == nvalloc.GC {
		fmt.Printf("leak resolution: used %d MiB before crash, %d MiB after GC\n",
			usedBefore>>20, heap2.Used()>>20)
	}
	fmt.Println()
}

func demoMorphCrash() {
	fmt.Println("=== crash during a slab morph ===")
	dev := nvalloc.NewDevice(nvalloc.DeviceConfig{Size: 256 << 20, Strict: true})
	heap, err := nvalloc.Create(dev, nvalloc.Options{Variant: nvalloc.LOG, Arenas: 1})
	if err != nil {
		log.Fatal(err)
	}
	th := heap.NewThread()

	// Fill a size class, free most of it, and publish one survivor.
	var ptrs []nvalloc.PAddr
	for i := 0; i < 20000; i++ {
		p, err := th.Malloc(100)
		if err != nil {
			log.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if i%64 != 0 {
			if err := th.Free(p); err != nil {
				log.Fatal(err)
			}
		}
	}
	th.Ctx().PersistU64(pmem.CatOther, heap.RootSlot(0), uint64(ptrs[0]))
	dev.WriteU64(ptrs[0], 0xABCD)
	th.Ctx().Flush(pmem.CatOther, ptrs[0], 8)
	th.Ctx().Merge()

	// Cut the power after a handful more flushes; with morphing active on
	// the next burst of 1 KiB allocations, this frequently lands inside a
	// morph's three-step transform.
	dev.CrashAfterFlushes(25)
	th2 := heap.NewThread()
	for i := 0; i < 2000 && !dev.Crashed(); i++ {
		_, _ = th2.Malloc(1000)
	}
	th2.Ctx().Merge()
	dev.Crash()
	fmt.Println("power cut mid-morph")

	heap2, _, err := nvalloc.Open(dev, nvalloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if dev.ReadU64(ptrs[0]) != 0xABCD {
		log.Fatal("survivor lost")
	}
	th3 := heap2.NewThread()
	if err := th3.Free(ptrs[0]); err != nil {
		log.Fatalf("survivor not allocated after morph undo: %v", err)
	}
	fmt.Println("morph rolled back (or completed) consistently; survivor intact")
	th3.Close()
}
