// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, wrapping the runners in internal/experiment at a reduced
// scale. Custom metrics carry the quantities the paper plots — Mops/s of
// virtual time, reflush ratios, peak MiB, recovery milliseconds — while
// ns/op reflects the wall-clock cost of regenerating the figure.
//
// Regenerate any figure at full scale with:
//
//	go run ./cmd/nvbench -exp fig9 -threads 1,2,4,8,16
package nvalloc

import (
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/experiment"
	"nvalloc/internal/fptree"
	"nvalloc/internal/pmem"
	"nvalloc/internal/workload"
)

// benchCfg keeps figure regeneration fast enough for `go test -bench=.`.
// Workers: 0 runs experiment cells on the parallel engine (GOMAXPROCS
// workers); virtual-time metrics are identical to a serial run.
var benchCfg = experiment.Config{Threads: []int{1, 2}, Scale: 0.02, DeviceBytes: 256 << 20}

// lastCell parses the bottom-right numeric cell of a table (the headline
// configuration's result).
func lastCell(b *testing.B, t *experiment.Table) float64 {
	b.Helper()
	row := t.Rows[len(t.Rows)-1]
	v, err := strconv.ParseFloat(strings.TrimSuffix(row[len(row)-1], "%"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", row[len(row)-1], err)
	}
	return v
}

func runExperiment(b *testing.B, id string, metric string, pick func([]*experiment.Table) float64) {
	b.Helper()
	var v float64
	for i := 0; i < b.N; i++ {
		tables := experiment.Experiments[id](benchCfg)
		v = pick(tables)
	}
	b.ReportMetric(v, metric)
}

// ---- Table 1 / Table 2 ----------------------------------------------------

func BenchmarkTable1FragbenchW4(b *testing.B) {
	// Table 1 defines the Fragbench workloads; this regenerates W4's
	// peak-over-live ratio.
	for i := 0; i < b.N; i++ {
		h, err := experiment.OpenHeap("NVAlloc-LOG", benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		r := workload.Fragbench(h, workload.FragSpecs[3], workload.FragConfig{LiveBytes: 8 << 20})
		b.ReportMetric(float64(r.PeakBytes)/float64(r.LiveBytes), "peak/live")
	}
}

func BenchmarkTable2VariantMatrix(b *testing.B) {
	runExperiment(b, "table2", "rows", func(ts []*experiment.Table) float64 {
		return float64(len(ts[0].Rows))
	})
}

// ---- Figures ---------------------------------------------------------------

func BenchmarkFig01aReflushRatio(b *testing.B) {
	runExperiment(b, "fig1a", "reflush_pct_last", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig01bPeakMemory(b *testing.B) {
	runExperiment(b, "fig1b", "peak_mib_last", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig02FlushScatter(b *testing.B) {
	runExperiment(b, "fig2", "regions_last", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig09SmallStrong(b *testing.B) {
	runExperiment(b, "fig9", "nvalloc_mops", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0]) // Threadtest, max threads, NVAlloc-LOG
	})
}

// BenchmarkFig9EngineSerial and BenchmarkFig9EngineParallel regenerate
// Figure 9 with the experiment engine forced serial vs parallel; the
// ns/op ratio is the wall-clock speedup of the worker pool (the virtual
// time metrics are identical by construction).
func BenchmarkFig9EngineSerial(b *testing.B) {
	cfg := benchCfg
	cfg.Workers = 1
	for i := 0; i < b.N; i++ {
		experiment.Experiments["fig9"](cfg)
	}
}

func BenchmarkFig9EngineParallel(b *testing.B) {
	cfg := benchCfg
	cfg.Workers = 0 // GOMAXPROCS workers
	for i := 0; i < b.N; i++ {
		experiment.Experiments["fig9"](cfg)
	}
}

func BenchmarkFig10SmallWeak(b *testing.B) {
	runExperiment(b, "fig10", "nvallocgc_mops", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig11Breakdown(b *testing.B) {
	runExperiment(b, "fig11", "full_vs_base", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig12Large(b *testing.B) {
	runExperiment(b, "fig12", "nvalloc_mops", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig13Space(b *testing.B) {
	runExperiment(b, "fig13", "nvalloc_peak_mib", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig14FPTree(b *testing.B) {
	runExperiment(b, "fig14", "nvalloc_mops", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig15Fragbench(b *testing.B) {
	runExperiment(b, "fig15", "nvalloc_w4_peak_mib", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig16aStripes(b *testing.B) {
	runExperiment(b, "fig16a", "ms_32stripes", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig16bSU(b *testing.B) {
	runExperiment(b, "fig16b", "morphs_su50", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig17GCOverhead(b *testing.B) {
	runExperiment(b, "fig17", "slow_gcs", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig18Recovery(b *testing.B) {
	runExperiment(b, "fig18", "nvallocgc_ms", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig19EADRStripes(b *testing.B) {
	runExperiment(b, "fig19", "ms_32stripes", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig20EADRSmall(b *testing.B) {
	runExperiment(b, "fig20", "nvalloc_mops", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

func BenchmarkFig21EADRLarge(b *testing.B) {
	runExperiment(b, "fig21", "nvalloc_mops", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

// ---- Ablations and micro-benchmarks ----------------------------------------

func BenchmarkAblationExtentFit(b *testing.B) {
	runExperiment(b, "ablation", "firstfit_mops", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}

// BenchmarkMallocFreeSmall measures the raw hot path (real wall time per
// op, not virtual time) of NVAlloc-LOG's small allocator.
func BenchmarkMallocFreeSmall(b *testing.B) {
	dev := pmem.New(pmem.Config{Size: 256 << 20})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		b.Fatal(err)
	}
	th := h.NewThread()
	defer th.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := th.Malloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := th.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMallocFreeClass sweeps the malloc/free pair cost across
// representative size classes — the per-class trajectory CI records in
// BENCH_pr7.json and diffs against the committed snapshot, so a change
// that speeds up one class by slowing another (bitmap geometry, refill
// batch size, magazine capacity are all class-dependent) cannot hide
// inside a single-size headline number. Sizes cover the small-class
// spectrum from the minimum class through SmallMax, plus one shard-pool
// extent size for the large path.
func BenchmarkMallocFreeClass(b *testing.B) {
	for _, size := range []uint64{32, 64, 256, 1024, 4096, 16 << 10, 40 << 10} {
		b.Run(strconv.FormatUint(size, 10), func(b *testing.B) {
			dev := pmem.New(pmem.Config{Size: 512 << 20})
			h, err := core.Create(dev, core.DefaultOptions(core.LOG))
			if err != nil {
				b.Fatal(err)
			}
			th := h.NewThread()
			defer th.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := th.Malloc(size)
				if err != nil {
					b.Fatal(err)
				}
				if err := th.Free(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMallocFreeLarge measures the extent path with log-structured
// bookkeeping.
func BenchmarkMallocFreeLarge(b *testing.B) {
	dev := pmem.New(pmem.Config{Size: 512 << 20})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		b.Fatal(err)
	}
	th := h.NewThread()
	defer th.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := th.Malloc(64 << 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := th.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMallocFreeParallel measures the multi-threaded hot path (real
// wall time, GOMAXPROCS goroutines each with its own Thread): a mix of
// 64 B small blocks (tcache + batched slab refill) and 40 KiB extents
// (shard pools). Run with -benchmem: allocs/op shows the Go-side garbage
// the hot path produces, which the extent cache and the lock-only stats
// path are meant to keep flat.
func BenchmarkMallocFreeParallel(b *testing.B) {
	dev := pmem.New(pmem.Config{Size: 512 << 20})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		th := h.NewThread()
		defer th.Close()
		i := 0
		for pb.Next() {
			size := uint64(64)
			if i%8 == 7 {
				size = 40 << 10 // shard-pool path
			}
			i++
			p, err := th.Malloc(size)
			if err != nil {
				b.Error(err)
				return
			}
			if err := th.Free(p); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRealMallocFreeParallel is BenchmarkMallocFreeParallel on the
// direct device: no virtual-time model, no per-line simulation locks,
// flushes as counters. The delta against the simulated variant is the
// cost of the simulator itself; the number's own trend across commits is
// the real-concurrency hot path (reported in BENCH_pr8.json, not gated —
// wall-clock on shared CI is too noisy for a hard threshold).
func BenchmarkRealMallocFreeParallel(b *testing.B) {
	dev, err := pmem.NewDirect(pmem.DirectConfig{Size: 512 << 20})
	if err != nil {
		b.Fatal(err)
	}
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		th := h.NewThread()
		defer th.Close()
		i := 0
		for pb.Next() {
			size := uint64(64)
			if i%8 == 7 {
				size = 40 << 10 // shard-pool path
			}
			i++
			p, err := th.Malloc(size)
			if err != nil {
				b.Error(err)
				return
			}
			if err := th.Free(p); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRealMallocFreeClass is the per-class sweep on the direct
// device — wall-clock nanoseconds per malloc/free pair with the
// simulator out of the way.
func BenchmarkRealMallocFreeClass(b *testing.B) {
	for _, size := range []uint64{32, 64, 256, 1024, 4096, 16 << 10, 40 << 10} {
		b.Run(strconv.FormatUint(size, 10), func(b *testing.B) {
			dev, err := pmem.NewDirect(pmem.DirectConfig{Size: 512 << 20})
			if err != nil {
				b.Fatal(err)
			}
			h, err := core.Create(dev, core.DefaultOptions(core.LOG))
			if err != nil {
				b.Fatal(err)
			}
			th := h.NewThread()
			defer th.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := th.Malloc(size)
				if err != nil {
					b.Fatal(err)
				}
				if err := th.Free(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGoRuntimeParallel runs the same 64 B / 40 KiB mix on Go's own
// allocator — the calibration ceiling for BenchmarkRealMallocFreeParallel
// (Go persists nothing and keeps magazines per-P, so it bounds what a
// heap that must track persistent metadata could ever reach).
func BenchmarkGoRuntimeParallel(b *testing.B) {
	var sink atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		s := uint64(0)
		for pb.Next() {
			size := 64
			if i%8 == 7 {
				size = 40 << 10
			}
			i++
			p := make([]byte, size)
			p[0] = byte(i)
			s += uint64(p[0])
		}
		sink.Add(s)
	})
}

// BenchmarkRemoteFree measures the batched remote-free path: one thread
// allocates small blocks, a second thread bound to another arena frees
// them. Frees accumulate in a per-owner buffer and drain in batches —
// one owner-resource section and one trailing fence per batch instead
// of one of each per free.
func BenchmarkRemoteFree(b *testing.B) {
	dev := pmem.New(pmem.Config{Size: 512 << 20})
	opts := core.DefaultOptions(core.LOG)
	opts.Arenas = 2
	h, err := core.Create(dev, opts)
	if err != nil {
		b.Fatal(err)
	}
	thA := h.NewThread() // owner arena: allocates
	thB := h.NewThread() // other arena: frees remotely
	defer thA.Close()
	defer thB.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := thA.Malloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := thB.Free(p); err != nil {
			b.Fatal(err)
		}
	}
	thB.(alloc.Flusher).Flush()
}

// BenchmarkFPTreeInsert measures the real cost of tree inserts over the
// allocator.
func BenchmarkFPTreeInsert(b *testing.B) {
	dev := pmem.New(pmem.Config{Size: 1 << 30})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		b.Fatal(err)
	}
	th := h.NewThread()
	defer th.Close()
	tr, err := fptree.Create(h, th, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(th, rng.Uint64(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryLOG measures the real wall time of restoring a
// crashed 128 MiB heap image and running WAL-based recovery on it (the
// image is built once; each iteration reloads and recovers it).
func BenchmarkRecoveryLOG(b *testing.B) {
	dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		b.Fatal(err)
	}
	th := h.NewThread()
	var prev pmem.PAddr
	for j := 0; j < 3000; j++ {
		p, err := th.Malloc(96)
		if err != nil {
			b.Fatal(err)
		}
		dev.WriteU64(p, uint64(prev))
		th.Ctx().Flush(pmem.CatOther, p, 8)
		prev = p
	}
	th.Ctx().PersistU64(pmem.CatOther, h.RootSlot(0), uint64(prev))
	th.Ctx().Merge()
	dev.Crash()
	dir := b.TempDir()
	img := dir + "/heap.img"
	if err := dev.SaveImage(img); err != nil {
		b.Fatal(err)
	}
	// One device is reused across iterations; LoadImage restores the
	// crashed state each time. Restore and recovery are measured together
	// so the benchmark converges quickly; recovery alone is ~0.3 ms.
	d2 := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d2.LoadImage(img); err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.Open(d2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

var _ alloc.Heap = (*core.Heap)(nil)

func BenchmarkExtraHashIndex(b *testing.B) {
	runExperiment(b, "hashindex", "nvalloc_mops", func(ts []*experiment.Table) float64 {
		return lastCell(b, ts[0])
	})
}
