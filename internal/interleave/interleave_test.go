package interleave

import (
	"testing"
	"testing/quick"
)

func TestSequentialDegenerate(t *testing.T) {
	// One stripe = plain sequential layout.
	m := New(1024, 1, 1, 64)
	for i := 0; i < 1024; i++ {
		if m.BitOffset(i) != i {
			t.Fatalf("sequential layout broken at %d: %d", i, m.BitOffset(i))
		}
	}
	if m.Lines() != 2 {
		t.Fatalf("1024 bits = 2 lines, got %d", m.Lines())
	}
}

func TestConsecutiveIndicesHitDistinctLines(t *testing.T) {
	for _, s := range []int{2, 3, 4, 6, 8, 16} {
		m := New(4096, 1, s, 64)
		for i := 0; i+1 < 4096; i++ {
			a, b := m.Line(i), m.Line(i+1)
			if a == b {
				t.Fatalf("stripes=%d: indices %d,%d share line %d", s, i, i+1, a)
			}
		}
		// Stronger: any window of min(S, ReflushWindow+1) consecutive
		// indices must touch pairwise-distinct lines.
		w := s
		if w > 5 {
			w = 5
		}
		for i := 0; i+w <= 4096; i++ {
			seen := map[int]bool{}
			for j := 0; j < w; j++ {
				l := m.Line(i + j)
				if seen[l] {
					t.Fatalf("stripes=%d: window at %d reuses line %d", s, i, l)
				}
				seen[l] = true
			}
		}
	}
}

func TestMappingIsBijective(t *testing.T) {
	for _, cfg := range []struct{ n, bits, s int }{
		{100, 1, 6}, {8192, 1, 6}, {128, 64, 4}, {1000, 16, 3}, {7, 8, 6},
	} {
		m := New(cfg.n, cfg.bits, cfg.s, 64)
		seen := make(map[int]int, cfg.n)
		for i := 0; i < cfg.n; i++ {
			off := m.BitOffset(i)
			if off%cfg.bits != 0 {
				t.Fatalf("offset %d not aligned to unit size %d", off, cfg.bits)
			}
			if prev, dup := seen[off]; dup {
				t.Fatalf("cfg %+v: offset %d assigned to both %d and %d", cfg, off, prev, i)
			}
			seen[off] = i
			if off >= m.SizeBytes()*8 {
				t.Fatalf("offset %d beyond region %d bits", off, m.SizeBytes()*8)
			}
		}
	}
}

func TestIndexInverse(t *testing.T) {
	m := New(1000, 8, 6, 64)
	for i := 0; i < 1000; i++ {
		line := m.Line(i)
		slotBit := m.BitOffset(i) - line*64*8
		slot := slotBit / 8
		if got := m.Index(line, slot); got != i {
			t.Fatalf("Index(%d,%d) = %d, want %d", line, slot, got, i)
		}
	}
	if m.Index(0, 64) != -1 {
		t.Fatal("overflowing slot must return -1")
	}
}

func TestIndexInverseProperty(t *testing.T) {
	m := New(4096, 1, 6, 64)
	f := func(raw uint16) bool {
		i := int(raw) % 4096
		line := m.Line(i)
		slot := (m.BitOffset(i) - line*512)
		return m.Index(line, slot) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStripeAssignment(t *testing.T) {
	m := New(100, 1, 6, 64)
	for i := 0; i < 100; i++ {
		if m.Stripe(i) != i%6 {
			t.Fatalf("stripe of %d: %d", i, m.Stripe(i))
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	// 8192 one-bit units over 6 stripes: longest stripe holds
	// ceil(8192/6)=1366 bits -> 3 lines each of 512 bits -> 18 lines.
	m := New(8192, 1, 6, 64)
	if m.Lines() != 18 || m.SizeBytes() != 18*64 {
		t.Fatalf("lines=%d size=%d", m.Lines(), m.SizeBytes())
	}
	if m.Count() != 8192 || m.Stripes() != 6 {
		t.Fatal("accessors wrong")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero count", func() { New(0, 1, 1, 64) })
	mustPanic("zero stripes", func() { New(1, 1, 0, 64) })
	mustPanic("bad unit", func() { New(1, 3, 1, 64) })
	m := New(10, 1, 2, 64)
	mustPanic("index oob", func() { m.BitOffset(10) })
	mustPanic("index neg", func() { m.BitOffset(-1) })
}

func TestByteOffset(t *testing.T) {
	m := New(256, 64, 6, 64) // 8-byte units, 8 per line
	for i := 0; i < 256; i++ {
		if m.ByteOffset(i)*8 != m.BitOffset(i) {
			t.Fatal("byte offset mismatch")
		}
		if m.ByteOffset(i)%8 != 0 {
			t.Fatal("8-byte units must be 8-byte aligned")
		}
	}
}

// TestMappingArithmeticExhaustive pins BitOffset, Stripe, and Index to
// the reference div/mod arithmetic over every divisor shape the
// allocator uses (pow2 and non-pow2 stripe counts, pow2 units-per-line)
// and including the largest counts a slab or WAL ring can reach.
func TestMappingArithmeticExhaustive(t *testing.T) {
	for _, tc := range []struct {
		count, unitBits, stripes int
	}{
		{7900, 1, 6},   // min-class slab bitmap, default stripes
		{7900, 1, 1},   // sequential baseline layout
		{4096, 1, 8},   // pow2 stripes
		{1024, 256, 6}, // WAL ring (32 B entries)
		{65536, 1, 6},  // large count, non-pow2 stripes
		{333, 1, 48},   // stripes > 1 line's worth of rounds
		{129, 8, 3},
	} {
		m := New(tc.count, tc.unitBits, tc.stripes, 64)
		for i := 0; i < tc.count; i++ {
			wantS := i % tc.stripes
			p := i / tc.stripes
			wantOff := (p/m.unitsPerLine*tc.stripes+wantS)*m.bitsPerLine + (p%m.unitsPerLine)*tc.unitBits
			if got := m.Stripe(i); got != wantS {
				t.Fatalf("count=%d stripes=%d: Stripe(%d)=%d want %d", tc.count, tc.stripes, i, got, wantS)
			}
			if got := m.BitOffset(i); got != wantOff {
				t.Fatalf("count=%d stripes=%d: BitOffset(%d)=%d want %d", tc.count, tc.stripes, i, got, wantOff)
			}
			// The inverse must agree with the forward mapping.
			line := wantOff / m.bitsPerLine
			slot := (wantOff % m.bitsPerLine) / tc.unitBits
			if got := m.Index(line, slot); got != i {
				t.Fatalf("count=%d stripes=%d: Index(%d,%d)=%d want %d", tc.count, tc.stripes, line, slot, got, i)
			}
		}
	}
}
