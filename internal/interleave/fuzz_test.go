package interleave

import "testing"

// FuzzMappingBijection checks that any valid mapping configuration is a
// within-region bijection with aligned offsets and a correct inverse.
func FuzzMappingBijection(f *testing.F) {
	f.Add(uint16(100), byte(0), byte(6))
	f.Add(uint16(8192), byte(0), byte(1))
	f.Add(uint16(128), byte(6), byte(4))
	f.Fuzz(func(t *testing.T, countRaw uint16, bitsRaw, stripesRaw byte) {
		count := int(countRaw)%8192 + 1
		unitBits := 1 << (int(bitsRaw) % 7) // 1..64
		stripes := int(stripesRaw)%32 + 1
		m := New(count, unitBits, stripes, 64)
		seen := make(map[int]bool, count)
		for i := 0; i < count; i++ {
			off := m.BitOffset(i)
			if off%unitBits != 0 {
				t.Fatalf("offset %d not aligned to %d", off, unitBits)
			}
			if off < 0 || off >= m.SizeBytes()*8 {
				t.Fatalf("offset %d outside region", off)
			}
			if seen[off] {
				t.Fatalf("offset %d reused", off)
			}
			seen[off] = true
			if i+1 < count && stripes > 1 && m.Line(i) == m.Line(i+1) {
				t.Fatalf("consecutive units share line %d", m.Line(i))
			}
		}
	})
}
