// Package interleave implements the two-level interleaving arithmetic of
// NVAlloc's Section 5.1. Consecutive logical indices (block numbers, WAL
// slots, bookkeeping-log entries) are spread over S "stripes", one stripe
// per cache line, so that back-to-back persistent updates never land in
// the same cache line and therefore never trigger a reflush.
//
// A Mapping describes a metadata array of N logical units, each unit
// occupying UnitBits bits, packed so that stripe s owns the units
// {s, s+S, s+2S, ...}. Stripes are laid out line by line: each cache line
// holds LineSize*8/UnitBits units of one stripe, and once every stripe has
// filled a line the layout advances to the next "round" of S lines.
//
// Logical index i maps to:
//
//	stripe   s = i mod S
//	position p = i div S
//	line     = (p div unitsPerLine)*S + s
//	slot     = p mod unitsPerLine
//
// With S = 1 the mapping degenerates to the sequential layout used by the
// paper's baselines.
package interleave

import "fmt"

// Mapping is an interleaved layout of fixed-size units over cache lines.
// The zero value is not usable; call New.
type Mapping struct {
	stripes      int
	unitBits     int
	unitsPerLine int
	count        int
	lines        int
	bitsPerLine  int
}

// New builds a mapping for count units of unitBits bits each over the given
// number of stripes on lineBytes-sized cache lines. unitBits must divide
// the line size in bits evenly (1, 2, 4, 8, 16, 32, 64, ... bit units).
func New(count, unitBits, stripes, lineBytes int) Mapping {
	if count <= 0 {
		panic("interleave: count must be positive")
	}
	if stripes <= 0 {
		panic("interleave: stripes must be positive")
	}
	bitsPerLine := lineBytes * 8
	if unitBits <= 0 || bitsPerLine%unitBits != 0 {
		panic(fmt.Sprintf("interleave: unitBits %d does not evenly pack a %d-byte line", unitBits, lineBytes))
	}
	upl := bitsPerLine / unitBits
	// Rounds of S lines; the last round may be partially used.
	positions := (count + stripes - 1) / stripes // units in the longest stripe
	linesPerStripe := (positions + upl - 1) / upl
	return Mapping{
		stripes:      stripes,
		unitBits:     unitBits,
		unitsPerLine: upl,
		count:        count,
		lines:        linesPerStripe * stripes,
		bitsPerLine:  bitsPerLine,
	}
}

// Stripes returns the stripe count S.
func (m Mapping) Stripes() int { return m.stripes }

// Count returns the number of logical units.
func (m Mapping) Count() int { return m.count }

// Lines returns the number of cache lines the layout occupies.
func (m Mapping) Lines() int { return m.lines }

// SizeBytes returns the byte footprint of the layout (whole lines).
func (m Mapping) SizeBytes() int { return m.lines * m.bitsPerLine / 8 }

// Stripe returns which stripe logical index i belongs to.
func (m Mapping) Stripe(i int) int { return i % m.stripes }

// BitOffset returns the bit offset (from the start of the metadata region)
// of logical unit i.
func (m Mapping) BitOffset(i int) int {
	if i < 0 || i >= m.count {
		panic(fmt.Sprintf("interleave: index %d out of range [0,%d)", i, m.count))
	}
	s := i % m.stripes
	p := i / m.stripes
	line := (p/m.unitsPerLine)*m.stripes + s
	slot := p % m.unitsPerLine
	return line*m.bitsPerLine + slot*m.unitBits
}

// ByteOffset returns the byte offset of unit i; unitBits must be a multiple
// of 8 for this to be exact.
func (m Mapping) ByteOffset(i int) int {
	return m.BitOffset(i) / 8
}

// Line returns the cache-line number (within the region) holding unit i.
func (m Mapping) Line(i int) int {
	return m.BitOffset(i) / m.bitsPerLine
}

// Index inverts the mapping: given a line number and slot within that line,
// it returns the logical index, or -1 if that slot is beyond Count.
func (m Mapping) Index(line, slot int) int {
	s := line % m.stripes
	round := line / m.stripes
	p := round*m.unitsPerLine + slot
	i := p*m.stripes + s
	if i >= m.count || slot >= m.unitsPerLine {
		return -1
	}
	return i
}
