package blog

import (
	"sort"

	"nvalloc/internal/pmem"
)

// validChunkAddr reports whether a names a chunk-aligned slot inside the
// log region's chunk area.
func (l *Log) validChunkAddr(a pmem.PAddr) bool {
	if a < l.base+headerSize || uint64(a)+ChunkSize > uint64(l.base)+l.size {
		return false
	}
	return (uint64(a)-uint64(l.base)-headerSize)%ChunkSize == 0
}

// Open reopens an existing log after a restart or crash. It walks the
// active chunk chain, replays normal and tombstone entries in activation
// order, rebuilds the volatile vchunks/index/free structures, and returns
// the records of every live extent. Recovery work is charged to c.
//
// Every pointer followed is validated before it is dereferenced (sealed
// head/alt words, chunk alignment and range, header magic and checksum),
// so a corrupted image yields a CorruptError instead of a panic or a
// silently truncated chain. The region break self-heals: it is raised to
// cover every chunk the chain reaches and persisted back if the stored
// value is torn or stale.
func Open(dev pmem.Dev, base pmem.PAddr, size uint64, stripes int) (*Log, []Record, error) {
	l := newLog(dev.Mem(), base, size, stripes)
	c := dev.NewCtx()
	defer c.Merge()

	alt, ok := pmem.UnsealU64(dev.ReadU64(base + offAlt))
	if !ok {
		return nil, nil, pmem.Corrupt("blog", base+offAlt, "alt word fails seal check")
	}
	l.alt = alt & 1

	type chunkInfo struct {
		addr   pmem.PAddr
		seq    uint64
		active bool
	}
	var chain []chunkInfo
	headRaw, ok := pmem.UnsealU64(dev.ReadU64(l.headPtrOff()))
	if !ok {
		return nil, nil, pmem.Corrupt("blog", l.headPtrOff(), "head pointer fails seal check")
	}
	head := pmem.PAddr(headRaw)
	if head != pmem.Null && !l.validChunkAddr(head) {
		return nil, nil, pmem.Corrupt("blog", l.headPtrOff(), "head pointer %#x outside chunk area", head)
	}
	seen := make(map[pmem.PAddr]bool)
	maxEnd := uint64(base) + headerSize
	for a := head; a != pmem.Null; {
		if seen[a] {
			return nil, nil, pmem.Corrupt("blog", a, "chunk chain contains a cycle")
		}
		seen[a] = true
		if m := dev.ReadU32(a + coMagic); m != chunkMagic {
			return nil, nil, pmem.Corrupt("blog", a, "bad chunk magic %#x", m)
		}
		seq := dev.ReadU64(a + coSeq)
		if got, want := dev.ReadU32(a+coCRC), chunkCRC(seq); got != want {
			// A crash mid-reactivation can leave a fresh seq with the old
			// checksum — but only after the entry wipe persisted. An empty
			// chunk is therefore acceptable; repair its checksum in place.
			// Anything else is corruption.
			for _, b := range dev.Bytes(a+chunkHdrSize, ChunkSize-chunkHdrSize) {
				if b != 0 {
					return nil, nil, pmem.Corrupt("blog", a, "chunk checksum %#x, want %#x", got, want)
				}
			}
			dev.WriteU32(a+coCRC, want)
			c.Flush(pmem.CatMeta, a, chunkHdrSize)
			c.Fence()
		}
		chain = append(chain, chunkInfo{
			addr:   a,
			seq:    seq,
			active: dev.ReadU32(a+coActive) == 1,
		})
		if end := uint64(a) + ChunkSize; end > maxEnd {
			maxEnd = end
		}
		c.Charge(pmem.CatSearch, 20)
		next := pmem.PAddr(dev.ReadU64(a + coNext))
		if next != pmem.Null && !l.validChunkAddr(next) {
			return nil, nil, pmem.Corrupt("blog", a+coNext, "next pointer %#x outside chunk area", next)
		}
		a = next
	}

	// Self-heal the region break: a legitimate crash leaves it aligned and
	// covering the whole chain; anything else (a flipped word) is clamped
	// back to the smallest consistent value and persisted.
	brk := dev.ReadU64(base + offBreak)
	brkBad := brk < uint64(base)+headerSize || brk > uint64(base)+size ||
		(brk-uint64(base)-headerSize)%ChunkSize != 0 || brk < maxEnd
	if brkBad {
		c.PersistU64(pmem.CatMeta, base+offBreak, maxEnd)
		c.Fence()
	}

	// Replay entries in global activation order.
	ordered := make([]chunkInfo, 0, len(chain))
	for _, ci := range chain {
		if ci.active {
			ordered = append(ordered, ci)
		} else {
			l.dormant = append(l.dormant, ci.addr)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })

	type liveRef struct {
		ref entryRef
		rec Record
	}
	livemap := make(map[pmem.PAddr]liveRef)
	var maxSeq uint64
	for _, ci := range ordered {
		if ci.seq > maxSeq {
			maxSeq = ci.seq
		}
		v := &vchunk{addr: ci.addr}
		l.chunks.Put(ci.addr, v)
		for slot := 0; slot < l.perChunk; slot++ {
			raw := dev.ReadU64(l.entryAddr(ci.addr, slot))
			c.Charge(pmem.CatSearch, 2)
			if raw == 0 {
				continue
			}
			addr, sz, t := decode(raw)
			switch t {
			case TypeExtent, TypeSlab:
				// A later normal entry for the same address supersedes an
				// earlier one (free+realloc at the same address whose
				// tombstone chunk was already retired).
				if prev, ok := livemap[addr]; ok {
					if pv, ok := l.chunks.Get(prev.ref.chunk); ok {
						pv.clear(prev.ref.slot)
					}
				}
				v.set(slot)
				livemap[addr] = liveRef{
					ref: entryRef{chunk: ci.addr, slot: slot},
					rec: Record{Addr: addr, Size: sz, Slab: t == TypeSlab},
				}
			case TypeTombstone:
				// Tombstones keep their vbit (they die at slow GC), and
				// kill the live record for their address if present.
				v.set(slot)
				if prev, ok := livemap[addr]; ok {
					if pv, ok := l.chunks.Get(prev.ref.chunk); ok {
						pv.clear(prev.ref.slot)
					}
					delete(livemap, addr)
				}
			}
		}
	}
	l.nextSeq = maxSeq + 1

	// Resume appending in the chain tail if it is active and has room.
	// The cursor resumes after the *last* occupied slot, not the first
	// empty one: a scavenge (DropRecord) can zero interior entries, and
	// resuming inside such a hole would overwrite later live entries.
	if n := len(chain); n > 0 {
		l.tail = chain[n-1].addr
		if v, ok := l.chunks.Get(l.tail); ok {
			cur := l.perChunk
			for cur > 0 && dev.ReadU64(l.entryAddr(l.tail, cur-1)) == 0 {
				cur--
			}
			if cur < l.perChunk {
				l.current = v
				l.cursor = cur
			}
		}
	}

	// Queue any fully dead chunks for fast GC.
	l.chunks.Ascend(func(_ pmem.PAddr, v *vchunk) bool {
		l.noteEmpty(v)
		return true
	})

	records := make([]Record, 0, len(livemap))
	for addr, lr := range livemap {
		l.index[addr] = lr.ref
		records = append(records, lr.rec)
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Addr < records[j].Addr })
	return l, records, nil
}
