package blog

import (
	"sort"

	"nvalloc/internal/pmem"
)

// Open reopens an existing log after a restart or crash. It walks the
// active chunk chain, replays normal and tombstone entries in activation
// order, rebuilds the volatile vchunks/index/free structures, and returns
// the records of every live extent. Recovery work is charged to c.
func Open(dev *pmem.Device, base pmem.PAddr, size uint64, stripes int) (*Log, []Record, error) {
	l := newLog(dev, base, size, stripes)
	c := dev.NewCtx()
	defer c.Merge()

	type chunkInfo struct {
		addr   pmem.PAddr
		seq    uint64
		active bool
	}
	var chain []chunkInfo
	head := pmem.PAddr(dev.ReadU64(l.headPtrOff()))
	seen := make(map[pmem.PAddr]bool)
	for a := head; a != pmem.Null && !seen[a]; a = pmem.PAddr(dev.ReadU64(a + coNext)) {
		seen[a] = true
		if dev.ReadU32(a+coMagic) != chunkMagic {
			break // torn chunk init at the tail: the chain ends here
		}
		chain = append(chain, chunkInfo{
			addr:   a,
			seq:    dev.ReadU64(a + coSeq),
			active: dev.ReadU32(a+coActive) == 1,
		})
		c.Charge(pmem.CatSearch, 20)
	}

	// Replay entries in global activation order.
	ordered := make([]chunkInfo, 0, len(chain))
	for _, ci := range chain {
		if ci.active {
			ordered = append(ordered, ci)
		} else {
			l.dormant = append(l.dormant, ci.addr)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })

	type liveRef struct {
		ref entryRef
		rec Record
	}
	livemap := make(map[pmem.PAddr]liveRef)
	var maxSeq uint64
	for _, ci := range ordered {
		if ci.seq > maxSeq {
			maxSeq = ci.seq
		}
		v := &vchunk{addr: ci.addr}
		l.chunks.Put(ci.addr, v)
		for slot := 0; slot < l.perChunk; slot++ {
			raw := dev.ReadU64(l.entryAddr(ci.addr, slot))
			c.Charge(pmem.CatSearch, 2)
			if raw == 0 {
				continue
			}
			addr, sz, t := decode(raw)
			switch t {
			case TypeExtent, TypeSlab:
				// A later normal entry for the same address supersedes an
				// earlier one (free+realloc at the same address whose
				// tombstone chunk was already retired).
				if prev, ok := livemap[addr]; ok {
					if pv, ok := l.chunks.Get(prev.ref.chunk); ok {
						pv.clear(prev.ref.slot)
					}
				}
				v.set(slot)
				livemap[addr] = liveRef{
					ref: entryRef{chunk: ci.addr, slot: slot},
					rec: Record{Addr: addr, Size: sz, Slab: t == TypeSlab},
				}
			case TypeTombstone:
				// Tombstones keep their vbit (they die at slow GC), and
				// kill the live record for their address if present.
				v.set(slot)
				if prev, ok := livemap[addr]; ok {
					if pv, ok := l.chunks.Get(prev.ref.chunk); ok {
						pv.clear(prev.ref.slot)
					}
					delete(livemap, addr)
				}
			}
		}
	}
	l.nextSeq = maxSeq + 1

	// Resume appending in the chain tail if it is active and has room.
	if n := len(chain); n > 0 {
		l.tail = chain[n-1].addr
		if v, ok := l.chunks.Get(l.tail); ok {
			cur := 0
			for cur < l.perChunk && dev.ReadU64(l.entryAddr(l.tail, cur)) != 0 {
				cur++
			}
			if cur < l.perChunk {
				l.current = v
				l.cursor = cur
			}
		}
	}

	// Queue any fully dead chunks for fast GC.
	l.chunks.Ascend(func(_ pmem.PAddr, v *vchunk) bool {
		l.noteEmpty(v)
		return true
	})

	records := make([]Record, 0, len(livemap))
	for addr, lr := range livemap {
		l.index[addr] = lr.ref
		records = append(records, lr.rec)
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Addr < records[j].Addr })
	return l, records, nil
}
