package blog

import (
	"sync"
	"testing"

	"nvalloc/internal/pmem"
)

// TestShardedAppendersRaceIncrementalGC runs real goroutines through the
// sharded log's lock-split append path (slot reservation under the shard
// resource, publish+fence outside it) while incremental GC runs both
// inline on the free path and from a competing full-GC goroutine. Run
// under -race, it checks the outstanding gate end to end:
//
//   - no GC pass ever starts or steps while a reserved slot's publish is
//     in flight (GCWhileOutstanding stays zero on every shard), and
//   - GC reclaims no live chunk: after the churn settles, the volatile
//     index and a fresh recovery both report exactly the tracked live
//     set — nothing lost to a compaction that raced a publish, nothing
//     resurrected from a reclaimed chunk.
func TestShardedAppendersRaceIncrementalGC(t *testing.T) {
	const (
		workers = 4
		rounds  = 40
		batch   = 8
		keep    = 2 // live extents retained per round per worker
	)
	dev := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
	s := NewSharded(dev.Mem(), 4096, testShardedSize, 6, testShards)
	// Escalate to slow GC after ~4 chunks per shard and advance it one
	// chunk at a time, so compaction interleaves with appends as finely
	// as the implementation allows.
	s.SetSlowGCThreshold(4 * ChunkSize * testShards)
	for i := 0; i < s.NumShards(); i++ {
		s.Shard(i).GCBudgetChunks = 1
	}

	live := make([]map[pmem.PAddr]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		live[w] = map[pmem.PAddr]bool{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dev.NewCtx()
			defer c.Merge()
			// Worker-private granule-spread addresses: every worker's
			// traffic crosses every shard, but records and tombstones
			// never collide across workers.
			addr := func(i int) pmem.PAddr { return shardedAddr(w*100000 + i) }
			next := 0
			for r := 0; r < rounds; r++ {
				batchAddrs := make([]pmem.PAddr, 0, batch)
				for i := 0; i < batch; i++ {
					a := addr(next)
					next++
					if err := s.RecordAlloc(c, a, 4096, false); err != nil {
						t.Errorf("worker %d: RecordAlloc(%#x): %v", w, a, err)
						return
					}
					batchAddrs = append(batchAddrs, a)
				}
				// Free all but `keep`, driving the inline incremental GC.
				for _, a := range batchAddrs[keep:] {
					if err := s.RecordFree(c, a); err != nil {
						t.Errorf("worker %d: RecordFree(%#x): %v", w, a, err)
						return
					}
				}
				for _, a := range batchAddrs[:keep] {
					live[w][a] = true
				}
			}
		}(w)
	}
	// A competing collector: full slow-GC sweeps racing the appenders.
	gcDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(gcDone)
		c := dev.NewCtx()
		defer c.Merge()
		for i := 0; i < 64; i++ {
			s.SlowGCAll(c)
		}
	}()
	wg.Wait()
	<-gcDone

	for i := 0; i < s.NumShards(); i++ {
		if n := s.Shard(i).GCWhileOutstanding(); n != 0 {
			t.Errorf("shard %d: %d GC passes ran with a publish in flight", i, n)
		}
	}
	want := map[pmem.PAddr]bool{}
	for w := range live {
		for a := range live[w] {
			want[a] = true
		}
	}
	if got := s.Live(); got != len(want) {
		t.Errorf("volatile live set has %d extents, tracked %d", got, len(want))
	}
	// Everything above was fenced before the workers joined: recovery
	// must reproduce the tracked live set exactly.
	_, recs, err := OpenSharded(dev, 4096, testShardedSize, 6, testShards)
	if err != nil {
		t.Fatalf("recovery after churn: %v", err)
	}
	got := map[pmem.PAddr]bool{}
	for _, r := range recs {
		if got[r.Addr] {
			t.Errorf("duplicate recovered record %#x", r.Addr)
		}
		got[r.Addr] = true
		if !want[r.Addr] {
			t.Errorf("recovered extent %#x was freed (resurrected by GC?)", r.Addr)
		}
	}
	for a := range want {
		if !got[a] {
			t.Errorf("live extent %#x lost (reclaimed by a racing GC?)", a)
		}
	}
}
