package blog

import (
	"fmt"
	"sort"

	"nvalloc/internal/pmem"
	"nvalloc/internal/rbtree"
)

// defaultGCBudgetChunks is the per-step copy budget of the incremental
// slow GC: each MaybeGC call while a slow GC is underway copies at most
// this many chunks' worth of live entries before returning to the
// append path.
const defaultGCBudgetChunks = 4

// FastGC retires every active chunk whose validity bitmap is empty by
// clearing its activeness bit (one flush per retired chunk, no entry
// copying). Retired chunks stay linked in the chain and are reactivated
// in place when a new chunk is needed. Returns the number of chunks
// retired.
func (l *Log) FastGC(c *pmem.Ctx) int {
	if l.outstanding != 0 {
		l.gcWhileOutstanding++
	}
	retired := 0
	for _, v := range l.empties {
		v.queued = false
		// Revalidate: the chunk may have been refilled (reactivated as
		// current) or already recycled by a slow GC since it was queued.
		cur, ok := l.chunks.Get(v.addr)
		if !ok || cur != v || v.live != 0 || v == l.current {
			continue
		}
		l.dev.WriteU32(v.addr+coActive, 0)
		c.Flush(pmem.CatMeta, v.addr, chunkHdrSize)
		l.chunks.Delete(v.addr)
		l.dormant = append(l.dormant, v.addr)
		retired++
	}
	l.empties = l.empties[:0]
	if retired > 0 {
		c.Fence()
		l.fastGCs++
	}
	return retired
}

// gcEntry is one snapshot record scheduled for copying into the new
// chain. raw is the entry word at snapshot time; the copy step skips the
// entry when the live record has changed since (free, or free+realloc).
type gcEntry struct {
	addr pmem.PAddr
	raw  uint64
	ref  entryRef
}

// gcState is an in-progress incremental slow GC: the address-ordered
// live snapshot still to copy plus the partially built new chain. The
// new chain stays invisible to recovery (it hangs off the spare header
// pointer only at commit) until the alt bit flips, so a crash at any
// step leaves the old chain authoritative.
type gcState struct {
	pending []gcEntry
	next    int

	chunks  []pmem.PAddr
	vchunks []*vchunk
	index   map[pmem.PAddr]entryRef
	cursor  int // next slot in the last chunk
	copied  int
}

// GCActive reports whether an incremental slow GC is underway.
func (l *Log) GCActive() bool { return l.gc != nil }

// startSlowGC snapshots the live set and begins an incremental slow GC.
// It is a no-op if one is already underway. An upfront capacity check
// rejects a GC that could not complete even if nothing changes (a full
// region with everything live cannot shrink).
func (l *Log) startSlowGC(c *pmem.Ctx) error {
	if l.outstanding != 0 {
		l.gcWhileOutstanding++
	}
	if l.gc != nil {
		return nil
	}
	g := &gcState{index: make(map[pmem.PAddr]entryRef, len(l.index))}
	for addr, ref := range l.index {
		raw := l.dev.ReadU64(l.entryAddr(ref.chunk, ref.slot))
		g.pending = append(g.pending, gcEntry{addr: addr, raw: raw, ref: ref})
		c.Charge(pmem.CatSearch, 5)
	}
	sort.Slice(g.pending, func(i, j int) bool { return g.pending[i].addr < g.pending[j].addr })

	need := (len(g.pending) + l.perChunk - 1) / l.perChunk
	// The new chain may only use unlinked chunks: the free list plus the
	// region break. Dormant chunks still belong to the old chain.
	brk := l.readBreak()
	fromBreak := int((uint64(l.base) + l.size - brk) / ChunkSize)
	if need > len(l.free)+fromBreak {
		return fmt.Errorf("blog: slow GC needs %d chunks, only %d available", need, len(l.free)+fromBreak)
	}
	l.gc = g
	return nil
}

// gcTakeChunk obtains an unlinked chunk for the new chain, writes its
// header (volatile until the chunk-transition flush), links it after the
// previous chunk and makes it the chain tail. Returns false when neither
// the free list nor the region break can supply one.
func (l *Log) gcTakeChunk(c *pmem.Ctx) bool {
	g := l.gc
	var a pmem.PAddr
	if n := len(l.free); n > 0 {
		a = l.free[n-1]
		l.free = l.free[:n-1]
		l.dev.Zero(a+chunkHdrSize, ChunkSize-chunkHdrSize)
	} else {
		brk := l.readBreak()
		if brk+ChunkSize > uint64(l.base)+l.size {
			return false
		}
		a = pmem.PAddr(brk)
		// Persist the advanced break immediately so interleaved appends
		// never carve the same chunk. A crash mid-GC leaves the chunk
		// unreachable below the break, which Open's break self-heal
		// tolerates (the chunk is recycled by the next completed GC).
		c.PersistU64(pmem.CatMeta, l.base+offBreak, brk+ChunkSize)
	}
	l.dev.WriteU32(a+coMagic, chunkMagic)
	l.dev.WriteU32(a+coActive, 1)
	l.dev.WriteU64(a+coNext, 0)
	l.dev.WriteU64(a+coSeq, l.nextSeq)
	l.dev.WriteU32(a+coCRC, chunkCRC(l.nextSeq))
	l.nextSeq++
	if n := len(g.chunks); n > 0 {
		// The predecessor is full: flush it as one sequential burst and
		// link it forward.
		prev := g.chunks[n-1]
		c.Flush(pmem.CatMeta, prev, ChunkSize)
		l.dev.WriteU64(prev+coNext, uint64(a))
		c.FlushU64(pmem.CatMeta, prev+coNext)
	}
	g.chunks = append(g.chunks, a)
	g.vchunks = append(g.vchunks, &vchunk{addr: a})
	g.cursor = 0
	return true
}

// gcAppend writes one entry word into the next slot of the new chain and
// indexes it. Entries are flushed chunk-at-a-time (at chunk transitions
// and at commit), not individually — the chain is invisible until the
// alt flip, so per-entry persistence buys nothing.
func (l *Log) gcAppend(c *pmem.Ctx, addr pmem.PAddr, raw uint64) error {
	g := l.gc
	if len(g.chunks) == 0 || g.cursor >= l.perChunk {
		if !l.gcTakeChunk(c) {
			return fmt.Errorf("blog: slow GC ran out of chunks")
		}
	}
	ca := g.chunks[len(g.chunks)-1]
	v := g.vchunks[len(g.vchunks)-1]
	slot := g.cursor
	g.cursor++
	l.dev.WriteU64(l.entryAddr(ca, slot), raw)
	v.set(slot)
	g.index[addr] = entryRef{chunk: ca, slot: slot}
	return nil
}

// abortSlowGC discards an incremental GC: every chunk of the partial new
// chain returns to the free list (break-carved chunks sit below the
// persisted break and are re-initialized on relink), and the snapshot is
// dropped. The old chain was never touched, so the log remains fully
// usable.
func (l *Log) abortSlowGC() {
	l.free = append(l.free, l.gc.chunks...)
	l.gc = nil
}

// slowGCStep advances an incremental slow GC by up to budget chunks'
// worth of entry copies, finalizing (reconcile + commit) once the
// snapshot is exhausted. Returns done=true when the GC has committed.
// On error the GC is aborted and must be restarted from scratch.
func (l *Log) slowGCStep(c *pmem.Ctx, budget int) (bool, error) {
	if l.outstanding != 0 {
		l.gcWhileOutstanding++
	}
	g := l.gc
	if g == nil {
		return true, nil
	}
	if budget < 1 {
		budget = 1
	}
	quota := budget * l.perChunk
	for quota > 0 && g.next < len(g.pending) {
		e := g.pending[g.next]
		g.next++
		cur, ok := l.index[e.addr]
		if !ok || l.dev.ReadU64(l.entryAddr(cur.chunk, cur.slot)) != e.raw {
			// Freed — or freed and re-recorded — since the snapshot; the
			// finalize pass reconciles against the then-current index.
			c.Charge(pmem.CatSearch, 2)
			continue
		}
		if err := l.gcAppend(c, e.addr, e.raw); err != nil {
			l.abortSlowGC()
			c.Fence()
			return false, err
		}
		g.copied++
		quota--
	}
	if g.next < len(g.pending) {
		c.Fence()
		return false, nil
	}
	if err := l.finishSlowGC(c); err != nil {
		return false, err
	}
	return true, nil
}

// finishSlowGC reconciles mutations that raced with the copy steps, then
// commits the new chain by persisting the spare head pointer and
// flipping the alt bit with a single 8-byte atomic persist. The old
// chain (active and dormant chunks alike) becomes free.
func (l *Log) finishSlowGC(c *pmem.Ctx) error {
	g := l.gc

	// Pass 1 — stale copies: entries copied into the new chain whose
	// live record has since been freed (or freed and re-recorded). Each
	// is overwritten in place with a tombstone — never zeroed, so the
	// new chain keeps the no-interior-holes invariant the recovery
	// cursor scan relies on. Address order keeps the pass deterministic.
	var stale []pmem.PAddr
	for addr, ref := range g.index {
		c.Charge(pmem.CatSearch, 2)
		cur, ok := l.index[addr]
		if ok && l.dev.ReadU64(l.entryAddr(cur.chunk, cur.slot)) == l.dev.ReadU64(l.entryAddr(ref.chunk, ref.slot)) {
			continue
		}
		stale = append(stale, addr)
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, addr := range stale {
		ref := g.index[addr]
		c.PersistU64(pmem.CatMeta, l.entryAddr(ref.chunk, ref.slot), encode(addr, 0, TypeTombstone))
		delete(g.index, addr)
	}

	// Pass 2 — missing records: appended after the snapshot, or
	// superseded snapshot entries (free+realloc) skipped or tombstoned
	// above. Copy their current words at the tail; replay order (later
	// seq/slot wins) makes them authoritative over any pass-1 tombstone.
	var missing []pmem.PAddr
	for addr := range l.index {
		if _, ok := g.index[addr]; !ok {
			missing = append(missing, addr)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	for _, addr := range missing {
		ref := l.index[addr]
		raw := l.dev.ReadU64(l.entryAddr(ref.chunk, ref.slot))
		c.Charge(pmem.CatSearch, 2)
		if err := l.gcAppend(c, addr, raw); err != nil {
			l.abortSlowGC()
			c.Fence()
			return err
		}
		g.copied++
	}

	// Flush the tail chunk, then commit. Everything the new chain needs
	// is persistent before the alt flip, so a crash on either side of
	// the flip leaves one complete chain authoritative.
	var newHead pmem.PAddr
	if n := len(g.chunks); n > 0 {
		c.Flush(pmem.CatMeta, g.chunks[n-1], ChunkSize)
		newHead = g.chunks[0]
	}
	c.Fence()
	c.PersistU64(pmem.CatMeta, l.sparePtrOff(), pmem.SealU64(uint64(newHead)))
	c.Fence()
	c.PersistU64(pmem.CatMeta, l.base+offAlt, pmem.SealU64(l.alt^1))
	l.alt ^= 1
	c.Fence()

	// Recycle the entire old chain and install the new chain's volatile
	// state.
	l.chunks.Ascend(func(addr pmem.PAddr, _ *vchunk) bool {
		l.free = append(l.free, addr)
		return true
	})
	l.free = append(l.free, l.dormant...)
	l.dormant = nil
	for _, v := range l.empties {
		v.queued = false
	}
	l.empties = l.empties[:0]
	l.chunks = rbtree.New[pmem.PAddr, *vchunk](func(a, b pmem.PAddr) bool { return a < b })
	for _, v := range g.vchunks {
		l.chunks.Put(v.addr, v)
	}
	l.index = g.index
	if n := len(g.chunks); n > 0 {
		l.tail = g.chunks[n-1]
		l.current = g.vchunks[n-1]
		l.cursor = g.cursor
	} else {
		l.tail = pmem.Null
		l.current = nil
		l.cursor = 0
	}
	l.lastGCCopied = g.copied
	l.gc = nil
	l.slowGCs++
	return nil
}

// SlowGC runs a slow GC to completion: it rewrites every live normal
// entry into a fresh chunk chain built on the spare header pointer, then
// commits by flipping the alt bit. Tombstones and dead entries are
// dropped; every chunk of the old chain (active or dormant) becomes
// free. If an incremental GC is already underway it is driven to
// completion. Returns the number of live entries copied.
func (l *Log) SlowGC(c *pmem.Ctx) (int, error) {
	if err := l.startSlowGC(c); err != nil {
		return 0, err
	}
	for {
		done, err := l.slowGCStep(c, 1<<30)
		if err != nil {
			return 0, err
		}
		if done {
			return l.lastGCCopied, nil
		}
	}
}

// MaybeGC applies the paper's policy: run fast GC routinely; escalate to
// slow GC once the active chain exceeds SlowGCThreshold bytes. Slow GC
// proceeds incrementally — each call copies at most GCBudgetChunks
// chunks' worth of live entries, so the append path never stalls behind
// a full-log rewrite. Call it periodically (the large allocator invokes
// it on frees).
func (l *Log) MaybeGC(c *pmem.Ctx) {
	l.FastGC(c)
	if l.gc != nil {
		_, _ = l.slowGCStep(c, l.GCBudgetChunks)
		return
	}
	if uint64(l.chunks.Len())*ChunkSize > l.SlowGCThreshold {
		// Best effort: a full region with everything live cannot shrink.
		if err := l.startSlowGC(c); err == nil {
			_, _ = l.slowGCStep(c, l.GCBudgetChunks)
		}
	}
}
