package blog

import (
	"fmt"
	"sort"

	"nvalloc/internal/pmem"
	"nvalloc/internal/rbtree"
)

// FastGC retires every active chunk whose validity bitmap is empty by
// clearing its activeness bit (one flush per retired chunk, no entry
// copying). Retired chunks stay linked in the chain and are reactivated
// in place when a new chunk is needed. Returns the number of chunks
// retired.
func (l *Log) FastGC(c *pmem.Ctx) int {
	retired := 0
	for _, v := range l.empties {
		v.queued = false
		// Revalidate: the chunk may have been refilled (reactivated as
		// current) or already recycled by a slow GC since it was queued.
		cur, ok := l.chunks.Get(v.addr)
		if !ok || cur != v || v.live != 0 || v == l.current {
			continue
		}
		l.dev.WriteU32(v.addr+coActive, 0)
		c.Flush(pmem.CatMeta, v.addr, chunkHdrSize)
		l.chunks.Delete(v.addr)
		l.dormant = append(l.dormant, v.addr)
		retired++
	}
	l.empties = l.empties[:0]
	if retired > 0 {
		c.Fence()
		l.fastGCs++
	}
	return retired
}

// SlowGC rewrites every live normal entry into a fresh chunk chain built
// on the spare header pointer, then commits by flipping the alt bit with
// a single 8-byte persist. Tombstones and dead entries are dropped; every
// chunk of the old chain (active or dormant) becomes free. Returns the
// number of live entries copied.
func (l *Log) SlowGC(c *pmem.Ctx) (int, error) {
	// Snapshot live entries in activation order so the new chain keeps
	// the (simple) invariant that one normal entry per live address
	// exists.
	type liveEntry struct {
		addr pmem.PAddr
		raw  uint64
	}
	var live []liveEntry
	for addr, ref := range l.index {
		raw := l.dev.ReadU64(l.entryAddr(ref.chunk, ref.slot))
		live = append(live, liveEntry{addr: addr, raw: raw})
		c.Charge(pmem.CatSearch, 5)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].addr < live[j].addr })

	need := (len(live) + l.perChunk - 1) / l.perChunk
	// The new chain may only use unlinked chunks: the free list plus the
	// region break. Dormant chunks still belong to the old chain.
	brk := l.dev.ReadU64(l.base + offBreak)
	fromBreak := int((uint64(l.base) + l.size - brk) / ChunkSize)
	if need > len(l.free)+fromBreak {
		return 0, fmt.Errorf("blog: slow GC needs %d chunks, only %d available", need, len(l.free)+fromBreak)
	}

	// Build the new chain fully before committing.
	var (
		newHead, prev pmem.PAddr
		newChunks     []pmem.PAddr
	)
	takeChunk := func() pmem.PAddr {
		var a pmem.PAddr
		if n := len(l.free); n > 0 {
			a = l.free[n-1]
			l.free = l.free[:n-1]
			l.dev.Zero(a+chunkHdrSize, ChunkSize-chunkHdrSize)
		} else {
			a = pmem.PAddr(brk)
			brk += ChunkSize
		}
		return a
	}
	newIndex := make(map[pmem.PAddr]entryRef, len(live))
	newVchunks := make([]*vchunk, 0, need)
	for ci := 0; ci < need; ci++ {
		ca := takeChunk()
		newChunks = append(newChunks, ca)
		l.dev.WriteU32(ca+coMagic, chunkMagic)
		l.dev.WriteU32(ca+coActive, 1)
		l.dev.WriteU64(ca+coNext, 0)
		l.dev.WriteU64(ca+coSeq, l.nextSeq)
		l.dev.WriteU32(ca+coCRC, chunkCRC(l.nextSeq))
		l.nextSeq++
		v := &vchunk{addr: ca}
		lo := ci * l.perChunk
		hi := lo + l.perChunk
		if hi > len(live) {
			hi = len(live)
		}
		for slot, e := range live[lo:hi] {
			l.dev.WriteU64(l.entryAddr(ca, slot), e.raw)
			v.set(slot)
			newIndex[e.addr] = entryRef{chunk: ca, slot: slot}
		}
		// One sequential burst per chunk: header plus entry lines.
		c.Flush(pmem.CatMeta, ca, ChunkSize)
		if prev != pmem.Null {
			l.dev.WriteU64(prev+coNext, uint64(ca))
			c.FlushU64(pmem.CatMeta, prev+coNext)
		} else {
			newHead = ca
		}
		prev = ca
		newVchunks = append(newVchunks, v)
	}
	c.Fence()

	// Persist the new break and the spare head pointer, then commit by
	// flipping the alt bit (8-byte atomic persist).
	c.PersistU64(pmem.CatMeta, l.base+offBreak, brk)
	c.PersistU64(pmem.CatMeta, l.sparePtrOff(), pmem.SealU64(uint64(newHead)))
	c.Fence()
	c.PersistU64(pmem.CatMeta, l.base+offAlt, pmem.SealU64(l.alt^1))
	l.alt ^= 1
	c.Fence()

	// Recycle the entire old chain.
	l.chunks.Ascend(func(addr pmem.PAddr, _ *vchunk) bool {
		l.free = append(l.free, addr)
		return true
	})
	l.free = append(l.free, l.dormant...)
	l.dormant = nil
	for _, v := range l.empties {
		v.queued = false
	}
	l.empties = l.empties[:0]
	l.chunks = rbtree.New[pmem.PAddr, *vchunk](func(a, b pmem.PAddr) bool { return a < b })
	for _, v := range newVchunks {
		l.chunks.Put(v.addr, v)
	}
	l.index = newIndex
	if need > 0 {
		l.tail = newChunks[need-1]
		l.current = newVchunks[need-1]
		l.cursor = len(live) - (need-1)*l.perChunk
	} else {
		l.tail = pmem.Null
		l.current = nil
		l.cursor = 0
	}
	l.slowGCs++
	return len(live), nil
}

// MaybeGC applies the paper's policy: run fast GC routinely; escalate to
// slow GC once the active chain exceeds SlowGCThreshold bytes. Call it
// periodically (the large allocator invokes it on frees).
func (l *Log) MaybeGC(c *pmem.Ctx) {
	l.FastGC(c)
	if uint64(l.chunks.Len())*ChunkSize > l.SlowGCThreshold {
		// Best effort: a full region with everything live cannot shrink.
		_, _ = l.SlowGC(c)
	}
}
