package blog

import (
	"fmt"
	"sync"
	"testing"

	"nvalloc/internal/pmem"
)

const (
	testShards      = 4
	testShardedSize = uint64(testShards) * 64 * ChunkSize
)

func newTestSharded(t *testing.T) (*pmem.Device, *Sharded) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
	return dev, NewSharded(dev.Mem(), 4096, testShardedSize, 6, testShards)
}

// shardedAddr returns the i-th test address, one routing granule apart
// so consecutive addresses spread across shards.
func shardedAddr(i int) pmem.PAddr {
	return pmem.PAddr(1<<30) + pmem.PAddr(i)*shardGranule
}

func TestShardIndexProperties(t *testing.T) {
	// Deterministic: the same address always routes identically.
	for i := 0; i < 64; i++ {
		a := shardedAddr(i)
		if ShardIndex(a, testShards) != ShardIndex(a, testShards) {
			t.Fatalf("ShardIndex not deterministic for %#x", a)
		}
	}
	// Granule locality: addresses in one 2 MiB granule share a shard
	// (a batched refill's contiguous records land in one chunk).
	base := shardedAddr(3)
	for off := pmem.PAddr(0); off < shardGranule; off += 64 << 10 {
		if ShardIndex(base+off, testShards) != ShardIndex(base, testShards) {
			t.Fatalf("granule split across shards at +%#x", off)
		}
	}
	// Spread: many granules cover more than one shard.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[ShardIndex(shardedAddr(i), testShards)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 granules all routed to one shard")
	}
	// n <= 1 always routes to shard 0.
	if ShardIndex(shardedAddr(9), 1) != 0 || ShardIndex(shardedAddr(9), 0) != 0 {
		t.Fatal("single-shard routing must return 0")
	}
}

// TestShardedRecordRecoverMergedUnion checks that merged recovery
// returns exactly the union of the shards' live sets, address-ordered,
// with tombstoned extents gone.
func TestShardedRecordRecoverMergedUnion(t *testing.T) {
	dev, s := newTestSharded(t)
	c := dev.NewCtx()
	const n = 40
	for i := 0; i < n; i++ {
		if err := s.RecordAlloc(c, shardedAddr(i), uint64(4096*(i%4+1)), i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := s.RecordFree(c, shardedAddr(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Merge()

	_, recs, err := OpenSharded(dev, 4096, testShardedSize, 6, testShards)
	if err != nil {
		t.Fatal(err)
	}
	want := map[pmem.PAddr]bool{}
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			want[shardedAddr(i)] = true
		}
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if !want[r.Addr] {
			t.Fatalf("recovered unexpected record %#x", r.Addr)
		}
		if wantSize := uint64(4096 * (int(uint64(r.Addr-1<<30)/shardGranule)%4 + 1)); r.Size != wantSize {
			t.Fatalf("record %#x has size %d, want %d", r.Addr, r.Size, wantSize)
		}
		if i > 0 && recs[i-1].Addr >= r.Addr {
			t.Fatalf("merged records not strictly address-ordered at %d", i)
		}
	}
}

// TestShardedConcurrentAppendCrashSweep crashes the device at a sweep of
// flush counts while several goroutines append into different shards,
// then verifies merged recovery: every shard opens (a mid-append shard
// recovers its valid prefix), no unknown record is recovered, and no
// tombstoned-and-fenced extent is resurrected.
func TestShardedConcurrentAppendCrashSweep(t *testing.T) {
	const workers = 4
	for _, cut := range []int64{1, 2, 5, 9, 17, 33, 70, 151, 400} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dev := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
			s := NewSharded(dev.Mem(), 4096, testShardedSize, 6, testShards)

			// Phase 1 (pre-crash, durable): record a base set and free a
			// deterministic subset; everything here is fenced before the
			// cut counter is armed.
			c := dev.NewCtx()
			tombstoned := map[pmem.PAddr]bool{}
			for i := 0; i < 24; i++ {
				if err := s.RecordAlloc(c, shardedAddr(i), 4096, false); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 24; i += 2 {
				if err := s.RecordFree(c, shardedAddr(i)); err != nil {
					t.Fatal(err)
				}
				tombstoned[shardedAddr(i)] = true
			}
			c.Merge()

			// Phase 2: concurrent appends racing the power cut.
			appended := make([]map[pmem.PAddr]bool, workers)
			dev.CrashAfterFlushes(cut)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				appended[w] = map[pmem.PAddr]bool{}
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wc := dev.NewCtx()
					defer wc.Merge()
					for i := 0; i < 32 && !dev.Crashed(); i++ {
						a := shardedAddr(1000 + w*100 + i)
						if s.RecordAlloc(wc, a, 8192, false) == nil {
							appended[w][a] = true
						}
					}
				}(w)
			}
			wg.Wait()
			dev.Crash()

			_, recs, err := OpenSharded(dev, 4096, testShardedSize, 6, testShards)
			if err != nil {
				t.Fatalf("cut=%d: merged recovery failed: %v", cut, err)
			}
			known := map[pmem.PAddr]bool{}
			for i := 0; i < 24; i++ {
				known[shardedAddr(i)] = true
			}
			for w := range appended {
				for a := range appended[w] {
					known[a] = true
				}
			}
			got := map[pmem.PAddr]bool{}
			for _, r := range recs {
				if got[r.Addr] {
					t.Fatalf("cut=%d: duplicate record %#x in merge", cut, r.Addr)
				}
				got[r.Addr] = true
				if !known[r.Addr] {
					t.Fatalf("cut=%d: recovered never-recorded extent %#x", cut, r.Addr)
				}
				if tombstoned[r.Addr] {
					t.Fatalf("cut=%d: resurrected tombstoned extent %#x", cut, r.Addr)
				}
			}
			// Durable phase-1 survivors must all be present (no leak of a
			// recorded extent).
			for i := 1; i < 24; i += 2 {
				if !got[shardedAddr(i)] {
					t.Fatalf("cut=%d: lost durable record %#x", cut, shardedAddr(i))
				}
			}
		})
	}
}

// TestShardedLazyFormatCostsNothing verifies that creating a sharded log
// writes nothing: formatting is lazy (first append pays it), so unused
// shards are free.
func TestShardedLazyFormatCostsNothing(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
	before := dev.Stats().Flushes
	NewSharded(dev.Mem(), 4096, testShardedSize, 6, testShards)
	if after := dev.Stats().Flushes; after != before {
		t.Fatalf("NewSharded flushed %d lines, want 0", after-before)
	}
	// And an untouched sharded region still opens as empty.
	_, recs, err := OpenSharded(dev, 4096, testShardedSize, 6, testShards)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh region recovered %d records", len(recs))
	}
}
