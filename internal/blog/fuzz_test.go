package blog

import (
	"testing"

	"nvalloc/internal/pmem"
)

// FuzzEntryCodec checks the 8-byte entry encoding over its full domain.
func FuzzEntryCodec(f *testing.F) {
	f.Add(uint32(1), uint32(4096), byte(1))
	f.Add(uint32(1<<20), uint32(1<<25), byte(3))
	f.Fuzz(func(t *testing.T, page, sizeRaw uint32, typRaw byte) {
		addr := pmem36(page)
		size := uint64(sizeRaw) % (1 << 26)
		typ := Type(typRaw%3 + 1)
		a, s, ty := decode(encode(addr, size, typ))
		if a != addr || s != size || ty != typ {
			t.Fatalf("roundtrip: (%#x,%d,%d) -> (%#x,%d,%d)", addr, size, typ, a, s, ty)
		}
	})
}

// pmem36 builds a 4 KiB-aligned address within the 36-bit page field.
func pmem36(page uint32) pmem.PAddr {
	return pmem.PAddr(page) << 12
}
