package blog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvalloc/internal/pmem"
)

const testRegion = 256 * ChunkSize

func newTestLog(t *testing.T) (*pmem.Device, *Log, *pmem.Ctx) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
	l := New(dev.Mem(), 4096, testRegion, 6)
	return dev, l, dev.NewCtx()
}

func reopen(t *testing.T, dev *pmem.Device) (*Log, map[pmem.PAddr]Record) {
	t.Helper()
	l, recs, err := Open(dev, 4096, testRegion, 6)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[pmem.PAddr]Record, len(recs))
	for _, r := range recs {
		m[r.Addr] = r
	}
	return l, m
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(page uint32, size uint32, tRaw uint8) bool {
		addr := pmem.PAddr(page) << 12
		sz := uint64(size) % (1 << 26)
		typ := Type(tRaw%3 + 1)
		a, s, ty := decode(encode(addr, sz, typ))
		return a == addr && s == sz && ty == typ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"oversize":  func() { encode(0x1000, 1<<26, TypeExtent) },
		"unaligned": func() { encode(0x1001, 8, TypeExtent) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAllocFreeRecoverRoundtrip(t *testing.T) {
	dev, l, c := newTestLog(t)
	if err := l.RecordAlloc(c, 0x10000, 64<<10, true); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordAlloc(c, 0x20000, 4096, false); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordAlloc(c, 0x30000, 8192, false); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordFree(c, 0x20000); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	_, recs := reopen(t, dev)
	if len(recs) != 2 {
		t.Fatalf("want 2 live records, got %v", recs)
	}
	if r := recs[0x10000]; !r.Slab || r.Size != 64<<10 {
		t.Fatalf("slab record wrong: %+v", r)
	}
	if r := recs[0x30000]; r.Slab || r.Size != 8192 {
		t.Fatalf("extent record wrong: %+v", r)
	}
}

func TestFreeUnknownAddress(t *testing.T) {
	_, l, c := newTestLog(t)
	if err := l.RecordFree(c, 0xDEAD000); err == nil {
		t.Fatal("expected error for unrecorded free")
	}
}

func TestReallocSameAddressKeepsLatestSize(t *testing.T) {
	dev, l, c := newTestLog(t)
	check := func(wantSize uint64) {
		t.Helper()
		dev.Crash()
		_, recs := reopen(t, dev)
		if len(recs) != 1 || recs[0x50000].Size != wantSize {
			t.Fatalf("want single record size %d, got %v", wantSize, recs)
		}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.RecordAlloc(c, 0x50000, 4096, false))
	must(l.RecordFree(c, 0x50000))
	must(l.RecordAlloc(c, 0x50000, 16384, false))
	check(16384)
}

func TestFastGCRetiresEmptyChunksAndReusesThem(t *testing.T) {
	_, l, c := newTestLog(t)
	// Fill several chunks then free everything in the first ones.
	var addrs []pmem.PAddr
	for i := 0; i < l.EntriesPerChunk()*3; i++ {
		a := pmem.PAddr(0x100000 + i*0x1000)
		if err := l.RecordAlloc(c, a, 4096, false); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	active0 := l.ActiveChunks()
	if active0 < 3 {
		t.Fatalf("expected >=3 chunks, got %d", active0)
	}
	for _, a := range addrs[:l.EntriesPerChunk()*2] {
		if err := l.RecordFree(c, a); err != nil {
			t.Fatal(err)
		}
	}
	// The frees themselves wrote tombstones into later chunks; the first
	// two chunks should now be empty.
	n := l.FastGC(c)
	if n < 2 {
		t.Fatalf("fast GC retired %d chunks, want >= 2", n)
	}
	if fast, _ := l.GCCounts(); fast == 0 {
		t.Fatal("fast GC counter not bumped")
	}
	// New appends should reactivate dormant chunks rather than growing.
	grew := l.ActiveChunks()
	for i := 0; i < l.EntriesPerChunk(); i++ {
		a := pmem.PAddr(0x900000 + i*0x1000)
		if err := l.RecordAlloc(c, a, 4096, false); err != nil {
			t.Fatal(err)
		}
	}
	if l.ActiveChunks() > grew+1 {
		t.Fatalf("appends should reuse dormant chunks: %d -> %d", grew, l.ActiveChunks())
	}
}

func TestDormantReuseDoesNotResurrectStaleEntries(t *testing.T) {
	dev, l, c := newTestLog(t)
	// Fill one chunk, free all of it, fast-GC it, then reuse it with a
	// single fresh entry. Recovery must see exactly the live set.
	var addrs []pmem.PAddr
	for i := 0; i < l.EntriesPerChunk(); i++ {
		a := pmem.PAddr(0x200000 + i*0x1000)
		if err := l.RecordAlloc(c, a, 4096, false); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := l.RecordFree(c, a); err != nil {
			t.Fatal(err)
		}
	}
	l.FastGC(c)
	// Force enough appends to cycle into the dormant chunk.
	var fresh []pmem.PAddr
	for i := 0; i < l.EntriesPerChunk()+4; i++ {
		a := pmem.PAddr(0x800000 + i*0x1000)
		if err := l.RecordAlloc(c, a, 4096, false); err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, a)
	}
	dev.Crash()
	_, recs := reopen(t, dev)
	if len(recs) != len(fresh) {
		t.Fatalf("stale entries resurrected or lost: got %d, want %d", len(recs), len(fresh))
	}
	for _, a := range fresh {
		if _, ok := recs[a]; !ok {
			t.Fatalf("live record %#x missing", a)
		}
	}
}

func TestSlowGCCompactsAndSurvivesRecovery(t *testing.T) {
	dev, l, c := newTestLog(t)
	live := map[pmem.PAddr]bool{}
	for i := 0; i < l.EntriesPerChunk()*4; i++ {
		a := pmem.PAddr(0x100000 + i*0x1000)
		if err := l.RecordAlloc(c, a, 4096, false); err != nil {
			t.Fatal(err)
		}
		live[a] = true
	}
	// Free 3 of every 4 entries, scattered so no chunk empties fully.
	i := 0
	for a := range live {
		if i%4 != 0 {
			if err := l.RecordFree(c, a); err != nil {
				t.Fatal(err)
			}
			delete(live, a)
		}
		i++
	}
	before := l.ActiveChunks()
	n, err := l.SlowGC(c)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(live) {
		t.Fatalf("slow GC copied %d, want %d", n, len(live))
	}
	if l.ActiveChunks() >= before {
		t.Fatalf("slow GC did not shrink the chain: %d -> %d", before, l.ActiveChunks())
	}
	if _, slow := l.GCCounts(); slow != 1 {
		t.Fatal("slow GC counter not bumped")
	}
	// Log must remain fully functional and recoverable.
	if err := l.RecordAlloc(c, 0xF00000, 4096, false); err != nil {
		t.Fatal(err)
	}
	live[0xF00000] = true
	dev.Crash()
	_, recs := reopen(t, dev)
	if len(recs) != len(live) {
		t.Fatalf("after slow GC + crash: got %d live, want %d", len(recs), len(live))
	}
	for a := range live {
		if _, ok := recs[a]; !ok {
			t.Fatalf("live record %#x lost by slow GC", a)
		}
	}
}

func TestCrashDuringSlowGCKeepsOldChain(t *testing.T) {
	dev, l, c := newTestLog(t)
	live := map[pmem.PAddr]bool{}
	for i := 0; i < l.EntriesPerChunk()*2; i++ {
		a := pmem.PAddr(0x100000 + i*0x1000)
		if err := l.RecordAlloc(c, a, 4096, false); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			live[a] = true
		} else if err := l.RecordFree(c, a); err != nil {
			t.Fatal(err)
		}
	}
	// Cut power partway through the slow GC: the alt flip is the very
	// last flush, so any earlier cut must preserve the old chain.
	for _, cut := range []int64{1, 3, 5} {
		img := dev // strict device: crash rolls back to flushed state
		img.CrashAfterFlushes(cut)
		_, _ = l.SlowGC(c)
		img.Crash()
		l2, recs := reopen(t, img)
		if len(recs) != len(live) {
			t.Fatalf("cut=%d: got %d live, want %d", cut, len(recs), len(live))
		}
		l = l2
		c = dev.NewCtx()
	}
}

func TestRecoveryAfterCleanOperationsRandomized(t *testing.T) {
	dev, l, c := newTestLog(t)
	rng := rand.New(rand.NewSource(7))
	live := map[pmem.PAddr]uint64{}
	var order []pmem.PAddr
	next := pmem.PAddr(0x100000)
	for op := 0; op < 3000; op++ {
		if len(order) == 0 || rng.Intn(100) < 55 {
			size := uint64(rng.Intn(64)+1) * 4096
			if err := l.RecordAlloc(c, next, size, rng.Intn(4) == 0); err != nil {
				t.Fatal(err)
			}
			live[next] = size
			order = append(order, next)
			next += 0x1000
		} else {
			i := rng.Intn(len(order))
			a := order[i]
			order[i] = order[len(order)-1]
			order = order[:len(order)-1]
			if err := l.RecordFree(c, a); err != nil {
				t.Fatal(err)
			}
			delete(live, a)
		}
		if op%500 == 250 {
			l.MaybeGC(c)
		}
	}
	dev.Crash()
	_, recs := reopen(t, dev)
	if len(recs) != len(live) {
		t.Fatalf("live mismatch: got %d, want %d", len(recs), len(live))
	}
	for a, sz := range live {
		r, ok := recs[a]
		if !ok || r.Size != sz {
			t.Fatalf("record %#x: %+v want size %d", a, r, sz)
		}
	}
}

func TestAppendsAreSequentialNotRandom(t *testing.T) {
	dev, l, _ := newTestLog(t)
	c := dev.NewCtx()
	for i := 0; i < 500; i++ {
		if err := l.RecordAlloc(c, pmem.PAddr(0x100000+i*0x1000), 4096, false); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Local()
	// The whole point of log-structured bookkeeping: metadata writes are
	// (mostly) not reflushes. Chunk-header link updates may be random,
	// but entry appends dominate.
	if s.Reflushes*5 > s.Flushes {
		t.Fatalf("too many reflushes in log appends: %d of %d", s.Reflushes, s.Flushes)
	}
}

func TestInterleavedAppendsAvoidReflush(t *testing.T) {
	run := func(stripes int) uint64 {
		dev := pmem.New(pmem.Config{Size: 8 << 20})
		l := New(dev.Mem(), 4096, testRegion, stripes)
		c := dev.NewCtx()
		// The first append creates the chunk (break + head pointer share
		// the log header line, a one-time reflush); measure steady state.
		if err := l.RecordAlloc(c, 0x100000, 4096, false); err != nil {
			t.Fatal(err)
		}
		start := c.Local().Reflushes
		for i := 1; i < l.EntriesPerChunk(); i++ {
			if err := l.RecordAlloc(c, pmem.PAddr(0x100000+i*0x1000), 4096, false); err != nil {
				t.Fatal(err)
			}
		}
		return c.Local().Reflushes - start
	}
	if r := run(6); r != 0 {
		t.Fatalf("interleaved log appends reflushed %d times", r)
	}
	if r := run(1); r == 0 {
		t.Fatal("sequential entry layout must reflush (8 entries share a line)")
	}
}

func TestRegionSizeScaling(t *testing.T) {
	if RegionSize(1<<20)%ChunkSize != 0 {
		t.Fatal("region size must be chunk aligned")
	}
	if RegionSize(1<<30) <= RegionSize(1<<20) {
		t.Fatal("region must scale with heap size")
	}
	if RegionSize(0) < 64*ChunkSize {
		t.Fatal("region floor violated")
	}
}

func TestLogRegionExhaustion(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 8 << 20})
	l := New(dev.Mem(), 4096, 2*ChunkSize, 6) // tiny: 2 chunks only
	c := dev.NewCtx()
	var err error
	for i := 0; i < 3*l.EntriesPerChunk(); i++ {
		err = l.RecordAlloc(c, pmem.PAddr(0x100000+i*0x1000), 4096, false)
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestCrashFuzzEveryFlushBoundary(t *testing.T) {
	// Cut power at a sweep of flush counts during a random alloc/free/GC
	// sequence. After every cut the log must recover without error, report
	// a duplicate-free live set that is a subset of everything ever
	// allocated, and remain fully usable.
	everAllocated := map[pmem.PAddr]bool{}
	script := func(l *Log, dev *pmem.Device, c *pmem.Ctx, record bool) {
		rng := rand.New(rand.NewSource(21))
		var live []pmem.PAddr
		next := pmem.PAddr(0x100000)
		for op := 0; op < 1200; op++ {
			if dev.Crashed() {
				return
			}
			if len(live) == 0 || rng.Intn(100) < 60 {
				if err := l.RecordAlloc(c, next, 4096, rng.Intn(3) == 0); err != nil {
					return
				}
				if record {
					everAllocated[next] = true
				}
				live = append(live, next)
				next += 0x1000
			} else {
				i := rng.Intn(len(live))
				if err := l.RecordFree(c, live[i]); err != nil {
					return
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if op%300 == 150 {
				l.MaybeGC(c)
			}
			if op%400 == 399 {
				_, _ = l.SlowGC(c)
			}
		}
	}
	// One clean pass to collect the address universe.
	{
		dev := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
		l := New(dev.Mem(), 4096, testRegion, 6)
		script(l, dev, dev.NewCtx(), true)
	}
	for cut := int64(1); cut < 400; cut += 13 {
		dev := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
		l := New(dev.Mem(), 4096, testRegion, 6)
		dev.CrashAfterFlushes(cut)
		script(l, dev, dev.NewCtx(), false)
		dev.Crash()
		l2, recs, err := Open(dev, 4096, testRegion, 6)
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		seen := map[pmem.PAddr]bool{}
		for _, r := range recs {
			if seen[r.Addr] {
				t.Fatalf("cut=%d: duplicate live record %#x", cut, r.Addr)
			}
			seen[r.Addr] = true
			if !everAllocated[r.Addr] {
				t.Fatalf("cut=%d: phantom record %#x", cut, r.Addr)
			}
			if r.Size == 0 || r.Size%4096 != 0 {
				t.Fatalf("cut=%d: corrupt record %+v", cut, r)
			}
		}
		// The recovered log stays usable end to end.
		c := dev.NewCtx()
		if err := l2.RecordAlloc(c, 0xF000000, 8192, false); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l2.RecordFree(c, 0xF000000); err != nil {
			t.Fatalf("cut=%d: free after recovery: %v", cut, err)
		}
	}
}

func TestRecordBatchSingleFenceAndRecovery(t *testing.T) {
	dev, l, c := newTestLog(t)
	// Warm-up: force the first chunk into existence so the fence count
	// below measures the batch itself, not chunk allocation.
	if err := l.RecordAlloc(c, 0x50000, 4096, false); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordFree(c, 0x50000); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Addr: 0x10000, Size: 64 << 10, Slab: true},
		{Addr: 0x20000, Size: 4096},
		{Addr: 0x30000, Size: 8192},
		{Addr: 0x40000, Size: 16384},
	}
	f0 := c.Local().Fences
	if err := l.RecordAllocBatch(c, recs); err != nil {
		t.Fatal(err)
	}
	if fences := c.Local().Fences - f0; fences != 1 {
		t.Fatalf("alloc batch of %d issued %d fences, want 1", len(recs), fences)
	}
	f0 = c.Local().Fences
	if err := l.RecordFreeBatch(c, []pmem.PAddr{0x20000, 0x40000}); err != nil {
		t.Fatal(err)
	}
	if fences := c.Local().Fences - f0; fences != 1 {
		t.Fatalf("free batch issued %d fences, want 1", fences)
	}
	dev.Crash()
	_, live := reopen(t, dev)
	if len(live) != 2 {
		t.Fatalf("want 2 live records after batch alloc+free, got %v", live)
	}
	if r, ok := live[0x10000]; !ok || r.Size != 64<<10 || !r.Slab {
		t.Fatalf("slab record lost or mangled: %+v %v", r, ok)
	}
	if r, ok := live[0x30000]; !ok || r.Size != 8192 {
		t.Fatalf("extent record lost or mangled: %+v %v", r, ok)
	}
}

func TestRecordFreeBatchUnknownAddrFailsFenced(t *testing.T) {
	dev, l, c := newTestLog(t)
	if err := l.RecordAlloc(c, 0x10000, 4096, false); err != nil {
		t.Fatal(err)
	}
	// The first address tombstones fine; the unknown one aborts the batch
	// but the persisted prefix must still be fenced and recoverable.
	if err := l.RecordFreeBatch(c, []pmem.PAddr{0x10000, 0x99000}); err == nil {
		t.Fatal("free batch with unrecorded address must error")
	}
	dev.Crash()
	_, live := reopen(t, dev)
	if len(live) != 0 {
		t.Fatalf("prefix tombstone lost: %v", live)
	}
}
