package blog

import (
	"testing"

	"nvalloc/internal/pmem"
)

// gcAddr maps a small integer to a distinct page-aligned record address.
// Blog records are opaque payload addresses; they need not lie inside the
// test device.
func gcAddr(i int) pmem.PAddr { return pmem.PAddr(1<<24) + pmem.PAddr(i)*0x1000 }

// TestSlowGCAbortOnChunkExhaustion drives the incremental slow GC into
// mid-flight chunk exhaustion: the upfront capacity check passes, then
// interleaved appends carve the region break out from under the copy
// steps. The GC must abort cleanly — old chain untouched, log usable,
// records recoverable — and a restart must succeed once space exists.
func TestSlowGCAbortOnChunkExhaustion(t *testing.T) {
	dev, l, c := newTestLog(t)
	per := l.EntriesPerChunk()

	// Fill ~120 chunks with live entries: the capacity check sees enough
	// headroom (256-chunk region) and lets the GC start.
	nFill := 120 * per
	for i := 0; i < nFill; i++ {
		if err := l.RecordAlloc(c, gcAddr(i), 4096, false); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := l.startSlowGC(c); err != nil {
		t.Fatalf("startSlowGC: %v", err)
	}
	if !l.GCActive() {
		t.Fatal("GC not active after start")
	}

	// Steal the headroom: appends during the GC carve ~30 chunks from the
	// break, which the capacity check had counted for the new chain.
	for i := 0; i < 30*per; i++ {
		if err := l.RecordAlloc(c, gcAddr(nFill+i), 4096, false); err != nil {
			t.Fatalf("interleaved append %d: %v", i, err)
		}
	}

	// Step the GC to exhaustion: it must fail and abort, not wedge.
	var gcErr error
	for i := 0; i < 1000; i++ {
		done, err := l.slowGCStep(c, 1)
		if err != nil {
			gcErr = err
			break
		}
		if done {
			break
		}
	}
	if gcErr == nil {
		t.Fatal("slow GC completed despite stolen chunks; want mid-flight abort")
	}
	if l.GCActive() {
		t.Fatal("GC still active after abort")
	}

	// The log must remain fully usable after the abort...
	if err := l.RecordAlloc(c, gcAddr(nFill+30*per), 8192, false); err != nil {
		t.Fatalf("append after abort: %v", err)
	}
	// ...and an immediate restart must be refused by the capacity check
	// (the region genuinely cannot hold a full copy any more).
	if _, err := l.SlowGC(c); err == nil {
		t.Fatal("SlowGC restarted without capacity; want upfront refusal")
	}

	// The old chain was never touched: a crash right after the abort
	// recovers every record. (A *restart* in this region is genuinely
	// impossible — free tombstones consume exactly the capacity the frees
	// release, and the abort's carved chunks stay unreachable until a GC
	// completes — which is what the upfront refusal above verified.)
	dev.Crash()
	_, recs := reopen(t, dev)
	want := nFill + 30*per + 1
	if len(recs) != want {
		t.Fatalf("recovered %d records, want %d", len(recs), want)
	}
}

// TestSlowGCAbortAndRestart aborts a partially copied slow GC directly
// (the abort path independent of the exhaustion trigger) on a log with
// headroom, and requires a fresh SlowGC to then complete with the right
// live count and a crash afterwards to recover exactly the live set.
func TestSlowGCAbortAndRestart(t *testing.T) {
	dev, l, c := newTestLog(t)
	per := l.EntriesPerChunk()

	n := 8 * per
	for i := 0; i < n; i++ {
		if err := l.RecordAlloc(c, gcAddr(i), 4096, false); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := l.RecordFree(c, gcAddr(i)); err != nil {
			t.Fatalf("free %d: %v", i, err)
		}
	}
	liveWant := n - (n+2)/3

	if err := l.startSlowGC(c); err != nil {
		t.Fatalf("startSlowGC: %v", err)
	}
	// Copy a couple of chunks into the shadow chain, then bail out.
	for i := 0; i < 2; i++ {
		if done, err := l.slowGCStep(c, 1); done || err != nil {
			t.Fatalf("step %d ended early: done=%v err=%v", i, done, err)
		}
	}
	l.abortSlowGC()
	if l.GCActive() {
		t.Fatal("GC still active after abort")
	}

	// The abandoned shadow chunks went back to the free list: a restarted
	// GC must complete and copy every live record.
	copied, err := l.SlowGC(c)
	if err != nil {
		t.Fatalf("restarted SlowGC: %v", err)
	}
	if copied != liveWant {
		t.Fatalf("restarted GC copied %d, want %d", copied, liveWant)
	}
	dev.Crash()
	_, recs := reopen(t, dev)
	if len(recs) != liveWant {
		t.Fatalf("recovered %d records after compaction, want %d", len(recs), liveWant)
	}
	for i := 0; i < n; i++ {
		_, got := recs[gcAddr(i)]
		if want := i%3 != 0; got != want {
			t.Fatalf("record %d survival = %v, want %v", i, got, want)
		}
	}
}

// gcInterleaveRun replays the deterministic append/free/GC-step schedule
// on dev and returns, for every schedule position, the XOR fingerprint of
// the live record set after that position (fingerprints[i] covers
// positions 0..i-1, so fingerprints[0] is the empty set). The schedule
// interleaves single-chunk slow-GC steps with appends and frees, so crash
// boundaries land between arbitrary copy steps of the new chain.
func gcInterleaveRun(dev *pmem.Device) []uint64 {
	l := New(dev.Mem(), 4096, testRegion, 6)
	c := dev.NewCtx()
	per := l.EntriesPerChunk()

	live := map[pmem.PAddr]uint64{}
	fp := uint64(0)
	mix := func(a pmem.PAddr, size uint64) uint64 {
		x := uint64(a)*0x9E3779B97F4A7C15 ^ size*0xBF58476D1CE4E5B9
		x ^= x >> 29
		return x
	}
	var fps []uint64
	note := func() { fps = append(fps, fp) }
	alloc := func(i int, size uint64) {
		a := gcAddr(i)
		if l.RecordAlloc(c, a, size, false) == nil {
			fp ^= mix(a, size)
			live[a] = size
		}
		note()
	}
	free := func(i int) {
		a := gcAddr(i)
		if sz, ok := live[a]; ok && l.RecordFree(c, a) == nil {
			fp ^= mix(a, sz)
			delete(live, a)
		}
		note()
	}

	note() // position 0: empty log
	n := 10 * per
	for i := 0; i < n; i++ {
		alloc(i, 4096)
	}
	for i := 0; i < n; i += 5 {
		free(i)
	}
	_ = l.startSlowGC(c)
	note()
	next := n
	for i := 0; i < 14; i++ {
		done, err := l.slowGCStep(c, 1)
		note()
		for j := 0; j < 5; j++ {
			alloc(next, 8192)
			next++
		}
		free(next - 4)
		if done || err != nil {
			break
		}
	}
	for i := 0; i < 1000; i++ {
		done, err := l.slowGCStep(c, 1)
		note()
		if done || err != nil {
			break
		}
	}
	c.Merge() // fold flush counts so dev.FlushTotal sees the schedule
	return fps
}

// TestCrashSweepSlowGCInterleavedAppends cuts power at a sweep of flush
// counts across a schedule that interleaves incremental slow-GC steps
// with appends and frees, and verifies every recovered record set is
// exactly the live set at some schedule position: no recovered state may
// mix the old chain with a partially built new chain, lose an
// acknowledged append, or resurrect a freed record.
func TestCrashSweepSlowGCInterleavedAppends(t *testing.T) {
	ref := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
	fps := gcInterleaveRun(ref)
	window := int64(ref.FlushTotal())
	if window == 0 {
		t.Fatal("schedule issued no flushes")
	}
	maxCuts := int64(150)
	if testing.Short() {
		maxCuts = 20
	}
	stride := (window + maxCuts - 1) / maxCuts
	mix := func(a pmem.PAddr, size uint64) uint64 {
		x := uint64(a)*0x9E3779B97F4A7C15 ^ size*0xBF58476D1CE4E5B9
		x ^= x >> 29
		return x
	}
	for cut := int64(1); cut <= window; cut += stride {
		dev := pmem.New(pmem.Config{Size: 8 << 20, Strict: true})
		dev.CrashAfterFlushes(cut)
		gcInterleaveRun(dev)
		dev.Crash()
		_, recs := reopen(t, dev)
		got := uint64(0)
		for a, r := range recs {
			got ^= mix(a, r.Size)
		}
		ok := false
		for _, want := range fps {
			if got == want {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("cut=%d/%d: recovered %d records matching no schedule position",
				cut, window, len(recs))
		}
	}
}
