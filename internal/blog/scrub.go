package blog

import (
	"fmt"

	"nvalloc/internal/pmem"
)

// Scrub repairs a damaged log region in place so a subsequent Open
// succeeds: an unsealable alt or head word empties the log, the chunk
// chain is truncated before the first corrupt chunk, and an empty chunk
// with a stale checksum is repaired in place (mirroring Open's
// mid-reactivation tolerance). Entries in dropped chunks are lost —
// scavenging trades tail records for a mountable heap. It returns a
// description of every repair made (empty when nothing was wrong).
func Scrub(dev pmem.Dev, base pmem.PAddr, size uint64, stripes int) []string {
	l := newLog(dev.Mem(), base, size, stripes)
	c := dev.NewCtx()
	defer c.Merge()
	var done []string

	alt, ok := pmem.UnsealU64(dev.ReadU64(base + offAlt))
	if !ok {
		c.PersistU64(pmem.CatMeta, base+offAlt, pmem.SealU64(0))
		c.Fence()
		alt = 0
		done = append(done, "reset unsealable alt word")
	}
	l.alt = alt & 1

	truncate := func(prev pmem.PAddr, why string) {
		if prev == pmem.Null {
			c.PersistU64(pmem.CatMeta, l.headPtrOff(), pmem.SealU64(0))
		} else {
			c.PersistU64(pmem.CatMeta, prev+coNext, 0)
		}
		c.Fence()
		done = append(done, why)
	}

	headRaw, ok := pmem.UnsealU64(dev.ReadU64(l.headPtrOff()))
	if !ok {
		truncate(pmem.Null, "reset unsealable head pointer (log emptied)")
		return done
	}
	head := pmem.PAddr(headRaw)
	if head != pmem.Null && !l.validChunkAddr(head) {
		truncate(pmem.Null, fmt.Sprintf("cleared out-of-range head pointer %#x (log emptied)", head))
		return done
	}
	seen := make(map[pmem.PAddr]bool)
	prev := pmem.Null
	for a := head; a != pmem.Null; {
		if seen[a] {
			truncate(prev, fmt.Sprintf("broke chunk-chain cycle at %#x", a))
			break
		}
		seen[a] = true
		if m := dev.ReadU32(a + coMagic); m != chunkMagic {
			truncate(prev, fmt.Sprintf("truncated chain at chunk %#x (bad magic %#x)", a, m))
			break
		}
		seq := dev.ReadU64(a + coSeq)
		if got, want := dev.ReadU32(a+coCRC), chunkCRC(seq); got != want {
			empty := true
			for _, b := range dev.Bytes(a+chunkHdrSize, ChunkSize-chunkHdrSize) {
				if b != 0 {
					empty = false
					break
				}
			}
			if !empty {
				truncate(prev, fmt.Sprintf("truncated chain at chunk %#x (checksum %#x, want %#x)", a, got, want))
				break
			}
			dev.WriteU32(a+coCRC, want)
			c.Flush(pmem.CatMeta, a, chunkHdrSize)
			c.Fence()
			done = append(done, fmt.Sprintf("repaired checksum of empty chunk %#x", a))
		}
		next := pmem.PAddr(dev.ReadU64(a + coNext))
		if next != pmem.Null && !l.validChunkAddr(next) {
			c.PersistU64(pmem.CatMeta, a+coNext, 0)
			c.Fence()
			done = append(done, fmt.Sprintf("cleared out-of-range next pointer %#x of chunk %#x", next, a))
			break
		}
		prev, a = a, next
	}
	return done
}

// DropRecord zeroes every normal entry for addr in the chunk chain —
// the scavenger's tool for discarding a live-extent record that failed
// extent-level validation (misaligned, overlapping, out of range).
// Returns how many entries were cleared. The chain must already be
// structurally sound (run Scrub first); a damaged chain stops the walk
// early rather than erroring.
func DropRecord(dev pmem.Dev, base pmem.PAddr, size uint64, stripes int, addr pmem.PAddr) int {
	l := newLog(dev.Mem(), base, size, stripes)
	c := dev.NewCtx()
	defer c.Merge()
	alt, ok := pmem.UnsealU64(dev.ReadU64(base + offAlt))
	if !ok {
		return 0
	}
	l.alt = alt & 1
	headRaw, ok := pmem.UnsealU64(dev.ReadU64(l.headPtrOff()))
	if !ok {
		return 0
	}
	dropped := 0
	seen := make(map[pmem.PAddr]bool)
	for a := pmem.PAddr(headRaw); a != pmem.Null && !seen[a] && l.validChunkAddr(a); {
		seen[a] = true
		for slot := 0; slot < l.perChunk; slot++ {
			ea := l.entryAddr(a, slot)
			raw := dev.ReadU64(ea)
			if raw == 0 {
				continue
			}
			if ra, _, t := decode(raw); ra == addr && (t == TypeExtent || t == TypeSlab) {
				c.PersistU64(pmem.CatMeta, ea, 0)
				dropped++
			}
		}
		a = pmem.PAddr(dev.ReadU64(a + coNext))
	}
	if dropped > 0 {
		c.Fence()
	}
	return dropped
}
