// Package blog implements NVAlloc's persistent bookkeeping log
// (Section 5.3): a log-structured record of every live extent, written
// sequentially so that large-allocation metadata never causes small
// random writes to persistent memory.
//
// The log region holds a header plus 1 KiB chunks. Each chunk stores a
// 64 B chunk header and up to 120 eight-byte entries (96 with the default
// six stripes — see PerChunk) placed with the same interleaved mapping as
// slab bitmaps so consecutive appends hit different cache lines. (The
// paper packs 128 entries per chunk with an out-of-band header; we keep
// the header inside the chunk for a self-contained layout.)
//
// Entry format (8 B, little endian):
//
//	bits  0..25  size in bytes (<= 64 MiB)
//	bits 26..61  address >> 12 (extents are 4 KiB aligned)
//	bits 62..63  type: 1 extent, 2 slab, 3 tombstone (0 = empty slot)
//
// Volatile state mirrors the paper: one vchunk (validity bitmap) per
// active chunk, kept in a red-black tree; a free-chunk list; and an
// address index so freeing an extent can clear the vbit of its normal
// entry. Fast GC retires chunks whose vbitmap is empty by clearing one
// activeness bit; slow GC rewrites live entries into a fresh chain and
// flips the header's alt bit atomically.
package blog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"nvalloc/internal/interleave"
	"nvalloc/internal/pmem"
	"nvalloc/internal/rbtree"
)

// ChunkSize is the persistent footprint of one log chunk.
const ChunkSize = 1024

// PerChunk returns the entry capacity of a chunk for a given stripe
// count. A chunk has 15 usable lines after its header; interleaving pads
// each stripe to whole cache lines, so the capacity is the largest
// stripe-balanced layout that fits (120 entries sequentially, 96 with the
// default 6 stripes; the paper's 128 assumes an out-of-band header and no
// stripe padding).
func PerChunk(stripes int) int {
	usable := (ChunkSize - chunkHdrSize) / pmem.LineSize
	if stripes < 1 {
		stripes = 1
	}
	if stripes > usable {
		stripes = usable
	}
	return (usable / stripes) * stripes * (pmem.LineSize / 8)
}

const (
	headerSize   = pmem.LineSize // log header: two chain pointers + alt bit + break
	chunkHdrSize = pmem.LineSize

	// Log header field offsets.
	offPtrA  = 0
	offPtrB  = 8
	offAlt   = 16
	offBreak = 24

	// Chunk header field offsets.
	coMagic  = 0  // u32
	coActive = 4  // u32 (1 = active)
	coNext   = 8  // u64 next chunk in chain
	coSeq    = 16 // u64 activation sequence; orders entries globally
	coCRC    = 24 // u32 CRC32C over (magic, seq)

	chunkMagic = 0x4B4E4843 // "CHNK"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// chunkCRC computes a chunk header's checksum. It covers only the magic
// and the activation sequence: the activeness bit is excluded because
// fast GC toggles it with a lone single-word update, and the next pointer
// is excluded so splicing a chunk at the tail stays a single-word atomic
// link (the pointer is validated semantically at Open instead).
func chunkCRC(seq uint64) uint32 {
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:], chunkMagic)
	binary.LittleEndian.PutUint64(b[4:], seq)
	return crc32.Checksum(b[:], crcTable)
}

// Type tags a log entry.
type Type uint8

// Log entry types.
const (
	TypeEmpty     Type = 0
	TypeExtent    Type = 1
	TypeSlab      Type = 2
	TypeTombstone Type = 3
)

// Record is a decoded live-extent record produced by recovery.
type Record struct {
	Addr pmem.PAddr
	Size uint64
	Slab bool
}

func encode(addr pmem.PAddr, size uint64, t Type) uint64 {
	if size >= 1<<26 {
		panic(fmt.Sprintf("blog: size %d exceeds 26-bit entry field", size))
	}
	if addr&0xFFF != 0 {
		panic(fmt.Sprintf("blog: address %#x not 4K aligned", addr))
	}
	return size | uint64(addr>>12)<<26 | uint64(t)<<62
}

func decode(e uint64) (addr pmem.PAddr, size uint64, t Type) {
	return pmem.PAddr(e>>26&(1<<36-1)) << 12, e & (1<<26 - 1), Type(e >> 62)
}

type entryRef struct {
	chunk pmem.PAddr
	slot  int
}

// vchunk is the volatile mirror of one active chunk.
type vchunk struct {
	addr   pmem.PAddr
	bits   [2]uint64 // validity bitmap over the chunk's entries
	live   int
	queued bool // sitting in the empty-candidate queue
}

func (v *vchunk) set(slot int)        { v.bits[slot/64] |= 1 << (slot % 64); v.live++ }
func (v *vchunk) clear(slot int)      { v.bits[slot/64] &^= 1 << (slot % 64); v.live-- }
func (v *vchunk) valid(slot int) bool { return v.bits[slot/64]&(1<<(slot%64)) != 0 }

// Log is the bookkeeping log. Callers serialize access (the large
// allocator holds its resource lock across log operations).
type Log struct {
	dev     pmem.Mem
	base    pmem.PAddr
	size    uint64
	im      interleave.Mapping
	stripes int

	perChunk int // entry capacity per chunk for this stripe count

	// alt caches the unsealed header alt bit (which of the two chain
	// pointers is live); the persistent word is sealed.
	alt uint64

	chunks *rbtree.Tree[pmem.PAddr, *vchunk]
	index  map[pmem.PAddr]entryRef // extent addr -> its normal entry
	// dormant chunks were retired by fast GC but remain linked in the
	// active chain; they are reactivated in place. free chunks are
	// unlinked (slow GC output) and must be re-linked at the tail.
	dormant []pmem.PAddr
	free    []pmem.PAddr
	// empties queues vchunks whose validity bitmap drained to zero, so
	// fast GC retires them in O(retired) instead of scanning every chunk.
	empties []*vchunk
	current *vchunk
	tail    pmem.PAddr // last chunk in the active chain
	cursor  int        // next slot in current
	nextSeq uint64     // next chunk activation sequence

	// SlowGCThreshold is the active-chain byte size beyond which MaybeGC
	// escalates from fast to slow GC.
	SlowGCThreshold uint64

	// GCBudgetChunks bounds how many chunks' worth of live entries one
	// incremental slow-GC step copies, so GC work interleaves with
	// appends instead of stalling them on a large live set.
	GCBudgetChunks int

	// gc holds the state of an in-progress incremental slow GC (nil when
	// no slow GC is underway).
	gc *gcState

	// outstanding counts reserved-but-unpublished entry slots (see
	// reserve/publish). Sharded appenders bump it under the shard lock
	// around out-of-lock publishes; GC must only run when it is zero, so
	// it never snapshots, copies or reconciles a slot whose entry word
	// has not been written yet.
	outstanding int

	lastGCCopied     int
	fastGCs, slowGCs uint64

	// gcWhileOutstanding counts GC passes that began (or stepped) while a
	// reserved slot's publish was still in flight. The sharded facade's
	// outstanding gate must keep this at zero: a nonzero value means GC
	// snapshotted, copied or reconciled an entry word that had not been
	// written yet. Exposed for the race tests.
	gcWhileOutstanding uint64
}

// RegionSize returns a reasonable region size for a heap of the given
// byte capacity (the paper provisions 100 MB for terabyte-class heaps;
// we scale at ~1.5% with a floor).
func RegionSize(heapBytes uint64) uint64 {
	r := heapBytes / 64
	if r < 64*ChunkSize {
		r = 64 * ChunkSize
	}
	return (r + ChunkSize - 1) &^ (ChunkSize - 1)
}

// New formats a fresh log over [base, base+size).
func New(dev pmem.Mem, base pmem.PAddr, size uint64, stripes int) *Log {
	// Formatting is lazy: a fresh (zeroed) region already reads as a valid
	// empty log — zero chain pointers and alt word unseal as zero, and a
	// zero break word means "nothing carved yet" (see readBreak). The
	// header's first persistent write happens with the first chunk carve,
	// so creating a log that is never appended to costs nothing. Like
	// walog.New, this assumes a fresh device: Create never reformats a
	// region holding a previous image.
	return newLog(dev, base, size, stripes)
}

func newLog(dev pmem.Mem, base pmem.PAddr, size uint64, stripes int) *Log {
	if stripes < 1 {
		stripes = 1
	}
	maxStripes := (ChunkSize - chunkHdrSize) / pmem.LineSize // one stripe per line at most
	if stripes > maxStripes {
		stripes = maxStripes
	}
	perChunk := PerChunk(stripes)
	return &Log{
		dev:             dev,
		base:            base,
		size:            size,
		im:              interleave.New(perChunk, 64, stripes, pmem.LineSize),
		stripes:         stripes,
		perChunk:        perChunk,
		chunks:          rbtree.New[pmem.PAddr, *vchunk](func(a, b pmem.PAddr) bool { return a < b }),
		index:           make(map[pmem.PAddr]entryRef),
		SlowGCThreshold: size * 3 / 4,
		GCBudgetChunks:  defaultGCBudgetChunks,
	}
}

// EntriesPerChunk returns this log's per-chunk entry capacity.
func (l *Log) EntriesPerChunk() int { return l.perChunk }

// DataOffset implements extent.Bookkeeper: the log lives in its own
// region, so heap chunks carry no per-chunk reservation.
func (l *Log) DataOffset() uint64 { return 0 }

func (l *Log) entryAddr(chunk pmem.PAddr, slot int) pmem.PAddr {
	return chunk + chunkHdrSize + pmem.PAddr(l.im.ByteOffset(slot))
}

func (l *Log) headPtrOff() pmem.PAddr {
	if l.alt&1 == 0 {
		return l.base + offPtrA
	}
	return l.base + offPtrB
}

func (l *Log) sparePtrOff() pmem.PAddr {
	if l.alt&1 == 0 {
		return l.base + offPtrB
	}
	return l.base + offPtrA
}

// newChunk obtains a chunk and makes it current. Preference order:
// reactivate a dormant chunk in place, relink a free chunk at the tail,
// or carve a fresh chunk from the region break. If no chunk is at hand it
// first attempts a fast GC pass.
func (l *Log) newChunk(c *pmem.Ctx) error {
	if len(l.dormant) == 0 && len(l.free) == 0 && !l.breakHasRoom() {
		l.FastGC(c)
	}
	var addr pmem.PAddr
	switch {
	case len(l.dormant) > 0:
		// Dormant chunks stay linked where they are; wipe stale entries,
		// bump the activation sequence and flip the activeness bit. The
		// wipe is a sequential burst amortized over EntriesPerChunk
		// appends.
		addr = l.dormant[len(l.dormant)-1]
		l.dormant = l.dormant[:len(l.dormant)-1]
		l.dev.Zero(addr+chunkHdrSize, ChunkSize-chunkHdrSize)
		c.Flush(pmem.CatMeta, addr+chunkHdrSize, ChunkSize-chunkHdrSize)
		c.Fence()
		l.dev.WriteU32(addr+coActive, 1)
		l.dev.WriteU64(addr+coSeq, l.nextSeq)
		l.dev.WriteU32(addr+coCRC, chunkCRC(l.nextSeq))
		c.Flush(pmem.CatMeta, addr, chunkHdrSize)
		c.Fence()
	case len(l.free) > 0:
		addr = l.free[len(l.free)-1]
		l.free = l.free[:len(l.free)-1]
		l.dev.Zero(addr+chunkHdrSize, ChunkSize-chunkHdrSize)
		c.Flush(pmem.CatMeta, addr+chunkHdrSize, ChunkSize-chunkHdrSize)
		l.initAndLink(c, addr)
	default:
		brk := pmem.PAddr(l.readBreak())
		if uint64(brk)+ChunkSize > uint64(l.base)+l.size {
			return fmt.Errorf("blog: log region exhausted (%d bytes)", l.size)
		}
		addr = brk
		c.PersistU64(pmem.CatMeta, l.base+offBreak, uint64(brk)+ChunkSize)
		l.initAndLink(c, addr)
	}
	l.nextSeq++
	v := &vchunk{addr: addr}
	l.chunks.Put(addr, v)
	l.current = v
	l.cursor = 0
	return nil
}

func (l *Log) breakHasRoom() bool {
	return l.readBreak()+ChunkSize <= uint64(l.base)+l.size
}

// readBreak returns the region break, mapping the never-written zero
// word of a lazily formatted log to its initial value (see New).
func (l *Log) readBreak() uint64 {
	brk := l.dev.ReadU64(l.base + offBreak)
	if brk == 0 {
		brk = uint64(l.base) + headerSize
	}
	return brk
}

// initAndLink writes a fresh header for an unlinked chunk and splices it
// at the tail of the active chain (header persisted before the link so a
// crash never exposes an uninitialized chunk).
func (l *Log) initAndLink(c *pmem.Ctx, addr pmem.PAddr) {
	l.dev.WriteU32(addr+coMagic, chunkMagic)
	l.dev.WriteU32(addr+coActive, 1)
	l.dev.WriteU64(addr+coNext, 0)
	l.dev.WriteU64(addr+coSeq, l.nextSeq)
	l.dev.WriteU32(addr+coCRC, chunkCRC(l.nextSeq))
	c.Flush(pmem.CatMeta, addr, chunkHdrSize)
	c.Fence()
	if l.tail == pmem.Null {
		c.PersistU64(pmem.CatMeta, l.headPtrOff(), pmem.SealU64(uint64(addr)))
	} else {
		c.PersistU64(pmem.CatMeta, l.tail+coNext, uint64(addr))
	}
	c.Fence()
	l.tail = addr
}

func (l *Log) append(c *pmem.Ctx, e uint64) (entryRef, error) {
	ref, err := l.appendNoFence(c, e)
	if err != nil {
		return entryRef{}, err
	}
	c.Fence()
	return ref, nil
}

// appendNoFence writes and flushes one entry without the trailing fence;
// batch appends issue a single fence after the last entry. Each entry is
// still individually flushed, so a crash mid-batch persists an
// independently valid prefix.
func (l *Log) appendNoFence(c *pmem.Ctx, e uint64) (entryRef, error) {
	ref, err := l.reserve(c)
	if err != nil {
		return entryRef{}, err
	}
	l.publish(c, ref, e)
	return ref, nil
}

// reserve claims the next entry slot (carving a new chunk when the
// current one is full) and marks its validity bit, leaving the
// persistent entry word zero. Callers hold the log's lock; publish may
// then run outside it. A crash between the two leaves a zero slot,
// which recovery skips (the entry scan tolerates interior holes and the
// cursor resumes after the last occupied slot), and the set vbit keeps
// fast GC from retiring — and dormant reactivation from wiping — the
// chunk while the slot is in flight.
func (l *Log) reserve(c *pmem.Ctx) (entryRef, error) {
	if l.current == nil || l.cursor >= l.perChunk {
		if err := l.newChunk(c); err != nil {
			return entryRef{}, err
		}
	}
	slot := l.cursor
	l.cursor++
	l.current.set(slot)
	return entryRef{chunk: l.current.addr, slot: slot}, nil
}

// publish writes and flushes a reserved slot's entry word (no fence).
// Safe outside the log's lock: the slot is privately owned by the
// reserver, an 8-byte aligned store is atomic on the media, and the
// device's line locks order the flush against neighboring slots' writes
// in the same cache line.
func (l *Log) publish(c *pmem.Ctx, ref entryRef, e uint64) {
	c.PersistU64(pmem.CatMeta, l.entryAddr(ref.chunk, ref.slot), e)
}

// RecordAlloc appends a normal entry for a newly live extent.
func (l *Log) RecordAlloc(c *pmem.Ctx, addr pmem.PAddr, size uint64, slab bool) error {
	t := TypeExtent
	if slab {
		t = TypeSlab
	}
	ref, err := l.append(c, encode(addr, size, t))
	if err != nil {
		return err
	}
	l.index[addr] = ref
	return nil
}

// RecordFree appends a tombstone for addr and invalidates its normal
// entry's vbit. It is an error to free an unrecorded address.
func (l *Log) RecordFree(c *pmem.Ctx, addr pmem.PAddr) error {
	ref, ok := l.index[addr]
	if !ok {
		return fmt.Errorf("blog: free of unrecorded extent %#x", addr)
	}
	if _, err := l.append(c, encode(addr, 0, TypeTombstone)); err != nil {
		return err
	}
	delete(l.index, addr)
	if v, ok := l.chunks.Get(ref.chunk); ok {
		v.clear(ref.slot)
		l.noteEmpty(v)
	}
	return nil
}

// RecordAllocBatch appends normal entries for a group of newly live
// extents with one trailing fence. A crash mid-batch persists a prefix
// of independently valid records, so callers must only batch records
// whose partial persistence is safe.
func (l *Log) RecordAllocBatch(c *pmem.Ctx, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	for _, r := range recs {
		t := TypeExtent
		if r.Slab {
			t = TypeSlab
		}
		ref, err := l.appendNoFence(c, encode(r.Addr, r.Size, t))
		if err != nil {
			c.Fence() // order whatever prefix made it out
			return err
		}
		l.index[r.Addr] = ref
	}
	c.Fence()
	return nil
}

// RecordFreeBatch appends tombstones for a group of addresses with one
// trailing fence (see RecordAllocBatch for the mid-batch crash
// contract). Every address must have a live record.
func (l *Log) RecordFreeBatch(c *pmem.Ctx, addrs []pmem.PAddr) error {
	if len(addrs) == 0 {
		return nil
	}
	for _, addr := range addrs {
		ref, ok := l.index[addr]
		if !ok {
			c.Fence()
			return fmt.Errorf("blog: free of unrecorded extent %#x", addr)
		}
		if _, err := l.appendNoFence(c, encode(addr, 0, TypeTombstone)); err != nil {
			c.Fence()
			return err
		}
		delete(l.index, addr)
		if v, ok := l.chunks.Get(ref.chunk); ok {
			v.clear(ref.slot)
			l.noteEmpty(v)
		}
	}
	c.Fence()
	return nil
}

// noteEmpty queues a fully invalidated chunk for fast GC.
func (l *Log) noteEmpty(v *vchunk) {
	if v.live == 0 && !v.queued && v != l.current {
		v.queued = true
		l.empties = append(l.empties, v)
	}
}

// Live returns the number of live (indexed) extents.
func (l *Log) Live() int { return len(l.index) }

// ActiveChunks returns the number of chunks in the active chain.
func (l *Log) ActiveChunks() int { return l.chunks.Len() }

// FreeChunks returns the length of the free-chunk list.
func (l *Log) FreeChunks() int { return len(l.free) }

// GCCounts returns how many fast and slow GC passes have run.
func (l *Log) GCCounts() (fast, slow uint64) { return l.fastGCs, l.slowGCs }

// GCWhileOutstanding returns how many GC passes began while a publish
// was in flight — zero whenever the outstanding gate works.
func (l *Log) GCWhileOutstanding() uint64 { return l.gcWhileOutstanding }
