package blog

import (
	"fmt"
	"sort"

	"nvalloc/internal/pmem"
)

// Sharded is N independent, persistently self-contained bookkeeping
// logs behind one Bookkeeper facade. Each shard owns an equal slice of
// the log region — its own header (chain pointers, alt bit, break) and
// chunk chain — plus its own resource, so record and tombstone appends
// routed to different shards never serialize. Records are routed by a
// deterministic hash of the extent address (a stable proxy for the
// owning arena, whose extents are arena-private), which guarantees a
// free finds the shard its record went to.
//
// Unlike *Log, Sharded serializes itself: callers do NOT wrap calls in
// an external resource (see SelfLocked). GC also runs inline, per
// shard, inside the same shard section as the free that triggered it.
type Sharded struct {
	dev     pmem.Mem
	base    pmem.PAddr
	size    uint64 // per-shard region size
	stripes int

	shards []*Log
	res    []pmem.Resource
}

// shardGranule is the routing granularity: all addresses inside one
// 2 MiB-aligned region hash to the same shard. The granule matches the
// extent layer's lease quantum and comfortably covers one slab-batch
// carve, so the records of a batched refill (contiguous addresses) land
// in one shard — one chunk, one fence — while unrelated regions (other
// arenas' carves, other pools' leases) still spread across shards.
const shardGranule = 2 << 20

// ShardIndex routes an extent address to a shard: a golden-ratio
// multiplicative hash over the address's 2 MiB granule number (see
// shardGranule). Deterministic: the same address always routes to the
// same shard, in every session, which is what lets a tombstone find its
// record.
func ShardIndex(addr pmem.PAddr, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(addr) / shardGranule * 0x9E3779B97F4A7C15
	return int((h >> 33) % uint64(n))
}

// ShardedRegionSize returns the total log-region size for a heap of the
// given byte capacity split over n shards: the single-log provision
// divided evenly, with each shard floored at the minimum useful region
// and chunk-aligned.
func ShardedRegionSize(heapBytes uint64, n int) uint64 {
	if n < 1 {
		n = 1
	}
	per := RegionSize(heapBytes) / uint64(n)
	if per < 64*ChunkSize {
		per = 64 * ChunkSize
	}
	per = (per + ChunkSize - 1) &^ (ChunkSize - 1)
	return per * uint64(n)
}

func shardedLayout(size uint64, n int) uint64 {
	per := (size / uint64(n)) &^ (ChunkSize - 1)
	if per < headerSize+ChunkSize {
		panic(fmt.Sprintf("blog: region %d too small for %d shards", size, n))
	}
	return per
}

// NewSharded formats n fresh log shards over [base, base+size). The
// region is split into n equal chunk-aligned sub-regions.
func NewSharded(dev pmem.Mem, base pmem.PAddr, size uint64, stripes, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	per := shardedLayout(size, n)
	s := &Sharded{dev: dev, base: base, size: per, stripes: stripes,
		shards: make([]*Log, n), res: make([]pmem.Resource, n)}
	for i := 0; i < n; i++ {
		s.shards[i] = New(dev, base+pmem.PAddr(uint64(i)*per), per, stripes)
	}
	return s
}

// OpenSharded reopens n log shards after a restart or crash. Every
// shard recovers independently (each is persistently self-contained),
// and the per-shard live sets are merged into one deterministic,
// address-ordered record list. A crash with any subset of shards
// mid-append recovers each shard's valid prefix.
func OpenSharded(dev pmem.Dev, base pmem.PAddr, size uint64, stripes, n int) (*Sharded, []Record, error) {
	if n < 1 {
		n = 1
	}
	per := shardedLayout(size, n)
	s := &Sharded{dev: dev.Mem(), base: base, size: per, stripes: stripes,
		shards: make([]*Log, n), res: make([]pmem.Resource, n)}
	var all []Record
	for i := 0; i < n; i++ {
		l, recs, err := Open(dev, base+pmem.PAddr(uint64(i)*per), per, stripes)
		if err != nil {
			return nil, nil, fmt.Errorf("blog shard %d: %w", i, err)
		}
		s.shards[i] = l
		all = append(all, recs...)
	}
	// Shards hold disjoint address sets (routing is by address), so the
	// merge is a plain sort: deterministic and collision-free.
	sort.Slice(all, func(i, j int) bool { return all[i].Addr < all[j].Addr })
	return s, all, nil
}

// SelfLocked marks Sharded as serializing its own bookkeeper calls;
// the extent layer skips its external bookkeeper resource when the
// bookkeeper provides one (see extent.SelfLockedBookkeeper).
func (s *Sharded) SelfLocked() {}

// DataOffset implements extent.Bookkeeper: shards live in their own
// region, so heap chunks carry no per-chunk reservation.
func (s *Sharded) DataOffset() uint64 { return 0 }

// RecordAlloc persists that [addr,addr+size) is live, in addr's shard.
//
// The shard's resource covers only slot reservation (a cursor bump, an
// index insert, the occasional chunk carve); the entry's flush and the
// trailing fence run outside it. Concurrent appends that route to the
// same shard therefore serialize only on the near-free reservation —
// the media write is slot-private — instead of queueing behind each
// other's flush+fence. The outstanding counter keeps GC away from the
// shard while any reserved slot's word is still unwritten.
func (s *Sharded) RecordAlloc(c *pmem.Ctx, addr pmem.PAddr, size uint64, slab bool) error {
	t := TypeExtent
	if slab {
		t = TypeSlab
	}
	e := encode(addr, size, t)
	i := ShardIndex(addr, len(s.shards))
	l := s.shards[i]
	s.res[i].Acquire(c)
	ref, err := l.reserve(c)
	if err == nil {
		l.index[addr] = ref
		l.outstanding++
	}
	s.res[i].Release(c)
	if err != nil {
		return err
	}
	l.publish(c, ref, e)
	c.Fence()
	s.res[i].Lock()
	l.outstanding--
	s.res[i].Unlock()
	return nil
}

// RecordFree persists a tombstone for addr in its shard and lets that
// shard run (incremental) GC inside the same section. Like RecordAlloc,
// the tombstone's flush and fence run outside the shard resource; the
// index removal and vbit invalidation happen at reservation time.
func (s *Sharded) RecordFree(c *pmem.Ctx, addr pmem.PAddr) error {
	e := encode(addr, 0, TypeTombstone)
	i := ShardIndex(addr, len(s.shards))
	l := s.shards[i]
	s.res[i].Acquire(c)
	if l.outstanding == 0 {
		l.MaybeGC(c)
	}
	ref, ok := l.index[addr]
	if !ok {
		s.res[i].Release(c)
		return fmt.Errorf("blog: free of unrecorded extent %#x", addr)
	}
	tref, err := l.reserve(c)
	if err != nil {
		s.res[i].Release(c)
		return err
	}
	delete(l.index, addr)
	if v, ok := l.chunks.Get(ref.chunk); ok {
		v.clear(ref.slot)
		l.noteEmpty(v)
	}
	l.outstanding++
	s.res[i].Release(c)
	l.publish(c, tref, e)
	c.Fence()
	s.res[i].Lock()
	l.outstanding--
	s.res[i].Unlock()
	return nil
}

// MaybeGC implements extent.Bookkeeper. GC runs inline per shard on the
// free paths (under the shard's own resource), so the external hook is
// a no-op.
func (s *Sharded) MaybeGC(c *pmem.Ctx) {}

// recordAllocGroup reserves slots for a same-shard group of records
// under the shard resource, then publishes every entry and fences once
// outside it. On a reservation failure (region exhausted) the already
// reserved prefix is still published and fenced — the same valid-prefix
// contract as Log.RecordAllocBatch.
func (s *Sharded) recordAllocGroup(c *pmem.Ctx, i int, recs []Record) error {
	l := s.shards[i]
	words := make([]uint64, len(recs))
	for k, r := range recs {
		t := TypeExtent
		if r.Slab {
			t = TypeSlab
		}
		words[k] = encode(r.Addr, r.Size, t)
	}
	refs := make([]entryRef, 0, len(recs))
	s.res[i].Acquire(c)
	var err error
	for _, r := range recs {
		var ref entryRef
		if ref, err = l.reserve(c); err != nil {
			break
		}
		l.index[r.Addr] = ref
		refs = append(refs, ref)
	}
	if len(refs) > 0 {
		l.outstanding++ // one increment covers the whole group
	}
	s.res[i].Release(c)
	if len(refs) == 0 {
		return err
	}
	for k, ref := range refs {
		l.publish(c, ref, words[k])
	}
	c.Fence()
	s.res[i].Lock()
	l.outstanding--
	s.res[i].Unlock()
	return err
}

// RecordAllocBatch persists a group of records, grouped by shard with
// one fence per touched shard (see recordAllocGroup for the mid-batch
// crash contract).
func (s *Sharded) RecordAllocBatch(c *pmem.Ctx, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	if len(s.shards) == 1 {
		return s.recordAllocGroup(c, 0, recs)
	}
	groups := make(map[int][]Record)
	for _, r := range recs {
		i := ShardIndex(r.Addr, len(s.shards))
		groups[i] = append(groups[i], r)
	}
	for i := 0; i < len(s.shards); i++ {
		if g := groups[i]; len(g) > 0 {
			if err := s.recordAllocGroup(c, i, g); err != nil {
				return err
			}
		}
	}
	return nil
}

// recordFreeGroup is recordAllocGroup's tombstone counterpart: index
// removals and vbit invalidations happen at reservation time under the
// shard resource, publishes and the single fence outside it, with the
// shard's (incremental) GC run at section start when no publish is in
// flight.
func (s *Sharded) recordFreeGroup(c *pmem.Ctx, i int, addrs []pmem.PAddr) error {
	l := s.shards[i]
	words := make([]uint64, len(addrs))
	for k, a := range addrs {
		words[k] = encode(a, 0, TypeTombstone)
	}
	refs := make([]entryRef, 0, len(addrs))
	s.res[i].Acquire(c)
	if l.outstanding == 0 {
		l.MaybeGC(c)
	}
	var err error
	for _, a := range addrs {
		ref, ok := l.index[a]
		if !ok {
			err = fmt.Errorf("blog: free of unrecorded extent %#x", a)
			break
		}
		var tref entryRef
		if tref, err = l.reserve(c); err != nil {
			break
		}
		delete(l.index, a)
		if v, ok := l.chunks.Get(ref.chunk); ok {
			v.clear(ref.slot)
			l.noteEmpty(v)
		}
		refs = append(refs, tref)
	}
	if len(refs) > 0 {
		l.outstanding++
	}
	s.res[i].Release(c)
	if len(refs) == 0 {
		return err
	}
	for k, tref := range refs {
		l.publish(c, tref, words[k])
	}
	c.Fence()
	s.res[i].Lock()
	l.outstanding--
	s.res[i].Unlock()
	return err
}

// RecordFreeBatch persists tombstones for each addr, grouped by shard
// with one fence per touched shard, running each shard's GC inline.
func (s *Sharded) RecordFreeBatch(c *pmem.Ctx, addrs []pmem.PAddr) error {
	if len(addrs) == 0 {
		return nil
	}
	if len(s.shards) == 1 {
		return s.recordFreeGroup(c, 0, addrs)
	}
	groups := make(map[int][]pmem.PAddr)
	for _, a := range addrs {
		i := ShardIndex(a, len(s.shards))
		groups[i] = append(groups[i], a)
	}
	for i := 0; i < len(s.shards); i++ {
		if g := groups[i]; len(g) > 0 {
			if err := s.recordFreeGroup(c, i, g); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetSlowGCThreshold divides a whole-log slow-GC threshold evenly over
// the shards (floored at one chunk so an aggressive threshold still
// triggers per-shard GC).
func (s *Sharded) SetSlowGCThreshold(total uint64) {
	per := total / uint64(len(s.shards))
	if per < ChunkSize {
		per = ChunkSize
	}
	for _, l := range s.shards {
		l.SlowGCThreshold = per
	}
}

// SlowGCAll drives a full slow GC on every shard (recovery-time
// compaction). Shards that cannot shrink (capacity check) or that have
// a publish in flight are skipped.
func (s *Sharded) SlowGCAll(c *pmem.Ctx) {
	for i, l := range s.shards {
		s.res[i].Acquire(c)
		if l.outstanding == 0 {
			_, _ = l.SlowGC(c)
		}
		s.res[i].Release(c)
	}
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes one shard (tests and stats).
func (s *Sharded) Shard(i int) *Log { return s.shards[i] }

// Res exposes shard i's resource for contention instrumentation.
func (s *Sharded) Res(i int) *pmem.Resource { return &s.res[i] }

// EntriesPerChunk returns the per-chunk entry capacity (identical for
// every shard).
func (s *Sharded) EntriesPerChunk() int { return s.shards[0].EntriesPerChunk() }

// Live returns the number of live (indexed) extents across all shards.
func (s *Sharded) Live() int {
	n := 0
	for _, l := range s.shards {
		n += l.Live()
	}
	return n
}

// ActiveChunks returns the total active-chain length across all shards.
func (s *Sharded) ActiveChunks() int {
	n := 0
	for _, l := range s.shards {
		n += l.ActiveChunks()
	}
	return n
}

// FreeChunks returns the total free-chunk count across all shards.
func (s *Sharded) FreeChunks() int {
	n := 0
	for _, l := range s.shards {
		n += l.FreeChunks()
	}
	return n
}

// GCCounts returns total fast and slow GC passes across all shards.
func (s *Sharded) GCCounts() (fast, slow uint64) {
	for _, l := range s.shards {
		f, sl := l.GCCounts()
		fast += f
		slow += sl
	}
	return fast, slow
}

// ScrubSharded repairs every shard of a damaged sharded log region in
// place (see Scrub), prefixing each repair with its shard index.
func ScrubSharded(dev pmem.Dev, base pmem.PAddr, size uint64, stripes, n int) []string {
	if n < 1 {
		n = 1
	}
	per := shardedLayout(size, n)
	var done []string
	for i := 0; i < n; i++ {
		for _, m := range Scrub(dev, base+pmem.PAddr(uint64(i)*per), per, stripes) {
			done = append(done, fmt.Sprintf("shard %d: %s", i, m))
		}
	}
	return done
}

// DropRecordSharded zeroes every normal entry for addr across all
// shards (see DropRecord). The walk covers every shard rather than just
// addr's routed shard, so it stays correct even against images written
// with a different routing function.
func DropRecordSharded(dev pmem.Dev, base pmem.PAddr, size uint64, stripes, n int, addr pmem.PAddr) int {
	if n < 1 {
		n = 1
	}
	per := shardedLayout(size, n)
	dropped := 0
	for i := 0; i < n; i++ {
		dropped += DropRecord(dev, base+pmem.PAddr(uint64(i)*per), per, stripes, addr)
	}
	return dropped
}
