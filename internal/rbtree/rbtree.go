// Package rbtree provides a generic ordered map backed by a red-black
// tree. It backs the structures the paper keeps in DRAM for fast lookup:
// the address index ("R-tree") used to find neighbouring extents, the
// size-ordered index used for best-fit extent selection, and the
// bookkeeping log's vchunk index.
package rbtree

const (
	red   = false
	black = true
)

type node[K, V any] struct {
	key                 K
	val                 V
	left, right, parent *node[K, V]
	color               bool
}

// Tree is an ordered map from K to V. Create one with New.
type Tree[K, V any] struct {
	root *node[K, V]
	less func(a, b K) bool
	size int
}

// New creates a tree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{less: less}
}

// Len returns the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

func (t *Tree[K, V]) find(key K) *node[K, V] {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	if n := t.find(key); n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key.
func (t *Tree[K, V]) Put(key K, val V) {
	var parent *node[K, V]
	n := t.root
	for n != nil {
		parent = n
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			n.val = val
			return
		}
	}
	nn := &node[K, V]{key: key, val: val, parent: parent, color: red}
	t.size++
	if parent == nil {
		t.root = nn
	} else if t.less(key, parent.key) {
		parent.left = nn
	} else {
		parent.right = nn
	}
	t.insertFix(nn)
}

// Delete removes key; it reports whether the key was present.
func (t *Tree[K, V]) Delete(key K) bool {
	n := t.find(key)
	if n == nil {
		return false
	}
	t.deleteNode(n)
	t.size--
	return true
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var k K
		var v V
		return k, v, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil {
		var k K
		var v V
		return k, v, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ceiling returns the smallest entry with key >= key (best-fit search).
func (t *Tree[K, V]) Ceiling(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(n.key, key) {
			n = n.right
		} else {
			best = n
			n = n.left
		}
	}
	if best == nil {
		var k K
		var v V
		return k, v, false
	}
	return best.key, best.val, true
}

// Floor returns the largest entry with key <= key (predecessor search,
// used for extent coalescing).
func (t *Tree[K, V]) Floor(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(key, n.key) {
			n = n.left
		} else {
			best = n
			n = n.right
		}
	}
	if best == nil {
		var k K
		var v V
		return k, v, false
	}
	return best.key, best.val, true
}

// Ascend calls fn on every entry in key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	var walk func(n *node[K, V]) bool
	walk = func(n *node[K, V]) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
		return walk(n.right)
	}
	walk(t.root)
}

func (t *Tree[K, V]) rotateLeft(x *node[K, V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[K, V]) rotateRight(x *node[K, V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[K, V]) insertFix(z *node[K, V]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateRight(gp)
		} else {
			u := gp.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateLeft(gp)
		}
	}
	t.root.color = black
}

func colorOf[K, V any](n *node[K, V]) bool {
	if n == nil {
		return black
	}
	return n.color
}

func (t *Tree[K, V]) transplant(u, v *node[K, V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[K, V]) deleteNode(z *node[K, V]) {
	y := z
	yColor := y.color
	var x, xParent *node[K, V]
	switch {
	case z.left == nil:
		x, xParent = z.right, z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x, xParent = z.left, z.parent
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != nil {
			y = y.left
		}
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == black {
		t.deleteFix(x, xParent)
	}
}

func (t *Tree[K, V]) deleteFix(x, parent *node[K, V]) {
	for x != t.root && colorOf(x) == black {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if colorOf(w) == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if colorOf(w.left) == black && colorOf(w.right) == black {
				w.color = red
				x, parent = parent, parent.parent
			} else {
				if colorOf(w.right) == black {
					if w.left != nil {
						w.left.color = black
					}
					w.color = red
					t.rotateRight(w)
					w = parent.right
				}
				w.color = parent.color
				parent.color = black
				if w.right != nil {
					w.right.color = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if colorOf(w) == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if colorOf(w.right) == black && colorOf(w.left) == black {
				w.color = red
				x, parent = parent, parent.parent
			} else {
				if colorOf(w.left) == black {
					if w.right != nil {
						w.right.color = black
					}
					w.color = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.color = parent.color
				parent.color = black
				if w.left != nil {
					w.left.color = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.color = black
	}
}
