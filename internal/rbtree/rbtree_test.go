package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

// checkInvariants validates the red-black properties and BST ordering.
func checkInvariants[V any](t *testing.T, tr *Tree[int, V]) {
	t.Helper()
	if tr.root != nil && tr.root.color != black {
		t.Fatal("root must be black")
	}
	var blackDepth = -1
	var prev *int
	count := 0
	var walk func(n *node[int, V], depth int)
	walk = func(n *node[int, V], depth int) {
		if n == nil {
			if blackDepth == -1 {
				blackDepth = depth
			} else if depth != blackDepth {
				t.Fatalf("uneven black depth: %d vs %d", depth, blackDepth)
			}
			return
		}
		if n.color == red {
			if colorOf(n.left) == red || colorOf(n.right) == red {
				t.Fatal("red node with red child")
			}
		} else {
			depth++
		}
		if n.left != nil && n.left.parent != n {
			t.Fatal("broken parent pointer (left)")
		}
		if n.right != nil && n.right.parent != n {
			t.Fatal("broken parent pointer (right)")
		}
		walk(n.left, depth)
		if prev != nil && *prev >= n.key {
			t.Fatalf("BST order violated: %d then %d", *prev, n.key)
		}
		k := n.key
		prev = &k
		count++
		walk(n.right, depth)
	}
	walk(tr.root, 0)
	if count != tr.Len() {
		t.Fatalf("size %d != counted %d", tr.Len(), count)
	}
}

func TestPutGetDelete(t *testing.T) {
	tr := New[int, string](intLess)
	tr.Put(5, "five")
	tr.Put(3, "three")
	tr.Put(8, "eight")
	tr.Put(5, "FIVE") // replace
	if v, ok := tr.Get(5); !ok || v != "FIVE" {
		t.Fatalf("get after replace: %q %v", v, ok)
	}
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	if !tr.Delete(3) || tr.Delete(3) {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := tr.Get(3); ok {
		t.Fatal("deleted key still present")
	}
	checkInvariants(t, tr)
}

func TestRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New[int, int](intLess)
	live := map[int]int{}
	for i := 0; i < 5000; i++ {
		k := rng.Intn(800)
		if rng.Intn(3) == 0 {
			delete(live, k)
			tr.Delete(k)
		} else {
			live[k] = i
			tr.Put(k, i)
		}
		if i%500 == 0 {
			checkInvariants(t, tr)
		}
	}
	checkInvariants(t, tr)
	if tr.Len() != len(live) {
		t.Fatalf("tree len %d, want %d", tr.Len(), len(live))
	}
	for k, v := range live {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("key %d: got %d,%v want %d", k, got, ok, v)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int, int](intLess)
	if _, _, ok := tr.Min(); ok {
		t.Fatal("empty Min must report false")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("empty Max must report false")
	}
	for _, k := range []int{50, 20, 70, 10, 60} {
		tr.Put(k, k)
	}
	if k, _, _ := tr.Min(); k != 10 {
		t.Fatalf("min %d", k)
	}
	if k, _, _ := tr.Max(); k != 70 {
		t.Fatalf("max %d", k)
	}
}

func TestCeilingFloor(t *testing.T) {
	tr := New[int, int](intLess)
	for _, k := range []int{10, 20, 30, 40} {
		tr.Put(k, k*10)
	}
	cases := []struct {
		q       int
		ceil    int
		ceilOK  bool
		floor   int
		floorOK bool
	}{
		{5, 10, true, 0, false},
		{10, 10, true, 10, true},
		{15, 20, true, 10, true},
		{40, 40, true, 40, true},
		{45, 0, false, 40, true},
	}
	for _, c := range cases {
		k, _, ok := tr.Ceiling(c.q)
		if ok != c.ceilOK || (ok && k != c.ceil) {
			t.Fatalf("Ceiling(%d) = %d,%v", c.q, k, ok)
		}
		k, _, ok = tr.Floor(c.q)
		if ok != c.floorOK || (ok && k != c.floor) {
			t.Fatalf("Floor(%d) = %d,%v", c.q, k, ok)
		}
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := New[int, int](intLess)
	keys := []int{9, 1, 8, 2, 7, 3, 6, 4, 5}
	for _, k := range keys {
		tr.Put(k, k)
	}
	var got []int
	tr.Ascend(func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	if !sort.IntsAreSorted(got) || len(got) != len(keys) {
		t.Fatalf("ascend order wrong: %v", got)
	}
	n := 0
	tr.Ascend(func(k, _ int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop failed: %d", n)
	}
}

func TestCeilingMatchesLinearScan(t *testing.T) {
	f := func(keys []uint8, q uint8) bool {
		tr := New[int, int](intLess)
		set := map[int]bool{}
		for _, k := range keys {
			tr.Put(int(k), int(k))
			set[int(k)] = true
		}
		want, found := 0, false
		for k := int(q); k <= 255; k++ {
			if set[k] {
				want, found = k, true
				break
			}
		}
		k, _, ok := tr.Ceiling(int(q))
		if ok != found {
			return false
		}
		return !ok || k == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllAscendingDescending(t *testing.T) {
	for _, desc := range []bool{false, true} {
		tr := New[int, int](intLess)
		for i := 0; i < 300; i++ {
			tr.Put(i, i)
		}
		for i := 0; i < 300; i++ {
			k := i
			if desc {
				k = 299 - i
			}
			if !tr.Delete(k) {
				t.Fatalf("missing key %d", k)
			}
			if i%37 == 0 {
				checkInvariants(t, tr)
			}
		}
		if tr.Len() != 0 || tr.root != nil {
			t.Fatal("tree not empty after deleting everything")
		}
	}
}
