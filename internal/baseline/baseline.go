// Package baseline re-implements the five persistent memory allocators
// the paper compares against — PMDK, nvm_malloc, PAllocator, Makalu and
// Ralloc — faithfully in the dimensions the evaluation measures: where
// their small-allocation metadata lives (sequential bitmaps vs. embedded
// free-list links), how it is persisted (transactional WAL, single log
// entries, 2-byte micro-log slots in page headers, or nothing until a
// post-crash GC), how arenas are shared (one global arena, per-core
// arenas, or PAllocator's per-thread allocators), how large-allocation
// bookkeeping is updated (always in place, in per-chunk header tables),
// and how much work recovery does. A single configurable engine realizes
// all five so their differences are explicit data, not scattered code.
package baseline

import (
	"hash/crc32"

	"nvalloc/internal/pmem"
)

// SmallMeta selects how free blocks inside a slab are tracked.
type SmallMeta int

// Small-allocation metadata styles.
const (
	// MetaBitmap: a sequentially mapped bitmap in the slab header
	// (PMDK, nvm_malloc, PAllocator). Consecutive allocations set
	// adjacent bits and reflush the same cache line.
	MetaBitmap SmallMeta = iota
	// MetaFreelist: an embedded linked list through the free blocks
	// (Makalu, Ralloc). Every list operation touches the block's own
	// cache line in persistent memory.
	MetaFreelist
)

// PersistStyle selects the consistency machinery on the small path.
type PersistStyle int

// Persistence styles.
const (
	// PersistTxnWAL: a redo-log entry plus a separate commit record per
	// operation (PMDK transactions).
	PersistTxnWAL PersistStyle = iota
	// PersistWAL: one log entry per operation (nvm_malloc).
	PersistWAL
	// PersistMicroLog: a 2-byte block-metadata slot in the page header
	// plus a micro-log entry (PAllocator).
	PersistMicroLog
	// PersistNone: nothing persisted on the small path; a post-crash GC
	// rebuilds metadata (Makalu, Ralloc).
	PersistNone
)

// ArenaModel selects how threads share allocation state.
type ArenaModel int

// Arena models.
const (
	// ArenaGlobal: one arena, one lock (PMDK).
	ArenaGlobal ArenaModel = iota
	// ArenaPerCore: a fixed set of arenas, threads assigned round-robin
	// (nvm_malloc, Makalu, Ralloc).
	ArenaPerCore
	// ArenaPerThread: every thread owns a private small allocator
	// (PAllocator).
	ArenaPerThread
)

// RecoveryStyle selects how much work Open does after a crash.
type RecoveryStyle int

// Recovery styles (Figure 18).
const (
	// RecoverDeferred: open the heap and defer metadata reconstruction
	// to runtime (nvm_malloc).
	RecoverDeferred RecoveryStyle = iota
	// RecoverWALScan: replay the WAL and scan slab headers (PMDK).
	RecoverWALScan
	// RecoverGC: full conservative GC from the roots (Makalu).
	RecoverGC
	// RecoverPartialScan: pointer-chase only reachable nodes (Ralloc).
	RecoverPartialScan
)

// Config describes one classic allocator.
type Config struct {
	Name    string
	Meta    SmallMeta
	Persist PersistStyle
	Model   ArenaModel
	// Arenas is the arena count for ArenaPerCore.
	Arenas int
	// TcacheCap is the per-class thread-cache capacity (0 disables the
	// cache: every operation takes the arena lock).
	TcacheCap int
	// FlushLinkOnAlloc / FlushLinkOnFree control embedded-freelist
	// persistence: Makalu flushes both the head and the link; Ralloc's
	// lock-free lists only persist the link on free.
	FlushLinkOnAlloc bool
	FlushLinkOnFree  bool
	// LargeTxnFlushes is the number of extra WAL flushes per large
	// allocation/free (transactional header updates).
	LargeTxnFlushes int
	// SlowLargeSearch charges a persistent first-fit scan over the live
	// extent population on every large operation (Makalu).
	SlowLargeSearch bool
	Recovery        RecoveryStyle
}

// Presets for the five baselines, matching Section 7's descriptions.
var (
	// PMDK: transactional bitmap allocator, one global arena, no thread
	// cache, redo-log WAL with commit records; recovery travels the WAL.
	PMDK = Config{
		Name: "PMDK", Meta: MetaBitmap, Persist: PersistTxnWAL,
		Model: ArenaGlobal, TcacheCap: 0,
		LargeTxnFlushes: 3, Recovery: RecoverWALScan,
	}
	// NvmMalloc: volatile+persistent bitmap split with per-op log
	// entries, per-core arenas, small thread cache; recovery defers
	// reconstruction to the deallocation path.
	NvmMalloc = Config{
		Name: "nvm_malloc", Meta: MetaBitmap, Persist: PersistWAL,
		Model: ArenaPerCore, Arenas: 16, TcacheCap: 16,
		LargeTxnFlushes: 1, Recovery: RecoverDeferred,
	}
	// PAllocator: per-thread small allocators (segregated fit) with
	// 2-byte block metadata in page headers and micro-logs; index-tree
	// large allocation with in-place persistent headers.
	PAllocator = Config{
		Name: "PAllocator", Meta: MetaBitmap, Persist: PersistMicroLog,
		Model: ArenaPerThread, TcacheCap: 16,
		LargeTxnFlushes: 1, Recovery: RecoverWALScan,
	}
	// Makalu: GC-based, embedded free lists (head and link flushed so
	// offline GC can trust them), slow first-fit large path; recovery is
	// a full conservative GC.
	Makalu = Config{
		Name: "Makalu", Meta: MetaFreelist, Persist: PersistNone,
		Model: ArenaPerCore, Arenas: 16, TcacheCap: 0,
		FlushLinkOnAlloc: true, FlushLinkOnFree: true,
		SlowLargeSearch: true, Recovery: RecoverGC,
	}
	// Ralloc: GC-based lock-free freelists; allocation pops from a
	// volatile mirror (no flush), frees persist the link; recovery scans
	// only reachable nodes.
	Ralloc = Config{
		Name: "Ralloc", Meta: MetaFreelist, Persist: PersistNone,
		Model: ArenaPerCore, Arenas: 16, TcacheCap: 16,
		FlushLinkOnFree: true, Recovery: RecoverPartialScan,
	}
)

// Superblock layout for baseline heaps (mirrors core's, minimal).
const (
	superBase = pmem.PAddr(4096)

	sbMagic    = 0
	sbState    = 16
	sbArenas   = 24
	sbBreak    = 56
	sbWALBase  = 80
	sbWALSize  = 88
	sbHeapBase = 96
	sbChecksum = 104 // CRC-32C over [0,104) with state and break zeroed
	sbRoots    = 128

	baseMagic = 0x424153454C4F4331 // "BASELOC1"

	stateRunning  = 1
	stateShutdown = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// superCRC computes the baseline superblock checksum: CRC-32C over its
// first 104 bytes with the run-state word [16,24) and the heap break
// [56,64) zeroed — both change at runtime without a checksum update
// (the state word is sealed instead, the break self-heals in
// extent.Rebuild).
func superCRC(dev pmem.Dev) uint32 {
	var buf [sbChecksum]byte
	copy(buf[:], dev.Bytes(superBase, sbChecksum))
	for i := sbState; i < sbState+8; i++ {
		buf[i] = 0
	}
	for i := sbBreak; i < sbBreak+8; i++ {
		buf[i] = 0
	}
	return crc32.Checksum(buf[:], crcTable)
}
