package baseline

import (
	"nvalloc/internal/alloc"
	"nvalloc/internal/bitfit"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/slab"
	"nvalloc/internal/walog"
)

// Thread is a baseline allocation handle.
type Thread struct {
	h      *Heap
	ar     *barena
	ctx    *pmem.Ctx
	caches [][]cached
	closed bool
}

type cached struct {
	s   *bslab
	idx int
}

var _ alloc.Thread = (*Thread)(nil)

// NewThread registers a worker, creating a private arena for
// ArenaPerThread allocators.
func (h *Heap) NewThread() alloc.Thread {
	h.arenasMu.Lock()
	var ar *barena
	switch h.cfg.Model {
	case ArenaPerThread:
		ar = h.newArena()
		h.arenas = append(h.arenas, ar)
	case ArenaGlobal:
		ar = h.arenas[0]
	default:
		// Least-loaded with a rotating start so sequential short-lived
		// threads still spread across arenas.
		n := len(h.arenas)
		ar = h.arenas[h.rr%n]
		for i := 1; i < n; i++ {
			a := h.arenas[(h.rr+i)%n]
			if a.threads < ar.threads {
				ar = a
			}
		}
		h.rr++
	}
	ar.threads++
	h.arenasMu.Unlock()
	return &Thread{
		h:      h,
		ar:     ar,
		ctx:    h.dev.NewCtx(),
		caches: make([][]cached, sizeclass.NumClasses()),
	}
}

// Ctx returns the worker's pmem context.
func (t *Thread) Ctx() *pmem.Ctx { return t.ctx }

const opBaseNS = 22 // classic allocators have slightly heavier fast paths

// Malloc allocates size bytes.
func (t *Thread) Malloc(size uint64) (pmem.PAddr, error) {
	if size == 0 {
		return pmem.Null, alloc.ErrBadSize
	}
	t.ctx.Charge(pmem.CatOther, opBaseNS)
	if !sizeclass.IsSmall(size) {
		return t.mallocLarge(size)
	}
	return t.mallocSmall(sizeclass.Class(uint32(size)))
}

func (t *Thread) mallocSmall(class int) (pmem.PAddr, error) {
	h := t.h
	// Thread cache hit (volatile reservation, like all tcache designs).
	if cap := h.cfg.TcacheCap; cap > 0 {
		if len(t.caches[class]) == 0 {
			t.refill(class, cap)
		}
		if n := len(t.caches[class]); n > 0 {
			cb := t.caches[class][n-1]
			t.caches[class] = t.caches[class][:n-1]
			t.commitAlloc(cb.s, cb.idx)
			return cb.s.blockAddr(cb.idx), nil
		}
		return pmem.Null, alloc.ErrOutOfMemory
	}
	// No cache: take the arena lock per operation (PMDK, Makalu).
	t.ar.res.Acquire(t.ctx)
	s, idx := t.ar.takeBlock(t, class)
	t.ar.res.Release(t.ctx)
	if s == nil {
		return pmem.Null, alloc.ErrOutOfMemory
	}
	t.commitAlloc(s, idx)
	return s.blockAddr(idx), nil
}

// refill reserves up to n blocks into the thread cache.
func (t *Thread) refill(class, n int) {
	t.ar.res.Acquire(t.ctx)
	defer t.ar.res.Release(t.ctx)
	for i := 0; i < n; i++ {
		s, idx := t.ar.takeBlock(t, class)
		if s == nil {
			return
		}
		t.caches[class] = append(t.caches[class], cached{s, idx})
	}
}

// takeBlock pops one free block of the class (volatile reservation).
// Caller holds the arena lock.
func (a *barena) takeBlock(t *Thread, class int) (*bslab, int) {
	h := t.h
	s := a.free[class]
	if s == nil {
		s = h.newSlab(t.ctx, a, class)
		if s == nil {
			return nil, 0
		}
	}
	s.mu.Lock()
	var idx int
	if h.cfg.Meta == MetaFreelist {
		idx = s.freeHeadV
		if idx < 0 {
			s.mu.Unlock()
			a.freelistRemove(s)
			return a.takeBlock(t, class)
		}
		next := s.vnext[idx]
		s.freeHeadV = next
		// Persistent list head update: same header line every operation.
		h.dev.WriteU32(s.base+bsFreeHead, uint32(next+1))
		if h.cfg.FlushLinkOnAlloc {
			t.ctx.Flush(pmem.CatMeta, s.base+bsFreeHead, 4)
			t.ctx.Fence()
		}
	} else {
		// First-fit via the hierarchical index: summary word then leaf
		// word, two TrailingZeros64 ops. Same index as the linear scan.
		idx = s.vbits.FirstFree()
		t.ctx.Charge(pmem.CatSearch, 12)
		if idx < 0 {
			s.mu.Unlock()
			a.freelistRemove(s)
			return a.takeBlock(t, class)
		}
	}
	s.vset(idx)
	s.reserved++
	exhausted := s.allocated+s.reserved == s.blocks
	s.mu.Unlock()
	if exhausted {
		a.freelistRemove(s)
	}
	return s, idx
}

// commitAlloc persists the allocation per the configured style.
func (t *Thread) commitAlloc(s *bslab, idx int) {
	h := t.h
	a := s.owner
	switch h.cfg.Persist {
	case PersistTxnWAL:
		a.res.Acquire(t.ctx)
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpAllocBit, Addr: s.base, Aux: uint64(idx)})
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpNone, Addr: s.base}) // commit record
		s.mu.Lock()
		s.reserved--
		s.allocated++
		s.persistMeta(h, t.ctx, idx, true)
		s.mu.Unlock()
		a.res.Release(t.ctx)
	case PersistWAL:
		a.res.Acquire(t.ctx)
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpAllocBit, Addr: s.base, Aux: uint64(idx)})
		s.mu.Lock()
		s.reserved--
		s.allocated++
		s.persistMeta(h, t.ctx, idx, true)
		s.mu.Unlock()
		a.res.Release(t.ctx)
	case PersistMicroLog:
		// PAllocator: 2-byte slot write plus a micro-log entry in the
		// thread-private log (no cross-thread lock).
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpAllocBit, Addr: s.base, Aux: uint64(idx)})
		s.mu.Lock()
		s.reserved--
		s.allocated++
		s.persistMeta(h, t.ctx, idx, true)
		s.mu.Unlock()
	default: // PersistNone: volatile commit only
		s.mu.Lock()
		s.reserved--
		s.allocated++
		s.mu.Unlock()
	}
}

func (t *Thread) mallocLarge(size uint64) (pmem.PAddr, error) {
	h := t.h
	h.large.Res.Acquire(t.ctx)
	defer h.large.Res.Release(t.ctx)
	if h.cfg.SlowLargeSearch {
		// Persistent first-fit over live extent headers.
		n := len(h.large.Activated())
		if n > 400 {
			n = 400
		}
		t.ctx.Charge(pmem.CatSearch, int64(n)*90)
	}
	for i := 0; i < h.cfg.LargeTxnFlushes; i++ {
		h.largeWAL.Append(t.ctx, walog.Entry{Op: walog.OpAllocBit, Aux: size})
	}
	addr, err := h.large.Alloc(t.ctx, size, 0, false)
	if err != nil {
		return pmem.Null, alloc.ErrOutOfMemory
	}
	return addr, nil
}

// Free releases a block or extent.
func (t *Thread) Free(addr pmem.PAddr) error {
	if addr == pmem.Null {
		return alloc.ErrBadAddress
	}
	t.ctx.Charge(pmem.CatOther, opBaseNS)
	base := addr &^ (SlabSize - 1)
	s := t.h.slabs.Lookup(base)
	if s == nil {
		return t.freeLarge(addr)
	}
	idx := s.blockIndex(addr)
	if idx < 0 {
		return alloc.ErrBadAddress
	}
	t.freeSmall(s, idx)
	return nil
}

func (t *Thread) freeSmall(s *bslab, idx int) {
	h := t.h
	a := s.owner
	if h.cfg.Model == ArenaPerThread && a != t.ar {
		// PAllocator's per-thread allocators make cross-thread frees
		// expensive: the block is queued on the owner's deferred-free
		// list (an extra persistent write plus a handoff), which is why
		// the paper sees it lose on Prod-con, Larson-small and FPTree.
		t.ctx.Charge(pmem.CatOther, 400)
		t.ctx.Flush(pmem.CatMeta, s.blockAddr(idx), 8)
		t.ctx.Fence()
	}
	a.res.Acquire(t.ctx)
	s.mu.Lock()
	switch h.cfg.Persist {
	case PersistTxnWAL:
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpFreeBit, Addr: s.base, Aux: uint64(idx)})
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpNone, Addr: s.base})
		s.persistMeta(h, t.ctx, idx, false)
	case PersistWAL:
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpFreeBit, Addr: s.base, Aux: uint64(idx)})
		s.persistMeta(h, t.ctx, idx, false)
	case PersistMicroLog:
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpFreeBit, Addr: s.base, Aux: uint64(idx)})
		s.persistMeta(h, t.ctx, idx, false)
	default:
		// Embedded freelist push: the link lives in the freed block
		// itself — a write (and flush) to a random data cache line.
		h.dev.WriteU64(s.blockAddr(idx), uint64(s.freeHeadV+1))
		if h.cfg.FlushLinkOnFree {
			t.ctx.Flush(pmem.CatMeta, s.blockAddr(idx), 8)
			t.ctx.Fence()
		}
		h.dev.WriteU32(s.base+bsFreeHead, uint32(idx+1))
		if h.cfg.FlushLinkOnAlloc {
			t.ctx.Flush(pmem.CatMeta, s.base+bsFreeHead, 4)
			t.ctx.Fence()
		}
	}
	if h.cfg.Meta == MetaFreelist {
		s.vnext[idx] = s.freeHeadV
		s.freeHeadV = idx
	}
	s.vclear(idx)
	s.allocated--
	empty := s.allocated == 0 && s.reserved == 0
	wasFull := s.allocated+s.reserved == s.blocks-1
	s.mu.Unlock()
	if wasFull && !a.onFreelist(s, s.class) {
		a.freelistPush(s)
	}
	if empty {
		if head := a.free[s.class]; head != nil && (head != s || head.freeNext != nil) {
			if a.onFreelist(s, s.class) {
				a.freelistRemove(s)
			}
			h.releaseSlab(t.ctx, s)
		}
	}
	a.res.Release(t.ctx)
}

func (t *Thread) freeLarge(addr pmem.PAddr) error {
	h := t.h
	h.large.Res.Acquire(t.ctx)
	defer h.large.Res.Release(t.ctx)
	for i := 0; i < h.cfg.LargeTxnFlushes; i++ {
		h.largeWAL.Append(t.ctx, walog.Entry{Op: walog.OpFreeBit, Aux: uint64(addr)})
	}
	if err := h.large.Free(t.ctx, addr); err != nil {
		return alloc.ErrBadAddress
	}
	return nil
}

// MallocTo allocates and publishes into a persistent slot.
func (t *Thread) MallocTo(slot pmem.PAddr, size uint64) (pmem.PAddr, error) {
	addr, err := t.Malloc(size)
	if err != nil {
		return pmem.Null, err
	}
	if t.h.cfg.Persist != PersistNone {
		a := t.ar
		a.res.Acquire(t.ctx)
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpMallocTo, Addr: slot, Aux: uint64(addr)})
		a.res.Release(t.ctx)
	}
	t.ctx.PersistU64(pmem.CatOther, slot, uint64(addr))
	t.ctx.Fence()
	return addr, nil
}

// FreeFrom frees the block referenced by the slot and clears it.
func (t *Thread) FreeFrom(slot pmem.PAddr) error {
	addr := pmem.PAddr(t.h.dev.ReadU64(slot))
	if addr == pmem.Null {
		return alloc.ErrBadAddress
	}
	if t.h.cfg.Persist != PersistNone {
		a := t.ar
		a.res.Acquire(t.ctx)
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpFreeFrom, Addr: slot, Aux: uint64(addr)})
		a.res.Release(t.ctx)
	}
	t.ctx.PersistU64(pmem.CatOther, slot, 0)
	t.ctx.Fence()
	return t.Free(addr)
}

// Close drains the thread cache and merges statistics.
func (t *Thread) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for class, blocks := range t.caches {
		for _, cb := range blocks {
			a := cb.s.owner
			a.res.Acquire(t.ctx)
			cb.s.mu.Lock()
			cb.s.vclear(cb.idx)
			cb.s.reserved--
			if t.h.cfg.Meta == MetaFreelist {
				cb.s.vnext[cb.idx] = cb.s.freeHeadV
				cb.s.freeHeadV = cb.idx
			}
			full := cb.s.allocated+cb.s.reserved == cb.s.blocks-1
			cb.s.mu.Unlock()
			if full && !a.onFreelist(cb.s, class) {
				a.freelistPush(cb.s)
			}
			a.res.Release(t.ctx)
		}
		t.caches[class] = nil
	}
	t.h.arenasMu.Lock()
	t.ar.threads--
	t.h.arenasMu.Unlock()
	t.ctx.Merge()
}

// ---- arena slab management ----------------------------------------------

func (a *barena) freelistPush(s *bslab) {
	s.freeNext = a.free[s.class]
	s.freePrev = nil
	if a.free[s.class] != nil {
		a.free[s.class].freePrev = s
	}
	a.free[s.class] = s
}

func (a *barena) freelistRemove(s *bslab) {
	if s.freePrev != nil {
		s.freePrev.freeNext = s.freeNext
	} else if a.free[s.class] == s {
		a.free[s.class] = s.freeNext
	}
	if s.freeNext != nil {
		s.freeNext.freePrev = s.freePrev
	}
	s.freePrev, s.freeNext = nil, nil
}

func (a *barena) onFreelist(s *bslab, class int) bool {
	return s.freePrev != nil || s.freeNext != nil || a.free[class] == s
}

// newSlab allocates and formats a slab for the class. Caller holds the
// arena lock.
func (h *Heap) newSlab(c *pmem.Ctx, a *barena, class int) *bslab {
	// Same crash ordering as NVAlloc: header before bookkeeping record.
	h.large.Res.Acquire(c)
	base, err := h.large.AllocDeferRecord(c, SlabSize, SlabSize, true)
	h.large.Res.Release(c)
	if err != nil {
		return nil
	}
	blocks, dataOff := bslabGeometry(&h.cfg, class)
	s := &bslab{
		base:      base,
		class:     class,
		blockSize: sizeclass.Size(class),
		blocks:    blocks,
		dataOff:   dataOff,
		vbits:     bitfit.New(blocks),
		freeHeadV: -1,
		owner:     a,
	}
	if h.cfg.Meta == MetaFreelist {
		s.vnext = make([]int, blocks)
		for i := 0; i < blocks-1; i++ {
			s.vnext[i] = i + 1
		}
		s.vnext[blocks-1] = -1
		s.freeHeadV = 0
	}
	h.dev.WriteU32(base+bsMagic, bslabMagic)
	h.dev.WriteU32(base+bsClass, uint32(class))
	h.dev.WriteU32(base+bsFreeHead, 1)
	h.dev.Zero(base+bsMetaOff, int(dataOff)-bsMetaOff)
	c.Flush(pmem.CatMeta, base, int(dataOff))
	c.Fence()
	h.large.Res.Acquire(c)
	recErr := h.large.Record(c, base)
	h.large.Res.Release(c)
	if recErr != nil {
		h.large.Res.Acquire(c)
		_ = h.large.Free(c, base)
		h.large.Res.Release(c)
		return nil
	}
	h.slabs.Store(base, s)
	a.freelistPush(s)
	return s
}

// releaseSlab returns an empty slab to the large allocator.
func (h *Heap) releaseSlab(c *pmem.Ctx, s *bslab) {
	h.slabs.Delete(s.base)
	h.large.Res.Acquire(c)
	_ = h.large.Free(c, s.base)
	h.large.Res.Release(c)
}

// compile-time use of slab constant parity (baseline slabs must match the
// paper's size so space numbers are comparable).
var _ = func() struct{} {
	if SlabSize != slab.Size {
		panic("baseline slab size must match nvalloc slab size")
	}
	return struct{}{}
}()
