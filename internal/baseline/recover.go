package baseline

import (
	"fmt"

	"nvalloc/internal/alloc"
	"nvalloc/internal/extent"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/walog"
)

// Open reopens a baseline heap, rebuilding volatile state and charging
// the recovery cost profile of the configured allocator (Figure 18).
func Open(dev *pmem.Device, cfg Config) (*Heap, int64, error) {
	if dev.ReadU64(superBase+sbMagic) != baseMagic {
		return nil, 0, fmt.Errorf("baseline: no heap on device")
	}
	if cfg.Arenas <= 0 {
		cfg.Arenas = 8
	}
	h := &Heap{cfg: cfg, dev: dev, slabs: make(map[pmem.PAddr]*bslab)}
	heapBase := pmem.PAddr(dev.ReadU64(superBase + sbHeapBase))
	walBase := pmem.PAddr(dev.ReadU64(superBase + sbWALBase))
	crashed := dev.ReadU64(superBase+sbState) != 2

	c := dev.NewCtx()

	h.book = extent.NewInPlace(dev, heapBase, superBase+sbBreak)
	records := h.book.Recover(c)
	var live []*extent.VEH
	h.large, live = extent.Rebuild(dev, h.book, extent.Config{
		HeapBase:  heapBase,
		HeapEnd:   pmem.PAddr(dev.Size()),
		BreakPtr:  superBase + sbBreak,
		MetaBytes: uint64(heapBase),
	}, c, records)
	h.largeWAL = walog.New(dev, walBase, walEntriesPerArena, 1)
	h.nextWAL = 1
	if cfg.Model != ArenaPerThread {
		n := cfg.Arenas
		if cfg.Model == ArenaGlobal {
			n = 1
		}
		for i := 0; i < n; i++ {
			h.arenas = append(h.arenas, h.newArena())
		}
	}

	// Rebuild slabs from their persistent metadata images.
	next := 0
	for _, v := range live {
		if !v.Slab {
			continue
		}
		s, err := h.loadSlab(c, v.Addr)
		if err != nil {
			return nil, 0, err
		}
		var owner *barena
		if len(h.arenas) > 0 {
			owner = h.arenas[next%len(h.arenas)]
		} else {
			// Per-thread model with no threads yet: create a recovery
			// arena that future slabs share until threads register.
			owner = h.newArena()
			h.arenas = append(h.arenas, owner)
		}
		next++
		s.owner = owner
		h.slabs[v.Addr] = s
		if s.allocated < s.blocks {
			owner.freelistPush(s)
		}
	}

	switch cfg.Recovery {
	case RecoverDeferred:
		// nvm_malloc: metadata reconstruction is deferred to runtime
		// deallocation; opening is nearly free.
		c.Charge(pmem.CatSearch, 2000)
	case RecoverWALScan:
		// PMDK/PAllocator: travel every WAL region and slab header.
		for _, a := range h.arenas {
			a.wal.Replay(c, func(e walog.Entry) { h.applyWAL(c, e) })
		}
		h.largeWAL.Replay(c, func(walog.Entry) {})
		for _, s := range h.slabs {
			c.Charge(pmem.CatSearch, int64(s.blocks)/4+50)
		}
	case RecoverGC:
		if crashed {
			h.conservativeGC(c, true)
		} else {
			// Even clean-shutdown Makalu verifies its freelists.
			for _, s := range h.slabs {
				c.Charge(pmem.CatSearch, int64(s.blocks)+100)
			}
		}
	case RecoverPartialScan:
		if crashed {
			h.conservativeGC(c, false)
		} else {
			for _, s := range h.slabs {
				c.Charge(pmem.CatSearch, int64(s.blocks)/8+50)
			}
		}
	}
	if crashed && cfg.Recovery == RecoverWALScan {
		// WAL replay fixed the bitmaps; re-derive volatile freelists.
		h.rebuildFreelists()
	}

	c.PersistU64(pmem.CatMeta, superBase+sbState, 1)
	c.Fence()
	ns := c.Now
	c.Merge()
	return h, ns, nil
}

// loadSlab rebuilds a bslab's volatile mirror from its metadata region.
func (h *Heap) loadSlab(c *pmem.Ctx, base pmem.PAddr) (*bslab, error) {
	if h.dev.ReadU32(base+bsMagic) != bslabMagic {
		return nil, fmt.Errorf("baseline: bad slab magic at %#x", base)
	}
	class := int(h.dev.ReadU32(base + bsClass))
	blocks, dataOff := bslabGeometry(&h.cfg, class)
	s := &bslab{
		base:      base,
		class:     class,
		blockSize: sizeclass.Size(class),
		blocks:    blocks,
		dataOff:   dataOff,
		vbits:     make([]uint64, (blocks+63)/64),
		freeHeadV: -1,
	}
	twoByte := h.cfg.twoByteMeta()
	for idx := 0; idx < blocks; idx++ {
		var set bool
		if twoByte {
			set = h.dev.ReadU16(base+bsMetaOff+pmem.PAddr(idx*2))&(1<<15) != 0
		} else {
			set = h.dev.ReadU8(base+bsMetaOff+pmem.PAddr(idx/8))&(1<<(idx%8)) != 0
		}
		if set {
			s.vset(idx)
			s.allocated++
		}
	}
	if h.cfg.Recovery == RecoverDeferred {
		// nvm_malloc defers metadata reconstruction to the runtime
		// deallocation path; the scan cost is not paid at open time.
		c.Charge(pmem.CatSearch, 20)
	} else {
		c.Charge(pmem.CatSearch, int64(blocks)/8+20)
	}
	if h.cfg.Meta == MetaFreelist {
		s.rebuildFreelist()
	}
	return s, nil
}

func (s *bslab) rebuildFreelist() {
	s.vnext = make([]int, s.blocks)
	s.freeHeadV = -1
	for idx := s.blocks - 1; idx >= 0; idx-- {
		if !s.vtest(idx) {
			s.vnext[idx] = s.freeHeadV
			s.freeHeadV = idx
		}
	}
}

func (h *Heap) rebuildFreelists() {
	if h.cfg.Meta != MetaFreelist {
		return
	}
	for _, s := range h.slabs {
		s.rebuildFreelist()
	}
}

// applyWAL re-applies a small-allocation WAL record idempotently.
func (h *Heap) applyWAL(c *pmem.Ctx, e walog.Entry) {
	switch e.Op {
	case walog.OpAllocBit, walog.OpFreeBit:
		s := h.slabs[e.Addr]
		if s == nil {
			return
		}
		idx := int(e.Aux)
		if idx < 0 || idx >= s.blocks {
			return
		}
		want := e.Op == walog.OpAllocBit
		if s.vtest(idx) != want {
			if want {
				s.vset(idx)
				s.allocated++
			} else {
				s.vclear(idx)
				s.allocated--
			}
			s.persistMeta(h, c, idx, want)
		}
	case walog.OpMallocTo:
		if pmem.PAddr(h.dev.ReadU64(e.Addr)) != pmem.PAddr(e.Aux) {
			c.PersistU64(pmem.CatMeta, e.Addr, e.Aux)
		}
	case walog.OpFreeFrom:
		if pmem.PAddr(h.dev.ReadU64(e.Addr)) == pmem.PAddr(e.Aux) {
			c.PersistU64(pmem.CatMeta, e.Addr, 0)
		}
	}
}

// conservativeGC marks reachable objects from the root slots and resets
// small-allocation state to exactly the marked set. full=true (Makalu)
// additionally scans every block of every slab; false (Ralloc) touches
// only reachable nodes.
func (h *Heap) conservativeGC(c *pmem.Ctx, full bool) {
	resolve := func(p pmem.PAddr) (pmem.PAddr, uint64, bool) {
		if p == pmem.Null || uint64(p) >= h.dev.Size() || p%8 != 0 {
			return 0, 0, false
		}
		base := p &^ (SlabSize - 1)
		if s := h.slabs[base]; s != nil {
			if idx := s.blockIndex(p); idx >= 0 {
				return p, uint64(s.blockSize), true
			}
			return 0, 0, false
		}
		if v, ok := h.large.Lookup(p); ok && v.Addr == p && !v.Slab {
			return p, v.Size, true
		}
		return 0, 0, false
	}
	type obj struct {
		addr pmem.PAddr
		size uint64
	}
	marked := map[pmem.PAddr]bool{}
	var work []obj
	for i := 0; i < alloc.NumRootSlots; i++ {
		p := pmem.PAddr(h.dev.ReadU64(h.RootSlot(i)))
		if a, sz, ok := resolve(p); ok && !marked[a] {
			marked[a] = true
			work = append(work, obj{a, sz})
		}
	}
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		c.Charge(pmem.CatSearch, int64(o.size)/8+60)
		for off := uint64(0); off+8 <= o.size; off += 8 {
			p := pmem.PAddr(h.dev.ReadU64(o.addr + pmem.PAddr(off)))
			if a, sz, ok := resolve(p); ok && !marked[a] {
				marked[a] = true
				work = append(work, obj{a, sz})
			}
		}
	}
	// Sweep.
	for _, s := range h.slabs {
		if full {
			// Makalu scans the whole heap image conservatively.
			c.Charge(pmem.CatSearch, int64(s.blocks)*int64(s.blockSize)/4)
		}
		s.allocated = 0
		for i := range s.vbits {
			s.vbits[i] = 0
		}
		for idx := 0; idx < s.blocks; idx++ {
			if marked[s.blockAddr(idx)] {
				s.vset(idx)
				s.allocated++
			}
		}
		s.rebuildFreelist()
	}
	var leaked []pmem.PAddr
	for addr, v := range h.large.Activated() {
		if !v.Slab && !marked[addr] {
			leaked = append(leaked, addr)
		}
	}
	for _, addr := range leaked {
		_ = h.large.Free(c, addr)
	}
}
