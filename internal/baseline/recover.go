package baseline

import (
	"sort"

	"nvalloc/internal/alloc"
	"nvalloc/internal/bitfit"
	"nvalloc/internal/extent"
	"nvalloc/internal/pagemap"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/walog"
)

// validateSuper checks the baseline superblock before any of its fields
// are trusted: magic, checksum and the region layout. A zeroed,
// truncated or bit-flipped image yields a typed CorruptError here
// instead of a panic deeper into recovery.
func validateSuper(dev pmem.Dev) error {
	if dev.Size() < uint64(superBase)+4096 {
		return pmem.Corrupt("superblock", superBase, "device too small (%d bytes) for a superblock page", dev.Size())
	}
	if m := dev.ReadU64(superBase + sbMagic); m != baseMagic {
		return pmem.Corrupt("superblock", superBase+sbMagic, "bad magic %#x (no heap on device)", m)
	}
	if got, want := dev.ReadU64(superBase+sbChecksum), uint64(superCRC(dev)); got != want {
		return pmem.Corrupt("superblock", superBase+sbChecksum, "checksum %#x, want %#x", got, want)
	}
	walBase := dev.ReadU64(superBase + sbWALBase)
	walSize := dev.ReadU64(superBase + sbWALSize)
	heapBase := dev.ReadU64(superBase + sbHeapBase)
	switch {
	case walSize != uint64(walog.RegionSize(walEntriesPerArena, 1)):
		return pmem.Corrupt("superblock", superBase+sbWALSize, "WAL region size %d, want %d", walSize, walog.RegionSize(walEntriesPerArena, 1))
	case walBase < uint64(superBase)+4096 || walBase%8 != 0 || walBase+uint64(maxArenas+1)*walSize > heapBase:
		return pmem.Corrupt("superblock", superBase+sbWALBase, "WAL region [%#x,%#x) overlaps neighbours", walBase, walBase+uint64(maxArenas+1)*walSize)
	case heapBase%extent.ChunkSize != 0 || heapBase+extent.ChunkSize > dev.Size():
		return pmem.Corrupt("superblock", superBase+sbHeapBase, "heap base %#x misaligned or past device end", heapBase)
	}
	return nil
}

// MetaRanges returns the device regions holding checksummed or sealed
// baseline metadata — superblock fields, the WAL rings and the header
// lines of the first slabs — for fault-injection harnesses that
// restrict bit flips to allocator metadata. The device must hold a
// valid superblock.
func MetaRanges(dev pmem.Dev) []pmem.Range {
	rs := []pmem.Range{{Start: superBase, End: superBase + sbRoots}}
	walBase := pmem.PAddr(dev.ReadU64(superBase + sbWALBase))
	walSize := pmem.PAddr(dev.ReadU64(superBase + sbWALSize))
	rs = append(rs, pmem.Range{Start: walBase, End: walBase + (maxArenas+1)*walSize})
	heapBase := pmem.PAddr(dev.ReadU64(superBase + sbHeapBase))
	for k := pmem.PAddr(0); k < 32; k++ {
		base := heapBase + k*SlabSize
		if uint64(base)+pmem.LineSize > dev.Size() {
			break
		}
		rs = append(rs, pmem.Range{Start: base, End: base + pmem.LineSize})
	}
	return rs
}

// Open reopens a baseline heap, rebuilding volatile state and charging
// the recovery cost profile of the configured allocator (Figure 18).
func Open(dev pmem.Dev, cfg Config) (*Heap, int64, error) {
	if err := validateSuper(dev); err != nil {
		return nil, 0, err
	}
	if cfg.Arenas <= 0 {
		cfg.Arenas = 8
	}
	h := &Heap{cfg: cfg, dev: dev, slabs: pagemap.New[bslab](dev.Size(), SlabSize)}
	heapBase := pmem.PAddr(dev.ReadU64(superBase + sbHeapBase))
	walBase := pmem.PAddr(dev.ReadU64(superBase + sbWALBase))
	walRegion := pmem.PAddr(dev.ReadU64(superBase + sbWALSize))
	state, ok := pmem.UnsealU64(dev.ReadU64(superBase + sbState))
	if !ok {
		return nil, 0, pmem.Corrupt("superblock", superBase+sbState, "run-state word fails seal check")
	}
	crashed := state != stateShutdown

	c := dev.NewCtx()

	h.book = extent.NewInPlace(dev, heapBase, superBase+sbBreak)
	records := h.book.Recover(c)
	large, live, err := extent.Rebuild(dev, h.book, extent.Config{
		HeapBase:  heapBase,
		HeapEnd:   pmem.PAddr(dev.Size()),
		BreakPtr:  superBase + sbBreak,
		MetaBytes: uint64(heapBase),
	}, c, records)
	if err != nil {
		return nil, 0, err
	}
	h.large = large

	// Rebuild slabs from their persistent metadata images. Owners are
	// assigned below, once crashed WAL replay has settled each slab's
	// allocation counts.
	var slabs []*bslab
	for _, v := range live {
		if !v.Slab {
			continue
		}
		if uint64(v.Addr)%SlabSize != 0 || v.Size != SlabSize {
			return nil, 0, pmem.Corrupt("slab", v.Addr, "slab record misaligned or sized %d, want %d", v.Size, uint64(SlabSize))
		}
		s, err := h.loadSlab(c, v.Addr)
		if err != nil {
			return nil, 0, err
		}
		h.slabs.Store(v.Addr, s)
		slabs = append(slabs, s)
	}

	if crashed && cfg.Persist != PersistNone {
		// A WAL-bearing style must consume its logs after a crash no
		// matter what its recovery style advertises: an in-flight root
		// publish (OpMallocTo) or retraction (OpFreeFrom) is recorded
		// nowhere else, so skipping replay would lose it. Every region is
		// swept — per-thread arenas of the crashed run are not
		// instantiated here, but their rings still hold entries.
		// Only the rings the configuration actually uses are charged —
		// the rest of the fixed 65-slot reservation is a layout artifact
		// this Go model shares across arena models, and nvm_malloc's
		// deferred profile keeps its nearly-free open. The uncharged
		// sweep runs on a side context that is never merged.
		side := dev.NewCtx()
		charged := func(slot int) bool {
			switch {
			case cfg.Recovery == RecoverDeferred:
				return false
			case cfg.Model == ArenaGlobal:
				return slot <= 1
			case cfg.Model == ArenaPerCore:
				return slot <= cfg.Arenas
			default:
				// Per-thread: any slot may belong to a crashed thread.
				return true
			}
		}
		for slot := 0; slot <= maxArenas; slot++ {
			rc := side
			if charged(slot) {
				rc = c
			}
			w, err := walog.New(dev.Mem(), walBase+pmem.PAddr(slot)*walRegion, walEntriesPerArena, 1)
			if err != nil {
				return nil, 0, err
			}
			if _, err := w.Replay(rc, func(e walog.Entry) { h.applyWAL(rc, e) }); err != nil {
				return nil, 0, err
			}
			w.Checkpoint(rc)
		}
		h.rebuildFreelists()
	}

	largeWAL, err := walog.New(dev.Mem(), walBase, walEntriesPerArena, 1)
	if err != nil {
		return nil, 0, err
	}
	h.largeWAL = largeWAL
	h.nextWAL = 1
	if cfg.Model != ArenaPerThread {
		n := cfg.Arenas
		if cfg.Model == ArenaGlobal {
			n = 1
		}
		for i := 0; i < n; i++ {
			h.arenas = append(h.arenas, h.newArena())
		}
	}

	// Assign slab owners round-robin, in discovery (address) order.
	next := 0
	for _, s := range slabs {
		var owner *barena
		if len(h.arenas) > 0 {
			owner = h.arenas[next%len(h.arenas)]
		} else {
			// Per-thread model with no threads yet: create a recovery
			// arena that future slabs share until threads register.
			owner = h.newArena()
			h.arenas = append(h.arenas, owner)
		}
		next++
		s.owner = owner
		if s.allocated < s.blocks {
			owner.freelistPush(s)
		}
	}

	switch cfg.Recovery {
	case RecoverDeferred:
		// nvm_malloc: metadata reconstruction is deferred to runtime
		// deallocation; opening is nearly free.
		c.Charge(pmem.CatSearch, 2000)
	case RecoverWALScan:
		// PMDK/PAllocator: travel every WAL region and slab header (the
		// crashed sweep above already paid the WAL travel after a crash).
		if !crashed {
			for _, a := range h.arenas {
				if _, err := a.wal.Replay(c, func(e walog.Entry) { h.applyWAL(c, e) }); err != nil {
					return nil, 0, err
				}
			}
			if _, err := h.largeWAL.Replay(c, func(walog.Entry) {}); err != nil {
				return nil, 0, err
			}
		}
		h.slabs.Range(func(_ pmem.PAddr, s *bslab) bool {
			c.Charge(pmem.CatSearch, int64(s.blocks)/4+50)
			return true
		})
	case RecoverGC:
		if crashed {
			h.conservativeGC(c, true)
		} else {
			// Even clean-shutdown Makalu verifies its freelists.
			h.slabs.Range(func(_ pmem.PAddr, s *bslab) bool {
				c.Charge(pmem.CatSearch, int64(s.blocks)+100)
				return true
			})
		}
	case RecoverPartialScan:
		if crashed {
			h.conservativeGC(c, false)
		} else {
			h.slabs.Range(func(_ pmem.PAddr, s *bslab) bool {
				c.Charge(pmem.CatSearch, int64(s.blocks)/8+50)
				return true
			})
		}
	}

	c.PersistU64(pmem.CatMeta, superBase+sbState, pmem.SealU64(stateRunning))
	c.Fence()
	ns := c.Now
	c.Merge()
	return h, ns, nil
}

// loadSlab rebuilds a bslab's volatile mirror from its metadata region.
func (h *Heap) loadSlab(c *pmem.Ctx, base pmem.PAddr) (*bslab, error) {
	if m := h.dev.ReadU32(base + bsMagic); m != bslabMagic {
		return nil, pmem.Corrupt("slab", base+bsMagic, "bad slab magic %#x", m)
	}
	class := int(h.dev.ReadU32(base + bsClass))
	if class < 0 || class >= sizeclass.NumClasses() {
		return nil, pmem.Corrupt("slab", base+bsClass, "size class %d out of range", class)
	}
	blocks, dataOff := bslabGeometry(&h.cfg, class)
	s := &bslab{
		base:      base,
		class:     class,
		blockSize: sizeclass.Size(class),
		blocks:    blocks,
		dataOff:   dataOff,
		vbits:     bitfit.New(blocks),
		freeHeadV: -1,
	}
	twoByte := h.cfg.twoByteMeta()
	for idx := 0; idx < blocks; idx++ {
		var set bool
		if twoByte {
			set = h.dev.ReadU16(base+bsMetaOff+pmem.PAddr(idx*2))&(1<<15) != 0
		} else {
			set = h.dev.ReadU8(base+bsMetaOff+pmem.PAddr(idx/8))&(1<<(idx%8)) != 0
		}
		if set {
			s.vset(idx)
			s.allocated++
		}
	}
	if h.cfg.Recovery == RecoverDeferred {
		// nvm_malloc defers metadata reconstruction to the runtime
		// deallocation path; the scan cost is not paid at open time.
		c.Charge(pmem.CatSearch, 20)
	} else {
		c.Charge(pmem.CatSearch, int64(blocks)/8+20)
	}
	if h.cfg.Meta == MetaFreelist {
		s.rebuildFreelist()
	}
	return s, nil
}

func (s *bslab) rebuildFreelist() {
	s.vnext = make([]int, s.blocks)
	s.freeHeadV = -1
	for idx := s.blocks - 1; idx >= 0; idx-- {
		if !s.vtest(idx) {
			s.vnext[idx] = s.freeHeadV
			s.freeHeadV = idx
		}
	}
}

func (h *Heap) rebuildFreelists() {
	if h.cfg.Meta != MetaFreelist {
		return
	}
	h.slabs.Range(func(_ pmem.PAddr, s *bslab) bool {
		s.rebuildFreelist()
		return true
	})
}

// applyWAL re-applies a small-allocation WAL record idempotently.
func (h *Heap) applyWAL(c *pmem.Ctx, e walog.Entry) {
	switch e.Op {
	case walog.OpAllocBit, walog.OpFreeBit:
		s := h.slabs.Lookup(e.Addr)
		if s == nil {
			return
		}
		idx := int(e.Aux)
		if idx < 0 || idx >= s.blocks {
			return
		}
		want := e.Op == walog.OpAllocBit
		if s.vtest(idx) != want {
			if want {
				s.vset(idx)
				s.allocated++
			} else {
				s.vclear(idx)
				s.allocated--
			}
			s.persistMeta(h, c, idx, want)
		}
	case walog.OpMallocTo:
		// Entry payloads carry a 24-bit CRC, thin enough that addresses
		// acted on are still bounds-checked against the device.
		if uint64(e.Addr)+8 > h.dev.Size() {
			return
		}
		if pmem.PAddr(h.dev.ReadU64(e.Addr)) != pmem.PAddr(e.Aux) {
			c.PersistU64(pmem.CatMeta, e.Addr, e.Aux)
		}
	case walog.OpFreeFrom:
		if uint64(e.Addr)+8 > h.dev.Size() {
			return
		}
		if pmem.PAddr(h.dev.ReadU64(e.Addr)) == pmem.PAddr(e.Aux) {
			c.PersistU64(pmem.CatMeta, e.Addr, 0)
		}
	}
}

// conservativeGC marks reachable objects from the root slots and resets
// small-allocation state to exactly the marked set. full=true (Makalu)
// additionally scans every block of every slab; false (Ralloc) touches
// only reachable nodes.
func (h *Heap) conservativeGC(c *pmem.Ctx, full bool) {
	resolve := func(p pmem.PAddr) (pmem.PAddr, uint64, bool) {
		if p == pmem.Null || uint64(p) >= h.dev.Size() || p%8 != 0 {
			return 0, 0, false
		}
		base := p &^ (SlabSize - 1)
		if s := h.slabs.Lookup(base); s != nil {
			if idx := s.blockIndex(p); idx >= 0 {
				return p, uint64(s.blockSize), true
			}
			return 0, 0, false
		}
		if v, ok := h.large.Lookup(p); ok && v.Addr == p && !v.Slab {
			return p, v.Size, true
		}
		return 0, 0, false
	}
	type obj struct {
		addr pmem.PAddr
		size uint64
	}
	marked := map[pmem.PAddr]bool{}
	var work []obj
	for i := 0; i < alloc.NumRootSlots; i++ {
		p := pmem.PAddr(h.dev.ReadU64(h.RootSlot(i)))
		if a, sz, ok := resolve(p); ok && !marked[a] {
			marked[a] = true
			work = append(work, obj{a, sz})
		}
	}
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		c.Charge(pmem.CatSearch, int64(o.size)/8+60)
		for off := uint64(0); off+8 <= o.size; off += 8 {
			p := pmem.PAddr(h.dev.ReadU64(o.addr + pmem.PAddr(off)))
			if a, sz, ok := resolve(p); ok && !marked[a] {
				marked[a] = true
				work = append(work, obj{a, sz})
			}
		}
	}
	// Sweep in address order so the rebuilt freelists are deterministic.
	h.slabs.Range(func(_ pmem.PAddr, s *bslab) bool {
		if full {
			// Makalu scans the whole heap image conservatively.
			c.Charge(pmem.CatSearch, int64(s.blocks)*int64(s.blockSize)/4)
		}
		s.allocated = 0
		s.vbits.Reset()
		for idx := 0; idx < s.blocks; idx++ {
			if marked[s.blockAddr(idx)] {
				s.vset(idx)
				s.allocated++
			}
		}
		s.rebuildFreelist()
		return true
	})
	var leaked []pmem.PAddr
	for addr, v := range h.large.Activated() {
		if !v.Slab && !marked[addr] {
			leaked = append(leaked, addr)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i] < leaked[j] })
	for _, addr := range leaked {
		_ = h.large.Free(c, addr)
	}
}
