package baseline

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"nvalloc/internal/alloc"
	"nvalloc/internal/bitfit"
	"nvalloc/internal/extent"
	"nvalloc/internal/pagemap"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/walog"
)

// SlabSize matches the paper's 64 KiB slabs.
const SlabSize = 64 << 10

// maxArenas bounds the WAL region reservation (per-thread allocators
// register arenas dynamically).
const maxArenas = 64

const walEntriesPerArena = 1024

// bslab is a baseline slab: sequential metadata in the header pages.
//
//	[0,64)        header: magic u32, class u32, freeHead u32 (persistent
//	              list head: block index+1, 0 = empty)
//	[64, dataOff) block metadata: 1 bit per block (bitmap styles) or a
//	              2-byte slot per block (micro-log style); for freelist
//	              allocators this region is only synced at clean shutdown
//	[dataOff, SlabSize) blocks; a free block's first 8 bytes hold the
//	              embedded next link in freelist mode
type bslab struct {
	base      pmem.PAddr
	class     int
	blockSize uint32
	blocks    int
	dataOff   uint32

	mu        sync.Mutex
	vbits     *bitfit.Bitmap // volatile: 1 = allocated or reserved (leaf + summary)
	allocated int
	reserved  int
	freeHeadV int   // volatile freelist head (-1 none)
	vnext     []int // volatile freelist links

	owner              *barena
	freePrev, freeNext *bslab
}

const (
	bsMagic    = 0
	bsClass    = 4
	bsFreeHead = 8
	bsMetaOff  = 64

	bslabMagic = 0x42534C41 // "BSLA"
)

// twoByteMeta reports whether block metadata units are 2-byte slots
// (PAllocator's page-header block metadata and the freelist allocators'
// shutdown image) rather than single bits.
func (cfg *Config) twoByteMeta() bool {
	return cfg.Meta == MetaFreelist || cfg.Persist == PersistMicroLog
}

func metaBytesPer(cfg *Config, blocks int) int {
	if cfg.twoByteMeta() {
		return blocks * 2
	}
	return (blocks + 7) / 8
}

func bslabGeometry(cfg *Config, class int) (blocks int, dataOff uint32) {
	bsize := int(sizeclass.Size(class))
	blocks = (SlabSize - bsMetaOff) / bsize
	for i := 0; i < 4; i++ {
		d := (bsMetaOff + metaBytesPer(cfg, blocks) + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
		nb := (SlabSize - d) / bsize
		if nb == blocks {
			return blocks, uint32(d)
		}
		blocks = nb
	}
	d := (bsMetaOff + metaBytesPer(cfg, blocks) + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
	return blocks, uint32(d)
}

func (s *bslab) blockAddr(idx int) pmem.PAddr {
	return s.base + pmem.PAddr(s.dataOff) + pmem.PAddr(idx)*pmem.PAddr(s.blockSize)
}

func (s *bslab) blockIndex(addr pmem.PAddr) int {
	off := int64(addr) - int64(s.base) - int64(s.dataOff)
	if off < 0 || off%int64(s.blockSize) != 0 {
		return -1
	}
	idx := int(off / int64(s.blockSize))
	if idx >= s.blocks {
		return -1
	}
	return idx
}

func (s *bslab) vset(idx int)       { s.vbits.Set(idx) }
func (s *bslab) vclear(idx int)     { s.vbits.Clear(idx) }
func (s *bslab) vtest(idx int) bool { return s.vbits.Test(idx) }

// persistMeta flushes block idx's sequential metadata unit: the bit (or
// 2-byte slot) of consecutive blocks shares a cache line, which is
// exactly the reflush behaviour Section 3.1 measures.
func (s *bslab) persistMeta(h *Heap, c *pmem.Ctx, idx int, allocated bool) {
	dev := h.dev
	if !h.cfg.twoByteMeta() {
		a := s.base + bsMetaOff + pmem.PAddr(idx/8)
		b := dev.ReadU8(a)
		if allocated {
			b |= 1 << (idx % 8)
		} else {
			b &^= 1 << (idx % 8)
		}
		dev.WriteU8(a, b)
		c.Flush(pmem.CatMeta, a, 1)
	} else {
		a := s.base + bsMetaOff + pmem.PAddr(idx*2)
		v := uint16(0)
		if allocated {
			v = uint16(s.blockSize/8) | 1<<15
		}
		dev.WriteU16(a, v)
		c.Flush(pmem.CatMeta, a, 2)
	}
	c.Fence()
}

// barena is a baseline arena.
type barena struct {
	index   int
	res     pmem.Resource
	wal     *walog.Log
	free    []*bslab // per-class freelist heads
	threads int
}

// Heap is a baseline allocator instance.
type Heap struct {
	cfg  Config
	dev  pmem.Dev
	book *extent.InPlace
	// large is guarded by its own Res.
	large *extent.Allocator
	// largeWAL records transactional large-path metadata (PMDK-style);
	// guarded by large.Res.
	largeWAL *walog.Log

	arenasMu sync.Mutex
	arenas   []*barena
	nextWAL  int
	rr       int

	// slabs is the lock-free base-address index shared with the NVAlloc
	// engines: Free resolves slabs with atomic loads, no global lock.
	slabs *pagemap.Map[bslab]

	closed bool
}

var _ alloc.Heap = (*Heap)(nil)

// New formats dev as a fresh heap for the given baseline configuration.
func New(dev pmem.Dev, cfg Config) (*Heap, error) {
	if cfg.Arenas <= 0 {
		cfg.Arenas = 8
	}
	h := &Heap{cfg: cfg, dev: dev, slabs: pagemap.New[bslab](dev.Size(), SlabSize)}
	walRegion := walog.RegionSize(walEntriesPerArena, 1)
	walBase := uint64(8192)
	heapBase := (walBase + uint64((maxArenas+1)*walRegion) + extent.ChunkSize - 1) &^ (extent.ChunkSize - 1)
	if heapBase+extent.ChunkSize > dev.Size() {
		return nil, fmt.Errorf("baseline: device too small")
	}
	c := dev.NewCtx()
	defer c.Merge()
	dev.WriteU64(superBase+sbMagic, baseMagic)
	dev.WriteU64(superBase+sbState, pmem.SealU64(stateRunning))
	dev.WriteU64(superBase+sbArenas, uint64(cfg.Arenas))
	dev.WriteU64(superBase+sbWALBase, walBase)
	dev.WriteU64(superBase+sbWALSize, uint64(walRegion))
	dev.WriteU64(superBase+sbHeapBase, heapBase)
	dev.WriteU64(superBase+sbChecksum, uint64(superCRC(dev)))
	dev.Zero(superBase+sbRoots, alloc.NumRootSlots*8)
	c.Flush(pmem.CatMeta, superBase, 4096)
	c.Fence()
	// A reformatted device may carry WAL rings from a previous heap.
	dev.Zero(pmem.PAddr(walBase), (maxArenas+1)*walRegion)

	h.book = extent.NewInPlace(dev, pmem.PAddr(heapBase), superBase+sbBreak)
	h.large = extent.New(dev, h.book, extent.Config{
		HeapBase:  pmem.PAddr(heapBase),
		HeapEnd:   pmem.PAddr(dev.Size()),
		BreakPtr:  superBase + sbBreak,
		MetaBytes: heapBase,
	})
	largeWAL, err := walog.New(dev.Mem(), pmem.PAddr(walBase), walEntriesPerArena, 1)
	if err != nil {
		return nil, err
	}
	h.largeWAL = largeWAL
	h.nextWAL = 1
	if cfg.Model != ArenaPerThread {
		n := cfg.Arenas
		if cfg.Model == ArenaGlobal {
			n = 1
		}
		for i := 0; i < n; i++ {
			h.arenas = append(h.arenas, h.newArena())
		}
	}
	return h, nil
}

func (h *Heap) newArena() *barena {
	walBase := pmem.PAddr(h.dev.ReadU64(superBase + sbWALBase))
	walRegion := pmem.PAddr(h.dev.ReadU64(superBase + sbWALSize))
	slot := h.nextWAL
	if slot > maxArenas {
		slot = 1 + (slot-1)%maxArenas // wrap: share WAL regions beyond the cap
	}
	h.nextWAL++
	base := walBase + pmem.PAddr(slot)*walRegion
	wal, err := walog.New(h.dev.Mem(), base, walEntriesPerArena, 1)
	if err != nil {
		// The slot's checkpoint word is damaged. Open has already
		// replayed (or rejected) every WAL region by the time runtime
		// arena creation reaches here, so nothing unconsumed is lost by
		// resetting the ring.
		h.dev.Zero(base, walog.RegionSize(walEntriesPerArena, 1))
		wal, _ = walog.New(h.dev.Mem(), base, walEntriesPerArena, 1)
	}
	a := &barena{
		index: slot,
		wal:   wal,
		free:  make([]*bslab, sizeclass.NumClasses()),
	}
	return a
}

// Device returns the underlying device.
func (h *Heap) Device() pmem.Dev { return h.dev }

// Name returns the baseline's name.
func (h *Heap) Name() string { return h.cfg.Name }

// RootSlot returns the persistent root pointer slot i.
func (h *Heap) RootSlot(i int) pmem.PAddr {
	if i < 0 || i >= alloc.NumRootSlots {
		panic("baseline: root slot out of range")
	}
	return superBase + sbRoots + pmem.PAddr(i*8)
}

// Used returns committed persistent memory.
func (h *Heap) Used() uint64 {
	h.large.Res.Acquire(h.dev.NewCtx())
	defer h.large.Res.Release(h.dev.NewCtx())
	return h.large.Used()
}

// Peak returns the usage high-water mark.
func (h *Heap) Peak() uint64 {
	h.large.Res.Acquire(h.dev.NewCtx())
	defer h.large.Res.Release(h.dev.NewCtx())
	return h.large.Peak()
}

// ResetPeak restarts peak tracking.
func (h *Heap) ResetPeak() {
	h.large.Res.Acquire(h.dev.NewCtx())
	defer h.large.Res.Release(h.dev.NewCtx())
	h.large.ResetPeak()
}

// Close performs a clean shutdown: freelist allocators sync their
// shutdown images, WALs checkpoint, and the state flag persists.
func (h *Heap) Close() error {
	h.arenasMu.Lock()
	defer h.arenasMu.Unlock()
	if h.closed {
		return alloc.ErrClosed
	}
	h.closed = true
	c := h.dev.NewCtx()
	defer c.Merge()
	if h.cfg.Persist == PersistNone {
		h.slabs.Range(func(_ pmem.PAddr, s *bslab) bool {
			s.mu.Lock()
			s.syncShutdownMeta(h)
			c.Flush(pmem.CatMeta, s.base+bsMetaOff, int(s.dataOff)-bsMetaOff)
			s.mu.Unlock()
			return true
		})
		c.Fence()
	}
	for _, a := range h.arenas {
		a.res.Acquire(c)
		a.wal.Checkpoint(c)
		a.res.Release(c)
	}
	c.PersistU64(pmem.CatMeta, superBase+sbState, pmem.SealU64(stateShutdown))
	c.Fence()
	return nil
}

// syncShutdownMeta stages the whole shutdown metadata image through the
// device's bulk view — leaf words copied straight into the sequential
// bit metadata, or 2-byte slots written per occupied block — instead of
// one device read-modify-write per block; Close flushes the region
// afterwards. Shutdown holds the arenas lock, so the bulk view cannot
// race a concurrent line flush.
func (s *bslab) syncShutdownMeta(h *Heap) {
	buf := h.dev.Bytes(s.base+bsMetaOff, int(s.dataOff)-bsMetaOff)
	for i := range buf {
		buf[i] = 0
	}
	if !h.cfg.twoByteMeta() {
		// Sequential bit metadata is byte-for-byte the little-endian leaf
		// words (region padding absorbs the last partial word).
		for w, word := range s.vbits.Words() {
			binary.LittleEndian.PutUint64(buf[w*8:], word)
		}
		return
	}
	for w, word := range s.vbits.Words() {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << bit
			binary.LittleEndian.PutUint16(buf[(w*64+bit)*2:], 1<<15)
		}
	}
}

// ArenaLoads returns each arena resource's accumulated virtual load in
// microseconds (diagnostics).
func (h *Heap) ArenaLoads() []int64 {
	out := make([]int64, len(h.arenas))
	for i, a := range h.arenas {
		out[i] = a.res.Load() / 1000
	}
	return out
}

// LargeLoad returns the large allocator lock's accumulated load (ns).
func (h *Heap) LargeLoad() int64 { return h.large.Res.Load() }
