package baseline

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

var allConfigs = []Config{PMDK, NvmMalloc, PAllocator, Makalu, Ralloc}

func newBaseHeap(t *testing.T, cfg Config) (*pmem.Device, *Heap) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
	h, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, h
}

func TestAllBaselinesBasicOps(t *testing.T) {
	for _, cfg := range allConfigs {
		t.Run(cfg.Name, func(t *testing.T) {
			dev, h := newBaseHeap(t, cfg)
			th := h.NewThread()
			defer th.Close()
			seen := map[pmem.PAddr]bool{}
			var ptrs []pmem.PAddr
			for i := 0; i < 3000; i++ {
				size := uint64(8 + i%900)
				p, err := th.Malloc(size)
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				if seen[p] {
					t.Fatalf("address %#x handed out twice", p)
				}
				seen[p] = true
				dev.WriteU64(p, uint64(p))
				ptrs = append(ptrs, p)
			}
			for _, p := range ptrs {
				if dev.ReadU64(p) != uint64(p) {
					t.Fatalf("corruption at %#x", p)
				}
				if err := th.Free(p); err != nil {
					t.Fatal(err)
				}
			}
			// Large path.
			lp, err := th.Malloc(256 << 10)
			if err != nil {
				t.Fatal(err)
			}
			if err := th.Free(lp); err != nil {
				t.Fatal(err)
			}
			if err := th.Free(pmem.Null); err == nil {
				t.Fatal("null free must error")
			}
			if _, err := th.Malloc(0); err == nil {
				t.Fatal("zero malloc must error")
			}
		})
	}
}

func TestAllBaselinesRandomizedStress(t *testing.T) {
	for _, cfg := range allConfigs {
		t.Run(cfg.Name, func(t *testing.T) {
			dev, h := newBaseHeap(t, cfg)
			th := h.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(9))
			type obj struct {
				p   pmem.PAddr
				tag uint64
			}
			var live []obj
			for op := 0; op < 10000; op++ {
				if len(live) == 0 || rng.Intn(100) < 55 {
					size := uint64(rng.Intn(800) + 8)
					if rng.Intn(60) == 0 {
						size = uint64(rng.Intn(100)+17) << 10
					}
					p, err := th.Malloc(size)
					if err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
					tag := rng.Uint64()
					dev.WriteU64(p, tag)
					live = append(live, obj{p, tag})
				} else {
					i := rng.Intn(len(live))
					if dev.ReadU64(live[i].p) != live[i].tag {
						t.Fatalf("op %d: corruption at %#x", op, live[i].p)
					}
					if err := th.Free(live[i].p); err != nil {
						t.Fatal(err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		})
	}
}

func TestAllBaselinesMultithreaded(t *testing.T) {
	for _, cfg := range allConfigs {
		t.Run(cfg.Name, func(t *testing.T) {
			dev, h := newBaseHeap(t, cfg)
			ck := alloc.NewChecker(h)
			var wg sync.WaitGroup
			errs := make(chan error, 4)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := ck.NewThread()
					defer th.Close()
					rng := rand.New(rand.NewSource(seed))
					var mine []pmem.PAddr
					for op := 0; op < 2000; op++ {
						if len(mine) == 0 || rng.Intn(100) < 60 {
							p, err := th.Malloc(uint64(rng.Intn(300) + 8))
							if err != nil {
								errs <- err
								return
							}
							dev.WriteU64(p, uint64(p)^0xAA)
							mine = append(mine, p)
						} else {
							i := rng.Intn(len(mine))
							if dev.ReadU64(mine[i]) != uint64(mine[i])^0xAA {
								errs <- fmt.Errorf("corruption at %#x", mine[i])
								return
							}
							if err := th.Free(mine[i]); err != nil {
								errs <- err
								return
							}
							mine[i] = mine[len(mine)-1]
							mine = mine[:len(mine)-1]
						}
					}
				}(int64(w))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if verrs := ck.Errors(); len(verrs) != 0 {
				t.Fatalf("invariant violations: %v", verrs[0])
			}
		})
	}
}

func TestBaselineShutdownRecovery(t *testing.T) {
	for _, cfg := range allConfigs {
		t.Run(cfg.Name, func(t *testing.T) {
			dev, h := newBaseHeap(t, cfg)
			th := h.NewThread()
			p, err := th.MallocTo(h.RootSlot(0), 128)
			if err != nil {
				t.Fatal(err)
			}
			dev.WriteU64(p, 0xFEED)
			th.Ctx().Flush(pmem.CatOther, p, 8)
			th.Close()
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			dev.Crash()
			h2, ns, err := Open(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ns <= 0 {
				t.Fatal("recovery time not reported")
			}
			if dev.ReadU64(p) != 0xFEED {
				t.Fatal("object lost across shutdown")
			}
			th2 := h2.NewThread()
			defer th2.Close()
			// Recovered block must not be handed out again.
			for i := 0; i < 500; i++ {
				q, err := th2.Malloc(128)
				if err != nil {
					t.Fatal(err)
				}
				if q == p {
					t.Fatal("live block reissued after recovery")
				}
			}
			if err := th2.Free(p); err != nil {
				t.Fatalf("recovered block not freeable: %v", err)
			}
		})
	}
}

func TestBaselineCrashRecovery(t *testing.T) {
	// Strong allocators recover published objects after a hard crash; GC
	// allocators reclaim unreachable ones.
	for _, cfg := range allConfigs {
		t.Run(cfg.Name, func(t *testing.T) {
			dev, h := newBaseHeap(t, cfg)
			th := h.NewThread()
			kept, err := th.MallocTo(h.RootSlot(0), 256)
			if err != nil {
				t.Fatal(err)
			}
			dev.WriteU64(kept, 0xCAFE)
			th.Ctx().Flush(pmem.CatOther, kept, 8)
			for i := 0; i < 200; i++ {
				if _, err := th.Malloc(256); err != nil {
					t.Fatal(err)
				}
			}
			th.Ctx().Merge()
			dev.Crash() // no Close
			h2, _, err := Open(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if dev.ReadU64(kept) != 0xCAFE {
				t.Fatal("published object lost")
			}
			th2 := h2.NewThread()
			defer th2.Close()
			if err := th2.Free(kept); err != nil {
				t.Fatalf("published object not allocated after recovery: %v", err)
			}
		})
	}
}

func TestRecoveryCostOrdering(t *testing.T) {
	// Figure 18's ordering: nvm_malloc < PMDK << Ralloc < Makalu.
	cost := map[string]int64{}
	for _, cfg := range []Config{NvmMalloc, PMDK, Ralloc, Makalu} {
		dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
		h, err := New(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		// A linked list of nodes so GC has something to chase.
		var prev pmem.PAddr
		for i := 0; i < 3000; i++ {
			p, err := th.Malloc(96)
			if err != nil {
				t.Fatal(err)
			}
			dev.WriteU64(p, uint64(prev))
			th.Ctx().Flush(pmem.CatOther, p, 8)
			prev = p
		}
		c := th.Ctx()
		c.PersistU64(pmem.CatOther, h.RootSlot(0), uint64(prev))
		c.Merge()
		dev.Crash()
		_, ns, err := Open(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cost[cfg.Name] = ns
	}
	if !(cost["nvm_malloc"] < cost["PMDK"] && cost["PMDK"] < cost["Ralloc"] && cost["Ralloc"] < cost["Makalu"]) {
		t.Fatalf("recovery cost ordering wrong: %v", cost)
	}
}

func TestBitmapBaselinesReflushHeavily(t *testing.T) {
	// Figure 1(a): PMDK / nvm_malloc / PAllocator reflush on 40-99%+ of
	// their flushes for back-to-back small allocations.
	for _, cfg := range []Config{PMDK, NvmMalloc, PAllocator} {
		dev := pmem.New(pmem.Config{Size: 128 << 20})
		h, err := New(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		for i := 0; i < 3000; i++ {
			if _, err := th.Malloc(64); err != nil {
				t.Fatal(err)
			}
		}
		th.Close()
		st := dev.Stats()
		if r := st.ReflushRatio(); r < 0.4 {
			t.Fatalf("%s reflush ratio %.2f, want >= 0.4", cfg.Name, r)
		}
	}
}

func TestGCBaselinesFlushProfile(t *testing.T) {
	// Makalu flushes head+link per op; Ralloc only on free; both far more
	// than nothing.
	flushes := func(cfg Config) uint64 {
		dev := pmem.New(pmem.Config{Size: 128 << 20})
		h, err := New(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		var ps []pmem.PAddr
		for i := 0; i < 1000; i++ {
			p, _ := th.Malloc(64)
			ps = append(ps, p)
		}
		for _, p := range ps {
			_ = th.Free(p)
		}
		th.Close()
		return dev.Stats().Flushes
	}
	mk, rl := flushes(Makalu), flushes(Ralloc)
	if mk <= rl {
		t.Fatalf("Makalu should flush more than Ralloc: %d vs %d", mk, rl)
	}
	if rl < 900 {
		t.Fatalf("Ralloc must flush links on free: %d", rl)
	}
}

func TestPerThreadArenasDoNotContend(t *testing.T) {
	dev, h := newBaseHeap(t, PAllocator)
	a := h.NewThread()
	b := h.NewThread()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 500; i++ {
		if _, err := a.Malloc(64); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Malloc(64); err != nil {
			t.Fatal(err)
		}
	}
	if a.(*Thread).ar == b.(*Thread).ar {
		t.Fatal("PAllocator threads must own private arenas")
	}
	_ = dev
}

func TestFreeFromAndUsedPeak(t *testing.T) {
	dev, h := newBaseHeap(t, NvmMalloc)
	th := h.NewThread()
	defer th.Close()
	u0 := h.Used()
	p, err := th.MallocTo(h.RootSlot(1), 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if h.Used() <= u0 || h.Peak() < h.Used() {
		t.Fatal("usage accounting wrong")
	}
	if err := th.FreeFrom(h.RootSlot(1)); err != nil {
		t.Fatal(err)
	}
	if dev.ReadU64(h.RootSlot(1)) != 0 {
		t.Fatal("slot not cleared")
	}
	_ = p
	h.ResetPeak()
	if h.Peak() != h.Used() {
		t.Fatal("ResetPeak wrong")
	}
}

func TestOpenUnformattedDevice(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	if _, _, err := Open(dev, PMDK); err == nil {
		t.Fatal("expected error for unformatted device")
	}
}
