package pmem

import "sync"

// Category classifies the work a worker is doing when it charges virtual
// time or flushes a line. The categories match the paper's Figure 11
// breakdown (FlushMeta, FlushWAL, Search, Other).
type Category int

const (
	// CatMeta is persistence of heap metadata (bitmaps, slab headers,
	// extent headers, bookkeeping log entries).
	CatMeta Category = iota
	// CatWAL is persistence of write-ahead log entries.
	CatWAL
	// CatSearch is CPU time spent searching, splitting and coalescing.
	CatSearch
	// CatOther is everything else (list maintenance, user copies, ...).
	CatOther
	// NumCategories is the number of charge categories.
	NumCategories
)

func (c Category) String() string {
	switch c {
	case CatMeta:
		return "FlushMeta"
	case CatWAL:
		return "FlushWAL"
	case CatSearch:
		return "Search"
	default:
		return "Other"
	}
}

// SchedPoint names a class of scheduler yield points: the places where
// a concurrency model checker may interleave another worker's execution.
// They are exactly the synchronization events of the allocator's
// persistence protocol — resource acquisition/release, line flushes and
// store fences — so a scheduler driving hooked contexts observes every
// ordering decision that matters to crash consistency.
type SchedPoint int

const (
	// PointAcquire fires immediately before a Resource is locked.
	PointAcquire SchedPoint = iota
	// PointRelease fires immediately after a Resource is unlocked.
	PointRelease
	// PointFlush fires after a line flush has reached the media (and,
	// with the journal enabled, after its delta was journaled).
	PointFlush
	// PointFence fires at a store fence.
	PointFence
)

func (p SchedPoint) String() string {
	switch p {
	case PointAcquire:
		return "acquire"
	case PointRelease:
		return "release"
	case PointFlush:
		return "flush"
	case PointFence:
		return "fence"
	}
	return "point?"
}

// SchedHook receives every schedule point reached by a hooked Ctx. The
// crash-point model checker's deterministic scheduler implements it to
// serialize trace threads at these points.
//
// switchable reports whether the context holds no Resource at the yield:
// a scheduler may only suspend a worker at switchable points — a worker
// parked inside a critical section would deadlock any other worker
// (scheduled or not) that takes the same lock. r is non-nil only for
// PointAcquire/PointRelease.
type SchedHook interface {
	Yield(c *Ctx, p SchedPoint, r *Resource, switchable bool)
	// Step returns the scheduler's current global step counter; journaled
	// flush deltas are stamped with it (FlushDelta.Step) so every delta
	// carries schedule provenance.
	Step() int32
}

// Ctx is a per-worker execution context: a virtual clock plus the local
// state needed to classify flushes (reflush window, sequential-write
// detector) and per-category accounting. A Ctx must not be shared between
// goroutines.
type Ctx struct {
	dev Dev

	// sim is dev's concrete type when the context runs on the simulated
	// device (nil in direct mode), so the flush hot path reaches banks,
	// line locks and the media image without interface dispatch.
	sim *Device

	// direct short-circuits the virtual-time model: flushes and fences
	// only bump local counters, and Resources degrade to plain mutexes.
	direct bool

	// mem is the device's concrete image view, so Ctx store helpers
	// (PersistU64) skip interface dispatch.
	mem Mem

	// Now is the worker's virtual clock in nanoseconds.
	Now int64

	// ThreadID labels this worker's journaled flush deltas
	// (FlushDelta.Thread); recorders of multi-threaded traces assign it.
	ThreadID int32

	// hook, when non-nil, observes this context's schedule points; held
	// counts the Resources currently held (yields are only switchable at
	// held == 0).
	hook SchedHook
	held int

	// recent is the worker's reflush window: the last ReflushWindow unique
	// line numbers flushed, most recent first. Values are line+1 so the
	// zero value means "empty slot".
	recent [ReflushWindow]uint64

	// lastLine+1 of the previous flush, for sequential-write detection.
	lastLine uint64

	// flushIssued counts flushLine invocations (including ones dropped by
	// an armed crash); folded into Device.flushTotal by Merge.
	flushIssued uint64

	local Stats
}

// NewCtx creates a worker context for the device.
func (d *Device) NewCtx() *Ctx {
	return &Ctx{dev: d, sim: d, mem: d.Mem()}
}

// Device returns the device this context operates on.
func (c *Ctx) Device() Dev { return c.dev }

// Direct reports whether the context runs on the real-concurrency device.
func (c *Ctx) Direct() bool { return c.direct }

// SetSchedHook installs (or, with nil, removes) the context's scheduler
// hook. Must be called while the context is quiescent.
func (c *Ctx) SetSchedHook(h SchedHook) { c.hook = h }

// yield reports a schedule point to the hook, if any.
func (c *Ctx) yield(p SchedPoint, r *Resource) {
	if c.hook != nil {
		c.hook.Yield(c, p, r, c.held == 0)
	}
}

// Charge advances the virtual clock by ns, attributing it to cat.
func (c *Ctx) Charge(cat Category, ns int64) {
	c.Now += ns
	c.local.CatNS[cat] += ns
}

// Fence orders preceding flushes. Each flush is already charged its full
// latency, so a fence only costs the small fixed fence latency.
func (c *Ctx) Fence() {
	c.local.Fences++
	if c.direct {
		// Real mode: the fence is instrumentation only. The compiler
		// barrier a real sfence would add is unnecessary — every ordering
		// the allocators rely on at runtime comes from their own mutexes
		// and atomics, not from persistence fences.
		return
	}
	c.Charge(CatOther, FenceNS)
	c.yield(PointFence, nil)
}

// Flush persists every cache line overlapping [addr, addr+size),
// attributing its cost to cat. In eADR mode this is (nearly) free.
func (c *Ctx) Flush(cat Category, addr PAddr, size int) {
	if size <= 0 {
		return
	}
	first := uint64(addr) / LineSize
	last := (uint64(addr) + uint64(size) - 1) / LineSize
	for line := first; line <= last; line++ {
		c.flushLine(cat, line)
	}
}

// FlushU64 is the common case: persist the single line holding an 8-byte
// store at addr.
func (c *Ctx) FlushU64(cat Category, addr PAddr) {
	c.flushLine(cat, uint64(addr)/LineSize)
}

// FlushLineOf persists the single cache line containing addr. It is
// Flush for stores the caller knows cannot cross a line boundary (a
// bitmap byte, a line-aligned WAL slot), skipping the range setup.
func (c *Ctx) FlushLineOf(cat Category, addr PAddr) {
	c.flushLine(cat, uint64(addr)/LineSize)
}

// PersistU64 stores v at addr and flushes its line: the canonical
// 8-byte-atomic persistent write.
func (c *Ctx) PersistU64(cat Category, addr PAddr, v uint64) {
	c.mem.WriteU64(addr, v)
	c.FlushU64(cat, addr)
}

func (c *Ctx) flushLine(cat Category, line uint64) {
	c.flushIssued++
	if c.direct {
		// Real mode: count the flush so call ratios stay comparable with
		// simulated runs, but charge nothing and touch no shared state.
		c.local.Flushes++
		c.local.CatFlush[cat]++
		return
	}
	d := c.sim

	// Rare-feature checks (crash flag, flush countdown, fault plan, flush
	// tracing) sit behind a single pre-armed gate: the steady-state flush
	// pays one atomic load for all four.
	if d.flushArmed.Load() && d.flushSlowPath(cat, line) {
		return
	}

	if d.mode == ModeEADR {
		c.local.Flushes++
		c.local.CatFlush[cat]++
		c.Charge(cat, EADRFlushNS)
		c.yield(PointFlush, nil)
		return
	}

	// Classify: reflush (line seen within the last ReflushWindow unique
	// flushed lines) vs. regular sequential/random flush.
	key := line + 1
	var ns int64
	dist := -1
	for i, v := range c.recent {
		if v == key {
			dist = i
			break
		}
	}
	if dist >= 0 {
		step := dist
		if step > 3 {
			step = 3
		}
		ns = ReflushBaseNS - int64(step)*ReflushStepNS
		c.local.Reflushes++
	} else if c.lastLine != 0 && line == c.lastLine {
		// lastLine holds previous-line+1, so equality means "adjacent".
		ns = SeqFlushNS
		c.local.SeqFlushes++
	} else {
		ns = RandFlushNS
		c.local.RandFlushes++
	}
	c.lastLine = line + 1

	// Move line to the front of the reflush window. Shifted by hand: the
	// window is 4 entries, and a copy() here is a memmove call on the
	// hottest loop in the simulator.
	if dist != 0 {
		if dist < 0 {
			dist = len(c.recent) - 1
		}
		for j := dist; j > 0; j-- {
			c.recent[j] = c.recent[j-1]
		}
		c.recent[0] = key
	}

	// Serialize on the media bank and consult its write-combining buffer.
	b := &d.banks[line%uint64(len(d.banks))]
	xp := uint64(line*LineSize)/XPLineSize + 1
	b.mu.Lock()
	hit := false
	for i, v := range b.xplines {
		if v == xp {
			hit = true
			if i != 0 {
				for j := i; j > 0; j-- {
					b.xplines[j] = b.xplines[j-1]
				}
				b.xplines[0] = xp
			}
			break
		}
	}
	if !hit {
		for j := len(b.xplines) - 1; j > 0; j-- {
			b.xplines[j] = b.xplines[j-1]
		}
		b.xplines[0] = xp
		ns += XPMissNS
	}
	// Banks are fluid servers too (see Resource): a flush queues behind
	// the bank's accumulated service load, occupies it for the media
	// service time, and the issuer additionally observes the full flush
	// round-trip latency.
	start := c.Now
	if b.clock > start {
		c.local.BankWaitNS += b.clock - start
		start = b.clock
	}
	svc := int64(BankServiceNS)
	if ns < svc {
		svc = ns
	}
	b.clock += svc
	c.Now = start + ns
	b.mu.Unlock()

	c.local.CatNS[cat] += ns
	c.local.Flushes++
	c.local.CatFlush[cat]++

	if d.strict {
		// Take the line's stripe so the whole-line copy cannot observe (or
		// race with) a concurrent store to another word of the same line.
		off := line * LineSize
		mu := d.lineLock(line)
		mu.Lock()
		copy(d.media[off:off+LineSize], d.mem[off:off+LineSize])
		if d.journalOn {
			fd := FlushDelta{Line: line, Cat: cat, Thread: c.ThreadID, Step: -1}
			if c.hook != nil {
				fd.Step = c.hook.Step()
			}
			copy(fd.Data[:], d.mem[off:off+LineSize])
			mu.Unlock()
			d.journalMu.Lock()
			d.journalAppend(fd)
			d.journalMu.Unlock()
		} else {
			mu.Unlock()
		}
	}
	c.yield(PointFlush, nil)
}

// flushSlowPath runs the rare flush-time features — fault injection,
// crash countdown, flush tracing — and reports whether the flush must be
// dropped (device crashed: nothing persists any more).
func (d *Device) flushSlowPath(cat Category, line uint64) bool {
	if d.crashed.Load() {
		return true
	}
	if d.crashAfter.Load() >= 0 {
		if d.crashAfter.Add(-1) < 0 {
			d.crashed.Store(true)
			return true
		}
	}
	if fs := d.fault.Load(); fs != nil {
		if fs.plan.Category == CatAny || fs.plan.Category == cat {
			if fs.remaining.Add(-1) < 0 {
				if d.crashed.CompareAndSwap(false, true) && fs.plan.TornLine {
					// The crash-triggering flush was mid-flight: a seeded
					// subset of its 8-byte words reaches the media.
					d.tearLine(line, fs.plan.Seed)
				}
				return true
			}
		}
	}
	if d.traceCap > 0 {
		d.traceMu.Lock()
		if len(d.trace) < d.traceCap {
			d.trace = append(d.trace, FlushRecord{Seq: len(d.trace), Addr: PAddr(line * LineSize), Cat: cat})
		}
		d.traceMu.Unlock()
	}
	return false
}

// Merge folds this context's local statistics into the device totals and
// resets the local counters. Call it when a worker finishes.
func (c *Ctx) Merge() {
	c.dev.mergeStats(&c.local, c.flushIssued, c.Now)
	c.local = Stats{}
	c.flushIssued = 0
}

// Local returns a copy of the context's unmerged statistics.
func (c *Ctx) Local() Stats { return c.local }

// Resource models a shared structure (an arena, a log, a global list) as
// both a real mutex and a virtual-time serialization point. The virtual
// model is a fluid server: the resource accumulates the virtual duration
// of every critical section executed under it, and a worker arriving at
// virtual time t waits until the accumulated load has drained (start =
// max(t, load)). Crucially this is independent of the *real* order in
// which goroutines take the mutex, so single-core test machines produce
// the same virtual contention as a 40-core testbed: an uncontended
// resource never delays anyone, and a saturated one serializes its users.
type Resource struct {
	mu       sync.Mutex
	load     int64  // cumulative critical-section virtual ns served
	start    int64  // current holder's section start (valid while locked)
	waitNS   int64  // cumulative virtual wait observed by acquirers
	acquires uint64 // number of Acquire calls (not Lock)

	// _pad rounds the resource to a full cache line (8+8+8+8+8+24 = 64)
	// so structs embedding several Resources — or a Resource next to other
	// hot fields — don't false-share under real goroutines.
	_pad [64 - 40]byte
}

// Acquire locks the resource and queues the worker behind its accumulated
// virtual load. In direct mode it is a plain mutex lock: real contention
// is measured by the wall clock, not modelled.
func (r *Resource) Acquire(c *Ctx) {
	if c.direct {
		r.mu.Lock()
		c.held++
		return
	}
	c.yield(PointAcquire, r)
	r.mu.Lock()
	c.held++
	r.acquires++
	if r.load > c.Now {
		w := r.load - c.Now
		c.local.LockWaitNS += w
		r.waitNS += w
		c.Now = r.load
	}
	r.start = c.Now
}

// Release adds the critical section's virtual duration to the resource's
// load and unlocks it.
func (r *Resource) Release(c *Ctx) {
	if c.direct {
		r.mu.Unlock()
		c.held--
		return
	}
	if cs := c.Now - r.start; cs > 0 {
		r.load += cs
	}
	r.mu.Unlock()
	c.held--
	c.yield(PointRelease, r)
}

// Lock takes the resource's mutex without touching the virtual-time
// model: no context is needed, no wait is charged, and no counters move.
// Use it for read-mostly accessors (stats, object walks) that must not
// perturb the simulation. Pair with Unlock.
func (r *Resource) Lock() { r.mu.Lock() }

// Unlock releases a Lock-only acquisition.
func (r *Resource) Unlock() { r.mu.Unlock() }

// Load returns the resource's accumulated virtual load (diagnostics).
func (r *Resource) Load() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.load
}

// WaitNS returns the cumulative virtual wait workers observed acquiring
// the resource (the resource-side view of Stats.LockWaitNS).
func (r *Resource) WaitNS() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.waitNS
}

// Acquires returns the number of Acquire calls served (Lock-only
// acquisitions are not counted).
func (r *Resource) Acquires() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acquires
}
