// Package pmem simulates a byte-addressable persistent memory device with
// the performance characteristics that drive the NVAlloc paper's evaluation:
// cache-line flushes, reflush-distance penalties, sequential vs. random
// write latency, XPBuffer (write-combining buffer) pressure, and an
// ADR/eADR persistence domain.
//
// The device keeps two images of memory. The "cache" image is what CPU
// loads and stores observe. In strict mode a second "media" image holds
// only data that has been explicitly flushed; simulated crashes discard
// the cache image, so unflushed stores are lost exactly as they would be
// on ADR hardware. On an eADR device the cache is inside the persistence
// domain, flushes are free, and crashes lose nothing.
//
// Time is virtual. Every worker owns a Ctx with a monotonically advancing
// nanosecond clock; flushes charge the paper's measured latencies to that
// clock, and shared structures (device banks, allocator arenas, logs) are
// modelled as resource clocks so contention serializes virtual time the
// way a real lock serializes real time. Benchmark throughput is computed
// from the maximum clock over all workers, which makes every experiment
// deterministic and machine-independent.
package pmem

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// PAddr is a persistent address: a byte offset into the device. Offset 0 is
// reserved as the null address so that zeroed persistent memory reads as
// "no pointer".
type PAddr uint64

// Null is the zero PAddr.
const Null PAddr = 0

// LineSize is the CPU cache line size in bytes. All flush accounting is
// line-granular.
const LineSize = 64

// XPLineSize is the internal write granularity of the simulated media
// (Optane writes 256 B XPLines); the write-combining buffer tracks these.
const XPLineSize = 256

// Mode selects the persistence domain of the device.
type Mode int

const (
	// ModeADR: only flushed cache lines reach the persistence domain.
	ModeADR Mode = iota
	// ModeEADR: CPU caches are inside the persistence domain; flushes are
	// free and unflushed stores survive a crash.
	ModeEADR
)

func (m Mode) String() string {
	if m == ModeEADR {
		return "eADR"
	}
	return "ADR"
}

// Latency model constants, in virtual nanoseconds. The reflush curve
// (800 ns at distance 0 falling to 500 ns at distance 3) and the 3x/7x
// ratios against random/sequential writes come from Section 3.1 of the
// paper and its citations [7,40].
const (
	SeqFlushNS    = 115 // sequential regular flush
	RandFlushNS   = 265 // random regular flush
	ReflushBaseNS = 800 // reflush at distance 0
	ReflushStepNS = 100 // improvement per unit of reflush distance
	ReflushWindow = 4   // distance >= window counts as a regular flush
	XPMissNS      = 60  // extra media write when write-combining misses
	FenceNS       = 10  // store fence
	EADRFlushNS   = 2   // residual cost of a (no-op) flush call on eADR
	// BankServiceNS is the media-bank occupancy per line write; the rest
	// of a flush's latency is round-trip time that overlaps across
	// concurrent flushers, so the aggregate flush bandwidth is
	// banks/BankServiceNS.
	BankServiceNS  = 60
	xpLinesPerBank = 4 // write-combining entries per bank
	defaultBanks   = 8 // media banks (parallelism limit)

	// lineLockStripes is the number of line-lock stripes in strict mode
	// (power of two; lines hash by line % stripes).
	lineLockStripes = 1024
)

// Config configures a Device.
type Config struct {
	// Size is the device capacity in bytes. Rounded up to a 4 KiB multiple.
	Size uint64
	// Mode selects ADR (default) or eADR.
	Mode Mode
	// Strict maintains a separate persisted image so crashes can be
	// simulated faithfully. It roughly doubles memory use and adds a copy
	// per flush, so benchmarks leave it off.
	Strict bool
	// Banks overrides the number of media banks (default 8).
	Banks int
	// TraceFlushes, when > 0, records the address and category of the
	// first N flushed lines (used to reproduce Figure 2).
	TraceFlushes int
	// Journal records every flushed line as a copy-on-flush delta (see
	// journal.go), so crash images at arbitrary persistence boundaries
	// can be reconstructed incrementally. Requires Strict.
	Journal bool
	// JournalCheckpointEvery, when > 0, caps journal memory for long
	// traces: once 2*K deltas are retained the oldest K fold into a
	// checkpoint base image and the reconstructible boundary floor
	// (JournalBase) advances by K. 0 retains every delta.
	JournalCheckpointEvery int
}

// Device is a simulated persistent memory DIMM.
type Device struct {
	mode   Mode
	strict bool
	size   uint64

	mem   []byte // cache image: what loads and stores observe
	media []byte // persisted image (strict mode only)

	// lineLocks, allocated only in strict mode, stripe-locks cache lines:
	// every typed store takes its line's stripe so the whole-line media
	// copy in flushLine observes a consistent line even while another
	// worker writes a neighbouring word of the same line. Bytes() views
	// bypass the stripes — bulk users must do their own line-level
	// synchronization if they share lines across goroutines.
	lineLocks []sync.Mutex

	banks []bank

	crashed    atomic.Bool
	crashAfter atomic.Int64 // flush countdown; <0 means disabled
	fault      atomic.Pointer[faultState]

	// flushArmed is the flush fast-path gate: true whenever any of the
	// rare flush-time features — crash flag, armed flush countdown, fault
	// plan, flush tracing — is active, so the steady-state flushLine pays
	// one atomic load instead of four. Arming sites store their state
	// first, then call armFlushGate; flushes racing with arming behave as
	// if they ordered before it, exactly as with the individual atomics.
	flushArmed atomic.Bool

	// flushTotal aggregates per-Ctx flush-issue counts folded in by
	// Ctx.Merge; guarded by statsMu. Kept out of the flush hot path: a
	// shared atomic increment per flush costs more than the flush model
	// itself.
	flushTotal uint64

	traceMu  sync.Mutex
	trace    []FlushRecord
	traceCap int

	journalOn   bool
	journalMu   sync.Mutex
	journal     []FlushDelta
	journalCkpt int    // fold interval K (0 = unbounded)
	journalBase int    // boundary of journal[0]
	journalImg  []byte // media image at journalBase (nil while base is 0)

	statsMu sync.Mutex
	stats   Stats
}

// bank models one internal media bank: a resource clock plus a tiny LRU of
// recently written XPLines standing in for the shared write-combining
// buffer (XPBuffer).
type bank struct {
	mu      sync.Mutex
	clock   int64
	xplines [xpLinesPerBank]uint64 // +1 encoded, 0 = empty; index 0 is MRU
}

// FlushRecord is one traced flush (for Figure 2's address scatter).
type FlushRecord struct {
	Seq  int      // global flush order
	Addr PAddr    // line-aligned address
	Cat  Category // what kind of metadata was being flushed
}

// New creates a device of the given configuration.
func New(cfg Config) *Device {
	if cfg.Size == 0 {
		cfg.Size = 64 << 20
	}
	cfg.Size = (cfg.Size + 4095) &^ 4095
	nb := cfg.Banks
	if nb <= 0 {
		nb = defaultBanks
	}
	if cfg.Journal && !cfg.Strict {
		panic("pmem: Config.Journal requires Config.Strict")
	}
	d := &Device{
		mode:      cfg.Mode,
		strict:    cfg.Strict,
		size:      cfg.Size,
		mem:       make([]byte, cfg.Size),
		banks:     make([]bank, nb),
		traceCap:  cfg.TraceFlushes,
		journalOn: cfg.Journal,
	}
	d.journalCkpt = cfg.JournalCheckpointEvery
	if cfg.Strict {
		d.media = make([]byte, cfg.Size)
		d.lineLocks = make([]sync.Mutex, lineLockStripes)
	}
	d.crashAfter.Store(-1)
	d.armFlushGate()
	return d
}

// armFlushGate recomputes the flush fast-path gate from the rare-feature
// state. Call after any change to the crash flag, the flush countdown,
// the fault plan, or flush tracing.
func (d *Device) armFlushGate() {
	d.flushArmed.Store(d.crashed.Load() || d.crashAfter.Load() >= 0 ||
		d.fault.Load() != nil || d.traceCap > 0)
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.size }

// Mode returns the persistence mode of the device.
func (d *Device) Mode() Mode { return d.mode }

// Strict reports whether crash simulation (shadow media image) is enabled.
func (d *Device) Strict() bool { return d.strict }

// EADR reports whether the device persistence domain includes the caches.
func (d *Device) EADR() bool { return d.mode == ModeEADR }

func (d *Device) check(addr PAddr, n int) {
	if uint64(addr)+uint64(n) > d.size {
		panic(fmt.Sprintf("pmem: access [%#x,+%d) out of device bounds %#x", addr, n, d.size))
	}
}

// Bytes returns a mutable view of [addr, addr+n) in the cache image. The
// caller is responsible for flushing any stores it performs through the
// view. This is the bulk-access escape hatch; prefer the typed accessors.
func (d *Device) Bytes(addr PAddr, n int) []byte { return d.Mem().Bytes(addr, n) }

// lineLock returns the stripe lock covering line (strict mode only).
func (d *Device) lineLock(line uint64) *sync.Mutex {
	return &d.lineLocks[line%uint64(len(d.lineLocks))]
}

// The typed accessors delegate to the Mem view, which holds the canonical
// bounds-check and strict-mode line-locking logic.

// ReadU64 loads a little-endian uint64.
func (d *Device) ReadU64(addr PAddr) uint64 { return d.Mem().ReadU64(addr) }

// WriteU64 stores a little-endian uint64 to the cache image.
func (d *Device) WriteU64(addr PAddr, v uint64) { d.Mem().WriteU64(addr, v) }

// ReadU32 loads a little-endian uint32.
func (d *Device) ReadU32(addr PAddr) uint32 { return d.Mem().ReadU32(addr) }

// WriteU32 stores a little-endian uint32.
func (d *Device) WriteU32(addr PAddr, v uint32) { d.Mem().WriteU32(addr, v) }

// ReadU16 loads a little-endian uint16.
func (d *Device) ReadU16(addr PAddr) uint16 { return d.Mem().ReadU16(addr) }

// WriteU16 stores a little-endian uint16.
func (d *Device) WriteU16(addr PAddr, v uint16) { d.Mem().WriteU16(addr, v) }

// ReadU8 loads one byte.
func (d *Device) ReadU8(addr PAddr) byte { return d.Mem().ReadU8(addr) }

// WriteU8 stores one byte.
func (d *Device) WriteU8(addr PAddr, v byte) { d.Mem().WriteU8(addr, v) }

// Write copies p into the cache image at addr.
func (d *Device) Write(addr PAddr, p []byte) { d.Mem().Write(addr, p) }

// Read copies n bytes at addr into a fresh slice.
func (d *Device) Read(addr PAddr, n int) []byte { return d.Mem().Read(addr, n) }

// Zero clears [addr, addr+n) in the cache image.
func (d *Device) Zero(addr PAddr, n int) { d.Mem().Zero(addr, n) }

// CrashAfterFlushes arms fault injection: after n more successful line
// flushes the device "loses power" — subsequent flushes stop persisting and
// the device reports itself crashed. Combine with Crash to test recovery at
// an arbitrary persistence boundary. n < 0 disarms.
func (d *Device) CrashAfterFlushes(n int64) {
	d.crashAfter.Store(n)
	d.armFlushGate()
}

// Crashed reports whether armed fault injection has triggered.
func (d *Device) Crashed() bool { return d.crashed.Load() }

// FlushTotal returns the number of line flushes issued over the device's
// lifetime by contexts that have merged (Ctx.Merge), including flushes
// dropped after an armed crash fired. It is the coordinate system
// CrashAfterFlushes cuts in: call it after the workload's contexts have
// merged and the value equals the number of flushLine invocations the
// countdown saw.
func (d *Device) FlushTotal() uint64 {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.flushTotal
}

// Crash simulates power loss: in strict ADR mode the cache image is
// replaced by the persisted image, discarding every unflushed store. On
// eADR the cache image *is* persistent, so nothing is lost. The device
// remains usable afterwards (as if the machine rebooted and remapped the
// heap file).
func (d *Device) Crash() {
	if !d.strict {
		panic("pmem: Crash requires a strict-mode device")
	}
	fs := d.fault.Swap(nil)
	if d.mode == ModeEADR {
		// Whole cache is in the persistence domain.
		copy(d.media, d.mem)
		if fs != nil {
			d.applyFlips(fs)
		}
		copy(d.mem, d.media)
	} else {
		if fs != nil {
			d.applyFlips(fs)
		}
		copy(d.mem, d.media)
	}
	d.crashed.Store(false)
	d.crashAfter.Store(-1)
	d.armFlushGate()
	// A reboot starts a fresh timeline: bank clocks and the
	// write-combining buffer do not survive power loss.
	for i := range d.banks {
		d.banks[i].mu.Lock()
		d.banks[i].clock = 0
		d.banks[i].xplines = [xpLinesPerBank]uint64{}
		d.banks[i].mu.Unlock()
	}
}

// SaveImage writes the persisted image (strict mode) or the cache image to
// path, emulating the DAX heap file surviving a process exit. The image is
// written to a temporary file in the same directory and renamed into
// place, so a host crash mid-save can never leave a torn image behind.
func (d *Device) SaveImage(path string) error {
	src := d.mem
	if d.strict {
		src = d.media
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pmem-img-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(src); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// LoadImage replaces both images with the contents of path. The file must
// be exactly the device size: a short file means a truncated image, a long
// one means a garbage tail — both are reported distinctly so callers can
// tell which failure they are looking at.
func (d *Device) LoadImage(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if uint64(len(b)) < d.size {
		return fmt.Errorf("pmem: image truncated: %d bytes, device size %d", len(b), d.size)
	}
	if uint64(len(b)) > d.size {
		return fmt.Errorf("pmem: image has %d trailing garbage bytes beyond device size %d", uint64(len(b))-d.size, d.size)
	}
	copy(d.mem, b)
	if d.strict {
		copy(d.media, b)
	}
	return nil
}

// FlushTrace returns the recorded flush trace (nil unless TraceFlushes was
// set).
func (d *Device) FlushTrace() []FlushRecord {
	d.traceMu.Lock()
	defer d.traceMu.Unlock()
	out := make([]FlushRecord, len(d.trace))
	copy(out, d.trace)
	return out
}
