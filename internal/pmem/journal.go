package pmem

// The flush journal records every line that reaches the media image, in
// flush order, as a copy-on-flush delta. It is the foundation of the
// crash-point model checker (internal/crashmc): the device image at
// persistence boundary k is, by construction, a zeroed device with the
// first k deltas applied — exactly what CrashAfterFlushes(k) followed by
// Crash() would leave behind, but derivable from image k-1 with a single
// 64-byte copy instead of a full workload replay.
//
// For long traces the journal can run in checkpointed mode
// (Config.JournalCheckpointEvery): instead of retaining every delta, the
// device periodically folds the oldest deltas into a base image — the
// same incremental reconstruction an ImageCursor performs — capping
// retained deltas at 2x the checkpoint interval. Boundaries below the
// fold point are no longer enumerable; the ones that remain reconstruct
// byte-identically to the unbounded journal (TestJournalCheckpointing).

// FlushDelta is one journaled line flush: the line's post-flush media
// content, plus provenance — which worker flushed it and at which
// scheduler step (for multi-threaded trace recordings; -1/0 when no
// scheduler is attached).
type FlushDelta struct {
	// Line is the flushed cache-line number (byte offset / LineSize).
	Line uint64
	// Cat is the flush's charge category (WAL, metadata, ...), used by
	// coverage reports to classify what was in flight at a boundary.
	Cat Category
	// Thread is the flushing context's ThreadID (0 unless assigned).
	Thread int32
	// Step is the scheduler's global step counter at flush time (-1 when
	// the flushing context had no scheduler hook).
	Step int32
	// Data is the full line as it reached the media.
	Data [LineSize]byte
}

// journalAppend appends one delta and, in checkpointed mode, folds the
// oldest deltas into the base image once the retained list doubles the
// checkpoint interval. Caller holds journalMu.
func (d *Device) journalAppend(fd FlushDelta) {
	d.journal = append(d.journal, fd)
	k := d.journalCkpt
	if k <= 0 || len(d.journal) < 2*k {
		return
	}
	if d.journalImg == nil {
		d.journalImg = make([]byte, d.size)
	}
	for i := 0; i < k; i++ {
		fd := &d.journal[i]
		off := fd.Line * LineSize
		copy(d.journalImg[off:off+LineSize], fd.Data[:])
	}
	d.journal = append(d.journal[:0:0], d.journal[k:]...)
	d.journalBase += k
}

// JournalLen returns the number of journaled flushes so far (including
// any folded into a checkpoint). With the journal enabled there are
// JournalLen()+1 persistence boundaries: the empty image (k=0) through
// the fully flushed image (k=JournalLen()).
func (d *Device) JournalLen() int {
	d.journalMu.Lock()
	defer d.journalMu.Unlock()
	return d.journalBase + len(d.journal)
}

// JournalBase returns the first reconstructible persistence boundary: 0
// with an unbounded journal, the fold point in checkpointed mode.
func (d *Device) JournalBase() int {
	d.journalMu.Lock()
	defer d.journalMu.Unlock()
	return d.journalBase
}

// JournalSnapshot returns a copy of the retained flush deltas (those for
// boundaries JournalBase()..JournalLen()).
func (d *Device) JournalSnapshot() []FlushDelta {
	d.journalMu.Lock()
	defer d.journalMu.Unlock()
	out := make([]FlushDelta, len(d.journal))
	copy(out, d.journal)
	return out
}

// JournalCheckpoint returns a copy of the checkpoint base image — the
// media image at boundary JournalBase() — or nil when the journal has
// never folded (base 0: the all-zero image).
func (d *Device) JournalCheckpoint() []byte {
	d.journalMu.Lock()
	defer d.journalMu.Unlock()
	if d.journalImg == nil {
		return nil
	}
	out := make([]byte, len(d.journalImg))
	copy(out, d.journalImg)
	return out
}

// Restore replaces the device's images with img and clears every piece of
// runtime state — crash flags, armed faults, flush counters, traces, bank
// clocks, statistics and the journal — as if the device had been freshly
// created already holding img. It is the scratch-device reset used when
// materializing journal checkpoints.
func (d *Device) Restore(img []byte) {
	if uint64(len(img)) != d.size {
		panic("pmem: Restore image size mismatch")
	}
	copy(d.mem, img)
	if d.strict {
		copy(d.media, img)
	}
	d.crashed.Store(false)
	d.crashAfter.Store(-1)
	d.fault.Store(nil)
	d.armFlushGate()
	d.statsMu.Lock()
	d.flushTotal = 0
	d.statsMu.Unlock()
	for i := range d.banks {
		d.banks[i].mu.Lock()
		d.banks[i].clock = 0
		d.banks[i].xplines = [xpLinesPerBank]uint64{}
		d.banks[i].mu.Unlock()
	}
	d.traceMu.Lock()
	d.trace = nil
	d.traceMu.Unlock()
	d.statsMu.Lock()
	d.stats = Stats{}
	d.statsMu.Unlock()
	d.journalMu.Lock()
	d.journal = nil
	d.journalBase = 0
	d.journalImg = nil
	d.journalMu.Unlock()
}

// ImageCursor incrementally reconstructs the media image at successive
// persistence boundaries of a recorded flush journal. Advancing from
// boundary k to k+1 applies one 64-byte delta; enumerating every boundary
// of an n-flush trace therefore costs O(n) line copies total, not O(n²)
// replays. A cursor only moves forward; enumeration partitions boundary
// ranges across cursors (one per worker) rather than rewinding.
type ImageCursor struct {
	journal []FlushDelta
	img     []byte
	base    int // boundary of journal[0]; the cursor cannot rewind below it
	k       int
}

// NewImageCursor creates a cursor over journal for a device of size
// bytes, positioned at boundary 0 (the all-zero image).
func NewImageCursor(size uint64, journal []FlushDelta) *ImageCursor {
	return &ImageCursor{journal: journal, img: make([]byte, size)}
}

// NewImageCursorAt creates a cursor positioned at boundary base, whose
// image is the given checkpoint (the journal's deltas cover boundaries
// base..base+len(journal)). This is how recordings made with a
// checkpointed journal (Config.JournalCheckpointEvery) are enumerated:
// img is Device.JournalCheckpoint, journal is Device.JournalSnapshot.
func NewImageCursorAt(base int, img []byte, journal []FlushDelta) *ImageCursor {
	c := &ImageCursor{journal: journal, img: make([]byte, len(img)), base: base, k: base}
	copy(c.img, img)
	return c
}

// Boundary returns the cursor's current persistence boundary.
func (c *ImageCursor) Boundary() int { return c.k }

// Image returns the cursor's current image. The slice is the cursor's
// working buffer: read-only, valid until the next Advance.
func (c *ImageCursor) Image() []byte { return c.img }

// Boundaries returns the last boundary the cursor can reach; valid
// boundaries are its base through Boundaries() inclusive.
func (c *ImageCursor) Boundaries() int { return c.base + len(c.journal) }

// Advance moves the cursor forward to boundary k, applying the journal
// deltas in [Boundary(), k). Rewinding panics.
func (c *ImageCursor) Advance(k int) {
	if k < c.k || k > c.base+len(c.journal) {
		panic("pmem: ImageCursor.Advance out of range")
	}
	for ; c.k < k; c.k++ {
		fd := &c.journal[c.k-c.base]
		off := fd.Line * LineSize
		copy(c.img[off:off+LineSize], fd.Data[:])
	}
}

// MaterializeInto restores d to the image at the cursor's boundary: the
// exact state a power cut at this persistence boundary would leave. The
// device is fully reset (Restore), so one scratch device can be reused
// across the whole enumeration.
func (c *ImageCursor) MaterializeInto(d *Device) {
	d.Restore(c.img)
}

// MaterializeTornInto restores d to the cursor's boundary image plus a
// torn variant of the *next* flush: the line that was mid-flight when
// power was lost persists only a seeded subset of its eight 8-byte words,
// with the same word-mask derivation as FaultPlan{TornLine: true}. It
// reports false (leaving d untouched) when the cursor sits at the final
// boundary and no flush is in flight.
func (c *ImageCursor) MaterializeTornInto(d *Device, seed uint64) bool {
	if c.k >= c.base+len(c.journal) {
		return false
	}
	d.Restore(c.img)
	fd := &c.journal[c.k-c.base]
	rng := splitmix64(seed ^ fd.Line*0xA24BAED4963EE407)
	mask := rng.next() // bit i set => word i persists
	off := fd.Line * LineSize
	for w := uint64(0); w < LineSize/8; w++ {
		if mask&(1<<w) != 0 {
			copy(d.mem[off+w*8:off+w*8+8], fd.Data[w*8:w*8+8])
			if d.strict {
				copy(d.media[off+w*8:off+w*8+8], fd.Data[w*8:w*8+8])
			}
		}
	}
	return true
}
