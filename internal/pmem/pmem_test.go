package pmem

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeviceSizing(t *testing.T) {
	d := New(Config{Size: 4097})
	if d.Size() != 8192 {
		t.Fatalf("size not rounded to 4K: %d", d.Size())
	}
	if New(Config{}).Size() == 0 {
		t.Fatal("default size must be nonzero")
	}
}

func TestTypedAccessors(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	d.WriteU64(64, 0xdeadbeefcafef00d)
	if got := d.ReadU64(64); got != 0xdeadbeefcafef00d {
		t.Fatalf("u64 roundtrip: %#x", got)
	}
	d.WriteU32(128, 0x12345678)
	if got := d.ReadU32(128); got != 0x12345678 {
		t.Fatalf("u32 roundtrip: %#x", got)
	}
	d.WriteU16(256, 0xbeef)
	if got := d.ReadU16(256); got != 0xbeef {
		t.Fatalf("u16 roundtrip: %#x", got)
	}
	d.WriteU8(300, 0x7f)
	if got := d.ReadU8(300); got != 0x7f {
		t.Fatalf("u8 roundtrip: %#x", got)
	}
	d.Write(512, []byte("hello"))
	if string(d.Read(512, 5)) != "hello" {
		t.Fatal("bulk roundtrip failed")
	}
	d.Zero(512, 5)
	for _, b := range d.Read(512, 5) {
		if b != 0 {
			t.Fatal("zero did not clear")
		}
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	d := New(Config{Size: 4096})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds access")
		}
	}()
	d.ReadU64(PAddr(d.Size() - 4))
}

func TestU64RoundtripProperty(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	f := func(off uint16, v uint64) bool {
		addr := PAddr(uint64(off) % (d.Size() - 8))
		d.WriteU64(addr, v)
		return d.ReadU64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReflushDetection(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	c := d.NewCtx()
	// Flush A, B, C, D, A: the second A has reflush distance 3.
	lines := []PAddr{0, 64, 128, 192, 0}
	for _, a := range lines {
		c.FlushU64(CatMeta, a)
	}
	if c.local.Reflushes != 1 {
		t.Fatalf("want 1 reflush, got %d", c.local.Reflushes)
	}
	// Flush the same line twice in a row: distance 0, also a reflush.
	c2 := d.NewCtx()
	c2.FlushU64(CatMeta, 0)
	c2.FlushU64(CatMeta, 0)
	if c2.local.Reflushes != 1 {
		t.Fatalf("want 1 reflush at distance 0, got %d", c2.local.Reflushes)
	}
}

func TestReflushDistanceLatency(t *testing.T) {
	// Distance 0 must cost more than distance 3, which must cost more than
	// a regular flush.
	cost := func(pattern []PAddr) int64 {
		d := New(Config{Size: 1 << 16})
		c := d.NewCtx()
		// Prime so XPBuffer misses do not dominate the comparison.
		for _, a := range pattern {
			c.FlushU64(CatMeta, a)
		}
		start := c.Now
		c.FlushU64(CatMeta, pattern[0])
		return c.Now - start
	}
	d0 := cost([]PAddr{0})                     // immediate reflush
	d3 := cost([]PAddr{0, 64, 128, 192})       // distance 3
	far := cost([]PAddr{0, 64, 128, 192, 256}) // distance 4: regular
	if !(d0 > d3 && d3 > far) {
		t.Fatalf("latency ordering violated: d0=%d d3=%d far=%d", d0, d3, far)
	}
	if d0 != ReflushBaseNS && d0 != ReflushBaseNS+XPMissNS {
		t.Fatalf("distance-0 reflush latency unexpected: %d", d0)
	}
}

func TestBeyondWindowIsRegularFlush(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	c := d.NewCtx()
	c.FlushU64(CatMeta, 0)
	for i := 1; i <= ReflushWindow; i++ {
		c.FlushU64(CatMeta, PAddr(i*64))
	}
	before := c.local.Reflushes
	c.FlushU64(CatMeta, 0) // distance == window: not a reflush
	if c.local.Reflushes != before {
		t.Fatal("flush beyond the reflush window must be regular")
	}
}

func TestSequentialVsRandomClassification(t *testing.T) {
	d := New(Config{Size: 1 << 20})
	c := d.NewCtx()
	for i := 0; i < 10; i++ {
		c.FlushU64(CatMeta, PAddr(i*64))
	}
	if c.local.SeqFlushes != 9 { // first one has no predecessor
		t.Fatalf("want 9 sequential flushes, got %d", c.local.SeqFlushes)
	}
	c2 := d.NewCtx()
	for i := 0; i < 10; i++ {
		c2.FlushU64(CatMeta, PAddr((i*7919%512)*64))
	}
	if c2.local.RandFlushes < 8 {
		t.Fatalf("scattered flushes should be random, got rand=%d seq=%d", c2.local.RandFlushes, c2.local.SeqFlushes)
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	run := func(stride int) int64 {
		d := New(Config{Size: 1 << 22})
		c := d.NewCtx()
		for i := 0; i < 1000; i++ {
			c.FlushU64(CatMeta, PAddr(i*stride))
		}
		return c.Now
	}
	if seq, rnd := run(64), run(64*37); seq >= rnd {
		t.Fatalf("sequential flushes must be cheaper: seq=%d rand=%d", seq, rnd)
	}
}

func TestCategoryAccounting(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	c := d.NewCtx()
	c.FlushU64(CatWAL, 0)
	c.FlushU64(CatMeta, 64)
	c.Charge(CatSearch, 100)
	if c.local.CatFlush[CatWAL] != 1 || c.local.CatFlush[CatMeta] != 1 {
		t.Fatal("per-category flush counts wrong")
	}
	if c.local.CatNS[CatSearch] != 100 {
		t.Fatal("charge not attributed")
	}
	c.Merge()
	s := d.Stats()
	if s.Flushes != 2 || s.CatFlush[CatWAL] != 1 {
		t.Fatalf("merge lost counters: %+v", s)
	}
	if s.MaxClockNS == 0 {
		t.Fatal("makespan not recorded")
	}
	if c.Local().Flushes != 0 {
		t.Fatal("merge must reset local stats")
	}
}

func TestCrashDiscardsUnflushedStores(t *testing.T) {
	d := New(Config{Size: 1 << 16, Strict: true})
	c := d.NewCtx()
	d.WriteU64(64, 111)
	c.PersistU64(CatMeta, 128, 222) // store+flush
	d.WriteU64(192, 333)            // never flushed
	d.Crash()
	if d.ReadU64(64) != 0 || d.ReadU64(192) != 0 {
		t.Fatal("unflushed stores survived an ADR crash")
	}
	if d.ReadU64(128) != 222 {
		t.Fatal("flushed store lost in crash")
	}
}

func TestEADRCrashKeepsEverything(t *testing.T) {
	d := New(Config{Size: 1 << 16, Strict: true, Mode: ModeEADR})
	d.WriteU64(64, 42)
	d.Crash()
	if d.ReadU64(64) != 42 {
		t.Fatal("eADR crash must keep unflushed stores")
	}
}

func TestEADRFlushIsCheap(t *testing.T) {
	adr := New(Config{Size: 1 << 16})
	eadr := New(Config{Size: 1 << 16, Mode: ModeEADR})
	ca, ce := adr.NewCtx(), eadr.NewCtx()
	for i := 0; i < 100; i++ {
		ca.FlushU64(CatMeta, 0)
		ce.FlushU64(CatMeta, 0)
	}
	if ce.Now*10 > ca.Now {
		t.Fatalf("eADR flushes should be ~free: adr=%d eadr=%d", ca.Now, ce.Now)
	}
	if ce.local.Flushes != 100 {
		t.Fatal("eADR flush calls must still be counted")
	}
}

func TestCrashAfterFlushes(t *testing.T) {
	d := New(Config{Size: 1 << 16, Strict: true})
	c := d.NewCtx()
	d.CrashAfterFlushes(2)
	c.PersistU64(CatMeta, 0, 1)
	c.PersistU64(CatMeta, 64, 2)
	c.PersistU64(CatMeta, 128, 3) // power already lost
	if !d.Crashed() {
		t.Fatal("device should report crashed")
	}
	d.Crash()
	if d.ReadU64(0) != 1 || d.ReadU64(64) != 2 {
		t.Fatal("pre-cut flushes must persist")
	}
	if d.ReadU64(128) != 0 {
		t.Fatal("post-cut flush must not persist")
	}
	// After Crash the device is usable again.
	c2 := d.NewCtx()
	c2.PersistU64(CatMeta, 128, 9)
	d.Crash()
	if d.ReadU64(128) != 9 {
		t.Fatal("device must persist normally after recovery")
	}
}

func TestSaveLoadImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "heap.img")
	d := New(Config{Size: 1 << 16, Strict: true})
	c := d.NewCtx()
	c.PersistU64(CatMeta, 4096, 77)
	if err := d.SaveImage(path); err != nil {
		t.Fatal(err)
	}
	d2 := New(Config{Size: 1 << 16, Strict: true})
	if err := d2.LoadImage(path); err != nil {
		t.Fatal(err)
	}
	if d2.ReadU64(4096) != 77 {
		t.Fatal("image roundtrip lost data")
	}
	// Size mismatch must error.
	if err := os.WriteFile(path, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d2.LoadImage(path); err == nil {
		t.Fatal("want error on size mismatch")
	}
}

func TestFlushTrace(t *testing.T) {
	d := New(Config{Size: 1 << 16, TraceFlushes: 3})
	c := d.NewCtx()
	for i := 0; i < 5; i++ {
		c.FlushU64(CatMeta, PAddr(i*64))
	}
	tr := d.FlushTrace()
	if len(tr) != 3 {
		t.Fatalf("trace capped at 3, got %d", len(tr))
	}
	if tr[1].Seq != 1 || tr[1].Addr != 64 || tr[1].Cat != CatMeta {
		t.Fatalf("trace record wrong: %+v", tr[1])
	}
}

func TestResourceSerializesVirtualTime(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	var r Resource
	a, b := d.NewCtx(), d.NewCtx()
	r.Acquire(a)
	a.Charge(CatOther, 1000)
	r.Release(a)
	r.Acquire(b) // b must be dragged to a's release time
	if b.Now != 1000 {
		t.Fatalf("resource clock not propagated: %d", b.Now)
	}
	if b.local.LockWaitNS != 1000 {
		t.Fatalf("lock wait not accounted: %d", b.local.LockWaitNS)
	}
	r.Release(b)
}

func TestBankQueueingLimitsParallelism(t *testing.T) {
	// A bank serves BankServiceNS of media work per flush; two workers
	// hammering one line are latency-bound (reflushes), not bandwidth
	// bound, so they must NOT serialize...
	d := New(Config{Size: 1 << 20})
	a, b := d.NewCtx(), d.NewCtx()
	for i := 0; i < 100; i++ {
		a.FlushU64(CatMeta, 0)
		b.FlushU64(CatMeta, 0)
	}
	solo := func() int64 {
		dd := New(Config{Size: 1 << 20})
		c := dd.NewCtx()
		for i := 0; i < 100; i++ {
			c.FlushU64(CatMeta, 0)
		}
		return c.Now
	}()
	if a.Now > 2*solo {
		t.Fatalf("latency-bound workers over-serialized: a=%d solo=%d", a.Now, solo)
	}
	// ...but 24 workers all flushing lines of the same bank exceed its
	// service bandwidth and must queue.
	d2 := New(Config{Size: 1 << 20, Banks: 1})
	var worst int64
	for w := 0; w < 24; w++ {
		c := d2.NewCtx()
		for i := 0; i < 100; i++ {
			c.FlushU64(CatMeta, PAddr((i%8)*64)) // distinct lines, one bank
		}
		if c.Now > worst {
			worst = c.Now
		}
		if c.Local().BankWaitNS > 0 && w > 8 {
			// queueing observed; good
		}
	}
	if worst <= solo {
		t.Fatalf("bandwidth saturation invisible: worst=%d solo=%d", worst, solo)
	}
}

func TestStatsReset(t *testing.T) {
	d := New(Config{Size: 1 << 16, TraceFlushes: 8})
	c := d.NewCtx()
	c.FlushU64(CatMeta, 0)
	c.Merge()
	d.ResetStats()
	if s := d.Stats(); s.Flushes != 0 || len(d.FlushTrace()) != 0 {
		t.Fatal("reset did not clear stats/trace")
	}
}

func TestReflushRatio(t *testing.T) {
	s := Stats{Flushes: 10, Reflushes: 4}
	if s.ReflushRatio() != 0.4 {
		t.Fatal("ratio wrong")
	}
	var z Stats
	if z.ReflushRatio() != 0 {
		t.Fatal("empty ratio must be 0")
	}
}

func TestModeString(t *testing.T) {
	if ModeADR.String() != "ADR" || ModeEADR.String() != "eADR" {
		t.Fatal("mode strings")
	}
	if CatMeta.String() != "FlushMeta" || CatWAL.String() != "FlushWAL" ||
		CatSearch.String() != "Search" || CatOther.String() != "Other" {
		t.Fatal("category strings")
	}
}

func TestStrictConcurrentLineNeighbors(t *testing.T) {
	// Two workers hammer adjacent words of the same cache line (and the
	// line straddle at a 64 B boundary) with interleaved flushes. The
	// device's span locking must keep this free of data races (run under
	// -race) and no store may be lost.
	dev := New(Config{Size: 1 << 20, Strict: true})
	const base = PAddr(4096)
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dev.NewCtx()
			// Worker w owns word base+8*w; workers 2,3 straddle the
			// 64 B boundary region at base+56.
			addr := base + PAddr(8*w)
			if w >= 2 {
				addr = base + 56 + PAddr(8*(w-2))
			}
			for i := 1; i <= iters; i++ {
				dev.WriteU64(addr, uint64(w)<<32|uint64(i))
				c.Flush(CatMeta, addr, 8)
				if i%64 == 0 {
					c.Fence()
				}
				if got := dev.ReadU64(addr); got != uint64(w)<<32|uint64(i) {
					t.Errorf("worker %d: read back %#x at iter %d", w, got, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		addr := base + PAddr(8*w)
		if w >= 2 {
			addr = base + 56 + PAddr(8*(w-2))
		}
		if got := dev.ReadU64(addr); got != uint64(w)<<32|iters {
			t.Fatalf("worker %d: final value %#x, want %#x", w, got, uint64(w)<<32|iters)
		}
	}
}
