//go:build unix

package pmem

import (
	"os"
	"syscall"
)

// mapFile creates (or truncates) path at size bytes and maps it shared
// read-write, returning the mapping and an unmap-and-close function. The
// stdlib syscall mmap is used directly so the repository stays free of
// external dependencies.
func mapFile(path string, size uint64) ([]byte, func() error, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, nil, err
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	unmap := func() error {
		err := syscall.Munmap(mem)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return mem, unmap, nil
}
