package pmem

// Dev is the device abstraction the allocators run on. Two implementations
// exist:
//
//   - *Device, the simulated DIMM: virtual-time flush latencies, strict-mode
//     media shadowing, crash injection and flush journaling. Every experiment
//     table and the crash-point model checker run on it.
//   - *Direct, the real-concurrency device: plain memory (anonymous or an
//     mmap'd file), no per-line simulation locks, and flushes reduced to
//     no-op instrumentation counters. Hot paths run at wall-clock speed under
//     real goroutines.
//
// The interface is deliberately exactly the surface the allocator layers
// (core, baseline, slab, walog, blog, extent) use; the simulation-only
// features (Crash, SaveImage, FlushTrace, fault plans) stay on the concrete
// *Device so a glance at a signature tells whether code can be reached from
// real mode.
//
// Dev is sealed (mergeStats is unexported): only this package's devices can
// implement it, which lets Ctx assume one of the two concrete types on its
// fast paths.
type Dev interface {
	// Size returns the device capacity in bytes.
	Size() uint64
	// Mode returns the persistence mode (ADR or eADR).
	Mode() Mode
	// EADR reports whether the persistence domain includes the caches.
	EADR() bool
	// Strict reports whether crash simulation (shadow media image) is on.
	Strict() bool
	// Direct reports whether this is the real-concurrency device (flushes
	// are instrumentation-only; no crash-consistency simulation).
	Direct() bool

	// Mem returns the concrete image view hot paths hold by value to
	// avoid interface dispatch on every typed access.
	Mem() Mem

	// Bytes returns a mutable view of [addr, addr+n); see Device.Bytes for
	// the flushing and synchronization contract.
	Bytes(addr PAddr, n int) []byte
	ReadU64(addr PAddr) uint64
	WriteU64(addr PAddr, v uint64)
	ReadU32(addr PAddr) uint32
	WriteU32(addr PAddr, v uint32)
	ReadU16(addr PAddr) uint16
	WriteU16(addr PAddr, v uint16)
	ReadU8(addr PAddr) byte
	WriteU8(addr PAddr, v byte)
	// Write copies p into the device at addr.
	Write(addr PAddr, p []byte)
	// Read copies n bytes at addr into a fresh slice.
	Read(addr PAddr, n int) []byte
	// Zero clears [addr, addr+n).
	Zero(addr PAddr, n int)

	// NewCtx creates a worker context bound to this device.
	NewCtx() *Ctx
	// Stats returns a snapshot of the merged device statistics.
	Stats() Stats
	// ResetStats clears merged statistics.
	ResetStats()

	// mergeStats folds a finishing worker's local counters into the device
	// totals (Ctx.Merge). Unexported: it seals the interface.
	mergeStats(local *Stats, flushIssued uint64, now int64)
}

// Direct reports that *Device is the simulated implementation.
func (d *Device) Direct() bool { return false }

func (d *Device) mergeStats(local *Stats, flushIssued uint64, now int64) {
	d.statsMu.Lock()
	d.stats.add(local)
	d.flushTotal += flushIssued
	if now > d.stats.MaxClockNS {
		d.stats.MaxClockNS = now
	}
	d.statsMu.Unlock()
}

var (
	_ Dev = (*Device)(nil)
	_ Dev = (*DirectDev)(nil)
)
