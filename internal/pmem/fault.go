package pmem

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// ErrCorrupted is the sentinel wrapped by every CorruptError, so callers
// can match any detected-corruption failure with errors.Is.
var ErrCorrupted = errors.New("pmem: corrupted metadata")

// CorruptError reports detected (not silently consumed) metadata
// corruption: a checksum mismatch, an out-of-range pointer, an impossible
// field value. Region names the structure ("superblock", "slab", "blog",
// "wal", "extent"), Addr locates it on the device.
type CorruptError struct {
	Region string
	Addr   PAddr
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("pmem: corrupted %s at %#x: %s", e.Region, e.Addr, e.Detail)
}

// Unwrap makes errors.Is(err, ErrCorrupted) hold for every CorruptError.
func (e *CorruptError) Unwrap() error { return ErrCorrupted }

// Corrupt builds a CorruptError.
func Corrupt(region string, addr PAddr, format string, args ...any) error {
	return &CorruptError{Region: region, Addr: addr, Detail: fmt.Sprintf(format, args...)}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SealU64 packs a 48-bit value with a 16-bit CRC (Castagnoli, over the six
// value bytes) into one 8-byte word, so a single-word atomic store carries
// its own corruption check. Zero seals to zero: freshly zeroed persistent
// memory must unseal as a valid zero.
func SealU64(v uint64) uint64 {
	if v>>48 != 0 {
		panic(fmt.Sprintf("pmem: SealU64 value %#x exceeds 48 bits", v))
	}
	if v == 0 {
		return 0
	}
	var b [6]byte
	for i := 0; i < 6; i++ {
		b[i] = byte(v >> (8 * i))
	}
	crc := uint64(crc32.Checksum(b[:], castagnoli) & 0xFFFF)
	return v | crc<<48
}

// UnsealU64 validates and unpacks a word written by SealU64. ok is false
// when the embedded CRC does not match (the word was torn or flipped).
func UnsealU64(w uint64) (v uint64, ok bool) {
	if w == 0 {
		return 0, true
	}
	v = w & (1<<48 - 1)
	return v, SealU64(v) == w
}

// SealU32 packs a 16-bit value with a 16-bit CRC into one 4-byte word:
// the 32-bit sibling of SealU64, for single-word atomic state flags
// (e.g. the slab morph flag) that live in u32 header fields. Zero seals
// to zero so freshly zeroed memory unseals as a valid zero.
func SealU32(v uint32) uint32 {
	if v>>16 != 0 {
		panic(fmt.Sprintf("pmem: SealU32 value %#x exceeds 16 bits", v))
	}
	if v == 0 {
		return 0
	}
	b := [2]byte{byte(v), byte(v >> 8)}
	return v | crc32.Checksum(b[:], castagnoli)&0xFFFF<<16
}

// UnsealU32 validates and unpacks a word written by SealU32. ok is false
// when the embedded CRC does not match (the word was torn or flipped).
func UnsealU32(w uint32) (v uint32, ok bool) {
	if w == 0 {
		return 0, true
	}
	v = w & 0xFFFF
	return v, SealU32(v) == w
}

// CatAny matches every flush category in a FaultPlan.
const CatAny Category = -1

// Range is a half-open device address interval [Start, End).
type Range struct {
	Start, End PAddr
}

func (r Range) contains(addr PAddr) bool { return addr >= r.Start && addr < r.End }

// FaultPlan programs deterministic fault injection. CrashAfter counts
// flushes of Category (CatAny = all): that many persist normally, then the
// next one triggers the crash. If TornLine is set the triggering flush
// persists only a seeded subset of its line's eight 8-byte words (8-byte
// stores are atomic; the line is not). Flips > 0 additionally flips that
// many seeded bits in nonzero persisted lines inside FlipIn (whole device
// when empty) at Crash time, modelling media corruption.
type FaultPlan struct {
	CrashAfter int64
	Category   Category
	TornLine   bool
	Seed       uint64
	Flips      int
	FlipIn     []Range
}

type faultState struct {
	plan      FaultPlan
	remaining atomic.Int64
}

// InjectFaults arms plan on the device (replacing any armed plan; nil
// disarms). The plan triggers at most once and is cleared by Crash.
func (d *Device) InjectFaults(plan *FaultPlan) {
	if plan == nil {
		d.fault.Store(nil)
		d.armFlushGate()
		return
	}
	fs := &faultState{plan: *plan}
	fs.remaining.Store(plan.CrashAfter)
	d.fault.Store(fs)
	d.armFlushGate()
}

// splitmix64 is the usual 64-bit mixer; good enough for deterministic
// fault-site selection and cheap to reseed per line.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// tearLine persists a seeded subset of the line's eight 8-byte words from
// the cache image to the media image (strict ADR only): the torn state a
// power cut leaves when a 64-byte line was mid-flight.
func (d *Device) tearLine(line, seed uint64) {
	if !d.strict || d.mode == ModeEADR {
		return
	}
	rng := splitmix64(seed ^ line*0xA24BAED4963EE407)
	mask := rng.next() // bit i set => word i persists
	off := line * LineSize
	mu := d.lineLock(line)
	mu.Lock()
	for w := uint64(0); w < LineSize/8; w++ {
		if mask&(1<<w) != 0 {
			copy(d.media[off+w*8:off+w*8+8], d.mem[off+w*8:off+w*8+8])
		}
	}
	mu.Unlock()
}

// applyFlips flips plan.Flips seeded bits in nonzero persisted lines
// within plan.FlipIn. Called from Crash before the media image becomes
// the visible one.
func (d *Device) applyFlips(fs *faultState) {
	p := &fs.plan
	if p.Flips <= 0 {
		return
	}
	ranges := p.FlipIn
	if len(ranges) == 0 {
		ranges = []Range{{0, PAddr(d.size)}}
	}
	// Candidate lines: persisted (nonzero) lines intersecting a range.
	var cand []uint64
	for _, r := range ranges {
		first := uint64(r.Start) / LineSize
		last := (uint64(r.End) + LineSize - 1) / LineSize
		if last > d.size/LineSize {
			last = d.size / LineSize
		}
		for line := first; line < last; line++ {
			off := line * LineSize
			zero := true
			for _, b := range d.media[off : off+LineSize] {
				if b != 0 {
					zero = false
					break
				}
			}
			if !zero {
				cand = append(cand, line)
			}
		}
	}
	if len(cand) == 0 {
		return
	}
	rng := splitmix64(p.Seed ^ 0xD1B54A32D192ED03)
	for i := 0; i < p.Flips; i++ {
		line := cand[rng.next()%uint64(len(cand))]
		bit := rng.next() % (LineSize * 8)
		d.media[line*LineSize+bit/8] ^= 1 << (bit % 8)
	}
}

// Clone returns an independent copy of the device (images and
// configuration; statistics and armed faults are not carried over). Used
// for read-only consistency checks against a live image.
func (d *Device) Clone() *Device {
	nd := New(Config{Size: d.size, Mode: d.mode, Strict: d.strict, Banks: len(d.banks)})
	copy(nd.mem, d.mem)
	if d.strict {
		copy(nd.media, d.media)
	}
	return nd
}
