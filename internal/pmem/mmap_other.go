//go:build !unix

package pmem

import "errors"

// mapFile is unavailable off unix; file-backed direct devices need mmap.
// Anonymous direct devices (DirectConfig.Path == "") work everywhere.
func mapFile(path string, size uint64) ([]byte, func() error, error) {
	return nil, nil, errors.New("file-backed direct device requires a unix platform")
}
