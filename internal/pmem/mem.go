package pmem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Mem is a concrete view of a device's byte image: the cache-image slice
// plus the strict-mode line-lock stripes (nil on non-strict and direct
// devices). It exists for the allocator hot paths — slab bitmaps, WAL
// slots, bookkeeping-log entries run typed accessors on every malloc and
// free, and calling them through the Dev interface costs an indirect call
// per access. A Mem is copyable and cheap to hold by value; all copies
// alias the same storage, and the view stays valid across simulated
// crashes (Crash and LoadImage copy into the backing array in place).
//
// The accessor semantics are identical to the device's: stores take the
// covering line-lock stripes when present, so strict-mode flushes observe
// consistent lines; Bytes bypasses the stripes (see Device.Bytes).
type Mem struct {
	data []byte
	// lineLocks stripe-locks cache lines (strict simulated devices only).
	lineLocks []sync.Mutex
}

// Mem returns the device's concrete image view.
func (d *Device) Mem() Mem { return Mem{data: d.mem, lineLocks: d.lineLocks} }

// Mem returns the device's concrete image view.
func (d *DirectDev) Mem() Mem { return Mem{data: d.mem} }

func (m Mem) check(addr PAddr, n int) {
	if uint64(addr)+uint64(n) > uint64(len(m.data)) {
		panic(fmt.Sprintf("pmem: access [%#x,+%d) out of device bounds %#x", addr, n, len(m.data)))
	}
}

// Size returns the viewed image's size in bytes.
func (m Mem) Size() uint64 { return uint64(len(m.data)) }

// lineLock returns the stripe lock covering line (strict mode only).
func (m Mem) lineLock(line uint64) *sync.Mutex {
	return &m.lineLocks[line%uint64(len(m.lineLocks))]
}

// lockSpan locks the one or two line stripes covering a small write
// [addr, addr+n), in stripe order so concurrent spanning writes cannot
// deadlock, and returns an unlock function. Callers have already checked
// m.lineLocks != nil.
func (m Mem) lockSpan(addr PAddr, n int) func() {
	s := uint64(len(m.lineLocks))
	f := (uint64(addr) / LineSize) % s
	l := ((uint64(addr) + uint64(n) - 1) / LineSize) % s
	if f == l {
		mu := &m.lineLocks[f]
		mu.Lock()
		return mu.Unlock
	}
	if f > l {
		f, l = l, f
	}
	a, b := &m.lineLocks[f], &m.lineLocks[l]
	a.Lock()
	b.Lock()
	return func() { b.Unlock(); a.Unlock() }
}

// Bytes returns a mutable view of [addr, addr+n); the caller is
// responsible for flushing stores done through it.
func (m Mem) Bytes(addr PAddr, n int) []byte {
	m.check(addr, n)
	return m.data[addr : uint64(addr)+uint64(n) : uint64(addr)+uint64(n)]
}

// ReadU64 loads a little-endian uint64.
func (m Mem) ReadU64(addr PAddr) uint64 {
	m.check(addr, 8)
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// WriteU64 stores a little-endian uint64.
func (m Mem) WriteU64(addr PAddr, v uint64) {
	m.check(addr, 8)
	if m.lineLocks != nil {
		defer m.lockSpan(addr, 8)()
	}
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// ReadU32 loads a little-endian uint32.
func (m Mem) ReadU32(addr PAddr) uint32 {
	m.check(addr, 4)
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// WriteU32 stores a little-endian uint32.
func (m Mem) WriteU32(addr PAddr, v uint32) {
	m.check(addr, 4)
	if m.lineLocks != nil {
		defer m.lockSpan(addr, 4)()
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// ReadU16 loads a little-endian uint16.
func (m Mem) ReadU16(addr PAddr) uint16 {
	m.check(addr, 2)
	return binary.LittleEndian.Uint16(m.data[addr:])
}

// WriteU16 stores a little-endian uint16.
func (m Mem) WriteU16(addr PAddr, v uint16) {
	m.check(addr, 2)
	if m.lineLocks != nil {
		defer m.lockSpan(addr, 2)()
	}
	binary.LittleEndian.PutUint16(m.data[addr:], v)
}

// ReadU8 loads one byte.
func (m Mem) ReadU8(addr PAddr) byte {
	m.check(addr, 1)
	return m.data[addr]
}

// WriteU8 stores one byte.
func (m Mem) WriteU8(addr PAddr, v byte) {
	m.check(addr, 1)
	if m.lineLocks != nil {
		mu := m.lineLock(uint64(addr) / LineSize)
		mu.Lock()
		m.data[addr] = v
		mu.Unlock()
		return
	}
	m.data[addr] = v
}

// Write copies p into the image at addr.
func (m Mem) Write(addr PAddr, p []byte) {
	m.check(addr, len(p))
	if m.lineLocks != nil && len(p) > 0 {
		// Chunk the copy one line at a time so at most one stripe is held
		// and arbitrary spans cannot deadlock against each other.
		for off := 0; off < len(p); {
			line := (uint64(addr) + uint64(off)) / LineSize
			chunk := int((line+1)*LineSize - (uint64(addr) + uint64(off)))
			if chunk > len(p)-off {
				chunk = len(p) - off
			}
			mu := m.lineLock(line)
			mu.Lock()
			copy(m.data[uint64(addr)+uint64(off):], p[off:off+chunk])
			mu.Unlock()
			off += chunk
		}
		return
	}
	copy(m.data[addr:], p)
}

// Read copies n bytes at addr into a fresh slice.
func (m Mem) Read(addr PAddr, n int) []byte {
	m.check(addr, n)
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out
}

// Zero clears [addr, addr+n).
func (m Mem) Zero(addr PAddr, n int) {
	m.check(addr, n)
	if m.lineLocks != nil && n > 0 {
		for off := 0; off < n; {
			line := (uint64(addr) + uint64(off)) / LineSize
			chunk := int((line+1)*LineSize - (uint64(addr) + uint64(off)))
			if chunk > n-off {
				chunk = n - off
			}
			mu := m.lineLock(line)
			mu.Lock()
			b := m.data[uint64(addr)+uint64(off) : uint64(addr)+uint64(off)+uint64(chunk)]
			for i := range b {
				b[i] = 0
			}
			mu.Unlock()
			off += chunk
		}
		return
	}
	b := m.data[addr : uint64(addr)+uint64(n)]
	for i := range b {
		b[i] = 0
	}
}
