package pmem

import (
	"bytes"
	"testing"
)

// journalWorkload runs a deterministic flush pattern that revisits lines
// (so checkpoint folds overwrite earlier deltas) and returns the device.
func journalWorkload(cfg Config) *Device {
	d := New(cfg)
	c := d.NewCtx()
	for i := 0; i < 400; i++ {
		addr := PAddr(64 * uint64(1+i%37))
		c.PersistU64(CatMeta, addr, uint64(i)<<8|0xA5)
	}
	return d
}

func TestJournalCheckpointingByteIdentical(t *testing.T) {
	base := Config{Size: 1 << 16, Strict: true, Journal: true}
	full := journalWorkload(base)

	ck := base
	ck.JournalCheckpointEvery = 64
	capped := journalWorkload(ck)

	if got, want := capped.JournalLen(), full.JournalLen(); got != want {
		t.Fatalf("journal length diverged: checkpointed %d, full %d", got, want)
	}
	if capped.JournalBase() == 0 {
		t.Fatal("workload too short: checkpointing never folded")
	}
	if retained := len(capped.JournalSnapshot()); retained >= 2*64 {
		t.Fatalf("checkpointing retained %d deltas, want < %d", retained, 2*64)
	}

	// Every boundary the capped journal can still reach must reconstruct
	// byte-identically to the unbounded journal.
	fullCur := NewImageCursor(full.Size(), full.JournalSnapshot())
	cappedCur := NewImageCursorAt(capped.JournalBase(), capped.JournalCheckpoint(), capped.JournalSnapshot())
	for k := cappedCur.Boundary(); k <= cappedCur.Boundaries(); k++ {
		fullCur.Advance(k)
		cappedCur.Advance(k)
		if !bytes.Equal(fullCur.Image(), cappedCur.Image()) {
			t.Fatalf("boundary %d: checkpointed image differs from full journal", k)
		}
	}
	// And the final boundary must equal the live media image.
	scratch := New(base)
	cappedCur.MaterializeInto(scratch)
	if !bytes.Equal(scratch.media, capped.media) {
		t.Fatal("final checkpointed boundary differs from live media image")
	}
}

func TestJournalCheckpointTornVariantsMatch(t *testing.T) {
	base := Config{Size: 1 << 16, Strict: true, Journal: true}
	full := journalWorkload(base)
	ck := base
	ck.JournalCheckpointEvery = 50
	capped := journalWorkload(ck)

	sFull := New(base)
	sCapped := New(base)
	fullCur := NewImageCursor(full.Size(), full.JournalSnapshot())
	cappedCur := NewImageCursorAt(capped.JournalBase(), capped.JournalCheckpoint(), capped.JournalSnapshot())
	for k := cappedCur.Boundary(); k < cappedCur.Boundaries(); k += 7 {
		fullCur.Advance(k)
		cappedCur.Advance(k)
		if !fullCur.MaterializeTornInto(sFull, 0xBEEF) || !cappedCur.MaterializeTornInto(sCapped, 0xBEEF) {
			t.Fatalf("boundary %d: torn materialization unexpectedly at end", k)
		}
		if !bytes.Equal(sFull.media, sCapped.media) {
			t.Fatalf("boundary %d: torn images diverge between full and checkpointed journals", k)
		}
	}
}
