package pmem

// Stats aggregates flush and timing counters. Each Ctx accumulates a local
// Stats and folds it into the device with Merge.
type Stats struct {
	// Flushes is the number of line flushes that reached the device
	// (including eADR no-op flushes, which are still counted so flush-call
	// ratios remain comparable across modes).
	Flushes uint64
	// Reflushes is the subset of flushes whose reflush distance was below
	// ReflushWindow.
	Reflushes uint64
	// SeqFlushes and RandFlushes partition the regular (non-re-) flushes
	// by access pattern.
	SeqFlushes  uint64
	RandFlushes uint64
	// Fences counts store fences.
	Fences uint64

	// CatNS is virtual time charged per category.
	CatNS [NumCategories]int64
	// CatFlush is flush count per category.
	CatFlush [NumCategories]uint64

	// LockWaitNS is time the worker's clock was dragged forward by
	// Resource acquisition (virtual lock contention).
	LockWaitNS int64
	// BankWaitNS is time spent queueing on media banks.
	BankWaitNS int64

	// MaxClockNS is the maximum worker clock merged so far; for a
	// multi-threaded run it is the run's virtual makespan.
	MaxClockNS int64
}

func (s *Stats) add(o *Stats) {
	s.Flushes += o.Flushes
	s.Reflushes += o.Reflushes
	s.SeqFlushes += o.SeqFlushes
	s.RandFlushes += o.RandFlushes
	s.Fences += o.Fences
	for i := range s.CatNS {
		s.CatNS[i] += o.CatNS[i]
	}
	for i := range s.CatFlush {
		s.CatFlush[i] += o.CatFlush[i]
	}
	s.LockWaitNS += o.LockWaitNS
	s.BankWaitNS += o.BankWaitNS
}

// TotalNS is the summed per-category virtual time (work, not makespan).
func (s *Stats) TotalNS() int64 {
	var t int64
	for _, v := range s.CatNS {
		t += v
	}
	return t
}

// ReflushRatio is the fraction of flushes that were reflushes.
func (s *Stats) ReflushRatio() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Reflushes) / float64(s.Flushes)
}

// Stats returns a snapshot of the merged device statistics.
func (d *Device) Stats() Stats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

// ResetStats clears merged statistics (trace included).
func (d *Device) ResetStats() {
	d.statsMu.Lock()
	d.stats = Stats{}
	d.statsMu.Unlock()
	d.traceMu.Lock()
	d.trace = nil
	d.traceMu.Unlock()
}
