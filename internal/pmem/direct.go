package pmem

import (
	"fmt"
	"sync"
)

// DirectDev is the real-concurrency device: the heap region is plain
// memory — anonymous by default, or an mmap'd file when DirectConfig.Path
// is set — accessed at wall-clock speed. There is no virtual-time model,
// no shadow media image and no per-line simulation locking: goroutines
// synchronize exactly where the allocators already synchronize (arena
// resources, slab mutexes, atomics), so real contention is measured, not
// modelled. Flushes and fences degrade to per-worker instrumentation
// counters, which keeps flush-call ratios comparable with simulated runs
// at (almost) zero cost.
//
// DirectDev makes no crash-consistency claims: without the strict media
// image and the flush journal there is no persistence boundary to cut, so
// Crash/recovery experiments stay on *Device (crashmc is unaffected by
// this mode).
type DirectDev struct {
	size uint64
	mem  []byte

	// unmap releases a file mapping on Close (nil for anonymous memory).
	unmap func() error

	statsMu    sync.Mutex
	stats      Stats
	flushTotal uint64
}

// DirectConfig configures a DirectDev.
type DirectConfig struct {
	// Size is the device capacity in bytes. Rounded up to a 4 KiB multiple.
	Size uint64
	// Path, when non-empty, backs the device with an mmap'd file of Size
	// bytes (created or truncated), emulating a DAX heap file. Empty uses
	// anonymous memory.
	Path string
}

// NewDirect creates a real-concurrency device.
func NewDirect(cfg DirectConfig) (*DirectDev, error) {
	if cfg.Size == 0 {
		cfg.Size = 64 << 20
	}
	cfg.Size = (cfg.Size + 4095) &^ 4095
	d := &DirectDev{size: cfg.Size}
	if cfg.Path == "" {
		d.mem = make([]byte, cfg.Size)
		return d, nil
	}
	mem, unmap, err := mapFile(cfg.Path, cfg.Size)
	if err != nil {
		return nil, fmt.Errorf("pmem: direct device on %s: %w", cfg.Path, err)
	}
	d.mem = mem
	d.unmap = unmap
	return d, nil
}

// Close releases a file mapping. Anonymous devices need no Close.
func (d *DirectDev) Close() error {
	if d.unmap == nil {
		return nil
	}
	u := d.unmap
	d.unmap = nil
	d.mem = nil
	return u()
}

// Size returns the device capacity in bytes.
func (d *DirectDev) Size() uint64 { return d.size }

// Mode returns ModeADR: real mode keeps the ADR layout decisions
// (interleaved mappings stay enabled) even though flushes are no-ops.
func (d *DirectDev) Mode() Mode { return ModeADR }

// EADR reports false; see Mode.
func (d *DirectDev) EADR() bool { return false }

// Strict reports false: there is no shadow media image.
func (d *DirectDev) Strict() bool { return false }

// Direct reports that this is the real-concurrency device.
func (d *DirectDev) Direct() bool { return true }

// The accessors delegate to the Mem view (the canonical bounds-check
// logic); with no line locks every call reduces to a checked slice access.

// Bytes returns a mutable view of [addr, addr+n).
func (d *DirectDev) Bytes(addr PAddr, n int) []byte { return d.Mem().Bytes(addr, n) }

// ReadU64 loads a little-endian uint64.
func (d *DirectDev) ReadU64(addr PAddr) uint64 { return d.Mem().ReadU64(addr) }

// WriteU64 stores a little-endian uint64.
func (d *DirectDev) WriteU64(addr PAddr, v uint64) { d.Mem().WriteU64(addr, v) }

// ReadU32 loads a little-endian uint32.
func (d *DirectDev) ReadU32(addr PAddr) uint32 { return d.Mem().ReadU32(addr) }

// WriteU32 stores a little-endian uint32.
func (d *DirectDev) WriteU32(addr PAddr, v uint32) { d.Mem().WriteU32(addr, v) }

// ReadU16 loads a little-endian uint16.
func (d *DirectDev) ReadU16(addr PAddr) uint16 { return d.Mem().ReadU16(addr) }

// WriteU16 stores a little-endian uint16.
func (d *DirectDev) WriteU16(addr PAddr, v uint16) { d.Mem().WriteU16(addr, v) }

// ReadU8 loads one byte.
func (d *DirectDev) ReadU8(addr PAddr) byte { return d.Mem().ReadU8(addr) }

// WriteU8 stores one byte.
func (d *DirectDev) WriteU8(addr PAddr, v byte) { d.Mem().WriteU8(addr, v) }

// Write copies p into the device at addr.
func (d *DirectDev) Write(addr PAddr, p []byte) { d.Mem().Write(addr, p) }

// Read copies n bytes at addr into a fresh slice.
func (d *DirectDev) Read(addr PAddr, n int) []byte { return d.Mem().Read(addr, n) }

// Zero clears [addr, addr+n).
func (d *DirectDev) Zero(addr PAddr, n int) { d.Mem().Zero(addr, n) }

// NewCtx creates a worker context for the device. Direct contexts count
// flushes and fences but never advance virtual time or touch bank or
// line-lock state.
func (d *DirectDev) NewCtx() *Ctx {
	return &Ctx{dev: d, direct: true, mem: d.Mem()}
}

// Stats returns a snapshot of the merged device statistics. In direct
// mode only the operation counters (Flushes, Fences, CatFlush) are
// meaningful; the virtual-time fields stay zero.
func (d *DirectDev) Stats() Stats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

// ResetStats clears merged statistics.
func (d *DirectDev) ResetStats() {
	d.statsMu.Lock()
	d.stats = Stats{}
	d.statsMu.Unlock()
}

// FlushTotal returns the number of flush calls issued by merged contexts.
func (d *DirectDev) FlushTotal() uint64 {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.flushTotal
}

func (d *DirectDev) mergeStats(local *Stats, flushIssued uint64, now int64) {
	d.statsMu.Lock()
	d.stats.add(local)
	d.flushTotal += flushIssued
	if now > d.stats.MaxClockNS {
		d.stats.MaxClockNS = now
	}
	d.statsMu.Unlock()
}
