package crashmc

import (
	"testing"

	"nvalloc/internal/core"
)

// TestFenceElisionFamilyLOG enumerates every persistence boundary of the
// fence-elision trace on the LOG variant — the only variant whose hot
// paths merge the WAL-entry fence with the bitmap-commit fence — with
// torn variants of each in-flight line. Beyond the oracle (which proves
// no elision window can lose an acknowledged op or resurrect a freed
// one), it asserts the enumeration actually landed inside the windows
// the family exists for: both the wal-entry and bitmap-stripe line
// classes must be explored clean AND torn. A refactor that reordered the
// flushes, or a trace regression that stopped reaching the batched
// drain, would trip these assertions even while the oracle stays green.
func TestFenceElisionFamilyLOG(t *testing.T) {
	rec, err := Record(Target("NVAlloc-LOG", core.LOG), FenceElisionTrace(7), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Torn: true, TornSeed: 0xDECAF, CheckEvery: 64}
	if testing.Short() {
		cfg.MaxBoundaries = 150
		cfg.CheckEvery = 16
	}
	rep := Verify(rec, cfg)
	t.Logf("%s", rep)
	checkReport(t, rec, rep, 7, cfg.TornSeed)
	if !testing.Short() && rep.Explored != rep.Boundaries {
		t.Errorf("coverage %d/%d, want exhaustive", rep.Explored, rep.Boundaries)
	}
	for _, class := range []string{"wal-entry", "bitmap-stripe"} {
		if rep.Classes[class] == 0 {
			t.Errorf("no clean boundary with a %s line in flight: the trace no longer drives the elided-fence window", class)
		}
		if rep.TornClasses[class] == 0 {
			t.Errorf("no torn variant of an in-flight %s line verified", class)
		}
	}
}

// TestFenceElisionTraceShape pins the structural properties the family's
// coverage argument rests on: a cross-arena burst long enough to trip
// the automatic remote drain (> 16 buffered frees) plus an explicit
// flush for the remainder, and enough same-thread frees to overflow a
// tcache into the magazine path.
func TestFenceElisionTraceShape(t *testing.T) {
	tr := FenceElisionTrace(7)
	if tr.Threads != 2 {
		t.Fatalf("threads = %d, want 2 (cross-arena frees need a second handle)", tr.Threads)
	}
	crossFrees, flushes, frees := 0, 0, 0
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpFree:
			frees++
			if op.Thread == 1 && tr.Ops[op.Ref].Thread == 0 {
				crossFrees++
			}
		case OpFlush:
			flushes++
		}
	}
	if crossFrees <= 16 {
		t.Errorf("cross-arena frees = %d, want > 16 to trip the automatic batch drain", crossFrees)
	}
	if flushes == 0 {
		t.Error("no explicit flush: the trailing drain window is never opened")
	}
	if frees-crossFrees < 12 {
		t.Errorf("same-thread frees = %d, want >= 12 to exercise merged-fence frees and tcache overflow", frees-crossFrees)
	}
}
