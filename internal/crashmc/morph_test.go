package crashmc

import (
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
)

// morphTrace rebuilds the retired core morph-crash scenario as a trace:
// fill one arena's small class, free everything but a sparse published
// survivor set so the slabs drop under the SU occupancy threshold, then
// allocate a different class until a slab morphs. The §5.2 flag-protocol
// steps all land inside one trigger op's flush window.
func morphTrace() Trace {
	tr := Trace{Name: "morph", Threads: 1}
	slot := 0
	var anon []int
	for i := 0; i < 3000; i++ {
		if i%64 == 0 {
			tr.Ops = append(tr.Ops, Op{Kind: OpMallocTo, Slot: slot, Size: 100})
			slot++
		} else {
			anon = append(anon, len(tr.Ops))
			tr.Ops = append(tr.Ops, Op{Kind: OpMalloc, Size: 100})
		}
	}
	for _, ref := range anon {
		tr.Ops = append(tr.Ops, Op{Kind: OpFree, Ref: ref})
	}
	for i := 0; i < 2000; i++ {
		tr.Ops = append(tr.Ops, Op{Kind: OpMalloc, Size: 1000})
	}
	return tr
}

// TestMorphCrashSweep ports the retired core morph sweep: locate the
// trigger op whose window contains the slab morph (via the recording's
// morph-counter probe) and verify every boundary inside it — before the
// transform, between each flag step, and just after — with torn
// variants. The published old-class survivors must recover at every cut.
func TestMorphCrashSweep(t *testing.T) {
	for _, v := range []core.Variant{core.LOG, core.GC, core.IC} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			tg := TargetOpts(v.String()+"-morph", func() core.Options {
				opts := core.DefaultOptions(v)
				opts.Arenas = 1
				opts.BlogGCThreshold = SmokeGCThreshold
				return opts
			})
			rec, err := Record(tg, morphTrace(), RecordOptions{
				Probe: func(h alloc.Heap) uint64 {
					morphs, _ := h.(*core.Heap).MorphStats()
					return morphs
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Locate the op whose window contains the first morph.
			trigger := -1
			for i, or := range rec.Ops {
				if or.Probe > 0 {
					trigger = i
					break
				}
			}
			if trigger < 0 {
				t.Skip("workload did not trigger a morph; geometry changed?")
			}
			win := rec.Ops[trigger]
			t.Logf("morph inside op %d (%s), window [%d,%d) of %d flushes",
				trigger, win.Op.Kind, win.FlushStart, win.FlushEnd, len(rec.Journal))
			cfg := Config{
				// A little margin on both sides of the morphing op.
				From: win.FlushStart - 5, To: win.FlushEnd + 5,
				Torn: true, TornSeed: 13, CheckEvery: 16,
			}
			if testing.Short() {
				cfg.MaxBoundaries = 30
			}
			rep := Verify(rec, cfg)
			t.Logf("%s", rep)
			checkReport(t, rec, rep, 0, cfg.TornSeed)
		})
	}
}
