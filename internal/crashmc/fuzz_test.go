package crashmc

import (
	"sync"
	"testing"
)

// fuzzRecordings caches one recording per trace seed so the fuzzer pays
// the (serial) record cost once and spends its budget on distinct crash
// points. Capped: a recording pins its device images.
var fuzzRecordings = struct {
	sync.Mutex
	m map[uint64]*Recording
}{m: map[uint64]*Recording{}}

func fuzzRecording(t *testing.T, traceSeed uint64) *Recording {
	fuzzRecordings.Lock()
	defer fuzzRecordings.Unlock()
	if rec, ok := fuzzRecordings.m[traceSeed]; ok {
		return rec
	}
	names := []string{"NVAlloc-LOG", "NVAlloc-GC", "NVAlloc-IC"}
	tg := targetByName(t, names[traceSeed%3])
	rec, err := Record(tg, WorkloadTrace(traceSeed, 60), RecordOptions{})
	if err != nil {
		t.Fatalf("record seed %#x: %v", traceSeed, err)
	}
	if len(fuzzRecordings.m) >= 16 {
		for k := range fuzzRecordings.m {
			delete(fuzzRecordings.m, k)
			break
		}
	}
	fuzzRecordings.m[traceSeed] = rec
	return rec
}

// FuzzCrashRecover drives (trace seed, crash index, tear seed) tuples
// through the model-checker oracle: generate a seeded workload trace,
// record it, cut it at one boundary (torn when a tear seed is given) and
// demand recovery satisfy every oracle invariant. The fuzzer hunts the
// boundary × tear-mask space that the exhaustive smoke enumeration
// samples with only one seed.
func FuzzCrashRecover(f *testing.F) {
	f.Add(uint64(42), uint32(0), uint64(0))
	f.Add(uint64(1), uint32(17), uint64(3))
	f.Add(uint64(2), uint32(99), uint64(0xDECAF))
	f.Add(uint64(7), uint32(1000), uint64(1))
	f.Add(uint64(0xBEEF), uint32(250), uint64(0x5EED))
	f.Fuzz(func(t *testing.T, traceSeed uint64, crashIdx uint32, tearSeed uint64) {
		rec := fuzzRecording(t, traceSeed)
		k := int(crashIdx) % rec.Boundaries()
		cfg := Config{From: k, To: k, ProbeAllocs: 32}
		if k == 0 {
			cfg.To = 1 // To <= 0 means "last boundary"; include k=0 via a 2-point range
		}
		if tearSeed != 0 {
			cfg.Torn = true
			cfg.TornSeed = tearSeed
		}
		rep := Verify(rec, cfg)
		if !rep.Passed() {
			path, _ := WriteRepro("", ReproFromReport(rec, rep, traceSeed, tearSeed))
			t.Fatalf("seed=%#x k=%d tear=%#x repro=%s: %s", traceSeed, k, tearSeed, path, rep)
		}
	})
}
