package crashmc

import "testing"

// checkReport asserts a single-recording report passed; on violation it
// writes a reproduction artifact (target, trace, seed, schedule key,
// boundary provenance) and fails with the artifact path, so a CI log
// line is enough to replay the exact crash image locally.
func checkReport(t *testing.T, rec *Recording, rep *Report, seed, tornSeed uint64) {
	t.Helper()
	if rep.Passed() {
		return
	}
	path, err := WriteRepro("", ReproFromReport(rec, rep, seed, tornSeed))
	if err != nil {
		t.Errorf("%d oracle violations (repro write failed: %v)\n%s", rep.ViolationCount, err, rep)
		return
	}
	t.Errorf("%d oracle violations, repro: %s\n%s", rep.ViolationCount, path, rep)
}

// checkConcReport is checkReport for a family enumeration; violations
// carry per-schedule keys.
func checkConcReport(t *testing.T, rep *ConcReport, seed, tornSeed uint64) {
	t.Helper()
	if rep.Passed() {
		return
	}
	path, err := WriteRepro("", ReproFromConc(rep, seed, tornSeed))
	if err != nil {
		t.Errorf("%d oracle violations (repro write failed: %v)\n%s", rep.ViolationCount, err, rep)
		return
	}
	t.Errorf("%d oracle violations, repro: %s\n%s", rep.ViolationCount, path, rep)
}
