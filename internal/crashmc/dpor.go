package crashmc

// The schedule enumerator with DPOR-style reduction. Exhaustively
// interleaving even two short threads at flush granularity is
// combinatorially hopeless; dynamic partial-order reduction observes
// that two schedules differing only in the order of *independent* ops
// reach the same persistent states, so only conflicting op pairs are
// worth reordering. Conflict is judged from the baseline recording's
// dynamic footprints: two cross-thread ops conflict iff their journaled
// flush deltas touch an overlapping cache line, or they acquired the
// same pmem.Resource (same shard, same arena lock — ordering through a
// lock changes who flushes what even when the line sets end up
// disjoint). For every conflicting pair the enumerator replays the
// trace under preemptive schedules that force the reversed order, and
// verifies recovery across the boundaries of the disturbed window. The
// pruned independent pairs are counted, so the coverage table can state
// exactly how much of the naive schedule space the reduction discarded.

import (
	"fmt"
	"sort"
	"strings"

	"nvalloc/internal/torture"
)

// ConcOptions parameterizes EnumerateConc.
type ConcOptions struct {
	Record RecordOptions
	// PairGap is how close (in completion order) two cross-thread ops
	// must be to count as a reorder candidate (default 3). Ops further
	// apart are separated by full round-robin turns of intervening ops
	// and their flush windows do not interact.
	PairGap int
	// PreemptsPerPair caps the preemption points tried per conflicting
	// pair (default 3, spread evenly over the earlier op's switchable
	// yields).
	PreemptsPerPair int
	// MaxSchedules caps the executed variant schedules (<= 0: no cap).
	// Skipped schedules are reported, never silently dropped.
	MaxSchedules int
	// Slack widens the verified boundary window around a reordered
	// pair's flush span (default 8 boundaries each side).
	Slack int
	// Torn adds torn-line variants at every verified boundary.
	Torn     bool
	TornSeed uint64
	// Pool parallelizes the baseline full verification (variant windows
	// are small and run serially).
	Pool func(n int, fn func(i int))
	// MaxBoundaries samples the baseline sweep down to at most this many
	// boundaries (<= 0: enumerate every one). Conflict detection and the
	// pruning accounting read the recording, not the sweep, so sampling
	// the baseline never changes which schedules run.
	MaxBoundaries int
	// CheckEvery runs the offline checker on every Nth baseline boundary.
	CheckEvery int
}

func (o ConcOptions) withDefaults() ConcOptions {
	if o.PairGap <= 0 {
		o.PairGap = 3
	}
	if o.PreemptsPerPair <= 0 {
		o.PreemptsPerPair = 3
	}
	if o.Slack <= 0 {
		o.Slack = 8
	}
	return o
}

// site names one scheduled op: thread t, op index j.
type site struct{ t, j int }

// ConflictPair is one candidate reorder that the footprints proved
// dependent, with the schedules generated for it.
type ConflictPair struct {
	A, B      site
	Kinds     string // "malloc_to×free": the ops' kinds, A first
	Shared    string // why they conflict: "line" or "resource"
	Schedules []Schedule
}

// ConcReport aggregates one family's enumeration: the baseline full
// sweep plus every conflict-forced variant schedule.
type ConcReport struct {
	Target string
	Trace  string
	// Candidates is the naive reorder set (cross-thread op pairs within
	// PairGap); Conflicts is how many survived the footprint test.
	Candidates int
	Conflicts  int
	// NaiveSchedules is what a reduction-free enumerator would run
	// (Candidates x PreemptsPerPair); PlannedSchedules is the post-DPOR
	// plan; SchedulesRun is what actually executed (budget-capped);
	// SchedulesSkipped = PlannedSchedules - SchedulesRun.
	NaiveSchedules   int
	PlannedSchedules int
	SchedulesRun     int
	SchedulesSkipped int
	// Boundaries/Torn verified across the baseline and every variant.
	BoundariesVerified int
	TornVerified       int
	Checks             int
	ViolationCount     int
	Violations         []Violation
	// ConflictKinds counts conflicting pairs by kind pair;
	// ConflictClasses counts them by the line class of the overlap (or
	// "resource" for lock-only conflicts). Paths merges every
	// sub-report's (phase@class) recovery paths — for variant schedules
	// the phase strings join the in-flight set, so conflict-pair
	// interleavings show up as distinct "kind+kind@class" paths.
	ConflictKinds   map[string]int
	ConflictClasses map[string]int
	Paths           map[string]int
	Steps           int32 // baseline scheduled-phase yield steps
}

// Pruning is the fraction of the naive schedule space DPOR discarded
// before budgeting: 1 - Planned/Naive.
func (r *ConcReport) Pruning() float64 {
	if r.NaiveSchedules == 0 {
		return 0
	}
	return 1 - float64(r.PlannedSchedules)/float64(r.NaiveSchedules)
}

// Passed reports whether no schedule produced an oracle violation.
func (r *ConcReport) Passed() bool { return r.ViolationCount == 0 }

func (r *ConcReport) addViolations(rep *Report) {
	r.ViolationCount += rep.ViolationCount
	for _, v := range rep.Violations {
		if len(r.Violations) < maxViolations {
			r.Violations = append(r.Violations, v)
		}
	}
}

func (r *ConcReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: %d candidates -> %d conflicts, %d/%d schedules (naive %d, pruned %.0f%%), %d boundaries, %d torn, %d violations",
		r.Target, r.Trace, r.Candidates, r.Conflicts, r.SchedulesRun, r.PlannedSchedules,
		r.NaiveSchedules, 100*r.Pruning(), r.BoundariesVerified, r.TornVerified, r.ViolationCount)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// conflicts computes the candidate and conflicting cross-thread pairs of
// a baseline recording, and builds each conflict's preempt schedules.
func conflicts(base *ConcRecording, opt ConcOptions, cl *classifier) (cands int, pairs []ConflictPair) {
	// Completion order over scheduled ops only.
	type done struct {
		s   site
		rec int
	}
	var order []done
	for t := range base.Meta {
		for j := range base.Meta[t] {
			if base.Meta[t][j].RecIdx >= 0 {
				order = append(order, done{site{t, j}, base.Meta[t][j].RecIdx})
			}
		}
	}
	sort.Slice(order, func(i, k int) bool { return order[i].rec < order[k].rec })

	lines := make(map[site]map[uint64]bool)
	for _, d := range order {
		lines[d.s] = base.Lines(d.s.t, d.s.j)
	}
	for p := 0; p < len(order); p++ {
		for q := p + 1; q < len(order) && q-p <= opt.PairGap; q++ {
			a, b := order[p].s, order[q].s
			if a.t == b.t {
				continue
			}
			cands++
			shared, class := dependent(base, a, b, lines, cl)
			if shared == "" {
				continue
			}
			cp := ConflictPair{
				A: a, B: b,
				Kinds:  base.Ops[order[p].rec].Op.Kind.String() + "×" + base.Ops[order[q].rec].Op.Kind.String(),
				Shared: class,
			}
			// Force B's completion inside A: preempt A's thread at a
			// switchable yield within A, run B's thread through op B.
			steps := base.Meta[a.t][a.j].SwitchSteps
			for _, at := range sample(steps, opt.PreemptsPerPair) {
				cp.Schedules = append(cp.Schedules, Schedule{
					Preempt: &Preempt{At: at, To: b.t, UntilOp: b.j},
				})
			}
			pairs = append(pairs, cp)
		}
	}
	return cands, pairs
}

// dependent reports whether a and b conflict, returning ("line"|
// "resource", class label) or ("", "") when independent.
func dependent(base *ConcRecording, a, b site, lines map[site]map[uint64]bool, cl *classifier) (how, class string) {
	la, lb := lines[a], lines[b]
	for ln := range la {
		if lb[ln] {
			// Classify the overlapping line via its journal delta's class.
			c := "line"
			for k := range base.Journal {
				if base.Journal[k].Line == ln {
					c = cl.classify(&base.Journal[k])
					break
				}
			}
			return "line", c
		}
	}
	for _, ra := range base.Meta[a.t][a.j].Res {
		for _, rb := range base.Meta[b.t][b.j].Res {
			if ra == rb {
				return "resource", "resource"
			}
		}
	}
	return "", ""
}

// sample picks up to n values spread evenly across steps.
func sample(steps []int32, n int) []int32 {
	if len(steps) == 0 {
		return nil
	}
	if len(steps) <= n {
		out := make([]int32, len(steps))
		copy(out, steps)
		return out
	}
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, steps[i*(len(steps)-1)/(n-1)])
	}
	// Adjacent picks can coincide when steps cluster; dedup.
	ded := out[:1]
	for _, v := range out[1:] {
		if v != ded[len(ded)-1] {
			ded = append(ded, v)
		}
	}
	return ded
}

// EnumerateConc records ct under the baseline round-robin schedule,
// verifies every boundary of that recording, then explores the
// DPOR-reduced schedule space: each conflicting cross-thread op pair is
// re-recorded under preemptive schedules forcing the reversed order,
// and recovery is verified across the disturbed window (plus the final
// boundary) of each variant.
func EnumerateConc(tg torture.Target, ct ConcTrace, opt ConcOptions) (*ConcReport, error) {
	opt = opt.withDefaults()
	base, err := ConcRecord(tg, ct, Schedule{}, opt.Record)
	if err != nil {
		return nil, err
	}
	report := &ConcReport{
		Target:          tg.Name,
		Trace:           ct.Name,
		ConflictKinds:   map[string]int{},
		ConflictClasses: map[string]int{},
		Paths:           map[string]int{},
		Steps:           base.Steps,
	}

	// Baseline: full boundary sweep, like the single-threaded checker.
	baseRep := Verify(base.Recording, Config{
		Torn: opt.Torn, TornSeed: opt.TornSeed,
		Pool: opt.Pool, CheckEvery: opt.CheckEvery,
		MaxBoundaries: opt.MaxBoundaries,
	})
	report.BoundariesVerified += baseRep.Explored
	report.TornVerified += baseRep.TornExplored
	report.Checks += baseRep.Checks
	report.addViolations(baseRep)
	for k, n := range baseRep.Paths {
		report.Paths[k] += n
	}

	cl := newClassifier(base.Recording)
	cands, pairs := conflicts(base, opt, cl)
	report.Candidates = cands
	report.Conflicts = len(pairs)
	report.NaiveSchedules = cands * opt.PreemptsPerPair
	for _, cp := range pairs {
		report.PlannedSchedules += len(cp.Schedules)
		report.ConflictKinds[cp.Kinds]++
		report.ConflictClasses[cp.Shared]++
	}

	for _, cp := range pairs {
		for _, sched := range cp.Schedules {
			if opt.MaxSchedules > 0 && report.SchedulesRun >= opt.MaxSchedules {
				report.SchedulesSkipped = report.PlannedSchedules - report.SchedulesRun
				return report, nil
			}
			vrec, err := ConcRecord(tg, ct, sched, opt.Record)
			if err != nil {
				return nil, fmt.Errorf("schedule %s: %w", sched.Key(), err)
			}
			report.SchedulesRun++

			// Verify the boundaries the reordering disturbed: the union of
			// the pair's flush windows in the *variant* recording, plus
			// slack, plus the final boundary (full-trace recovery).
			lo, hi := vrec.pairWindow(cp.A, cp.B)
			lo -= opt.Slack
			hi += opt.Slack
			cfg := Config{From: lo, To: hi, Torn: opt.Torn, TornSeed: opt.TornSeed}
			rep := Verify(vrec.Recording, cfg)
			last := vrec.Boundaries() - 1
			var fin *Report
			if last > hi {
				fin = Verify(vrec.Recording, Config{From: last, To: last, Torn: opt.Torn, TornSeed: opt.TornSeed})
			}
			for _, r := range []*Report{rep, fin} {
				if r == nil {
					continue
				}
				report.BoundariesVerified += r.Explored
				report.TornVerified += r.TornExplored
				report.addViolations(r)
				for k, n := range r.Paths {
					report.Paths[k] += n
				}
			}
		}
	}
	return report, nil
}

// pairWindow returns the union of two scheduled ops' flush windows in
// this recording (falling back to the whole scheduled phase if either
// never completed, which cannot happen for ops chosen from a baseline).
func (cr *ConcRecording) pairWindow(a, b site) (lo, hi int) {
	ra, rb := cr.Meta[a.t][a.j].RecIdx, cr.Meta[b.t][b.j].RecIdx
	if ra < 0 || rb < 0 {
		return 0, cr.Boundaries() - 1
	}
	oa, ob := &cr.Ops[ra], &cr.Ops[rb]
	lo, hi = oa.FlushStart, oa.FlushEnd
	if ob.FlushStart < lo {
		lo = ob.FlushStart
	}
	if ob.FlushEnd > hi {
		hi = ob.FlushEnd
	}
	return lo, hi
}
