package crashmc

import (
	"fmt"
	"sort"
	"strings"

	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
)

// Violation is one oracle failure at one crash image, carrying enough
// provenance to reproduce it: the boundary index, the schedule key of
// the recording (multi-threaded runs), and the in-flight flush delta's
// class, line and (thread, schedule step) stamp.
type Violation struct {
	Boundary int
	Torn     bool
	Detail   string
	// Schedule is Recording.Sched ("" for single-threaded recordings).
	Schedule string
	// Class is the in-flight line's structure class at the boundary;
	// Line/Thread/Step are that journal delta's provenance (Thread 0 and
	// Step -1 outside scheduled phases; all zero at end-of-trace).
	Class  string
	Line   uint64
	Thread int32
	Step   int32
}

func (v Violation) String() string {
	t := ""
	if v.Torn {
		t = " (torn)"
	}
	s := fmt.Sprintf("boundary %d%s", v.Boundary, t)
	if v.Schedule != "" {
		s += " sched=" + v.Schedule
	}
	if v.Class != "" && v.Class != "end-of-trace" {
		s += fmt.Sprintf(" inflight=%s line=%#x t%d@%d", v.Class, v.Line, v.Thread, v.Step)
	}
	return s + ": " + v.Detail
}

// Report summarizes one enumeration run over one recording.
type Report struct {
	Target string
	Trace  string
	// Boundaries is the recording's total persistence-boundary count;
	// Explored is how many this run verified (== Boundaries at stride 1
	// with no caps: 100% coverage).
	Boundaries int
	Explored   int
	// TornExplored counts torn-line variants verified on top of the
	// clean-cut images.
	TornExplored int
	// OpenFailures counts boundaries before CreatedAt where recovery
	// refused the image with a typed error (allowed: the heap did not
	// exist yet).
	OpenFailures int
	// Checks counts offline consistency-checker (Target.Check) runs.
	Checks int
	// ViolationCount is the total number of violations; Violations holds
	// the first maxViolations of them.
	ViolationCount int
	Violations     []Violation
	// Classes counts explored boundaries by the class of the in-flight
	// line (wal-entry, bitmap-stripe, blog-entry, slab-header, ...);
	// TornClasses counts the torn variants per class.
	Classes     map[string]int
	TornClasses map[string]int
	// Paths counts distinct recovery paths hit: (trace phase, in-flight
	// line class) pairs.
	Paths map[string]int
}

// maxViolations bounds the violations retained per report; the count is
// always exact.
const maxViolations = 64

// Coverage is Explored / Boundaries.
func (r *Report) Coverage() float64 {
	if r.Boundaries == 0 {
		return 0
	}
	return float64(r.Explored) / float64(r.Boundaries)
}

// Passed reports whether the enumeration found no violations.
func (r *Report) Passed() bool { return r.ViolationCount == 0 }

func (r *Report) addViolation(v Violation) {
	r.ViolationCount++
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, v)
	}
}

func (r *Report) merge(o *Report) {
	r.Explored += o.Explored
	r.TornExplored += o.TornExplored
	r.OpenFailures += o.OpenFailures
	r.Checks += o.Checks
	r.ViolationCount += o.ViolationCount
	for _, v := range o.Violations {
		if len(r.Violations) < maxViolations {
			r.Violations = append(r.Violations, v)
		}
	}
	for k, n := range o.Classes {
		r.Classes[k] += n
	}
	for k, n := range o.TornClasses {
		r.TornClasses[k] += n
	}
	for k, n := range o.Paths {
		r.Paths[k] += n
	}
}

// ClassNames returns the explored line classes in sorted order.
func (r *Report) ClassNames() []string {
	out := make([]string, 0, len(r.Classes))
	for k := range r.Classes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: %d/%d boundaries (%.1f%%), %d torn, %d paths, %d checks, %d violations",
		r.Target, r.Trace, r.Explored, r.Boundaries, 100*r.Coverage(),
		r.TornExplored, len(r.Paths), r.Checks, r.ViolationCount)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// classifier maps a journaled flush to the persistent structure it was
// updating, using the recorded device's superblock layout. Nil for
// targets without a labeled layout (the baselines), which fall back to
// flush-category classes.
type classifier struct {
	regions  []core.Region
	heapBase pmem.PAddr
}

func newClassifier(rec *Recording) *classifier {
	if !strings.HasPrefix(rec.Target.Name, "NVAlloc") {
		return nil
	}
	cl := &classifier{regions: core.Regions(rec.Dev)}
	for _, r := range cl.regions {
		if r.Name == "heap" {
			cl.heapBase = r.Range.Start
		}
	}
	return cl
}

// classify names the structure the delta's line belongs to. The classes
// the fault model cares about are the unfenced-line classes: "wal-entry"
// (WAL batch prefixes), "bitmap-stripe" (slab bitmap words),
// "blog-entry" (bookkeeping-log appends and GC copies) and
// "slab-header"; the rest ("superblock", "root-slot", "object-data",
// "other") complete the partition.
func (cl *classifier) classify(fd *pmem.FlushDelta) string {
	addr := pmem.PAddr(fd.Line * pmem.LineSize)
	if cl == nil {
		// No layout: classify by what the allocator said it was flushing.
		switch fd.Cat {
		case pmem.CatWAL:
			return "wal-entry"
		case pmem.CatMeta:
			return "metadata"
		default:
			return "object-data"
		}
	}
	for _, r := range cl.regions {
		if addr < r.Range.Start || addr >= r.Range.End {
			continue
		}
		switch r.Name {
		case "superblock":
			return "superblock"
		case "roots":
			return "root-slot"
		case "wal":
			return "wal-entry"
		case "blog":
			return "blog-entry"
		case "heap":
			if (addr-cl.heapBase)%slab.Size < pmem.LineSize {
				return "slab-header"
			}
			if fd.Cat == pmem.CatMeta {
				return "bitmap-stripe"
			}
			return "object-data"
		}
	}
	return "other"
}

// phase names the trace region boundary k falls in: the in-flight op's
// kind — or, in a multi-threaded recording, the "+"-joined kinds of
// every op in flight (one per thread, in completion order) — or one of
// the bracketing phases.
func (rec *Recording) phase(k int) string {
	if k < rec.CreatedAt {
		return "create"
	}
	if k >= rec.CloseStart {
		return "close"
	}
	if rec.Sched != "" {
		// Schedule-aware recording: windows overlap, so collect the full
		// in-flight set (FlushStart is not monotone; scan everything).
		var joined string
		for i := range rec.Ops {
			or := &rec.Ops[i]
			if or.FlushStart < k && k < or.FlushEnd {
				if joined != "" {
					joined += "+"
				}
				joined += or.Op.Kind.String()
			}
		}
		if joined == "" {
			return "quiescent"
		}
		return joined
	}
	// Ops are in trace order with non-overlapping windows; find the op
	// whose window contains k.
	lo, hi := 0, len(rec.Ops)
	for lo < hi {
		mid := (lo + hi) / 2
		if rec.Ops[mid].FlushEnd <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rec.Ops) && rec.Ops[lo].FlushStart < k && k < rec.Ops[lo].FlushEnd {
		return rec.Ops[lo].Op.Kind.String()
	}
	return "quiescent"
}
