// Package crashmc is a deterministic crash-point model checker for every
// allocator in the repository. Where internal/torture samples random
// fault plans, crashmc *enumerates*: it records a single-threaded
// operation trace on a journaled device (internal/pmem's copy-on-flush
// journal), then reconstructs the crash image at every persistence
// boundary — each prefix of the flush journal, plus torn-line variants of
// the line in flight — reopens it, and validates recovery against an
// oracle built from the recorded trace: the exact set of root-published
// blocks that must have survived, the two legal values of every root slot
// crossed by an in-flight operation, data markers of durable publishes,
// free-exactly-once semantics, and space-accounting bounds.
//
// Enumeration is tractable because image k+1 derives from image k with a
// single 64-byte line copy (pmem.ImageCursor), so checking all n
// boundaries costs n recoveries, not n workload replays; boundary ranges
// are partitioned across a caller-supplied worker pool (the experiment
// engine's, for nvbench and CI).
package crashmc

import (
	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
	"nvalloc/internal/torture"
)

// DefaultDeviceBytes sizes the model checker's devices. Smaller than
// torture's: every enumerated boundary copies the full image into the
// scratch device, so the image size multiplies directly into enumeration
// cost.
const DefaultDeviceBytes = 24 << 20

// SmokeGCThreshold is the bookkeeping-log slow-GC trigger used by the
// model checker's NVAlloc targets: low enough that the smoke trace's
// large-allocation churn drives incremental GC increments across crash
// boundaries (the default threshold would never fire inside a trace this
// small). The threshold is volatile (not persisted), so recovery with
// default options opens the same image unchanged.
const SmokeGCThreshold = 2 * 1024

// Targets returns the model checker's allocator targets: the same eight
// allocators as internal/torture, with the NVAlloc variants re-tuned for
// enumeration (2 arenas, low blog-GC threshold).
func Targets() []torture.Target {
	ts := []torture.Target{
		Target("NVAlloc-LOG", core.LOG),
		Target("NVAlloc-GC", core.GC),
		Target("NVAlloc-IC", core.IC),
	}
	for _, tg := range torture.Targets() {
		switch tg.Name {
		case "NVAlloc-LOG", "NVAlloc-GC", "NVAlloc-IC":
			continue
		}
		ts = append(ts, tg)
	}
	return ts
}

// Target builds a model-checker target for one NVAlloc variant.
func Target(name string, v core.Variant) torture.Target {
	return TargetOpts(name, func() core.Options {
		opts := core.DefaultOptions(v)
		opts.Arenas = 2
		opts.BlogGCThreshold = SmokeGCThreshold
		return opts
	})
}

// TargetOpts builds an NVAlloc target from an options constructor, for
// tests that need non-default geometry (arena counts, bookkeeping
// shards). Recovery always runs with DefaultOptions for the variant:
// persisted parameters override the caller's, which is itself part of
// what the checker exercises.
func TargetOpts(name string, mk func() core.Options) torture.Target {
	v := mk().Variant
	return torture.Target{
		Name: name,
		Create: func(dev *pmem.Device) (alloc.Heap, error) {
			return core.Create(dev, mk())
		},
		Open: func(dev *pmem.Device) (alloc.Heap, error) {
			h, _, err := core.Open(dev, core.DefaultOptions(v))
			if err != nil {
				return nil, err
			}
			return h, nil
		},
		MetaRanges: func(dev *pmem.Device) []pmem.Range {
			return core.MetaRanges(dev)
		},
		Check: func(dev *pmem.Device) []string {
			return core.Check(dev, core.DefaultOptions(v))
		},
	}
}
