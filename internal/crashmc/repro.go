package crashmc

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Repro is a self-contained, JSON-serializable reproduction recipe for
// an oracle violation: everything needed to rebuild the exact crash
// image — the target, the trace identity (name or generator seed), the
// schedule key, and the violating boundaries with their flush-delta
// provenance. Harnesses write one per failing report instead of burying
// the coordinates in a test log.
type Repro struct {
	Target string `json:"target"`
	Trace  string `json:"trace"`
	// Seed regenerates a seeded trace (SmokeTrace/WorkloadTrace/
	// ConcFamilies); 0 for hand-built traces identified by name alone.
	Seed uint64 `json:"seed,omitempty"`
	// Schedule is the interleaving key (Schedule.Key) for multi-threaded
	// recordings; "" means single-threaded.
	Schedule string `json:"schedule,omitempty"`
	// TornSeed reproduces torn-line word masks.
	TornSeed   uint64      `json:"torn_seed,omitempty"`
	Violations []Violation `json:"violations"`
}

// ArtifactDirEnv names the environment variable that redirects repro
// artifacts; unset, they land in the OS temp directory.
const ArtifactDirEnv = "CRASHMC_ARTIFACT_DIR"

// WriteRepro serializes r into dir (or $CRASHMC_ARTIFACT_DIR, or the OS
// temp dir, when dir is empty) under a content-addressed name, and
// returns the written path. Failures to write never mask the underlying
// violation: callers report the error alongside the violations.
func WriteRepro(dir string, r *Repro) (string, error) {
	if dir == "" {
		dir = os.Getenv(ArtifactDirEnv)
	}
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(b)
	name := fmt.Sprintf("crashmc-repro-%s-%s-%x.json", sanitize(r.Target), sanitize(r.Trace), h.Sum64())
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReproFromReport builds a Repro from a failed single-recording report.
func ReproFromReport(rec *Recording, rep *Report, seed, tornSeed uint64) *Repro {
	return &Repro{
		Target:     rec.Target.Name,
		Trace:      rec.Trace.Name,
		Seed:       seed,
		Schedule:   rec.Sched,
		TornSeed:   tornSeed,
		Violations: rep.Violations,
	}
}

// ReproFromConc builds a Repro from a failed family enumeration; each
// violation already carries its own schedule key.
func ReproFromConc(rep *ConcReport, seed, tornSeed uint64) *Repro {
	return &Repro{
		Target:     rep.Target,
		Trace:      rep.Trace,
		Seed:       seed,
		TornSeed:   tornSeed,
		Violations: rep.Violations,
	}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
