package crashmc

// The concurrent trace families: small two-thread traces aimed at the
// allocator's genuinely concurrent persistence machinery, where the
// ordering decisions live outside any lock — sharded bookkeeping-log
// appends racing that shard's inline GC, batched remote-free drains
// racing the owner arena's allocations, and extent-cache refills racing
// extent frees. Each family keeps a single scheduled writer per root
// slot, so the per-slot oracle stays the two-value legality rule while
// the cross-thread flush interleavings roam free. Each also mixes in
// cross-thread traffic with *disjoint* footprints (other arenas' slabs,
// buffered frees that flush nothing) — those pairs are what DPOR proves
// independent and prunes.

// ConcShardGC is the shard-append×GC family: thread 0 streams large
// publishes/unpublishes through the bookkeeping log while thread 1's
// frees of pre-allocated extents drop tombstones into the same shards,
// triggering the shard's inline incremental GC under the smoke targets'
// low threshold. Conflicts: shard resources and blog-entry lines.
func ConcShardGC(seed uint64) ConcTrace {
	rng := splitmix64(seed)
	big := func() uint64 { return (64 + rng.next()%64) << 10 }
	// One fixed small size class per family: the slabs are created during
	// setup (below), so scheduled small churn is pure arena-private
	// tcache/bitmap traffic — the independent pairs DPOR should prune.
	small := func() Op { return Op{Kind: OpMalloc, Size: 96} }
	ct := ConcTrace{Name: "shard-append-gc"}
	// Setup: published extents for the raced FreeFroms, plus anonymous
	// extents thread 1 will free (tombstone + GC traffic).
	for s := 0; s < 4; s++ {
		ct.Setup = append(ct.Setup, Op{Kind: OpMallocTo, Slot: s, Size: big()})
	}
	var anon []int
	for i := 0; i < 5; i++ {
		ct.Setup = append(ct.Setup, Op{Kind: OpMalloc, Size: big()})
		anon = append(anon, len(ct.Setup)-1)
	}
	// Warm both threads' small class so slab creation (a bookkeeping
	// record, hence a conflict) happens before the scheduled phase.
	ct.Setup = append(ct.Setup,
		Op{Kind: OpMalloc, Size: 96},
		Op{Kind: OpMalloc, Thread: 1, Size: 96},
	)
	ct.Threads = [][]Op{
		{ // t0: append stream — publishes and unpublishes of fresh
			// extents — padded with arena-private slab churn.
			{Kind: OpMallocTo, Slot: 10, Size: big()},
			small(), small(),
			{Kind: OpMallocTo, Slot: 11, Size: big()},
			small(), small(),
			{Kind: OpFreeFrom, Slot: 10},
			small(), small(),
			{Kind: OpMallocTo, Slot: 12, Size: big()},
			small(),
			{Kind: OpFreeFrom, Slot: 11},
			{Kind: OpMallocTo, Slot: 13, Size: big()},
		},
		{ // t1: tombstones driving the shards' inline GC, same padding.
			{Kind: OpFree, Thread: -1, Ref: anon[0]},
			small(), small(),
			{Kind: OpFree, Thread: -1, Ref: anon[1]},
			small(), small(),
			{Kind: OpFreeFrom, Slot: 0},
			small(), small(),
			{Kind: OpFree, Thread: -1, Ref: anon[2]},
			small(),
			{Kind: OpFree, Thread: -1, Ref: anon[3]},
			{Kind: OpFreeFrom, Slot: 1},
		},
	}
	return ct
}

// ConcRemoteFree is the remote-free×owner-alloc family: thread 1 frees
// blocks owned by thread 0's arena — buffered locally, flushing nothing
// — then drains the batch with an explicit flush while thread 0 keeps
// allocating from the same size class. Conflicts: the drain's WAL/bin
// traffic against the owner's allocation path. The buffered frees
// themselves are footprint-free, so DPOR prunes every pair they are in.
func ConcRemoteFree(seed uint64) ConcTrace {
	rng := splitmix64(seed)
	ct := ConcTrace{Name: "remote-free-drain"}
	var owned []int
	for i := 0; i < 8; i++ {
		ct.Setup = append(ct.Setup, Op{Kind: OpMalloc, Size: 256})
		owned = append(owned, len(ct.Setup)-1)
	}
	// A shard-pool extent (leased to the setup thread's arena): thread
	// 1's drain hands it back to the owner's pool while thread 0 is
	// carving from the same pool — the remote-free×owner-alloc race at
	// the extent layer, and the conflict that persists even where small
	// frees never touch media (the GC variant's volatile bitmaps).
	ct.Setup = append(ct.Setup, Op{Kind: OpMalloc, Size: 48 << 10})
	ext := len(ct.Setup) - 1
	ct.Setup = append(ct.Setup,
		Op{Kind: OpMallocTo, Slot: 0, Size: 256 + rng.next()%256},
		Op{Kind: OpMallocTo, Slot: 1, Size: 256 + rng.next()%256},
	)
	t1 := []Op{}
	for _, r := range owned {
		t1 = append(t1, Op{Kind: OpFree, Thread: -1, Ref: r})
	}
	t1 = append(t1,
		Op{Kind: OpFlush},
		Op{Kind: OpFree, Thread: -1, Ref: ext},
		Op{Kind: OpMalloc, Size: 512},
	)
	ct.Threads = [][]Op{
		{ // t0: owner keeps allocating the drained size class, with a
			// late shard-pool carve racing thread 1's extent return.
			{Kind: OpMalloc, Size: 256},
			{Kind: OpMalloc, Size: 256},
			{Kind: OpMallocTo, Slot: 10, Size: 256},
			{Kind: OpMalloc, Size: 256},
			{Kind: OpMalloc, Size: 256},
			{Kind: OpFreeFrom, Slot: 0},
			{Kind: OpMallocTo, Slot: 11, Size: 256 + rng.next()%128},
			{Kind: OpMalloc, Size: 256},
			{Kind: OpMalloc, Size: 48 << 10},
		},
		t1,
	}
	return ct
}

// ConcExtentRefill is the extent-refill×free family: thread 0's large
// publishes force its arena's extent cache to refill from the global
// extent state while thread 1 frees previously published extents back
// into it. Conflicts: global extent metadata and bookkeeping entries;
// the small-slab churn on both sides stays arena-private and prunes.
func ConcExtentRefill(seed uint64) ConcTrace {
	rng := splitmix64(seed)
	big := func() uint64 { return (96 + rng.next()%64) << 10 }
	ct := ConcTrace{Name: "extent-refill-free"}
	for s := 0; s < 6; s++ {
		ct.Setup = append(ct.Setup, Op{Kind: OpMallocTo, Slot: s, Size: big()})
	}
	ct.Threads = [][]Op{
		{ // t0: refill pressure — fresh large extents.
			{Kind: OpMallocTo, Slot: 10, Size: big()},
			{Kind: OpMalloc, Size: 64 + rng.next()%256},
			{Kind: OpMallocTo, Slot: 11, Size: big()},
			{Kind: OpMallocTo, Slot: 12, Size: big()},
			{Kind: OpMalloc, Size: 64 + rng.next()%256},
			{Kind: OpMallocTo, Slot: 13, Size: big()},
		},
		{ // t1: extent returns.
			{Kind: OpFreeFrom, Slot: 0},
			{Kind: OpMalloc, Size: 64 + rng.next()%256},
			{Kind: OpFreeFrom, Slot: 1},
			{Kind: OpFreeFrom, Slot: 2},
			{Kind: OpMalloc, Size: 64 + rng.next()%256},
			{Kind: OpFreeFrom, Slot: 3},
			{Kind: OpFreeFrom, Slot: 4},
		},
	}
	return ct
}

// ConcFamilies returns the three conflicting-pair trace families the
// concurrent checker explores, seeded deterministically.
func ConcFamilies(seed uint64) []ConcTrace {
	return []ConcTrace{
		ConcShardGC(seed),
		ConcRemoteFree(seed ^ 0x9E3779B97F4A7C15),
		ConcExtentRefill(seed ^ 0xA24BAED4963EE407),
	}
}
