package crashmc

import (
	"bytes"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
	"nvalloc/internal/torture"
)

// replay executes tr against a fresh heap of tg on dev, mirroring
// Record's execution exactly (including data markers) but without the
// journal: the reference for the journal/crash-image equivalence test.
func replay(t *testing.T, tg torture.Target, tr Trace, dev *pmem.Device) {
	t.Helper()
	h, err := tg.Create(dev)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var results []pmem.PAddr
	threads := make([]alloc.Thread, tr.Threads)
	thread := func(i int) alloc.Thread {
		if threads[i] == nil {
			threads[i] = h.NewThread()
		}
		return threads[i]
	}
	for i, op := range tr.Ops {
		th := thread(op.Thread)
		var addr pmem.PAddr
		switch op.Kind {
		case OpMalloc:
			addr, _ = th.Malloc(op.Size)
		case OpFree:
			if a := results[op.Ref]; a != 0 {
				th.Free(a)
			}
		case OpMallocTo:
			a, err := th.MallocTo(h.RootSlot(op.Slot), op.Size)
			if err == nil {
				addr = a
				dev.WriteU64(a, markerFor(i))
				c := th.Ctx()
				c.Flush(pmem.CatOther, a, 8)
				c.Fence()
			}
		case OpFreeFrom:
			th.FreeFrom(h.RootSlot(op.Slot))
		case OpFlush:
			if f, ok := th.(alloc.Flusher); ok {
				f.Flush()
			}
		}
		results = append(results, addr)
	}
	for _, th := range threads {
		if th != nil {
			th.Close()
		}
	}
	h.Close()
}

// TestJournalMatchesCrashImages is the model checker's foundation: the
// image the flush journal reconstructs at boundary k must be
// byte-identical to what arming CrashAfterFlushes(k) during a replay of
// the same trace, then cutting power, leaves on the media.
func TestJournalMatchesCrashImages(t *testing.T) {
	tg := Targets()[0] // NVAlloc-LOG with smoke tuning
	tr := WorkloadTrace(1, 48)
	rec, err := Record(tg, tr, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(rec.Journal)
	if n < 100 {
		t.Fatalf("trace too small to be interesting: %d flushes", n)
	}
	ks := []int{0, 1, 2, rec.CreatedAt - 1, rec.CreatedAt, rec.CreatedAt + 7,
		n / 3, n / 2, 2 * n / 3, n - 2, n - 1, n}
	cursor := pmem.NewImageCursor(rec.DeviceBytes, rec.Journal)
	prev := -1
	for _, k := range ks {
		if k <= prev || k > n {
			continue
		}
		prev = k
		cursor.Advance(k)
		dev := pmem.New(pmem.Config{Size: rec.DeviceBytes, Strict: true})
		dev.CrashAfterFlushes(int64(k))
		replay(t, tg, tr, dev)
		dev.Crash()
		got := dev.Bytes(0, int(rec.DeviceBytes))
		if !bytes.Equal(got, cursor.Image()) {
			// Locate the first divergence for the failure message.
			i := 0
			for i < len(got) && got[i] == cursor.Image()[i] {
				i++
			}
			t.Fatalf("boundary %d: journal image diverges from crash image at byte %#x (line %d)",
				k, i, i/pmem.LineSize)
		}
	}
}

// TestSmokeTraceAllTargets records the smoke trace on every allocator
// and exhaustively verifies all of its persistence boundaries (torn
// variants included). Short mode samples boundaries instead.
func TestSmokeTraceAllTargets(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			t.Parallel()
			rec, err := Record(tg, SmokeTrace(42), RecordOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Torn: true, TornSeed: 0xDECAF, CheckEvery: 64}
			if testing.Short() {
				cfg.MaxBoundaries = 120
				cfg.CheckEvery = 16
			}
			rep := Verify(rec, cfg)
			t.Logf("%s", rep)
			checkReport(t, rec, rep, 42, cfg.TornSeed)
			if !testing.Short() && rep.Explored != rep.Boundaries {
				t.Errorf("coverage %d/%d, want exhaustive", rep.Explored, rep.Boundaries)
			}
		})
	}
}
