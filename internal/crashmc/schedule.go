package crashmc

// The deterministic scheduler: crashmc's bridge from single-threaded
// trace recording to schedule-aware model checking. A ConcTrace names N
// per-thread op sequences; ConcRecord runs them on N goroutines that are
// serialized by a token — exactly one runs at any instant — and context
// switches happen only at the named schedule points pmem.Ctx exposes
// (resource acquire/release, flush, fence) plus op boundaries. The
// resulting flush journal is a deterministic function of (trace,
// Schedule): replaying the same Schedule reproduces the same journal
// byte-for-byte, which is what lets a violation ship as a reproducible
// (trace seed, schedule key, boundary) triple.
//
// Suspension discipline: a thread may be suspended only at *switchable*
// yields — points where its Ctx holds no pmem.Resource. Since every
// suspended thread is at such a point, no suspended thread ever holds a
// real lock, so the one running thread can never block on a peer and the
// token can always make progress. Critical sections are therefore atomic
// with respect to the explored interleavings, which is faithful: the
// allocator's real locks serialize those sections anyway. What the
// scheduler *does* reorder is everything the locks do not protect — the
// publish/flush/fence tails that run outside shard resources, drain
// batches, GC copy loops — which is precisely where concurrent crash
// bugs live.

import (
	"fmt"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
	"nvalloc/internal/torture"
)

// ConcTrace is a multi-threaded trace: a serial setup prologue followed
// by per-thread op sequences run under a Schedule.
//
// Op field reinterpretation in Threads: the executing thread is the
// outer slice index, so Op.Thread is reused as the *reference* thread of
// an OpFree — Thread -1 refs Setup[Ref], Thread t >= 0 refs
// Threads[t][Ref]. A referenced op that has not completed yet under the
// current schedule makes the free a deterministic no-op (Err), never a
// block: traces stay valid under every schedule.
type ConcTrace struct {
	Name string
	// Setup runs serially before the scheduler starts (Op.Thread is the
	// executing handle, refs are Setup indices — serial Record semantics).
	Setup []Op
	// Threads[t] is thread t's op sequence under the scheduler.
	Threads [][]Op
}

// Preempt is one mid-op context switch: at the first switchable yield
// step >= At, the running thread is suspended and thread To runs through
// the completion of its op index UntilOp (executing any earlier
// still-pending ops on the way), after which the suspended thread
// resumes its split op.
type Preempt struct {
	At      int32
	To      int
	UntilOp int
}

// Schedule selects one interleaving of a ConcTrace. The zero value is
// the baseline: non-preemptive round-robin, one op per turn. A Preempt
// splits a single op mid-flight — because the baseline prefix before At
// is deterministic, the split lands at the same micro-state every run.
type Schedule struct {
	Preempt *Preempt
}

// Key names the schedule compactly; it is recorded on every Recording
// (Recording.Sched) and every Violation, and is sufficient (with the
// trace) to replay the exact interleaving.
func (s Schedule) Key() string {
	if s.Preempt == nil {
		return "rr"
	}
	return fmt.Sprintf("rr+p@%d>t%d#%d", s.Preempt.At, s.Preempt.To, s.Preempt.UntilOp)
}

// OpSite is the dynamic footprint of one scheduled op, captured during
// recording: where its record landed, which resources it acquired, and
// the switchable yield steps inside it (the legal preemption points a
// DPOR enumerator can split it at).
type OpSite struct {
	RecIdx      int              // index into Recording.Ops (-1 until completed)
	Res         []*pmem.Resource // resources acquired during the op
	SwitchSteps []int32          // switchable global yield steps inside the op
}

func (o *OpSite) addRes(r *pmem.Resource) {
	for _, x := range o.Res {
		if x == r {
			return
		}
	}
	o.Res = append(o.Res, r)
}

// ConcRecording is a Recording made under an explicit schedule, plus the
// per-op scheduling metadata the DPOR enumerator consumes.
type ConcRecording struct {
	*Recording
	Conc     ConcTrace
	Schedule Schedule
	// Meta[t][j] is thread t's op j's footprint; Meta[t][j].RecIdx maps
	// it back into Recording.Ops (completion order).
	Meta [][]OpSite
	// SetupIdx[i] is Setup[i]'s index in Recording.Ops.
	SetupIdx []int
	// Steps is the total global yield-step count of the scheduled phase.
	Steps int32
}

// Lines returns the set of journal lines thread t's op j flushed,
// identified by the journal deltas' thread provenance inside the op's
// flush window. This is the line half of the DPOR conflict footprint.
func (cr *ConcRecording) Lines(t, j int) map[uint64]bool {
	site := &cr.Meta[t][j]
	if site.RecIdx < 0 {
		return nil
	}
	or := &cr.Ops[site.RecIdx]
	lines := map[uint64]bool{}
	for k := or.FlushStart; k < or.FlushEnd; k++ {
		if k < cr.JournalBase || k-cr.JournalBase >= len(cr.Journal) {
			continue
		}
		fd := &cr.Journal[k-cr.JournalBase]
		if fd.Thread == int32(t+1) {
			lines[fd.Line] = true
		}
	}
	return lines
}

// racedMarkerSpace offsets scheduled ops' data markers per thread so
// they never collide with setup markers (markerFor(i), i < 4096) or each
// other.
const racedMarkerSpace = 4096

// scheduler implements pmem.SchedHook: the token-passing serializer.
// All fields are mutated only by the thread currently holding the token;
// token channel sends/receives provide the happens-before edges, so the
// recording is race-free under -race without any locks of its own.
type scheduler struct {
	sched  Schedule
	tokens []chan struct{}
	cur    int
	done   []bool
	nDone  int
	finish chan struct{}
	fail   any // panic value from a worker, re-raised by the recorder

	step  int32
	curOp []int
	meta  [][]OpSite

	fired      bool // the schedule's preempt has fired
	preempting bool // preempt target currently running inside the split
	preempted  int  // thread suspended mid-op by the preempt
}

func newScheduler(sched Schedule, opsPerThread []int) *scheduler {
	n := len(opsPerThread)
	s := &scheduler{
		sched:  sched,
		tokens: make([]chan struct{}, n),
		done:   make([]bool, n),
		finish: make(chan struct{}),
		curOp:  make([]int, n),
		meta:   make([][]OpSite, n),
	}
	for t := 0; t < n; t++ {
		s.tokens[t] = make(chan struct{}, 1)
		s.meta[t] = make([]OpSite, opsPerThread[t])
		for j := range s.meta[t] {
			s.meta[t][j].RecIdx = -1
		}
	}
	return s
}

// Step implements pmem.SchedHook: journaled flush deltas are stamped
// with it, giving every delta schedule provenance.
func (s *scheduler) Step() int32 { return s.step }

// Yield implements pmem.SchedHook. Called by the running thread at every
// schedule point of its Ctx; this is where mid-op preemption happens.
func (s *scheduler) Yield(c *pmem.Ctx, p pmem.SchedPoint, r *pmem.Resource, switchable bool) {
	t := int(c.ThreadID) - 1
	if t < 0 || t >= len(s.tokens) {
		return // unscheduled context (setup/close phases)
	}
	s.step++
	if j := s.curOp[t]; j < len(s.meta[t]) {
		site := &s.meta[t][j]
		if p == pmem.PointAcquire && r != nil {
			site.addRes(r)
		}
		if switchable {
			site.SwitchSteps = append(site.SwitchSteps, s.step)
		}
	}
	if !switchable {
		return
	}
	pr := s.sched.Preempt
	if pr != nil && !s.fired && s.step >= pr.At &&
		pr.To >= 0 && pr.To < len(s.tokens) && pr.To != t && !s.done[pr.To] {
		s.fired = true
		s.preempting = true
		s.preempted = t
		s.pass(t, pr.To)
	}
}

// pass hands the token to thread `to` and blocks until it comes back to
// `from`.
func (s *scheduler) pass(from, to int) {
	s.cur = to
	s.tokens[to] <- struct{}{}
	<-s.tokens[from]
}

// afterOp is the op-boundary schedule point: the default round-robin
// switch, and the end of a preempt split once the target completed
// UntilOp.
func (s *scheduler) afterOp(t int) {
	if s.preempting {
		if pr := s.sched.Preempt; t == pr.To {
			if s.curOp[t] >= pr.UntilOp {
				s.preempting = false
				s.pass(t, s.preempted) // resume the split op
			}
			// else: keep running toward UntilOp.
		}
		return
	}
	if next := s.nextThread(t); next != t {
		s.pass(t, next)
	}
}

// nextThread returns the round-robin successor of t that is not done, or
// t itself when it is the only thread left.
func (s *scheduler) nextThread(t int) int {
	n := len(s.tokens)
	for i := 1; i <= n; i++ {
		if c := (t + i) % n; !s.done[c] {
			return c
		}
	}
	return t
}

// exit retires thread t and hands the token onward without waiting.
func (s *scheduler) exit(t int) {
	s.done[t] = true
	s.nDone++
	if s.preempting && t == s.sched.Preempt.To {
		// The split target ran out of ops before UntilOp: resume the
		// preempted thread.
		s.preempting = false
		s.cur = s.preempted
		s.tokens[s.preempted] <- struct{}{}
		return
	}
	if s.nDone == len(s.tokens) {
		close(s.finish)
		return
	}
	next := s.nextThread(t)
	s.cur = next
	s.tokens[next] <- struct{}{}
}

// abort records a worker panic and releases the recorder; peers stay
// parked (the run is unrecoverable and the process is about to fail).
func (s *scheduler) abort(v any) {
	s.fail = v
	close(s.finish)
}

// ConcRecord executes ct against a fresh heap of tg under the given
// schedule and captures a journaled recording. Thread handles are
// created serially before the scheduler starts, so arena binding — and
// therefore the whole recording — is deterministic in (tg, ct, sched).
func ConcRecord(tg torture.Target, ct ConcTrace, sched Schedule, opts RecordOptions) (*ConcRecording, error) {
	if opts.DeviceBytes == 0 {
		opts.DeviceBytes = DefaultDeviceBytes
	}
	n := len(ct.Threads)
	if n == 0 {
		return nil, fmt.Errorf("crashmc: conc trace %q has no threads", ct.Name)
	}
	dev := pmem.New(pmem.Config{
		Size: opts.DeviceBytes, Strict: true, Journal: true,
		JournalCheckpointEvery: opts.JournalCheckpointEvery,
	})
	h, err := tg.Create(dev)
	if err != nil {
		return nil, fmt.Errorf("crashmc: create %s: %w", tg.Name, err)
	}
	rec := &Recording{
		Target:      tg,
		Trace:       Trace{Name: ct.Name, Threads: n},
		DeviceBytes: opts.DeviceBytes,
		CreatedAt:   dev.JournalLen(),
		Dev:         dev,
		Sched:       sched.Key(),
	}
	threads := make([]alloc.Thread, n)
	for t := range threads {
		threads[t] = h.NewThread()
	}

	exec := func(th alloc.Thread, op Op, marker uint64, refAddr pmem.PAddr, refOK bool) OpRecord {
		or := OpRecord{Op: op, FlushStart: dev.JournalLen()}
		switch op.Kind {
		case OpMalloc:
			a, err := th.Malloc(op.Size)
			or.Addr, or.Err = a, err != nil
		case OpFree:
			if !refOK || refAddr == 0 {
				or.Err = true
				break
			}
			or.Addr = refAddr
			or.Err = th.Free(refAddr) != nil
		case OpMallocTo:
			a, err := th.MallocTo(h.RootSlot(op.Slot), op.Size)
			or.Addr, or.Err = a, err != nil
			if err == nil {
				or.Marker = marker
				dev.WriteU64(a, marker)
				c := th.Ctx()
				c.Flush(pmem.CatOther, a, 8)
				c.Fence()
			}
		case OpFreeFrom:
			or.Err = th.FreeFrom(h.RootSlot(op.Slot)) != nil
		case OpFlush:
			if f, ok := th.(alloc.Flusher); ok {
				f.Flush()
			}
		}
		or.FlushEnd = dev.JournalLen()
		or.UsedAfter = h.Used()
		if or.UsedAfter > rec.MaxUsed {
			rec.MaxUsed = or.UsedAfter
		}
		if lo, ok := h.(interface{ LeaseOverhead() uint64 }); ok {
			if v := lo.LeaseOverhead(); v > rec.MaxLease {
				rec.MaxLease = v
			}
		}
		if opts.Probe != nil {
			or.Probe = opts.Probe(h)
		}
		return or
	}

	// Serial setup prologue: plain Record semantics.
	setupIdx := make([]int, len(ct.Setup))
	for i, op := range ct.Setup {
		if op.Thread < 0 || op.Thread >= n {
			return nil, fmt.Errorf("crashmc: setup op %d: thread %d out of range", i, op.Thread)
		}
		var refAddr pmem.PAddr
		refOK := true
		if op.Kind == OpFree {
			if op.Ref < 0 || op.Ref >= i {
				return nil, fmt.Errorf("crashmc: setup op %d: bad free ref %d", i, op.Ref)
			}
			tr := &rec.Ops[setupIdx[op.Ref]]
			refAddr, refOK = tr.Addr, !tr.Err
		}
		or := exec(threads[op.Thread], op, markerFor(i), refAddr, refOK)
		setupIdx[i] = len(rec.Ops)
		rec.Ops = append(rec.Ops, or)
	}

	// Scheduled phase. The token serializes every worker: rec and the
	// scheduler's own state are only ever touched by the token holder.
	opsPer := make([]int, n)
	for t := range ct.Threads {
		opsPer[t] = len(ct.Threads[t])
	}
	s := newScheduler(sched, opsPer)
	for t := range threads {
		c := threads[t].Ctx()
		c.ThreadID = int32(t + 1)
		c.SetSchedHook(s)
	}
	for t := range ct.Threads {
		go func(t int, ops []Op) {
			defer func() {
				if r := recover(); r != nil {
					s.abort(r)
				}
			}()
			<-s.tokens[t]
			for j, op := range ops {
				s.curOp[t] = j
				var refAddr pmem.PAddr
				refOK := true
				if op.Kind == OpFree {
					switch {
					case op.Thread < 0:
						if op.Ref >= 0 && op.Ref < len(setupIdx) {
							tr := &rec.Ops[setupIdx[op.Ref]]
							refAddr, refOK = tr.Addr, !tr.Err
						} else {
							refOK = false
						}
					case op.Thread < n && op.Ref >= 0 && op.Ref < len(s.meta[op.Thread]) &&
						s.meta[op.Thread][op.Ref].RecIdx >= 0:
						tr := &rec.Ops[s.meta[op.Thread][op.Ref].RecIdx]
						refAddr, refOK = tr.Addr, !tr.Err
					default:
						// Cross-thread ref not completed under this schedule:
						// deterministic skip, not a block.
						refOK = false
					}
				}
				or := exec(threads[t], op, markerFor(racedMarkerSpace*(t+1)+j), refAddr, refOK)
				s.meta[t][j].RecIdx = len(rec.Ops)
				rec.Ops = append(rec.Ops, or)
				s.afterOp(t)
			}
			s.curOp[t] = len(ops)
			s.exit(t)
		}(t, ct.Threads[t])
	}
	s.cur = 0
	s.tokens[0] <- struct{}{}
	<-s.finish
	if s.fail != nil {
		return nil, fmt.Errorf("crashmc: conc trace %q schedule %s panicked: %v", ct.Name, sched.Key(), s.fail)
	}
	for t := range threads {
		threads[t].Ctx().SetSchedHook(nil)
	}

	rec.CloseStart = dev.JournalLen()
	for _, th := range threads {
		th.Close()
	}
	if err := h.Close(); err != nil {
		return nil, fmt.Errorf("crashmc: close %s: %w", tg.Name, err)
	}
	rec.Journal = dev.JournalSnapshot()
	rec.JournalBase = dev.JournalBase()
	rec.BaseImage = dev.JournalCheckpoint()
	return &ConcRecording{
		Recording: rec,
		Conc:      ct,
		Schedule:  sched,
		Meta:      s.meta,
		SetupIdx:  setupIdx,
		Steps:     s.step,
	}, nil
}
