package crashmc

import (
	"bytes"
	"testing"
)

// journalBytes flattens a recording's journal for byte-exact comparison.
func journalBytes(rec *Recording) []byte {
	var b bytes.Buffer
	for i := range rec.Journal {
		fd := &rec.Journal[i]
		b.Write(fd.Data[:])
		for _, v := range []uint64{fd.Line, uint64(fd.Cat), uint64(fd.Thread), uint64(int64(fd.Step))} {
			b.WriteByte(byte(v))
			b.WriteByte(byte(v >> 8))
			b.WriteByte(byte(v >> 16))
			b.WriteByte(byte(v >> 24))
		}
	}
	return b.Bytes()
}

// TestConcRecordDeterministic: the same (trace, schedule) must reproduce
// the same journal byte-for-byte — the property that makes a (seed,
// schedule key, boundary) triple a complete reproduction recipe.
func TestConcRecordDeterministic(t *testing.T) {
	tg := targetByName(t, "NVAlloc-GC")
	for _, ct := range ConcFamilies(7) {
		a, err := ConcRecord(tg, ct, Schedule{}, RecordOptions{})
		if err != nil {
			t.Fatalf("%s: %v", ct.Name, err)
		}
		b, err := ConcRecord(tg, ct, Schedule{}, RecordOptions{})
		if err != nil {
			t.Fatalf("%s: %v", ct.Name, err)
		}
		if a.Steps != b.Steps {
			t.Errorf("%s: step counts diverge: %d vs %d", ct.Name, a.Steps, b.Steps)
		}
		if !bytes.Equal(journalBytes(a.Recording), journalBytes(b.Recording)) {
			t.Errorf("%s: journals diverge across identical runs", ct.Name)
		}
	}
}

// TestPreemptScheduleDeterministic: a preemptive schedule replays
// identically too, and actually perturbs the interleaving relative to
// the round-robin baseline.
func TestPreemptScheduleDeterministic(t *testing.T) {
	tg := targetByName(t, "NVAlloc-GC")
	ct := ConcShardGC(7)
	base, err := ConcRecord(tg, ct, Schedule{}, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Split thread 0's first op with a switchable yield, running thread 1
	// through its first two ops inside the split.
	oi := -1
	for i, site := range base.Meta[0] {
		if len(site.SwitchSteps) > 0 {
			oi = i
			break
		}
	}
	if oi < 0 {
		t.Fatal("no op of t0 has a switchable yield to split at")
	}
	sched := Schedule{Preempt: &Preempt{At: base.Meta[0][oi].SwitchSteps[0], To: 1, UntilOp: 1}}
	a, err := ConcRecord(tg, ct, sched, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConcRecord(tg, ct, sched, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(journalBytes(a.Recording), journalBytes(b.Recording)) {
		t.Error("preemptive schedule is not deterministic")
	}
	if bytes.Equal(journalBytes(a.Recording), journalBytes(base.Recording)) {
		t.Error("preemptive schedule produced the baseline interleaving — preempt never fired")
	}
	// The preempt must have reordered completions: thread 1's ops 0..1
	// complete before thread 0's split op in the variant.
	if !(a.Meta[1][1].RecIdx < a.Meta[0][oi].RecIdx) {
		t.Errorf("preempt did not reorder completions: t1#1 at %d, t0#%d at %d",
			a.Meta[1][1].RecIdx, oi, a.Meta[0][oi].RecIdx)
	}
}

// TestThreadProvenance: journaled deltas inside the scheduled phase
// carry the flushing thread's ID and a schedule step.
func TestThreadProvenance(t *testing.T) {
	tg := targetByName(t, "NVAlloc-LOG")
	rec, err := ConcRecord(tg, ConcExtentRefill(3), Schedule{}, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byThread := map[int32]int{}
	for i := range rec.Journal {
		fd := &rec.Journal[i]
		byThread[fd.Thread]++
		if fd.Thread > 0 && fd.Step < 0 {
			t.Fatalf("delta %d: scheduled thread %d with no step stamp", i, fd.Thread)
		}
	}
	if byThread[1] == 0 || byThread[2] == 0 {
		t.Fatalf("expected flushes from both scheduled threads, got %v", byThread)
	}
}

// TestConcFamiliesEnumerate is the concurrent checker's core smoke: for
// each family, the DPOR enumeration must find real conflicts, prune at
// least half of the naive schedule space, and verify every explored
// schedule x boundary with zero oracle violations.
func TestConcFamiliesEnumerate(t *testing.T) {
	for _, name := range []string{"NVAlloc-GC", "NVAlloc-LOG"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tg := targetByName(t, name)
			for _, ct := range ConcFamilies(42) {
				opt := ConcOptions{Torn: true, TornSeed: 0xDECAF, MaxSchedules: 6}
				if testing.Short() {
					opt.MaxSchedules = 2
				}
				rep, err := EnumerateConc(tg, ct, opt)
				if err != nil {
					t.Fatalf("%s: %v", ct.Name, err)
				}
				t.Logf("%s", rep)
				if rep.Conflicts == 0 {
					t.Errorf("%s: no conflicting pairs found — family exercises nothing", ct.Name)
				}
				if rep.SchedulesRun == 0 {
					t.Errorf("%s: no variant schedules executed", ct.Name)
				}
				if p := rep.Pruning(); p < 0.5 {
					t.Errorf("%s: DPOR pruned only %.0f%% of naive schedule space, want >= 50%%", ct.Name, 100*p)
				}
				checkConcReport(t, rep, 42, opt.TornSeed)
			}
		})
	}
}
