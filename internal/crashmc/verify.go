package crashmc

import (
	"errors"
	"fmt"
	"runtime"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
	"nvalloc/internal/torture"
)

// Config parameterizes an enumeration run.
type Config struct {
	// From and To bound the boundary range verified, inclusive; To <= 0
	// means the last boundary. Defaults cover the whole recording.
	From, To int
	// Stride samples every Stride'th boundary (default 1: exhaustive).
	Stride int
	// MaxBoundaries caps the number of explored boundaries by raising
	// the stride (0 = no cap). Coverage drops below 100% accordingly.
	MaxBoundaries int
	// Torn additionally verifies, at every explored boundary with a
	// flush in flight, the torn-line image where only a seeded subset of
	// the in-flight line's words persisted.
	Torn bool
	// TornSeed seeds the torn-word masks.
	TornSeed uint64
	// CheckEvery runs the target's offline consistency checker
	// (torture.Target.Check) on every Nth explored boundary at or past
	// CreatedAt (0 = never). The checker opens a clone, so it sees the
	// pristine crash image.
	CheckEvery int
	// ProbeAllocs is the number of fresh allocations probed against the
	// surviving roots per boundary (default 64; < 0 disables).
	ProbeAllocs int
	// Pool executes fn(0..n-1) on a worker pool; nil runs serially. The
	// experiment engine's pool is injected here so crashmc does not
	// depend on internal/experiment.
	Pool func(n int, fn func(i int))
	// Extra, when non-nil, adds per-test invariants to every recovered
	// heap (e.g. shard-count persistence, duplicate-object walks).
	// Returned strings are violations.
	Extra func(h alloc.Heap, boundary int, torn bool) []string
}

func (cfg Config) withDefaults(rec *Recording) Config {
	last := rec.Boundaries() - 1
	if cfg.To <= 0 || cfg.To > last {
		cfg.To = last
	}
	if cfg.From < rec.JournalBase {
		// Boundaries below a checkpointed journal's fold point are no
		// longer reconstructible.
		cfg.From = rec.JournalBase
	}
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	if cfg.MaxBoundaries > 0 {
		for (cfg.To-cfg.From)/cfg.Stride+1 > cfg.MaxBoundaries {
			cfg.Stride++
		}
	}
	if cfg.ProbeAllocs == 0 {
		cfg.ProbeAllocs = 64
	}
	return cfg
}

// slotOp is one root-slot transition derived from the trace: the slot's
// value before and after the op at Ops[opIdx].
type slotOp struct {
	opIdx     int
	pre, post uint64
	marker    uint64 // post block's durable data marker (publishes only)
	size      uint64 // post block's requested size
}

// slotHistory derives every root slot's transition sequence from the
// recorded ops (failed ops leave the slot untouched).
func slotHistory(rec *Recording) map[int][]slotOp {
	hist := map[int][]slotOp{}
	cur := map[int]uint64{}
	for i, or := range rec.Ops {
		if or.Err {
			continue
		}
		switch or.Op.Kind {
		case OpMallocTo:
			s := or.Op.Slot
			hist[s] = append(hist[s], slotOp{
				opIdx: i, pre: cur[s], post: uint64(or.Addr),
				marker: or.Marker, size: or.Op.Size,
			})
			cur[s] = uint64(or.Addr)
		case OpFreeFrom:
			s := or.Op.Slot
			hist[s] = append(hist[s], slotOp{opIdx: i, pre: cur[s], post: 0})
			cur[s] = 0
		}
	}
	return hist
}

// Verify enumerates the recording's persistence boundaries per cfg and
// validates every crash image against the oracle. It is the model
// checker's core loop: reconstruct image k (incrementally, via
// pmem.ImageCursor), reopen it with the shared guarded open, and check
//
//   - boundaries before CreatedAt may be refused, but only with a typed
//     corruption error — never a panic, and never an open that then
//     fails verification;
//   - from CreatedAt on, recovery MUST succeed (clean and torn cuts are
//     intact-media crashes under the fault model);
//   - every root slot holds a legal value: the value durable at k, or —
//     when an operation's flush window straddles k — that operation's
//     pre- or post-value (recovery may roll either way, but nowhere
//     else);
//   - no two roots alias; each published block frees exactly once; a
//     durably published block still carries its data marker;
//   - fresh allocations never collide with surviving roots;
//   - space accounting stays within the recording's bounds.
func Verify(rec *Recording, cfg Config) *Report {
	cfg = cfg.withDefaults(rec)
	hist := slotHistory(rec)
	cl := newClassifier(rec)

	// The explored boundary list, partitioned into contiguous chunks:
	// each chunk advances its own image cursor forward, so the whole
	// enumeration costs one journal replay per chunk plus one image copy
	// per boundary.
	var ks []int
	for k := cfg.From; k <= cfg.To; k += cfg.Stride {
		ks = append(ks, k)
	}
	report := &Report{
		Target:     rec.Target.Name,
		Trace:      rec.Trace.Name,
		Boundaries: rec.Boundaries(),
		Classes:    map[string]int{},
		TornClasses: map[string]int{},
		Paths:      map[string]int{},
	}
	if len(ks) == 0 {
		return report
	}
	nChunk := 1
	if cfg.Pool != nil {
		if nChunk = runtime.GOMAXPROCS(0); nChunk > len(ks) {
			nChunk = len(ks)
		}
	}
	parts := make([]*Report, nChunk)
	run := func(ci int) {
		lo := ci * len(ks) / nChunk
		hi := (ci + 1) * len(ks) / nChunk
		part := &Report{
			Classes:     map[string]int{},
			TornClasses: map[string]int{},
			Paths:       map[string]int{},
		}
		var cursor *pmem.ImageCursor
		if rec.BaseImage != nil {
			cursor = pmem.NewImageCursorAt(rec.JournalBase, rec.BaseImage, rec.Journal)
		} else {
			cursor = pmem.NewImageCursor(rec.DeviceBytes, rec.Journal)
		}
		scratch := pmem.New(pmem.Config{Size: rec.DeviceBytes})
		for i := lo; i < hi; i++ {
			k := ks[i]
			cursor.Advance(k)
			class := "end-of-trace"
			if k-rec.JournalBase < len(rec.Journal) {
				class = cl.classify(&rec.Journal[k-rec.JournalBase])
			}
			part.Explored++
			part.Classes[class]++
			part.Paths[rec.phase(k)+"@"+class]++

			cursor.MaterializeInto(scratch)
			if cfg.CheckEvery > 0 && i%cfg.CheckEvery == 0 &&
				k >= rec.CreatedAt && rec.Target.Check != nil {
				part.Checks++
				for _, p := range rec.Target.Check(scratch) {
					part.addViolation(rec.violation(k, false, class, "check: "+p))
				}
				// The checker clones before opening; the image is intact.
			}
			verifyImage(rec, cfg, hist, part, scratch, k, false, class)

			if cfg.Torn && cursor.MaterializeTornInto(scratch, cfg.TornSeed) {
				part.TornExplored++
				part.TornClasses[class]++
				verifyImage(rec, cfg, hist, part, scratch, k, true, class)
			}
		}
		parts[ci] = part
	}
	if cfg.Pool == nil || nChunk == 1 {
		for ci := 0; ci < nChunk; ci++ {
			run(ci)
		}
	} else {
		cfg.Pool(nChunk, run)
	}
	for _, part := range parts {
		report.merge(part)
	}
	return report
}

// violation builds a Violation carrying full reproduction provenance:
// the schedule key the recording ran under, the in-flight line's class,
// and that line's journal delta (line number, flushing thread, schedule
// step). Together with the trace name this pins the exact crash image.
func (rec *Recording) violation(k int, torn bool, class, detail string) Violation {
	v := Violation{Boundary: k, Torn: torn, Detail: detail, Schedule: rec.Sched, Class: class}
	if j := k - rec.JournalBase; j >= 0 && j < len(rec.Journal) {
		fd := &rec.Journal[j]
		v.Line, v.Thread, v.Step = fd.Line, fd.Thread, fd.Step
	}
	return v
}

// verifyImage opens one crash image and runs every oracle check,
// appending violations to part.
func verifyImage(rec *Recording, cfg Config, hist map[int][]slotOp, part *Report, scratch *pmem.Device, k int, torn bool, class string) {
	fail := func(format string, args ...any) {
		part.addViolation(rec.violation(k, torn, class, fmt.Sprintf(format, args...)))
	}
	h2, err := torture.OpenGuarded(rec.Target, scratch)
	if err != nil {
		var pe *torture.PanicError
		if errors.As(err, &pe) {
			fail("recovery panicked: %v", pe.Value)
			return
		}
		if k < rec.CreatedAt && errors.Is(err, pmem.ErrCorrupted) {
			// The heap did not fully exist yet; a typed refusal is the
			// correct answer for a mid-create image.
			part.OpenFailures++
			return
		}
		fail("intact-media crash not recovered: %v", err)
		return
	}

	used := h2.Used()

	// Root-slot legality and the surviving live set. In a multi-threaded
	// recording several ops can straddle k at once (at most one per
	// thread); conc trace families keep a single scheduled writer per
	// slot, so each slot sees at most one of them, and legality stays the
	// per-slot two-value rule — durable value, or the straddling op's
	// pre/post. Any combination across slots is accepted: that is exactly
	// the set of linearization-consistent recovery states, since recovery
	// may roll each in-flight op forward or back independently.
	type liveBlock struct {
		slot   int
		addr   uint64
		size   uint64
		marker uint64 // assert only when the publish was fully durable
	}
	var live []liveBlock
	seen := map[uint64]int{}
	for s := 0; s < alloc.NumRootSlots; s++ {
		ops := hist[s]
		actual := scratch.ReadU64(h2.RootSlot(s))
		var durable uint64
		durableIdx := -1
		var inflight *slotOp
		for idx := range ops {
			or := &rec.Ops[ops[idx].opIdx]
			if or.FlushEnd <= k {
				durable = ops[idx].post
				durableIdx = idx
			} else {
				// A torn image at boundary k carries a partial application
				// of flush k itself, so the op whose window *starts* at k
				// is already in flight there.
				if or.FlushStart < k || (torn && or.FlushStart == k) {
					inflight = &ops[idx]
				}
				break
			}
		}
		legal := actual == durable
		if inflight != nil && (actual == inflight.pre || actual == inflight.post) {
			legal = true
		}
		if !legal {
			want := fmt.Sprintf("%#x", durable)
			if inflight != nil {
				want = fmt.Sprintf("%#x or %#x/%#x (op %d in flight)",
					durable, inflight.pre, inflight.post, inflight.opIdx)
			}
			fail("slot %d holds %#x, legal: %s", s, actual, want)
			continue
		}
		if actual == 0 {
			continue
		}
		if prev, dup := seen[actual]; dup {
			fail("slots %d and %d alias block %#x", prev, s, actual)
			continue
		}
		seen[actual] = s
		lb := liveBlock{slot: s, addr: actual}
		if inflight != nil && actual == inflight.post {
			// Rolled forward mid-publish: live, but the marker flush may
			// have been the part that was cut off.
			lb.size = inflight.size
		} else if durableIdx >= 0 && actual == durable {
			lb.size = ops[durableIdx].size
			lb.marker = ops[durableIdx].marker
		}
		live = append(live, lb)
	}

	// Durable data markers: a fully persisted publish must still carry
	// the value the application flushed into it.
	for _, lb := range live {
		if lb.marker == 0 {
			continue
		}
		if got := scratch.ReadU64(pmem.PAddr(lb.addr)); got != lb.marker {
			fail("block %#x (slot %d) lost its marker: %#x, want %#x", lb.addr, lb.slot, got, lb.marker)
		}
	}

	// Space accounting: the heap must account for every surviving
	// published byte, and recovery must not have manufactured usage far
	// beyond the recording's high-water mark (GC/IC may leak anonymous
	// blocks — leak-only — so the bound is the peak plus slack, not the
	// boundary's exact live size).
	var lower uint64
	for _, lb := range live {
		lower += lb.size
	}
	if used < lower {
		fail("Used()=%d below the %d bytes of surviving published blocks", used, lower)
	}
	if upper := rec.MaxUsed + rec.MaxUsed/2 + (2 << 20); used > upper {
		fail("Used()=%d exceeds bound %d (recorded peak %d)", used, upper, rec.MaxUsed)
	}
	if lo, ok := h2.(interface{ LeaseOverhead() uint64 }); ok {
		if v, bound := lo.LeaseOverhead(), rec.MaxLease+(4<<20); v > bound {
			fail("LeaseOverhead()=%d exceeds bound %d (recorded peak %d)", v, bound, rec.MaxLease)
		}
	}

	// Fresh allocations must not collide with surviving roots, and the
	// checker must observe no overlaps among them.
	if cfg.ProbeAllocs > 0 {
		ck := alloc.NewChecker(h2)
		th := ck.NewThread()
		for i := 0; i < cfg.ProbeAllocs; i++ {
			p, err := th.Malloc(uint64(64 + i%256))
			if err != nil {
				fail("probe alloc %d failed after recovery: %v", i, err)
				break
			}
			if s, dup := seen[uint64(p)]; dup {
				fail("published block %#x (slot %d) handed out again", p, s)
			}
		}
		for _, e := range ck.Errors() {
			fail("probe checker: %s", e)
		}
		th.Close()
	}

	// Every surviving published block must be allocated: freeing it
	// succeeds exactly once (raw thread — recovery has no record of the
	// checker's probes).
	if len(live) > 0 {
		thRaw := h2.NewThread()
		for _, lb := range live {
			if err := thRaw.Free(pmem.PAddr(lb.addr)); err != nil {
				fail("published block %#x (slot %d) not allocated after recovery: %v", lb.addr, lb.slot, err)
			}
		}
		thRaw.Close()
	}

	if cfg.Extra != nil {
		for _, p := range cfg.Extra(h2, k, torn) {
			fail("%s", p)
		}
	}
}
