package crashmc

import (
	"fmt"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
	"nvalloc/internal/torture"
)

// OpRecord is one executed trace op with everything the oracle needs:
// its result, its window of journaled flushes, and the heap's space
// accounting after it completed.
type OpRecord struct {
	Op   Op
	Addr pmem.PAddr // result of OpMalloc/OpMallocTo (0 on error or skip)
	Err  bool       // the op returned an error (or was skipped)
	// FlushStart and FlushEnd bound the op's journaled flushes: the
	// journal indices before and after the op ran. A crash boundary k
	// with FlushStart < k < FlushEnd caught this op in flight.
	FlushStart, FlushEnd int
	UsedAfter            uint64
	Marker               uint64 // data marker persisted in the block (OpMallocTo)
	Probe                uint64 // RecordOptions.Probe value after the op
}

// Recording is a fully executed, journaled trace: the raw material the
// verifier enumerates.
type Recording struct {
	Target      torture.Target
	Trace       Trace
	DeviceBytes uint64
	// Journal is the device's flush journal; boundary k is the image
	// after the first k flushes, for k in [JournalBase, JournalBase +
	// len(Journal)]. JournalBase is 0 (and BaseImage nil) unless the
	// recording ran with a checkpointed journal
	// (RecordOptions.JournalCheckpointEvery), in which case BaseImage is
	// the media image at boundary JournalBase and earlier boundaries are
	// no longer enumerable.
	Journal     []pmem.FlushDelta
	JournalBase int
	BaseImage   []byte
	// Sched is the schedule key the recording was made under ("" for
	// single-threaded recordings, "rr"/"rr+p@..." for ConcRecord ones).
	// Non-empty Sched means op flush windows may overlap: ops are in
	// completion order (FlushEnd nondecreasing), not trace order.
	Sched string
	// CreatedAt is the boundary at which Create had fully returned:
	// before it, recovery may refuse the image (typed error); from it
	// on, every boundary MUST recover.
	CreatedAt int
	// CloseStart is the boundary at which heap shutdown (thread drains
	// plus Close) began.
	CloseStart int
	Ops        []OpRecord
	MaxUsed    uint64
	MaxLease   uint64
	// Dev is the recording device after a clean shutdown (its cache and
	// media images agree); classification reads layout fields from it.
	Dev *pmem.Device
}

// Boundaries returns the number of persistence boundaries in the
// recording (every k in [JournalBase, Boundaries()) is a valid crash
// point, where Boundaries()-1 is the fully flushed final image).
func (r *Recording) Boundaries() int { return r.JournalBase + len(r.Journal) + 1 }

// RecordOptions parameterizes Record.
type RecordOptions struct {
	// DeviceBytes sizes the device (default DefaultDeviceBytes).
	DeviceBytes uint64
	// Probe, when non-nil, is sampled after every op (e.g. a morph
	// counter, to locate the op that triggered a structure transition).
	Probe func(h alloc.Heap) uint64
	// JournalCheckpointEvery, when > 0, records on a checkpointed journal
	// (pmem.Config.JournalCheckpointEvery): journal memory stays bounded
	// for long traces, at the cost of losing boundaries below the fold
	// point (Recording.JournalBase).
	JournalCheckpointEvery int
}

// markerFor derives the data marker written into the block published by
// trace op i. The value is far outside any device address range, so a
// conservative scan can never mistake it for a heap pointer.
func markerFor(i int) uint64 { return 0xC0FFEE0000000000 | uint64(i+1) }

// Record executes tr against a fresh heap of tg on a journaled strict
// device and captures the flush journal plus per-op windows. The trace
// runs on a single goroutine (thread handles are used serially), so the
// journal — and therefore every enumerated crash image — is
// deterministic.
func Record(tg torture.Target, tr Trace, opts RecordOptions) (*Recording, error) {
	if opts.DeviceBytes == 0 {
		opts.DeviceBytes = DefaultDeviceBytes
	}
	dev := pmem.New(pmem.Config{
		Size: opts.DeviceBytes, Strict: true, Journal: true,
		JournalCheckpointEvery: opts.JournalCheckpointEvery,
	})
	h, err := tg.Create(dev)
	if err != nil {
		return nil, fmt.Errorf("crashmc: create %s: %w", tg.Name, err)
	}
	rec := &Recording{
		Target:      tg,
		Trace:       tr,
		DeviceBytes: opts.DeviceBytes,
		CreatedAt:   dev.JournalLen(),
		Ops:         make([]OpRecord, 0, len(tr.Ops)),
		Dev:         dev,
	}
	nThreads := tr.Threads
	if nThreads < 1 {
		nThreads = 1
	}
	threads := make([]alloc.Thread, nThreads)
	thread := func(i int) alloc.Thread {
		if threads[i] == nil {
			threads[i] = h.NewThread()
		}
		return threads[i]
	}

	for i, op := range tr.Ops {
		if op.Thread < 0 || op.Thread >= nThreads {
			return nil, fmt.Errorf("crashmc: op %d: thread %d out of range", i, op.Thread)
		}
		or := OpRecord{Op: op, FlushStart: dev.JournalLen()}
		th := thread(op.Thread)
		switch op.Kind {
		case OpMalloc:
			a, err := th.Malloc(op.Size)
			or.Addr, or.Err = a, err != nil
		case OpFree:
			if op.Ref < 0 || op.Ref >= i {
				return nil, fmt.Errorf("crashmc: op %d: bad free ref %d", i, op.Ref)
			}
			target := rec.Ops[op.Ref]
			if target.Err || target.Addr == 0 {
				or.Err = true // the alloc failed; nothing to free
				break
			}
			or.Addr = target.Addr
			or.Err = th.Free(target.Addr) != nil
		case OpMallocTo:
			slot := h.RootSlot(op.Slot)
			a, err := th.MallocTo(slot, op.Size)
			or.Addr, or.Err = a, err != nil
			if err == nil {
				// Persist a data marker as part of the op window: if the
				// publish and this flush are both durable at a boundary,
				// the recovered block must still carry the marker.
				or.Marker = markerFor(i)
				dev.WriteU64(a, or.Marker)
				c := th.Ctx()
				c.Flush(pmem.CatOther, a, 8)
				c.Fence()
			}
		case OpFreeFrom:
			or.Err = th.FreeFrom(h.RootSlot(op.Slot)) != nil
		case OpFlush:
			if f, ok := th.(alloc.Flusher); ok {
				f.Flush()
			}
		default:
			return nil, fmt.Errorf("crashmc: op %d: unknown kind %v", i, op.Kind)
		}
		or.FlushEnd = dev.JournalLen()
		or.UsedAfter = h.Used()
		if or.UsedAfter > rec.MaxUsed {
			rec.MaxUsed = or.UsedAfter
		}
		if lo, ok := h.(interface{ LeaseOverhead() uint64 }); ok {
			if v := lo.LeaseOverhead(); v > rec.MaxLease {
				rec.MaxLease = v
			}
		}
		if opts.Probe != nil {
			or.Probe = opts.Probe(h)
		}
		rec.Ops = append(rec.Ops, or)
	}

	rec.CloseStart = dev.JournalLen()
	for _, th := range threads {
		if th != nil {
			th.Close()
		}
	}
	if err := h.Close(); err != nil {
		return nil, fmt.Errorf("crashmc: close %s: %w", tg.Name, err)
	}
	rec.Journal = dev.JournalSnapshot()
	rec.JournalBase = dev.JournalBase()
	rec.BaseImage = dev.JournalCheckpoint()
	return rec, nil
}
