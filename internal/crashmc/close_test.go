package crashmc

import "testing"

// TestCloseCheckpointWitnessErasure pins the cross-arena close-window
// bug the concurrent families first exposed: Close checkpoints WAL
// rings one arena at a time, and replaying the survivors of a partial
// truncation used to free a block whose republication witness (the
// OpMallocTo for the same recycled address, in another arena's ring)
// had already been checkpointed away — recovery dangled a live root.
// The trace forces the exact shape: arena 1 retracts an extent, arena 0
// reuses its address for a new publish, and the sweep crosses every
// close-phase boundary between the two rings' checkpoints. The fix
// seals stateClosing before the first checkpoint so recovery retires
// surviving entries unapplied.
func TestCloseCheckpointWitnessErasure(t *testing.T) {
	tr := Trace{Name: "close-witness-reuse", Threads: 2}
	for s := 0; s < 6; s++ {
		tr.Ops = append(tr.Ops, Op{Kind: OpMallocTo, Slot: s, Size: 128 << 10})
	}
	tr.Ops = append(tr.Ops,
		// Arena 1 retracts slot 0; arena 0's next large publish recycles
		// the freed extent's address into slot 11.
		Op{Kind: OpFreeFrom, Thread: 1, Slot: 0},
		Op{Kind: OpMalloc, Thread: 0, Size: 170},
		Op{Kind: OpMallocTo, Thread: 0, Slot: 11, Size: 104 << 10},
		Op{Kind: OpFreeFrom, Thread: 1, Slot: 1},
		Op{Kind: OpMallocTo, Thread: 0, Slot: 12, Size: 149 << 10},
		Op{Kind: OpFreeFrom, Thread: 1, Slot: 2},
		Op{Kind: OpFreeFrom, Thread: 1, Slot: 3},
	)
	for _, name := range []string{"NVAlloc-LOG", "NVAlloc-GC"} {
		t.Run(name, func(t *testing.T) {
			rec, err := Record(targetByName(t, name), tr, RecordOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rep := Verify(rec, Config{Torn: true, TornSeed: 0xDECAF})
			checkReport(t, rec, rep, 0, 0xDECAF)
		})
	}
}
