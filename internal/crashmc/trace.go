package crashmc

import "fmt"

// OpKind identifies one trace operation.
type OpKind int

const (
	// OpMalloc is an anonymous allocation (crash-safe only once
	// published; GC/IC variants may leak it).
	OpMalloc OpKind = iota
	// OpFree releases the block allocated by the trace op at index Ref.
	OpFree
	// OpMallocTo atomically allocates and publishes into root slot Slot,
	// then writes and flushes a data marker into the block.
	OpMallocTo
	// OpFreeFrom atomically frees the block published in root slot Slot.
	OpFreeFrom
	// OpFlush drains the thread's deferred buffers (batched remote
	// frees), making every acknowledged operation durable.
	OpFlush
)

func (k OpKind) String() string {
	switch k {
	case OpMalloc:
		return "malloc"
	case OpFree:
		return "free"
	case OpMallocTo:
		return "malloc_to"
	case OpFreeFrom:
		return "free_from"
	case OpFlush:
		return "flush"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation of a trace. Ops execute serially, in order, on the
// thread handle named by Thread — multiple handles (bound to different
// arenas) make cross-arena paths like buffered remote frees reachable
// from a deterministic single-goroutine trace.
type Op struct {
	Kind   OpKind
	Thread int    // thread-handle index, < Trace.Threads
	Slot   int    // root-slot index (OpMallocTo / OpFreeFrom)
	Size   uint64 // request bytes (OpMalloc / OpMallocTo)
	Ref    int    // OpFree: index of the OpMalloc being freed
}

// Trace is a deterministic operation sequence over one allocator.
type Trace struct {
	Name    string
	Threads int
	Ops     []Op
}

// splitmix64 mirrors the device's deterministic mixer so trace
// generation is reproducible from a seed.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// SmokeTrace is the model checker's canonical mixed trace: root
// publishes with data markers, seeded anonymous churn, republish cycles,
// large extent allocations (bookkeeping-log traffic, and with the smoke
// targets' low GC threshold, incremental slow-GC steps), and a
// cross-arena remote-free batch drained by an explicit flush. It is
// deliberately small: its value is that *every* persistence boundary it
// crosses gets verified.
func SmokeTrace(seed uint64) Trace {
	rng := splitmix64(seed)
	tr := Trace{Name: "smoke", Threads: 2}
	add := func(op Op) int {
		tr.Ops = append(tr.Ops, op)
		return len(tr.Ops) - 1
	}
	sizes := []uint64{64, 112, 256, 768, 2048}

	// Publish roots 0..15 with markers.
	for s := 0; s < 16; s++ {
		add(Op{Kind: OpMallocTo, Slot: s, Size: sizes[s%len(sizes)]})
	}
	// Seeded anonymous churn.
	var live []int
	for i := 0; i < 80; i++ {
		if len(live) == 0 || rng.next()%100 < 60 {
			live = append(live, add(Op{Kind: OpMalloc, Size: 64 + rng.next()%960}))
		} else {
			j := int(rng.next() % uint64(len(live)))
			add(Op{Kind: OpFree, Ref: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Republish a few roots (FreeFrom then MallocTo on the same slot).
	for s := 0; s < 6; s++ {
		add(Op{Kind: OpFreeFrom, Slot: s})
		add(Op{Kind: OpMallocTo, Slot: s, Size: sizes[(s+2)%len(sizes)]})
	}
	// Large extents: published and churned, driving the bookkeeping log
	// (and its slow GC, given the smoke targets' low threshold).
	add(Op{Kind: OpMallocTo, Slot: 30, Size: 64 << 10})
	add(Op{Kind: OpMallocTo, Slot: 31, Size: 96 << 10})
	add(Op{Kind: OpFreeFrom, Slot: 30})
	add(Op{Kind: OpMallocTo, Slot: 30, Size: 128 << 10})
	for i := 0; i < 8; i++ {
		r := add(Op{Kind: OpMalloc, Size: 64 << 10})
		add(Op{Kind: OpFree, Ref: r})
	}
	// Remote frees: thread 0 allocates, thread 1 (second arena) frees —
	// buffered — then drains explicitly.
	var remote []int
	for i := 0; i < 20; i++ {
		remote = append(remote, add(Op{Kind: OpMalloc, Size: 256}))
	}
	for _, r := range remote {
		add(Op{Kind: OpFree, Thread: 1, Ref: r})
	}
	add(Op{Kind: OpFlush, Thread: 1})
	// Tail publishes: boundaries right before shutdown.
	for s := 40; s < 44; s++ {
		add(Op{Kind: OpMallocTo, Slot: s, Size: sizes[s%len(sizes)]})
	}
	return tr
}

// WorkloadTrace generates a seeded random operation mix of length n over
// two thread handles: the fuzzing front end of the model checker. Every
// trace it returns is valid (slots publish-before-free, blocks free at
// most once) for any seed.
func WorkloadTrace(seed uint64, n int) Trace {
	rng := splitmix64(seed)
	tr := Trace{Name: fmt.Sprintf("workload-%#x", seed), Threads: 2}
	add := func(op Op) int {
		tr.Ops = append(tr.Ops, op)
		return len(tr.Ops) - 1
	}
	const slots = 24
	occupied := make([]bool, slots)
	var live []int
	for i := 0; i < n; i++ {
		th := int(rng.next() % 2)
		switch rng.next() % 10 {
		case 0, 1, 2: // publish a free slot
			s := int(rng.next() % slots)
			for j := 0; j < slots && occupied[s]; j++ {
				s = (s + 1) % slots
			}
			if occupied[s] {
				break
			}
			size := 64 + rng.next()%2000
			if rng.next()%16 == 0 {
				size = 64 << 10
			}
			add(Op{Kind: OpMallocTo, Thread: th, Slot: s, Size: size})
			occupied[s] = true
		case 3: // unpublish an occupied slot
			s := int(rng.next() % slots)
			for j := 0; j < slots && !occupied[s]; j++ {
				s = (s + 1) % slots
			}
			if !occupied[s] {
				break
			}
			add(Op{Kind: OpFreeFrom, Thread: th, Slot: s})
			occupied[s] = false
		case 4, 5, 6: // anonymous allocation
			live = append(live, add(Op{Kind: OpMalloc, Thread: th, Size: 64 + rng.next()%960}))
		case 7, 8: // free a live anonymous block, possibly cross-arena
			if len(live) == 0 {
				break
			}
			j := int(rng.next() % uint64(len(live)))
			add(Op{Kind: OpFree, Thread: th, Ref: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		case 9:
			add(Op{Kind: OpFlush, Thread: th})
		}
	}
	return tr
}
