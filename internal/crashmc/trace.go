package crashmc

import "fmt"

// OpKind identifies one trace operation.
type OpKind int

const (
	// OpMalloc is an anonymous allocation (crash-safe only once
	// published; GC/IC variants may leak it).
	OpMalloc OpKind = iota
	// OpFree releases the block allocated by the trace op at index Ref.
	OpFree
	// OpMallocTo atomically allocates and publishes into root slot Slot,
	// then writes and flushes a data marker into the block.
	OpMallocTo
	// OpFreeFrom atomically frees the block published in root slot Slot.
	OpFreeFrom
	// OpFlush drains the thread's deferred buffers (batched remote
	// frees), making every acknowledged operation durable.
	OpFlush
)

func (k OpKind) String() string {
	switch k {
	case OpMalloc:
		return "malloc"
	case OpFree:
		return "free"
	case OpMallocTo:
		return "malloc_to"
	case OpFreeFrom:
		return "free_from"
	case OpFlush:
		return "flush"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation of a trace. Ops execute serially, in order, on the
// thread handle named by Thread — multiple handles (bound to different
// arenas) make cross-arena paths like buffered remote frees reachable
// from a deterministic single-goroutine trace.
type Op struct {
	Kind   OpKind
	Thread int    // thread-handle index, < Trace.Threads
	Slot   int    // root-slot index (OpMallocTo / OpFreeFrom)
	Size   uint64 // request bytes (OpMalloc / OpMallocTo)
	Ref    int    // OpFree: index of the OpMalloc being freed
}

// Trace is a deterministic operation sequence over one allocator.
type Trace struct {
	Name    string
	Threads int
	Ops     []Op
}

// splitmix64 mirrors the device's deterministic mixer so trace
// generation is reproducible from a seed.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// SmokeTrace is the model checker's canonical mixed trace: root
// publishes with data markers, seeded anonymous churn, republish cycles,
// large extent allocations (bookkeeping-log traffic, and with the smoke
// targets' low GC threshold, incremental slow-GC steps), and a
// cross-arena remote-free batch drained by an explicit flush. It is
// deliberately small: its value is that *every* persistence boundary it
// crosses gets verified.
func SmokeTrace(seed uint64) Trace {
	rng := splitmix64(seed)
	tr := Trace{Name: "smoke", Threads: 2}
	add := func(op Op) int {
		tr.Ops = append(tr.Ops, op)
		return len(tr.Ops) - 1
	}
	sizes := []uint64{64, 112, 256, 768, 2048}

	// Publish roots 0..15 with markers.
	for s := 0; s < 16; s++ {
		add(Op{Kind: OpMallocTo, Slot: s, Size: sizes[s%len(sizes)]})
	}
	// Seeded anonymous churn.
	var live []int
	for i := 0; i < 80; i++ {
		if len(live) == 0 || rng.next()%100 < 60 {
			live = append(live, add(Op{Kind: OpMalloc, Size: 64 + rng.next()%960}))
		} else {
			j := int(rng.next() % uint64(len(live)))
			add(Op{Kind: OpFree, Ref: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Republish a few roots (FreeFrom then MallocTo on the same slot).
	for s := 0; s < 6; s++ {
		add(Op{Kind: OpFreeFrom, Slot: s})
		add(Op{Kind: OpMallocTo, Slot: s, Size: sizes[(s+2)%len(sizes)]})
	}
	// Large extents: published and churned, driving the bookkeeping log
	// (and its slow GC, given the smoke targets' low threshold).
	add(Op{Kind: OpMallocTo, Slot: 30, Size: 64 << 10})
	add(Op{Kind: OpMallocTo, Slot: 31, Size: 96 << 10})
	add(Op{Kind: OpFreeFrom, Slot: 30})
	add(Op{Kind: OpMallocTo, Slot: 30, Size: 128 << 10})
	for i := 0; i < 8; i++ {
		r := add(Op{Kind: OpMalloc, Size: 64 << 10})
		add(Op{Kind: OpFree, Ref: r})
	}
	// Remote frees: thread 0 allocates, thread 1 (second arena) frees —
	// buffered — then drains explicitly.
	var remote []int
	for i := 0; i < 20; i++ {
		remote = append(remote, add(Op{Kind: OpMalloc, Size: 256}))
	}
	for _, r := range remote {
		add(Op{Kind: OpFree, Thread: 1, Ref: r})
	}
	add(Op{Kind: OpFlush, Thread: 1})
	// Tail publishes: boundaries right before shutdown.
	for s := 40; s < 44; s++ {
		add(Op{Kind: OpMallocTo, Slot: s, Size: sizes[s%len(sizes)]})
	}
	return tr
}

// FenceElisionTrace is the trace family dedicated to the LOG variant's
// merged post-commit fences. The hot paths close a WAL-entry flush and
// the bitmap-bit flush it covers with ONE trailing fence instead of two
// (mallocSmall, freeSmall), and the remote-free drain closes a whole
// batch of entry flushes plus bit clears with a single fence. Each
// elision widens the window in which a crash can separate the entry from
// its bit — safe only because durability still follows flush order and
// replay is idempotent — so this family concentrates boundaries inside
// exactly those windows:
//
//   - cold-start and post-exhaustion mallocs drive the refill path,
//     whose first block's WAL append + bitmap commit share the refill's
//     single fence (fillAndCommit);
//   - steady-state malloc/free churn in several size classes lands
//     boundaries between every {entry flush, bit flush, fence} triple,
//     across distinct bitmap stripes;
//   - tcache overflow runs the magazine eviction (fence-free by design:
//     pure reservation movement) followed by more merged-fence frees;
//   - a cross-arena free burst one short of the auto-drain threshold,
//     then one past it, then an explicit flush, brackets the batched
//     drain (one fence for up to 16 entries + clears) at both ends;
//   - root republishes interleave so the oracle tracks surviving
//     publishes across every window.
//
// Verified with Config.Torn, every boundary also gets torn variants of
// the in-flight line, so partially persisted WAL entries (wal-entry) and
// bitmap words (bitmap-stripe) are both recovered from, not just clean
// prefixes.
func FenceElisionTrace(seed uint64) Trace {
	rng := splitmix64(seed)
	tr := Trace{Name: "fence-elision", Threads: 2}
	add := func(op Op) int {
		tr.Ops = append(tr.Ops, op)
		return len(tr.Ops) - 1
	}
	// Three small classes spread commits across bitmap stripes and slab
	// geometries without inflating the boundary count.
	sizes := []uint64{64, 192, 512}

	// Roots first: the oracle needs durable publishes on both threads
	// before churn starts (thread 1 binds the second arena).
	for s := 0; s < 4; s++ {
		add(Op{Kind: OpMallocTo, Thread: s % 2, Slot: s, Size: sizes[s%len(sizes)]})
	}

	// Cold refills + steady churn: the first malloc of each class runs
	// fillAndCommit; the rest exercise the per-op merged fence. Frees of
	// every third block put merged-fence frees (and, past tcache
	// capacity, magazine evictions) between the mallocs.
	var live []int
	for i := 0; i < 36; i++ {
		live = append(live, add(Op{Kind: OpMalloc, Size: sizes[i%len(sizes)]}))
		if i%3 == 2 {
			j := int(rng.next() % uint64(len(live)))
			add(Op{Kind: OpFree, Ref: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}

	// Republish under churn: root-slot windows interleaved with the
	// merged-fence windows above.
	for s := 0; s < 2; s++ {
		add(Op{Kind: OpFreeFrom, Slot: s})
		add(Op{Kind: OpMallocTo, Slot: s, Size: sizes[(s+1)%len(sizes)]})
	}

	// Cross-arena frees from thread 1: 15 buffered (one short of the
	// drain batch), a 16th that trips the automatic drain mid-trace, a
	// few more, then an explicit flush draining the remainder. Two drain
	// windows, each a WAL batch + bit-clear batch under one fence.
	var remote []int
	for i := 0; i < 20; i++ {
		remote = append(remote, add(Op{Kind: OpMalloc, Size: 64}))
	}
	for _, r := range remote {
		add(Op{Kind: OpFree, Thread: 1, Ref: r})
	}
	add(Op{Kind: OpFlush, Thread: 1})

	// Drain the per-class tcaches back through the merged-fence free path
	// so close-time boundaries still sit inside elision windows.
	for _, r := range live {
		add(Op{Kind: OpFree, Ref: r})
	}
	// Tail publish: a durable root right before shutdown.
	add(Op{Kind: OpMallocTo, Slot: 8, Size: 256})
	return tr
}

// WorkloadTrace generates a seeded random operation mix of length n over
// two thread handles: the fuzzing front end of the model checker. Every
// trace it returns is valid (slots publish-before-free, blocks free at
// most once) for any seed.
func WorkloadTrace(seed uint64, n int) Trace {
	rng := splitmix64(seed)
	tr := Trace{Name: fmt.Sprintf("workload-%#x", seed), Threads: 2}
	add := func(op Op) int {
		tr.Ops = append(tr.Ops, op)
		return len(tr.Ops) - 1
	}
	const slots = 24
	occupied := make([]bool, slots)
	var live []int
	for i := 0; i < n; i++ {
		th := int(rng.next() % 2)
		switch rng.next() % 10 {
		case 0, 1, 2: // publish a free slot
			s := int(rng.next() % slots)
			for j := 0; j < slots && occupied[s]; j++ {
				s = (s + 1) % slots
			}
			if occupied[s] {
				break
			}
			size := 64 + rng.next()%2000
			if rng.next()%16 == 0 {
				size = 64 << 10
			}
			add(Op{Kind: OpMallocTo, Thread: th, Slot: s, Size: size})
			occupied[s] = true
		case 3: // unpublish an occupied slot
			s := int(rng.next() % slots)
			for j := 0; j < slots && !occupied[s]; j++ {
				s = (s + 1) % slots
			}
			if !occupied[s] {
				break
			}
			add(Op{Kind: OpFreeFrom, Thread: th, Slot: s})
			occupied[s] = false
		case 4, 5, 6: // anonymous allocation
			live = append(live, add(Op{Kind: OpMalloc, Thread: th, Size: 64 + rng.next()%960}))
		case 7, 8: // free a live anonymous block, possibly cross-arena
			if len(live) == 0 {
				break
			}
			j := int(rng.next() % uint64(len(live)))
			add(Op{Kind: OpFree, Thread: th, Ref: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		case 9:
			add(Op{Kind: OpFlush, Thread: th})
		}
	}
	return tr
}
