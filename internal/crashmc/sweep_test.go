package crashmc

import (
	"errors"
	"fmt"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
	"nvalloc/internal/torture"
)

func targetByName(t *testing.T, name string) torture.Target {
	t.Helper()
	for _, tg := range Targets() {
		if tg.Name == name {
			return tg
		}
	}
	t.Fatalf("no target %q", name)
	return torture.Target{}
}

// sweepTrace mirrors the retired internal/core crashWorkload mix —
// publish, retract, anonymous churn, periodic large publications — as a
// deterministic trace. Where the old sweeps sampled ~10 hand-picked cut
// points of this workload, the model checker verifies every boundary.
func sweepTrace(n int) Trace {
	tr := Trace{Name: "sweep", Threads: 1}
	sizes := []uint64{64, 96, 160, 224, 288}
	slot := 0
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0, 1:
			tr.Ops = append(tr.Ops, Op{Kind: OpMallocTo, Slot: slot % alloc.NumRootSlots,
				Size: sizes[i%len(sizes)]})
			slot++
		case 2:
			tr.Ops = append(tr.Ops, Op{Kind: OpFreeFrom, Slot: (slot + 3) % alloc.NumRootSlots})
		case 3:
			tr.Ops = append(tr.Ops, Op{Kind: OpMalloc, Size: 128})
		case 4:
			if i%25 == 4 {
				tr.Ops = append(tr.Ops, Op{Kind: OpMallocTo, Slot: slot % alloc.NumRootSlots, Size: 64 << 10})
				slot++
			}
		}
	}
	return tr
}

// icDuplicateCheck walks the internal collection and reports duplicate
// object addresses: the IC-specific invariant from the retired core
// sweep.
func icDuplicateCheck(h alloc.Heap, boundary int, torn bool) []string {
	ch, ok := h.(*core.Heap)
	if !ok {
		return []string{"not a core.Heap"}
	}
	var probs []string
	seen := map[pmem.PAddr]bool{}
	ch.Objects(func(o core.Object) bool {
		if seen[o.Addr] {
			probs = append(probs, fmt.Sprintf("duplicate object %#x in collection", o.Addr))
			return false
		}
		seen[o.Addr] = true
		return true
	})
	return probs
}

// TestCrashSweepVariants is the crashmc port of the retired
// TestCrashSweepLOG/GC/IC: the same workload shape, but every flush
// boundary (and its torn variant) verified instead of a sampled sweep,
// with the shared oracle replacing the hand-rolled recovery checks. IC
// additionally walks its collection for duplicates at every boundary.
func TestCrashSweepVariants(t *testing.T) {
	for _, name := range []string{"NVAlloc-LOG", "NVAlloc-GC", "NVAlloc-IC"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rec, err := Record(targetByName(t, name), sweepTrace(400), RecordOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Torn: true, TornSeed: 7, CheckEvery: 100}
			if name == "NVAlloc-IC" {
				cfg.Extra = icDuplicateCheck
			}
			if testing.Short() {
				cfg.MaxBoundaries = 100
			}
			rep := Verify(rec, cfg)
			t.Logf("%s", rep)
			checkReport(t, rec, rep, 400, cfg.TornSeed)
		})
	}
}

// shardedTrace drives interleaved large publications and retractions
// from four thread handles, so bookkeeping records stream into many blog
// shards and a boundary can land with any subset of shards mid-append.
func shardedTrace(rounds int) Trace {
	tr := Trace{Name: "sharded", Threads: 4}
	slots := alloc.NumRootSlots / 4
	pub := make([]int, 4)
	for r := 0; r < rounds; r++ {
		for w := 0; w < 4; w++ {
			base := w * slots
			if r%3 == 2 {
				tr.Ops = append(tr.Ops, Op{Kind: OpFreeFrom, Thread: w,
					Slot: base + (pub[w]+1)%slots})
				continue
			}
			tr.Ops = append(tr.Ops, Op{Kind: OpMallocTo, Thread: w,
				Slot: base + pub[w]%slots, Size: uint64(32<<10 + r%8*(16<<10))})
			pub[w]++
		}
	}
	return tr
}

// TestCrashSweepShardedBookkeeping ports the retired sharded-bookkeeping
// sweep: four handles publish and retract large extents across eight
// blog shards, and at every boundary the reopened heap must have merged
// the shard prefixes consistently — with the shard count taken from the
// superblock, not the (default) open options.
func TestCrashSweepShardedBookkeeping(t *testing.T) {
	tg := TargetOpts("NVAlloc-LOG", func() core.Options {
		opts := core.DefaultOptions(core.LOG)
		opts.Arenas = 4
		opts.BookShards = 8
		opts.BlogGCThreshold = SmokeGCThreshold
		return opts
	})
	rec, err := Record(tg, shardedTrace(15), RecordOptions{DeviceBytes: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Torn: true, TornSeed: 11, CheckEvery: 64,
		Extra: func(h alloc.Heap, boundary int, torn bool) []string {
			ch, ok := h.(*core.Heap)
			if !ok {
				return []string{"not a core.Heap"}
			}
			if got := ch.Blog().NumShards(); got != 8 {
				return []string{fmt.Sprintf("reopened with %d blog shards, want persisted 8", got)}
			}
			return nil
		},
	}
	if testing.Short() {
		cfg.MaxBoundaries = 100
	}
	rep := Verify(rec, cfg)
	t.Logf("%s", rep)
	checkReport(t, rec, rep, 15, cfg.TornSeed)
}

// shardsTrace is the shard-heavy mix from the retired extent-cache crash
// sweep: 40–480 KiB publications cycling a small slot window (with
// overwrites), so shard-pool leases and their dissolution cross
// boundaries.
func shardsTrace(n int) Trace {
	tr := Trace{Name: "shards", Threads: 1}
	slot := 0
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0, 1:
			tr.Ops = append(tr.Ops, Op{Kind: OpMallocTo, Slot: slot % 16,
				Size: uint64(40<<10 + (i%12)*(36<<10))})
			slot++
		case 2:
			tr.Ops = append(tr.Ops, Op{Kind: OpFreeFrom, Slot: (slot + 5) % 16})
		}
	}
	return tr
}

// TestCrashSweepShards ports the retired core TestCrashSweepShards:
// every boundary of a shard-heavy workload must recover with
// acknowledged publications surviving as ordinary extents, leases
// dissolved, and allocation overlap-free.
func TestCrashSweepShards(t *testing.T) {
	rec, err := Record(targetByName(t, "NVAlloc-LOG"), shardsTrace(60),
		RecordOptions{DeviceBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Torn: true, TornSeed: 5, CheckEvery: 64}
	if testing.Short() {
		cfg.MaxBoundaries = 80
	}
	rep := Verify(rec, cfg)
	t.Logf("%s", rep)
	checkReport(t, rec, rep, 60, cfg.TornSeed)
}

// TestDoubleCrashDuringRecovery ports the retired double-crash test to
// journal checkpoints: materialize a mid-workload crash image on a
// strict device, cut power again a few flushes into recovery itself, and
// require the second recovery to converge (the paper's recovery flag).
func TestDoubleCrashDuringRecovery(t *testing.T) {
	for _, name := range []string{"NVAlloc-LOG", "NVAlloc-GC", "NVAlloc-IC"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tg := targetByName(t, name)
			rec, err := Record(tg, sweepTrace(400), RecordOptions{})
			if err != nil {
				t.Fatal(err)
			}
			k := 2 * len(rec.Journal) / 3
			cursor := pmem.NewImageCursor(rec.DeviceBytes, rec.Journal)
			cursor.Advance(k)
			for _, j := range []int64{1, 5, 25, 125} {
				scratch := pmem.New(pmem.Config{Size: rec.DeviceBytes, Strict: true})
				cursor.MaterializeInto(scratch)
				scratch.CrashAfterFlushes(j)
				if _, err := torture.OpenGuarded(tg, scratch); err != nil {
					var pe *torture.PanicError
					if errors.As(err, &pe) {
						t.Fatalf("j=%d: interrupted recovery panicked: %v", j, pe.Value)
					}
					// A typed failure is fine; the image is still intact.
				}
				scratch.Crash()
				h2, err := torture.OpenGuarded(tg, scratch)
				if err != nil {
					t.Fatalf("j=%d: second recovery failed: %v", j, err)
				}
				// The twice-recovered heap must be fully functional.
				ck := alloc.NewChecker(h2)
				th := ck.NewThread()
				for i := 0; i < 64; i++ {
					if _, err := th.Malloc(uint64(64 + i%256)); err != nil {
						t.Fatalf("j=%d: alloc after double recovery: %v", j, err)
					}
				}
				th.Close()
				if errs := ck.Errors(); len(errs) != 0 {
					t.Fatalf("j=%d: invariant violations: %v", j, errs)
				}
			}
		})
	}
}

// TestRemoteFreeCrashMidDrainRecoversPrefix ports the retired core test:
// thread 1 frees thread 0's blocks cross-arena (buffered, batch-drained),
// and at every boundary inside the drain window the applied frees must
// form a prefix of the acknowledged free order. Probe allocations are
// disabled — they could legitimately reuse an applied-free's block and
// fake a lost free.
func TestRemoteFreeCrashMidDrainRecoversPrefix(t *testing.T) {
	const K = 48
	tr := Trace{Name: "remotefree", Threads: 2}
	for i := 0; i < K; i++ {
		tr.Ops = append(tr.Ops, Op{Kind: OpMalloc, Size: 256})
	}
	for i := 0; i < K; i++ {
		tr.Ops = append(tr.Ops, Op{Kind: OpFree, Thread: 1, Ref: i})
	}
	tr.Ops = append(tr.Ops, Op{Kind: OpFlush, Thread: 1})

	rec, err := Record(targetByName(t, "NVAlloc-LOG"), tr, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]pmem.PAddr, 0, K)
	for _, or := range rec.Ops[:K] {
		if or.Err {
			t.Fatalf("setup alloc failed")
		}
		addrs = append(addrs, or.Addr)
	}
	cfg := Config{
		From: rec.Ops[K].FlushStart, To: rec.Ops[2*K].FlushEnd,
		Torn: true, TornSeed: 3,
		ProbeAllocs: -1,
		Extra: func(h alloc.Heap, boundary int, torn bool) []string {
			ch := h.(*core.Heap)
			lost := -1
			for i, a := range addrs {
				if ch.BlockAllocated(a) {
					// Block still allocated: the acknowledged free was lost.
					if lost < 0 {
						lost = i
					}
				} else if lost >= 0 {
					return []string{fmt.Sprintf(
						"free %d applied but earlier free %d lost (not a prefix)", i, lost)}
				}
			}
			return nil
		},
	}
	if testing.Short() {
		cfg.MaxBoundaries = 80
	}
	rep := Verify(rec, cfg)
	t.Logf("%s", rep)
	checkReport(t, rec, rep, 0, cfg.TornSeed)
}
