// Package torture drives every allocator in the repository through
// programmable fault plans — clean power cuts, torn cache lines and
// metadata bit flips — and classifies what recovery does with the
// damage. It promotes the crash-sweep test logic from internal/core
// into a reusable harness shared by `go test` and `nvbench -exp
// torture`.
//
// The contract it enforces is the fault model's (DESIGN.md §7):
//
//   - A crash with intact media (clean or torn cut) MUST recover into a
//     consistent heap. Every persisted structure is designed to survive
//     an arbitrary persistence boundary.
//   - Flipped metadata bits MAY be unrecoverable, but then they MUST be
//     detected: recovery returns a typed corruption error. Opening
//     silently into an inconsistent heap — or panicking — is a bug.
package torture

import (
	"errors"
	"fmt"
	"strings"

	"nvalloc/internal/alloc"
	"nvalloc/internal/baseline"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

// Kind selects the fault class of a Plan.
type Kind int

const (
	// CleanCut loses power at a flush boundary; every line is either
	// fully persisted or untouched.
	CleanCut Kind = iota
	// TornCut loses power mid-flush: the triggering 64-byte line
	// persists only a seeded subset of its eight words.
	TornCut
	// BitFlip additionally flips seeded bits in persisted metadata
	// lines at crash time, modelling media corruption.
	BitFlip
)

func (k Kind) String() string {
	switch k {
	case CleanCut:
		return "clean-cut"
	case TornCut:
		return "torn-cut"
	case BitFlip:
		return "bit-flip"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Plan is one deterministic fault scenario. Equal plans produce equal
// outcomes for the same target: the workload is single-threaded and
// every fault site derives from Seed.
type Plan struct {
	Kind     Kind
	Cut      int64         // crash fires on the Cut+1'th matching flush
	Category pmem.Category // which flush category arms the crash (CatAny = all)
	Seed     uint64        // seeds torn-word selection and flip sites
	Flips    int           // flipped metadata bits (BitFlip only)
}

func (p Plan) String() string {
	s := fmt.Sprintf("%v cut=%d cat=%d seed=%#x", p.Kind, p.Cut, p.Category, p.Seed)
	if p.Kind == BitFlip {
		s += fmt.Sprintf(" flips=%d", p.Flips)
	}
	return s
}

// Outcome classifies one recovery attempt.
type Outcome int

const (
	// Recovered: the heap opened and passed every consistency check.
	Recovered Outcome = iota
	// Detected: recovery refused the image with a typed error. A pass
	// for BitFlip plans, a failure for clean and torn cuts.
	Detected
	// Violated: the heap opened but an invariant did not hold, or an
	// intact-media crash failed to recover.
	Violated
	// Panicked: recovery panicked. Always a bug.
	Panicked
)

func (o Outcome) String() string {
	switch o {
	case Recovered:
		return "recovered"
	case Detected:
		return "detected"
	case Violated:
		return "VIOLATED"
	case Panicked:
		return "PANICKED"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Result is the outcome of running one Plan against one Target.
type Result struct {
	Target  string
	Plan    Plan
	Outcome Outcome
	Detail  string
}

// Pass reports whether the outcome satisfies the fault-model contract
// for the plan's kind.
func (r Result) Pass() bool {
	switch r.Outcome {
	case Recovered:
		return true
	case Detected:
		return r.Plan.Kind == BitFlip
	default:
		return false
	}
}

// Target is one allocator under torture.
type Target struct {
	Name string
	// Create formats a fresh heap on dev.
	Create func(dev *pmem.Device) (alloc.Heap, error)
	// Open recovers the heap after a crash.
	Open func(dev *pmem.Device) (alloc.Heap, error)
	// MetaRanges lists the metadata regions BitFlip plans corrupt.
	MetaRanges func(dev *pmem.Device) []pmem.Range
	// Check, when non-nil, runs the allocator's offline consistency
	// checker against the image (read-only: it must clone the device)
	// and returns every problem found. Harnesses use it to cross-check
	// a recovered heap beyond the behavioural Verify probes.
	Check func(dev *pmem.Device) []string
}

// DeviceBytes sizes each torture device: small enough that hundreds of
// plans stay cheap, large enough for the workload plus slack.
const DeviceBytes = 64 << 20

// Targets returns every allocator under test: the three NVAlloc
// variants and the five baselines.
func Targets() []Target {
	ts := []Target{
		nvallocTarget("NVAlloc-LOG", core.LOG),
		nvallocTarget("NVAlloc-GC", core.GC),
		nvallocTarget("NVAlloc-IC", core.IC),
	}
	for _, b := range []struct {
		name string
		cfg  baseline.Config
	}{
		{"PMDK", baseline.PMDK},
		{"nvm_malloc", baseline.NvmMalloc},
		{"PAllocator", baseline.PAllocator},
		{"Makalu", baseline.Makalu},
		{"Ralloc", baseline.Ralloc},
	} {
		cfg := b.cfg
		cfg.Arenas = 2
		ts = append(ts, Target{
			Name: b.name,
			Create: func(dev *pmem.Device) (alloc.Heap, error) {
				return baseline.New(dev, cfg)
			},
			Open: func(dev *pmem.Device) (alloc.Heap, error) {
				h, _, err := baseline.Open(dev, cfg)
				if err != nil {
					return nil, err
				}
				return h, nil
			},
			MetaRanges: func(dev *pmem.Device) []pmem.Range {
				return baseline.MetaRanges(dev)
			},
		})
	}
	return ts
}

func nvallocTarget(name string, v core.Variant) Target {
	return Target{
		Name: name,
		Create: func(dev *pmem.Device) (alloc.Heap, error) {
			opts := core.DefaultOptions(v)
			opts.Arenas = 2
			return core.Create(dev, opts)
		},
		Open: func(dev *pmem.Device) (alloc.Heap, error) {
			h, _, err := core.Open(dev, core.DefaultOptions(v))
			if err != nil {
				return nil, err
			}
			return h, nil
		},
		MetaRanges: func(dev *pmem.Device) []pmem.Range {
			return core.MetaRanges(dev)
		},
		Check: func(dev *pmem.Device) []string {
			return core.Check(dev, core.DefaultOptions(v))
		},
	}
}

// splitmix64 mirrors the device's deterministic mixer so plan
// generation is reproducible from a seed.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Plans deterministically generates n fault plans from seed, cycling
// kinds (2 clean cuts : 2 torn cuts : 1 bit flip) and spreading crash
// points and categories so early-initialization, WAL-traffic and
// steady-state boundaries are all hit.
func Plans(n int, seed uint64) []Plan {
	rng := splitmix64(seed)
	cats := []pmem.Category{pmem.CatAny, pmem.CatAny, pmem.CatMeta, pmem.CatAny, pmem.CatWAL}
	out := make([]Plan, 0, n)
	for i := 0; i < n; i++ {
		p := Plan{
			// Bias toward early cuts (initialization and first-slab
			// boundaries) while still reaching deep steady state.
			Cut:      1 + int64(rng.next()%uint64(1+i*97)),
			Category: cats[i%len(cats)],
			Seed:     rng.next(),
		}
		switch i % 5 {
		case 2, 3:
			p.Kind = TornCut
		case 4:
			p.Kind = BitFlip
			p.Flips = 1 + int(rng.next()%4)
		}
		if p.Category != pmem.CatAny {
			// Category-filtered flushes are rarer; keep cuts reachable.
			p.Cut = 1 + p.Cut%199
		}
		out = append(out, p)
	}
	return out
}

// Run executes one plan against one target: build a heap, run the
// published/anonymous workload until the injected fault fires, crash,
// then recover and verify. Panics anywhere in recovery are caught and
// reported as Panicked, never propagated.
func Run(tg Target, p Plan) (res Result) {
	res = Result{Target: tg.Name, Plan: p}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = Panicked
			res.Detail = fmt.Sprint(r)
		}
	}()

	dev := pmem.New(pmem.Config{Size: DeviceBytes, Strict: true})
	h, err := tg.Create(dev)
	if err != nil {
		res.Outcome = Violated
		res.Detail = "create: " + err.Error()
		return res
	}
	fp := pmem.FaultPlan{
		CrashAfter: p.Cut,
		Category:   p.Category,
		TornLine:   p.Kind == TornCut,
		Seed:       p.Seed,
	}
	if p.Kind == BitFlip {
		fp.Flips = p.Flips
		fp.FlipIn = tg.MetaRanges(dev)
	}
	dev.InjectFaults(&fp)
	workload(h, dev)
	dev.Crash()

	h2, err := OpenGuarded(tg, dev)
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			res.Outcome = Panicked
			res.Detail = fmt.Sprint(pe.Value)
			return res
		}
		res.Outcome = Detected
		res.Detail = err.Error()
		if p.Kind != BitFlip {
			res.Outcome = Violated
			res.Detail = "intact-media crash not recovered: " + err.Error()
		}
		return res
	}
	if problems := Verify(h2); len(problems) > 0 {
		res.Outcome = Violated
		res.Detail = strings.Join(problems, "; ")
		return res
	}
	res.Outcome = Recovered
	return res
}

// workload runs a deterministic mix of published (MallocTo/FreeFrom)
// and anonymous operations until the injected fault fires (promoted
// from internal/core's crash-sweep tests).
func workload(h alloc.Heap, dev *pmem.Device) {
	th := h.NewThread()
	slot := 0
	for i := 0; i < 4000 && !dev.Crashed(); i++ {
		switch i % 5 {
		case 0, 1:
			if p, err := th.MallocTo(h.RootSlot(slot%alloc.NumRootSlots), uint64(64+i%256)); err == nil {
				dev.WriteU64(p, uint64(i))
				th.Ctx().Flush(pmem.CatOther, p, 8)
				slot++
			}
		case 2:
			s := h.RootSlot((slot + 3) % alloc.NumRootSlots)
			if dev.ReadU64(s) != 0 {
				_ = th.FreeFrom(s)
			}
		case 3:
			_, _ = th.Malloc(128)
		case 4:
			if i%25 == 4 {
				if _, err := th.MallocTo(h.RootSlot(slot%alloc.NumRootSlots), 64<<10); err == nil {
					slot++
				}
			}
		}
	}
	th.Ctx().Merge()
}

// Verify checks a recovered heap's fundamental guarantees — every
// non-null root slot references a distinct allocated object (freeable
// exactly once) and fresh allocations never overlap published ones —
// and returns every violation found.
func Verify(h alloc.Heap) []string {
	var problems []string
	dev := h.Device()
	ck := alloc.NewChecker(h)
	th := ck.NewThread()
	defer th.Close()

	roots := map[pmem.PAddr]bool{}
	for i := 0; i < alloc.NumRootSlots; i++ {
		p := pmem.PAddr(dev.ReadU64(h.RootSlot(i)))
		if p == pmem.Null {
			continue
		}
		if roots[p] {
			problems = append(problems, fmt.Sprintf("two roots reference %#x", p))
		}
		roots[p] = true
	}
	for i := 0; i < 3000; i++ {
		p, err := th.Malloc(uint64(64 + i%256))
		if err != nil {
			problems = append(problems, fmt.Sprintf("alloc after recovery: %v", err))
			break
		}
		if roots[p] {
			problems = append(problems, fmt.Sprintf("published object %#x handed out again", p))
		}
	}
	// Published objects must be allocated: freeing succeeds exactly
	// once. (A raw thread — the checker has no record of pre-crash
	// allocations.)
	thRaw := h.NewThread()
	defer thRaw.Close()
	for p := range roots {
		if err := thRaw.Free(p); err != nil {
			problems = append(problems, fmt.Sprintf("published %#x not allocated after recovery: %v", p, err))
		}
	}
	return append(problems, ck.Errors()...)
}
