package torture

import (
	"errors"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// openGuarded opens a target's heap via the package's shared guarded
// open, converting a recovered panic into a test failure: a garbage
// image may be rejected, never crash the process.
func openGuarded(t *testing.T, tg Target, dev *pmem.Device) (alloc.Heap, error) {
	t.Helper()
	h, err := OpenGuarded(tg, dev)
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Errorf("%s: Open panicked: %v\n%s", tg.Name, pe.Value, pe.Stack)
	}
	return h, err
}

// TestOpenZeroedImage opens an all-zero device with every allocator: a
// typed corruption error, never a panic, never a "success".
func TestOpenZeroedImage(t *testing.T) {
	for _, tg := range Targets() {
		dev := pmem.New(pmem.Config{Size: DeviceBytes, Strict: true})
		_, err := openGuarded(t, tg, dev)
		if err == nil {
			t.Fatalf("%s: opened an all-zero image", tg.Name)
		}
		if !errors.Is(err, pmem.ErrCorrupted) {
			t.Fatalf("%s: want ErrCorrupted, got %v", tg.Name, err)
		}
	}
}

// TestOpenTruncatedImage opens a device too small to hold a superblock.
func TestOpenTruncatedImage(t *testing.T) {
	for _, tg := range Targets() {
		dev := pmem.New(pmem.Config{Size: 4096, Strict: true})
		_, err := openGuarded(t, tg, dev)
		if err == nil {
			t.Fatalf("%s: opened a 4 KiB image", tg.Name)
		}
		if !errors.Is(err, pmem.ErrCorrupted) {
			t.Fatalf("%s: want ErrCorrupted, got %v", tg.Name, err)
		}
	}
}

// TestOpenBitFlippedSuperblock flips bits of the persisted superblock
// and requires each flip to be either harmless (field outside the open
// path) or detected — never a panic, and never an open that then fails
// verification. One representative of each superblock layout (NVAlloc's
// and the baselines') gets every bit; the remaining targets, which share
// those layouts, get a deterministic sample to keep the sweep's cost
// bounded.
func TestOpenBitFlippedSuperblock(t *testing.T) {
	if testing.Short() {
		t.Skip("superblock flip sweep is long; skipped with -short")
	}
	const superBase = 4096
	const superBytes = 128 // covers every checksummed field of both layouts
	exhaustive := map[string]bool{"NVAlloc-LOG": true, "PMDK": true}
	for ti, tg := range Targets() {
		tg := tg
		stride := 1
		if !exhaustive[tg.Name] {
			stride = 7 + ti // coprime-ish offsets vary the sampled bits
		}
		t.Run(tg.Name, func(t *testing.T) {
			t.Parallel()
			dev := pmem.New(pmem.Config{Size: DeviceBytes, Strict: true})
			h, err := tg.Create(dev)
			if err != nil {
				t.Fatal(err)
			}
			workload(h, dev)
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			for bit := 0; bit < superBytes*8; bit += stride {
				flipped := dev.Clone()
				addr := pmem.PAddr(superBase + bit/8)
				flipped.WriteU8(addr, flipped.Bytes(addr, 1)[0]^(1<<(bit%8)))
				// Clone copies cache and media separately; flip both so
				// the flip "was persisted".
				c := flipped.NewCtx()
				c.Flush(pmem.CatMeta, addr&^(pmem.LineSize-1), pmem.LineSize)
				c.Fence()
				c.Merge()
				h2, err := openGuarded(t, tg, flipped)
				if err != nil {
					if !errors.Is(err, pmem.ErrCorrupted) {
						t.Fatalf("bit %d: untyped error %v", bit, err)
					}
					continue
				}
				// The flip slipped through (e.g. it hit a field outside
				// the checksummed open path); the opened heap must still
				// be consistent.
				if problems := Verify(h2); len(problems) > 0 {
					t.Fatalf("bit %d: undetected corruption: %v", bit, problems)
				}
			}
		})
	}
}
