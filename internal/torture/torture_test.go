package torture

import (
	"fmt"
	"testing"
)

// plansPerTarget * 8 targets comfortably clears the 200-distinct-plan
// floor the fault model promises (DESIGN.md §7).
const plansPerTarget = 26

// TestTortureSweep runs every allocator through the full plan mix and
// requires the fault-model contract to hold for each: clean and torn
// cuts recover, bit flips recover or are detected, nothing panics.
func TestTortureSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("torture sweep is long; skipped with -short")
	}
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			t.Parallel()
			plans := Plans(plansPerTarget, 0x7047557265+uint64(len(tg.Name)))
			for i, p := range plans {
				res := Run(tg, p)
				if !res.Pass() {
					t.Errorf("plan %d (%v): %v: %s", i, p, res.Outcome, res.Detail)
				}
			}
		})
	}
}

// TestPlansDeterministic pins the generator: the same seed must yield
// the same plans, and distinct seeds must differ (the acceptance
// criterion counts *distinct* fault plans).
func TestPlansDeterministic(t *testing.T) {
	a, b := Plans(50, 1), Plans(50, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d not deterministic: %v vs %v", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, p := range Plans(plansPerTarget, 2) {
		seen[fmt.Sprint(p)] = true
	}
	if len(seen) < plansPerTarget {
		t.Fatalf("only %d distinct plans of %d", len(seen), plansPerTarget)
	}
}

// TestRunReportsRecoveredOnCleanCrash sanity-checks the harness itself
// against the best-understood scenario.
func TestRunReportsRecoveredOnCleanCrash(t *testing.T) {
	tg := Targets()[0]
	res := Run(tg, Plan{Kind: CleanCut, Cut: 500, Category: -1, Seed: 42})
	if res.Outcome != Recovered {
		t.Fatalf("clean cut on %s: %v: %s", tg.Name, res.Outcome, res.Detail)
	}
}
