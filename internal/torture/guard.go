package torture

import (
	"fmt"
	"runtime/debug"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// PanicError reports a panic recovered during a guarded heap open. Under
// the fault model, recovery panicking on any image is a bug — harnesses
// match this type (errors.As) to classify the failure as Panicked rather
// than Detected.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("recovery panicked: %v", e.Value)
}

// OpenGuarded opens tg's heap on dev with panics converted into a
// *PanicError: a garbage image may be rejected with a typed error, but it
// must never crash the process. Every harness that reopens a damaged or
// half-written image (torture plans, the corrupt-image tests, the
// crash-point model checker) shares this helper so panic guarding has one
// implementation.
func OpenGuarded(tg Target, dev *pmem.Device) (h alloc.Heap, err error) {
	defer func() {
		if r := recover(); r != nil {
			h, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return tg.Open(dev)
}
