package traffic

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"nvalloc/internal/experiment"
	"nvalloc/internal/nvkv"
)

// Engine is the wall-clock load generator: it simulates Users sessions
// over Conns pipelined connections, fanned out on the experiment worker
// pool. A session carries no allocated state — its behaviour (op count,
// op mix via its phase, key choices, value sizes) derives on the fly
// from the session id and the engine seed, which is what lets one
// process simulate millions of users.
//
// Key popularity is zipfian (hot keys absorb most churn). Mutations are
// sharded: worker w only ever writes keys congruent to w modulo Conns,
// so "the last acknowledged mutation per key" is well-defined even
// though workers run concurrently — that makes the acknowledgement log
// (Report.Acked) a sound durability oracle after a kill -9. Reads are
// unsharded and keep the full zipfian skew.
//
// Phases run in session order, so a weighted phase list produces a
// temporal load profile (steady traffic, then a write burst, ...).
type Engine struct {
	cfg Config

	claimed  atomic.Uint64 // sessions handed to workers
	finished atomic.Uint64 // sessions fully generated
	ops      atomic.Uint64 // replies received
	stop     atomic.Bool
}

// Phase shapes a contiguous slice of the session stream.
type Phase struct {
	Name string
	// Weight is the phase's share of all sessions (relative to the sum
	// of weights).
	Weight int
	// Mix holds op weights indexed by OpKind (get, set, del, expire).
	Mix [4]int
	// Sizes / SizeW pick SET value sizes.
	Sizes []int
	SizeW []int
	// TTLPct of SETs carry a TTL, uniform in [1, MaxTTLms].
	TTLPct   int
	MaxTTLms int64
}

// Config parameterizes an Engine.
type Config struct {
	// Addr is the server address ("host:port").
	Addr string
	// Conns is the number of concurrent connections (= workers).
	Conns int
	// Pipeline is the number of commands in flight per connection.
	Pipeline int
	// Users is the total number of simulated sessions.
	Users uint64
	// Keys is the key-universe size (must exceed Conns).
	Keys uint64
	// ZipfS is the zipfian skew; values <= 1 are clamped to 1.01
	// ("s ~= 1.0" key popularity).
	ZipfS float64
	// SessionOps is the mean operations per session.
	SessionOps int
	// Seed makes the whole workload reproducible.
	Seed uint64
	// Phases defaults to a steady phase followed by a write burst.
	Phases []Phase
	// TrackAcks records the last acknowledged mutation per key for the
	// post-crash durability oracle (VerifyAcked). Costs one map entry
	// per touched key.
	TrackAcks bool
	// DialTimeout bounds how long a worker keeps retrying a dial after
	// a disconnect (covers the server's kill -9 restart window).
	DialTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 64
	}
	if c.Keys == 0 {
		c.Keys = 1 << 16
	}
	if c.Keys < uint64(c.Conns)*2 {
		c.Keys = uint64(c.Conns) * 2
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.01
	}
	if c.SessionOps <= 0 {
		c.SessionOps = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 30 * time.Second
	}
	if len(c.Phases) == 0 {
		c.Phases = []Phase{
			{Name: "steady", Weight: 4, Mix: [4]int{55, 30, 10, 5},
				Sizes: []int{16, 64, 256, 1024}, SizeW: []int{40, 35, 20, 5},
				TTLPct: 10, MaxTTLms: 60_000},
			{Name: "burst", Weight: 1, Mix: [4]int{20, 65, 10, 5},
				Sizes: []int{64, 1024, 16 << 10}, SizeW: []int{50, 40, 10},
				TTLPct: 5, MaxTTLms: 60_000},
		}
	}
	return c
}

// Ack is the last acknowledged mutation of one key.
type Ack struct {
	Seq  uint64
	Size int
	// Deleted: the last acked mutation removed the key.
	Deleted bool
	// Unsafe: expiry is in play (TTL'd SET or a later EXPIRE), so the
	// key's post-crash presence is time-dependent and the oracle skips
	// it.
	Unsafe bool
}

// Report is the merged outcome of a Run.
type Report struct {
	Sessions    uint64
	Ops         uint64
	Disconnects uint64
	// Errors counts error replies and reply-verification mismatches.
	Errors uint64
	// PerOp holds latency histograms indexed by OpKind; All is their
	// union.
	PerOp [4]Hist
	All   Hist
	// Acked / Tainted are populated under TrackAcks: last acked
	// mutation per key, and keys whose mutation was in flight (sent,
	// unacknowledged) at a disconnect — their state is unknowable, so
	// the oracle excludes them.
	Acked   map[uint64]Ack
	Tainted map[uint64]bool
}

// KeyName is the wire form of engine key i.
func KeyName(i uint64) string { return "u" + strconv.FormatUint(i, 10) }

// ValBytes deterministically regenerates the payload of key's seq'th
// mutation, so the oracle verifies exact bytes without storing values.
func ValBytes(key, seq uint64, size int) []byte {
	b := make([]byte, size)
	x := key*0x9E3779B97F4A7C15 + seq*0xD1B54A32D192ED03 + 0x632BE59BD9B4E019
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// New builds an engine; Run executes it.
func New(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// Sessions returns sessions claimed so far (progress; monotone).
func (e *Engine) Sessions() uint64 { return e.claimed.Load() }

// Finished returns sessions fully generated.
func (e *Engine) Finished() uint64 { return e.finished.Load() }

// Ops returns replies received so far.
func (e *Engine) Ops() uint64 { return e.ops.Load() }

// Stop asks workers to drain and exit early (the smoke driver uses it
// on timeout).
func (e *Engine) Stop() { e.stop.Store(true) }

type workerResult struct {
	perOp       [4]Hist
	errors      uint64
	disconnects uint64
	acks        map[uint64]Ack
	taint       map[uint64]bool
	err         error
}

// pend is one in-flight command.
type pend struct {
	kind   OpKind
	key    uint64
	seq    uint64
	size   int
	unsafe bool
	sent   time.Time
}

// session is the per-worker cursor into the session stream.
type session struct {
	rng       *rand.Rand
	phase     *Phase
	remaining int
}

// Run drives the full workload and returns the merged report. Worker
// dial failures (beyond DialTimeout of retrying) surface as an error,
// with whatever was measured still in the report.
func (e *Engine) Run() (*Report, error) {
	cfg := e.cfg
	results := make([]workerResult, cfg.Conns)
	experiment.Config{Workers: cfg.Conns}.RunCells(cfg.Conns, func(w int) {
		e.worker(w, &results[w])
	})
	rep := &Report{
		Sessions: min64(e.claimed.Load(), cfg.Users),
		Ops:      e.ops.Load(),
	}
	if cfg.TrackAcks {
		rep.Acked = make(map[uint64]Ack)
		rep.Tainted = make(map[uint64]bool)
	}
	var firstErr error
	for i := range results {
		r := &results[i]
		for k := range r.perOp {
			rep.PerOp[k].Merge(&r.perOp[k])
			rep.All.Merge(&r.perOp[k])
		}
		rep.Errors += r.errors
		rep.Disconnects += r.disconnects
		// Mutation keyspaces are disjoint across workers, so the maps
		// merge without conflicts.
		for k, a := range r.acks {
			rep.Acked[k] = a
		}
		for k := range r.taint {
			rep.Tainted[k] = true
		}
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	return rep, firstErr
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func (e *Engine) dial() (net.Conn, error) {
	deadline := time.Now().Add(e.cfg.DialTimeout)
	for {
		c, err := net.Dial("tcp", e.cfg.Addr)
		if err == nil {
			return c, nil
		}
		if e.stop.Load() || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// phaseBounds precomputes the session-id boundary below which each
// phase applies.
func phaseBounds(phases []Phase, users uint64) []uint64 {
	total := 0
	for _, p := range phases {
		if p.Weight <= 0 {
			total++
		} else {
			total += p.Weight
		}
	}
	bounds := make([]uint64, len(phases))
	cum := 0
	for i, p := range phases {
		w := p.Weight
		if w <= 0 {
			w = 1
		}
		cum += w
		bounds[i] = users / uint64(total) * uint64(cum)
	}
	bounds[len(bounds)-1] = users
	return bounds
}

func (e *Engine) worker(w int, res *workerResult) {
	cfg := e.cfg
	if cfg.TrackAcks {
		res.acks = make(map[uint64]Ack)
		res.taint = make(map[uint64]bool)
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed*0x9E3779B97F4A7C15 + uint64(w)*0xBF58476D1CE4E5B9 + 1)))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, cfg.Keys-1)
	bounds := phaseBounds(cfg.Phases, cfg.Users)

	conn, err := e.dial()
	if err != nil {
		res.err = fmt.Errorf("worker %d: dial: %w", w, err)
		return
	}
	defer func() { conn.Close() }()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	seqs := make(map[uint64]uint64)
	pending := make([]pend, 0, cfg.Pipeline)
	var cur session

	// reconnect taints in-flight mutations and re-establishes the
	// connection; it reports whether the worker should keep going.
	reconnect := func() bool {
		for _, p := range pending {
			if p.kind != OpGet {
				if res.taint != nil {
					res.taint[p.key] = true
				}
			}
		}
		pending = pending[:0]
		res.disconnects++
		conn.Close()
		c, err := e.dial()
		if err != nil {
			res.err = fmt.Errorf("worker %d: redial: %w", w, err)
			return false
		}
		conn = c
		br.Reset(conn)
		bw.Reset(conn)
		return true
	}

	// drain flushes the write side and consumes one reply per pending
	// command; false means the connection died and was not (or could
	// not be) re-established for continuing.
	drain := func() bool {
		if err := bw.Flush(); err != nil {
			return reconnect()
		}
		for len(pending) > 0 {
			rep, err := nvkv.ReadReply(br)
			if err != nil {
				return reconnect()
			}
			p := pending[0]
			pending = pending[1:]
			ns := uint64(time.Since(p.sent))
			res.perOp[p.kind].Record(ns)
			e.ops.Add(1)
			if rep.Kind == nvkv.ReplyError {
				res.errors++
				// An error reply leaves the key's durable state
				// uncertain from out here; exclude it from the oracle.
				if p.kind != OpGet && res.taint != nil {
					res.taint[p.key] = true
				}
				continue
			}
			if res.acks == nil {
				continue
			}
			switch p.kind {
			case OpSet:
				res.acks[p.key] = Ack{Seq: p.seq, Size: p.size, Unsafe: p.unsafe}
			case OpDel:
				res.acks[p.key] = Ack{Deleted: true}
			case OpExpire:
				if a, ok := res.acks[p.key]; ok && !a.Deleted {
					a.Unsafe = true
					res.acks[p.key] = a
				}
			}
		}
		return true
	}

	for !e.stop.Load() {
		// Fill the pipeline.
		for len(pending) < cfg.Pipeline {
			if cur.remaining == 0 {
				sid := e.claimed.Add(1) - 1
				if sid >= cfg.Users {
					break
				}
				srng := rand.New(rand.NewSource(int64(cfg.Seed ^ (sid+1)*0xD1B54A32D192ED03)))
				pi := 0
				for pi < len(bounds)-1 && sid >= bounds[pi] {
					pi++
				}
				cur = session{
					rng:       srng,
					phase:     &cfg.Phases[pi],
					remaining: 1 + srng.Intn(2*cfg.SessionOps),
				}
			}
			p, err := e.sendOp(bw, &cur, zipf, seqs, w)
			cur.remaining--
			if cur.remaining == 0 {
				e.finished.Add(1)
			}
			if err != nil {
				if !reconnect() {
					return
				}
				continue
			}
			pending = append(pending, p)
		}
		if len(pending) == 0 {
			break // session stream exhausted
		}
		if !drain() {
			return
		}
	}
	// Final drain of anything buffered when Stop() hit mid-fill.
	if len(pending) > 0 {
		drain()
	}
}

// sendOp generates and writes the session's next operation.
func (e *Engine) sendOp(bw *bufio.Writer, cur *session, zipf *rand.Zipf, seqs map[uint64]uint64, w int) (pend, error) {
	cfg := e.cfg
	ph := cur.phase
	kind := OpKind(weighted(cur.rng, ph.Mix[:]))
	key := zipf.Uint64()
	if kind != OpGet {
		// Shard mutations onto this worker's congruence class, keeping
		// the zipfian block structure (hot blocks stay hot).
		key = key - key%uint64(cfg.Conns) + uint64(w)
		if key >= cfg.Keys {
			key -= uint64(cfg.Conns)
		}
	}
	p := pend{kind: kind, key: key, sent: time.Now()}
	kb := []byte(KeyName(key))
	switch kind {
	case OpGet:
		return p, nvkv.WriteCommand(bw, []byte("GET"), kb)
	case OpSet:
		p.seq = seqs[key] + 1
		seqs[key] = p.seq
		p.size = ph.Sizes[weighted(cur.rng, ph.SizeW)]
		val := ValBytes(key, p.seq, p.size)
		if ph.TTLPct > 0 && cur.rng.Intn(100) < ph.TTLPct {
			p.unsafe = true
			ttl := 1 + cur.rng.Int63n(ph.MaxTTLms)
			return p, nvkv.WriteCommand(bw, []byte("SET"), kb, val,
				[]byte("TTL"), []byte(strconv.FormatInt(ttl, 10)))
		}
		return p, nvkv.WriteCommand(bw, []byte("SET"), kb, val)
	case OpDel:
		return p, nvkv.WriteCommand(bw, []byte("DEL"), kb)
	default: // OpExpire
		p.unsafe = true
		ttl := 1 + cur.rng.Int63n(ph.MaxTTLms)
		return p, nvkv.WriteCommand(bw, []byte("EXPIRE"), kb,
			[]byte(strconv.FormatInt(ttl, 10)))
	}
}

// VerifyAcked is the post-restart durability oracle: over a fresh
// connection it GETs every acked, non-tainted, expiry-free key and
// asserts the exact acknowledged outcome — last-set bytes present, or
// deleted keys absent. It returns how many keys were checked and how
// many skipped (tainted or expiry-dependent).
func VerifyAcked(conn net.Conn, acked map[uint64]Ack, tainted map[uint64]bool) (checked, skipped int, err error) {
	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 256<<10)
	keys := make([]uint64, 0, len(acked))
	for k, a := range acked {
		if tainted[k] || a.Unsafe {
			skipped++
			continue
		}
		keys = append(keys, k)
	}
	const batch = 256
	for start := 0; start < len(keys); start += batch {
		end := start + batch
		if end > len(keys) {
			end = len(keys)
		}
		for _, k := range keys[start:end] {
			if err := nvkv.WriteCommand(bw, []byte("GET"), []byte(KeyName(k))); err != nil {
				return checked, skipped, err
			}
		}
		if err := bw.Flush(); err != nil {
			return checked, skipped, err
		}
		for _, k := range keys[start:end] {
			rep, err := nvkv.ReadReply(br)
			if err != nil {
				return checked, skipped, fmt.Errorf("oracle GET %s: %w", KeyName(k), err)
			}
			a := acked[k]
			if a.Deleted {
				if rep.Kind != nvkv.ReplyNil {
					return checked, skipped, fmt.Errorf("acknowledged DEL violated: %s present after restart", KeyName(k))
				}
			} else {
				if rep.Kind != nvkv.ReplyBulk {
					return checked, skipped, fmt.Errorf("acknowledged SET lost: %s absent after restart (reply kind %d)", KeyName(k), rep.Kind)
				}
				if want := ValBytes(k, a.Seq, a.Size); !bytes.Equal(rep.Bulk, want) {
					return checked, skipped, fmt.Errorf("acknowledged SET corrupted: %s has %d bytes, want %d (seq %d)", KeyName(k), len(rep.Bulk), a.Size, a.Seq)
				}
			}
			checked++
		}
	}
	return checked, skipped, nil
}
