package traffic

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strconv"

	"nvalloc/internal/alloc"
	"nvalloc/internal/nvkv"
)

// Deterministic replay: the crash-restart harness records one traffic
// script against a virtual-time server with the flush journal on, noting
// the journal watermark after every acknowledged operation, then reopens
// the device image at every persistence boundary and holds the recovered
// store to the acknowledged-durability oracle:
//
//   - every acknowledged SET is readable with exactly the acknowledged
//     bytes;
//   - every acknowledged DEL stays deleted;
//   - the single operation in flight at the boundary may be observed
//     either not-at-all or fully (its key in the pre- or post-state),
//     and no other key moves.
//
// The script's logical clock makes expiry deterministic: operation i
// executes at NowAt(i), and recovered-state probes use a probe time
// after the whole script, so a key's expected visibility is a pure
// function of the model.

// OpKind enumerates replayable operations.
type OpKind uint8

// Replay operation kinds.
const (
	OpGet OpKind = iota
	OpSet
	OpDel
	OpExpire
)

func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDel:
		return "del"
	case OpExpire:
		return "expire"
	}
	return "?"
}

// Op is one scripted operation.
type Op struct {
	Kind OpKind
	Key  string
	// Val is the SET payload.
	Val []byte
	// TTLms is the expiry argument: for SET, 0 means no expiry; for
	// EXPIRE, <= 0 deletes the key (the redis convention).
	TTLms int64
}

// Script is a deterministic operation sequence.
type Script struct {
	Seed uint64
	Ops  []Op
	// Keys is the key universe the script draws from (the oracle sweeps
	// it to assert absences as well as presences).
	Keys []string
}

// NowAt is the logical service clock when operation i executes: 1 ms of
// virtual time per operation, so TTLms arguments line up with op counts.
func NowAt(i int) int64 { return int64(i+1) * 1e6 }

// ProbeNow is the clock used for all recovered-state probes of a script
// of n ops: strictly after every operation, so lazily expired keys have
// deterministically expired.
func ProbeNow(n int) int64 { return NowAt(n) + 1 }

// GenScript builds a deterministic script: zipfian key popularity over a
// small universe (hot keys see most of the churn — overwrites, deletes
// and re-inserts), a mixed op distribution, mixed value sizes including
// extent-class payloads, and both far-future and already-expiring TTLs.
func GenScript(seed uint64, nOps, keys int) Script {
	rng := rand.New(rand.NewSource(int64(seed)))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
	universe := make([]string, keys)
	for i := range universe {
		universe[i] = "k" + strconv.Itoa(i)
	}
	sizes := []int{8, 24, 100, 480, 4000, 40 << 10}
	sizeW := []int{30, 25, 25, 12, 6, 2}
	ops := make([]Op, 0, nOps)
	for i := 0; i < nOps; i++ {
		key := universe[zipf.Uint64()]
		switch p := rng.Intn(100); {
		case p < 40: // SET
			n := sizes[weighted(rng, sizeW)]
			val := make([]byte, n)
			rng.Read(val)
			var ttl int64
			if rng.Intn(5) == 0 {
				// A fifth of sets carry a TTL; half of those are short
				// enough to expire within the script.
				if rng.Intn(2) == 0 {
					ttl = int64(1 + rng.Intn(nOps/2))
				} else {
					ttl = int64(nOps * 10)
				}
			}
			ops = append(ops, Op{Kind: OpSet, Key: key, Val: val, TTLms: ttl})
		case p < 65: // GET
			ops = append(ops, Op{Kind: OpGet, Key: key})
		case p < 82: // DEL
			ops = append(ops, Op{Kind: OpDel, Key: key})
		default: // EXPIRE
			ttl := int64(1 + rng.Intn(nOps*2))
			if rng.Intn(8) == 0 {
				ttl = 0 // immediate delete
			}
			ops = append(ops, Op{Kind: OpExpire, Key: key, TTLms: ttl})
		}
	}
	return Script{Seed: seed, Ops: ops, Keys: universe}
}

func weighted(rng *rand.Rand, w []int) int {
	total := 0
	for _, x := range w {
		total += x
	}
	p := rng.Intn(total)
	for i, x := range w {
		if p < x {
			return i
		}
		p -= x
	}
	return len(w) - 1
}

// Entry is one key's modelled state.
type Entry struct {
	Val    []byte
	Expiry int64 // absolute ns, 0 = none
}

// Model is the shadow KV state: what the store must hold after a prefix
// of acknowledged operations.
type Model map[string]Entry

// Clone deep-copies the model (values are shared: the script never
// mutates a value in place).
func (m Model) Clone() Model {
	c := make(Model, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// visible reports whether e is readable at now.
func (e Entry) visible(now int64) bool {
	return e.Expiry == 0 || e.Expiry > now
}

// Apply folds op (executed at now) into the model, mirroring the
// store's semantics exactly.
func (m Model) Apply(op Op, now int64) {
	switch op.Kind {
	case OpSet:
		var exp int64
		if op.TTLms > 0 {
			exp = now + op.TTLms*1e6
		}
		m[op.Key] = Entry{Val: op.Val, Expiry: exp}
	case OpDel:
		delete(m, op.Key)
	case OpExpire:
		e, ok := m[op.Key]
		if !ok || !e.visible(now) {
			return
		}
		if op.TTLms <= 0 {
			delete(m, op.Key)
			return
		}
		e.Expiry = now + op.TTLms*1e6
		m[op.Key] = e
	}
}

// Replay drives script over conn (a live server connection), one
// operation at a time: before op i it calls setNow(NowAt(i)), and after
// op i's reply it calls acked(i) — the recording hook samples the flush
// journal there. Every reply is verified against the rolling model, so
// the recording itself is an oracle run.
func Replay(conn net.Conn, script Script, setNow func(int64), acked func(i int)) error {
	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 256<<10)
	model := make(Model)
	for i, op := range script.Ops {
		now := NowAt(i)
		if setNow != nil {
			setNow(now)
		}
		if err := writeOp(bw, op); err != nil {
			return fmt.Errorf("op %d (%s %s): %w", i, op.Kind, op.Key, err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("op %d: flush: %w", i, err)
		}
		rep, err := nvkv.ReadReply(br)
		if err != nil {
			return fmt.Errorf("op %d (%s %s): read reply: %w", i, op.Kind, op.Key, err)
		}
		if err := checkReply(model, op, now, rep); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		model.Apply(op, now)
		if acked != nil {
			acked(i)
		}
	}
	return nil
}

func writeOp(bw *bufio.Writer, op Op) error {
	key := []byte(op.Key)
	switch op.Kind {
	case OpGet:
		return nvkv.WriteCommand(bw, []byte("GET"), key)
	case OpSet:
		if op.TTLms > 0 {
			return nvkv.WriteCommand(bw, []byte("SET"), key, op.Val,
				[]byte("TTL"), []byte(strconv.FormatInt(op.TTLms, 10)))
		}
		return nvkv.WriteCommand(bw, []byte("SET"), key, op.Val)
	case OpDel:
		return nvkv.WriteCommand(bw, []byte("DEL"), key)
	case OpExpire:
		return nvkv.WriteCommand(bw, []byte("EXPIRE"), key,
			[]byte(strconv.FormatInt(op.TTLms, 10)))
	}
	return fmt.Errorf("bad op kind %d", op.Kind)
}

// checkReply verifies a live reply against the pre-op model state.
func checkReply(m Model, op Op, now int64, rep nvkv.Reply) error {
	if rep.Kind == nvkv.ReplyError {
		return fmt.Errorf("server error: %s", rep.Status)
	}
	switch op.Kind {
	case OpGet:
		e, ok := m[op.Key]
		if ok && e.visible(now) {
			if rep.Kind != nvkv.ReplyBulk || !bytes.Equal(rep.Bulk, e.Val) {
				return fmt.Errorf("GET %s: wrong value (kind %d, %d bytes)", op.Key, rep.Kind, len(rep.Bulk))
			}
		} else if rep.Kind != nvkv.ReplyNil {
			return fmt.Errorf("GET %s: expected nil, got kind %d", op.Key, rep.Kind)
		}
	case OpSet:
		if rep.Kind != nvkv.ReplyStatus {
			return fmt.Errorf("SET %s: expected +OK, got kind %d %q", op.Key, rep.Kind, rep.Status)
		}
	case OpDel:
		_, ok := m[op.Key]
		if want := b2i(ok); rep.Kind != nvkv.ReplyInt || rep.Int != want {
			return fmt.Errorf("DEL %s: expected :%d, got kind %d :%d", op.Key, want, rep.Kind, rep.Int)
		}
	case OpExpire:
		e, ok := m[op.Key]
		want := b2i(ok && e.visible(now))
		if rep.Kind != nvkv.ReplyInt || rep.Int != want {
			return fmt.Errorf("EXPIRE %s: expected :%d, got kind %d :%d", op.Key, want, rep.Kind, rep.Int)
		}
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// CheckRecovered sweeps the full key universe of a recovered store
// against the model at probeNow: every visible model key must return
// exactly its bytes, every other key must be absent. Keys in relax are
// skipped (the boundary's in-flight operation may have legally moved
// them; the caller checks their two admissible states itself).
func CheckRecovered(st *nvkv.Store, th alloc.Thread, m Model, universe []string, probeNow int64, relax map[string]bool) error {
	for _, key := range universe {
		if relax[key] {
			continue
		}
		e, ok := m[key]
		val, found, err := st.Get(th, probeNow, []byte(key))
		if err != nil {
			return fmt.Errorf("recovered GET %s: %v", key, err)
		}
		if ok && e.visible(probeNow) {
			if !found {
				return fmt.Errorf("acknowledged SET lost: %s absent after recovery", key)
			}
			if !bytes.Equal(val, e.Val) {
				return fmt.Errorf("acknowledged SET corrupted: %s has %d bytes, want %d", key, len(val), len(e.Val))
			}
		} else if found {
			return fmt.Errorf("deleted/expired key resurrected: %s present after recovery", key)
		}
	}
	return nil
}
