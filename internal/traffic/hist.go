// Package traffic is the synthetic load generator for the nvkv service:
// zipfian key popularity, per-user sessions multiplexed over a worker
// pool, mixed operation and value-size distributions, burst phases, and
// per-op-type latency percentiles — plus the deterministic replay
// machinery (replay.go) the crash-restart harness records and verifies
// with. It scales to millions of simulated user sessions because a user
// carries no state: a session's behaviour is derived on the fly from its
// user id and the engine seed.
package traffic

import (
	"math"
	"math/bits"
)

// Hist is a log-bucketed latency histogram: 8 sub-buckets per power of
// two, covering 1 ns to ~2^40 ns (~18 min) with <= 9% relative error per
// bucket. It is fixed-size, allocation-free to record into, and mergeable
// across workers (each worker records into its own Hist).
const numBuckets = 41 * 8

type Hist struct {
	counts [numBuckets]uint64
	n      uint64
	sum    uint64
	max    uint64
}

func bucketOf(ns uint64) int {
	if ns < 8 {
		return int(ns)
	}
	e := bits.Len64(ns) - 1 // ns >= 8 so e >= 3
	sub := (ns >> (uint(e) - 3)) & 7
	b := (e-3)*8 + 8 + int(sub)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// valueOf returns a representative latency for bucket b (its lower
// bound; quantiles are reported conservatively low by < 9%).
func valueOf(b int) uint64 {
	if b < 8 {
		return uint64(b)
	}
	e := (b-8)/8 + 3
	sub := uint64((b - 8) % 8)
	return (8 + sub) << (uint(e) - 3)
}

// Record adds one observation in nanoseconds.
func (h *Hist) Record(ns uint64) {
	h.counts[bucketOf(ns)]++
	h.n++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.n }

// Mean returns the mean observation in ns (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observation in ns.
func (h *Hist) Max() uint64 { return h.max }

// Quantile returns the latency at quantile q in [0,1] (0 when empty).
func (h *Hist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			return valueOf(b)
		}
	}
	return h.max
}

// P50, P99 and P999 are the reported percentiles.
func (h *Hist) P50() uint64  { return h.Quantile(0.50) }
func (h *Hist) P99() uint64  { return h.Quantile(0.99) }
func (h *Hist) P999() uint64 { return h.Quantile(0.999) }
