package nvkv

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// Server serves the RESP-like protocol over TCP (or any net.Listener —
// the deterministic tests drive it over net.Pipe). Every connection gets
// its own allocator Thread, so connections allocate through their own
// tcache and contend only where the allocator itself contends.
//
// Commands:
//
//	PING                       -> +PONG
//	GET key                    -> bulk value | $-1
//	SET key value [TTL ms]     -> +OK         (durable on reply)
//	DEL key                    -> :1 | :0     (durable on reply)
//	EXPIRE key ms              -> :1 | :0     (ms <= 0 deletes)
//	STATS                      -> bulk text (store counters + heap accounting)
//	SNAPSHOT                   -> +saved <path> (configured path only)
//	QUIT                       -> +OK, connection closes
type Server struct {
	store *Store
	heap  alloc.Heap

	// Now supplies the service clock in ns. The default is wall time;
	// the virtual-time harness injects a logical clock so expiry is
	// deterministic.
	now func() int64

	// snapshotPath, when non-empty, enables the SNAPSHOT command.
	snapshotPath string

	// snapMu quiesces heap mutation for SNAPSHOT: every server-side
	// path that can write the device (command execution, thread
	// open/close, deferred-free drains) holds it for read; Snapshot
	// holds it for write while the image copy is taken, so the copy is
	// a consistent point-in-time cut, not a torn read of live memory.
	snapMu sync.RWMutex

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	ops atomic.Uint64
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Now overrides the service clock (default time.Now().UnixNano).
	Now func() int64
	// SnapshotPath enables SNAPSHOT, writing the heap image there.
	SnapshotPath string
}

// NewServer wraps a store for serving.
func NewServer(store *Store, cfg ServerConfig) *Server {
	now := cfg.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &Server{
		store:        store,
		heap:         store.Heap(),
		now:          now,
		snapshotPath: cfg.SnapshotPath,
		conns:        make(map[net.Conn]struct{}),
	}
}

// Ops returns the total commands served.
func (s *Server) Ops() uint64 { return s.ops.Load() }

// Serve accepts connections until the listener is closed (Close does
// that). It always returns a non-nil error; after Close it returns
// net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.track(conn, true)
		go func() {
			defer s.track(conn, false)
			s.ServeConn(conn)
		}()
	}
}

func (s *Server) track(c net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.closed {
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// maxTTLms is the largest TTL (in ms) the protocol accepts: anything
// bigger would overflow the ns conversion (ms * time.Millisecond) and
// silently flip the expiry semantics. ~292 years is not a real TTL.
const maxTTLms = math.MaxInt64 / int64(time.Millisecond)

// flushEvery bounds how many commands a connection serves between
// explicit drains of the thread's deferred buffers (batched remote
// frees). Acknowledged mutations are durable regardless — the drain only
// bounds how much reclaimable storage a crash can leak.
const flushEvery = 4096

// ServeConn serves one connection synchronously and closes it on
// return. Exposed so tests can serve a net.Pipe end without a listener.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	s.snapMu.RLock()
	th := s.heap.NewThread()
	s.snapMu.RUnlock()
	defer func() {
		s.snapMu.RLock()
		th.Close()
		s.snapMu.RUnlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	served := 0
	for {
		args, err := ReadCommand(br)
		if err != nil {
			if errors.Is(err, ErrProtocol) {
				writeErrorReply(bw, err.Error())
				bw.Flush()
			}
			return
		}
		quit := s.dispatch(bw, th, args)
		s.ops.Add(1)
		served++
		if served%flushEvery == 0 {
			s.snapMu.RLock()
			if f, ok := th.(alloc.Flusher); ok {
				f.Flush()
			}
			s.snapMu.RUnlock()
		}
		// Pipelining: only pay the write syscall when no further
		// command is already buffered.
		if br.Buffered() == 0 || quit {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if quit {
			return
		}
	}
}

// dispatch executes one command and writes its reply. It reports
// whether the connection should close (QUIT).
func (s *Server) dispatch(bw *bufio.Writer, th alloc.Thread, args [][]byte) bool {
	cmd := asciiUpper(args[0])
	if cmd == "SNAPSHOT" {
		// Drain this thread's deferred buffers under the read lock,
		// then let Snapshot take the write lock (RWMutex does not
		// upgrade, so SNAPSHOT stays outside the RLock'd switch).
		s.snapMu.RLock()
		if f, ok := th.(alloc.Flusher); ok {
			f.Flush()
		}
		s.snapMu.RUnlock()
		if err := s.Snapshot(); err != nil {
			writeErrorReply(bw, err.Error())
			return false
		}
		writeStatus(bw, "saved "+s.snapshotPath)
		return false
	}
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	switch cmd {
	case "PING":
		writeStatus(bw, "PONG")
	case "GET":
		if len(args) != 2 {
			writeErrorReply(bw, "GET needs 1 argument")
			return false
		}
		val, ok, err := s.store.Get(th, s.now(), args[1])
		switch {
		case err != nil:
			writeErrorReply(bw, err.Error())
		case !ok:
			writeNil(bw)
		default:
			writeBulk(bw, val)
		}
	case "SET":
		if len(args) != 3 && len(args) != 5 {
			writeErrorReply(bw, "SET needs key value [TTL ms]")
			return false
		}
		var ttl int64
		if len(args) == 5 {
			if asciiUpper(args[3]) != "TTL" {
				writeErrorReply(bw, "SET option must be TTL")
				return false
			}
			ms, err := strconv.ParseInt(string(args[4]), 10, 64)
			if err != nil || ms < 0 || ms > maxTTLms {
				writeErrorReply(bw, "bad TTL")
				return false
			}
			ttl = ms * int64(time.Millisecond)
		}
		if err := s.store.Set(th, s.now(), args[1], args[2], ttl); err != nil {
			writeErrorReply(bw, err.Error())
			return false
		}
		writeStatus(bw, "OK")
	case "DEL":
		if len(args) != 2 {
			writeErrorReply(bw, "DEL needs 1 argument")
			return false
		}
		ok, err := s.store.Del(th, args[1])
		if err != nil {
			writeErrorReply(bw, err.Error())
			return false
		}
		writeInt(bw, b2i(ok))
	case "EXPIRE":
		if len(args) != 3 {
			writeErrorReply(bw, "EXPIRE needs key and ms")
			return false
		}
		ms, err := strconv.ParseInt(string(args[2]), 10, 64)
		if err != nil || ms > maxTTLms {
			writeErrorReply(bw, "bad TTL")
			return false
		}
		// ms <= 0 means delete; pass it through unconverted so a huge
		// negative ms cannot overflow the multiply either.
		ttl := ms
		if ms > 0 {
			ttl = ms * int64(time.Millisecond)
		}
		ok, err := s.store.Expire(th, s.now(), args[1], ttl)
		if err != nil {
			writeErrorReply(bw, err.Error())
			return false
		}
		writeInt(bw, b2i(ok))
	case "STATS":
		if f, ok := th.(alloc.Flusher); ok {
			f.Flush()
		}
		writeBulk(bw, []byte(s.store.StatsText()))
	case "QUIT":
		writeStatus(bw, "OK")
		return true
	default:
		writeErrorReply(bw, fmt.Sprintf("unknown command %q", cmd))
	}
	return false
}

// Snapshot writes a point-in-time copy of the heap image to the
// configured path (temp file + rename, so a host crash mid-save never
// leaves a torn snapshot). Mutations are quiesced (snapMu held for
// write) while the image is captured, so the snapshot is a consistent
// cut on both device kinds: on a simulated device the persisted media
// image is saved; on a direct device the mmap is copied to a private
// buffer under the lock and written out after serving resumes.
// `nvstat -check` (or -repair) still validates a snapshot before it is
// trusted, guarding against media-level corruption.
func (s *Server) Snapshot() error {
	if s.snapshotPath == "" {
		return errors.New("nvkv: snapshots disabled (no snapshot path configured)")
	}
	switch dev := s.heap.Device().(type) {
	case *pmem.Device:
		s.snapMu.Lock()
		err := dev.SaveImage(s.snapshotPath)
		s.snapMu.Unlock()
		return err
	default:
		s.snapMu.Lock()
		src := dev.Bytes(0, int(dev.Size()))
		img := make([]byte, len(src))
		copy(img, src)
		s.snapMu.Unlock()
		dir := filepath.Dir(s.snapshotPath)
		tmp, err := os.CreateTemp(dir, ".nvkv-snap-*")
		if err != nil {
			return err
		}
		name := tmp.Name()
		_, err = tmp.Write(img)
		if err == nil {
			err = tmp.Sync()
		}
		if err != nil {
			tmp.Close()
			os.Remove(name)
			return err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(name)
			return err
		}
		return os.Rename(name, s.snapshotPath)
	}
}

// asciiUpper upper-cases a short command word without allocating for
// the common already-upper case.
func asciiUpper(b []byte) string {
	upper := true
	for _, c := range b {
		if c >= 'a' && c <= 'z' {
			upper = false
			break
		}
	}
	if upper {
		return string(b)
	}
	u := bytes.ToUpper(b)
	return string(u)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
