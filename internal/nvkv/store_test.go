package nvkv

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

func newStore(t *testing.T) (pmem.Dev, alloc.Heap, alloc.Thread, *Store) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 64 << 20, Strict: true})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	st, err := CreateStore(h, th, 0, StoreConfig{Buckets: 128})
	if err != nil {
		t.Fatal(err)
	}
	return dev, h, th, st
}

func TestStoreBasic(t *testing.T) {
	_, _, th, st := newStore(t)
	defer th.Close()
	if err := st.Set(th, 1, []byte("k"), []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Get(th, 2, []byte("k"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	// Overwrite frees the old record and replaces in place.
	if err := st.Set(th, 3, []byte("k"), []byte("v2-longer"), 0); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := st.Get(th, 4, []byte("k")); string(v) != "v2-longer" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if st.Len() != 1 {
		t.Fatalf("len %d", st.Len())
	}
	ok, err = st.Del(th, []byte("k"))
	if err != nil || !ok {
		t.Fatalf("del: %v %v", ok, err)
	}
	if _, ok, _ := st.Get(th, 5, []byte("k")); ok {
		t.Fatal("deleted key readable")
	}
	if ok, _ := st.Del(th, []byte("k")); ok {
		t.Fatal("double delete")
	}
	if st.Len() != 0 {
		t.Fatalf("len after del %d", st.Len())
	}
}

func TestStoreLimits(t *testing.T) {
	_, _, th, st := newStore(t)
	defer th.Close()
	if err := st.Set(th, 1, nil, []byte("v"), 0); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
	if err := st.Set(th, 1, make([]byte, MaxKeyLen+1), []byte("v"), 0); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("huge key: %v", err)
	}
	if _, _, err := st.Get(th, 1, nil); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("empty key get: %v", err)
	}
	big := make([]byte, MaxBulk+1)
	if err := st.Set(th, 1, []byte("k"), big, 0); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("huge value: %v", err)
	}
	// Empty values are legal.
	if err := st.Set(th, 1, []byte("k"), nil, 0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := st.Get(th, 2, []byte("k")); err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value: %q %v %v", v, ok, err)
	}
}

func TestStoreExpiry(t *testing.T) {
	_, _, th, st := newStore(t)
	defer th.Close()
	if err := st.Set(th, 100, []byte("k"), []byte("v"), 50); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get(th, 149, []byte("k")); !ok {
		t.Fatal("expired early")
	}
	if _, ok, _ := st.Get(th, 150, []byte("k")); ok {
		t.Fatal("not expired at deadline")
	}
	// Re-arm via Expire before expiry.
	if err := st.Set(th, 100, []byte("k2"), []byte("v"), 50); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Expire(th, 120, []byte("k2"), 1000); err != nil || !ok {
		t.Fatalf("expire: %v %v", ok, err)
	}
	if _, ok, _ := st.Get(th, 200, []byte("k2")); !ok {
		t.Fatal("re-armed key expired")
	}
	// Expire with ttl<=0 deletes.
	if ok, err := st.Expire(th, 200, []byte("k2"), 0); err != nil || !ok {
		t.Fatalf("expire 0: %v %v", ok, err)
	}
	if _, ok, _ := st.Get(th, 201, []byte("k2")); ok {
		t.Fatal("expire 0 left key")
	}
	// Expire on absent/expired keys reports false.
	if ok, _ := st.Expire(th, 300, []byte("k"), 100); ok {
		t.Fatal("expire on expired key")
	}
	if ok, _ := st.Expire(th, 300, []byte("nope"), 100); ok {
		t.Fatal("expire on absent key")
	}
	// A Set on the expired key reclaims and replaces it.
	if err := st.Set(th, 300, []byte("k"), []byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := st.Get(th, 301, []byte("k")); !ok || string(v) != "v2" {
		t.Fatalf("reclaim: %q %v", v, ok)
	}
}

func TestStoreReopen(t *testing.T) {
	dev, h, th, st := newStore(t)
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		if err := st.Set(th, 1, []byte(k), []byte(v), 0); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 200; i += 3 {
		k := fmt.Sprintf("key-%d", i)
		if _, err := st.Del(th, []byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	if f, ok := th.(alloc.Flusher); ok {
		f.Flush()
	}
	th.Close()
	_ = h

	h2, _, err := core.Open(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(h2, 0, StoreConfig{Buckets: 128})
	if err != nil {
		t.Fatal(err)
	}
	th2 := h2.NewThread()
	defer th2.Close()
	if got := st2.Len(); got != int64(len(want)) {
		t.Fatalf("reopened Len %d, want %d", got, len(want))
	}
	for k, v := range want {
		got, ok, err := st2.Get(th2, 1, []byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("reopened %s: %q %v %v", k, got, ok, err)
		}
	}
}

// TestStoreConcurrent exercises the stripe locking: disjoint and
// overlapping keys mutated from many goroutines, each with its own
// allocator thread (run under -race).
func TestStoreConcurrent(t *testing.T) {
	_, h, setup, st := newStore(t)
	setup.Close()
	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := h.NewThread()
			defer th.Close()
			for i := 0; i < perWorker; i++ {
				// Private key plus a shared hot key per round.
				priv := []byte(fmt.Sprintf("w%d-%d", w, i%17))
				val := []byte(fmt.Sprintf("v-%d-%d", w, i))
				if err := st.Set(th, int64(i), priv, val, 0); err != nil {
					errs[w] = err
					return
				}
				got, ok, err := st.Get(th, int64(i), priv)
				if err != nil || !ok || !bytes.Equal(got, val) {
					errs[w] = fmt.Errorf("w%d: readback %q %v %v", w, got, ok, err)
					return
				}
				hot := []byte("hot")
				switch i % 3 {
				case 0:
					if err := st.Set(th, int64(i), hot, val, 0); err != nil {
						errs[w] = err
						return
					}
				case 1:
					if _, _, err := st.Get(th, int64(i), hot); err != nil {
						errs[w] = err
						return
					}
				default:
					if _, err := st.Del(th, hot); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
