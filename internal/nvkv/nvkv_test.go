package nvkv_test

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/experiment"
	"nvalloc/internal/nvkv"
	"nvalloc/internal/pmem"
	"nvalloc/internal/traffic"
)

// The crash-restart harness: record one deterministic traffic script
// against a virtual-time server with the flush journal on, sampling the
// journal watermark after every acknowledged operation; then reopen the
// device image at EVERY persistence boundary (plus a torn variant of
// each) and hold the recovered store to the acknowledged-durability
// contract. Because the replay is single-connection and serial, the
// watermark after op i is exact: boundaries in (marks[i], marks[i+1])
// have exactly op i+1 in flight, and no other key may move.

const (
	harnessDevBytes = 24 << 20
	harnessBuckets  = 256
	harnessRootSlot = 0
	tornSeed        = 0xDECAF
)

type recording struct {
	script    traffic.Script
	journal   []pmem.FlushDelta
	setupMark int
	marks     []int // journal watermark after op i was acknowledged
}

// startVirtualServer builds a fresh store on a strict, journaling
// simulated device and serves it over a net.Pipe.
func startVirtualServer(t *testing.T, clock *atomic.Int64) (*pmem.Device, net.Conn, func()) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: harnessDevBytes, Strict: true, Journal: true})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	store, err := nvkv.CreateStore(h, th, harnessRootSlot, nvkv.StoreConfig{Buckets: harnessBuckets})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := th.(alloc.Flusher); ok {
		f.Flush()
	}
	th.Close()
	srv := nvkv.NewServer(store, nvkv.ServerConfig{Now: clock.Load})
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(server)
		close(done)
	}()
	return dev, client, func() {
		client.Close()
		<-done
	}
}

// record replays a generated script and returns the journal plus the
// per-op watermarks.
func record(t *testing.T, seed uint64, nOps, keys int) recording {
	t.Helper()
	var clock atomic.Int64
	dev, client, shutdown := startVirtualServer(t, &clock)
	setupMark := dev.JournalLen()

	script := traffic.GenScript(seed, nOps, keys)
	marks := make([]int, len(script.Ops))
	err := traffic.Replay(client, script,
		func(now int64) { clock.Store(now) },
		func(i int) { marks[i] = dev.JournalLen() })
	if err != nil {
		t.Fatalf("seed %d: replay: %v", seed, err)
	}
	shutdown()
	return recording{script: script, journal: dev.JournalSnapshot(), setupMark: setupMark, marks: marks}
}

// entryVisible mirrors the store's lazy-expiry read rule.
func entryVisible(e traffic.Entry, now int64) bool {
	return e.Expiry == 0 || e.Expiry > now
}

// applyEntry computes a single key's post-state for an op executed at
// now, given its pre-state (the per-key projection of Model.Apply).
func applyEntry(op traffic.Op, now int64, pre traffic.Entry, preOk bool) (traffic.Entry, bool) {
	switch op.Kind {
	case traffic.OpSet:
		var exp int64
		if op.TTLms > 0 {
			exp = now + op.TTLms*1e6
		}
		return traffic.Entry{Val: op.Val, Expiry: exp}, true
	case traffic.OpDel:
		return traffic.Entry{}, false
	case traffic.OpExpire:
		if !preOk || !entryVisible(pre, now) {
			return pre, preOk
		}
		if op.TTLms <= 0 {
			return traffic.Entry{}, false
		}
		return traffic.Entry{Val: pre.Val, Expiry: now + op.TTLms*1e6}, true
	}
	return pre, preOk // GET
}

// expectKey asserts one recovered key matches entry state (e, ok) at
// probeNow.
func expectKey(st *nvkv.Store, th alloc.Thread, key string, e traffic.Entry, ok bool, probeNow int64) error {
	val, found, err := st.Get(th, probeNow, []byte(key))
	if err != nil {
		return fmt.Errorf("GET %s: %v", key, err)
	}
	if ok && entryVisible(e, probeNow) {
		if !found {
			return fmt.Errorf("acknowledged SET lost: %s absent", key)
		}
		if !bytes.Equal(val, e.Val) {
			return fmt.Errorf("acknowledged SET corrupted: %s has %d bytes, want %d", key, len(val), len(e.Val))
		}
	} else if found {
		return fmt.Errorf("deleted/expired key resurrected: %s present", key)
	}
	return nil
}

// checkImage opens the heap+store in a materialized crash image and
// verifies the recovered state against the model after op i.
//
// At an exact acknowledgement boundary (k == marks[i], untorn) nothing
// is in flight and the full key universe must match the model. At an
// intermediate or torn boundary op i+1 is in flight: its key may read as
// either its pre- or its post-state, while a deterministic sample of
// other keys (plus periodic full sweeps) must match the model exactly.
func checkImage(scratch *pmem.Device, rec *recording, model traffic.Model, i, k int, torn bool) error {
	h, _, err := core.Open(scratch, core.DefaultOptions(core.LOG))
	if err != nil {
		return fmt.Errorf("core.Open: %v", err)
	}
	st, err := nvkv.OpenStore(h, harnessRootSlot, nvkv.StoreConfig{Buckets: harnessBuckets})
	if err != nil {
		return fmt.Errorf("OpenStore: %v", err)
	}
	th := h.NewThread()
	defer th.Close()
	probeNow := traffic.ProbeNow(len(rec.script.Ops))

	atAck := !torn && i >= 0 && k == rec.marks[i]
	var inflight *traffic.Op
	if !atAck && i+1 < len(rec.script.Ops) {
		inflight = &rec.script.Ops[i+1]
	}

	if atAck || k%64 == 0 {
		// Full-universe sweep, relaxing only the in-flight key.
		var relax map[string]bool
		if inflight != nil {
			relax = map[string]bool{inflight.Key: true}
		}
		if err := traffic.CheckRecovered(st, th, model, rec.script.Keys, probeNow, relax); err != nil {
			return err
		}
	} else {
		// Targeted: a deterministic sample of settled keys.
		uni := rec.script.Keys
		for j := 0; j < 8; j++ {
			key := uni[(k*13+j*37)%len(uni)]
			if inflight != nil && key == inflight.Key {
				continue
			}
			e, ok := model[key]
			if err := expectKey(st, th, key, e, ok, probeNow); err != nil {
				return err
			}
		}
	}

	if inflight != nil {
		// The in-flight op's key must be in its pre- or post-state —
		// nothing in between, nothing else.
		pre, preOk := model[inflight.Key]
		post, postOk := applyEntry(*inflight, traffic.NowAt(i+1), pre, preOk)
		errPre := expectKey(st, th, inflight.Key, pre, preOk, probeNow)
		errPost := expectKey(st, th, inflight.Key, post, postOk, probeNow)
		if errPre != nil && errPost != nil {
			return fmt.Errorf("in-flight %s %s in neither admissible state: pre: %v / post: %v",
				inflight.Kind, inflight.Key, errPre, errPost)
		}
	}
	return nil
}

// verify enumerates every persistence boundary of a recording — and a
// torn variant of each — on the experiment worker pool.
func verify(t *testing.T, rec recording) (boundaries int) {
	t.Helper()
	end := len(rec.journal) // boundaries rec.setupMark..end inclusive

	// Boundaries inside heap/store creation precede any service
	// acknowledgement; sample them for panic-free typed-error (or
	// successful) opens.
	{
		cur := pmem.NewImageCursor(harnessDevBytes, rec.journal)
		scratch := pmem.New(pmem.Config{Size: harnessDevBytes})
		for k := 0; k < rec.setupMark; k += 97 {
			cur.Advance(k)
			cur.MaterializeInto(scratch)
			if h, _, err := core.Open(scratch, core.DefaultOptions(core.LOG)); err == nil {
				// A successfully opened partial heap must still refuse
				// or survive a store open without panicking.
				_, _ = nvkv.OpenStore(h, harnessRootSlot, nvkv.StoreConfig{Buckets: harnessBuckets})
			}
			boundaries++
		}
	}

	const workers = 4
	total := end - rec.setupMark + 1
	errs := make([]error, workers)
	counts := make([]int, workers)
	experiment.Config{Workers: workers}.RunCells(workers, func(w int) {
		lo := rec.setupMark + total*w/workers
		hi := rec.setupMark + total*(w+1)/workers // exclusive
		cur := pmem.NewImageCursor(harnessDevBytes, rec.journal)
		scratch := pmem.New(pmem.Config{Size: harnessDevBytes})
		model := make(traffic.Model)
		i := -1 // last op with marks[i] <= current boundary
		for i+1 < len(rec.marks) && rec.marks[i+1] <= lo {
			i++
			model.Apply(rec.script.Ops[i], traffic.NowAt(i))
		}
		for k := lo; k < hi; k++ {
			cur.Advance(k)
			for i+1 < len(rec.marks) && rec.marks[i+1] <= k {
				i++
				model.Apply(rec.script.Ops[i], traffic.NowAt(i))
			}
			if k%64 == 0 {
				cur.MaterializeInto(scratch)
				if probs := core.Check(scratch, core.DefaultOptions(core.LOG)); len(probs) > 0 {
					errs[w] = fmt.Errorf("boundary %d: core.Check: %v", k, probs[0])
					return
				}
			}
			cur.MaterializeInto(scratch)
			if err := checkImage(scratch, &rec, model, i, k, false); err != nil {
				errs[w] = fmt.Errorf("boundary %d: %v", k, err)
				return
			}
			counts[w]++
			if cur.MaterializeTornInto(scratch, tornSeed) {
				if err := checkImage(scratch, &rec, model, i, k, true); err != nil {
					errs[w] = fmt.Errorf("boundary %d (torn): %v", k, err)
					return
				}
				counts[w]++
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range counts {
		boundaries += c
	}
	return boundaries
}

// TestCrashRestartBoundaries is the service-level crash-consistency
// proof: across three seeds, every acknowledged SET survives and every
// acknowledged DEL stays deleted at every enumerated cut point.
func TestCrashRestartBoundaries(t *testing.T) {
	nOps := 260
	if testing.Short() {
		nOps = 90
	}
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rec := record(t, seed, nOps, 96)
			if !sort.IntsAreSorted(rec.marks) {
				t.Fatal("journal watermarks are not monotone")
			}
			n := verify(t, rec)
			t.Logf("seed %d: %d ops, %d journal deltas, %d boundary images verified",
				seed, nOps, len(rec.journal), n)
		})
	}
}

// TestReplayAgainstModel runs a longer script live (no crashes) and
// relies on Replay's built-in reply verification, then reopens the final
// image cold and sweeps it.
func TestReplayAgainstModel(t *testing.T) {
	var clock atomic.Int64
	dev, client, shutdown := startVirtualServer(t, &clock)
	script := traffic.GenScript(7, 1500, 128)
	model := make(traffic.Model)
	err := traffic.Replay(client, script,
		func(now int64) { clock.Store(now) },
		nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range script.Ops {
		model.Apply(op, traffic.NowAt(i))
	}
	shutdown()

	// Cold restart on the final persisted image (a power cut right
	// after the last acknowledged flush).
	journal := dev.JournalSnapshot()
	cur := pmem.NewImageCursor(harnessDevBytes, journal)
	cur.Advance(len(journal))
	dev2 := pmem.New(pmem.Config{Size: harnessDevBytes})
	cur.MaterializeInto(dev2)
	h, _, err := core.Open(dev2, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	st, err := nvkv.OpenStore(h, harnessRootSlot, nvkv.StoreConfig{Buckets: harnessBuckets})
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	defer th.Close()
	if err := traffic.CheckRecovered(st, th, model, script.Keys, traffic.ProbeNow(len(script.Ops)), nil); err != nil {
		t.Fatal(err)
	}
	if got, want := st.Len(), int64(countVisible(model, traffic.ProbeNow(len(script.Ops)))); got < want {
		t.Fatalf("recovered store Len %d < %d visible model keys", got, want)
	}
}

func countVisible(m traffic.Model, now int64) int {
	n := 0
	for _, e := range m {
		if entryVisible(e, now) {
			n++
		}
	}
	return n
}

// TestServeBasic covers the command surface over a pipe: TTL expiry
// under an injected clock, reply shapes, stats, unknown commands, and
// pipelined batches.
func TestServeBasic(t *testing.T) {
	var clock atomic.Int64
	clock.Store(1)
	_, client, shutdown := startVirtualServer(t, &clock)
	defer shutdown()
	br := bufio.NewReader(client)
	bw := bufio.NewWriter(client)

	do := func(args ...string) nvkv.Reply { return doCmd(t, br, bw, args...) }

	if rep := do("PING"); rep.Kind != nvkv.ReplyStatus || rep.Status != "PONG" {
		t.Fatalf("PING: %+v", rep)
	}
	if rep := do("GET", "nope"); rep.Kind != nvkv.ReplyNil {
		t.Fatalf("GET absent: %+v", rep)
	}
	if rep := do("SET", "a", "hello"); rep.Kind != nvkv.ReplyStatus || rep.Status != "OK" {
		t.Fatalf("SET: %+v", rep)
	}
	if rep := do("GET", "a"); rep.Kind != nvkv.ReplyBulk || string(rep.Bulk) != "hello" {
		t.Fatalf("GET: %+v", rep)
	}
	if rep := do("DEL", "a"); rep.Kind != nvkv.ReplyInt || rep.Int != 1 {
		t.Fatalf("DEL: %+v", rep)
	}
	if rep := do("DEL", "a"); rep.Kind != nvkv.ReplyInt || rep.Int != 0 {
		t.Fatalf("DEL absent: %+v", rep)
	}

	// TTL: set at t=1ns with 5 ms TTL; visible until the clock passes
	// 1 + 5e6 ns.
	if rep := do("SET", "b", "v", "TTL", "5"); rep.Kind != nvkv.ReplyStatus {
		t.Fatalf("SET TTL: %+v", rep)
	}
	if rep := do("GET", "b"); rep.Kind != nvkv.ReplyBulk {
		t.Fatalf("GET before expiry: %+v", rep)
	}
	clock.Store(1 + 5e6 + 1)
	if rep := do("GET", "b"); rep.Kind != nvkv.ReplyNil {
		t.Fatalf("GET after expiry: %+v", rep)
	}
	// EXPIRE on the expired key reports 0; re-set then expire-now.
	if rep := do("EXPIRE", "b", "100"); rep.Kind != nvkv.ReplyInt || rep.Int != 0 {
		t.Fatalf("EXPIRE expired: %+v", rep)
	}
	if rep := do("SET", "b", "v2"); rep.Kind != nvkv.ReplyStatus {
		t.Fatalf("re-SET: %+v", rep)
	}
	if rep := do("EXPIRE", "b", "0"); rep.Kind != nvkv.ReplyInt || rep.Int != 1 {
		t.Fatalf("EXPIRE 0: %+v", rep)
	}
	if rep := do("GET", "b"); rep.Kind != nvkv.ReplyNil {
		t.Fatalf("GET after EXPIRE 0: %+v", rep)
	}

	if rep := do("STATS"); rep.Kind != nvkv.ReplyBulk || !bytes.Contains(rep.Bulk, []byte("lease_overhead_bytes:")) {
		t.Fatalf("STATS: %+v", rep)
	}
	if rep := do("NOSUCH"); rep.Kind != nvkv.ReplyError {
		t.Fatalf("unknown command: %+v", rep)
	}
	if rep := do("SET", "onlykey"); rep.Kind != nvkv.ReplyError {
		t.Fatalf("bad arity: %+v", rep)
	}

	// Pipelined batch: all commands written before any reply is read.
	for i := 0; i < 10; i++ {
		if err := nvkv.WriteCommand(bw, []byte("SET"), []byte(fmt.Sprintf("p%d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rep, err := nvkv.ReadReply(br)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Kind != nvkv.ReplyStatus {
			t.Fatalf("pipelined SET %d: %+v", i, rep)
		}
	}

	if rep := do("QUIT"); rep.Kind != nvkv.ReplyStatus {
		t.Fatalf("QUIT: %+v", rep)
	}
}

// doCmd writes one command and reads its reply (shared test client).
func doCmd(t *testing.T, br *bufio.Reader, bw *bufio.Writer, args ...string) nvkv.Reply {
	t.Helper()
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	if err := nvkv.WriteCommand(bw, bs...); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := nvkv.ReadReply(br)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTTLOverflow holds the TTL paths to their bounds: a millisecond
// count whose ns conversion would overflow int64 is rejected, the
// largest representable TTL clamps to "never expires" instead of
// wrapping into the past, and a huge negative EXPIRE deletes rather
// than wrapping positive.
func TestTTLOverflow(t *testing.T) {
	var clock atomic.Int64
	clock.Store(1)
	_, client, shutdown := startVirtualServer(t, &clock)
	defer shutdown()
	br := bufio.NewReader(client)
	bw := bufio.NewWriter(client)
	do := func(args ...string) nvkv.Reply { return doCmd(t, br, bw, args...) }

	// math.MaxInt64/1e6 = 9223372036854: the largest ms that converts.
	if rep := do("SET", "k", "v", "TTL", "9223372036855"); rep.Kind != nvkv.ReplyError {
		t.Fatalf("SET over-limit TTL accepted: %+v", rep)
	}
	if rep := do("SET", "k", "v", "TTL", "9223372036854775807"); rep.Kind != nvkv.ReplyError {
		t.Fatalf("SET MaxInt64 TTL accepted: %+v", rep)
	}
	// The largest accepted TTL: now+ttl saturates, the key never expires.
	if rep := do("SET", "k", "v", "TTL", "9223372036854"); rep.Kind != nvkv.ReplyStatus {
		t.Fatalf("SET max TTL: %+v", rep)
	}
	clock.Store(1 << 62)
	if rep := do("GET", "k"); rep.Kind != nvkv.ReplyBulk || string(rep.Bulk) != "v" {
		t.Fatalf("max-TTL key expired or lost: %+v", rep)
	}
	// EXPIRE with an overflowing positive ms is rejected, key untouched.
	if rep := do("EXPIRE", "k", "9223372036854775807"); rep.Kind != nvkv.ReplyError {
		t.Fatalf("EXPIRE MaxInt64 accepted: %+v", rep)
	}
	if rep := do("GET", "k"); rep.Kind != nvkv.ReplyBulk {
		t.Fatalf("key lost after rejected EXPIRE: %+v", rep)
	}
	// EXPIRE re-arm to the maximum still survives any clock.
	if rep := do("EXPIRE", "k", "9223372036854"); rep.Kind != nvkv.ReplyInt || rep.Int != 1 {
		t.Fatalf("EXPIRE max TTL: %+v", rep)
	}
	if rep := do("GET", "k"); rep.Kind != nvkv.ReplyBulk {
		t.Fatalf("max-TTL re-armed key expired: %+v", rep)
	}
	// A hugely negative ms is a delete, not a wrapped-positive TTL.
	if rep := do("EXPIRE", "k", "-9223372036854775808"); rep.Kind != nvkv.ReplyInt || rep.Int != 1 {
		t.Fatalf("EXPIRE MinInt64: %+v", rep)
	}
	if rep := do("GET", "k"); rep.Kind != nvkv.ReplyNil {
		t.Fatalf("key survived MinInt64 EXPIRE: %+v", rep)
	}
}

// TestSnapshotConcurrentDirect hammers SETs from several connections
// while another connection takes snapshots of a direct (mmap-style)
// device. Under -race this is the proof that the snapshot copy is
// quiesced, not a torn read of live memory; afterwards the last
// snapshot must open as a valid heap+store image.
func TestSnapshotConcurrentDirect(t *testing.T) {
	dev, err := pmem.NewDirect(pmem.DirectConfig{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	store, err := nvkv.CreateStore(h, th, harnessRootSlot, nvkv.StoreConfig{Buckets: harnessBuckets})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := th.(alloc.Flusher); ok {
		f.Flush()
	}
	th.Close()
	snapPath := filepath.Join(t.TempDir(), "snap.img")
	srv := nvkv.NewServer(store, nvkv.ServerConfig{SnapshotPath: snapPath})

	const writers = 4
	var wg sync.WaitGroup
	connect := func() (*bufio.Reader, *bufio.Writer, net.Conn) {
		client, server := net.Pipe()
		go srv.ServeConn(server)
		return bufio.NewReader(client), bufio.NewWriter(client), client
	}
	for w := 0; w < writers; w++ {
		br, bw, client := connect()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer client.Close()
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%32)
				if err := nvkv.WriteCommand(bw, []byte("SET"), []byte(key), []byte("value")); err != nil {
					t.Error(err)
					return
				}
				if err := bw.Flush(); err != nil {
					t.Error(err)
					return
				}
				rep, err := nvkv.ReadReply(br)
				if err != nil {
					t.Error(err)
					return
				}
				if rep.Kind != nvkv.ReplyStatus {
					t.Errorf("writer %d SET %d: %+v", w, i, rep)
					return
				}
			}
		}(w)
	}
	br, bw, client := connect()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer client.Close()
		for i := 0; i < 8; i++ {
			if err := nvkv.WriteCommand(bw, []byte("SNAPSHOT")); err != nil {
				t.Error(err)
				return
			}
			if err := bw.Flush(); err != nil {
				t.Error(err)
				return
			}
			rep, err := nvkv.ReadReply(br)
			if err != nil {
				t.Error(err)
				return
			}
			if rep.Kind != nvkv.ReplyStatus {
				t.Errorf("SNAPSHOT %d: %+v", i, rep)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// The final snapshot (taken with writers mid-flight) must be a
	// loadable image whose readable keys are uncorrupted.
	dev2, err := pmem.NewDirect(pmem.DirectConfig{Size: 64 << 20, Path: snapPath})
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	h2, _, err := core.Open(dev2, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatalf("snapshot image does not open: %v", err)
	}
	st2, err := nvkv.OpenStore(h2, harnessRootSlot, nvkv.StoreConfig{Buckets: harnessBuckets})
	if err != nil {
		t.Fatalf("snapshot store does not open: %v", err)
	}
	th2 := h2.NewThread()
	defer th2.Close()
	for w := 0; w < writers; w++ {
		for k := 0; k < 32; k++ {
			key := []byte(fmt.Sprintf("w%d-k%d", w, k))
			val, ok, err := st2.Get(th2, 1, key)
			if err != nil {
				t.Fatalf("snapshot GET %s: %v", key, err)
			}
			if ok && !bytes.Equal(val, []byte("value")) {
				t.Fatalf("snapshot GET %s: corrupt value %q", key, val)
			}
		}
	}
}
