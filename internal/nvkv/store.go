package nvkv

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"

	"nvalloc/internal/alloc"
	"nvalloc/internal/phash"
	"nvalloc/internal/pmem"
)

// The persistent layout. Each key-value pair is one allocator-backed
// record blob, reached through the phash index: the index maps
// hash64(key bytes) -> record PAddr, and the record carries the full key
// so hits are verified byte-for-byte (a 64-bit digest collision is
// detected, never silently conflated).
//
// Record blob (16 + klen + vlen + 4 bytes, allocated via Thread.Malloc):
//
//	[0,8)              header: magic(16) | klen(16) | vlen(32)
//	[8,16)             expiry, absolute ns (0 = no expiry)
//	[16,16+klen)       key bytes
//	[16+klen,...+vlen) value bytes
//	last 4             CRC32 (IEEE) of key||value
//
// Consistency: the record is written and fenced before the index entry
// publishes it (phash's presence-bit or in-place pointer commit, both
// 8-byte atomic persists). A crash between publish and the free of a
// superseded record leaks the old blob — a leak, never corruption; the
// GC variant's conservative scan reclaims it, and under LOG/IC it is
// visible to a Heap.Objects walk (DESIGN.md §10 discusses the window).
const (
	recHeader = 0
	recExpiry = 8
	recKey    = 16

	recMagic = 0x4B56 // "KV"

	// MaxKeyLen bounds keys; the wire protocol's MaxBulk bounds values.
	MaxKeyLen = 4 << 10
)

// Store errors.
var (
	// ErrKeyTooLarge is returned for keys above MaxKeyLen or empty keys.
	ErrKeyTooLarge = errors.New("nvkv: key empty or exceeds MaxKeyLen")
	// ErrValueTooLarge is returned for values above the store's cap.
	ErrValueTooLarge = errors.New("nvkv: value exceeds maximum size")
	// ErrHashCollision is returned when a Set would land on a different
	// key with the same 64-bit digest. The store refuses to clobber it.
	ErrHashCollision = errors.New("nvkv: 64-bit key digest collision")
	// ErrRecordCorrupt wraps every record integrity failure (bad magic,
	// bad CRC, out-of-range geometry).
	ErrRecordCorrupt = errors.New("nvkv: record corrupt")
)

const storeStripes = 256

// Store is the persistent KV engine: a phash directory of record blobs
// on an NVAlloc heap. It is safe for concurrent use; every read-modify-
// write on a key holds that key's service-level stripe lock around the
// whole lookup/allocate/publish/free sequence (phash's own bucket locks
// only cover single index operations).
type Store struct {
	heap   alloc.Heap
	dev    pmem.Dev
	idx    *phash.Map
	maxVal uint64
	locks  [storeStripes]sync.Mutex

	// Volatile counters (rebuilt or re-zeroed on open).
	liveKeys   atomic.Int64
	gets       atomic.Uint64
	hits       atomic.Uint64
	sets       atomic.Uint64
	dels       atomic.Uint64
	expires    atomic.Uint64
	collisions atomic.Uint64
}

// StoreConfig parameterizes CreateStore.
type StoreConfig struct {
	// Buckets sizes the phash directory (default 1<<15).
	Buckets int
	// MaxValLen caps value sizes (default MaxBulk).
	MaxValLen uint64
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Buckets <= 0 {
		c.Buckets = 1 << 15
	}
	if c.MaxValLen == 0 {
		c.MaxValLen = MaxBulk
	}
	return c
}

// CreateStore formats a fresh store whose index header persists in the
// heap's rootSlot.
func CreateStore(h alloc.Heap, th alloc.Thread, rootSlot int, cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	// The phash blob (its per-entry allocation) holds exactly the pair
	// (key digest, record PAddr): 16 bytes.
	idx, err := phash.Create(h, th, rootSlot, cfg.Buckets, 16)
	if err != nil {
		return nil, err
	}
	return &Store{heap: h, dev: h.Device(), idx: idx, maxVal: cfg.MaxValLen}, nil
}

// OpenStore attaches to an existing store after a restart or crash
// recovery. The live-key counter is rebuilt by walking the directory.
func OpenStore(h alloc.Heap, rootSlot int, cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	idx, err := phash.Open(h, rootSlot)
	if err != nil {
		return nil, err
	}
	s := &Store{heap: h, dev: h.Device(), idx: idx, maxVal: cfg.MaxValLen}
	s.liveKeys.Store(int64(idx.Len()))
	return s, nil
}

// hashKey is FNV-1a 64 over the key bytes.
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range key {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func (s *Store) lockFor(k64 uint64) *sync.Mutex {
	return &s.locks[k64%storeStripes]
}

// readRecordMeta loads and sanity-checks a record header, returning key
// and value geometry.
func (s *Store) readRecordMeta(rec pmem.PAddr) (klen, vlen uint64, expiry int64, err error) {
	hdr := s.dev.ReadU64(rec + recHeader)
	if hdr>>48 != recMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %#x at %#x", ErrRecordCorrupt, hdr>>48, rec)
	}
	klen = (hdr >> 32) & 0xFFFF
	vlen = hdr & 0xFFFFFFFF
	if klen == 0 || klen > MaxKeyLen || vlen > MaxBulk {
		return 0, 0, 0, fmt.Errorf("%w: geometry klen=%d vlen=%d at %#x", ErrRecordCorrupt, klen, vlen, rec)
	}
	return klen, vlen, int64(s.dev.ReadU64(rec + recExpiry)), nil
}

// lookup resolves key to its record, verifying the stored key bytes.
// Caller holds the stripe lock. found=false with rec!=Null never
// happens; a digest collision reports collision=true.
func (s *Store) lookup(th alloc.Thread, k64 uint64, key []byte) (rec pmem.PAddr, expiry int64, found, collision bool, err error) {
	v, ok := s.idx.Get(th, k64)
	if !ok {
		return pmem.Null, 0, false, false, nil
	}
	rec = pmem.PAddr(v)
	klen, _, exp, err := s.readRecordMeta(rec)
	if err != nil {
		return pmem.Null, 0, false, false, err
	}
	if klen != uint64(len(key)) || string(s.dev.Bytes(rec+recKey, int(klen))) != string(key) {
		s.collisions.Add(1)
		return pmem.Null, 0, false, true, nil
	}
	return rec, exp, true, false, nil
}

// writeRecord allocates, writes, flushes and fences a record blob. The
// fence guarantees the record is durable before any index publish that
// could make it reachable.
func (s *Store) writeRecord(th alloc.Thread, key, val []byte, expiry int64) (pmem.PAddr, error) {
	n := uint64(recKey) + uint64(len(key)) + uint64(len(val)) + 4
	rec, err := th.Malloc(n)
	if err != nil {
		return pmem.Null, err
	}
	hdr := uint64(recMagic)<<48 | uint64(len(key))<<32 | uint64(len(val))
	s.dev.WriteU64(rec+recHeader, hdr)
	s.dev.WriteU64(rec+recExpiry, uint64(expiry))
	s.dev.Write(rec+recKey, key)
	s.dev.Write(rec+recKey+pmem.PAddr(len(key)), val)
	crc := crc32.ChecksumIEEE(key)
	crc = crc32.Update(crc, crc32.IEEETable, val)
	s.dev.WriteU32(rec+pmem.PAddr(n-4), crc)
	c := th.Ctx()
	c.Flush(pmem.CatOther, rec, int(n))
	c.Fence()
	return rec, nil
}

// expiryAt computes now+ttl (both ns, ttl > 0), saturating at MaxInt64
// instead of wrapping negative: a TTL too large to represent means
// "effectively never expires", not "already expired".
func expiryAt(now, ttl int64) int64 {
	if now > math.MaxInt64-ttl {
		return math.MaxInt64
	}
	return now + ttl
}

// Set inserts or replaces key with val. A ttl of 0 stores without
// expiry; ttl > 0 expires the key at now+ttl (both in ns). The reply
// contract: when Set returns nil the pair is durable — the record was
// fenced before the index entry's atomic commit, which phash fences
// before returning.
func (s *Store) Set(th alloc.Thread, now int64, key, val []byte, ttl int64) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return ErrKeyTooLarge
	}
	if uint64(len(val)) > s.maxVal {
		return ErrValueTooLarge
	}
	var expiry int64
	if ttl > 0 {
		expiry = expiryAt(now, ttl)
	}
	k64 := hashKey(key)
	lk := s.lockFor(k64)
	lk.Lock()
	defer lk.Unlock()

	old, _, found, collision, err := s.lookup(th, k64, key)
	if err != nil {
		return err
	}
	if collision {
		return ErrHashCollision
	}
	rec, err := s.writeRecord(th, key, val, expiry)
	if err != nil {
		return err
	}
	if err := s.idx.Put(th, k64, uint64(rec)); err != nil {
		// The record never became reachable; return it.
		_ = th.Free(rec)
		return err
	}
	s.sets.Add(1)
	if found {
		// The old record is unreachable from the index now; a crash
		// before this free merely leaks it.
		if err := th.Free(old); err != nil {
			return err
		}
	} else {
		s.liveKeys.Add(1)
	}
	return nil
}

// Get returns the value stored under key, or ok=false when the key is
// absent or expired at now. Expired records are left in place (lazy
// expiry): a later Set or Del reclaims them, keeping Get read-only.
func (s *Store) Get(th alloc.Thread, now int64, key []byte) ([]byte, bool, error) {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return nil, false, ErrKeyTooLarge
	}
	k64 := hashKey(key)
	lk := s.lockFor(k64)
	lk.Lock()
	defer lk.Unlock()
	s.gets.Add(1)

	rec, expiry, found, _, err := s.lookup(th, k64, key)
	if err != nil || !found {
		return nil, false, err
	}
	if expiry != 0 && expiry <= now {
		return nil, false, nil
	}
	klen, vlen, _, err := s.readRecordMeta(rec)
	if err != nil {
		return nil, false, err
	}
	val := s.dev.Read(rec+recKey+pmem.PAddr(klen), int(vlen))
	crc := crc32.ChecksumIEEE(s.dev.Bytes(rec+recKey, int(klen)))
	crc = crc32.Update(crc, crc32.IEEETable, val)
	if got := s.dev.ReadU32(rec + recKey + pmem.PAddr(klen+vlen)); got != crc {
		return nil, false, fmt.Errorf("%w: CRC mismatch at %#x", ErrRecordCorrupt, rec)
	}
	s.hits.Add(1)
	return val, true, nil
}

// Del removes key, reporting whether it was present (expired keys count
// as present for deletion: their storage is reclaimed either way).
func (s *Store) Del(th alloc.Thread, key []byte) (bool, error) {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false, ErrKeyTooLarge
	}
	k64 := hashKey(key)
	lk := s.lockFor(k64)
	lk.Lock()
	defer lk.Unlock()
	return s.delLocked(th, k64, key)
}

func (s *Store) delLocked(th alloc.Thread, k64 uint64, key []byte) (bool, error) {
	rec, _, found, _, err := s.lookup(th, k64, key)
	if err != nil || !found {
		return false, err
	}
	// The presence-bit clear inside Delete is the commit point; it is
	// fenced before Delete returns, so a nil return is a durable delete.
	if _, err := s.idx.Delete(th, k64); err != nil {
		return false, err
	}
	s.dels.Add(1)
	s.liveKeys.Add(-1)
	return true, th.Free(rec)
}

// Expire re-arms key's expiry to now+ttl. A ttl <= 0 deletes the key
// immediately (the redis convention). It reports whether the key was
// present and unexpired.
func (s *Store) Expire(th alloc.Thread, now int64, key []byte, ttl int64) (bool, error) {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false, ErrKeyTooLarge
	}
	k64 := hashKey(key)
	lk := s.lockFor(k64)
	lk.Lock()
	defer lk.Unlock()

	rec, expiry, found, _, err := s.lookup(th, k64, key)
	if err != nil || !found {
		return false, err
	}
	if expiry != 0 && expiry <= now {
		return false, nil
	}
	if ttl <= 0 {
		return s.delLocked(th, k64, key)
	}
	c := th.Ctx()
	// An 8-byte atomic persist: the expiry flips in one commit.
	c.PersistU64(pmem.CatOther, rec+recExpiry, uint64(expiryAt(now, ttl)))
	c.Fence()
	s.expires.Add(1)
	return true, nil
}

// Len returns the live key count (including not-yet-reclaimed expired
// keys), maintained volatilely and rebuilt on open.
func (s *Store) Len() int64 { return s.liveKeys.Load() }

// StatsText renders the operational counters and heap accounting as the
// STATS reply body.
func (s *Store) StatsText() string {
	var lease uint64
	if lo, ok := s.heap.(interface{ LeaseOverhead() uint64 }); ok {
		lease = lo.LeaseOverhead()
	}
	return fmt.Sprintf(
		"keys:%d\nused_bytes:%d\npeak_bytes:%d\nlease_overhead_bytes:%d\n"+
			"sets:%d\ngets:%d\nhits:%d\ndels:%d\nexpires:%d\ncollisions:%d\n",
		s.liveKeys.Load(), s.heap.Used(), s.heap.Peak(), lease,
		s.sets.Load(), s.gets.Load(), s.hits.Load(), s.dels.Load(),
		s.expires.Load(), s.collisions.Load())
}

// Heap exposes the backing heap (STATS, snapshots, tests).
func (s *Store) Heap() alloc.Heap { return s.heap }
