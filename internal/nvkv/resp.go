// Package nvkv is the network-facing persistent key-value service built
// on the NVAlloc heap: a TCP server speaking a minimal RESP-like wire
// protocol whose keys index through the persistent hash (internal/phash)
// and whose values live in allocator-backed, CRC-sealed record blobs.
//
// The service runs on either execution mode: a virtual-time pmem.Device
// for deterministic tests (the crash-restart harness records the flush
// journal and reopens the image at every persistence boundary) or a
// DirectDev — an mmap'd heap file — for wall-clock serving, where a
// kill -9 loses nothing that was acknowledged.
//
// Acknowledged durability is the service contract: a reply is written
// only after the operation's commit point (the index entry's 8-byte
// atomic persist, plus the allocator's WAL/bitmap commits) has been
// fenced. See DESIGN.md §10.
package nvkv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Wire-protocol limits. Oversized frames are rejected before any
// allocation is sized by attacker-controlled input.
const (
	// MaxArgs is the maximum elements in one command array.
	MaxArgs = 8
	// MaxBulk is the maximum byte length of one bulk string (and so the
	// maximum value size the protocol can carry).
	MaxBulk = 8 << 20
	// maxLineLen bounds a single protocol line (inline commands and
	// length headers).
	maxLineLen = 16 << 10
)

// ErrProtocol is the sentinel wrapped by every wire-protocol parse
// error. The parser returns typed errors and never panics, whatever the
// input (FuzzRESPParse holds it to that); io errors (io.EOF,
// io.ErrUnexpectedEOF) pass through unwrapped so callers can tell a
// closed peer from a malformed frame.
var ErrProtocol = errors.New("nvkv: protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// readLine reads one CRLF-terminated line, rejecting lines longer than
// maxLineLen and bare-LF or bare-CR terminators.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, protoErrf("line exceeds %d bytes", maxLineLen)
		}
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if len(line) > maxLineLen {
		return nil, protoErrf("line exceeds %d bytes", maxLineLen)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, protoErrf("line not CRLF-terminated")
	}
	return line[:len(line)-2], nil
}

// parseInt parses a decimal integer from a protocol line without
// tolerating signs, blanks, or empty input (lengths and counts are
// always non-negative on the wire; -1 nil frames are handled by their
// dedicated reply paths). Values that would wrap int64 are rejected, so
// the result is always >= 0 — a 19-digit header like 9999999999999999999
// must never reach a length check as a negative number.
func parseInt(b []byte) (int64, error) {
	if len(b) == 0 || len(b) > 19 {
		return 0, protoErrf("bad integer %q", b)
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, protoErrf("bad integer %q", b)
		}
		d := int64(c - '0')
		if n > (math.MaxInt64-d)/10 {
			return 0, protoErrf("integer %q overflows", b)
		}
		n = n*10 + d
	}
	return n, nil
}

// ReadCommand reads one client command: either a RESP array of bulk
// strings (*N\r\n$len\r\npayload\r\n...) or a space-separated inline
// line. It returns the argument vector; the first element is the
// command name. Limits: at most MaxArgs arguments, at most MaxBulk
// bytes per argument. Every parse failure wraps ErrProtocol; the
// function never panics.
func ReadCommand(br *bufio.Reader) ([][]byte, error) {
	first, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if first != '*' {
		if err := br.UnreadByte(); err != nil {
			return nil, err
		}
		return readInline(br)
	}
	header, err := readLine(br)
	if err != nil {
		return nil, err
	}
	n, err := parseInt(header)
	if err != nil {
		return nil, err
	}
	if n < 1 || n > MaxArgs {
		return nil, protoErrf("array of %d elements (limit %d)", n, MaxArgs)
	}
	args := make([][]byte, 0, n)
	for i := int64(0); i < n; i++ {
		arg, err := readBulk(br)
		if err != nil {
			if err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		args = append(args, arg)
	}
	return args, nil
}

// readBulk reads one $len\r\npayload\r\n frame.
func readBulk(br *bufio.Reader) ([]byte, error) {
	prefix, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if prefix != '$' {
		return nil, protoErrf("expected bulk string, got %q", prefix)
	}
	header, err := readLine(br)
	if err != nil {
		return nil, err
	}
	n, err := parseInt(header)
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxBulk {
		return nil, protoErrf("bulk of %d bytes (limit %d)", n, MaxBulk)
	}
	payload := make([]byte, n+2)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if payload[n] != '\r' || payload[n+1] != '\n' {
		return nil, protoErrf("bulk payload not CRLF-terminated")
	}
	return payload[:n], nil
}

// readInline parses a space-separated inline command line (telnet
// convenience; also the framing the fuzzer stresses hardest).
func readInline(br *bufio.Reader) ([][]byte, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	var args [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' {
			i++
		}
		if i > start {
			if len(args) == MaxArgs {
				return nil, protoErrf("inline command exceeds %d arguments", MaxArgs)
			}
			arg := make([]byte, i-start)
			copy(arg, line[start:i])
			args = append(args, arg)
		}
	}
	if len(args) == 0 {
		return nil, protoErrf("empty inline command")
	}
	return args, nil
}

// WriteCommand writes args as a RESP array of bulk strings (the client
// side of ReadCommand).
func WriteCommand(bw *bufio.Writer, args ...[]byte) error {
	bw.WriteByte('*')
	bw.WriteString(strconv.Itoa(len(args)))
	bw.WriteString("\r\n")
	for _, a := range args {
		bw.WriteByte('$')
		bw.WriteString(strconv.Itoa(len(a)))
		bw.WriteString("\r\n")
		bw.Write(a)
		bw.WriteString("\r\n")
	}
	return nil
}

// Reply kinds.
const (
	ReplyStatus = iota // +OK
	ReplyError         // -ERR ...
	ReplyInt           // :N
	ReplyBulk          // $len payload
	ReplyNil           // $-1
)

// Reply is one server response as seen by a client.
type Reply struct {
	Kind int
	// Status holds the status or error text.
	Status string
	// Int holds the integer for ReplyInt.
	Int int64
	// Bulk holds the payload for ReplyBulk.
	Bulk []byte
}

// ReadReply reads one server reply (the client side of the reply
// writers below). Parse failures wrap ErrProtocol.
func ReadReply(br *bufio.Reader) (Reply, error) {
	prefix, err := br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	switch prefix {
	case '+', '-':
		line, err := readLine(br)
		if err != nil {
			return Reply{}, err
		}
		kind := ReplyStatus
		if prefix == '-' {
			kind = ReplyError
		}
		return Reply{Kind: kind, Status: string(line)}, nil
	case ':':
		line, err := readLine(br)
		if err != nil {
			return Reply{}, err
		}
		neg := false
		if len(line) > 0 && line[0] == '-' {
			neg = true
			line = line[1:]
		}
		n, err := parseInt(line)
		if err != nil {
			return Reply{}, err
		}
		if neg {
			n = -n
		}
		return Reply{Kind: ReplyInt, Int: n}, nil
	case '$':
		header, err := readLine(br)
		if err != nil {
			return Reply{}, err
		}
		if len(header) == 2 && header[0] == '-' && header[1] == '1' {
			return Reply{Kind: ReplyNil}, nil
		}
		n, err := parseInt(header)
		if err != nil {
			return Reply{}, err
		}
		if n < 0 || n > MaxBulk {
			return Reply{}, protoErrf("bulk reply of %d bytes (limit %d)", n, MaxBulk)
		}
		payload := make([]byte, n+2)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF {
				return Reply{}, io.ErrUnexpectedEOF
			}
			return Reply{}, err
		}
		if payload[n] != '\r' || payload[n+1] != '\n' {
			return Reply{}, protoErrf("bulk reply not CRLF-terminated")
		}
		return Reply{Kind: ReplyBulk, Bulk: payload[:n]}, nil
	default:
		return Reply{}, protoErrf("bad reply prefix %q", prefix)
	}
}

// Reply writers (server side).

func writeStatus(bw *bufio.Writer, s string) {
	bw.WriteByte('+')
	bw.WriteString(s)
	bw.WriteString("\r\n")
}

func writeErrorReply(bw *bufio.Writer, msg string) {
	bw.WriteString("-ERR ")
	bw.WriteString(msg)
	bw.WriteString("\r\n")
}

func writeInt(bw *bufio.Writer, n int64) {
	bw.WriteByte(':')
	bw.WriteString(strconv.FormatInt(n, 10))
	bw.WriteString("\r\n")
}

func writeBulk(bw *bufio.Writer, b []byte) {
	bw.WriteByte('$')
	bw.WriteString(strconv.Itoa(len(b)))
	bw.WriteString("\r\n")
	bw.Write(b)
	bw.WriteString("\r\n")
}

func writeNil(bw *bufio.Writer) {
	bw.WriteString("$-1\r\n")
}
