package nvkv

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func readerFor(s string) *bufio.Reader {
	return bufio.NewReader(strings.NewReader(s))
}

func TestReadCommandArray(t *testing.T) {
	args, err := ReadCommand(readerFor("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || string(args[0]) != "SET" || string(args[2]) != "hello" {
		t.Fatalf("args: %q", args)
	}
	// Empty bulk strings are legal frames (the store, not the parser,
	// rejects empty keys).
	args, err = ReadCommand(readerFor("*2\r\n$3\r\nGET\r\n$0\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 2 || len(args[1]) != 0 {
		t.Fatalf("args: %q", args)
	}
}

func TestReadCommandInline(t *testing.T) {
	args, err := ReadCommand(readerFor("  GET   some-key \r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 2 || string(args[0]) != "GET" || string(args[1]) != "some-key" {
		t.Fatalf("args: %q", args)
	}
}

func TestReadCommandErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bare LF line", "GET k\n"},
		{"empty inline", "\r\n"},
		{"too many args", "*9\r\n"},
		{"zero args", "*0\r\n"},
		{"negative count", "*-1\r\n"},
		{"count not a number", "*x\r\n"},
		{"huge bulk", "*1\r\n$99999999999\r\n"},
		{"bulk over limit", "*1\r\n$8388609\r\n"},
		// 19 digits that wrap int64 negative: must be rejected before
		// sizing an allocation (regression: make([]byte, n+2) panicked).
		{"bulk length wraps int64", "*1\r\n$9999999999999999999\r\n"},
		{"array count wraps int64", "*9999999999999999999\r\n"},
		{"bulk bad terminator", "*1\r\n$2\r\nabXX"},
		{"not a bulk", "*1\r\n:5\r\n"},
		{"giant inline line", strings.Repeat("a", 20<<10) + "\r\n"},
		{"inline too many args", "a b c d e f g h i\r\n"},
	}
	for _, c := range cases {
		_, err := ReadCommand(readerFor(c.in))
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: err = %v, want ErrProtocol", c.name, err)
		}
	}
	// Truncation mid-frame is an io error, not a protocol error: the
	// peer hung up.
	for _, in := range []string{"", "*2\r\n$3\r\nGET\r\n", "*1\r\n$5\r\nab"} {
		_, err := ReadCommand(readerFor(in))
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Errorf("%q: err = %v, want io.EOF/ErrUnexpectedEOF", in, err)
		}
	}
}

func TestCommandRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	want := [][]byte{[]byte("SET"), []byte("k"), {0, 1, 2, '\r', '\n', 0xFF}}
	if err := WriteCommand(bw, want...); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got, err := ReadCommand(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d args", len(got))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("arg %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	writeStatus(bw, "OK")
	writeErrorReply(bw, "boom")
	writeInt(bw, -42)
	writeBulk(bw, []byte("payload\r\nwith crlf"))
	writeNil(bw)
	bw.Flush()
	br := bufio.NewReader(&buf)

	for _, want := range []Reply{
		{Kind: ReplyStatus, Status: "OK"},
		{Kind: ReplyError, Status: "ERR boom"},
		{Kind: ReplyInt, Int: -42},
		{Kind: ReplyBulk, Bulk: []byte("payload\r\nwith crlf")},
		{Kind: ReplyNil},
	} {
		got, err := ReadReply(br)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.Status != want.Status || got.Int != want.Int || !bytes.Equal(got.Bulk, want.Bulk) {
			t.Fatalf("reply %+v, want %+v", got, want)
		}
	}
}

// FuzzRESPParse holds the parser to its contract: arbitrary bytes never
// panic, never allocate past the frame limits, and fail only with typed
// errors (ErrProtocol or an io error).
func FuzzRESPParse(f *testing.F) {
	seeds := []string{
		"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n",
		"*1\r\n$4\r\nPING\r\n",
		"GET key\r\n",
		"*2\r\n$3\r\nGET\r\n$0\r\n\r\n",
		"*8\r\n$1\r\na\r\n",
		"$-1\r\n",
		"+OK\r\n",
		":-123\r\n",
		"-ERR nope\r\n",
		"*1\r\n$8388608\r\n",
		"\r\n",
		"*999999999999999999999\r\n",
		"*1\r\n$9999999999999999999\r\n",
		"$9999999999999999999\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			args, err := ReadCommand(br)
			if err != nil {
				if !errors.Is(err, ErrProtocol) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("untyped error: %v", err)
				}
				break
			}
			if len(args) == 0 || len(args) > MaxArgs {
				t.Fatalf("arg count %d out of contract", len(args))
			}
			for _, a := range args {
				if len(a) > MaxBulk {
					t.Fatalf("arg of %d bytes out of contract", len(a))
				}
			}
		}
		br = bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			rep, err := ReadReply(br)
			if err != nil {
				if !errors.Is(err, ErrProtocol) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("untyped reply error: %v", err)
				}
				break
			}
			if rep.Kind < ReplyStatus || rep.Kind > ReplyNil {
				t.Fatalf("reply kind %d out of contract", rep.Kind)
			}
		}
	})
}
