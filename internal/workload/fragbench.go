package workload

import (
	"math/rand"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// FragSpec describes one Fragbench workload (Table 1).
type FragSpec struct {
	Name string
	// Before phase object sizes (uniform in [BeforeMin, BeforeMax]).
	BeforeMin, BeforeMax uint64
	// DeleteRatio is the fraction of live objects deleted in the Delete
	// phase.
	DeleteRatio float64
	// After phase object sizes.
	AfterMin, AfterMax uint64
}

// FragSpecs are the four workloads of Table 1.
var FragSpecs = []FragSpec{
	{Name: "W1", BeforeMin: 100, BeforeMax: 100, DeleteRatio: 0.9, AfterMin: 130, AfterMax: 130},
	{Name: "W2", BeforeMin: 100, BeforeMax: 150, DeleteRatio: 0.0, AfterMin: 200, AfterMax: 250},
	{Name: "W3", BeforeMin: 100, BeforeMax: 150, DeleteRatio: 0.9, AfterMin: 200, AfterMax: 250},
	{Name: "W4", BeforeMin: 100, BeforeMax: 200, DeleteRatio: 0.5, AfterMin: 1000, AfterMax: 2000},
}

// FragResult reports a Fragbench run.
type FragResult struct {
	Spec FragSpec
	// PeakBytes is the allocator's peak committed memory.
	PeakBytes uint64
	// LiveBytes is the configured live-set bound (the paper's 1 GB).
	LiveBytes uint64
	// MakespanNS is the run's virtual duration; Ops its operation count.
	MakespanNS int64
	Ops        uint64
}

// FragConfig scales Fragbench. The paper allocates 5 GB with a 1 GB live
// bound; the defaults here keep the same 5:1 churn ratio at 1/16 scale.
type FragConfig struct {
	// LiveBytes bounds the live set (default 32 MiB).
	LiveBytes uint64
	// ChurnBytes is the total allocated per phase (default 5*LiveBytes).
	ChurnBytes uint64
	Threads    int
}

func (c FragConfig) withDefaults() FragConfig {
	if c.LiveBytes == 0 {
		c.LiveBytes = 32 << 20
	}
	if c.ChurnBytes == 0 {
		c.ChurnBytes = 5 * c.LiveBytes
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	return c
}

// Fragbench runs the three-phase fragmentation benchmark (Before, Delete,
// After) from Rumble et al., parameterized by spec.
func Fragbench(h alloc.Heap, spec FragSpec, cfg FragConfig) FragResult {
	cfg = cfg.withDefaults()
	perThreadLive := cfg.LiveBytes / uint64(cfg.Threads)
	perThreadChurn := cfg.ChurnBytes / uint64(cfg.Threads)

	res := Run("Fragbench-"+spec.Name, h, cfg.Threads, func(w int, th alloc.Thread, rng *rand.Rand) uint64 {
		ops := uint64(0)
		type obj struct {
			p    pmem.PAddr
			size uint64
		}
		var live []obj
		liveBytes := uint64(0)

		phase := func(min, max uint64) {
			span := int64(max - min + 1)
			var churned uint64
			for churned < perThreadChurn {
				size := min + uint64(rng.Int63n(span))
				p, err := th.Malloc(size)
				if err != nil {
					return
				}
				ops++
				churned += size
				live = append(live, obj{p, size})
				liveBytes += size
				// Random deletions keep the live set bounded.
				for liveBytes > perThreadLive && len(live) > 0 {
					i := rng.Intn(len(live))
					if th.Free(live[i].p) == nil {
						ops++
					}
					liveBytes -= live[i].size
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		}

		// Before.
		phase(spec.BeforeMin, spec.BeforeMax)
		// Delete: drop DeleteRatio of the live objects at random.
		toDelete := int(float64(len(live)) * spec.DeleteRatio)
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		for _, o := range live[:toDelete] {
			if th.Free(o.p) == nil {
				ops++
			}
			liveBytes -= o.size
		}
		live = live[toDelete:]
		// After.
		phase(spec.AfterMin, spec.AfterMax)
		return ops
	})
	return FragResult{
		Spec:       spec,
		PeakBytes:  res.PeakBytes,
		LiveBytes:  cfg.LiveBytes,
		MakespanNS: res.MakespanNS,
		Ops:        res.Ops,
	}
}
