package workload

import (
	"math/rand"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/baseline"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

func nvheap(t *testing.T, v core.Variant) alloc.Heap {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 512 << 20})
	h, err := core.Create(dev, core.DefaultOptions(v))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestThreadtestCompletes(t *testing.T) {
	h := nvheap(t, core.LOG)
	r := Threadtest(h, 2, 5, 200, 64)
	if r.Ops != 2*5*200*2 {
		t.Fatalf("ops %d, want %d", r.Ops, 2*5*200*2)
	}
	if r.MakespanNS <= 0 || r.MopsPerSec() <= 0 {
		t.Fatal("no virtual time recorded")
	}
	if r.Stats.Flushes == 0 {
		t.Fatal("LOG variant must flush")
	}
}

func TestProdConBalances(t *testing.T) {
	h := nvheap(t, core.LOG)
	r := ProdCon(h, 4, 2000, 64)
	// 2 pairs * 2000 allocs + 2000 frees each.
	if r.Ops != 2*2000*2 {
		t.Fatalf("ops %d", r.Ops)
	}
	// All objects freed: usage back to near baseline (slabs cached).
	if r.UsedBytes > r.PeakBytes {
		t.Fatal("used exceeds peak")
	}
	// Odd thread counts must not deadlock.
	r = ProdCon(nvheap(t, core.LOG), 3, 500, 64)
	if r.Ops == 0 {
		t.Fatal("odd prodcon did nothing")
	}
	r = ProdCon(nvheap(t, core.LOG), 1, 500, 64)
	if r.Ops != 1000 {
		t.Fatalf("single-thread prodcon ops %d", r.Ops)
	}
}

func TestShbenchAndLarson(t *testing.T) {
	h := nvheap(t, core.GC)
	if r := Shbench(h, 2, 300); r.Ops == 0 {
		t.Fatal("shbench did nothing")
	}
	if r := Larson(h, 2, 64, 2000, 64, 256); r.Name != "Larson-small" || r.Ops == 0 {
		t.Fatalf("larson-small wrong: %+v", r.Name)
	}
	if r := Larson(h, 1, 16, 100, 32<<10, 512<<10); r.Name != "Larson-large" {
		t.Fatal("larson-large misnamed")
	}
}

func TestDBMStest(t *testing.T) {
	h := nvheap(t, core.LOG)
	r := DBMStest(h, 2, 3, 20)
	if r.Ops == 0 || r.PeakBytes == 0 {
		t.Fatalf("dbms: %+v", r)
	}
}

func TestFragSpecsMatchPaperTable1(t *testing.T) {
	want := []FragSpec{
		{"W1", 100, 100, 0.9, 130, 130},
		{"W2", 100, 150, 0.0, 200, 250},
		{"W3", 100, 150, 0.9, 200, 250},
		{"W4", 100, 200, 0.5, 1000, 2000},
	}
	if len(FragSpecs) != len(want) {
		t.Fatal("wrong spec count")
	}
	for i, w := range want {
		if FragSpecs[i] != w {
			t.Fatalf("spec %d = %+v, want %+v", i, FragSpecs[i], w)
		}
	}
}

func TestFragbenchMorphingReducesPeak(t *testing.T) {
	// The headline fragmentation result at miniature scale: NVAlloc with
	// slab morphing beats NVAlloc without it on W4.
	run := func(morph bool) uint64 {
		dev := pmem.New(pmem.Config{Size: 512 << 20})
		opts := core.DefaultOptions(core.LOG)
		opts.Morphing = morph
		h, err := core.Create(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		r := Fragbench(h, FragSpecs[3], FragConfig{LiveBytes: 8 << 20, Threads: 1})
		return r.PeakBytes
	}
	with, without := run(true), run(false)
	if with > without {
		t.Fatalf("morphing made fragmentation worse: %d vs %d", with, without)
	}
	t.Logf("W4 peak: with morphing %d MiB, without %d MiB", with>>20, without>>20)
}

func TestFragbenchOnBaseline(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 512 << 20})
	h, err := baseline.New(dev, baseline.PMDK)
	if err != nil {
		t.Fatal(err)
	}
	r := Fragbench(h, FragSpecs[0], FragConfig{LiveBytes: 4 << 20, Threads: 1})
	if r.PeakBytes < r.LiveBytes {
		t.Fatalf("peak %d below live bound %d?", r.PeakBytes, r.LiveBytes)
	}
	if r.Ops == 0 {
		t.Fatal("no ops")
	}
}

func TestRunIsolatesStats(t *testing.T) {
	h := nvheap(t, core.LOG)
	_ = Threadtest(h, 1, 2, 100, 64)
	r2 := Run("noop", h, 1, func(_ int, _ alloc.Thread, _ *rand.Rand) uint64 { return 0 })
	if r2.Stats.Flushes != 0 {
		t.Fatalf("stats leaked across runs: %d flushes", r2.Stats.Flushes)
	}
}

func TestPoissonSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		s := poissonSize(rng, 32<<10, 512<<10)
		if s < 32<<10 || s > 512<<10 {
			t.Fatalf("size %d out of range", s)
		}
	}
}
