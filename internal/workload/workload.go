// Package workload implements the six benchmarks of the paper's
// evaluation — Threadtest, Prod-con, Shbench, Larson (small and large),
// DBMStest and Fragbench — as allocator-agnostic drivers over the
// alloc.Heap interface, plus the shared multi-threaded runner that
// collects virtual-time results.
//
// Sizes and operation counts are scaled down from the paper's testbed
// (which allocates gigabytes per run) by a configurable factor; all
// ratios — object size distributions, delete fractions, live-set bounds —
// match Table 1 and Section 6.2.
package workload

import (
	"math/rand"
	"sync"
	"time"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// Result summarizes one benchmark run.
type Result struct {
	Name    string
	Threads int
	// Ops is the total operations (allocations + frees) completed.
	Ops uint64
	// MakespanNS is the maximum worker virtual clock: the run's duration.
	// Zero on a direct device (real mode has no virtual clock).
	MakespanNS int64
	// WallNS is the measured wall-clock duration of the run (always set;
	// only meaningful as a throughput base in real mode, where workers are
	// not slowed by the simulator).
	WallNS int64
	// PeakBytes is the heap's peak committed memory during the run.
	PeakBytes uint64
	// UsedBytes is the committed memory at the end of the run.
	UsedBytes uint64
	// Stats is the device counter delta for the run.
	Stats pmem.Stats
}

// MopsPerSec returns throughput in million operations per (virtual)
// second.
func (r Result) MopsPerSec() float64 {
	if r.MakespanNS <= 0 {
		return 0
	}
	return float64(r.Ops) * 1e3 / float64(r.MakespanNS)
}

// WallMopsPerSec returns throughput in million operations per wall-clock
// second — the real-mode figure of merit.
func (r Result) WallMopsPerSec() float64 {
	if r.WallNS <= 0 {
		return 0
	}
	return float64(r.Ops) * 1e3 / float64(r.WallNS)
}

// Run drives `threads` workers against the heap. body returns the number
// of operations the worker performed. The device's merged stats are reset
// before the run so Result.Stats covers only this run.
func Run(name string, h alloc.Heap, threads int, body func(w int, th alloc.Thread, rng *rand.Rand) uint64) Result {
	h.Device().ResetStats()
	h.ResetPeak()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total uint64
		span  int64
	)
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := h.NewThread()
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 12345))
			ops := body(w, th, rng)
			now := th.Ctx().Now
			th.Close()
			mu.Lock()
			total += ops
			if now > span {
				span = now
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return Result{
		Name:       name,
		Threads:    threads,
		Ops:        total,
		MakespanNS: span,
		WallNS:     time.Since(start).Nanoseconds(),
		PeakBytes:  h.Peak(),
		UsedBytes:  h.Used(),
		Stats:      h.Device().Stats(),
	}
}

// Threadtest: i iterations; per iteration each thread allocates n objects
// of a fixed size and then frees them all (Berger et al.; paper uses
// s = 64 B).
func Threadtest(h alloc.Heap, threads, iters, n int, size uint64) Result {
	return Run("Threadtest", h, threads, func(_ int, th alloc.Thread, _ *rand.Rand) uint64 {
		ptrs := make([]pmem.PAddr, 0, n)
		ops := uint64(0)
		for it := 0; it < iters; it++ {
			ptrs = ptrs[:0]
			for j := 0; j < n; j++ {
				p, err := th.Malloc(size)
				if err != nil {
					return ops
				}
				ptrs = append(ptrs, p)
				ops++
			}
			for _, p := range ptrs {
				if th.Free(p) == nil {
					ops++
				}
			}
		}
		return ops
	})
}

// ProdCon: pairs of threads; the producer allocates objects and the
// consumer frees them (Hoard's producer-consumer pattern). threads must
// be even >= 2; an odd straggler runs producer+consumer in-line.
func ProdCon(h alloc.Heap, threads, nPerPair int, size uint64) Result {
	type batch []pmem.PAddr
	chans := make([]chan batch, threads/2)
	for i := range chans {
		chans[i] = make(chan batch, 16)
	}
	return Run("Prod-con", h, threads, func(w int, th alloc.Thread, _ *rand.Rand) uint64 {
		ops := uint64(0)
		if threads == 1 || (w == threads-1 && threads%2 == 1) {
			// Straggler: self-paired.
			for j := 0; j < nPerPair; j++ {
				p, err := th.Malloc(size)
				if err != nil {
					return ops
				}
				ops++
				if th.Free(p) == nil {
					ops++
				}
			}
			return ops
		}
		pair := w / 2
		if w%2 == 0 {
			// Producer.
			const batchSize = 64
			for sent := 0; sent < nPerPair; {
				b := make(batch, 0, batchSize)
				for j := 0; j < batchSize && sent < nPerPair; j++ {
					p, err := th.Malloc(size)
					if err != nil {
						chans[pair] <- nil
						return ops
					}
					b = append(b, p)
					ops++
					sent++
				}
				chans[pair] <- b
			}
			chans[pair] <- nil
			return ops
		}
		// Consumer.
		for b := range chans[pair] {
			if b == nil {
				break
			}
			for _, p := range b {
				if th.Free(p) == nil {
					ops++
				}
			}
		}
		return ops
	})
}

// Shbench: a MicroQuill-style stress test; each iteration allocates and
// frees objects of 64 B to 1000 B, smaller ones more frequently.
func Shbench(h alloc.Heap, threads, iters int) Result {
	return Run("Shbench", h, threads, func(_ int, th alloc.Thread, rng *rand.Rand) uint64 {
		ops := uint64(0)
		var held []pmem.PAddr
		sizeOf := func() uint64 {
			// Weighted: 70% in 64..128, 25% in 128..512, 5% in 512..1000.
			switch r := rng.Intn(100); {
			case r < 70:
				return uint64(64 + rng.Intn(65))
			case r < 95:
				return uint64(128 + rng.Intn(385))
			default:
				return uint64(512 + rng.Intn(489))
			}
		}
		for it := 0; it < iters; it++ {
			// Allocate a burst, free about half (older first), repeat.
			for j := 0; j < 16; j++ {
				p, err := th.Malloc(sizeOf())
				if err != nil {
					return ops
				}
				held = append(held, p)
				ops++
			}
			for j := 0; j < 8 && len(held) > 0; j++ {
				i := rng.Intn(len(held))
				if th.Free(held[i]) == nil {
					ops++
				}
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
			}
		}
		for _, p := range held {
			if th.Free(p) == nil {
				ops++
			}
		}
		return ops
	})
}

// Larson simulates a server: each thread keeps a slot array of live
// objects and repeatedly replaces a random slot (free the old object,
// allocate a new one of random size in [minSize, maxSize]). opsPerThread
// bounds the run (the paper runs 30 s of wall clock).
func Larson(h alloc.Heap, threads, slots, opsPerThread int, minSize, maxSize uint64) Result {
	name := "Larson-small"
	if minSize >= 16<<10 {
		name = "Larson-large"
	}
	return Run(name, h, threads, func(_ int, th alloc.Thread, rng *rand.Rand) uint64 {
		ops := uint64(0)
		held := make([]pmem.PAddr, slots)
		span := int64(maxSize - minSize + 1)
		for i := 0; i < opsPerThread; i++ {
			s := rng.Intn(slots)
			if held[s] != pmem.Null {
				if th.Free(held[s]) == nil {
					ops++
				}
			}
			p, err := th.Malloc(minSize + uint64(rng.Int63n(span)))
			if err != nil {
				return ops
			}
			held[s] = p
			ops++
		}
		for _, p := range held {
			if p != pmem.Null && th.Free(p) == nil {
				ops++
			}
		}
		return ops
	})
}

// DBMStest simulates TPC-DS-style database allocation: per iteration each
// thread allocates n large objects with sizes Poisson-distributed between
// 32 KiB and 512 KiB, then randomly deletes 90% of them.
func DBMStest(h alloc.Heap, threads, iters, nPerIter int) Result {
	return Run("DBMStest", h, threads, func(_ int, th alloc.Thread, rng *rand.Rand) uint64 {
		ops := uint64(0)
		var held []pmem.PAddr
		for it := 0; it < iters; it++ {
			for j := 0; j < nPerIter; j++ {
				p, err := th.Malloc(poissonSize(rng, 32<<10, 512<<10))
				if err != nil {
					return ops
				}
				held = append(held, p)
				ops++
			}
			// Randomly delete 90% of live objects.
			rng.Shuffle(len(held), func(i, j int) { held[i], held[j] = held[j], held[i] })
			keep := len(held) / 10
			for _, p := range held[keep:] {
				if th.Free(p) == nil {
					ops++
				}
			}
			held = held[:keep]
		}
		for _, p := range held {
			if th.Free(p) == nil {
				ops++
			}
		}
		return ops
	})
}

// poissonSize draws a size in [min,max] concentrated around the mean
// (approximated by the average of four uniforms, which is what matters
// for the allocator: most requests near the middle, tails at both ends).
func poissonSize(rng *rand.Rand, min, max uint64) uint64 {
	span := int64(max - min)
	s := (rng.Int63n(span) + rng.Int63n(span) + rng.Int63n(span) + rng.Int63n(span)) / 4
	return min + uint64(s)
}
