// Package fptree implements FPTree (Oukid et al., SIGMOD 2016), the
// persistent B+tree the paper uses as its real-world allocator workload
// (Section 6.3): inner nodes live in DRAM and are rebuilt on recovery,
// leaf nodes live in persistent memory with one-byte fingerprints that
// avoid scanning whole leaves, and every stored value is a pointer to a
// separately allocated key-value blob — which makes every insert and
// delete exercise the allocator under test.
//
// Differences from the original: leaf updates are serialized with
// per-leaf locks instead of hardware transactional memory, and leaf
// splits take a tree-wide lock instead of being micro-logged. Crash
// recovery rebuilds the inner structure by walking the persistent leaf
// chain from the tree's root slot.
package fptree

import (
	"fmt"
	"sort"
	"sync"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// LeafSlots is the number of entries per persistent leaf (the paper's
// nodes hold 64 children; we use 32 leaf slots so a leaf stays within a
// few cache lines, fanout for inner nodes remains 64).
const LeafSlots = 32

// InnerFanout is the maximum children per volatile inner node.
const InnerFanout = 64

// KVBlobSize is the size of the separately allocated key-value pair
// (most pairs at Facebook are small; the paper uses 128 B).
const KVBlobSize = 128

// Persistent leaf layout.
const (
	lfBitmap = 0  // u64: slot occupancy
	lfNext   = 8  // u64: PAddr of the next leaf
	lfFP     = 16 // LeafSlots fingerprint bytes
	lfEntry  = 64 // LeafSlots * 16 B (key u64, value u64)

	// LeafBytes is the persistent footprint of one leaf.
	LeafBytes = lfEntry + LeafSlots*16
)

func fingerprint(key uint64) byte {
	h := key * 0x9E3779B97F4A7C15
	return byte(h >> 56)
}

// leaf is the volatile handle of a persistent leaf.
type leaf struct {
	addr pmem.PAddr
	res  pmem.Resource
	// minKey caches the smallest key for inner-node routing.
}

// inner is a volatile inner node.
type inner struct {
	keys     []uint64 // separators: child i holds keys < keys[i]
	children []any    // *inner or *leaf
}

// Tree is an FPTree instance bound to a heap.
type Tree struct {
	heap     alloc.Heap
	dev      pmem.Dev
	rootSlot pmem.PAddr // persistent pointer to the first (leftmost) leaf

	mu     sync.RWMutex // guards the volatile inner structure
	root   any          // *inner or *leaf
	leaves map[pmem.PAddr]*leaf
}

// Create initializes an empty tree whose head-leaf pointer persists in
// the given root slot of the heap.
func Create(h alloc.Heap, th alloc.Thread, rootSlot int) (*Tree, error) {
	t := &Tree{
		heap:     h,
		dev:      h.Device(),
		rootSlot: h.RootSlot(rootSlot),
		leaves:   make(map[pmem.PAddr]*leaf),
	}
	addr, err := th.MallocTo(t.rootSlot, LeafBytes)
	if err != nil {
		return nil, err
	}
	t.dev.Zero(addr, LeafBytes)
	th.Ctx().Flush(pmem.CatOther, addr, 16)
	th.Ctx().Fence()
	lf := &leaf{addr: addr}
	t.leaves[addr] = lf
	t.root = lf
	return t, nil
}

// Open rebuilds a tree from its persistent leaf chain after a restart.
func Open(h alloc.Heap, th alloc.Thread, rootSlot int) (*Tree, error) {
	t := &Tree{
		heap:     h,
		dev:      h.Device(),
		rootSlot: h.RootSlot(rootSlot),
		leaves:   make(map[pmem.PAddr]*leaf),
	}
	head := pmem.PAddr(t.dev.ReadU64(t.rootSlot))
	if head == pmem.Null {
		return nil, fmt.Errorf("fptree: no tree at root slot")
	}
	type leafInfo struct {
		lf  *leaf
		min uint64
		n   int
	}
	var infos []leafInfo
	for a := head; a != pmem.Null; a = pmem.PAddr(t.dev.ReadU64(a + lfNext)) {
		lf := &leaf{addr: a}
		t.leaves[a] = lf
		bm := t.dev.ReadU64(a + lfBitmap)
		min := ^uint64(0)
		n := 0
		for s := 0; s < LeafSlots; s++ {
			if bm&(1<<s) != 0 {
				k := t.dev.ReadU64(a + lfEntry + pmem.PAddr(s*16))
				if k < min {
					min = k
				}
				n++
			}
		}
		infos = append(infos, leafInfo{lf, min, n})
		th.Ctx().Charge(pmem.CatSearch, 60)
	}
	// The chain is in key order by construction; bulk-build inner nodes.
	sort.SliceStable(infos, func(i, j int) bool { return infos[i].min < infos[j].min })
	var level []any
	var seps []uint64
	for i, in := range infos {
		level = append(level, in.lf)
		if i > 0 {
			seps = append(seps, in.min)
		}
	}
	t.root = buildInner(level, seps)
	return t, nil
}

// buildInner assembles a balanced inner hierarchy over children with the
// given separators (len(seps) == len(children)-1).
func buildInner(children []any, seps []uint64) any {
	if len(children) == 1 {
		return children[0]
	}
	var upper []any
	var upperSeps []uint64
	for i := 0; i < len(children); i += InnerFanout {
		j := i + InnerFanout
		if j > len(children) {
			j = len(children)
		}
		n := &inner{children: append([]any(nil), children[i:j]...)}
		if j-1 > i {
			n.keys = append([]uint64(nil), seps[i:j-1]...)
		}
		if i > 0 {
			upperSeps = append(upperSeps, seps[i-1])
		}
		upper = append(upper, n)
	}
	return buildInner(upper, upperSeps)
}

// findLeaf descends to the leaf that should hold key. Caller holds t.mu
// (read or write).
func (t *Tree) findLeaf(key uint64) *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			i := sort.Search(len(v.keys), func(i int) bool { return key < v.keys[i] })
			n = v.children[i]
		default:
			panic("fptree: corrupt inner structure")
		}
	}
}

// leafSearch returns the slot of key in the leaf, or -1. Fingerprints
// prune the probe: only slots with a matching fingerprint byte load the
// full key from persistent memory.
func (t *Tree) leafSearch(c *pmem.Ctx, lf *leaf, key uint64) int {
	bm := t.dev.ReadU64(lf.addr + lfBitmap)
	fp := fingerprint(key)
	c.Charge(pmem.CatSearch, 8)
	for s := 0; s < LeafSlots; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		if t.dev.ReadU8(lf.addr+lfFP+pmem.PAddr(s)) != fp {
			continue
		}
		c.Charge(pmem.CatSearch, 6)
		if t.dev.ReadU64(lf.addr+lfEntry+pmem.PAddr(s*16)) == key {
			return s
		}
	}
	return -1
}

// Get returns the value stored under key.
func (t *Tree) Get(th alloc.Thread, key uint64) (uint64, bool) {
	c := th.Ctx()
	t.mu.RLock()
	lf := t.findLeaf(key)
	t.mu.RUnlock()
	lf.res.Acquire(c)
	defer lf.res.Release(c)
	s := t.leafSearch(c, lf, key)
	if s < 0 {
		return 0, false
	}
	blob := pmem.PAddr(t.dev.ReadU64(lf.addr + lfEntry + pmem.PAddr(s*16) + 8))
	return t.dev.ReadU64(blob + 8), true
}

// Insert stores value under key (overwriting an existing value). Each
// insert allocates a KVBlobSize pair through the allocator under test.
func (t *Tree) Insert(th alloc.Thread, key, value uint64) error {
	c := th.Ctx()
	for {
		t.mu.RLock()
		lf := t.findLeaf(key)
		t.mu.RUnlock()
		lf.res.Acquire(c)

		if s := t.leafSearch(c, lf, key); s >= 0 {
			// Overwrite: update the blob in place.
			blob := pmem.PAddr(t.dev.ReadU64(lf.addr + lfEntry + pmem.PAddr(s*16) + 8))
			c.PersistU64(pmem.CatOther, blob+8, value)
			c.Fence()
			lf.res.Release(c)
			return nil
		}
		bm := t.dev.ReadU64(lf.addr + lfBitmap)
		slot := -1
		for s := 0; s < LeafSlots; s++ {
			if bm&(1<<s) == 0 {
				slot = s
				break
			}
		}
		if slot >= 0 {
			err := t.insertAt(th, lf, slot, bm, key, value)
			lf.res.Release(c)
			return err
		}
		// Leaf full: split under the tree lock, then retry.
		lf.res.Release(c)
		if err := t.split(th, lf); err != nil {
			return err
		}
	}
}

// insertAt writes (key, blob) into the leaf slot: blob first, then the
// entry, then fingerprint+bit (the commit point). Caller holds lf.res.
func (t *Tree) insertAt(th alloc.Thread, lf *leaf, slot int, bm, key, value uint64) error {
	c := th.Ctx()
	blob, err := th.Malloc(KVBlobSize)
	if err != nil {
		return err
	}
	t.dev.WriteU64(blob, key)
	t.dev.WriteU64(blob+8, value)
	c.Flush(pmem.CatOther, blob, 16)

	ea := lf.addr + lfEntry + pmem.PAddr(slot*16)
	t.dev.WriteU64(ea, key)
	t.dev.WriteU64(ea+8, uint64(blob))
	c.Flush(pmem.CatOther, ea, 16)
	c.Fence()

	t.dev.WriteU8(lf.addr+lfFP+pmem.PAddr(slot), fingerprint(key))
	c.Flush(pmem.CatMeta, lf.addr+lfFP+pmem.PAddr(slot), 1)
	c.PersistU64(pmem.CatMeta, lf.addr+lfBitmap, bm|1<<slot)
	c.Fence()
	return nil
}

// Delete removes key, freeing its blob through the allocator under test.
func (t *Tree) Delete(th alloc.Thread, key uint64) (bool, error) {
	c := th.Ctx()
	t.mu.RLock()
	lf := t.findLeaf(key)
	t.mu.RUnlock()
	lf.res.Acquire(c)
	s := t.leafSearch(c, lf, key)
	if s < 0 {
		lf.res.Release(c)
		return false, nil
	}
	bm := t.dev.ReadU64(lf.addr + lfBitmap)
	blob := pmem.PAddr(t.dev.ReadU64(lf.addr + lfEntry + pmem.PAddr(s*16) + 8))
	// Clearing the bitmap bit is the atomic delete.
	c.PersistU64(pmem.CatMeta, lf.addr+lfBitmap, bm&^(1<<s))
	c.Fence()
	lf.res.Release(c)
	return true, th.Free(blob)
}

// split divides a full leaf in two under the tree write lock.
func (t *Tree) split(th alloc.Thread, lf *leaf) error {
	c := th.Ctx()
	t.mu.Lock()
	defer t.mu.Unlock()
	lf.res.Acquire(c)
	defer lf.res.Release(c)

	bm := t.dev.ReadU64(lf.addr + lfBitmap)
	if bm != (uint64(1)<<LeafSlots)-1 {
		return nil // someone else split it first
	}
	// Collect and sort the entries by key.
	type ent struct {
		key, val uint64
		slot     int
	}
	ents := make([]ent, 0, LeafSlots)
	for s := 0; s < LeafSlots; s++ {
		ea := lf.addr + lfEntry + pmem.PAddr(s*16)
		ents = append(ents, ent{t.dev.ReadU64(ea), t.dev.ReadU64(ea + 8), s})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	c.Charge(pmem.CatSearch, 200)

	// New right leaf gets the upper half.
	naddr, err := th.Malloc(LeafBytes)
	if err != nil {
		return err
	}
	t.dev.Zero(naddr, LeafBytes)
	half := ents[LeafSlots/2:]
	var nbm uint64
	for i, e := range half {
		ea := naddr + lfEntry + pmem.PAddr(i*16)
		t.dev.WriteU64(ea, e.key)
		t.dev.WriteU64(ea+8, e.val)
		t.dev.WriteU8(naddr+lfFP+pmem.PAddr(i), fingerprint(e.key))
		nbm |= 1 << i
	}
	t.dev.WriteU64(naddr+lfBitmap, nbm)
	t.dev.WriteU64(naddr+lfNext, t.dev.ReadU64(lf.addr+lfNext))
	c.Flush(pmem.CatOther, naddr, LeafBytes)
	c.Fence()
	// Link the new leaf, then shrink the old bitmap (commit point order:
	// a crash between the two steps leaves duplicates, resolved by the
	// old leaf's bitmap still holding them — recovery keeps the chain
	// consistent because lookups stop at the first match).
	c.PersistU64(pmem.CatMeta, lf.addr+lfNext, uint64(naddr))
	var obm uint64
	for _, e := range ents[:LeafSlots/2] {
		obm |= 1 << e.slot
	}
	c.PersistU64(pmem.CatMeta, lf.addr+lfBitmap, obm)
	c.Fence()

	nlf := &leaf{addr: naddr}
	t.leaves[naddr] = nlf
	t.insertSep(half[0].key, lf, nlf)
	return nil
}

// insertSep adds the separator key and new right sibling into the inner
// structure. Caller holds the tree write lock.
func (t *Tree) insertSep(sep uint64, left, right *leaf) {
	if t.root == left {
		t.root = &inner{keys: []uint64{sep}, children: []any{left, right}}
		return
	}
	overflow := t.insertSepRec(t.root.(*inner), sep, left, right)
	if overflow != nil {
		t.root = overflow
	}
}

// insertSepRec descends to left's parent, inserts, and splits inner
// nodes on the way back up; it returns a new root if the root split.
func (t *Tree) insertSepRec(n *inner, sep uint64, left, right *leaf) *inner {
	i := sort.Search(len(n.keys), func(i int) bool { return sep < n.keys[i] })
	if child, ok := n.children[i].(*inner); ok {
		if nr := t.insertSepRec(child, sep, left, right); nr != nil {
			// Child split: splice the new sibling in.
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = nr.keys[0]
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = nr.children[1]
			return t.maybeSplitInner(n)
		}
		return nil
	}
	// Leaf level: insert sep/right after left.
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	return t.maybeSplitInner(n)
}

// maybeSplitInner splits n if over fanout, returning a two-child carrier
// {leftHalf, rightHalf} with the promoted separator in keys[0].
func (t *Tree) maybeSplitInner(n *inner) *inner {
	if len(n.children) <= InnerFanout {
		return nil
	}
	mid := len(n.children) / 2
	sep := n.keys[mid-1]
	rightN := &inner{
		keys:     append([]uint64(nil), n.keys[mid:]...),
		children: append([]any(nil), n.children[mid:]...),
	}
	n.keys = n.keys[:mid-1]
	n.children = n.children[:mid]
	return &inner{keys: []uint64{sep}, children: []any{n, rightN}}
}

// Scan invokes fn on every (key, value) pair with lo <= key <= hi, in
// ascending key order, until fn returns false. It walks the persistent
// leaf chain (which is ordered by minimum key), sorting each leaf's live
// entries; like FPTree's original linearized range scans it holds each
// leaf's lock only while reading it.
func (t *Tree) Scan(th alloc.Thread, lo, hi uint64, fn func(key, value uint64) bool) {
	c := th.Ctx()
	t.mu.RLock()
	start := t.findLeaf(lo)
	t.mu.RUnlock()

	type ent struct{ k, v uint64 }
	for addr := start.addr; addr != pmem.Null; {
		t.mu.RLock()
		lf := t.leaves[addr]
		t.mu.RUnlock()
		if lf == nil {
			return
		}
		lf.res.Acquire(c)
		bm := t.dev.ReadU64(lf.addr + lfBitmap)
		var ents []ent
		for s := 0; s < LeafSlots; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := t.dev.ReadU64(lf.addr + lfEntry + pmem.PAddr(s*16))
			if k < lo || k > hi {
				continue
			}
			blob := pmem.PAddr(t.dev.ReadU64(lf.addr + lfEntry + pmem.PAddr(s*16) + 8))
			ents = append(ents, ent{k, t.dev.ReadU64(blob + 8)})
		}
		next := pmem.PAddr(t.dev.ReadU64(lf.addr + lfNext))
		c.Charge(pmem.CatSearch, 40)
		lf.res.Release(c)

		sort.Slice(ents, func(i, j int) bool { return ents[i].k < ents[j].k })
		for _, e := range ents {
			if !fn(e.k, e.v) {
				return
			}
		}
		// Stop once the chain has passed hi: the next leaf's minimum key
		// exceeds hi iff this leaf contained no in-range entries and its
		// entries were all above hi; cheaper: peek the next leaf lazily
		// and stop when a whole leaf lies beyond the range.
		if len(ents) == 0 && addr != start.addr {
			// A fully-out-of-range leaf after in-range ones: check if it
			// was beyond hi (then stop) or before lo (keep going).
			if minKeyOf(t.dev, addr) > hi {
				return
			}
		}
		addr = next
	}
}

func minKeyOf(dev pmem.Dev, leafAddr pmem.PAddr) uint64 {
	bm := dev.ReadU64(leafAddr + lfBitmap)
	min := ^uint64(0)
	for s := 0; s < LeafSlots; s++ {
		if bm&(1<<s) != 0 {
			if k := dev.ReadU64(leafAddr + lfEntry + pmem.PAddr(s*16)); k < min {
				min = k
			}
		}
	}
	return min
}

// Len counts the live entries by walking the leaf chain (test helper).
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	head := pmem.PAddr(t.dev.ReadU64(t.rootSlot))
	n := 0
	for a := head; a != pmem.Null; a = pmem.PAddr(t.dev.ReadU64(a + lfNext)) {
		bm := t.dev.ReadU64(a + lfBitmap)
		for ; bm != 0; bm &= bm - 1 {
			n++
		}
	}
	return n
}
