package fptree

import (
	"math/rand"
	"sync"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/baseline"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

func newTree(t *testing.T) (*pmem.Device, alloc.Heap, alloc.Thread, *Tree) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 256 << 20, Strict: true})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	tr, err := Create(h, th, 0)
	if err != nil {
		t.Fatal(err)
	}
	return dev, h, th, tr
}

func TestInsertGetDelete(t *testing.T) {
	_, _, th, tr := newTree(t)
	defer th.Close()
	if err := tr.Insert(th, 42, 4200); err != nil {
		t.Fatal(err)
	}
	v, ok := tr.Get(th, 42)
	if !ok || v != 4200 {
		t.Fatalf("get: %d %v", v, ok)
	}
	// Overwrite.
	if err := tr.Insert(th, 42, 4300); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get(th, 42); v != 4300 {
		t.Fatalf("overwrite lost: %d", v)
	}
	ok, err := tr.Delete(th, 42)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, ok := tr.Get(th, 42); ok {
		t.Fatal("deleted key still present")
	}
	if ok, _ := tr.Delete(th, 42); ok {
		t.Fatal("double delete must report false")
	}
	if _, ok := tr.Get(th, 7); ok {
		t.Fatal("missing key found")
	}
}

func TestManyKeysWithSplits(t *testing.T) {
	_, _, th, tr := newTree(t)
	defer th.Close()
	const n = 20000
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(n)
	for _, k := range keys {
		if err := tr.Insert(th, uint64(k), uint64(k)*7); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len %d, want %d", tr.Len(), n)
	}
	for _, k := range keys {
		v, ok := tr.Get(th, uint64(k))
		if !ok || v != uint64(k)*7 {
			t.Fatalf("key %d: %d %v", k, v, ok)
		}
	}
	// Delete half, verify the rest.
	for _, k := range keys[:n/2] {
		ok, err := tr.Delete(th, uint64(k))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", k, ok, err)
		}
	}
	for _, k := range keys[:n/2] {
		if _, ok := tr.Get(th, uint64(k)); ok {
			t.Fatalf("deleted key %d still present", k)
		}
	}
	for _, k := range keys[n/2:] {
		if v, ok := tr.Get(th, uint64(k)); !ok || v != uint64(k)*7 {
			t.Fatalf("survivor %d lost", k)
		}
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	_, h, th0, tr := newTree(t)
	defer th0.Close()
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := h.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				k := uint64(w)<<32 | uint64(rng.Intn(2000))
				switch rng.Intn(3) {
				case 0:
					if err := tr.Insert(th, k, k); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := tr.Delete(th, k); err != nil {
						errs <- err
						return
					}
				default:
					if v, ok := tr.Get(th, k); ok && v != k {
						errs <- errValue
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errValue = &valueError{}

type valueError struct{}

func (*valueError) Error() string { return "fptree: wrong value" }

func TestRecoveryRebuildsTree(t *testing.T) {
	dev, h, th, tr := newTree(t)
	const n = 5000
	for k := 0; k < n; k++ {
		if err := tr.Insert(th, uint64(k), uint64(k)+1); err != nil {
			t.Fatal(err)
		}
	}
	th.Ctx().Merge()
	dev.Crash()

	h2, _, err := core.Open(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	th2 := h2.NewThread()
	defer th2.Close()
	tr2, err := Open(h2, th2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != n {
		t.Fatalf("recovered %d entries, want %d", tr2.Len(), n)
	}
	for k := 0; k < n; k += 97 {
		v, ok := tr2.Get(th2, uint64(k))
		if !ok || v != uint64(k)+1 {
			t.Fatalf("key %d lost after recovery: %d %v", k, v, ok)
		}
	}
	// The recovered tree remains writable.
	if err := tr2.Insert(th2, 999999, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr2.Get(th2, 999999); !ok {
		t.Fatal("insert after recovery lost")
	}
	_ = h
}

func TestFPTreeOnBaselineAllocators(t *testing.T) {
	// The tree must run on every allocator in the repository.
	for _, cfg := range []baseline.Config{baseline.PMDK, baseline.Makalu} {
		t.Run(cfg.Name, func(t *testing.T) {
			dev := pmem.New(pmem.Config{Size: 128 << 20})
			h, err := baseline.New(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			th := h.NewThread()
			defer th.Close()
			tr, err := Create(h, th, 0)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 3000; k++ {
				if err := tr.Insert(th, uint64(k), uint64(k)); err != nil {
					t.Fatal(err)
				}
			}
			for k := 0; k < 3000; k += 2 {
				if ok, err := tr.Delete(th, uint64(k)); err != nil || !ok {
					t.Fatalf("delete %d: %v %v", k, ok, err)
				}
			}
			if tr.Len() != 1500 {
				t.Fatalf("len %d", tr.Len())
			}
		})
	}
}

func TestFingerprintDistribution(t *testing.T) {
	// Fingerprints must spread keys; a degenerate hash would make the
	// leaf probe linear.
	seen := map[byte]int{}
	for k := uint64(0); k < 4096; k++ {
		seen[fingerprint(k)]++
	}
	if len(seen) < 200 {
		t.Fatalf("fingerprint too degenerate: %d distinct values", len(seen))
	}
}

func TestOpenWithoutTree(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	defer th.Close()
	if _, err := Open(h, th, 5); err == nil {
		t.Fatal("open of empty slot must error")
	}
}

func TestScanRange(t *testing.T) {
	_, _, th, tr := newTree(t)
	defer th.Close()
	const n = 10000
	for k := 0; k < n; k += 2 { // even keys only
		if err := tr.Insert(th, uint64(k), uint64(k)*10); err != nil {
			t.Fatal(err)
		}
	}
	// Full-range scan returns every key in order.
	var keys []uint64
	tr.Scan(th, 0, n, func(k, v uint64) bool {
		if v != k*10 {
			t.Fatalf("key %d has value %d", k, v)
		}
		keys = append(keys, k)
		return true
	})
	if len(keys) != n/2 {
		t.Fatalf("scan returned %d keys, want %d", len(keys), n/2)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("scan out of order")
		}
	}
	// Bounded range.
	count := 0
	tr.Scan(th, 1000, 1999, func(k, _ uint64) bool {
		if k < 1000 || k > 1999 {
			t.Fatalf("key %d out of range", k)
		}
		count++
		return true
	})
	if count != 500 {
		t.Fatalf("bounded scan returned %d, want 500", count)
	}
	// Early stop.
	count = 0
	tr.Scan(th, 0, n, func(_, _ uint64) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop: %d", count)
	}
	// Empty range.
	tr.Scan(th, 1, 1, func(k, _ uint64) bool {
		t.Fatalf("unexpected key %d in empty range", k)
		return false
	})
}
