// Package bitfit implements the two-level hierarchical free-bitmap
// index used by every slab engine in this repository (the NVAlloc slabs
// and the five baseline allocators). The leaf level is the ordinary
// packed bitmap (1 = occupied); above it a volatile summary bitmap keeps
// one bit per leaf word, set exactly when that word still has a free bit
// among the valid indices. First-fit search is then two TrailingZeros64
// operations — one over the summary, one over the selected leaf word —
// instead of a linear word scan (the Fast-Bitmap-Fit idea, applied one
// level up from cache lines to 64-bit words).
//
// The index is entirely volatile: persistent bitmaps keep their layout,
// and the summary is rebuilt from the leaf on open/recovery.
package bitfit

import "math/bits"

// Bitmap is a leaf bitmap of n bits plus its summary level. The zero
// value is not usable; call New.
type Bitmap struct {
	words []uint64 // leaf: bit i%64 of word i/64 set = index i occupied
	sum   []uint64 // summary: bit w set = leaf word w has a free valid bit
	n     int
	tail  uint64 // valid-bit mask of the last leaf word
}

// New creates an all-free bitmap of n bits (n > 0).
func New(n int) *Bitmap {
	nw := (n + 63) / 64
	b := &Bitmap{
		words: make([]uint64, nw),
		sum:   make([]uint64, (nw+63)/64),
		n:     n,
		tail:  ^uint64(0),
	}
	if r := n % 64; r != 0 {
		b.tail = 1<<r - 1
	}
	for w := 0; w < nw; w++ {
		b.sum[w>>6] |= 1 << (w & 63)
	}
	return b
}

// Len returns the number of valid indices.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the leaf words (the last word's bits beyond Len are
// always zero). Callers must not mutate them except through Set/Clear.
func (b *Bitmap) Words() []uint64 { return b.words }

func (b *Bitmap) maskFor(w int) uint64 {
	if w == len(b.words)-1 {
		return b.tail
	}
	return ^uint64(0)
}

// Test reports whether index i is occupied.
func (b *Bitmap) Test(i int) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

// Set marks index i occupied and maintains the summary.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	b.words[w] |= 1 << (i & 63)
	if ^b.words[w]&b.maskFor(w) == 0 {
		b.sum[w>>6] &^= 1 << (w & 63)
	}
}

// Clear marks index i free and maintains the summary.
func (b *Bitmap) Clear(i int) {
	w := i >> 6
	b.words[w] &^= 1 << (i & 63)
	b.sum[w>>6] |= 1 << (w & 63)
}

// SetRange marks every index in [lo, hi) occupied, word-at-a-time: the
// bump-pointer fast path fills a fresh slab's prefix without per-bit
// read-modify-writes.
func (b *Bitmap) SetRange(lo, hi int) {
	for lo < hi {
		w := lo >> 6
		m := ^uint64(0) << (lo & 63)
		if end := (w + 1) << 6; hi < end {
			m &= 1<<(hi&63) - 1
			lo = hi
		} else {
			lo = end
		}
		b.words[w] |= m
		if ^b.words[w]&b.maskFor(w) == 0 {
			b.sum[w>>6] &^= 1 << (w & 63)
		}
	}
}

// Reset marks every index free again (volatile rebuild from scratch).
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	for w := range b.words {
		b.sum[w>>6] |= 1 << (w & 63)
	}
}

// FirstFree returns the lowest free index, or -1 when every index is
// occupied: TrailingZeros64 over the summary selects the first leaf word
// with a free bit, TrailingZeros64 over that word selects the bit. The
// summary is at most a handful of words (one per 4096 indices), so the
// outer loop is effectively constant.
func (b *Bitmap) FirstFree() int {
	for sw, s := range b.sum {
		if s != 0 {
			w := sw<<6 + bits.TrailingZeros64(s)
			m := ^b.words[w] & b.maskFor(w)
			return w<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// FreeCount returns the number of free valid indices (diagnostics and
// summary-coherence tests).
func (b *Bitmap) FreeCount() int {
	free := 0
	for w := range b.words {
		free += bits.OnesCount64(^b.words[w] & b.maskFor(w))
	}
	return free
}

// CheckSummary verifies the summary against the leaf, returning the
// first incoherent leaf word index or -1 (test helper).
func (b *Bitmap) CheckSummary() int {
	for w := range b.words {
		hasFree := ^b.words[w]&b.maskFor(w) != 0
		sumBit := b.sum[w>>6]&(1<<(w&63)) != 0
		if hasFree != sumBit {
			return w
		}
	}
	return -1
}
