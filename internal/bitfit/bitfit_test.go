package bitfit

import (
	"math/bits"
	"math/rand"
	"testing"
)

// linearFirstFree is the O(words) scan the hierarchy replaces; the
// property tests hold FirstFree to it.
func linearFirstFree(b *Bitmap) int {
	for w, word := range b.Words() {
		m := ^word & b.maskFor(w)
		if m != 0 {
			return w*64 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

func TestPartialLastWord(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 7900} {
		b := New(n)
		if got := b.FreeCount(); got != n {
			t.Fatalf("n=%d: fresh FreeCount=%d", n, got)
		}
		for i := 0; i < n; i++ {
			if got := b.FirstFree(); got != i {
				t.Fatalf("n=%d: FirstFree=%d want %d", n, got, i)
			}
			b.Set(i)
		}
		if got := b.FirstFree(); got != -1 {
			t.Fatalf("n=%d: full bitmap FirstFree=%d, want -1 (tail bits beyond Len must not read as free)", n, got)
		}
		if w := b.CheckSummary(); w != -1 {
			t.Fatalf("n=%d: summary incoherent at word %d", n, w)
		}
		b.Clear(n - 1)
		if got := b.FirstFree(); got != n-1 {
			t.Fatalf("n=%d: FirstFree=%d want %d", n, got, n-1)
		}
	}
}

func TestSetClearKeepsSummaryCoherent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := New(7900) // min-class slab shape: 124 leaf words, 2 summary words
	occupied := map[int]bool{}
	for step := 0; step < 20000; step++ {
		i := rng.Intn(7900)
		if occupied[i] {
			b.Clear(i)
			delete(occupied, i)
		} else {
			b.Set(i)
			occupied[i] = true
		}
		if step%97 == 0 {
			if w := b.CheckSummary(); w != -1 {
				t.Fatalf("step %d: summary incoherent at word %d", step, w)
			}
			if got, want := b.FirstFree(), linearFirstFree(b); got != want {
				t.Fatalf("step %d: FirstFree=%d, linear scan=%d", step, got, want)
			}
		}
	}
	if got, want := b.FreeCount(), 7900-len(occupied); got != want {
		t.Fatalf("FreeCount=%d want %d", got, want)
	}
}

func TestSetRangeMatchesPerBitSet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo+1)
		a, b := New(n), New(n)
		a.SetRange(lo, hi)
		for i := lo; i < hi; i++ {
			b.Set(i)
		}
		for i := 0; i < n; i++ {
			if a.Test(i) != b.Test(i) {
				t.Fatalf("n=%d [%d,%d): bit %d differs", n, lo, hi, i)
			}
		}
		if w := a.CheckSummary(); w != -1 {
			t.Fatalf("n=%d [%d,%d): summary incoherent at word %d", n, lo, hi, w)
		}
		if got, want := a.FirstFree(), linearFirstFree(a); got != want {
			t.Fatalf("n=%d [%d,%d): FirstFree=%d linear=%d", n, lo, hi, got, want)
		}
	}
}

func TestReset(t *testing.T) {
	b := New(130)
	for i := 0; i < 130; i++ {
		b.Set(i)
	}
	b.Reset()
	if got := b.FreeCount(); got != 130 {
		t.Fatalf("FreeCount after Reset=%d", got)
	}
	if got := b.FirstFree(); got != 0 {
		t.Fatalf("FirstFree after Reset=%d", got)
	}
	if w := b.CheckSummary(); w != -1 {
		t.Fatalf("summary incoherent at word %d after Reset", w)
	}
}
