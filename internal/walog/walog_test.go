package walog

import (
	"errors"
	"testing"

	"nvalloc/internal/pmem"
)

func mustNew(t *testing.T, dev *pmem.Device, base pmem.PAddr, n, stripes int) *Log {
	t.Helper()
	l, err := New(dev.Mem(), base, n, stripes)
	if err != nil {
		t.Fatalf("walog.New: %v", err)
	}
	return l
}

func mustReplay(t *testing.T, l *Log, c *pmem.Ctx, fn func(Entry)) int {
	t.Helper()
	n, err := l.Replay(c, fn)
	if err != nil {
		t.Fatalf("walog.Replay: %v", err)
	}
	return n
}

func newLog(t *testing.T, n, stripes int) (*pmem.Device, *Log) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 1 << 20, Strict: true})
	return dev, mustNew(t, dev, 4096, n, stripes)
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dev, l := newLog(t, 64, 6)
	c := dev.NewCtx()
	want := []Entry{
		{Addr: 0x1000, Aux: 1, Aux2: 64, Op: OpAllocBit},
		{Addr: 0x2000, Aux: 2, Aux2: 0, Op: OpFreeBit},
		{Addr: 0x3000, Aux: 3, Aux2: 128, Op: OpMallocTo},
	}
	for _, e := range want {
		l.Append(c, e)
	}
	dev.Crash()
	l2 := mustNew(t, dev, 4096, 64, 6)
	var got []Entry
	n := mustReplay(t, l2, dev.NewCtx(), func(e Entry) { got = append(got, e) })
	if n != len(want) {
		t.Fatalf("replayed %d, want %d", n, len(want))
	}
	for i, e := range got {
		w := want[i]
		if e.Addr != w.Addr || e.Aux != w.Aux || e.Aux2 != w.Aux2 || e.Op != w.Op {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, e, w)
		}
		if i > 0 && got[i].Seq <= got[i-1].Seq {
			t.Fatal("replay not in sequence order")
		}
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	dev, l := newLog(t, 64, 6)
	c := dev.NewCtx()
	for i := 0; i < 10; i++ {
		l.Append(c, Entry{Addr: pmem.PAddr(i), Op: OpAllocBit})
	}
	l.Checkpoint(c)
	l.Append(c, Entry{Addr: 0xAA, Op: OpFreeBit})
	dev.Crash()
	l2 := mustNew(t, dev, 4096, 64, 6)
	var got []Entry
	mustReplay(t, l2, dev.NewCtx(), func(e Entry) { got = append(got, e) })
	if len(got) != 1 || got[0].Addr != 0xAA {
		t.Fatalf("checkpoint not honored: %+v", got)
	}
}

func TestRingWrapAdvancesCheckpoint(t *testing.T) {
	dev, l := newLog(t, 16, 4)
	c := dev.NewCtx()
	for i := 0; i < 100; i++ {
		l.Append(c, Entry{Addr: pmem.PAddr(i), Op: OpAllocBit})
	}
	dev.Crash()
	l2 := mustNew(t, dev, 4096, 16, 4)
	var got []Entry
	mustReplay(t, l2, dev.NewCtx(), func(e Entry) { got = append(got, e) })
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("replay window after wrap should be within one ring: %d", len(got))
	}
	// The newest entry must always be replayable.
	last := got[len(got)-1]
	if last.Addr != 99 {
		t.Fatalf("latest entry lost: %+v", last)
	}
}

func TestAppendAfterReplayContinuesSeq(t *testing.T) {
	dev, l := newLog(t, 32, 6)
	c := dev.NewCtx()
	for i := 0; i < 5; i++ {
		l.Append(c, Entry{Addr: pmem.PAddr(i)})
	}
	dev.Crash()
	l2 := mustNew(t, dev, 4096, 32, 6)
	mustReplay(t, l2, dev.NewCtx(), func(Entry) {})
	s0 := l2.Seq()
	l2.Append(c, Entry{Addr: 0xBB})
	if l2.Seq() != s0+1 || s0 < 6 {
		t.Fatalf("sequence did not continue: s0=%d", s0)
	}
}

func TestInterleavedEntriesAvoidReflush(t *testing.T) {
	// With stripes >= the reflush window, consecutive appends must not
	// reflush; with 1 stripe they must (two 32 B entries share a line).
	run := func(stripes int) uint64 {
		dev := pmem.New(pmem.Config{Size: 1 << 20})
		l := mustNew(t, dev, 4096, 64, stripes)
		c := dev.NewCtx()
		for i := 0; i < 32; i++ {
			l.Append(c, Entry{Addr: pmem.PAddr(i), Op: OpAllocBit})
		}
		return c.Local().Reflushes
	}
	if r := run(6); r != 0 {
		t.Fatalf("interleaved WAL reflushed %d times", r)
	}
	if r := run(1); r == 0 {
		t.Fatal("sequential WAL should reflush")
	}
}

func TestRegionSize(t *testing.T) {
	if RegionSize(64, 6) <= 64*EntrySize {
		t.Fatal("region must include header and padding")
	}
	if RegionSize(64, 1) != 64+64*EntrySize {
		t.Fatalf("sequential region size wrong: %d", RegionSize(64, 1))
	}
}

func TestReplayEmptyLog(t *testing.T) {
	dev, _ := newLog(t, 64, 6)
	l2 := mustNew(t, dev, 4096, 64, 6)
	if n := mustReplay(t, l2, dev.NewCtx(), func(Entry) {}); n != 0 {
		t.Fatalf("fresh log replayed %d entries", n)
	}
}

func TestWALFlushCategory(t *testing.T) {
	dev, l := newLog(t, 64, 6)
	c := dev.NewCtx()
	l.Append(c, Entry{Addr: 1})
	if c.Local().CatFlush[pmem.CatWAL] == 0 {
		t.Fatal("WAL append must charge CatWAL")
	}
}

func TestCursorResumesAfterReplayMidRing(t *testing.T) {
	dev, l := newLog(t, 8, 2)
	c := dev.NewCtx()
	for i := 0; i < 11; i++ { // wraps the 8-slot ring
		l.Append(c, Entry{Addr: pmem.PAddr(i)})
	}
	dev.Crash()
	l2 := mustNew(t, dev, 4096, 8, 2)
	mustReplay(t, l2, dev.NewCtx(), func(Entry) {})
	// Appending after recovery must not clobber the newest entries: the
	// next append lands after the highest live sequence.
	l2.Append(c, Entry{Addr: 0xAB})
	dev.Crash()
	l3 := mustNew(t, dev, 4096, 8, 2)
	var got []Entry
	mustReplay(t, l3, dev.NewCtx(), func(e Entry) { got = append(got, e) })
	found := false
	for _, e := range got {
		if e.Addr == 0xAB {
			found = true
		}
	}
	if !found {
		t.Fatal("post-recovery append lost")
	}
}

func TestCursorResumesAfterCleanReopen(t *testing.T) {
	// A clean shutdown (Checkpoint) followed by New must resume appending
	// at slot ckpt%n, keeping the seq<->slot invariant: otherwise replay
	// after a later crash rejects the misplaced entries.
	dev, l := newLog(t, 8, 2)
	c := dev.NewCtx()
	for i := 0; i < 5; i++ {
		l.Append(c, Entry{Addr: pmem.PAddr(i)})
	}
	l.Checkpoint(c)
	dev.Crash()
	l2 := mustNew(t, dev, 4096, 8, 2)
	l2.Append(c, Entry{Addr: 0xCD})
	dev.Crash()
	l3 := mustNew(t, dev, 4096, 8, 2)
	var got []Entry
	mustReplay(t, l3, dev.NewCtx(), func(e Entry) { got = append(got, e) })
	if len(got) != 1 || got[0].Addr != 0xCD {
		t.Fatalf("post-reopen append not replayed: %+v", got)
	}
}

func TestReplayDetectsFlippedEntry(t *testing.T) {
	dev, l := newLog(t, 16, 2)
	c := dev.NewCtx()
	for i := 0; i < 6; i++ {
		l.Append(c, Entry{Addr: pmem.PAddr(0x1000 + i), Op: OpAllocBit})
	}
	dev.Crash()
	// Flip one bit in two different persisted entries: two bad slots can
	// never come from a single in-flight append and must be corruption.
	for _, slot := range []int{1, 3} {
		a := l.slotAddr(slot)
		dev.WriteU8(a+8, dev.ReadU8(a+8)^0x04)
	}
	l2 := mustNew(t, dev, 4096, 16, 2)
	_, err := l2.Replay(dev.NewCtx(), func(Entry) {})
	if !errors.Is(err, pmem.ErrCorrupted) {
		t.Fatalf("flipped entries not detected: %v", err)
	}
}

func TestReplayDropsTornInFlightAppend(t *testing.T) {
	dev, l := newLog(t, 16, 2)
	c := dev.NewCtx()
	for i := 0; i < 6; i++ {
		l.Append(c, Entry{Addr: pmem.PAddr(0x1000 + i), Op: OpAllocBit})
	}
	// Tear the 7th append: its slot persists a partial entry.
	dev.InjectFaults(&pmem.FaultPlan{CrashAfter: 0, Category: pmem.CatWAL, TornLine: true, Seed: 7})
	l.Append(c, Entry{Addr: 0x9999, Op: OpFreeBit})
	dev.Crash()
	l2 := mustNew(t, dev, 4096, 16, 2)
	var got []Entry
	n, err := l2.Replay(dev.NewCtx(), func(e Entry) { got = append(got, e) })
	if err != nil {
		t.Fatalf("torn in-flight append must be tolerated: %v", err)
	}
	if n > 7 {
		t.Fatalf("replayed %d entries, expected at most 7", n)
	}
	for _, e := range got[:min(len(got), 6)] {
		if e.Addr == 0 {
			t.Fatalf("completed entry lost: %+v", got)
		}
	}
}

func TestNewDetectsCorruptCheckpoint(t *testing.T) {
	dev, l := newLog(t, 16, 2)
	c := dev.NewCtx()
	for i := 0; i < 40; i++ { // wraps enough to persist a checkpoint
		l.Append(c, Entry{Addr: pmem.PAddr(i)})
	}
	dev.Crash()
	dev.WriteU64(4096, dev.ReadU64(4096)^(1<<5))
	if _, err := New(dev.Mem(), 4096, 16, 2); !errors.Is(err, pmem.ErrCorrupted) {
		t.Fatalf("corrupt checkpoint not detected: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAppendBatchRoundtripSingleFence(t *testing.T) {
	dev, l := newLog(t, 64, 6)
	c := dev.NewCtx()
	es := []Entry{
		{Addr: 0x1000, Aux: 1, Aux2: 64, Op: OpAllocBit},
		{Addr: 0x2000, Aux: 2, Op: OpFreeBit},
		{Addr: 0x3000, Aux: 3, Op: OpMallocTo},
		{Addr: 0x4000, Aux: 4, Op: OpFreeFrom},
		{Addr: 0x5000, Aux: 5, Op: OpAllocBit},
	}
	f0 := c.Local().Fences
	last := l.AppendBatch(c, es)
	if fences := c.Local().Fences - f0; fences != 1 {
		t.Fatalf("batch of %d entries issued %d fences, want 1", len(es), fences)
	}
	if last != uint64(len(es)) {
		t.Fatalf("last seq %d, want %d", last, len(es))
	}
	dev.Crash()
	l2 := mustNew(t, dev, 4096, 64, 6)
	var got []Entry
	mustReplay(t, l2, dev.NewCtx(), func(e Entry) { got = append(got, e) })
	if len(got) != len(es) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(es))
	}
	for i, e := range got {
		if e.Addr != es[i].Addr || e.Aux != es[i].Aux || e.Op != es[i].Op {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, e, es[i])
		}
	}
}

func TestAppendBatchCrashMidBatchKeepsPrefix(t *testing.T) {
	// Entries inside a batch are flushed individually (the fence is what
	// gets amortized), so cutting power mid-batch must leave a replayable
	// prefix — never a corrupt log.
	for cut := int64(1); cut <= 6; cut++ {
		dev := pmem.New(pmem.Config{Size: 1 << 20, Strict: true})
		l := mustNew(t, dev, 4096, 64, 6)
		c := dev.NewCtx()
		es := make([]Entry, 6)
		for i := range es {
			es[i] = Entry{Addr: pmem.PAddr(0x1000 + i), Op: OpAllocBit}
		}
		dev.CrashAfterFlushes(cut)
		l.AppendBatch(c, es)
		dev.Crash()
		l2 := mustNew(t, dev, 4096, 64, 6)
		var got []Entry
		n, err := l2.Replay(dev.NewCtx(), func(e Entry) { got = append(got, e) })
		if err != nil {
			t.Fatalf("cut=%d: mid-batch crash corrupted log: %v", cut, err)
		}
		if n > len(es) {
			t.Fatalf("cut=%d: replayed %d entries from a %d-entry batch", cut, n, len(es))
		}
		for i, e := range got {
			if e.Addr != es[i].Addr {
				t.Fatalf("cut=%d: surviving entries not a prefix: %d is %+v", cut, i, e)
			}
		}
	}
}
