// Package walog implements the per-arena write-ahead log used by the
// strongly consistent allocator variants. Entries are fixed-size 32 B
// records placed in the log region with the same interleaved mapping as
// slab bitmaps (Section 5.1 of the paper, applied to WALs), so that
// consecutive transactions flush different cache lines.
//
// The log is a ring. Every entry carries a monotonically increasing
// sequence number; a persisted checkpoint sequence bounds replay: entries
// with Seq <= checkpoint have fully persisted effects and are skipped.
// Entry application must be idempotent (all users re-apply absolute
// states, not deltas).
//
// Corruption detection: the checkpoint word is sealed (pmem.SealU64) and
// every entry carries a 24-bit checksum over its payload fields, so a
// torn append or a flipped bit is detected at replay instead of being
// applied. A
// single invalid entry is tolerated only at the ring position the next
// append would have used — that is exactly the state a crash mid-append
// leaves, and the interrupted operation was never acknowledged, so the
// entry is dropped. Anything else is reported as corruption.
package walog

import (
	"encoding/binary"
	"sort"

	"nvalloc/internal/interleave"
	"nvalloc/internal/pmem"
)

// EntrySize is the on-PM footprint of one WAL entry.
const EntrySize = 32

// headerSize reserves the first cache line of the region for the log
// header (checkpoint sequence).
const headerSize = pmem.LineSize

// Op identifies what a WAL entry records.
type Op uint8

// WAL operation codes.
const (
	OpNone     Op = iota
	OpAllocBit    // small block allocated: set bitmap bit
	OpFreeBit     // small block freed: clear bitmap bit
	OpMallocTo    // atomic malloc_to: Addr=user slot, Aux=block, Aux2=size
	OpFreeFrom    // atomic free_from: Addr=user slot, Aux=block
	OpMorph       // slab morph step: Addr=slab, Aux=step
)

// Entry is one decoded WAL record.
type Entry struct {
	Seq  uint64
	Addr pmem.PAddr
	Aux  uint64
	Aux2 uint32
	Op   Op
}

// Log is a write-ahead log over a fixed PM region. It is not
// goroutine-safe; callers hold the owning arena's resource lock.
type Log struct {
	dev    pmem.Mem
	base   pmem.PAddr
	m      interleave.Mapping
	n      int
	seq    uint64 // next sequence number to assign
	ckpt   uint64 // last persisted checkpoint
	cursor int    // next slot to write

	// addrs caches slotAddr for every ring slot: the interleaved offset
	// arithmetic costs two hardware divisions, paid once here instead of
	// on every append.
	addrs []pmem.PAddr
}

// RegionSize returns the PM bytes needed for a log of n entries.
func RegionSize(n, stripes int) int {
	return headerSize + interleave.New(n, EntrySize*8, stripes, pmem.LineSize).SizeBytes()
}

// entryCheck computes the 24-bit integrity checksum over an entry's
// payload fields. It is a multiplicative mix rather than a table CRC:
// the simulated device tears at 8-byte-word granularity, so any stale or
// zeroed word changes the mix with ~2^-24 collision probability — the
// same detection strength a CRC24 gives against tears — at a fraction of
// the cost on a path every malloc and free runs through.
func entryCheck(seq, addr, aux uint64, aux2 uint32, op byte) uint32 {
	x := seq
	x = (x ^ addr) * 0x9E3779B97F4A7C15
	x = (x ^ aux) * 0xBF58476D1CE4E5B9
	x = (x ^ uint64(aux2)<<8 ^ uint64(op)) * 0x94D049BB133111EB
	x ^= x >> 32
	return uint32(x) & 0xFFFFFF
}

// New creates (or reopens for appending after recovery) a WAL over the
// region at base. n is the entry capacity; stripes=1 disables
// interleaving (the paper's baseline layout). It fails if the checkpoint
// word does not unseal.
func New(dev pmem.Mem, base pmem.PAddr, n, stripes int) (*Log, error) {
	l := &Log{
		dev:  dev,
		base: base,
		m:    interleave.New(n, EntrySize*8, stripes, pmem.LineSize),
		n:    n,
	}
	ckpt, ok := pmem.UnsealU64(dev.ReadU64(base))
	if !ok {
		return nil, pmem.Corrupt("wal", base, "checkpoint word fails seal check")
	}
	l.ckpt = ckpt
	l.seq = l.ckpt + 1
	l.cursor = int(l.ckpt % uint64(n))
	l.addrs = make([]pmem.PAddr, n)
	for slot := range l.addrs {
		l.addrs[slot] = l.base + headerSize + pmem.PAddr(l.m.ByteOffset(slot))
	}
	return l, nil
}

func (l *Log) slotAddr(slot int) pmem.PAddr { return l.addrs[slot] }

// appendOne assigns the next sequence number to e, writes and flushes
// its interleaved slot (attributed to CatWAL), and returns the sequence.
// The ordering fence is the caller's responsibility. The slot is encoded
// through one raw Bytes view rather than per-field typed writes: WAL
// lines are written and flushed only under the owning arena's resource,
// so the strict-mode line locks the typed accessors take have nothing to
// exclude here.
func (l *Log) appendOne(c *pmem.Ctx, e Entry) uint64 {
	e.Seq = l.seq
	l.seq++
	slot := l.cursor
	if l.cursor++; l.cursor == l.n {
		l.cursor = 0
	}

	// Before overwriting an old slot, make sure the checkpoint has moved
	// past it. Any entry that has rotated all the way around the ring
	// completed long ago; advancing the checkpoint costs one flush per
	// half-ring of appends.
	if e.Seq > uint64(l.n) && l.ckpt < e.Seq-uint64(l.n) {
		l.setCheckpoint(c, e.Seq-uint64(l.n/2))
	}

	a := l.slotAddr(slot)
	buf := l.dev.Bytes(a, EntrySize)
	binary.LittleEndian.PutUint64(buf[0:], e.Seq)
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.Addr))
	binary.LittleEndian.PutUint64(buf[16:], e.Aux)
	binary.LittleEndian.PutUint32(buf[24:], e.Aux2)
	buf[28] = byte(e.Op)
	crc := entryCheck(e.Seq, uint64(e.Addr), e.Aux, e.Aux2, byte(e.Op))
	buf[29] = byte(crc)
	buf[30] = byte(crc >> 8)
	buf[31] = byte(crc >> 16)
	// Slots are 32 B units packed two per cache line, so an entry never
	// crosses a line boundary: one single-line flush covers it.
	c.FlushLineOf(pmem.CatWAL, a)
	return e.Seq
}

// Append persists a WAL entry (one interleaved slot write + flush) and
// fences, returning its sequence number.
func (l *Log) Append(c *pmem.Ctx, e Entry) uint64 {
	seq := l.appendOne(c, e)
	c.Fence()
	return seq
}

// AppendNoFence persists a WAL entry (write + flush) but leaves the
// ordering fence to the caller, so a commit path can close the entry and
// the metadata write it covers with a single trailing fence. Until that
// fence the entry's durability is unordered with later flushes — safe
// here because crash recovery accepts every order: a missing or torn
// entry means the operation was never acknowledged, and a persisted
// entry replays idempotently over whatever state the bitmap reached.
func (l *Log) AppendNoFence(c *pmem.Ctx, e Entry) uint64 {
	return l.appendOne(c, e)
}

// AppendBatch appends a group of entries with a single trailing fence:
// each entry is written and flushed individually (so replay's torn-entry
// tolerance still sees at most one in-flight slot per fence gap), but
// the fence cost is amortized over the batch. Returns the sequence
// number of the last entry. Entries must describe operations whose
// partial persistence is individually safe — the same idempotent-replay
// contract Append already imposes.
func (l *Log) AppendBatch(c *pmem.Ctx, es []Entry) uint64 {
	seq := l.AppendBatchNoFence(c, es)
	c.Fence()
	return seq
}

// AppendBatchNoFence is AppendBatch with the trailing fence left to the
// caller (see AppendNoFence for the safety contract).
func (l *Log) AppendBatchNoFence(c *pmem.Ctx, es []Entry) uint64 {
	if len(es) == 0 {
		return l.seq
	}
	var last uint64
	for _, e := range es {
		last = l.appendOne(c, e)
	}
	return last
}

// setCheckpoint persists the replay lower bound (sealed).
func (l *Log) setCheckpoint(c *pmem.Ctx, seq uint64) {
	if seq <= l.ckpt {
		return
	}
	l.ckpt = seq
	c.PersistU64(pmem.CatWAL, l.base, pmem.SealU64(seq))
	c.Fence()
}

// Checkpoint marks every entry appended so far as fully applied. Called at
// clean shutdown so recovery after a normal exit replays nothing.
func (l *Log) Checkpoint(c *pmem.Ctx) {
	if l.seq > 0 {
		l.setCheckpoint(c, l.seq-1)
	}
}

// Replay scans the ring and invokes fn on every valid entry with
// Seq > checkpoint, in sequence order. Every nonzero slot is CRC-checked
// and must sit at ring position (Seq-1) mod capacity. One invalid slot is
// tolerated if it is exactly where the next append would have landed (a
// torn in-flight append; its operation was never acknowledged) and is
// dropped; any other invalid or misplaced slot is reported as corruption.
// It returns the number of entries replayed.
func (l *Log) Replay(c *pmem.Ctx, fn func(Entry)) (int, error) {
	ckpt, ok := pmem.UnsealU64(l.dev.ReadU64(l.base))
	if !ok {
		return 0, pmem.Corrupt("wal", l.base, "checkpoint word fails seal check")
	}
	var live []Entry
	maxSeq := ckpt
	invalid := -1
	for slot := 0; slot < l.n; slot++ {
		a := l.slotAddr(slot)
		raw := l.dev.Bytes(a, EntrySize)
		c.Charge(pmem.CatSearch, 5) // scan cost
		zero := true
		for _, b := range raw {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue // never written
		}
		crc := uint32(raw[29]) | uint32(raw[30])<<8 | uint32(raw[31])<<16
		seq := l.dev.ReadU64(a)
		addr := l.dev.ReadU64(a + 8)
		aux := l.dev.ReadU64(a + 16)
		aux2 := l.dev.ReadU32(a + 24)
		op := l.dev.ReadU8(a + 28)
		if entryCheck(seq, addr, aux, aux2, op) != crc || seq == 0 || int((seq-1)%uint64(l.n)) != slot {
			if invalid >= 0 {
				return 0, pmem.Corrupt("wal", a, "multiple invalid entries (slots %d and %d)", invalid, slot)
			}
			invalid = slot
			continue
		}
		if seq <= ckpt {
			continue
		}
		live = append(live, Entry{
			Seq:  seq,
			Addr: pmem.PAddr(addr),
			Aux:  aux,
			Aux2: aux2,
			Op:   Op(op),
		})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	if invalid >= 0 && invalid != int(maxSeq%uint64(l.n)) {
		return 0, pmem.Corrupt("wal", l.slotAddr(invalid),
			"invalid entry at slot %d, not the in-flight append slot %d", invalid, int(maxSeq%uint64(l.n)))
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Seq < live[j].Seq })
	for i := 1; i < len(live); i++ {
		if live[i].Seq == live[i-1].Seq {
			return 0, pmem.Corrupt("wal", l.base, "duplicate sequence %d", live[i].Seq)
		}
	}
	for _, e := range live {
		fn(e)
	}
	// Resume appending after the highest sequence seen.
	l.seq = maxSeq + 1
	l.ckpt = ckpt
	l.cursor = int(maxSeq % uint64(l.n))
	return len(live), nil
}

// Seq returns the next sequence number (for tests).
func (l *Log) Seq() uint64 { return l.seq }

// Capacity returns the ring size in entries.
func (l *Log) Capacity() int { return l.n }
