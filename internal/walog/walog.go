// Package walog implements the per-arena write-ahead log used by the
// strongly consistent allocator variants. Entries are fixed-size 32 B
// records placed in the log region with the same interleaved mapping as
// slab bitmaps (Section 5.1 of the paper, applied to WALs), so that
// consecutive transactions flush different cache lines.
//
// The log is a ring. Every entry carries a monotonically increasing
// sequence number; a persisted checkpoint sequence bounds replay: entries
// with Seq <= checkpoint have fully persisted effects and are skipped.
// Entry application must be idempotent (all users re-apply absolute
// states, not deltas).
package walog

import (
	"sort"

	"nvalloc/internal/interleave"
	"nvalloc/internal/pmem"
)

// EntrySize is the on-PM footprint of one WAL entry.
const EntrySize = 32

// headerSize reserves the first cache line of the region for the log
// header (checkpoint sequence).
const headerSize = pmem.LineSize

// Op identifies what a WAL entry records.
type Op uint8

// WAL operation codes.
const (
	OpNone     Op = iota
	OpAllocBit    // small block allocated: set bitmap bit
	OpFreeBit     // small block freed: clear bitmap bit
	OpMallocTo    // atomic malloc_to: Addr=user slot, Aux=block, Aux2=size
	OpFreeFrom    // atomic free_from: Addr=user slot, Aux=block
	OpMorph       // slab morph step: Addr=slab, Aux=step
)

// Entry is one decoded WAL record.
type Entry struct {
	Seq  uint64
	Addr pmem.PAddr
	Aux  uint64
	Aux2 uint32
	Op   Op
}

// Log is a write-ahead log over a fixed PM region. It is not
// goroutine-safe; callers hold the owning arena's resource lock.
type Log struct {
	dev    *pmem.Device
	base   pmem.PAddr
	m      interleave.Mapping
	n      int
	seq    uint64 // next sequence number to assign
	ckpt   uint64 // last persisted checkpoint
	cursor int    // next slot to write
}

// RegionSize returns the PM bytes needed for a log of n entries.
func RegionSize(n, stripes int) int {
	return headerSize + interleave.New(n, EntrySize*8, stripes, pmem.LineSize).SizeBytes()
}

// New creates (or reopens for appending after recovery) a WAL over the
// region at base. n is the entry capacity; stripes=1 disables
// interleaving (the paper's baseline layout).
func New(dev *pmem.Device, base pmem.PAddr, n, stripes int) *Log {
	l := &Log{
		dev:  dev,
		base: base,
		m:    interleave.New(n, EntrySize*8, stripes, pmem.LineSize),
		n:    n,
	}
	l.ckpt = dev.ReadU64(base)
	l.seq = l.ckpt + 1
	return l
}

func (l *Log) slotAddr(slot int) pmem.PAddr {
	return l.base + headerSize + pmem.PAddr(l.m.ByteOffset(slot))
}

// Append persists a WAL entry (one interleaved slot write + flush) and
// returns its sequence number. The flush is attributed to CatWAL.
func (l *Log) Append(c *pmem.Ctx, e Entry) uint64 {
	e.Seq = l.seq
	l.seq++
	slot := l.cursor
	l.cursor = (l.cursor + 1) % l.n

	// Before overwriting an old slot, make sure the checkpoint has moved
	// past it. Any entry that has rotated all the way around the ring
	// completed long ago; advancing the checkpoint costs one flush per
	// half-ring of appends.
	if e.Seq > uint64(l.n) && l.ckpt < e.Seq-uint64(l.n) {
		l.setCheckpoint(c, e.Seq-uint64(l.n/2))
	}

	a := l.slotAddr(slot)
	l.dev.WriteU64(a, e.Seq)
	l.dev.WriteU64(a+8, uint64(e.Addr))
	l.dev.WriteU64(a+16, e.Aux)
	l.dev.WriteU32(a+24, e.Aux2)
	l.dev.WriteU8(a+28, byte(e.Op))
	c.Flush(pmem.CatWAL, a, EntrySize)
	c.Fence()
	return e.Seq
}

// setCheckpoint persists the replay lower bound.
func (l *Log) setCheckpoint(c *pmem.Ctx, seq uint64) {
	if seq <= l.ckpt {
		return
	}
	l.ckpt = seq
	c.PersistU64(pmem.CatWAL, l.base, seq)
	c.Fence()
}

// Checkpoint marks every entry appended so far as fully applied. Called at
// clean shutdown so recovery after a normal exit replays nothing.
func (l *Log) Checkpoint(c *pmem.Ctx) {
	if l.seq > 0 {
		l.setCheckpoint(c, l.seq-1)
	}
}

// Replay scans the ring and invokes fn on every entry with
// Seq > checkpoint, in sequence order. It returns the number of entries
// replayed. Recovery costs are charged to c as metadata reads.
func (l *Log) Replay(c *pmem.Ctx, fn func(Entry)) int {
	ckpt := l.dev.ReadU64(l.base)
	var live []Entry
	maxSeq := ckpt
	for slot := 0; slot < l.n; slot++ {
		a := l.slotAddr(slot)
		seq := l.dev.ReadU64(a)
		c.Charge(pmem.CatSearch, 5) // scan cost
		if seq <= ckpt {
			continue
		}
		live = append(live, Entry{
			Seq:  seq,
			Addr: pmem.PAddr(l.dev.ReadU64(a + 8)),
			Aux:  l.dev.ReadU64(a + 16),
			Aux2: l.dev.ReadU32(a + 24),
			Op:   Op(l.dev.ReadU8(a + 28)),
		})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Seq < live[j].Seq })
	for _, e := range live {
		fn(e)
	}
	// Resume appending after the highest sequence seen.
	l.seq = maxSeq + 1
	l.ckpt = ckpt
	l.cursor = int(maxSeq % uint64(l.n))
	return len(live)
}

// Seq returns the next sequence number (for tests).
func (l *Log) Seq() uint64 { return l.seq }

// Capacity returns the ring size in entries.
func (l *Log) Capacity() int { return l.n }
