package extent

import (
	"testing"

	"nvalloc/internal/blog"
	"nvalloc/internal/pmem"
)

const slabSize = 64 << 10

// TestSlabCacheBatchAmortization: N slab Gets must cost far fewer global
// Res acquisitions than N — one per batched refill — and every returned
// extent must be activated, slab-flagged and unrecorded.
func TestSlabCacheBatchAmortization(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	sc := NewSlabCache(a, slabSize)

	before := a.Res.Acquires()
	const n = 16
	var got []pmem.PAddr
	for i := 0; i < n; i++ {
		p, ok := sc.Get(c)
		if !ok {
			t.Fatalf("get %d failed", i)
		}
		got = append(got, p)
		v, ok := a.Lookup(p)
		if !ok || !v.Slab || v.Size != slabSize {
			t.Fatalf("cached extent %#x not an activated slab VEH: %+v %v", p, v, ok)
		}
	}
	acq := a.Res.Acquires() - before
	if acq >= n {
		t.Fatalf("%d gets cost %d global acquisitions; batching broken", n, acq)
	}
	// Adaptive growth: back-to-back refills must have raised the batch.
	if sc.Batch() <= minSlabBatch {
		t.Fatalf("batch still %d after %d churn gets", sc.Batch(), n)
	}
	// Unrecorded: nothing was recorded, so the bookkeeping log must hold
	// zero live records despite the activated extents.
	if n := a.book.(*blog.Log).Live(); n != 0 {
		t.Fatalf("cache gets produced %d bookkeeping records, want 0", n)
	}
}

// TestSlabCachePutOverflowAndFlush: overflowing Put hands extents back to
// the global free pool (reusable by Alloc) and resets the batch; Flush
// empties the cache entirely.
func TestSlabCachePutOverflowAndFlush(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	sc := NewSlabCache(a, slabSize)

	var ps []pmem.PAddr
	for i := 0; i < maxSlabBatch*3; i++ {
		p, ok := sc.Get(c)
		if !ok {
			t.Fatal("get failed")
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		sc.Put(c, p)
	}
	if sc.Len() > 2*maxSlabBatch {
		t.Fatalf("cache holds %d extents after overflow puts", sc.Len())
	}
	if sc.Batch() != minSlabBatch {
		t.Fatalf("overflow flush must reset batch, got %d", sc.Batch())
	}
	// Overflowed extents were deactivated; exactly the cached ones remain.
	active := 0
	for _, p := range ps {
		if _, ok := a.Lookup(p); ok {
			active++
		}
	}
	if active != sc.Len() {
		t.Fatalf("%d extents activated but %d cached after overflow", active, sc.Len())
	}
	sc.Flush(c)
	if sc.Len() != 0 {
		t.Fatalf("flush left %d extents cached", sc.Len())
	}
	for _, p := range ps {
		if _, ok := a.Lookup(p); ok {
			t.Fatalf("flushed extent %#x still activated", p)
		}
	}
	// The space is genuinely reusable.
	if _, err := a.Alloc(c, slabSize, 0, false); err != nil {
		t.Fatalf("alloc after flush: %v", err)
	}
}

// TestCachedExtentsFreeAfterCrash: cached (activated-but-unrecorded)
// extents must not survive a crash — Rebuild sees only recorded extents,
// and the cached space is free again.
func TestCachedExtentsFreeAfterCrash(t *testing.T) {
	dev, a, c := newAlloc(t, 64<<20)
	sc := NewSlabCache(a, slabSize)

	// One recorded extent, several cached ones.
	rec, err := a.Alloc(c, 128<<10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var cached []pmem.PAddr
	for i := 0; i < 6; i++ {
		p, ok := sc.Get(c)
		if !ok {
			t.Fatal("get failed")
		}
		cached = append(cached, p)
	}
	c.Merge()
	dev.Crash()

	bk, recs, err := blog.Open(dev, logBase, logSize, 6)
	if err != nil {
		t.Fatal(err)
	}
	var records []LiveRecord
	for _, r := range recs {
		records = append(records, LiveRecord{Addr: r.Addr, Size: r.Size, Slab: r.Slab})
	}
	c2 := dev.NewCtx()
	a2, live, err := Rebuild(dev, bk, Config{
		HeapBase: heapBase,
		HeapEnd:  pmem.PAddr(dev.Size()),
		BreakPtr: brkPtr,
	}, c2, records)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a2.Lookup(rec); !ok {
		t.Fatalf("recorded extent %#x lost in rebuild", rec)
	}
	for _, p := range cached {
		if _, ok := a2.Lookup(p); ok {
			t.Fatalf("cached extent %#x resurrected by rebuild", p)
		}
	}
	for _, v := range live {
		for _, p := range cached {
			if v.Addr == p {
				t.Fatalf("cached extent %#x in live set", p)
			}
		}
	}
}

// TestShardAllocFreeLifecycle covers the shard pool: lease acquisition,
// in-lease carve/coalesce, the lease page map, keep-one-spare hysteresis
// and fallthrough for foreign addresses.
func TestShardAllocFreeLifecycle(t *testing.T) {
	_, a, c := newAlloc(t, 128<<20)
	s := NewShards(a, 128<<20, 2)
	sh := s.Pool(0)

	var ps []pmem.PAddr
	for i := 0; i < 8; i++ {
		p, err := sh.Alloc(c, 48<<10)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Resolves(p) {
			t.Fatalf("lease map does not resolve %#x", p)
		}
		ps = append(ps, p)
	}
	// The lease VEH is hidden (Slab=true), the sub-allocs are recorded.
	allocs, _, taken, _ := sh.Stats()
	if allocs != 8 || taken == 0 {
		t.Fatalf("stats allocs=%d leases=%d", allocs, taken)
	}
	// Foreign address: not handled.
	if handled, _ := s.Free(c, heapBase+pmem.PAddr(64<<20)); handled {
		t.Fatal("free of non-lease address claimed handled")
	}
	// Frees return space; unknown in-lease addresses error but are handled.
	for _, p := range ps {
		handled, err := s.Free(c, p)
		if !handled || err != nil {
			t.Fatalf("free %#x: handled=%v err=%v", p, handled, err)
		}
	}
	if handled, err := s.Free(c, ps[0]); handled && err == nil {
		t.Fatal("double free through shard must error")
	}
	// After freeing everything the shard keeps at most one spare empty
	// lease per hysteresis; allocating again must not take a new lease.
	_, _, takenBefore, _ := sh.Stats()
	if _, err := sh.Alloc(c, 48<<10); err != nil {
		t.Fatal(err)
	}
	if _, _, takenAfter, _ := sh.Stats(); takenAfter != takenBefore {
		t.Fatal("alloc after frees leased again despite spare lease")
	}
	// Oversized requests are rejected (the caller falls back to global).
	if _, err := sh.Alloc(c, MaxShardAlloc+1); err == nil {
		t.Fatal("oversized shard alloc must fail")
	}
}

// TestShardSubAllocsSurviveCrash: recorded shard sub-allocations are
// rebuilt as ordinary global extents; the dissolved lease's remainder is
// free space.
func TestShardSubAllocsSurviveCrash(t *testing.T) {
	dev, a, c := newAlloc(t, 128<<20)
	s := NewShards(a, 128<<20, 1)
	sh := s.Pool(0)

	p1, err := sh.Alloc(c, 40<<10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sh.Alloc(c, 200<<10)
	if err != nil {
		t.Fatal(err)
	}
	c.Merge()
	dev.Crash()

	bk, recs, err := blog.Open(dev, logBase, logSize, 6)
	if err != nil {
		t.Fatal(err)
	}
	var records []LiveRecord
	for _, r := range recs {
		records = append(records, LiveRecord{Addr: r.Addr, Size: r.Size, Slab: r.Slab})
	}
	c2 := dev.NewCtx()
	a2, _, err := Rebuild(dev, bk, Config{
		HeapBase: heapBase,
		HeapEnd:  pmem.PAddr(dev.Size()),
		BreakPtr: brkPtr,
	}, c2, records)
	if err != nil {
		t.Fatal(err)
	}
	v1, ok1 := a2.Lookup(p1)
	v2, ok2 := a2.Lookup(p2)
	if !ok1 || v1.Size != 40<<10 || v1.Slab {
		t.Fatalf("sub-alloc %#x: %+v %v", p1, v1, ok1)
	}
	if !ok2 || v2.Size != 200<<10 || v2.Slab {
		t.Fatalf("sub-alloc %#x: %+v %v", p2, v2, ok2)
	}
	// They free through the ordinary global path now.
	if err := a2.Free(c2, p1); err != nil {
		t.Fatal(err)
	}
	if err := a2.Free(c2, p2); err != nil {
		t.Fatal(err)
	}
}

// TestFreeBatchTombstones: FreeBatch kills all records in one batch; the
// extents coalesce back and a rebuild sees none of them.
func TestFreeBatchTombstones(t *testing.T) {
	dev, a, c := newAlloc(t, 64<<20)
	var ps []pmem.PAddr
	for i := 0; i < 5; i++ {
		p, err := a.Alloc(c, 32<<10, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if err := a.FreeBatch(c, ps); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if _, ok := a.Lookup(p); ok {
			t.Fatalf("%#x still activated after FreeBatch", p)
		}
	}
	c.Merge()
	dev.Crash()
	_, recs, err := blog.Open(dev, logBase, logSize, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		for _, p := range ps {
			if r.Addr == p {
				t.Fatalf("batch-freed extent %#x still recorded", p)
			}
		}
	}
}
