package extent

import (
	"testing"

	"nvalloc/internal/pmem"
)

func newInPlaceAlloc(t *testing.T, devSize uint64) (*pmem.Device, *InPlace, *Allocator, *pmem.Ctx) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: devSize, Strict: true})
	bk := NewInPlace(dev, heapBase, brkPtr)
	a := New(dev, bk, Config{
		HeapBase: heapBase,
		HeapEnd:  pmem.PAddr(dev.Size()),
		BreakPtr: brkPtr,
	})
	return dev, bk, a, dev.NewCtx()
}

// TestInPlaceRecordBatches: the in-place bookkeeper's batch entry points
// persist a group of header slots under one trailing fence, and Recover
// sees exactly the surviving records.
func TestInPlaceRecordBatches(t *testing.T) {
	dev, bk, _, c := newInPlaceAlloc(t, 64<<20)
	data := heapBase + pmem.PAddr(HeaderBytes)
	recs := []LiveRecord{
		{Addr: data, Size: 4096},
		{Addr: data + 4096, Size: 8192, Slab: true},
		{Addr: data + 16384, Size: 4096},
	}
	f0 := c.Local().Fences
	if err := bk.RecordAllocBatch(c, recs); err != nil {
		t.Fatal(err)
	}
	if fences := c.Local().Fences - f0; fences != 1 {
		t.Fatalf("alloc batch of %d issued %d fences, want 1", len(recs), fences)
	}
	f0 = c.Local().Fences
	if err := bk.RecordFreeBatch(c, []pmem.PAddr{data, data + 16384}); err != nil {
		t.Fatal(err)
	}
	if fences := c.Local().Fences - f0; fences != 1 {
		t.Fatalf("free batch issued %d fences, want 1", fences)
	}
	dev.Crash()
	live := bk.Recover(dev.NewCtx())
	if len(live) != 1 || live[0].Addr != data+4096 || live[0].Size != 8192 || !live[0].Slab {
		t.Fatalf("recover after batches: %+v", live)
	}
}

// TestInPlaceFreeBatchThroughAllocator: Allocator.FreeBatch takes the
// BatchBookkeeper fast path for the in-place scheme too — all records die,
// the space coalesces, and fences stay amortized.
func TestInPlaceFreeBatchThroughAllocator(t *testing.T) {
	dev, bk, a, c := newInPlaceAlloc(t, 64<<20)
	var ps []pmem.PAddr
	for i := 0; i < 6; i++ {
		p, err := a.Alloc(c, 16<<10, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	perFree := func() uint64 {
		// One extent freed individually costs at least one fence.
		f0 := c.Local().Fences
		if err := a.Free(c, ps[0]); err != nil {
			t.Fatal(err)
		}
		return c.Local().Fences - f0
	}()
	f0 := c.Local().Fences
	if err := a.FreeBatch(c, ps[1:]); err != nil {
		t.Fatal(err)
	}
	batchFences := c.Local().Fences - f0
	if batchFences >= perFree*uint64(len(ps)-1) {
		t.Fatalf("batch free of %d cost %d fences vs %d per single free; not amortized",
			len(ps)-1, batchFences, perFree)
	}
	for _, p := range ps {
		if _, ok := a.Lookup(p); ok {
			t.Fatalf("%#x still activated after batch free", p)
		}
	}
	dev.Crash()
	if live := bk.Recover(dev.NewCtx()); len(live) != 0 {
		t.Fatalf("records survived batch free: %+v", live)
	}
}
