package extent

import (
	"fmt"
	"sort"

	"nvalloc/internal/pagemap"
	"nvalloc/internal/pmem"
)

// Shard-pool geometry. Leases are sized and aligned so that (a) any
// address inside a lease resolves to it through a fixed-granularity page
// map lookup, and (b) a lease fits the data region of a bookkept chunk
// even for the in-place bookkeeper, whose 8 KiB header table makes
// ChunkSize-aligned extents impossible.
const (
	// LeaseSize is the extent quantum a shard pool leases from the global
	// allocator.
	LeaseSize = 2 << 20
	// LeaseAlign is the lease alignment and the page-map granularity used
	// to route a free back to its shard.
	LeaseAlign = 64 << 10
	// MaxShardAlloc is the largest request served from a shard pool;
	// bigger extents fall through to the global allocator.
	MaxShardAlloc = 512 << 10
)

// run is a free range inside a lease, byte offsets relative to the lease
// base. Runs are kept sorted by offset and coalesced.
type run struct {
	off uint32
	len uint32
}

// lease is one LeaseSize extent a shard carved from the global
// allocator. Like cached slab extents, a lease is activated and
// unrecorded (Slab set on its VEH): after a crash the lease itself
// dissolves — its recorded sub-allocations are rebuilt as ordinary
// global extents and the unrecorded remainder is free.
type lease struct {
	shard *Shard
	base  pmem.PAddr
	free  []run
	live  int
}

func (l *lease) empty() bool {
	return len(l.free) == 1 && l.free[0].off == 0 && l.free[0].len == LeaseSize
}

// insert returns [off,off+n) to the lease's free runs, coalescing with
// adjacent runs.
func (l *lease) insert(off, n uint32) {
	i := sort.Search(len(l.free), func(i int) bool { return l.free[i].off >= off })
	l.free = append(l.free, run{})
	copy(l.free[i+1:], l.free[i:])
	l.free[i] = run{off, n}
	// Coalesce with the successor, then the predecessor.
	if i+1 < len(l.free) && l.free[i].off+l.free[i].len == l.free[i+1].off {
		l.free[i].len += l.free[i+1].len
		l.free = append(l.free[:i+1], l.free[i+2:]...)
	}
	if i > 0 && l.free[i-1].off+l.free[i-1].len == l.free[i].off {
		l.free[i-1].len += l.free[i].len
		l.free = append(l.free[:i], l.free[i+1:]...)
	}
}

// Shard is one address-partitioned large-allocation pool with its own
// lock. Threads hash to a shard by arena index, so at most a few arenas
// share each pool instead of every thread contending on Allocator.Res.
type Shard struct {
	// Res serializes the shard and models its lock in virtual time.
	Res pmem.Resource

	owner     *Shards
	id        int
	leases    []*lease
	allocated map[pmem.PAddr]uint64 // live sub-allocation sizes

	allocs, frees, leasesTaken, leasesReturned uint64
}

// Shards is the set of shard pools plus the lease page map that routes
// an address back to its owning lease (and shard) without any lock.
type Shards struct {
	a      *Allocator
	byAddr *pagemap.Map[lease]
	pools  []*Shard
}

// NewShards creates n shard pools over the global allocator a. devSize
// bounds the lease page map.
func NewShards(a *Allocator, devSize uint64, n int) *Shards {
	s := &Shards{
		a:      a,
		byAddr: pagemap.New[lease](devSize, LeaseAlign),
	}
	for i := 0; i < n; i++ {
		s.pools = append(s.pools, &Shard{owner: s, id: i, allocated: make(map[pmem.PAddr]uint64)})
	}
	return s
}

// Pool returns the shard for an arena index.
func (s *Shards) Pool(arenaIdx int) *Shard {
	return s.pools[arenaIdx%len(s.pools)]
}

// NumPools returns the number of shard pools.
func (s *Shards) NumPools() int { return len(s.pools) }

// Alloc serves a large allocation of size bytes (size must be at most
// MaxShardAlloc) from the shard, leasing more space from the global
// allocator when the pool runs dry. The sub-allocation's record is
// persisted before Alloc returns, so an acknowledged allocation survives
// a crash even though the lease around it does not.
func (sh *Shard) Alloc(c *pmem.Ctx, size uint64) (pmem.PAddr, error) {
	if size == 0 {
		return pmem.Null, fmt.Errorf("extent: zero-size allocation")
	}
	size = (size + PageSize - 1) &^ (PageSize - 1)
	if size > MaxShardAlloc {
		return pmem.Null, fmt.Errorf("extent: %d bytes exceeds shard limit %d", size, MaxShardAlloc)
	}
	sh.Res.Acquire(c)
	addr, ok := sh.carve(c, size)
	if !ok {
		if err := sh.addLease(c); err != nil {
			sh.Res.Release(c)
			return pmem.Null, err
		}
		addr, ok = sh.carve(c, size)
		if !ok {
			sh.Res.Release(c)
			return pmem.Null, fmt.Errorf("extent: fresh lease cannot hold %d bytes", size)
		}
	}
	sh.allocated[addr] = size
	if err := sh.owner.a.RecordExtent(c, addr, size, false); err != nil {
		// Bookkeeping exhausted: undo the (volatile) carve and fail.
		delete(sh.allocated, addr)
		sh.uncarve(addr, size)
		sh.Res.Release(c)
		return pmem.Null, err
	}
	// The carved bytes hold live data now; the rest of the lease stays
	// counted as overhead.
	sh.owner.a.cacheOverhead.Add(-int64(size))
	sh.allocs++
	sh.Res.Release(c)
	return addr, nil
}

// carve takes size bytes from the first fitting free run, first lease
// first (address-ordered within a lease by construction). Caller holds
// Res.
func (sh *Shard) carve(c *pmem.Ctx, size uint64) (pmem.PAddr, bool) {
	for _, l := range sh.leases {
		c.Charge(pmem.CatSearch, 20)
		for i := range l.free {
			r := &l.free[i]
			if uint64(r.len) < size {
				c.Charge(pmem.CatSearch, 5)
				continue
			}
			addr := l.base + pmem.PAddr(r.off)
			r.off += uint32(size)
			r.len -= uint32(size)
			if r.len == 0 {
				l.free = append(l.free[:i], l.free[i+1:]...)
			}
			l.live++
			return addr, true
		}
	}
	return pmem.Null, false
}

// uncarve reverses a carve that could not be recorded. Caller holds Res.
func (sh *Shard) uncarve(addr pmem.PAddr, size uint64) {
	if l := sh.leaseOf(addr); l != nil {
		l.insert(uint32(addr-l.base), uint32(size))
		l.live--
	}
}

func (sh *Shard) leaseOf(addr pmem.PAddr) *lease {
	return sh.owner.byAddr.Lookup(addr)
}

// addLease takes one LeaseSize extent from the global allocator and
// registers its granules in the lease page map. Caller holds Res.
func (sh *Shard) addLease(c *pmem.Ctx) error {
	base, err := sh.owner.a.AllocLease(c, LeaseSize, LeaseAlign)
	if err != nil {
		return err
	}
	l := &lease{shard: sh, base: base, free: []run{{0, LeaseSize}}}
	sh.leases = append(sh.leases, l)
	for off := pmem.PAddr(0); off < LeaseSize; off += LeaseAlign {
		sh.owner.byAddr.Store(base+off, l)
	}
	sh.leasesTaken++
	return nil
}

// dropLease unregisters an empty lease and returns its extent to the
// global allocator. Caller holds Res.
func (sh *Shard) dropLease(c *pmem.Ctx, l *lease) {
	for i, x := range sh.leases {
		if x == l {
			sh.leases = append(sh.leases[:i], sh.leases[i+1:]...)
			break
		}
	}
	for off := pmem.PAddr(0); off < LeaseSize; off += LeaseAlign {
		sh.owner.byAddr.Delete(l.base + off)
	}
	sh.owner.a.ReleaseUnrecordedBatch(c, []pmem.PAddr{l.base})
	sh.leasesReturned++
}

// Free returns a shard-managed sub-allocation. handled is false when the
// address is not inside any lease (the caller falls back to the global
// allocator). The tombstone is persisted before the space becomes
// reusable, so a crash can never observe a new record overlapping the
// old one.
func (s *Shards) Free(c *pmem.Ctx, addr pmem.PAddr) (handled bool, err error) {
	for {
		l := s.byAddr.Lookup(addr)
		if l == nil {
			return false, nil
		}
		sh := l.shard
		sh.Res.Acquire(c)
		// The lease may have been dropped (or even re-leased elsewhere)
		// between the lock-free lookup and the acquire; revalidate.
		if s.byAddr.Lookup(addr) != l {
			sh.Res.Release(c)
			continue
		}
		size, ok := sh.allocated[addr]
		if !ok {
			sh.Res.Release(c)
			return true, fmt.Errorf("extent: shard free of unknown extent %#x", addr)
		}
		if err := s.a.TombstoneExtent(c, addr); err != nil {
			sh.Res.Release(c)
			return true, err
		}
		delete(sh.allocated, addr)
		l.insert(uint32(addr-l.base), uint32(size))
		l.live--
		s.a.cacheOverhead.Add(int64(size))
		sh.frees++
		if l.live == 0 && l.empty() && sh.spareEmptyLease(l) {
			sh.dropLease(c, l)
		}
		sh.Res.Release(c)
		return true, nil
	}
}

// spareEmptyLease reports whether another fully-free lease besides l
// exists in the shard — the keep-one-spare hysteresis that stops a
// malloc/free cycle at a lease boundary from thrashing the global lock.
func (sh *Shard) spareEmptyLease(l *lease) bool {
	for _, x := range sh.leases {
		if x != l && x.live == 0 && x.empty() {
			return true
		}
	}
	return false
}

// Resolves reports whether addr is the start of a live shard
// sub-allocation.
func (s *Shards) Resolves(addr pmem.PAddr) bool {
	l := s.byAddr.Lookup(addr)
	if l == nil {
		return false
	}
	sh := l.shard
	sh.Res.Lock()
	_, ok := sh.allocated[addr]
	sh.Res.Unlock()
	return ok
}

// Objects calls fn for every live shard sub-allocation (unordered across
// shards, address-ordered within one). It uses the lock-only resource
// path so walking objects does not perturb virtual time.
func (s *Shards) Objects(fn func(addr pmem.PAddr, size uint64) bool) bool {
	for _, sh := range s.pools {
		sh.Res.Lock()
		addrs := make([]pmem.PAddr, 0, len(sh.allocated))
		for a := range sh.allocated {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		sizes := make([]uint64, len(addrs))
		for i, a := range addrs {
			sizes[i] = sh.allocated[a]
		}
		sh.Res.Unlock()
		for i, a := range addrs {
			if !fn(a, sizes[i]) {
				return false
			}
		}
	}
	return true
}

// Stats returns per-shard (allocs, frees, leases taken, leases
// returned) for the contention report.
func (sh *Shard) Stats() (allocs, frees, taken, returned uint64) {
	sh.Res.Lock()
	defer sh.Res.Unlock()
	return sh.allocs, sh.frees, sh.leasesTaken, sh.leasesReturned
}

// LiveBytes returns the bytes of live sub-allocations in the shard.
func (sh *Shard) LiveBytes() uint64 {
	sh.Res.Lock()
	defer sh.Res.Unlock()
	var n uint64
	for _, sz := range sh.allocated {
		n += sz
	}
	return n
}
