// Package extent implements NVAlloc's large allocator (Section 4.3):
// extents from 16 KiB to a few MiB managed through virtual extent headers
// (VEHs) in DRAM, three lists (activated / reclaimed / retained), best-fit
// selection over a size-ordered red-black tree, split and coalesce via an
// address index (the paper's "R-tree"), decay-based demotion of free
// extents using a smootherstep threshold, and pluggable persistent
// bookkeeping: the log-structured bookkeeping log (package blog) or the
// classic in-place region headers the paper's baselines use.
package extent

import (
	"fmt"
	"sync/atomic"

	"nvalloc/internal/pmem"
	"nvalloc/internal/rbtree"
)

// PageSize is the allocation granularity of the large allocator.
const PageSize = 4096

// ChunkSize is the growth quantum requested from the device ("mmap").
const ChunkSize = 4 << 20

// State is a VEH's list membership.
type State int

// VEH states.
const (
	// Activated extents hold live data.
	Activated State = iota
	// Reclaimed extents are free with physical memory still mapped.
	Reclaimed
	// Retained extents are free with physical memory unmapped (virtual
	// reservation only).
	Retained
	// Released extents have been returned to the OS entirely.
	Released
)

// VEH is a virtual extent header: the DRAM descriptor of one extent.
type VEH struct {
	Addr     pmem.PAddr
	Size     uint64
	State    State
	Slab     bool
	LastFree int64 // virtual time of the last transition to a free state
}

// End returns the first address past the extent.
func (v *VEH) End() pmem.PAddr { return v.Addr + pmem.PAddr(v.Size) }

// Bookkeeper persists which extents are live. Implementations: *blog.Log
// (NVAlloc's log-structured bookkeeping) and *InPlace (classic region
// headers).
type Bookkeeper interface {
	// RecordAlloc persists that [addr,addr+size) is live.
	RecordAlloc(c *pmem.Ctx, addr pmem.PAddr, size uint64, slab bool) error
	// RecordFree persists that addr is no longer live.
	RecordFree(c *pmem.Ctx, addr pmem.PAddr) error
	// MaybeGC lets the bookkeeper compact itself.
	MaybeGC(c *pmem.Ctx)
	// DataOffset returns how many bytes at the start of each fresh chunk
	// the bookkeeper reserves for itself (0 for the log; a header table
	// for in-place bookkeeping).
	DataOffset() uint64
}

// SelfLockedBookkeeper marks bookkeepers that serialize their own calls
// internally (the sharded log takes a per-shard resource inside each
// record append). The allocator skips its external BookRes for such
// bookkeepers, so appends routed to different shards never serialize.
type SelfLockedBookkeeper interface {
	// SelfLocked is a marker; implementations serialize every Bookkeeper
	// method themselves and may be called concurrently.
	SelfLocked()
}

// BatchBookkeeper is implemented by bookkeepers that can persist a group
// of tombstones with a single trailing fence. Entries are still written
// and flushed individually, so a crash mid-batch persists a prefix —
// each record is independently valid, and callers only batch where
// partial persistence is safe (idempotent recovery sweeps). Both
// bookkeepers also offer a RecordAllocBatch with the same contract,
// outside this interface because the allocator itself never batches
// alloc records (a record must follow its extent's initialization).
type BatchBookkeeper interface {
	// RecordFreeBatch persists tombstones for each addr.
	RecordFreeBatch(c *pmem.Ctx, addrs []pmem.PAddr) error
}

type sizeKey struct {
	size uint64
	addr pmem.PAddr
}

func sizeLess(a, b sizeKey) bool {
	if a.size != b.size {
		return a.size < b.size
	}
	return a.addr < b.addr
}

// Allocator is the large allocator. All methods require the caller to
// hold Res (the global large-allocation lock) unless documented
// otherwise: the bookkeeping record layer is serialized by its own
// resource (BookRes) so record persistence can run off the global lock.
type Allocator struct {
	// Res serializes the large allocator's volatile structures (trees,
	// lists, VEH map) and models its lock in virtual time.
	Res pmem.Resource

	// BookRes serializes the persistent bookkeeper (record appends, GC).
	// Every bookkeeper call goes through it; legacy paths that hold Res
	// nest BookRes inside it (lock order: Res before BookRes), while the
	// arena extent cache and the shard pools take BookRes alone. Because
	// a nested section's virtual span is a subset of the enclosing Res
	// section, nesting adds zero wait in workloads that only use the
	// legacy paths — the split only shows up when record traffic actually
	// moves off the global lock.
	BookRes pmem.Resource

	dev            pmem.Dev
	book           Bookkeeper
	bookSelfLocked bool
	heapBase       pmem.PAddr
	heapEnd        pmem.PAddr
	brkAddr        pmem.PAddr // persistent cell holding the heap break

	activated map[pmem.PAddr]*VEH
	bySize    [2]*rbtree.Tree[sizeKey, *VEH] // [Reclaimed-?], indexed by state-1... see idx()
	byAddr    *rbtree.Tree[pmem.PAddr, *VEH] // all free extents (coalescing)
	released  *rbtree.Tree[sizeKey, *VEH]    // OS-returned ranges, reusable last

	fifoReclaimed []*VEH
	fifoRetained  []*VEH

	metaBytes      uint64
	activatedBytes uint64
	reclaimedBytes uint64
	retainedBytes  uint64
	peak           uint64

	// cacheOverhead counts activated-but-idle bytes parked in arena slab
	// caches and shard-pool leases: space that is carved out of the free
	// lists (so it sits in activatedBytes) but holds no live data. Used
	// subtracts it so usage tables report live sub-allocation bytes and
	// compare apples-to-apples with cache-free configurations; the raw
	// value is exposed as LeaseOverhead. Atomic because the cache and
	// shard paths adjust it without holding Res.
	cacheOverhead atomic.Int64

	decay decayState

	// FirstFit switches extent selection from best-fit (size-ordered
	// tree) to address-ordered first-fit (ablation experiments).
	FirstFit bool

	// Stats
	Splits, Coalesces, Grows uint64
}

func (a *Allocator) idx(s State) *rbtree.Tree[sizeKey, *VEH] {
	switch s {
	case Reclaimed:
		return a.bySize[0]
	case Retained:
		return a.bySize[1]
	default:
		panic("extent: no size index for state")
	}
}

// Config configures a large allocator.
type Config struct {
	HeapBase pmem.PAddr // first usable heap byte (chunk aligned)
	HeapEnd  pmem.PAddr // one past the last usable heap byte
	BreakPtr pmem.PAddr // persistent 8-byte cell storing the heap break
	// MetaBytes is counted into Used (superblock, WAL and log regions).
	MetaBytes uint64
}

// New creates a large allocator over a fresh heap region.
func New(dev pmem.Dev, book Bookkeeper, cfg Config) *Allocator {
	a := newAllocator(dev, book, cfg)
	c := dev.NewCtx()
	c.PersistU64(pmem.CatMeta, cfg.BreakPtr, uint64(cfg.HeapBase))
	c.Merge()
	return a
}

func newAllocator(dev pmem.Dev, book Bookkeeper, cfg Config) *Allocator {
	if cfg.HeapBase%ChunkSize != 0 {
		panic(fmt.Sprintf("extent: heap base %#x must be %d-aligned", cfg.HeapBase, ChunkSize))
	}
	a := &Allocator{
		dev:       dev,
		book:      book,
		heapBase:  cfg.HeapBase,
		heapEnd:   cfg.HeapEnd,
		brkAddr:   cfg.BreakPtr,
		activated: make(map[pmem.PAddr]*VEH),
		byAddr:    rbtree.New[pmem.PAddr, *VEH](func(x, y pmem.PAddr) bool { return x < y }),
		released:  rbtree.New[sizeKey, *VEH](sizeLess),
		metaBytes: cfg.MetaBytes,
	}
	a.bySize[0] = rbtree.New[sizeKey, *VEH](sizeLess)
	a.bySize[1] = rbtree.New[sizeKey, *VEH](sizeLess)
	a.decay.init()
	a.peak = a.metaBytes
	_, a.bookSelfLocked = book.(SelfLockedBookkeeper)
	return a
}

// bookAcquire serializes a bookkeeper call through BookRes unless the
// bookkeeper locks itself (the sharded log).
func (a *Allocator) bookAcquire(c *pmem.Ctx) {
	if !a.bookSelfLocked {
		a.BookRes.Acquire(c)
	}
}

func (a *Allocator) bookRelease(c *pmem.Ctx) {
	if !a.bookSelfLocked {
		a.BookRes.Release(c)
	}
}

// Used returns committed bytes: metadata regions, live extents and dirty
// (reclaimed) free extents, minus cache/lease overhead — activated space
// parked in slab caches and shard leases holds no live data and would
// otherwise inflate usage by whole 2 MiB leases. Retained and released
// memory is unmapped and not counted.
func (a *Allocator) Used() uint64 {
	u := a.metaBytes + a.activatedBytes + a.reclaimedBytes
	if ov := a.cacheOverhead.Load(); ov > 0 {
		if uint64(ov) >= u {
			return 0
		}
		u -= uint64(ov)
	}
	return u
}

// LeaseOverhead returns the bytes of activated-but-idle space currently
// parked in arena slab caches and shard-pool leases (the amount Used
// subtracts).
func (a *Allocator) LeaseOverhead() uint64 {
	if ov := a.cacheOverhead.Load(); ov > 0 {
		return uint64(ov)
	}
	return 0
}

// Peak returns the high-water mark of Used.
func (a *Allocator) Peak() uint64 { return a.peak }

// ResetPeak restarts peak tracking.
func (a *Allocator) ResetPeak() { a.peak = a.Used() }

func (a *Allocator) notePeak() {
	if u := a.Used(); u > a.peak {
		a.peak = u
	}
}

// Lookup returns the activated VEH at addr.
func (a *Allocator) Lookup(addr pmem.PAddr) (*VEH, bool) {
	v, ok := a.activated[addr]
	return v, ok
}

// Activated exposes the live-extent map for recovery sweeps; callers
// must hold Res and must not mutate it.
func (a *Allocator) Activated() map[pmem.PAddr]*VEH { return a.activated }

func align(v, al pmem.PAddr) pmem.PAddr { return (v + al - 1) &^ (al - 1) }

// removeFree detaches a free VEH from the size and address indexes.
func (a *Allocator) removeFree(v *VEH) {
	switch v.State {
	case Reclaimed:
		a.reclaimedBytes -= v.Size
	case Retained:
		a.retainedBytes -= v.Size
	case Released:
		a.released.Delete(sizeKey{v.Size, v.Addr})
		a.byAddr.Delete(v.Addr)
		return
	}
	a.idx(v.State).Delete(sizeKey{v.Size, v.Addr})
	a.byAddr.Delete(v.Addr)
}

// insertFree registers a free VEH under the given state.
func (a *Allocator) insertFree(v *VEH, s State, now int64) {
	v.State = s
	v.LastFree = now
	v.Slab = false
	switch s {
	case Reclaimed:
		a.reclaimedBytes += v.Size
		a.fifoReclaimed = append(a.fifoReclaimed, v)
		a.idx(s).Put(sizeKey{v.Size, v.Addr}, v)
	case Retained:
		a.retainedBytes += v.Size
		a.fifoRetained = append(a.fifoRetained, v)
		a.idx(s).Put(sizeKey{v.Size, v.Addr}, v)
	case Released:
		a.released.Put(sizeKey{v.Size, v.Addr}, v)
	}
	a.byAddr.Put(v.Addr, v)
}

// bestFit finds the smallest free extent in the given state that can hold
// size bytes at the requested alignment. Returns nil if none fits. With
// FirstFit set it instead scans the address index in order, charging one
// probe per candidate (the classic algorithm's cost profile).
func (a *Allocator) bestFit(tree *rbtree.Tree[sizeKey, *VEH], size uint64, al pmem.PAddr, c *pmem.Ctx) *VEH {
	if a.FirstFit {
		var hit *VEH
		wantReclaimed := tree == a.bySize[0]
		wantRetained := tree == a.bySize[1]
		a.byAddr.Ascend(func(_ pmem.PAddr, v *VEH) bool {
			c.Charge(pmem.CatSearch, 20)
			switch {
			case wantReclaimed && v.State != Reclaimed:
				return true
			case wantRetained && v.State != Retained:
				return true
			case !wantReclaimed && !wantRetained && v.State != Released:
				return true
			}
			start := align(v.Addr, al)
			if uint64(start-v.Addr)+size <= v.Size {
				hit = v
				return false
			}
			return true
		})
		return hit
	}
	key := sizeKey{size: size}
	for {
		k, v, ok := tree.Ceiling(key)
		if !ok {
			return nil
		}
		c.Charge(pmem.CatSearch, 25)
		start := align(v.Addr, al)
		if uint64(start-v.Addr)+size <= v.Size {
			return v
		}
		// Alignment padding does not fit; try the next larger extent.
		key = sizeKey{size: k.size, addr: k.addr + 1}
	}
}

// carve splits the free extent v so that [start,start+size) becomes an
// activated extent; any head or tail remainder stays free in v's former
// state.
func (a *Allocator) carve(c *pmem.Ctx, v *VEH, start pmem.PAddr, size uint64, now int64) *VEH {
	state := v.State
	a.removeFree(v)
	if start > v.Addr {
		head := &VEH{Addr: v.Addr, Size: uint64(start - v.Addr)}
		a.insertFree(head, state, now)
		a.Splits++
	}
	if end := start + pmem.PAddr(size); end < v.End() {
		tail := &VEH{Addr: end, Size: uint64(v.End() - end)}
		a.insertFree(tail, state, now)
		a.Splits++
	}
	nv := &VEH{Addr: start, Size: size, State: Activated}
	a.activated[start] = nv
	a.activatedBytes += size
	return nv
}

// grow extends the heap break by at least `need` bytes (in ChunkSize
// units) and returns the new free extent covering the data part of the
// growth.
func (a *Allocator) grow(c *pmem.Ctx, need uint64, now int64) (*VEH, error) {
	brk := pmem.PAddr(a.dev.ReadU64(a.brkAddr))
	res := a.book.DataOffset()
	g := uint64(ChunkSize)
	for g < need+res {
		g += ChunkSize
	}
	if uint64(brk)+g > uint64(a.heapEnd) {
		return nil, fmt.Errorf("extent: heap exhausted (break %#x + %d > %#x)", brk, g, a.heapEnd)
	}
	nbrk := brk + pmem.PAddr(g)
	c.PersistU64(pmem.CatMeta, a.brkAddr, uint64(nbrk))
	c.Fence()
	a.Grows++
	if res > 0 {
		a.metaBytes += res * (g / ChunkSize)
	}
	// Each chunk in the growth may reserve a bookkeeper header.
	var first *VEH
	for off := uint64(0); off < g; off += ChunkSize {
		v := &VEH{Addr: brk + pmem.PAddr(off+res), Size: ChunkSize - res}
		a.insertFree(v, Reclaimed, now)
		if first == nil {
			first = v
		} else {
			// Adjacent chunks coalesce unless a header separates them.
			if res == 0 {
				a.coalesce(c, v)
			}
		}
	}
	// Re-fetch: coalescing may have merged `first` away.
	if res == 0 {
		if _, v, ok := a.byAddr.Floor(brk); ok && v.State == Reclaimed && v.End() >= nbrk {
			return v, nil
		}
	}
	return first, nil
}

// Alloc serves a large allocation: best-fit over the reclaimed list, then
// the retained list, then OS-released ranges, then heap growth. The
// caller holds Res.
func (a *Allocator) Alloc(c *pmem.Ctx, size uint64, alignTo pmem.PAddr, slabExtent bool) (pmem.PAddr, error) {
	addr, err := a.AllocDeferRecord(c, size, alignTo, slabExtent)
	if err != nil {
		return pmem.Null, err
	}
	if err := a.Record(c, addr); err != nil {
		return pmem.Null, err
	}
	return addr, nil
}

// AllocDeferRecord carves an extent without persisting its bookkeeping
// record. Slab allocation uses it so the persistent record is written
// only *after* the slab header is formatted and flushed — a crash in
// between leaves unrecorded (and therefore free) space instead of a
// recorded slab with a garbage header. Callers must invoke Record once
// the extent's own initialization is persistent.
func (a *Allocator) AllocDeferRecord(c *pmem.Ctx, size uint64, alignTo pmem.PAddr, slabExtent bool) (pmem.PAddr, error) {
	if size == 0 {
		return pmem.Null, fmt.Errorf("extent: zero-size allocation")
	}
	size = (size + PageSize - 1) &^ (PageSize - 1)
	if alignTo < PageSize {
		alignTo = PageSize
	}
	now := c.Now
	v := a.bestFit(a.idx(Reclaimed), size, alignTo, c)
	if v == nil {
		v = a.bestFit(a.idx(Retained), size, alignTo, c)
	}
	if v == nil {
		v = a.bestFit(a.released, size, alignTo, c)
	}
	if v == nil {
		nv, err := a.grow(c, size+uint64(alignTo), now)
		if err != nil {
			return pmem.Null, err
		}
		v = nv
	}
	start := align(v.Addr, alignTo)
	nv := a.carve(c, v, start, size, now)
	nv.Slab = slabExtent
	a.notePeak()
	a.maybeDecay(c)
	return nv.Addr, nil
}

// Record persists the bookkeeping record of an extent carved with
// AllocDeferRecord.
func (a *Allocator) Record(c *pmem.Ctx, addr pmem.PAddr) error {
	v, ok := a.activated[addr]
	if !ok {
		return fmt.Errorf("extent: record of unknown extent %#x", addr)
	}
	a.bookAcquire(c)
	err := a.book.RecordAlloc(c, v.Addr, v.Size, v.Slab)
	a.bookRelease(c)
	return err
}

// RecordExtent persists a bookkeeping record for an extent the caller
// already owns (carved earlier via AllocDeferRecord, a cache refill, or
// a shard lease) without touching the allocator's volatile structures:
// only BookRes is taken, so the global lock stays free. The caller must
// have persisted the extent's own initialization (slab header, object
// contents) first — the record makes the space survive recovery.
func (a *Allocator) RecordExtent(c *pmem.Ctx, addr pmem.PAddr, size uint64, slab bool) error {
	a.bookAcquire(c)
	err := a.book.RecordAlloc(c, addr, size, slab)
	a.bookRelease(c)
	return err
}

// TombstoneExtent persists a free record for addr without touching the
// allocator's volatile structures (BookRes only). The caller keeps
// ownership of the space — typically to reinsert it into an arena cache
// or a shard free run — and must not reuse it before this returns, so a
// later record for overlapping space can never coexist with the old one
// after a crash.
func (a *Allocator) TombstoneExtent(c *pmem.Ctx, addr pmem.PAddr) error {
	a.bookAcquire(c)
	err := a.book.RecordFree(c, addr)
	if err == nil {
		a.book.MaybeGC(c)
	}
	a.bookRelease(c)
	return err
}

// Free returns an extent to the reclaimed list and coalesces it with free
// neighbours. The caller holds Res.
func (a *Allocator) Free(c *pmem.Ctx, addr pmem.PAddr) error {
	v, ok := a.activated[addr]
	if !ok {
		return fmt.Errorf("extent: free of unknown extent %#x", addr)
	}
	a.bookAcquire(c)
	err := a.book.RecordFree(c, addr)
	a.bookRelease(c)
	if err != nil {
		return err
	}
	delete(a.activated, addr)
	a.activatedBytes -= v.Size
	a.insertFree(v, Reclaimed, c.Now)
	a.coalesce(c, v)
	a.bookAcquire(c)
	a.book.MaybeGC(c)
	a.bookRelease(c)
	a.maybeDecay(c)
	return nil
}

// FreeBatch frees a group of extents with their tombstones persisted as
// one batch (a single trailing fence when the bookkeeper supports it).
// Like recovery-time Free calls, the caller serializes access itself;
// a crash mid-batch leaves a prefix of the tombstones persisted, which
// is safe wherever the batch is idempotent (recovery GC re-runs).
func (a *Allocator) FreeBatch(c *pmem.Ctx, addrs []pmem.PAddr) error {
	var vs []*VEH
	for _, addr := range addrs {
		v, ok := a.activated[addr]
		if !ok {
			return fmt.Errorf("extent: free of unknown extent %#x", addr)
		}
		vs = append(vs, v)
	}
	if len(vs) == 0 {
		return nil
	}
	a.bookAcquire(c)
	var err error
	if bb, ok := a.book.(BatchBookkeeper); ok {
		err = bb.RecordFreeBatch(c, addrs)
	} else {
		for _, addr := range addrs {
			if err = a.book.RecordFree(c, addr); err != nil {
				break
			}
		}
	}
	if err == nil {
		a.book.MaybeGC(c)
	}
	a.bookRelease(c)
	if err != nil {
		return err
	}
	for _, v := range vs {
		delete(a.activated, v.Addr)
		a.activatedBytes -= v.Size
		a.insertFree(v, Reclaimed, c.Now)
		a.coalesce(c, v)
	}
	a.maybeDecay(c)
	return nil
}

// AllocSlabBatch carves up to n extents of the given size (aligned to
// their own size) in one Res critical section, appending them to out.
// The extents are activated but unrecorded — exactly the state the arena
// extent cache holds them in; a crash before RecordExtent makes them
// free again at recovery. Fewer than n extents (or none) are returned
// when the heap cannot satisfy the batch.
func (a *Allocator) AllocSlabBatch(c *pmem.Ctx, size uint64, n int, out []pmem.PAddr) []pmem.PAddr {
	a.Res.Acquire(c)
	defer a.Res.Release(c)
	for i := 0; i < n; i++ {
		// Counted as overhead before the carve so the cache-bound extent
		// never spikes the peak (it holds no live data yet).
		a.cacheOverhead.Add(int64(size))
		addr, err := a.AllocDeferRecord(c, size, pmem.PAddr(size), true)
		if err != nil {
			a.cacheOverhead.Add(-int64(size))
			break
		}
		out = append(out, addr)
	}
	return out
}

// AllocLease carves one activated-but-unrecorded, overhead-counted
// extent in a single Res critical section — the shard pools' lease
// primitive. Like cached slab extents, a lease dissolves at recovery;
// only its recorded sub-allocations survive.
func (a *Allocator) AllocLease(c *pmem.Ctx, size uint64, alignTo pmem.PAddr) (pmem.PAddr, error) {
	a.Res.Acquire(c)
	defer a.Res.Release(c)
	a.cacheOverhead.Add(int64(size))
	addr, err := a.AllocDeferRecord(c, size, alignTo, true)
	if err != nil {
		a.cacheOverhead.Add(-int64(size))
		return pmem.Null, err
	}
	return addr, nil
}

// ReleaseUnrecordedBatch returns activated-but-unrecorded extents (cache
// overflow, returned shard leases) to the free lists in one Res critical
// section. No tombstone is written — there is no record to kill.
func (a *Allocator) ReleaseUnrecordedBatch(c *pmem.Ctx, addrs []pmem.PAddr) {
	if len(addrs) == 0 {
		return
	}
	a.Res.Acquire(c)
	defer a.Res.Release(c)
	for _, addr := range addrs {
		a.releaseUnrecorded(c, addr)
	}
	a.maybeDecay(c)
}

// releaseUnrecorded puts one activated extent back on the free lists
// without bookkeeping. Caller holds Res.
func (a *Allocator) releaseUnrecorded(c *pmem.Ctx, addr pmem.PAddr) {
	v, ok := a.activated[addr]
	if !ok {
		return // defensive: double release is a no-op
	}
	delete(a.activated, addr)
	a.activatedBytes -= v.Size
	// Every unrecorded release comes from a cache or a lease, whose
	// bytes were counted as overhead on entry.
	a.cacheOverhead.Add(-int64(v.Size))
	a.insertFree(v, Reclaimed, c.Now)
	a.coalesce(c, v)
}

// coalesce merges v with its free neighbours of the same state.
func (a *Allocator) coalesce(c *pmem.Ctx, v *VEH) {
	for {
		merged := false
		if k, left, ok := a.byAddr.Floor(v.Addr - 1); ok && left.End() == v.Addr && left.State == v.State {
			_ = k
			a.removeFree(left)
			a.removeFree(v)
			left.Size += v.Size
			a.insertFree(left, v.State, maxI64(left.LastFree, v.LastFree))
			v = left
			a.Coalesces++
			merged = true
			c.Charge(pmem.CatSearch, 30)
		}
		if _, right, ok := a.byAddr.Ceiling(v.End()); ok && right.Addr == v.End() && right.State == v.State {
			a.removeFree(right)
			a.removeFree(v)
			v.Size += right.Size
			a.insertFree(v, v.State, maxI64(v.LastFree, right.LastFree))
			a.Coalesces++
			merged = true
			c.Charge(pmem.CatSearch, 30)
		}
		if !merged {
			return
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FreeBytes returns (reclaimed, retained) byte totals for tests and
// space-breakdown experiments.
func (a *Allocator) FreeBytes() (reclaimed, retained uint64) {
	return a.reclaimedBytes, a.retainedBytes
}

// ActivatedBytes returns the bytes of live extents.
func (a *Allocator) ActivatedBytes() uint64 { return a.activatedBytes }

// AddMetaBytes grows the accounted metadata footprint (used by the heap
// to charge WAL/log regions).
func (a *Allocator) AddMetaBytes(n uint64) {
	a.metaBytes += n
	a.notePeak()
}
