package extent

import (
	"sort"

	"nvalloc/internal/pmem"
)

// Decay parameters: every DecayEpochNS of virtual time the allocator
// recomputes the smootherstep threshold TH_decay for the reclaimed and
// retained lists and demotes the oldest free extents above it (the
// paper's Section 2.2, following jemalloc's 50 ms decay interval).
const (
	// DecayEpochNS is the tick interval (50 ms of virtual time).
	DecayEpochNS = 50 * 1000 * 1000
	// DecayWindowNS is the time over which a fully idle list decays to
	// zero allowed bytes.
	DecayWindowNS = 500 * 1000 * 1000
)

// Smootherstep is Ken Perlin's 6t^5-15t^4+10t^3, clamped to [0,1]. The
// decay threshold is base*(1-Smootherstep(elapsed/window)).
func Smootherstep(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	return t * t * t * (t*(t*6-15) + 10)
}

type decayState struct {
	lastTick int64
}

func (d *decayState) init() {
	d.lastTick = 0
}

// maybeDecay runs the decay pass if a full epoch of virtual time has
// passed. Callers hold Res.
func (a *Allocator) maybeDecay(c *pmem.Ctx) {
	if c.Now-a.decay.lastTick < DecayEpochNS {
		return
	}
	a.decay.lastTick = c.Now
	a.DecayTick(c)
}

// DecayTick forces one decay pass. The allowed bytes TH_decay of a free
// list is the sum over its extents of size*(1-Smootherstep(age/window)):
// freshly freed extents contribute their full size, fully aged extents
// contribute nothing. While the list holds more than TH_decay, the
// oldest extents are demoted — reclaimed to retained ("unmap physical"),
// retained to released ("return to OS").
func (a *Allocator) DecayTick(c *pmem.Ctx) {
	now := c.Now
	// limit computes the allowed bytes and, as a side effect, compacts
	// the FIFO: entries whose extents were reactivated or merged since
	// they were queued are dropped, so the queue stays proportional to
	// the live free-extent population instead of growing with the total
	// number of frees.
	limit := func(fifo *[]*VEH, want State) uint64 {
		var allowed float64
		q := *fifo
		kept := q[:0]
		for _, v := range q {
			cur, ok := a.byAddr.Get(v.Addr)
			if !ok || cur != v || v.State != want {
				continue
			}
			kept = append(kept, v)
			age := float64(now-v.LastFree) / float64(DecayWindowNS)
			allowed += float64(v.Size) * (1 - Smootherstep(age))
		}
		*fifo = kept
		return uint64(allowed)
	}

	th := limit(&a.fifoReclaimed, Reclaimed)
	a.drainFIFO(&a.fifoReclaimed, Reclaimed, func(v *VEH) bool {
		if a.reclaimedBytes <= th {
			return false
		}
		a.removeFree(v)
		a.insertFree(v, Retained, now)
		c.Charge(pmem.CatOther, 40) // madvise-equivalent cost
		return true
	})

	th = limit(&a.fifoRetained, Retained)
	a.drainFIFO(&a.fifoRetained, Retained, func(v *VEH) bool {
		if a.retainedBytes <= th {
			return false
		}
		a.removeFree(v)
		a.insertFree(v, Released, now)
		c.Charge(pmem.CatOther, 60) // munmap-equivalent cost
		return true
	})
}

// drainFIFO pops entries from the front of a free-extent FIFO in
// insertion (age) order, skipping stale entries (extents that were
// reactivated or merged since). fn returns false to stop.
func (a *Allocator) drainFIFO(fifo *[]*VEH, want State, fn func(*VEH) bool) {
	q := *fifo
	i := 0
	for ; i < len(q); i++ {
		v := q[i]
		cur, ok := a.byAddr.Get(v.Addr)
		if !ok || cur != v || v.State != want {
			continue // stale entry
		}
		if !fn(v) {
			break
		}
	}
	*fifo = q[i:]
}

// Rebuild reconstructs the allocator's volatile state during recovery:
// the records are the live extents (from the bookkeeper), and every gap
// between them inside [heapBase, break) becomes a reclaimed free extent.
// It returns the VEHs of the live extents in address order.
//
// The record set is validated before it is trusted — each record must be
// page-aligned, inside the heap and non-overlapping — and the stored
// break self-heals: if it is torn or flipped it is rewritten to the
// smallest chunk-aligned value covering every live record.
func Rebuild(dev pmem.Dev, book Bookkeeper, cfg Config, c *pmem.Ctx, records []LiveRecord) (*Allocator, []*VEH, error) {
	a := newAllocator(dev, book, cfg)
	sort.Slice(records, func(i, j int) bool { return records[i].Addr < records[j].Addr })

	check := a.heapBase
	for _, r := range records {
		if r.Addr < a.heapBase || r.Addr%PageSize != 0 {
			return nil, nil, pmem.Corrupt("extent", r.Addr, "live record misaligned or below heap base %#x", a.heapBase)
		}
		if r.Size == 0 || uint64(r.Addr)+r.Size > uint64(cfg.HeapEnd) {
			return nil, nil, pmem.Corrupt("extent", r.Addr, "live record size %d reaches past heap end %#x", r.Size, cfg.HeapEnd)
		}
		if r.Addr < check {
			return nil, nil, pmem.Corrupt("extent", r.Addr, "live record overlaps its predecessor ending at %#x", check)
		}
		check = r.Addr + pmem.PAddr(r.Size)
	}
	minBrk := a.heapBase + pmem.PAddr((uint64(check-a.heapBase)+ChunkSize-1)&^uint64(ChunkSize-1))
	brk := pmem.PAddr(dev.ReadU64(cfg.BreakPtr))
	if brk < minBrk || brk > cfg.HeapEnd || uint64(brk-a.heapBase)%ChunkSize != 0 {
		brk = minBrk
		c.PersistU64(pmem.CatMeta, cfg.BreakPtr, uint64(brk))
		c.Fence()
	}
	res := a.book.DataOffset()
	if res > 0 {
		// Header reservations at the start of every grown chunk are
		// metadata, not free space.
		n := uint64(brk-a.heapBase) / ChunkSize
		a.metaBytes += n * res
	}

	live := make([]*VEH, 0, len(records))
	cursor := a.heapBase
	flushGap := func(from, to pmem.PAddr) {
		for from < to {
			// Carve out bookkeeper reservations chunk by chunk.
			chunkBase := from &^ (ChunkSize - 1)
			dataStart := chunkBase + pmem.PAddr(res)
			if from < dataStart {
				from = dataStart
				continue
			}
			chunkEnd := chunkBase + ChunkSize
			end := to
			if end > chunkEnd {
				end = chunkEnd
			}
			if end > from {
				v := &VEH{Addr: from, Size: uint64(end - from)}
				a.insertFree(v, Reclaimed, 0)
				a.coalesce(c, v)
			}
			from = end
		}
	}
	for _, r := range records {
		if r.Addr > cursor {
			flushGap(cursor, r.Addr)
		}
		v := &VEH{Addr: r.Addr, Size: r.Size, State: Activated, Slab: r.Slab}
		a.activated[r.Addr] = v
		a.activatedBytes += r.Size
		live = append(live, v)
		cursor = v.End()
		c.Charge(pmem.CatSearch, 30)
	}
	if cursor < brk {
		flushGap(cursor, brk)
	}
	a.notePeak()
	return a, live, nil
}

// LiveRecord is a live-extent record handed to Rebuild (mirrors
// blog.Record without importing it, so both bookkeepers can produce it).
type LiveRecord struct {
	Addr pmem.PAddr
	Size uint64
	Slab bool
}
