package extent

import (
	"sync"

	"nvalloc/internal/pmem"
)

// Slab-cache batch bounds: a refill carves between minSlabBatch and
// maxSlabBatch extents per global-lock acquisition, adapting to demand
// (consecutive refills grow the batch, an overflow flush resets it).
const (
	minSlabBatch = 4
	maxSlabBatch = 8
)

// SlabCache is an arena-local cache of equally sized extents (one slab
// footprint each) standing between the arena and the global large
// allocator. It exists to break the hot path's last global serialization
// point: instead of taking Allocator.Res three times per slab
// (AllocDeferRecord + Record + the eventual Free), the arena refills the
// cache in batches — one Res critical section carves minSlabBatch..
// maxSlabBatch extents — and the per-slab record/tombstone traffic runs
// under BookRes alone.
//
// Invariant: every extent in the cache is *activated and unrecorded* —
// its VEH sits in the allocator's activated map (with Slab set, hiding
// it from object walks and GC sweeps) but no bookkeeping record exists.
// After a crash, Rebuild therefore sees the space as free: a cached
// extent can never resurrect stale contents, and the crash-ordering
// argument of AllocDeferRecord (header formatted before record) carries
// over unchanged to the batched path.
type SlabCache struct {
	a    *Allocator
	size uint64

	mu     sync.Mutex
	free   []pmem.PAddr // LIFO: most recently returned extent reused first
	batch  int
	streak int // consecutive refills since the last flush

	hits, refills, flushes, carved uint64
}

// NewSlabCache creates a cache of size-byte extents over a.
func NewSlabCache(a *Allocator, size uint64) *SlabCache {
	return &SlabCache{a: a, size: size, batch: minSlabBatch}
}

// Get pops a cached extent, refilling the cache from the global
// allocator when empty. ok is false only when the heap cannot supply a
// single extent. The returned extent is activated and unrecorded; the
// caller formats it and then persists its record via RecordExtent.
func (sc *SlabCache) Get(c *pmem.Ctx) (pmem.PAddr, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if len(sc.free) == 0 {
		sc.refillLocked(c)
		if len(sc.free) == 0 {
			return pmem.Null, false
		}
	} else {
		sc.hits++
	}
	addr := sc.free[len(sc.free)-1]
	sc.free = sc.free[:len(sc.free)-1]
	// Leaving the cache to become a live slab: no longer overhead.
	sc.a.cacheOverhead.Add(-int64(sc.size))
	return addr, true
}

// Put returns an extent (activated, unrecorded) to the cache. When the
// cache overflows its working set, the oldest extents are handed back to
// the global allocator in one critical section.
func (sc *SlabCache) Put(c *pmem.Ctx, addr pmem.PAddr) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.free = append(sc.free, addr)
	// Back in the cache: idle again. (Extents dropped by the overflow
	// flush are un-counted inside releaseUnrecorded.)
	sc.a.cacheOverhead.Add(int64(sc.size))
	if len(sc.free) > 2*sc.batch {
		keep := sc.batch
		drop := len(sc.free) - keep
		sc.a.ReleaseUnrecordedBatch(c, sc.free[:drop])
		sc.free = append(sc.free[:0], sc.free[drop:]...)
		sc.flushes++
		sc.streak = 0
		sc.batch = minSlabBatch
	}
}

// refillLocked carves a batch of extents under one Res acquisition.
// Caller holds sc.mu.
func (sc *SlabCache) refillLocked(c *pmem.Ctx) {
	sc.free = sc.a.AllocSlabBatch(c, sc.size, sc.batch, sc.free)
	sc.refills++
	sc.carved += uint64(len(sc.free))
	// Demand adaptation: back-to-back refills (no flush in between) mean
	// the arena is churning through slabs — double the batch up to the
	// cap so the global lock is touched even less often.
	sc.streak++
	if sc.streak > 1 && sc.batch < maxSlabBatch {
		sc.batch *= 2
		if sc.batch > maxSlabBatch {
			sc.batch = maxSlabBatch
		}
	}
}

// Flush returns every cached extent to the global allocator (exhaustion
// back-pressure and shutdown).
func (sc *SlabCache) Flush(c *pmem.Ctx) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if len(sc.free) == 0 {
		return
	}
	sc.a.ReleaseUnrecordedBatch(c, sc.free)
	sc.free = sc.free[:0]
	sc.flushes++
	sc.streak = 0
	sc.batch = minSlabBatch
}

// Len returns the number of cached extents.
func (sc *SlabCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.free)
}

// Batch returns the current adaptive batch size.
func (sc *SlabCache) Batch() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.batch
}

// Stats returns (hits, refills, flushes, extents carved).
func (sc *SlabCache) Stats() (hits, refills, flushes, carved uint64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.hits, sc.refills, sc.flushes, sc.carved
}
