package extent

import (
	"math/rand"
	"testing"

	"nvalloc/internal/blog"
	"nvalloc/internal/pmem"
)

const (
	heapBase = pmem.PAddr(4 << 20) // 4 MiB: chunk aligned
	brkPtr   = pmem.PAddr(4096)
	logBase  = pmem.PAddr(8192)
	logSize  = 512 * blog.ChunkSize
)

func newAlloc(t *testing.T, devSize uint64) (*pmem.Device, *Allocator, *pmem.Ctx) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: devSize, Strict: true})
	bk := blog.New(dev.Mem(), logBase, logSize, 6)
	a := New(dev, bk, Config{
		HeapBase: heapBase,
		HeapEnd:  pmem.PAddr(dev.Size()),
		BreakPtr: brkPtr,
	})
	return dev, a, dev.NewCtx()
}

func TestAllocFreeRoundtrip(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	p1, err := a.Alloc(c, 32<<10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(c, 128<<10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 || p1 < heapBase || p2 < heapBase {
		t.Fatalf("bad extents %#x %#x", p1, p2)
	}
	v1, ok := a.Lookup(p1)
	if !ok || v1.Size != 32<<10 {
		t.Fatalf("lookup: %+v %v", v1, ok)
	}
	if err := a.Free(c, p1); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup(p1); ok {
		t.Fatal("freed extent still activated")
	}
	if err := a.Free(c, p1); err == nil {
		t.Fatal("double free must error")
	}
}

func TestSizeRoundingAndAlignment(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	p, err := a.Alloc(c, 100, 0, false) // rounds to one page
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Lookup(p); v.Size != PageSize {
		t.Fatalf("size not page rounded: %d", v.Size)
	}
	// Slab extents need 64 KiB alignment.
	s, err := a.Alloc(c, 64<<10, 64<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if s%(64<<10) != 0 {
		t.Fatalf("slab extent %#x not aligned", s)
	}
	if v, _ := a.Lookup(s); !v.Slab {
		t.Fatal("slab flag lost")
	}
}

func TestBestFitPrefersSmallest(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	// Create free extents of 32K, 64K, 128K via alloc+free.
	var ptrs []pmem.PAddr
	for _, sz := range []uint64{32 << 10, 64 << 10, 128 << 10, 1 << 20} {
		p, err := a.Alloc(c, sz, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free the 64K and 128K ones; they are not adjacent (32K & 1M stay
	// live between them).
	if err := a.Free(c, ptrs[1]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(c, ptrs[2]); err != nil {
		t.Fatal(err)
	}
	// A 48K request must reuse the 64K hole (best fit), not the 128K one.
	p, err := a.Alloc(c, 48<<10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if p != ptrs[1] {
		t.Fatalf("best fit picked %#x, want %#x", p, ptrs[1])
	}
}

func TestSplitProducesTailRemainder(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	p, err := a.Alloc(c, 128<<10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(c, p); err != nil {
		t.Fatal(err)
	}
	splits := a.Splits
	q, err := a.Alloc(c, 32<<10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("should reuse freed extent head: %#x vs %#x", q, p)
	}
	if a.Splits <= splits {
		t.Fatal("no split recorded")
	}
}

func TestCoalesceNeighbors(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	p1, _ := a.Alloc(c, 64<<10, 0, false)
	p2, _ := a.Alloc(c, 64<<10, 0, false)
	p3, _ := a.Alloc(c, 64<<10, 0, false)
	if p2 != p1+64<<10 || p3 != p2+64<<10 {
		t.Skipf("extents not adjacent (%#x %#x %#x)", p1, p2, p3)
	}
	for _, p := range []pmem.PAddr{p1, p3, p2} {
		if err := a.Free(c, p); err != nil {
			t.Fatal(err)
		}
	}
	if a.Coalesces == 0 {
		t.Fatal("no coalescing happened")
	}
	// The merged hole must satisfy one big allocation without growing.
	grows := a.Grows
	if _, err := a.Alloc(c, 192<<10, 0, false); err != nil {
		t.Fatal(err)
	}
	if a.Grows != grows {
		t.Fatal("coalesced hole not reused")
	}
}

func TestHeapExhaustion(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 16 << 20})
	bk := blog.New(dev.Mem(), logBase, logSize, 6)
	a := New(dev, bk, Config{HeapBase: heapBase, HeapEnd: 12 << 20, BreakPtr: brkPtr})
	c := dev.NewCtx()
	if _, err := a.Alloc(c, 4<<20, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(c, 8<<20, 0, false); err == nil {
		t.Fatal("expected exhaustion")
	}
	if _, err := a.Alloc(c, 0, 0, false); err == nil {
		t.Fatal("zero-size alloc must error")
	}
}

func TestUsedAndPeakAccounting(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	u0 := a.Used()
	p, _ := a.Alloc(c, 1<<20, 0, false)
	if a.Used() <= u0 {
		t.Fatal("Used must grow on alloc")
	}
	peak := a.Peak()
	if err := a.Free(c, p); err != nil {
		t.Fatal(err)
	}
	if a.Peak() != peak {
		t.Fatal("peak must not drop on free")
	}
	a.ResetPeak()
	if a.Peak() != a.Used() {
		t.Fatal("ResetPeak must snap to current usage")
	}
}

func TestDecayDemotesIdleExtents(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	p, _ := a.Alloc(c, 1<<20, 0, false)
	if err := a.Free(c, p); err != nil {
		t.Fatal(err)
	}
	rec0, ret0 := a.FreeBytes()
	if rec0 == 0 {
		t.Fatal("freed bytes must be reclaimed")
	}
	// Let a full decay window of virtual time pass.
	c.Charge(pmem.CatOther, DecayWindowNS+DecayEpochNS)
	a.DecayTick(c)
	rec1, ret1 := a.FreeBytes()
	if rec1 >= rec0 {
		t.Fatalf("decay did not demote reclaimed bytes: %d -> %d", rec0, rec1)
	}
	if ret1 <= ret0 {
		t.Fatalf("retained bytes did not grow: %d -> %d", ret0, ret1)
	}
	// And Used drops, because retained memory is unmapped.
	// (metaBytes unchanged, activated unchanged.)
	if a.Used() > a.metaBytes+a.activatedBytes+rec1 {
		t.Fatal("used accounting inconsistent")
	}
	// A second full window releases retained memory to the OS.
	c.Charge(pmem.CatOther, DecayWindowNS+DecayEpochNS)
	a.DecayTick(c)
	if _, ret2 := a.FreeBytes(); ret2 >= ret1 && ret1 > 0 {
		t.Fatalf("retained bytes not released: %d -> %d", ret1, ret2)
	}
}

func TestRetainedAndReleasedAreReusable(t *testing.T) {
	_, a, c := newAlloc(t, 64<<20)
	p, _ := a.Alloc(c, 1<<20, 0, false)
	if err := a.Free(c, p); err != nil {
		t.Fatal(err)
	}
	c.Charge(pmem.CatOther, 2*DecayWindowNS)
	a.DecayTick(c)
	c.Charge(pmem.CatOther, 2*DecayWindowNS)
	a.DecayTick(c)
	grows := a.Grows
	// Everything is retained/released now, but allocation must still
	// succeed without growing the heap (remap).
	q, err := a.Alloc(c, 1<<20, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Grows != grows {
		t.Fatalf("allocation grew the heap instead of reusing unmapped extents (%#x)", q)
	}
}

func TestSmootherstep(t *testing.T) {
	if Smootherstep(0) != 0 || Smootherstep(1) != 1 {
		t.Fatal("endpoints wrong")
	}
	if Smootherstep(-5) != 0 || Smootherstep(5) != 1 {
		t.Fatal("clamping wrong")
	}
	if s := Smootherstep(0.5); s < 0.49 || s > 0.51 {
		t.Fatalf("midpoint %f", s)
	}
	// Monotonicity.
	prev := 0.0
	for i := 0; i <= 100; i++ {
		v := Smootherstep(float64(i) / 100)
		if v < prev {
			t.Fatal("not monotone")
		}
		prev = v
	}
}

func TestRebuildFromRecords(t *testing.T) {
	dev, a, c := newAlloc(t, 64<<20)
	type ext struct {
		addr pmem.PAddr
		size uint64
	}
	var live []ext
	var all []pmem.PAddr
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		sz := uint64(rng.Intn(64)+4) << 12
		p, err := a.Alloc(c, sz, 0, rng.Intn(5) == 0)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, p)
		live = append(live, ext{p, sz})
	}
	// Free a third.
	for i := 0; i < len(all); i += 3 {
		if err := a.Free(c, all[i]); err != nil {
			t.Fatal(err)
		}
	}
	var want []ext
	for i, e := range live {
		if i%3 != 0 {
			want = append(want, e)
		}
	}
	usedBefore := a.Used()
	dev.Crash()

	// Recover the bookkeeping log and rebuild.
	bk, recs, err := blog.Open(dev, logBase, logSize, 6)
	if err != nil {
		t.Fatal(err)
	}
	lrs := make([]LiveRecord, len(recs))
	for i, r := range recs {
		lrs[i] = LiveRecord{Addr: r.Addr, Size: r.Size, Slab: r.Slab}
	}
	c2 := dev.NewCtx()
	a2, vehs, err := Rebuild(dev, bk, Config{
		HeapBase: heapBase,
		HeapEnd:  pmem.PAddr(dev.Size()),
		BreakPtr: brkPtr,
	}, c2, lrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vehs) != len(want) {
		t.Fatalf("rebuilt %d live extents, want %d", len(vehs), len(want))
	}
	for _, e := range want {
		v, ok := a2.Lookup(e.addr)
		if !ok || v.Size != e.size {
			t.Fatalf("extent %#x missing or wrong size after rebuild", e.addr)
		}
	}
	// Gap reconstruction: usage should match (within the reclaimed-vs-
	// retained accounting difference, which recovery folds into
	// reclaimed).
	if a2.Used() < usedBefore/2 {
		t.Fatalf("rebuild lost free-space accounting: %d vs %d", a2.Used(), usedBefore)
	}
	// The rebuilt allocator must be able to allocate from recovered gaps.
	if _, err := a2.Alloc(c2, 32<<10, 0, false); err != nil {
		t.Fatal(err)
	}
	// And freeing a recovered extent works.
	if err := a2.Free(c2, want[0].addr); err != nil {
		t.Fatal(err)
	}
}

func TestInPlaceBookkeeper(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20, Strict: true})
	bk := NewInPlace(dev, heapBase, brkPtr)
	a := New(dev, bk, Config{HeapBase: heapBase, HeapEnd: pmem.PAddr(dev.Size()), BreakPtr: brkPtr})
	c := dev.NewCtx()
	p1, err := a.Alloc(c, 64<<10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(c, 32<<10, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(c, p1); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	recs := bk.Recover(dev.NewCtx())
	if len(recs) != 1 || recs[0].Addr != p2 || !recs[0].Slab || recs[0].Size != 32<<10 {
		t.Fatalf("in-place recovery wrong: %+v", recs)
	}
	// The first data page of a chunk starts after the header table.
	if p1 < heapBase+HeaderBytes {
		t.Fatalf("extent %#x inside header table", p1)
	}
}

func TestInPlaceWritesAreRandomFlushes(t *testing.T) {
	// Scattered allocs and frees with in-place headers must produce
	// random metadata flushes; the log produces (mostly) sequential ones.
	run := func(useLog bool) (randRatio float64) {
		dev := pmem.New(pmem.Config{Size: 256 << 20})
		var bk Bookkeeper
		if useLog {
			bk = blog.New(dev.Mem(), logBase, logSize, 6)
		} else {
			bk = NewInPlace(dev, heapBase, brkPtr)
		}
		a := New(dev, bk, Config{HeapBase: heapBase, HeapEnd: pmem.PAddr(dev.Size()), BreakPtr: brkPtr})
		c := dev.NewCtx()
		rng := rand.New(rand.NewSource(5))
		var held []pmem.PAddr
		for i := 0; i < 2000; i++ {
			if len(held) == 0 || rng.Intn(100) < 55 {
				p, err := a.Alloc(c, uint64(rng.Intn(120)+8)<<12, 0, false)
				if err != nil {
					break
				}
				held = append(held, p)
			} else {
				i := rng.Intn(len(held))
				if err := a.Free(c, held[i]); err != nil {
					break
				}
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
			}
		}
		s := c.Local()
		total := s.RandFlushes + s.SeqFlushes
		if total == 0 {
			return 0
		}
		return float64(s.RandFlushes) / float64(total)
	}
	inplace, logged := run(false), run(true)
	if inplace <= logged {
		t.Fatalf("in-place should be more random than logged: %f vs %f", inplace, logged)
	}
}

func TestFirstFitSelection(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	bk := blog.New(dev.Mem(), logBase, logSize, 6)
	a := New(dev, bk, Config{HeapBase: heapBase, HeapEnd: pmem.PAddr(dev.Size()), BreakPtr: brkPtr})
	a.FirstFit = true
	c := dev.NewCtx()
	var ptrs []pmem.PAddr
	for _, sz := range []uint64{128 << 10, 32 << 10, 64 << 10, 1 << 20} {
		p, err := a.Alloc(c, sz, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free the 128K (lowest address) and the 64K holes.
	if err := a.Free(c, ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(c, ptrs[2]); err != nil {
		t.Fatal(err)
	}
	// First fit must take the lowest-address hole that fits, even though
	// the 64K hole is the better (best) fit for a 48K request.
	p, err := a.Alloc(c, 48<<10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if p != ptrs[0] {
		t.Fatalf("first fit picked %#x, want lowest hole %#x", p, ptrs[0])
	}
}
