package extent

import (
	"fmt"

	"nvalloc/internal/pmem"
)

// InPlace is the classic bookkeeping scheme the paper's baselines (and
// the "Base" ablation) use: every 4 MiB chunk begins with a header table
// of one 8-byte slot per page, updated in place on every large allocation
// and free. Because the best-fit extent can live anywhere in the heap,
// these header updates are exactly the small random persistent-memory
// writes Figure 2 profiles.
type InPlace struct {
	dev      pmem.Dev
	heapBase pmem.PAddr
	brkAddr  pmem.PAddr
}

// HeaderBytes is the per-chunk header-table reservation: 1024 pages per
// 4 MiB chunk, 8 bytes per slot, 8 KiB total (the first two pages).
const HeaderBytes = (ChunkSize / PageSize) * 8

// In-place slot encoding (8 B): bit 63 live, bit 62 slab, bits 0..31 size.
const (
	ipLive = 1 << 63
	ipSlab = 1 << 62
)

// NewInPlace creates the in-place bookkeeper for a heap whose chunks are
// carved from heapBase and whose break lives at brkAddr.
func NewInPlace(dev pmem.Dev, heapBase, brkAddr pmem.PAddr) *InPlace {
	return &InPlace{dev: dev, heapBase: heapBase, brkAddr: brkAddr}
}

// DataOffset reserves the header table at the start of every chunk.
func (b *InPlace) DataOffset() uint64 { return HeaderBytes }

func (b *InPlace) slot(addr pmem.PAddr) (pmem.PAddr, error) {
	if addr < b.heapBase {
		return 0, fmt.Errorf("inplace: address %#x below heap", addr)
	}
	off := uint64(addr - b.heapBase)
	chunk := off / ChunkSize
	page := (off % ChunkSize) / PageSize
	if page < HeaderBytes/PageSize {
		return 0, fmt.Errorf("inplace: address %#x inside a header table", addr)
	}
	return b.heapBase + pmem.PAddr(chunk*ChunkSize+page*8), nil
}

// RecordAlloc writes the extent's header slot in place (one random
// persistent write).
func (b *InPlace) RecordAlloc(c *pmem.Ctx, addr pmem.PAddr, size uint64, slab bool) error {
	s, err := b.slot(addr)
	if err != nil {
		return err
	}
	v := uint64(ipLive) | size
	if slab {
		v |= ipSlab
	}
	c.PersistU64(pmem.CatMeta, s, v)
	c.Fence()
	return nil
}

// RecordFree clears the extent's header slot in place.
func (b *InPlace) RecordFree(c *pmem.Ctx, addr pmem.PAddr) error {
	s, err := b.slot(addr)
	if err != nil {
		return err
	}
	c.PersistU64(pmem.CatMeta, s, 0)
	c.Fence()
	return nil
}

// RecordAllocBatch writes a group of header slots with one trailing
// fence. Slots are flushed individually, so a crash mid-batch persists
// an independently valid prefix (see BatchBookkeeper).
func (b *InPlace) RecordAllocBatch(c *pmem.Ctx, recs []LiveRecord) error {
	if len(recs) == 0 {
		return nil
	}
	for _, r := range recs {
		s, err := b.slot(r.Addr)
		if err != nil {
			c.Fence()
			return err
		}
		v := uint64(ipLive) | r.Size
		if r.Slab {
			v |= ipSlab
		}
		c.PersistU64(pmem.CatMeta, s, v)
	}
	c.Fence()
	return nil
}

// RecordFreeBatch clears a group of header slots with one trailing
// fence.
func (b *InPlace) RecordFreeBatch(c *pmem.Ctx, addrs []pmem.PAddr) error {
	if len(addrs) == 0 {
		return nil
	}
	for _, addr := range addrs {
		s, err := b.slot(addr)
		if err != nil {
			c.Fence()
			return err
		}
		c.PersistU64(pmem.CatMeta, s, 0)
	}
	c.Fence()
	return nil
}

// MaybeGC is a no-op: in-place headers need no compaction.
func (b *InPlace) MaybeGC(*pmem.Ctx) {}

// Recover scans every chunk header table in the heap region and returns
// the live extents. The scan deliberately ignores the stored break: a
// torn or flipped break word must neither walk the scan out of bounds
// nor hide live chunks beyond a corrupted (shrunken) value. Chunks that
// were never grown read as all-zero header tables and contribute
// nothing; Rebuild re-validates and heals the stored break afterwards.
func (b *InPlace) Recover(c *pmem.Ctx) []LiveRecord {
	brk := pmem.PAddr(b.dev.Size())
	if brk < b.heapBase {
		brk = b.heapBase
	}
	brk -= (brk - b.heapBase) % ChunkSize
	var out []LiveRecord
	for chunk := b.heapBase; chunk < brk; chunk += ChunkSize {
		for page := HeaderBytes / PageSize; page < ChunkSize/PageSize; page++ {
			raw := b.dev.ReadU64(chunk + pmem.PAddr(page*8))
			c.Charge(pmem.CatSearch, 2)
			if raw&ipLive == 0 {
				continue
			}
			out = append(out, LiveRecord{
				Addr: chunk + pmem.PAddr(page*PageSize),
				Size: raw &^ (ipLive | ipSlab),
				Slab: raw&ipSlab != 0,
			})
		}
	}
	return out
}
