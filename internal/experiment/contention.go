package experiment

import (
	"fmt"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/workload"
)

func init() {
	register("contention", contention)
}

// contention reports the per-resource lock-load breakdown — virtual time
// spent inside each lock's critical sections, time spent waiting for it,
// and acquisition counts — for NVAlloc-LOG with and without the arena
// extent caches and shard pools, at the sweep's highest thread count.
// Threadtest stresses the slab-refill path (the batched-carve win);
// Larson-large stresses direct large allocations (the shard-pool win).
func contention(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	threads := cfg.Threads[len(cfg.Threads)-1]
	configs := []string{"NVAlloc-LOG", "NVAlloc-LOG nocache"}
	benches := []struct {
		name string
		run  func(h alloc.Heap) workload.Result
	}{
		{"Threadtest", func(h alloc.Heap) workload.Result {
			return workload.Threadtest(h, threads, cfg.ops(10), 1000, 64)
		}},
		{"Larson-large", func(h alloc.Heap) workload.Result {
			return workload.Larson(h, threads, 24, cfg.ops(1500), 32<<10, 512<<10)
		}},
	}

	type cell struct {
		res    []core.ResourceLoad
		slabs  uint64
		hits   uint64
		carved uint64
		mops   float64
	}
	cells := grid(cfg, len(benches), len(configs), func(bi, ci int) cell {
		h, err := OpenHeap(configs[ci], cfg)
		if err != nil {
			panic(err)
		}
		r := benches[bi].run(h)
		ch := h.(*core.Heap)
		hits, _, _, carved := ch.CacheStats()
		return cell{
			res:    ch.Contention(),
			slabs:  ch.SlabCreates(),
			hits:   hits,
			carved: carved,
			mops:   r.MopsPerSec(),
		}
	})

	breakdown := &Table{
		ID:      "contention",
		Title:   fmt.Sprintf("Per-resource lock load, %d threads (virtual time)", threads),
		Columns: []string{"benchmark", "config", "resource", "load_us", "wait_us", "acquires"},
		CSV:     map[string][]string{},
	}
	summary := &Table{
		ID:    "contention",
		Title: fmt.Sprintf("Extent-layer contention summary, %d threads", threads),
		Columns: []string{"benchmark", "config", "large_wait_us", "large_acquires",
			"book_wait_us", "book_shards", "book_max_shard_us",
			"slabs", "acq_per_slab", "cache_hits", "Mops/s"},
	}
	// The first eight columns keep the PR 3 layout so older parsers of
	// contention_summary.csv still work; the sharded-book columns append.
	csv := []string{"bench,config,large_wait_ns,large_acquires,book_wait_ns,slabs,acq_per_slab,mops,book_shards,book_max_shard_wait_ns"}
	// Per-shard bookkeeping wait: one row per (bench, config, shard).
	bookCSV := []string{"bench,config,shard,wait_ns,load_ns,acquires"}
	for bi, b := range benches {
		for ci, name := range configs {
			c := cells[bi][ci]
			var large, book core.ResourceLoad
			var bookShards []core.ResourceLoad
			var shardWait, arenaWait int64
			var shardAcq, arenaAcq uint64
			for _, r := range c.res {
				switch {
				case r.Name == "large":
					large = r
				case r.Name == "book":
					book = r
				case len(r.Name) > 4 && r.Name[:4] == "book":
					// Per-shard bookkeeping-log resources ("book0"...).
					bookShards = append(bookShards, r)
				case len(r.Name) > 5 && r.Name[:5] == "shard":
					shardWait += r.WaitNS
					shardAcq += r.Acquires
				case len(r.Name) > 5 && r.Name[:5] == "arena":
					arenaWait += r.WaitNS
					arenaAcq += r.Acquires
				}
				breakdown.Rows = append(breakdown.Rows, []string{
					b.name, name, r.Name, usec(r.LoadNS), usec(r.WaitNS), fmt.Sprint(r.Acquires),
				})
			}
			breakdown.Rows = append(breakdown.Rows, []string{
				b.name, name, "shards(sum)", "-", usec(shardWait), fmt.Sprint(shardAcq),
			})
			breakdown.Rows = append(breakdown.Rows, []string{
				b.name, name, "arenas(sum)", "-", usec(arenaWait), fmt.Sprint(arenaAcq),
			})
			var maxBookWait int64
			for _, r := range bookShards {
				if r.WaitNS > maxBookWait {
					maxBookWait = r.WaitNS
				}
				bookCSV = append(bookCSV, fmt.Sprintf("%s,%s,%s,%d,%d,%d",
					b.name, name, r.Name, r.WaitNS, r.LoadNS, r.Acquires))
			}
			acqPerSlab := 0.0
			if c.slabs > 0 {
				acqPerSlab = float64(large.Acquires) / float64(c.slabs)
			}
			summary.Rows = append(summary.Rows, []string{
				b.name, name, usec(large.WaitNS), fmt.Sprint(large.Acquires),
				usec(book.WaitNS), fmt.Sprint(len(bookShards)), usec(maxBookWait),
				fmt.Sprint(c.slabs), f2(acqPerSlab),
				fmt.Sprint(c.hits), f2(c.mops),
			})
			csv = append(csv, fmt.Sprintf("%s,%s,%d,%d,%d,%d,%.3f,%.3f,%d,%d",
				b.name, name, large.WaitNS, large.Acquires, book.WaitNS,
				c.slabs, acqPerSlab, c.mops, len(bookShards), maxBookWait))
		}
	}
	breakdown.CSV["contention_summary"] = csv
	breakdown.CSV["contention_bookshards"] = bookCSV
	return []*Table{summary, breakdown}
}
