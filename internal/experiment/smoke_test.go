package experiment

import (
	"bytes"
	"testing"
)

// TestEveryExperimentRunsAtMicroScale executes every registered runner at
// a minimal configuration and validates the produced tables, guarding
// `nvbench -exp all` end to end.
func TestEveryExperimentRunsAtMicroScale(t *testing.T) {
	micro := Config{Threads: []int{1}, Scale: 0.02, DeviceBytes: 256 << 20}
	for _, id := range Names() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables := Experiments[id](micro)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if tab.ID == "" || tab.Title == "" {
					t.Fatalf("table missing metadata: %+v", tab)
				}
				if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Fatalf("table %s has no data", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("table %s: row width %d != %d columns", tab.Title, len(row), len(tab.Columns))
					}
					for _, cell := range row {
						if cell == "" {
							t.Fatalf("table %s has an empty cell", tab.Title)
						}
					}
				}
				var buf bytes.Buffer
				tab.Print(&buf)
				if buf.Len() == 0 {
					t.Fatal("print produced nothing")
				}
			}
		})
	}
}
