package experiment

import (
	"fmt"

	"nvalloc/internal/pmem"
)

func init() {
	register("hotpath", runHotpath)
}

// runHotpath produces the hot-path latency-breakdown table: virtual-time
// cost attribution per small malloc and per small free, for each NVAlloc
// variant, split into the phases of the fast path — search/reserve
// (CatSearch), resource wait (LockWaitNS), WAL-entry persistence
// (CatWAL), bitmap/metadata commit (CatMeta), fences (Fences x FenceNS),
// media-bank queueing (BankWaitNS), and everything else (CatOther minus
// the fence share). The numbers come from one recorded steady-state run
// per variant — tcaches warmed first, then N mallocs and N frees with
// the thread context's stats snapshotted between phases — so they are
// deterministic virtual time: the table is bit-stable across runs and a
// change in any cell localizes which phase a hot-path PR moved. This is
// the "where do the next nanoseconds live" map: fence and WAL cells
// bound what further fence scheduling can save, the search cell bounds
// what better fit logic can save.
func runHotpath(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	n := cfg.ops(20000)
	if n < 64 {
		n = 64
	}
	variants := []string{"NVAlloc-LOG", "NVAlloc-GC", "NVAlloc-IC"}

	t := &Table{
		ID: "hotpath",
		Title: fmt.Sprintf("hot-path latency breakdown, virtual ns/op over %d steady-state 64 B ops "+
			"(warmed tcaches, single thread)", n),
		Columns: []string{"allocator", "op", "search", "lock_wait", "wal", "bitmap",
			"fence", "bank_wait", "other", "total"},
	}

	type phase struct{ search, lock, wal, bitmap, fence, bank, other, total float64 }
	diff := func(a, b pmem.Stats) phase {
		per := 1.0 / float64(n)
		fences := float64(b.Fences-a.Fences) * pmem.FenceNS
		p := phase{
			search: float64(b.CatNS[pmem.CatSearch]-a.CatNS[pmem.CatSearch]) * per,
			lock:   float64(b.LockWaitNS-a.LockWaitNS) * per,
			wal:    float64(b.CatNS[pmem.CatWAL]-a.CatNS[pmem.CatWAL]) * per,
			bitmap: float64(b.CatNS[pmem.CatMeta]-a.CatNS[pmem.CatMeta]) * per,
			fence:  fences * per,
			bank:   float64(b.BankWaitNS-a.BankWaitNS) * per,
			other:  (float64(b.CatNS[pmem.CatOther]-a.CatNS[pmem.CatOther]) - fences) * per,
		}
		p.total = p.search + p.lock + p.wal + p.bitmap + p.fence + p.bank + p.other
		return p
	}
	row := func(name, op string, p phase) []string {
		f := func(v float64) string { return fmt.Sprintf("%.1f", v) }
		return []string{name, op, f(p.search), f(p.lock), f(p.wal), f(p.bitmap),
			f(p.fence), f(p.bank), f(p.other), f(p.total)}
	}

	phases := make([][2]phase, len(variants))
	jobs := make([]func(), len(variants))
	errs := make([]error, len(variants))
	for i := range variants {
		i := i
		jobs[i] = func() {
			h, err := OpenHeap(variants[i], cfg)
			if err != nil {
				errs[i] = err
				return
			}
			defer h.Close()
			th := h.NewThread()
			defer th.Close()
			ctx := th.Ctx()

			// Warm the tcache and slab freelists so the measured window is
			// the steady state, not cold formatting.
			warm := func(k int) {
				for j := 0; j < k; j++ {
					p, err := th.Malloc(64)
					if err != nil {
						errs[i] = err
						return
					}
					if err := th.Free(p); err != nil {
						errs[i] = err
						return
					}
				}
			}
			warm(n / 4)
			if errs[i] != nil {
				return
			}

			addrs := make([]pmem.PAddr, 0, n)
			base := ctx.Local()
			for j := 0; j < n; j++ {
				p, err := th.Malloc(64)
				if err != nil {
					errs[i] = err
					return
				}
				addrs = append(addrs, p)
			}
			mid := ctx.Local()
			for _, p := range addrs {
				if err := th.Free(p); err != nil {
					errs[i] = err
					return
				}
			}
			end := ctx.Local()
			phases[i] = [2]phase{diff(base, mid), diff(mid, end)}
		}
	}
	runJobs(cfg, jobs)

	for i, name := range variants {
		if errs[i] != nil {
			t.Rows = append(t.Rows, []string{name, "error: " + errs[i].Error(),
				"", "", "", "", "", "", "", ""})
			continue
		}
		t.Rows = append(t.Rows, row(name, "malloc", phases[i][0]))
		t.Rows = append(t.Rows, row(name, "free", phases[i][1]))
	}
	return []*Table{t}
}
