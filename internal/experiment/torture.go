package experiment

import (
	"fmt"

	"nvalloc/internal/torture"
)

func init() {
	register("torture", runTorture)
}

// runTorture sweeps deterministic fault plans (clean cuts, torn 64 B
// lines, media bit flips) across every allocator and tallies the
// outcomes against the fault-model contract: cuts must recover, flips
// must recover or be detected, nothing may panic or violate a heap
// invariant.
func runTorture(cfg Config) []*Table {
	plansPer := cfg.ops(26)
	t := &Table{
		ID:      "torture",
		Title:   fmt.Sprintf("fault-injection sweep (%d plans per allocator)", plansPer),
		Columns: []string{"allocator", "plans", "recovered", "detected", "violated", "panicked"},
	}
	for _, tg := range torture.Targets() {
		plans := torture.Plans(plansPer, 0x7047557265+uint64(len(tg.Name)))
		var counts [4]int
		for _, p := range plans {
			res := torture.Run(tg, p)
			counts[res.Outcome]++
		}
		t.Rows = append(t.Rows, []string{
			tg.Name,
			fmt.Sprint(len(plans)),
			fmt.Sprint(counts[torture.Recovered]),
			fmt.Sprint(counts[torture.Detected]),
			fmt.Sprint(counts[torture.Violated]),
			fmt.Sprint(counts[torture.Panicked]),
		})
	}
	return []*Table{t}
}
