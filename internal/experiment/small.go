package experiment

import (
	"fmt"

	"nvalloc/internal/alloc"
	"nvalloc/internal/workload"
)

// smallBenches are the four small-allocation benchmarks of Figures 1(a),
// 9, 10 and 20, with per-benchmark base operation counts.
func smallBenches(cfg Config) []struct {
	name string
	run  func(h alloc.Heap, threads int) workload.Result
} {
	return []struct {
		name string
		run  func(h alloc.Heap, threads int) workload.Result
	}{
		{"Threadtest", func(h alloc.Heap, t int) workload.Result {
			return workload.Threadtest(h, t, cfg.ops(10), 1000, 64)
		}},
		{"Prod-con", func(h alloc.Heap, t int) workload.Result {
			return workload.ProdCon(h, t, cfg.ops(10000), 64)
		}},
		{"Shbench", func(h alloc.Heap, t int) workload.Result {
			return workload.Shbench(h, t, cfg.ops(1000))
		}},
		{"Larson-small", func(h alloc.Heap, t int) workload.Result {
			return workload.Larson(h, t, 256, cfg.ops(10000), 64, 256)
		}},
	}
}

func init() {
	register("fig1a", fig1a)
	register("fig9", func(cfg Config) []*Table { return smallPerf(cfg, "fig9", StrongAllocators) })
	register("fig10", func(cfg Config) []*Table { return smallPerf(cfg, "fig10", WeakAllocators) })
	register("fig11", fig11)
	register("fig20", fig20)
}

// fig1a reproduces Figure 1(a): the share of allocator-induced flushes
// that are cache line reflushes for the WAL/bitmap-based allocators.
func fig1a(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig1a",
		Title:   "Ratio of cache line reflushes vs regular flushes (1 thread)",
		Columns: []string{"benchmark", "allocator", "reflush%", "flush%"},
	}
	benches := smallBenches(cfg)
	names := []string{"PMDK", "nvm_malloc", "PAllocator"}
	ratios := grid(cfg, len(benches), len(names), func(bi, ni int) float64 {
		h, err := OpenHeap(names[ni], cfg)
		if err != nil {
			panic(err)
		}
		r := benches[bi].run(h, 1)
		return r.Stats.ReflushRatio()
	})
	for bi, b := range benches {
		for ni, name := range names {
			ratio := ratios[bi][ni]
			t.Rows = append(t.Rows, []string{b.name, name, pct(ratio), pct(1 - ratio)})
		}
	}
	return []*Table{t}
}

// smallPerf reproduces Figures 9/10: small-allocation throughput across
// thread counts for the given allocator set.
func smallPerf(cfg Config, id string, allocators []string) []*Table {
	cfg = cfg.withDefaults()
	benches := smallBenches(cfg)
	// One flat cell grid across benchmarks × thread counts × allocators:
	// a single worker-pool dispatch with no barrier between benchmarks.
	nt, na := len(cfg.Threads), len(allocators)
	mops := grid(cfg, len(benches)*nt, na, func(r, ai int) float64 {
		bi, ti := r/nt, r%nt
		h, err := OpenHeap(allocators[ai], cfg)
		if err != nil {
			panic(err)
		}
		return benches[bi].run(h, cfg.Threads[ti]).MopsPerSec()
	})
	var tables []*Table
	for bi, b := range benches {
		t := &Table{
			ID:      id,
			Title:   fmt.Sprintf("%s small allocations, Mops/s (virtual time)", b.name),
			Columns: append([]string{"threads"}, allocators...),
		}
		for ti, th := range cfg.Threads {
			row := []string{fmt.Sprint(th)}
			for ai := range allocators {
				row = append(row, f2(mops[bi*nt+ti][ai]))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// fig11 reproduces Figure 11: the execution-time breakdown (FlushMeta,
// FlushWAL, Search, Other) for the Base / +Interleaved / +Log / full
// NVAlloc-LOG ablations at 8 threads.
func fig11(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	versions := []string{"Base", "Base+Interleaved", "Base+Log", "NVAlloc-LOG"}
	runs := []struct {
		bench string
		run   func(h alloc.Heap) workload.Result
	}{
		{"Threadtest", func(h alloc.Heap) workload.Result {
			return workload.Threadtest(h, 8, cfg.ops(10), 1000, 64)
		}},
		{"Larson-small", func(h alloc.Heap) workload.Result {
			return workload.Larson(h, 8, 256, cfg.ops(10000), 64, 256)
		}},
		{"DBMS-test", func(h alloc.Heap) workload.Result {
			return workload.DBMStest(h, 8, cfg.ops(5), cfg.ops(100))
		}},
	}
	stats := grid(cfg, len(runs), len(versions), func(ri, vi int) workload.Result {
		h, err := OpenHeap(versions[vi], cfg)
		if err != nil {
			panic(err)
		}
		return runs[ri].run(h)
	})
	var tables []*Table
	for ri, r := range runs {
		t := &Table{
			ID:      "fig11",
			Title:   fmt.Sprintf("%s execution-time breakdown, 8 threads (ms of virtual work)", r.bench),
			Columns: []string{"version", "FlushMeta", "FlushWAL", "Search", "Other", "total", "vsBase"},
		}
		// vsBase is relative to the "Base" row (versions[0]), computed
		// after all cells finish so cell order stays free.
		baseTotal := stats[ri][0].Stats.TotalNS()
		for vi, v := range versions {
			s := stats[ri][vi].Stats
			total := s.TotalNS()
			rel := "1.00"
			if baseTotal > 0 {
				rel = f2(float64(total) / float64(baseTotal))
			}
			t.Rows = append(t.Rows, []string{
				v,
				msec(s.CatNS[0]), msec(s.CatNS[1]), msec(s.CatNS[2]), msec(s.CatNS[3]),
				msec(total), rel,
			})
		}
		tables = append(tables, t)
	}
	return tables
}

// fig20 reproduces Figure 20: small allocations on the emulated eADR
// platform (flushes free, interleaving disabled).
func fig20(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.Mode = 1 // pmem.ModeEADR
	tables := smallPerf(cfg, "fig20", StrongAllocators)
	for _, t := range tables {
		t.Title = "eADR: " + t.Title
	}
	return tables
}
