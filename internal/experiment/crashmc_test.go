package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashMCConcTableShape checks the concurrent-family table the CI
// baseline enforces: every NVAlloc target × family row must report real
// conflicts, executed variant schedules, >= 50% DPOR pruning, and zero
// violations. Conflict and pruning numbers are recording-derived, so the
// scaled-down run asserts the same floors as CI's full enumeration.
func TestCrashMCConcTableShape(t *testing.T) {
	tabs := runCrashMC(Config{Threads: []int{1}, Scale: 0.05, DeviceBytes: 256 << 20}.withDefaults())
	if len(tabs) != 5 {
		t.Fatalf("runCrashMC produced %d tables, want 5", len(tabs))
	}
	conc := tabs[3]
	if conc.ID != "crashmc-concurrent" {
		t.Fatalf("fourth table is %q", conc.ID)
	}
	wantRows := len(concTargetNames) * 3 // three families per target
	if len(conc.Rows) != wantRows {
		t.Fatalf("concurrent table has %d rows, want %d:\n%v", len(conc.Rows), wantRows, conc.Rows)
	}
	fence := tabs[4]
	if fence.ID != "crashmc-fence-elision" {
		t.Fatalf("fifth table is %q", fence.ID)
	}
	if len(fence.Rows) != 1 || fence.Rows[0][0] != "NVAlloc-LOG" {
		t.Fatalf("fence-elision table rows: %v, want one NVAlloc-LOG row", fence.Rows)
	}
	if v := cell(t, fence, 0, colIndex(t, fence, "violations")); v != 0 {
		t.Errorf("fence-elision: %.0f oracle violations", v)
	}
	for ri, row := range conc.Rows {
		who := row[0] + "/" + row[1]
		if c := cell(t, conc, ri, colIndex(t, conc, "conflicts")); c < 1 {
			t.Errorf("%s: no conflicting pairs", who)
		}
		if s := cell(t, conc, ri, colIndex(t, conc, "schedules_run")); s < 1 {
			t.Errorf("%s: no variant schedules executed", who)
		}
		if p := cell(t, conc, ri, colIndex(t, conc, "pruning")); p < 50 {
			t.Errorf("%s: DPOR pruned only %.0f%%, want >= 50%%", who, p)
		}
		if v := cell(t, conc, ri, colIndex(t, conc, "violations")); v != 0 {
			t.Errorf("%s: %.0f oracle violations", who, v)
		}
	}
}

// TestCrashMCBaselineWrite checks the -crashmc.update generator: a clean
// run writes a parseable baseline whose floors the run itself satisfies,
// and any refusal reason suppresses the write entirely.
func TestCrashMCBaselineWrite(t *testing.T) {
	dir := t.TempDir()
	bl := &baselineBuild{
		Boundaries:  map[string]int{"NVAlloc-LOG": 638, "PMDK": 760},
		TornClasses: map[string][]string{"NVAlloc-LOG": {"wal-entry"}, "PMDK": {"other"}},
	}
	path := filepath.Join(dir, "baseline.json")
	bl.write(path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("clean run wrote nothing: %v", err)
	}
	var doc crashBaseline
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("generated baseline does not parse: %v", err)
	}
	if got := doc.MinBoundaries["NVAlloc-LOG"]; got <= 0 || got > 638 {
		t.Errorf("floor %d not in (0, 638]", got)
	}
	if _, ok := doc.RequiredTornClasses["PMDK"]; ok {
		t.Error("baseline-model allocator got a torn-class requirement")
	}
	if _, ok := doc.RequiredTornClasses["NVAlloc-LOG"]; !ok {
		t.Error("NVAlloc torn classes missing")
	}

	refused := filepath.Join(dir, "refused.json")
	bl.refuse("synthetic violation")
	bl.write(refused)
	if _, err := os.Stat(refused); !os.IsNotExist(err) {
		t.Errorf("refused update still wrote a file (stat err %v)", err)
	}
}
