package experiment

import (
	"fmt"
	"sort"

	"nvalloc/internal/crashmc"
)

func init() {
	register("crashmc", runCrashMC)
}

// runCrashMC runs the crash-point model checker's smoke enumeration over
// every allocator: record the smoke trace once per target, then verify
// the recovery oracle at every persistence boundary (and its torn-line
// variant) using the experiment worker pool. The first table is the
// headline coverage report — boundaries, coverage, distinct recovery
// paths, violations — the second breaks explored boundaries down by
// in-flight line class (wal-entry, bitmap-stripe, blog-entry,
// slab-header, ...), and the third lists the recovery paths (trace phase
// × line class) the enumeration actually drove.
func runCrashMC(cfg Config) []*Table {
	targets := crashmc.Targets()
	seed := uint64(42)
	recs := make([]*crashmc.Recording, len(targets))
	errs := make([]error, len(targets))
	jobs := make([]func(), len(targets))
	for i := range targets {
		i := i
		jobs[i] = func() {
			recs[i], errs[i] = crashmc.Record(targets[i], crashmc.SmokeTrace(seed),
				crashmc.RecordOptions{})
		}
	}
	runJobs(cfg, jobs)

	head := &Table{
		ID:    "crashmc",
		Title: fmt.Sprintf("crash-point model checker, smoke trace (seed %d), every boundary + torn variants", seed),
		Columns: []string{"allocator", "boundaries", "explored", "coverage",
			"torn", "paths", "checks", "violations"},
	}
	classes := &Table{
		ID:      "crashmc-classes",
		Title:   "explored boundaries by in-flight line class (clean/torn counts)",
		Columns: []string{"allocator", "class", "clean", "torn"},
	}
	pathAgg := map[string]int{}
	for i, tg := range targets {
		if errs[i] != nil {
			head.Rows = append(head.Rows, []string{tg.Name,
				"record failed: " + errs[i].Error(), "", "", "", "", "", ""})
			continue
		}
		vcfg := crashmc.Config{
			Torn: true, TornSeed: 0xDECAF, CheckEvery: 64,
			Pool: cfg.RunCells,
		}
		if cfg.Scale < 1 {
			// Scaled-down runs (the micro-scale smoke test) sample the
			// boundary space instead of enumerating it; -exp crashmc at the
			// default scale stays exhaustive.
			vcfg.MaxBoundaries = cfg.ops(750)
		}
		rep := crashmc.Verify(recs[i], vcfg)
		head.Rows = append(head.Rows, []string{
			tg.Name,
			fmt.Sprint(rep.Boundaries),
			fmt.Sprint(rep.Explored),
			pct(rep.Coverage()),
			fmt.Sprint(rep.TornExplored),
			fmt.Sprint(len(rep.Paths)),
			fmt.Sprint(rep.Checks),
			fmt.Sprint(rep.ViolationCount),
		})
		for _, cl := range rep.ClassNames() {
			classes.Rows = append(classes.Rows, []string{
				tg.Name, cl,
				fmt.Sprint(rep.Classes[cl]),
				fmt.Sprint(rep.TornClasses[cl]),
			})
		}
		for p, n := range rep.Paths {
			pathAgg[p] += n
		}
		for _, v := range rep.Violations {
			// Violations are a CI failure; surface them in the text output.
			head.Rows = append(head.Rows, []string{"", "  " + v.String(),
				"", "", "", "", "", ""})
		}
	}

	paths := &Table{
		ID:      "crashmc-paths",
		Title:   "distinct recovery paths driven (trace phase × in-flight line class), all allocators",
		Columns: []string{"path", "boundaries"},
	}
	names := make([]string, 0, len(pathAgg))
	for p := range pathAgg {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		paths.Rows = append(paths.Rows, []string{p, fmt.Sprint(pathAgg[p])})
	}
	return []*Table{head, classes, paths}
}
