package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"nvalloc/internal/crashmc"
	"nvalloc/internal/torture"
)

func init() {
	register("crashmc", runCrashMC)
}

// runCrashMC runs the crash-point model checker's smoke enumeration over
// every allocator: record the smoke trace once per target, then verify
// the recovery oracle at every persistence boundary (and its torn-line
// variant) using the experiment worker pool. The first table is the
// headline coverage report — boundaries, coverage, distinct recovery
// paths, violations — the second breaks explored boundaries down by
// in-flight line class (wal-entry, bitmap-stripe, blog-entry,
// slab-header, ...), and the third lists the recovery paths (trace phase
// × line class) the enumeration actually drove. The fourth table is the
// concurrent checker: each conflicting-pair trace family is enumerated
// under DPOR-reduced preemptive schedules on the NVAlloc targets, with
// the candidate/conflict/pruning accounting the baseline enforces.
func runCrashMC(cfg Config) []*Table {
	targets := crashmc.Targets()
	seed := uint64(42)
	recs := make([]*crashmc.Recording, len(targets))
	errs := make([]error, len(targets))
	jobs := make([]func(), len(targets))
	for i := range targets {
		i := i
		jobs[i] = func() {
			recs[i], errs[i] = crashmc.Record(targets[i], crashmc.SmokeTrace(seed),
				crashmc.RecordOptions{})
		}
	}
	runJobs(cfg, jobs)

	head := &Table{
		ID:    "crashmc",
		Title: fmt.Sprintf("crash-point model checker, smoke trace (seed %d), every boundary + torn variants", seed),
		Columns: []string{"allocator", "boundaries", "explored", "coverage",
			"torn", "paths", "checks", "violations"},
	}
	classes := &Table{
		ID:      "crashmc-classes",
		Title:   "explored boundaries by in-flight line class (clean/torn counts)",
		Columns: []string{"allocator", "class", "clean", "torn"},
	}
	pathAgg := map[string]int{}
	bl := &baselineBuild{
		Boundaries:  map[string]int{},
		TornClasses: map[string][]string{},
	}
	for i, tg := range targets {
		if errs[i] != nil {
			head.Rows = append(head.Rows, []string{tg.Name,
				"record failed: " + errs[i].Error(), "", "", "", "", "", ""})
			bl.refuse("%s: record failed: %v", tg.Name, errs[i])
			continue
		}
		vcfg := crashmc.Config{
			Torn: true, TornSeed: 0xDECAF, CheckEvery: 64,
			Pool: cfg.RunCells,
		}
		if cfg.Scale < 1 {
			// Scaled-down runs (the micro-scale smoke test) sample the
			// boundary space instead of enumerating it; -exp crashmc at the
			// default scale stays exhaustive.
			vcfg.MaxBoundaries = cfg.ops(750)
		}
		rep := crashmc.Verify(recs[i], vcfg)
		bl.Boundaries[tg.Name] = rep.Boundaries
		if rep.Explored < rep.Boundaries {
			bl.refuse("%s: sampled %d/%d boundaries (run with -scale >= 1 to enumerate)",
				tg.Name, rep.Explored, rep.Boundaries)
		}
		if rep.ViolationCount > 0 {
			bl.refuse("%s: %d oracle violations", tg.Name, rep.ViolationCount)
		}
		for _, cl := range rep.ClassNames() {
			if rep.TornClasses[cl] > 0 {
				bl.TornClasses[tg.Name] = append(bl.TornClasses[tg.Name], cl)
			}
		}
		head.Rows = append(head.Rows, []string{
			tg.Name,
			fmt.Sprint(rep.Boundaries),
			fmt.Sprint(rep.Explored),
			pct(rep.Coverage()),
			fmt.Sprint(rep.TornExplored),
			fmt.Sprint(len(rep.Paths)),
			fmt.Sprint(rep.Checks),
			fmt.Sprint(rep.ViolationCount),
		})
		for _, cl := range rep.ClassNames() {
			classes.Rows = append(classes.Rows, []string{
				tg.Name, cl,
				fmt.Sprint(rep.Classes[cl]),
				fmt.Sprint(rep.TornClasses[cl]),
			})
		}
		for p, n := range rep.Paths {
			pathAgg[p] += n
		}
		for _, v := range rep.Violations {
			// Violations are a CI failure; surface them in the text output.
			head.Rows = append(head.Rows, []string{"", "  " + v.String(),
				"", "", "", "", "", ""})
		}
	}

	paths := &Table{
		ID:      "crashmc-paths",
		Title:   "distinct recovery paths driven (trace phase × in-flight line class), all allocators",
		Columns: []string{"path", "boundaries"},
	}
	names := make([]string, 0, len(pathAgg))
	for p := range pathAgg {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		paths.Rows = append(paths.Rows, []string{p, fmt.Sprint(pathAgg[p])})
	}

	conc := runCrashMCConc(cfg, targets, seed, bl)
	fence := runCrashMCFence(cfg, targets, seed, bl)

	if cfg.CrashMCBaselineOut != "" {
		bl.write(cfg.CrashMCBaselineOut)
	}
	return []*Table{head, classes, paths, conc, fence}
}

// runCrashMCFence enumerates the fence-elision family on the LOG target:
// the trace that concentrates crash boundaries inside the windows where
// the hot paths merged two (or, for the remote-free drain, up to
// seventeen) post-commit fences into one. The table reports, alongside
// the usual coverage numbers, the clean/torn boundary counts of the two
// line classes the elision puts at risk — wal-entry and bitmap-stripe —
// which the baseline requires to be nonzero in both columns: the proof
// obligation is not just "no violations" but "the at-risk windows were
// actually entered, torn variants included".
func runCrashMCFence(cfg Config, targets []torture.Target, seed uint64, bl *baselineBuild) *Table {
	fence := &Table{
		ID: "crashmc-fence-elision",
		Title: fmt.Sprintf("fence-elision family (seed %d): every boundary inside a merged-fence "+
			"window + torn variants", seed),
		Columns: []string{"allocator", "boundaries", "explored", "coverage", "torn",
			"wal_clean", "wal_torn", "bitmap_clean", "bitmap_torn", "violations"},
	}
	for _, tg := range targets {
		if tg.Name != "NVAlloc-LOG" {
			continue
		}
		rec, err := crashmc.Record(tg, crashmc.FenceElisionTrace(seed), crashmc.RecordOptions{})
		if err != nil {
			fence.Rows = append(fence.Rows, []string{tg.Name,
				"record failed: " + err.Error(), "", "", "", "", "", "", "", ""})
			bl.refuse("%s/fence-elision: record failed: %v", tg.Name, err)
			continue
		}
		vcfg := crashmc.Config{
			Torn: true, TornSeed: 0xDECAF, CheckEvery: 64,
			Pool: cfg.RunCells,
		}
		if cfg.Scale < 1 {
			vcfg.MaxBoundaries = cfg.ops(200)
		}
		rep := crashmc.Verify(rec, vcfg)
		bl.FenceBoundaries = rep.Boundaries
		if rep.Explored < rep.Boundaries {
			bl.refuse("%s/fence-elision: sampled %d/%d boundaries", tg.Name, rep.Explored, rep.Boundaries)
		}
		if rep.ViolationCount > 0 {
			bl.refuse("%s/fence-elision: %d oracle violations", tg.Name, rep.ViolationCount)
		}
		fence.Rows = append(fence.Rows, []string{
			tg.Name,
			fmt.Sprint(rep.Boundaries),
			fmt.Sprint(rep.Explored),
			pct(rep.Coverage()),
			fmt.Sprint(rep.TornExplored),
			fmt.Sprint(rep.Classes["wal-entry"]),
			fmt.Sprint(rep.TornClasses["wal-entry"]),
			fmt.Sprint(rep.Classes["bitmap-stripe"]),
			fmt.Sprint(rep.TornClasses["bitmap-stripe"]),
			fmt.Sprint(rep.ViolationCount),
		})
		for _, v := range rep.Violations {
			fence.Rows = append(fence.Rows, []string{"", "  " + v.String(),
				"", "", "", "", "", "", "", ""})
		}
	}
	return fence
}

// concTargetNames are the allocators the concurrent families target: the
// two NVAlloc consistency modes whose sharded-log, remote-free and
// extent machinery the families race. (IC shares LOG's code paths for
// all three families; the baselines have no concurrent machinery.)
var concTargetNames = []string{"NVAlloc-LOG", "NVAlloc-GC"}

// runCrashMCConc enumerates the concurrent trace families under
// DPOR-reduced preemptive schedules and reports the schedule-space
// accounting CI enforces: candidates vs conflicts, naive vs planned vs
// executed schedules, the pruning fraction, and the verified
// schedule × boundary space.
func runCrashMCConc(cfg Config, targets []torture.Target, seed uint64, bl *baselineBuild) *Table {
	budget := cfg.CrashMCSchedBudget
	switch {
	case budget == 0:
		budget = 6 // the PR-smoke default: bounded, still > PreemptsPerPair
	case budget < 0:
		budget = 0 // ConcOptions: <= 0 means uncapped (the nightly run)
	}
	families := crashmc.ConcFamilies(seed)
	var tgs []torture.Target
	for _, tg := range targets {
		for _, n := range concTargetNames {
			if tg.Name == n {
				tgs = append(tgs, tg)
			}
		}
	}

	reps := make([]*crashmc.ConcReport, len(tgs)*len(families))
	errs := make([]error, len(reps))
	jobs := make([]func(), len(reps))
	for i := range reps {
		i := i
		tg, ct := tgs[i/len(families)], families[i%len(families)]
		jobs[i] = func() {
			opt := crashmc.ConcOptions{
				Torn: true, TornSeed: 0xDECAF,
				MaxSchedules: budget,
			}
			if cfg.Scale < 1 {
				// Scaled-down smoke: two variant schedules per family and a
				// sampled baseline sweep. Conflict counts and pruning come
				// from the recording, so they match the full run exactly.
				opt.MaxSchedules = 2
				opt.MaxBoundaries = cfg.ops(200)
			}
			reps[i], errs[i] = crashmc.EnumerateConc(tg, ct, opt)
		}
	}
	runJobs(cfg, jobs)

	conc := &Table{
		ID: "crashmc-concurrent",
		Title: fmt.Sprintf("concurrent families (seed %d): DPOR-reduced schedule enumeration, "+
			"recovery verified at every schedule × boundary", seed),
		Columns: []string{"allocator", "family", "candidates", "conflicts",
			"schedules_run", "schedules_planned", "naive", "pruning",
			"boundaries", "torn", "violations"},
	}
	for i := range reps {
		tg, ct := tgs[i/len(families)], families[i%len(families)]
		if errs[i] != nil {
			conc.Rows = append(conc.Rows, []string{tg.Name, ct.Name,
				"enumeration failed: " + errs[i].Error(), "", "", "", "", "", "", "", ""})
			bl.refuse("%s/%s: enumeration failed: %v", tg.Name, ct.Name, errs[i])
			continue
		}
		rep := reps[i]
		bl.Conc = append(bl.Conc, rep)
		if rep.ViolationCount > 0 {
			bl.refuse("%s/%s: %d oracle violations", tg.Name, ct.Name, rep.ViolationCount)
		}
		conc.Rows = append(conc.Rows, []string{
			tg.Name, ct.Name,
			fmt.Sprint(rep.Candidates),
			fmt.Sprint(rep.Conflicts),
			fmt.Sprint(rep.SchedulesRun),
			fmt.Sprint(rep.PlannedSchedules),
			fmt.Sprint(rep.NaiveSchedules),
			pct(rep.Pruning()),
			fmt.Sprint(rep.BoundariesVerified),
			fmt.Sprint(rep.TornVerified),
			fmt.Sprint(rep.ViolationCount),
		})
		for _, v := range rep.Violations {
			conc.Rows = append(conc.Rows, []string{"", "  " + v.String(),
				"", "", "", "", "", "", "", "", ""})
		}
	}
	return conc
}

// crashBaseline mirrors crashmc_baseline.json. The serial fields are the
// PR 5 schema; "concurrent" is the schedule-aware extension: per-family
// conflict floors (conflict detection is deterministic for a fixed seed,
// so the floor is the measured minimum across targets), a pruning floor
// of 50% of the naive schedule space, and zero violations across every
// executed schedule.
type crashBaseline struct {
	Comment               string              `json:"comment"`
	RequireCoverage       float64             `json:"require_coverage"`
	RequireZeroViolations bool                `json:"require_zero_violations"`
	MinBoundaries         map[string]int      `json:"min_boundaries"`
	RequiredTornClasses   map[string][]string `json:"required_torn_classes"`
	Concurrent            *concBaseline       `json:"concurrent,omitempty"`
	FenceElision          *fenceBaseline      `json:"fence_elision,omitempty"`
}

// fenceBaseline gates the fence-elision family: a boundary floor for the
// dedicated trace plus the requirement that both at-risk line classes
// (wal-entry, bitmap-stripe) were explored clean and torn. Coverage and
// zero-violation requirements are inherited from the top level.
type fenceBaseline struct {
	MinBoundaries       int      `json:"min_boundaries"`
	RequireClassesClean []string `json:"require_classes_clean"`
	RequireClassesTorn  []string `json:"require_classes_torn"`
}

type concBaseline struct {
	RequireZeroViolations bool           `json:"require_zero_violations"`
	MinPruning            float64        `json:"min_pruning"`
	MinSchedulesRun       int            `json:"min_schedules_run"`
	MinConflicts          map[string]int `json:"min_conflicts"`
}

// baselineBuild accumulates one run's measurements for -crashmc.update,
// plus the reasons (if any) the regeneration must be refused.
type baselineBuild struct {
	Boundaries      map[string]int
	TornClasses     map[string][]string
	Conc            []*crashmc.ConcReport
	FenceBoundaries int
	Refusals        []string
}

func (b *baselineBuild) refuse(format string, args ...any) {
	b.Refusals = append(b.Refusals, fmt.Sprintf(format, args...))
}

// write regenerates the baseline file from this run, or refuses loudly:
// a baseline snapshotted from a sampled, failed, or violating run would
// codify the regression it is meant to catch.
func (b *baselineBuild) write(path string) {
	if len(b.Refusals) > 0 {
		fmt.Fprintf(os.Stderr, "crashmc: refusing to update %s:\n", path)
		for _, r := range b.Refusals {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return
	}
	doc := crashBaseline{
		Comment: "Crash-point model-checker coverage baseline. CI fails if nvbench -exp crashmc " +
			"reports fewer boundaries than min_boundaries (floors ~70% of the measured smoke-trace " +
			"counts, absorbing geometry drift), less than 100% coverage, any violation, a missing " +
			"required torn line class, or — for the concurrent families — fewer conflicting pairs " +
			"than min_conflicts, DPOR pruning below min_pruning, or any schedule-variant violation. " +
			"The fence_elision section gates the dedicated merged-fence trace family: boundary " +
			"floor, 100% coverage, zero violations, and both at-risk line classes (wal-entry, " +
			"bitmap-stripe) explored clean and torn. " +
			"Regenerate with: go run ./cmd/nvbench -exp crashmc -crashmc.update",
		RequireCoverage:       1.0,
		RequireZeroViolations: true,
		MinBoundaries:         map[string]int{},
		RequiredTornClasses:   map[string][]string{},
	}
	for name, n := range b.Boundaries {
		// ~70% of measured, rounded down to a multiple of 10.
		doc.MinBoundaries[name] = n * 7 / 10 / 10 * 10
	}
	for name, classes := range b.TornClasses {
		// Only the NVAlloc targets carry torn-class requirements: the
		// baseline-model allocators' line classes are emulation details.
		if len(name) >= 7 && name[:7] == "NVAlloc" {
			doc.RequiredTornClasses[name] = classes
		}
	}
	if len(b.Conc) > 0 {
		cb := &concBaseline{
			RequireZeroViolations: true,
			MinPruning:            0.5,
			MinSchedulesRun:       1,
			MinConflicts:          map[string]int{},
		}
		for _, rep := range b.Conc {
			// Per-family floor: the minimum conflict count across targets.
			if cur, ok := cb.MinConflicts[rep.Trace]; !ok || rep.Conflicts < cur {
				cb.MinConflicts[rep.Trace] = rep.Conflicts
			}
		}
		doc.Concurrent = cb
	}
	if b.FenceBoundaries > 0 {
		doc.FenceElision = &fenceBaseline{
			MinBoundaries:       b.FenceBoundaries * 7 / 10 / 10 * 10,
			RequireClassesClean: []string{"bitmap-stripe", "wal-entry"},
			RequireClassesTorn:  []string{"bitmap-stripe", "wal-entry"},
		}
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashmc: encoding baseline: %v\n", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "crashmc: writing baseline: %v\n", err)
		return
	}
	fmt.Printf("  regenerated %s\n", path)
}
