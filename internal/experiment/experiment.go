// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a named runner producing
// text tables (and CSV series for the scatter/line figures), executed by
// cmd/nvbench and wrapped by the repository's root benchmarks.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"nvalloc/internal/alloc"
	"nvalloc/internal/baseline"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

// Table is one result table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// CSV holds optional raw series (e.g. Figure 2's flush scatter),
	// keyed by series name.
	CSV map[string][]string
}

// CSVRows renders the table as CSV lines (header + rows), for plotting.
func (t *Table) CSVRows() []string {
	out := make([]string, 0, len(t.Rows)+1)
	join := func(cells []string) string {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		return strings.Join(quoted, ",")
	}
	out = append(out, join(t.Columns))
	for _, r := range t.Rows {
		out = append(out, join(r))
	}
	return out
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
}

// Config parameterizes an experiment run.
type Config struct {
	// Threads is the thread-count sweep (default {1,2,4,8}).
	Threads []int
	// Scale multiplies operation counts (1.0 = the repository default,
	// which is itself scaled down from the paper's testbed).
	Scale float64
	// DeviceBytes sizes the simulated device (default 512 MiB).
	DeviceBytes uint64
	// Mode runs experiments on ADR (default) or eADR devices.
	Mode pmem.Mode
	// Workers bounds the parallel experiment engine: 0 (default) uses
	// GOMAXPROCS workers, 1 forces the serial engine, N > 1 uses N.
	// Each cell owns its device, so tables are identical at any setting.
	Workers int
	// CrashMCSchedBudget caps the variant schedules executed per
	// concurrent crashmc family (0 = the smoke default of 6, negative =
	// unlimited — the nightly exhaustive run). Conflict detection and the
	// DPOR pruning numbers are budget-independent; the cap only bounds
	// how many of the planned schedules actually replay.
	CrashMCSchedBudget int
	// CrashMCBaselineOut, when non-empty, regenerates the crashmc
	// coverage baseline at this path after the run — refused (nothing
	// written, loud stderr message) if any record failed, any oracle
	// violation occurred, or the run sampled instead of enumerating.
	CrashMCBaselineOut string
}

func (c Config) withDefaults() Config {
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8}
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.DeviceBytes == 0 {
		c.DeviceBytes = 512 << 20
	}
	return c
}

func (c Config) ops(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Runner produces one or more tables.
type Runner func(cfg Config) []*Table

// Experiments is the registry, keyed by figure/table ID.
var Experiments = map[string]Runner{}

// Order lists experiment IDs in presentation order.
var Order []string

func register(id string, r Runner) {
	Experiments[id] = r
	Order = append(Order, id)
}

// Allocator names (strongly consistent, weakly consistent, ablations).
var (
	StrongAllocators = []string{"PMDK", "nvm_malloc", "PAllocator", "NVAlloc-LOG"}
	WeakAllocators   = []string{"Makalu", "Ralloc", "NVAlloc-GC"}
	AllAllocators    = []string{"PMDK", "nvm_malloc", "PAllocator", "Makalu", "Ralloc", "NVAlloc-LOG", "NVAlloc-GC"}
)

// OpenHeap instantiates an allocator by name on a fresh device.
// Recognized names: the seven allocators above plus the ablations
// "Base" (no optimizations), "Base+Interleaved", "Base+Log",
// "NVAlloc-LOG w/o SM", "NVAlloc-GC w/o SM", "NVAlloc-LOG ff"
// (first-fit extents) and parameterized "NVAlloc-LOG sN" (stripes=N),
// "NVAlloc-LOG suN" (SU=N%).
func OpenHeap(name string, cfg Config) (alloc.Heap, error) {
	dev := pmem.New(pmem.Config{Size: cfg.DeviceBytes, Mode: cfg.Mode})
	return openOn(dev, name)
}

func openOn(dev pmem.Dev, name string) (alloc.Heap, error) {
	switch name {
	case "PMDK":
		return baseline.New(dev, baseline.PMDK)
	case "nvm_malloc":
		return baseline.New(dev, baseline.NvmMalloc)
	case "PAllocator":
		return baseline.New(dev, baseline.PAllocator)
	case "Makalu":
		return baseline.New(dev, baseline.Makalu)
	case "Ralloc":
		return baseline.New(dev, baseline.Ralloc)
	}
	opts := core.DefaultOptions(core.LOG)
	switch {
	case name == "NVAlloc-LOG":
	case name == "NVAlloc-GC":
		opts = core.DefaultOptions(core.GC)
	case name == "NVAlloc-IC":
		opts = core.DefaultOptions(core.IC)
	case name == "NVAlloc-LOG w/o SM":
		opts.Morphing = false
	case name == "NVAlloc-GC w/o SM":
		opts = core.DefaultOptions(core.GC)
		opts.Morphing = false
	case name == "NVAlloc-LOG ff":
		opts.FirstFitExtents = true
	case name == "NVAlloc-LOG nocache":
		// Contention baseline: no arena extent caches, no shard pools —
		// every extent operation takes the global allocator lock (the
		// pre-PR 3 hot path).
		opts.NoExtentCache = true
	case name == "Base":
		opts.InterleaveBitmap = false
		opts.InterleaveTcache = false
		opts.InterleaveWAL = false
		opts.LogBookkeeping = false
	case name == "Base+Interleaved":
		// Only the interleaved tcache layout (Figure 11's +Interleaved).
		opts.InterleaveBitmap = true
		opts.InterleaveTcache = true
		opts.InterleaveWAL = false
		opts.LogBookkeeping = false
	case name == "Base+Log":
		opts.InterleaveBitmap = false
		opts.InterleaveTcache = false
		opts.InterleaveWAL = false
		opts.LogBookkeeping = true
	case strings.HasPrefix(name, "NVAlloc-LOG su"):
		var su int
		if _, err := fmt.Sscanf(name, "NVAlloc-LOG su%d", &su); err != nil {
			return nil, fmt.Errorf("experiment: bad allocator %q", name)
		}
		opts.SU = float64(su) / 100
	case strings.HasPrefix(name, "NVAlloc-LOG s"):
		var s int
		if _, err := fmt.Sscanf(name, "NVAlloc-LOG s%d", &s); err != nil {
			return nil, fmt.Errorf("experiment: bad allocator %q", name)
		}
		opts.Stripes = s
		if s == 1 {
			opts.InterleaveBitmap = false
			opts.InterleaveTcache = false
			opts.InterleaveWAL = false
		}
	default:
		return nil, fmt.Errorf("experiment: unknown allocator %q", name)
	}
	if dev.EADR() {
		// The paper disables interleaved mapping when eADR is detected.
		opts.InterleaveBitmap = false
		opts.InterleaveTcache = false
		opts.InterleaveWAL = false
	}
	return core.Create(dev, opts)
}

// Names returns registered experiment IDs in order.
func Names() []string {
	out := append([]string(nil), Order...)
	sort.Strings(out)
	return out
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func mib(v uint64) string  { return fmt.Sprintf("%.1f", float64(v)/(1<<20)) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func msec(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
func usec(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e3) }
