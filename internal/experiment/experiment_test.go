package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny is a fast configuration for unit-testing the runners; medium is
// for shape checks that need enough live objects for search costs and
// flush traces to be visible.
var (
	tiny   = Config{Threads: []int{1, 2}, Scale: 0.05, DeviceBytes: 256 << 20}
	medium = Config{Threads: []int{1, 2}, Scale: 0.5, DeviceBytes: 256 << 20}
)

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, tab.Columns)
	return -1
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig2", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16a", "fig16b", "fig17", "fig18",
		"fig19", "fig20", "fig21", "table2", "ablation", "hashindex",
		"torture", "contention", "crashmc", "hotpath",
	}
	for _, id := range want {
		if Experiments[id] == nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Names()), len(want))
	}
}

func TestOpenHeapNames(t *testing.T) {
	names := append([]string{}, AllAllocators...)
	names = append(names, "Base", "Base+Interleaved", "Base+Log",
		"NVAlloc-LOG w/o SM", "NVAlloc-GC w/o SM", "NVAlloc-LOG ff",
		"NVAlloc-LOG s4", "NVAlloc-LOG su30", "NVAlloc-LOG nocache")
	for _, n := range names {
		h, err := OpenHeap(n, Config{DeviceBytes: 64 << 20})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		th := h.NewThread()
		if _, err := th.Malloc(64); err != nil {
			t.Fatalf("%s: malloc: %v", n, err)
		}
		th.Close()
	}
	if _, err := OpenHeap("bogus", Config{DeviceBytes: 64 << 20}); err == nil {
		t.Fatal("unknown allocator must error")
	}
}

func TestFig1aShapeReflushDominates(t *testing.T) {
	tabs := fig1a(tiny)
	tab := tabs[0]
	if len(tab.Rows) != 12 { // 4 benchmarks x 3 allocators
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// The paper: reflushes account for a large share (40.4-99.7%) on at
	// least the fixed-size benchmarks.
	high := 0
	for i := range tab.Rows {
		if cell(t, tab, i, 2) > 40 {
			high++
		}
	}
	if high < 6 {
		t.Fatalf("only %d of 12 rows show the reflush problem", high)
	}
}

func TestFig9ShapeNVAllocWins(t *testing.T) {
	tabs := smallPerf(tiny, "fig9", StrongAllocators)
	nv := -1
	for _, tab := range tabs {
		nv = colIndex(t, tab, "NVAlloc-LOG")
		pm := colIndex(t, tab, "PMDK")
		for r := range tab.Rows {
			if cell(t, tab, r, nv) <= cell(t, tab, r, pm) {
				t.Errorf("%s row %d: NVAlloc-LOG (%v) not faster than PMDK (%v)",
					tab.Title, r, tab.Rows[r][nv], tab.Rows[r][pm])
			}
		}
	}
}

func TestFig10ShapeGCVariantWins(t *testing.T) {
	tabs := smallPerf(tiny, "fig10", WeakAllocators)
	for _, tab := range tabs {
		nv := colIndex(t, tab, "NVAlloc-GC")
		mk := colIndex(t, tab, "Makalu")
		for r := range tab.Rows {
			if cell(t, tab, r, nv) <= cell(t, tab, r, mk) {
				t.Errorf("%s row %d: NVAlloc-GC not faster than Makalu", tab.Title, r)
			}
		}
	}
}

func TestFig11ShapeAblationsImprove(t *testing.T) {
	tabs := fig11(tiny)
	for _, tab := range tabs {
		vs := colIndex(t, tab, "vsBase")
		last := cell(t, tab, len(tab.Rows)-1, vs) // full NVAlloc-LOG
		if last >= 1.0 {
			t.Errorf("%s: full NVAlloc-LOG not faster than Base (%.2f)", tab.Title, last)
		}
	}
}

func TestFig12ShapeLargeAllocs(t *testing.T) {
	tabs := largePerf(medium, "fig12")
	for _, tab := range tabs {
		nv := colIndex(t, tab, "NVAlloc-LOG")
		for _, base := range []string{"PMDK", "Makalu"} {
			b := colIndex(t, tab, base)
			for r := range tab.Rows {
				if cell(t, tab, r, nv) <= cell(t, tab, r, b) {
					t.Errorf("%s row %d: NVAlloc-LOG not faster than %s", tab.Title, r, base)
				}
			}
		}
	}
}

func TestFig2ProducesTraces(t *testing.T) {
	tabs := fig2(medium)
	tab := tabs[0]
	if len(tab.CSV) != 5 {
		t.Fatalf("want 5 CSV series, got %d", len(tab.CSV))
	}
	for name, rows := range tab.CSV {
		if len(rows) < 100 {
			t.Errorf("series %s has only %d rows", name, len(rows))
		}
	}
	// The in-place allocators must touch more distinct regions than the
	// log-structured one.
	regions := map[string]float64{}
	for i, row := range tab.Rows {
		regions[row[0]] = cell(t, tab, i, 2)
	}
	if regions["NVAlloc-LOG"] >= regions["PMDK"] {
		t.Errorf("log bookkeeping should localize metadata writes: %v", regions)
	}
}

func TestFig18ShapeRecoveryOrdering(t *testing.T) {
	cfg := tiny
	ms := map[string]int64{}
	for _, name := range []string{"nvm_malloc", "PMDK", "Ralloc", "Makalu"} {
		ms[name] = recoveryRun(cfg, name, 5000)
	}
	if !(ms["nvm_malloc"] < ms["PMDK"] && ms["PMDK"] < ms["Ralloc"] && ms["Ralloc"] < ms["Makalu"]) {
		t.Fatalf("recovery ordering wrong: %v", ms)
	}
}

func TestTable2AndPrint(t *testing.T) {
	tabs := table2(Config{})
	var buf bytes.Buffer
	tabs[0].Print(&buf)
	out := buf.String()
	for _, want := range []string{"NVAlloc-LOG", "NVAlloc-GC", "slab morphing", "log-structured"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestFig16bSUSweepRuns(t *testing.T) {
	tabs := fig16b(tiny)
	if len(tabs[0].Rows) != 4 {
		t.Fatalf("want 4 SU rows, got %d", len(tabs[0].Rows))
	}
}

func TestFig19EADRFlat(t *testing.T) {
	tabs := fig19(tiny)
	tab := tabs[0]
	// On eADR the stripe count must not matter: max/min across stripes
	// stays close to 1.
	lo, hi := 1e18, 0.0
	for c := 1; c < len(tab.Columns); c++ {
		v := cell(t, tab, 0, c)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo > 1.25 {
		t.Fatalf("eADR stripe sweep not flat: min=%f max=%f", lo, hi)
	}
}

func TestFig17GCOverheadSmall(t *testing.T) {
	tabs := fig17(tiny)
	drop := colIndex(t, tabs[0], "drop")
	for r := range tabs[0].Rows {
		if d := cell(t, tabs[0], r, drop); d > 25 {
			t.Errorf("GC overhead too high: %s = %.1f%%", tabs[0].Rows[r][0], d)
		}
	}
}

func TestTableCSVRows(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", `has,comma "q"`}},
	}
	rows := tab.CSVRows()
	if len(rows) != 2 || rows[0] != "a,b" {
		t.Fatalf("csv rows: %v", rows)
	}
	if rows[1] != `1,"has,comma ""q"""` {
		t.Fatalf("quoting wrong: %s", rows[1])
	}
}
