package experiment

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
	"nvalloc/internal/workload"
)

// Real-concurrency execution mode: the same workload drivers on the same
// allocators, but on a direct device — plain memory, no virtual-time
// model, flushes reduced to counters — so goroutines contend for real and
// the reported throughput is wall-clock Mops/s. Go's runtime allocator
// runs the same drivers natively as a calibration series: it persists
// nothing, so it is an upper bound, not a competitor.
//
// The "real" experiment is registered in Experiments but deliberately NOT
// in Order: it is wall-clock (machine-dependent, nondeterministic), so it
// must never ride along in `-exp all`, the -list output, or the smoke
// tables that CI compares bit-for-bit.

func init() {
	Experiments["real"] = realExp
}

// OpenHeapDirect instantiates an allocator by name (same names as
// OpenHeap) on a fresh direct device.
func OpenHeapDirect(name string, cfg Config) (alloc.Heap, error) {
	cfg = cfg.withDefaults()
	dev, err := pmem.NewDirect(pmem.DirectConfig{Size: cfg.DeviceBytes})
	if err != nil {
		return nil, err
	}
	return openOn(dev, name)
}

// realAllocators is the wall-clock comparison set: NVAlloc's two
// consistency modes, the five baselines, and Go's runtime allocator.
const goRuntime = "Go runtime"

// realBenches are the wall-clock workloads: the thread-scaling trio
// (Larson, Threadtest, Prod-con) with the same parameters as the
// virtual-time figures, so flush-per-op ratios stay comparable.
func realBenches(cfg Config) []struct {
	name   string
	run    func(h alloc.Heap, threads int) workload.Result
	native func(threads int) workload.Result
} {
	return []struct {
		name   string
		run    func(h alloc.Heap, threads int) workload.Result
		native func(threads int) workload.Result
	}{
		{
			"Larson-small",
			func(h alloc.Heap, t int) workload.Result {
				return workload.Larson(h, t, 256, cfg.ops(10000), 64, 256)
			},
			func(t int) workload.Result {
				return nativeLarson(t, 256, cfg.ops(10000), 64, 256)
			},
		},
		{
			"Threadtest",
			func(h alloc.Heap, t int) workload.Result {
				return workload.Threadtest(h, t, cfg.ops(10), 1000, 64)
			},
			func(t int) workload.Result {
				return nativeThreadtest(t, cfg.ops(10), 1000, 64)
			},
		},
		{
			"Prod-con",
			func(h alloc.Heap, t int) workload.Result {
				return workload.ProdCon(h, t, cfg.ops(10000), 64)
			},
			func(t int) workload.Result {
				return nativeProdCon(t, cfg.ops(10000), 64)
			},
		},
	}
}

// realExp produces one wall-clock throughput table per benchmark. Cells
// run strictly serially — the parallel engine would have cells stealing
// each other's CPUs and the wall-clock numbers would measure the engine,
// not the allocator.
func realExp(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	names := append(append([]string{}, AllAllocators...), goRuntime)
	benches := realBenches(cfg)
	tables := make([]*Table, 0, len(benches))
	for _, b := range benches {
		t := &Table{
			ID:      "real-" + b.name,
			Title:   fmt.Sprintf("%s wall-clock throughput (Mops/s, real goroutines)", b.name),
			Columns: []string{"allocator"},
		}
		for _, th := range cfg.Threads {
			t.Columns = append(t.Columns, fmt.Sprintf("T=%d", th))
		}
		for _, name := range names {
			row := []string{name}
			for _, th := range cfg.Threads {
				var r workload.Result
				if name == goRuntime {
					r = b.native(th)
				} else {
					h, err := OpenHeapDirect(name, cfg)
					if err != nil {
						panic(err)
					}
					r = b.run(h, th)
				}
				row = append(row, f2(r.WallMopsPerSec()))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// nativeSink keeps the Go-runtime series honest: every allocated buffer
// contributes a byte, so the compiler cannot elide the allocations.
var nativeSink atomic.Uint64

// runNative mirrors workload.Run for the Go-runtime series: same worker
// spawning, same op accounting, wall clock only.
func runNative(name string, threads int, body func(w int, rng *rand.Rand) uint64) workload.Result {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total uint64
	)
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 12345))
			ops := body(w, rng)
			mu.Lock()
			total += ops
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return workload.Result{
		Name:    name,
		Threads: threads,
		Ops:     total,
		WallNS:  time.Since(start).Nanoseconds(),
	}
}

// nativeThreadtest is workload.Threadtest on make([]byte): allocate n
// objects, then free them (drop the references) — both counted as ops,
// matching the allocator drivers.
func nativeThreadtest(threads, iters, n int, size uint64) workload.Result {
	return runNative("Threadtest", threads, func(_ int, _ *rand.Rand) uint64 {
		ptrs := make([][]byte, 0, n)
		ops := uint64(0)
		sink := uint64(0)
		for it := 0; it < iters; it++ {
			ptrs = ptrs[:0]
			for j := 0; j < n; j++ {
				b := make([]byte, size)
				b[0] = byte(j)
				sink += uint64(b[0])
				ptrs = append(ptrs, b)
				ops++
			}
			for j := range ptrs {
				ptrs[j] = nil
				ops++
			}
		}
		nativeSink.Add(sink)
		return ops
	})
}

// nativeProdCon mirrors workload.ProdCon: producers allocate batches of
// 64 buffers, consumers drop them.
func nativeProdCon(threads, nPerPair int, size uint64) workload.Result {
	type batch [][]byte
	chans := make([]chan batch, threads/2)
	for i := range chans {
		chans[i] = make(chan batch, 16)
	}
	return runNative("Prod-con", threads, func(w int, _ *rand.Rand) uint64 {
		ops := uint64(0)
		sink := uint64(0)
		defer func() { nativeSink.Add(sink) }()
		if threads == 1 || (w == threads-1 && threads%2 == 1) {
			for j := 0; j < nPerPair; j++ {
				b := make([]byte, size)
				b[0] = byte(j)
				sink += uint64(b[0])
				ops += 2 // alloc + free
			}
			return ops
		}
		pair := w / 2
		if w%2 == 0 {
			const batchSize = 64
			for sent := 0; sent < nPerPair; {
				b := make(batch, 0, batchSize)
				for j := 0; j < batchSize && sent < nPerPair; j++ {
					p := make([]byte, size)
					p[0] = byte(j)
					sink += uint64(p[0])
					b = append(b, p)
					ops++
					sent++
				}
				chans[pair] <- b
			}
			chans[pair] <- nil
			return ops
		}
		for b := range chans[pair] {
			if b == nil {
				break
			}
			for i := range b {
				b[i] = nil
				ops++
			}
		}
		return ops
	})
}

// nativeLarson mirrors workload.Larson: replace a random slot per op.
func nativeLarson(threads, slots, opsPerThread int, minSize, maxSize uint64) workload.Result {
	return runNative("Larson-small", threads, func(_ int, rng *rand.Rand) uint64 {
		ops := uint64(0)
		sink := uint64(0)
		held := make([][]byte, slots)
		span := int64(maxSize - minSize + 1)
		for i := 0; i < opsPerThread; i++ {
			s := rng.Intn(slots)
			if held[s] != nil {
				held[s] = nil
				ops++
			}
			b := make([]byte, minSize+uint64(rng.Int63n(span)))
			b[0] = byte(i)
			sink += uint64(b[0])
			held[s] = b
			ops++
		}
		for s := range held {
			if held[s] != nil {
				held[s] = nil
				ops++
			}
		}
		nativeSink.Add(sink)
		return ops
	})
}
