package experiment

import (
	"fmt"
	"math/rand"

	"nvalloc/internal/alloc"
	"nvalloc/internal/baseline"
	"nvalloc/internal/core"
	"nvalloc/internal/fptree"
	"nvalloc/internal/pmem"
	"nvalloc/internal/workload"
)

func init() {
	register("fig14", fig14)
	register("fig16a", fig16a)
	register("fig18", fig18)
	register("fig19", fig19)
	register("table2", table2)
	register("ablation", ablation)
}

// fig14 reproduces Figure 14: FPTree throughput with a 50% insert / 50%
// delete workload on every allocator.
func fig14(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	warm := cfg.ops(20000)
	opsPer := cfg.ops(20000)
	sets := []struct {
		title string
		names []string
	}{
		{"strongly consistent", StrongAllocators},
		{"weakly consistent", WeakAllocators},
	}
	// Flatten both allocator sets into one job list (the sets have
	// different widths, so a rectangular grid does not fit).
	type slot struct {
		set, row, col int
	}
	var jobs []func()
	results := make([][][]float64, len(sets))
	for si, set := range sets {
		results[si] = make([][]float64, len(cfg.Threads))
		for ti := range cfg.Threads {
			results[si][ti] = make([]float64, len(set.names))
			for ni := range set.names {
				s := slot{si, ti, ni}
				jobs = append(jobs, func() {
					results[s.set][s.row][s.col] = fptreeRun(cfg, sets[s.set].names[s.col], cfg.Threads[s.row], warm, opsPer)
				})
			}
		}
	}
	runJobs(cfg, jobs)
	var tables []*Table
	for si, set := range sets {
		t := &Table{
			ID:      "fig14",
			Title:   fmt.Sprintf("FPTree 50%% insert / 50%% delete, %s allocators (Mops/s)", set.title),
			Columns: append([]string{"threads"}, set.names...),
		}
		for ti, th := range cfg.Threads {
			row := []string{fmt.Sprint(th)}
			for ni := range set.names {
				row = append(row, f2(results[si][ti][ni]))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

func fptreeRun(cfg Config, name string, threads, warm, opsPerThread int) float64 {
	h, err := OpenHeap(name, cfg)
	if err != nil {
		panic(err)
	}
	th0 := h.NewThread()
	tr, err := fptree.Create(h, th0, 0)
	if err != nil {
		panic(err)
	}
	th0.Close()
	// Warm up with the same thread pool as the measured run (so slab
	// ownership spreads across arenas, as it would on the testbed).
	workload.Run("FPTree-warm", h, threads, func(w int, th alloc.Thread, rng *rand.Rand) uint64 {
		for i := 0; i < warm/threads+1; i++ {
			if err := tr.Insert(th, rng.Uint64()%uint64(4*warm), 1); err != nil {
				panic(err)
			}
		}
		return 0
	})
	r := workload.Run("FPTree", h, threads, func(w int, th alloc.Thread, rng *rand.Rand) uint64 {
		ops := uint64(0)
		for i := 0; i < opsPerThread; i++ {
			k := rng.Uint64() % uint64(4*warm)
			if i%2 == 0 {
				if tr.Insert(th, k, k) == nil {
					ops++
				}
			} else {
				if _, err := tr.Delete(th, k); err == nil {
					ops++
				}
			}
		}
		return ops
	})
	return r.MopsPerSec()
}

// fig16a reproduces Figure 16(a): bit-stripe sweep on Threadtest across
// thread counts (the XPBuffer pressure makes large stripe counts hurt).
func fig16a(cfg Config) []*Table {
	return stripeSweep(cfg.withDefaults(), "fig16a", pmem.ModeADR,
		"Bit-stripe sweep on Threadtest (virtual ms; ADR)")
}

// fig19 reproduces Figure 19: the same sweep on eADR, where stripes make
// no difference because flushes are free.
func fig19(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.Threads = []int{4}
	return stripeSweep(cfg, "fig19", pmem.ModeEADR,
		"Bit-stripe sweep on Threadtest (virtual ms; emulated eADR)")
}

func stripeSweep(cfg Config, id string, mode pmem.Mode, title string) []*Table {
	stripes := []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32}
	t := &Table{
		ID:    id,
		Title: title,
		Columns: append([]string{"threads"}, func() []string {
			var c []string
			for _, s := range stripes {
				c = append(c, fmt.Sprint(s))
			}
			return c
		}()...),
	}
	ns := grid(cfg, len(cfg.Threads), len(stripes), func(ti, si int) int64 {
		s := stripes[si]
		dev := pmem.New(pmem.Config{Size: cfg.DeviceBytes, Mode: mode})
		opts := core.DefaultOptions(core.LOG)
		opts.Stripes = s
		if s == 1 {
			opts.InterleaveBitmap = false
			opts.InterleaveTcache = false
			opts.InterleaveWAL = false
		}
		// Figure 19 measures the raw effect of stripes, so eADR does
		// NOT auto-disable interleaving here.
		h, err := core.Create(dev, opts)
		if err != nil {
			panic(err)
		}
		return workload.Threadtest(h, cfg.Threads[ti], cfg.ops(10), 1000, 64).MakespanNS
	})
	for ti, th := range cfg.Threads {
		row := []string{fmt.Sprint(th)}
		for si := range stripes {
			row = append(row, msec(ns[ti][si]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// fig18 reproduces Figure 18: single-thread recovery time after a crash
// with a linked list of nodes (the paper's 10M nodes, scaled).
func fig18(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	nodes := cfg.ops(100000)
	t := &Table{
		ID:      "fig18",
		Title:   fmt.Sprintf("Recovery time after crash, %d-node linked list (virtual ms)", nodes),
		Columns: []string{"allocator", "recovery ms"},
	}
	names := []string{"nvm_malloc", "PMDK", "NVAlloc-LOG", "Ralloc", "Makalu", "NVAlloc-GC"}
	ns := grid(cfg, 1, len(names), func(_, ni int) int64 {
		return recoveryRun(cfg, names[ni], nodes)
	})
	for ni, name := range names {
		t.Rows = append(t.Rows, []string{name, msec(ns[0][ni])})
	}
	return []*Table{t}
}

// recoveryRun builds the linked list, crashes the device and reopens the
// heap, returning the recovery's virtual nanoseconds.
func recoveryRun(cfg Config, name string, nodes int) int64 {
	dev := pmem.New(pmem.Config{Size: cfg.DeviceBytes, Strict: true})
	h, err := openOn(dev, name)
	if err != nil {
		panic(err)
	}
	th := h.NewThread()
	rng := rand.New(rand.NewSource(4))
	var prev pmem.PAddr
	for i := 0; i < nodes; i++ {
		size := uint64(64 + rng.Intn(65)) // 64..128 B, as in the paper
		p, err := th.Malloc(size)
		if err != nil {
			panic(err)
		}
		dev.WriteU64(p, uint64(prev))
		th.Ctx().Flush(pmem.CatOther, p, 8)
		prev = p
	}
	th.Ctx().PersistU64(pmem.CatOther, h.RootSlot(0), uint64(prev))
	th.Ctx().Merge()
	dev.Crash()

	switch name {
	case "nvm_malloc":
		_, ns, err := baseline.Open(dev, baseline.NvmMalloc)
		must(err)
		return ns
	case "PMDK":
		_, ns, err := baseline.Open(dev, baseline.PMDK)
		must(err)
		return ns
	case "PAllocator":
		_, ns, err := baseline.Open(dev, baseline.PAllocator)
		must(err)
		return ns
	case "Makalu":
		_, ns, err := baseline.Open(dev, baseline.Makalu)
		must(err)
		return ns
	case "Ralloc":
		_, ns, err := baseline.Open(dev, baseline.Ralloc)
		must(err)
		return ns
	default:
		_, ns, err := core.Open(dev, core.Options{})
		must(err)
		return ns
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// table2 prints the technique matrix of Table 2.
func table2(Config) []*Table {
	t := &Table{
		ID:      "table2",
		Title:   "Techniques used in the two NVAlloc variants (IM = interleaved mapping)",
		Columns: []string{"allocator", "small allocation", "large allocation"},
		Rows: [][]string{
			{"NVAlloc-LOG", "IM(WAL,bitmaps,tcache); slab morphing", "IM(WAL,bookkeeping log); log-structured bookkeeping"},
			{"NVAlloc-GC", "slab morphing", "IM(WAL,bookkeeping log); log-structured bookkeeping"},
		},
	}
	return []*Table{t}
}

// ablation benchmarks the design choices DESIGN.md calls out beyond the
// paper's own ablations: best-fit vs first-fit extent selection.
func ablation(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "ablation",
		Title:   "Extent selection: best-fit (size tree) vs first-fit (address scan)",
		Columns: []string{"variant", "DBMStest Mops", "peak MiB"},
	}
	names := []string{"NVAlloc-LOG", "NVAlloc-LOG ff"}
	results := grid(cfg, 1, len(names), func(_, ni int) workload.Result {
		h, err := OpenHeap(names[ni], cfg)
		if err != nil {
			panic(err)
		}
		return workload.DBMStest(h, 2, cfg.ops(5), cfg.ops(120))
	})
	for ni, name := range names {
		r := results[0][ni]
		t.Rows = append(t.Rows, []string{name, f2(r.MopsPerSec()), mib(r.PeakBytes)})
	}
	return []*Table{t}
}
