package experiment

import (
	"runtime"
	"sync"
)

// The parallel experiment engine. Every experiment cell (one allocator ×
// thread-count × benchmark combination) constructs its own pmem.Device
// and heap, so cells share no state and their virtual-time results are
// bit-identical whether they run serially or concurrently. The engine
// only changes which wall-clock moment each cell runs at; result tables
// are always filled by cell index, preserving the serial presentation
// order.

// workers resolves the effective worker count: Workers == 1 forces the
// serial engine, Workers <= 0 means one worker per available CPU.
func (c Config) workers() int {
	if c.Workers == 1 {
		return 1
	}
	if c.Workers > 1 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes fn(0), ..., fn(n-1) on a worker pool bounded by
// cfg.workers(). Cells must be independent: each writes only its own
// result slot. A panicking cell does not wedge the pool; the first
// panic value is re-raised after every worker has drained, matching the
// serial engine's fail-fast behaviour closely enough for tests that
// expect a panic to escape the runner.
func runCells(cfg Config, n int, fn func(i int)) {
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		firstPanic any
	)
	cells := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range cells {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if firstPanic == nil {
								firstPanic = r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		cells <- i
	}
	close(cells)
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// RunCells exposes the worker pool to other packages (the crash-point
// model checker injects it as its boundary-verification pool): it
// executes fn(0), ..., fn(n-1) on at most cfg.Workers workers, with the
// same independence requirements as the internal engine.
func (c Config) RunCells(n int, fn func(i int)) { runCells(c, n, fn) }

// grid runs fn over an r×c cell grid and returns the results indexed
// [row][col], in deterministic order regardless of scheduling.
func grid[T any](cfg Config, rows, cols int, fn func(r, c int) T) [][]T {
	out := make([][]T, rows)
	for r := range out {
		out[r] = make([]T, cols)
	}
	runCells(cfg, rows*cols, func(i int) {
		r, c := i/cols, i%cols
		out[r][c] = fn(r, c)
	})
	return out
}

// runJobs executes a heterogeneous job list on the worker pool; each job
// captures its own result slot.
func runJobs(cfg Config, jobs []func()) {
	runCells(cfg, len(jobs), func(i int) { jobs[i]() })
}
