package experiment

import (
	"fmt"

	"nvalloc/internal/alloc"
	"nvalloc/internal/baseline"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
	"nvalloc/internal/workload"
)

func init() {
	register("fig2", fig2)
	register("fig12", func(cfg Config) []*Table { return largePerf(cfg, "fig12") })
	register("fig17", fig17)
	register("fig21", fig21)
}

func largeBenches(cfg Config) []struct {
	name string
	run  func(h alloc.Heap, threads int) workload.Result
} {
	return []struct {
		name string
		run  func(h alloc.Heap, threads int) workload.Result
	}{
		{"Larson-large", func(h alloc.Heap, t int) workload.Result {
			return workload.Larson(h, t, 24, cfg.ops(1500), 32<<10, 512<<10)
		}},
		{"DBMStest", func(h alloc.Heap, t int) workload.Result {
			return workload.DBMStest(h, t, cfg.ops(5), cfg.ops(120))
		}},
	}
}

// fig2 reproduces Figure 2: the addresses of the first 1000 metadata
// flushes during DBMStest, showing the small random writes of in-place
// bookkeeping against the sequential pattern of the bookkeeping log.
func fig2(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig2",
		Title:   "First 1000 metadata-flush addresses on DBMStest (see CSV series)",
		Columns: []string{"allocator", "flushes traced", "distinct 1MiB regions", "random%"},
		CSV:     map[string][]string{},
	}
	for _, name := range []string{"nvm_malloc", "PAllocator", "PMDK", "Makalu", "NVAlloc-LOG"} {
		dev := pmem.New(pmem.Config{Size: cfg.DeviceBytes, TraceFlushes: 4000})
		h, err := openOn(dev, name)
		if err != nil {
			panic(err)
		}
		r := workload.DBMStest(h, 1, cfg.ops(4), cfg.ops(120))
		trace := dev.FlushTrace()
		rows := []string{"seq,addr"}
		regions := map[uint64]bool{}
		n := 0
		for _, rec := range trace {
			if rec.Cat != pmem.CatMeta {
				continue
			}
			if n < 1000 {
				rows = append(rows, fmt.Sprintf("%d,%d", n, rec.Addr))
			}
			regions[uint64(rec.Addr)>>20] = true
			n++
		}
		t.CSV["fig2_"+name] = rows
		total := r.Stats.SeqFlushes + r.Stats.RandFlushes
		randPct := 0.0
		if total > 0 {
			randPct = float64(r.Stats.RandFlushes) / float64(total)
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(n), fmt.Sprint(len(regions)), pct(randPct)})
	}
	return []*Table{t}
}

// largePerf reproduces Figure 12 (and 21 on eADR): large-allocation
// throughput. Ralloc is excluded as in the paper (its large path does
// not work in the open-source release); NVAlloc-GC equals NVAlloc-LOG on
// this path.
func largePerf(cfg Config, id string) []*Table {
	cfg = cfg.withDefaults()
	allocators := []string{"PMDK", "nvm_malloc", "PAllocator", "Makalu", "NVAlloc-LOG"}
	var tables []*Table
	for _, b := range largeBenches(cfg) {
		t := &Table{
			ID:      id,
			Title:   fmt.Sprintf("%s large allocations, Mops/s (virtual time)", b.name),
			Columns: append([]string{"threads"}, allocators...),
		}
		for _, th := range cfg.Threads {
			row := []string{fmt.Sprint(th)}
			for _, name := range allocators {
				h, err := OpenHeap(name, cfg)
				if err != nil {
					panic(err)
				}
				r := b.run(h, th)
				row = append(row, f2(r.MopsPerSec()))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// fig17 reproduces Figure 17: the throughput cost of bookkeeping-log
// garbage collection.
func fig17(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig17",
		Title:   "Bookkeeping-log GC overhead (NVAlloc-LOG, 4 threads)",
		Columns: []string{"benchmark", "Mops w/o GC", "Mops with GC", "drop", "fastGCs", "slowGCs"},
	}
	for _, b := range largeBenches(cfg) {
		var mops [2]float64
		var fast, slow uint64
		for i, gc := range []bool{false, true} {
			dev := pmem.New(pmem.Config{Size: cfg.DeviceBytes})
			opts := core.DefaultOptions(core.LOG)
			opts.BlogGC = gc
			// The paper sets Usage_pmem to a small fraction of the heap so
			// slow GC actually triggers during the run.
			opts.BlogGCThreshold = 16 * 1024
			h, err := core.Create(dev, opts)
			if err != nil {
				panic(err)
			}
			r := b.run(h, 4)
			mops[i] = r.MopsPerSec()
			if gc {
				fast, slow = h.Blog().GCCounts()
			}
		}
		drop := 0.0
		if mops[0] > 0 {
			drop = 1 - mops[1]/mops[0]
		}
		t.Rows = append(t.Rows, []string{
			b.name, f2(mops[0]), f2(mops[1]), pct(drop),
			fmt.Sprint(fast), fmt.Sprint(slow),
		})
	}
	return []*Table{t}
}

// fig21 reproduces Figure 21: large allocations on emulated eADR.
func fig21(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.Mode = pmem.ModeEADR
	tables := largePerf(cfg, "fig21")
	for _, t := range tables {
		t.Title = "eADR: " + t.Title
	}
	return tables
}

// Silence an import that is only needed for type assertions in tests.
var _ = baseline.PMDK
