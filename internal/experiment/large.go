package experiment

import (
	"fmt"

	"nvalloc/internal/alloc"
	"nvalloc/internal/baseline"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
	"nvalloc/internal/workload"
)

func init() {
	register("fig2", fig2)
	register("fig12", func(cfg Config) []*Table { return largePerf(cfg, "fig12") })
	register("fig17", fig17)
	register("fig21", fig21)
}

func largeBenches(cfg Config) []struct {
	name string
	run  func(h alloc.Heap, threads int) workload.Result
} {
	return []struct {
		name string
		run  func(h alloc.Heap, threads int) workload.Result
	}{
		{"Larson-large", func(h alloc.Heap, t int) workload.Result {
			return workload.Larson(h, t, 24, cfg.ops(1500), 32<<10, 512<<10)
		}},
		{"DBMStest", func(h alloc.Heap, t int) workload.Result {
			return workload.DBMStest(h, t, cfg.ops(5), cfg.ops(120))
		}},
	}
}

// fig2 reproduces Figure 2: the addresses of the first 1000 metadata
// flushes during DBMStest, showing the small random writes of in-place
// bookkeeping against the sequential pattern of the bookkeeping log.
func fig2(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig2",
		Title:   "First 1000 metadata-flush addresses on DBMStest (see CSV series)",
		Columns: []string{"allocator", "flushes traced", "distinct 1MiB regions", "random%"},
		CSV:     map[string][]string{},
	}
	names := []string{"nvm_malloc", "PAllocator", "PMDK", "Makalu", "NVAlloc-LOG"}
	type traceResult struct {
		csv     []string
		flushes int
		regions int
		randPct float64
	}
	results := grid(cfg, 1, len(names), func(_, ni int) traceResult {
		dev := pmem.New(pmem.Config{Size: cfg.DeviceBytes, TraceFlushes: 4000})
		h, err := openOn(dev, names[ni])
		if err != nil {
			panic(err)
		}
		r := workload.DBMStest(h, 1, cfg.ops(4), cfg.ops(120))
		rows := []string{"seq,addr"}
		regions := map[uint64]bool{}
		n := 0
		for _, rec := range dev.FlushTrace() {
			if rec.Cat != pmem.CatMeta {
				continue
			}
			if n < 1000 {
				rows = append(rows, fmt.Sprintf("%d,%d", n, rec.Addr))
			}
			regions[uint64(rec.Addr)>>20] = true
			n++
		}
		total := r.Stats.SeqFlushes + r.Stats.RandFlushes
		randPct := 0.0
		if total > 0 {
			randPct = float64(r.Stats.RandFlushes) / float64(total)
		}
		return traceResult{csv: rows, flushes: n, regions: len(regions), randPct: randPct}
	})
	for ni, name := range names {
		res := results[0][ni]
		t.CSV["fig2_"+name] = res.csv
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(res.flushes), fmt.Sprint(res.regions), pct(res.randPct)})
	}
	return []*Table{t}
}

// largePerf reproduces Figure 12 (and 21 on eADR): large-allocation
// throughput. Ralloc is excluded as in the paper (its large path does
// not work in the open-source release); NVAlloc-GC equals NVAlloc-LOG on
// this path.
func largePerf(cfg Config, id string) []*Table {
	cfg = cfg.withDefaults()
	allocators := []string{"PMDK", "nvm_malloc", "PAllocator", "Makalu", "NVAlloc-LOG"}
	benches := largeBenches(cfg)
	nt := len(cfg.Threads)
	mops := grid(cfg, len(benches)*nt, len(allocators), func(r, ai int) float64 {
		bi, ti := r/nt, r%nt
		h, err := OpenHeap(allocators[ai], cfg)
		if err != nil {
			panic(err)
		}
		return benches[bi].run(h, cfg.Threads[ti]).MopsPerSec()
	})
	var tables []*Table
	for bi, b := range benches {
		t := &Table{
			ID:      id,
			Title:   fmt.Sprintf("%s large allocations, Mops/s (virtual time)", b.name),
			Columns: append([]string{"threads"}, allocators...),
		}
		for ti, th := range cfg.Threads {
			row := []string{fmt.Sprint(th)}
			for ai := range allocators {
				row = append(row, f2(mops[bi*nt+ti][ai]))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// fig17 reproduces Figure 17: the throughput cost of bookkeeping-log
// garbage collection.
func fig17(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig17",
		Title:   "Bookkeeping-log GC overhead (NVAlloc-LOG, 4 threads)",
		Columns: []string{"benchmark", "Mops w/o GC", "Mops with GC", "drop", "fastGCs", "slowGCs"},
	}
	benches := largeBenches(cfg)
	type gcResult struct {
		mops       float64
		fast, slow uint64
	}
	results := grid(cfg, len(benches), 2, func(bi, gi int) gcResult {
		gc := gi == 1
		dev := pmem.New(pmem.Config{Size: cfg.DeviceBytes})
		opts := core.DefaultOptions(core.LOG)
		opts.BlogGC = gc
		// The paper sets Usage_pmem to a small fraction of the heap so
		// slow GC actually triggers during the run.
		opts.BlogGCThreshold = 16 * 1024
		h, err := core.Create(dev, opts)
		if err != nil {
			panic(err)
		}
		out := gcResult{mops: benches[bi].run(h, 4).MopsPerSec()}
		if gc {
			out.fast, out.slow = h.Blog().GCCounts()
		}
		return out
	})
	for bi, b := range benches {
		off, on := results[bi][0], results[bi][1]
		drop := 0.0
		if off.mops > 0 {
			drop = 1 - on.mops/off.mops
		}
		t.Rows = append(t.Rows, []string{
			b.name, f2(off.mops), f2(on.mops), pct(drop),
			fmt.Sprint(on.fast), fmt.Sprint(on.slow),
		})
	}
	return []*Table{t}
}

// fig21 reproduces Figure 21: large allocations on emulated eADR.
func fig21(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	cfg.Mode = pmem.ModeEADR
	tables := largePerf(cfg, "fig21")
	for _, t := range tables {
		t.Title = "eADR: " + t.Title
	}
	return tables
}

// Silence an import that is only needed for type assertions in tests.
var _ = baseline.PMDK
