package experiment

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCellsCoversAllIndices checks that every cell index runs exactly
// once at any worker count.
func TestRunCellsCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 37
		var hits [n]atomic.Int32
		runCells(Config{Workers: workers}, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestRunCellsPanicPropagates checks that a worker panic drains the pool
// and re-raises on the caller, instead of crashing the process from a
// goroutine or deadlocking.
func TestRunCellsPanicPropagates(t *testing.T) {
	var ran atomic.Int32
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		if ran.Load() != 8 {
			t.Fatalf("only %d/8 cells ran; a panic must not abandon queued cells", ran.Load())
		}
	}()
	runCells(Config{Workers: 4}, 8, func(i int) {
		ran.Add(1)
		if i == 3 {
			panic("boom")
		}
	})
}

// TestGridShapeAndOrder checks grid's row-major index mapping.
func TestGridShapeAndOrder(t *testing.T) {
	out := grid(Config{Workers: 4}, 3, 5, func(r, c int) int { return r*100 + c })
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	for r := range out {
		if len(out[r]) != 5 {
			t.Fatalf("row %d cols = %d", r, len(out[r]))
		}
		for c, v := range out[r] {
			if v != r*100+c {
				t.Fatalf("cell (%d,%d) = %d", r, c, v)
			}
		}
	}
}

// TestRunJobsRunsEverything checks the heterogeneous job-list entry point.
func TestRunJobsRunsEverything(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	jobs := make([]func(), 23)
	for i := range jobs {
		i := i
		jobs[i] = func() {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
		}
	}
	runJobs(Config{Workers: 5}, jobs)
	if len(seen) != len(jobs) {
		t.Fatalf("ran %d/%d jobs", len(seen), len(jobs))
	}
}

// TestParallelMatchesSerial is the engine's core guarantee: because each
// experiment cell owns a private pmem.Device and virtual clock, tables
// produced by the parallel engine are deep-equal to the serial engine's
// at any worker count — same strings, same order. The sweep stays at one
// workload thread: multi-threaded workload cells are nondeterministic
// with EITHER engine (real goroutine interleaving through shared slabs
// perturbs the virtual-time sums), so they cannot distinguish the
// engines. Experiments that hardcode multi-thread runs (fig11, fig17,
// ablation) are excluded for the same reason.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := Config{Threads: []int{1}, Scale: 0.05, DeviceBytes: 256 << 20}
	for _, id := range []string{"fig9", "fig1a", "fig16b", "fig18", "fig14", "fig15"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial, parallel := base, base
			serial.Workers = 1
			parallel.Workers = 8
			want := Experiments[id](serial)
			got := Experiments[id](parallel)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: parallel tables differ from serial\nserial:   %+v\nparallel: %+v", id, want, got)
			}
		})
	}
}
