package experiment

import (
	"fmt"
	"math/rand"

	"nvalloc/internal/alloc"
	"nvalloc/internal/phash"
	"nvalloc/internal/workload"
)

func init() {
	register("hashindex", hashIndexExp)
}

// hashIndexExp is an extension beyond the paper: the persistent hash
// index (internal/phash, in the spirit of the level-hashing/Dash work the
// paper cites) as an allocator workload — every insert allocates a value
// blob and possibly an overflow bucket; every delete frees one.
func hashIndexExp(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	sets := []struct {
		title string
		names []string
	}{
		{"strongly consistent", StrongAllocators},
		{"weakly consistent", WeakAllocators},
	}
	// The two sets have different widths, so flatten them into one job
	// list (same pattern as fig14) instead of a rectangular grid.
	type slot struct {
		set, row, col int
	}
	var jobs []func()
	results := make([][][]float64, len(sets))
	for si, set := range sets {
		results[si] = make([][]float64, len(cfg.Threads))
		for ti := range cfg.Threads {
			results[si][ti] = make([]float64, len(set.names))
			for ni := range set.names {
				s := slot{si, ti, ni}
				jobs = append(jobs, func() {
					results[s.set][s.row][s.col] = hashIndexRun(cfg, sets[s.set].names[s.col], cfg.Threads[s.row])
				})
			}
		}
	}
	runJobs(cfg, jobs)
	var tables []*Table
	for si, set := range sets {
		t := &Table{
			ID:      "hashindex",
			Title:   fmt.Sprintf("Persistent hash index 50%% put / 25%% get / 25%% delete, %s allocators (Mops/s) [extension]", set.title),
			Columns: append([]string{"threads"}, set.names...),
		}
		for ti, th := range cfg.Threads {
			row := []string{fmt.Sprint(th)}
			for ni := range set.names {
				row = append(row, f2(results[si][ti][ni]))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

func hashIndexRun(cfg Config, name string, threads int) float64 {
	h, err := OpenHeap(name, cfg)
	if err != nil {
		panic(err)
	}
	th0 := h.NewThread()
	m, err := phash.Create(h, th0, 0, 4096, 64)
	if err != nil {
		panic(err)
	}
	th0.Close()
	keys := uint64(cfg.ops(40000))
	opsPer := cfg.ops(20000)
	r := workload.Run("hashindex", h, threads, func(w int, th alloc.Thread, rng *rand.Rand) uint64 {
		ops := uint64(0)
		for i := 0; i < opsPer; i++ {
			k := rng.Uint64() % keys
			switch rng.Intn(4) {
			case 0, 1:
				if m.Put(th, k, k) == nil {
					ops++
				}
			case 2:
				if _, ok := m.Get(th, k); ok || true {
					ops++
				}
			default:
				if _, err := m.Delete(th, k); err == nil {
					ops++
				}
			}
		}
		return ops
	})
	return r.MopsPerSec()
}
