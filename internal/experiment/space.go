package experiment

import (
	"fmt"

	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
	"nvalloc/internal/workload"
)

func init() {
	register("fig1b", fig1b)
	register("fig13", fig13)
	register("fig15", fig15)
	register("fig16b", fig16b)
}

// fragCfg scales Fragbench with the experiment scale factor.
func fragCfg(cfg Config) workload.FragConfig {
	live := uint64(float64(24<<20) * cfg.Scale)
	if live < 4<<20 {
		live = 4 << 20
	}
	return workload.FragConfig{LiveBytes: live, Threads: 1}
}

// fig1b reproduces Figure 1(b): peak memory under Fragbench for the
// classic allocators (the paper also shows volatile jemalloc/tcmalloc;
// this reproduction substitutes the five persistent baselines, whose
// static slab segregation shows the same blowup).
func fig1b(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	names := []string{"PMDK", "nvm_malloc", "PAllocator", "Makalu", "Ralloc"}
	t := &Table{
		ID:      "fig1b",
		Title:   "Peak memory consumption under Fragbench (MiB; live set is the bound)",
		Columns: append([]string{"workload", "live"}, names...),
	}
	fc := fragCfg(cfg)
	for _, spec := range workload.FragSpecs {
		row := []string{spec.Name, mib(fc.LiveBytes)}
		for _, name := range names {
			h, err := OpenHeap(name, cfg)
			if err != nil {
				panic(err)
			}
			r := workload.Fragbench(h, spec, fc)
			row = append(row, mib(r.PeakBytes))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// fig13 reproduces Figure 13: space consumption across thread counts on
// Threadtest (small) and DBMStest (large).
func fig13(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	names := []string{"PMDK", "nvm_malloc", "Makalu", "NVAlloc-LOG"}
	var tables []*Table
	for _, b := range []struct {
		bench string
		run   func(name string, threads int) uint64
	}{
		{"Threadtest", func(name string, th int) uint64 {
			h, err := OpenHeap(name, cfg)
			if err != nil {
				panic(err)
			}
			return workload.Threadtest(h, th, cfg.ops(10), 1000, 64).PeakBytes
		}},
		{"DBMStest", func(name string, th int) uint64 {
			h, err := OpenHeap(name, cfg)
			if err != nil {
				panic(err)
			}
			return workload.DBMStest(h, th, cfg.ops(5), cfg.ops(100)).PeakBytes
		}},
	} {
		t := &Table{
			ID:      "fig13",
			Title:   fmt.Sprintf("%s peak space consumption (MiB)", b.bench),
			Columns: append([]string{"threads"}, names...),
		}
		for _, th := range cfg.Threads {
			row := []string{fmt.Sprint(th)}
			for _, name := range names {
				row = append(row, mib(b.run(name, th)))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// fig15 reproduces Figure 15: Fragbench space consumption (a), slab
// utilization breakdown (b), and performance with and without slab
// morphing (c, d).
func fig15(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	fc := fragCfg(cfg)

	space := &Table{
		ID:      "fig15",
		Title:   "(a) Fragbench peak space (MiB)",
		Columns: []string{"workload", "Makalu", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"},
	}
	breakdown := &Table{
		ID:      "fig15",
		Title:   "(b) slab-utilization breakdown (slab counts, NVAlloc-LOG)",
		Columns: []string{"workload", "variant", "0-30%", "30-70%", "70-100%"},
	}
	perfStrong := &Table{
		ID:      "fig15",
		Title:   "(c) strongly consistent allocators, virtual time (ms)",
		Columns: []string{"workload", "PMDK", "nvm_malloc", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"},
	}
	perfWeak := &Table{
		ID:      "fig15",
		Title:   "(d) weakly consistent allocators, virtual time (ms)",
		Columns: []string{"workload", "Makalu", "Ralloc", "NVAlloc-GC w/o SM", "NVAlloc-GC"},
	}

	runOne := func(name string, spec workload.FragSpec) (workload.FragResult, [3]int) {
		h, err := OpenHeap(name, cfg)
		if err != nil {
			panic(err)
		}
		r := workload.Fragbench(h, spec, fc)
		var buckets [3]int
		if ch, ok := h.(*core.Heap); ok {
			buckets = ch.SlabUtilization()
		}
		return r, buckets
	}

	for _, spec := range workload.FragSpecs {
		var spaceRow = []string{spec.Name}
		var strongRow = []string{spec.Name}
		var weakRow = []string{spec.Name}
		for _, name := range []string{"Makalu", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"} {
			r, buckets := runOne(name, spec)
			spaceRow = append(spaceRow, mib(r.PeakBytes))
			switch name {
			case "NVAlloc-LOG w/o SM":
				breakdown.Rows = append(breakdown.Rows, []string{
					spec.Name, "w/o SM",
					fmt.Sprint(buckets[0]), fmt.Sprint(buckets[1]), fmt.Sprint(buckets[2]),
				})
			case "NVAlloc-LOG":
				breakdown.Rows = append(breakdown.Rows, []string{
					spec.Name, "with SM",
					fmt.Sprint(buckets[0]), fmt.Sprint(buckets[1]), fmt.Sprint(buckets[2]),
				})
			}
		}
		space.Rows = append(space.Rows, spaceRow)
		for _, name := range []string{"PMDK", "nvm_malloc", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"} {
			r, _ := runOne(name, spec)
			strongRow = append(strongRow, msec(r.MakespanNS))
		}
		perfStrong.Rows = append(perfStrong.Rows, strongRow)
		for _, name := range []string{"Makalu", "Ralloc", "NVAlloc-GC w/o SM", "NVAlloc-GC"} {
			r, _ := runOne(name, spec)
			weakRow = append(weakRow, msec(r.MakespanNS))
		}
		perfWeak.Rows = append(perfWeak.Rows, weakRow)
	}
	return []*Table{space, breakdown, perfStrong, perfWeak}
}

// fig16b reproduces Figure 16(b): the SU threshold's memory/performance
// trade-off on workload W4.
func fig16b(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig16b",
		Title:   "Morphing SU threshold sweep on Fragbench W4",
		Columns: []string{"SU", "peak MiB", "time ms", "morphs"},
	}
	fc := fragCfg(cfg)
	for _, su := range []int{10, 20, 30, 50} {
		h, err := OpenHeap(fmt.Sprintf("NVAlloc-LOG su%d", su), cfg)
		if err != nil {
			panic(err)
		}
		r := workload.Fragbench(h, workload.FragSpecs[3], fc)
		morphs, _ := h.(*core.Heap).MorphStats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d%%", su), mib(r.PeakBytes), msec(r.MakespanNS), fmt.Sprint(morphs),
		})
	}
	return []*Table{t}
}

var _ = pmem.ModeADR
