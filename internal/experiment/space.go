package experiment

import (
	"fmt"

	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
	"nvalloc/internal/workload"
)

func init() {
	register("fig1b", fig1b)
	register("fig13", fig13)
	register("fig15", fig15)
	register("fig16b", fig16b)
}

// fragCfg scales Fragbench with the experiment scale factor.
func fragCfg(cfg Config) workload.FragConfig {
	live := uint64(float64(24<<20) * cfg.Scale)
	if live < 4<<20 {
		live = 4 << 20
	}
	return workload.FragConfig{LiveBytes: live, Threads: 1}
}

// fig1b reproduces Figure 1(b): peak memory under Fragbench for the
// classic allocators (the paper also shows volatile jemalloc/tcmalloc;
// this reproduction substitutes the five persistent baselines, whose
// static slab segregation shows the same blowup).
func fig1b(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	names := []string{"PMDK", "nvm_malloc", "PAllocator", "Makalu", "Ralloc"}
	t := &Table{
		ID:      "fig1b",
		Title:   "Peak memory consumption under Fragbench (MiB; live set is the bound)",
		Columns: append([]string{"workload", "live"}, names...),
	}
	fc := fragCfg(cfg)
	peaks := grid(cfg, len(workload.FragSpecs), len(names), func(si, ni int) uint64 {
		h, err := OpenHeap(names[ni], cfg)
		if err != nil {
			panic(err)
		}
		return workload.Fragbench(h, workload.FragSpecs[si], fc).PeakBytes
	})
	for si, spec := range workload.FragSpecs {
		row := []string{spec.Name, mib(fc.LiveBytes)}
		for ni := range names {
			row = append(row, mib(peaks[si][ni]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// fig13 reproduces Figure 13: space consumption across thread counts on
// Threadtest (small) and DBMStest (large).
func fig13(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	names := []string{"PMDK", "nvm_malloc", "Makalu", "NVAlloc-LOG"}
	var tables []*Table
	for _, b := range []struct {
		bench string
		run   func(name string, threads int) uint64
	}{
		{"Threadtest", func(name string, th int) uint64 {
			h, err := OpenHeap(name, cfg)
			if err != nil {
				panic(err)
			}
			return workload.Threadtest(h, th, cfg.ops(10), 1000, 64).PeakBytes
		}},
		{"DBMStest", func(name string, th int) uint64 {
			h, err := OpenHeap(name, cfg)
			if err != nil {
				panic(err)
			}
			return workload.DBMStest(h, th, cfg.ops(5), cfg.ops(100)).PeakBytes
		}},
	} {
		b := b
		t := &Table{
			ID:      "fig13",
			Title:   fmt.Sprintf("%s peak space consumption (MiB)", b.bench),
			Columns: append([]string{"threads"}, names...),
		}
		peaks := grid(cfg, len(cfg.Threads), len(names), func(ti, ni int) uint64 {
			return b.run(names[ni], cfg.Threads[ti])
		})
		for ti, th := range cfg.Threads {
			row := []string{fmt.Sprint(th)}
			for ni := range names {
				row = append(row, mib(peaks[ti][ni]))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// fig15 reproduces Figure 15: Fragbench space consumption (a), slab
// utilization breakdown (b), and performance with and without slab
// morphing (c, d).
func fig15(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	fc := fragCfg(cfg)

	space := &Table{
		ID:      "fig15",
		Title:   "(a) Fragbench peak space (MiB)",
		Columns: []string{"workload", "Makalu", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"},
	}
	breakdown := &Table{
		ID:      "fig15",
		Title:   "(b) slab-utilization breakdown (slab counts, NVAlloc-LOG)",
		Columns: []string{"workload", "variant", "0-30%", "30-70%", "70-100%"},
	}
	perfStrong := &Table{
		ID:      "fig15",
		Title:   "(c) strongly consistent allocators, virtual time (ms)",
		Columns: []string{"workload", "PMDK", "nvm_malloc", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"},
	}
	perfWeak := &Table{
		ID:      "fig15",
		Title:   "(d) weakly consistent allocators, virtual time (ms)",
		Columns: []string{"workload", "Makalu", "Ralloc", "NVAlloc-GC w/o SM", "NVAlloc-GC"},
	}

	type cell struct {
		r       workload.FragResult
		buckets [3]int
	}
	// Each spec runs 11 independent cells — the three space-table
	// allocators plus the two four-column performance panels. The lists
	// intentionally repeat names: panels (c)/(d) are separate runs in the
	// paper, and deduplicating them would change the published numbers.
	spaceNames := []string{"Makalu", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"}
	strongNames := []string{"PMDK", "nvm_malloc", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"}
	weakNames := []string{"Makalu", "Ralloc", "NVAlloc-GC w/o SM", "NVAlloc-GC"}
	allNames := append(append(append([]string{}, spaceNames...), strongNames...), weakNames...)

	cells := grid(cfg, len(workload.FragSpecs), len(allNames), func(si, ni int) cell {
		h, err := OpenHeap(allNames[ni], cfg)
		if err != nil {
			panic(err)
		}
		out := cell{r: workload.Fragbench(h, workload.FragSpecs[si], fc)}
		if ch, ok := h.(*core.Heap); ok {
			out.buckets = ch.SlabUtilization()
		}
		return out
	})

	for si, spec := range workload.FragSpecs {
		var spaceRow = []string{spec.Name}
		var strongRow = []string{spec.Name}
		var weakRow = []string{spec.Name}
		for ni, name := range spaceNames {
			c := cells[si][ni]
			spaceRow = append(spaceRow, mib(c.r.PeakBytes))
			switch name {
			case "NVAlloc-LOG w/o SM":
				breakdown.Rows = append(breakdown.Rows, []string{
					spec.Name, "w/o SM",
					fmt.Sprint(c.buckets[0]), fmt.Sprint(c.buckets[1]), fmt.Sprint(c.buckets[2]),
				})
			case "NVAlloc-LOG":
				breakdown.Rows = append(breakdown.Rows, []string{
					spec.Name, "with SM",
					fmt.Sprint(c.buckets[0]), fmt.Sprint(c.buckets[1]), fmt.Sprint(c.buckets[2]),
				})
			}
		}
		space.Rows = append(space.Rows, spaceRow)
		for ni := range strongNames {
			strongRow = append(strongRow, msec(cells[si][len(spaceNames)+ni].r.MakespanNS))
		}
		perfStrong.Rows = append(perfStrong.Rows, strongRow)
		for ni := range weakNames {
			weakRow = append(weakRow, msec(cells[si][len(spaceNames)+len(strongNames)+ni].r.MakespanNS))
		}
		perfWeak.Rows = append(perfWeak.Rows, weakRow)
	}
	return []*Table{space, breakdown, perfStrong, perfWeak}
}

// fig16b reproduces Figure 16(b): the SU threshold's memory/performance
// trade-off on workload W4.
func fig16b(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig16b",
		Title:   "Morphing SU threshold sweep on Fragbench W4",
		Columns: []string{"SU", "peak MiB", "time ms", "morphs"},
	}
	fc := fragCfg(cfg)
	sus := []int{10, 20, 30, 50}
	type suResult struct {
		r      workload.FragResult
		morphs uint64
	}
	results := grid(cfg, 1, len(sus), func(_, si int) suResult {
		h, err := OpenHeap(fmt.Sprintf("NVAlloc-LOG su%d", sus[si]), cfg)
		if err != nil {
			panic(err)
		}
		r := workload.Fragbench(h, workload.FragSpecs[3], fc)
		morphs, _ := h.(*core.Heap).MorphStats()
		return suResult{r: r, morphs: morphs}
	})
	for si, su := range sus {
		res := results[0][si]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d%%", su), mib(res.r.PeakBytes), msec(res.r.MakespanNS), fmt.Sprint(res.morphs),
		})
	}
	return []*Table{t}
}

var _ = pmem.ModeADR
