package phash

import (
	"math/rand"
	"sync"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

func newMap(t *testing.T, buckets int) (*pmem.Device, alloc.Heap, alloc.Thread, *Map) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 256 << 20, Strict: true})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	m, err := Create(h, th, 0, buckets, 64)
	if err != nil {
		t.Fatal(err)
	}
	return dev, h, th, m
}

func TestPutGetDeleteBasic(t *testing.T) {
	_, _, th, m := newMap(t, 64)
	defer th.Close()
	if err := m.Put(th, 1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(th, 1); !ok || v != 100 {
		t.Fatalf("get: %d %v", v, ok)
	}
	if err := m.Put(th, 1, 200); err != nil { // update in place
		t.Fatal(err)
	}
	if v, _ := m.Get(th, 1); v != 200 {
		t.Fatalf("update lost: %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("len %d", m.Len())
	}
	ok, err := m.Delete(th, 1)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, ok := m.Get(th, 1); ok {
		t.Fatal("deleted key found")
	}
	if ok, _ := m.Delete(th, 1); ok {
		t.Fatal("double delete reported true")
	}
	if _, ok := m.Get(th, 999); ok {
		t.Fatal("phantom key")
	}
}

func TestOverflowChains(t *testing.T) {
	// A tiny directory forces long overflow chains.
	_, _, th, m := newMap(t, 2)
	defer th.Close()
	const n = 500
	for k := uint64(0); k < n; k++ {
		if err := m.Put(th, k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != n {
		t.Fatalf("len %d, want %d", m.Len(), n)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := m.Get(th, k); !ok || v != k*3 {
			t.Fatalf("key %d: %d %v", k, v, ok)
		}
	}
	// Delete everything; slots become reusable.
	for k := uint64(0); k < n; k++ {
		if ok, err := m.Delete(th, k); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", k, ok, err)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("len after drain: %d", m.Len())
	}
	for k := uint64(1000); k < 1000+n; k++ {
		if err := m.Put(th, k, k); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != n {
		t.Fatal("slot reuse broken")
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	_, _, th, m := newMap(t, 256)
	defer th.Close()
	rng := rand.New(rand.NewSource(5))
	model := map[uint64]uint64{}
	for op := 0; op < 20000; op++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			if err := m.Put(th, k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 1:
			ok, err := m.Delete(th, k)
			if err != nil {
				t.Fatal(err)
			}
			if _, want := model[k]; ok != want {
				t.Fatalf("delete(%d) = %v, model says %v", k, ok, want)
			}
			delete(model, k)
		default:
			v, ok := m.Get(th, k)
			wantV, want := model[k]
			if ok != want || (ok && v != wantV) {
				t.Fatalf("get(%d) = (%d,%v), model (%d,%v)", k, v, ok, wantV, want)
			}
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("len %d, model %d", m.Len(), len(model))
	}
}

func TestCrashRecoveryKeepsCommittedEntries(t *testing.T) {
	dev, h, th, m := newMap(t, 128)
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := m.Put(th, k, k+7); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k += 4 {
		if _, err := m.Delete(th, k); err != nil {
			t.Fatal(err)
		}
	}
	th.Ctx().Merge()
	dev.Crash()

	h2, _, err := core.Open(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	th2 := h2.NewThread()
	defer th2.Close()
	m2, err := Open(h2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := m2.Get(th2, k)
		if k%4 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected", k)
			}
			continue
		}
		if !ok || v != k+7 {
			t.Fatalf("key %d lost: %d %v", k, v, ok)
		}
	}
	// Still writable after recovery.
	if err := m2.Put(th2, 1<<40, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Get(th2, 1<<40); !ok {
		t.Fatal("post-recovery put lost")
	}
	_ = h
}

func TestCrashMidInsertNeverTearsIndex(t *testing.T) {
	// Cut power at a sweep of flush boundaries during inserts; the index
	// must recover with every slot either fully present or fully absent.
	for _, cut := range []int64{1, 5, 13, 37, 89, 211, 499} {
		dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
		h, err := core.Create(dev, core.DefaultOptions(core.LOG))
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		m, err := Create(h, th, 0, 32, 64)
		if err != nil {
			t.Fatal(err)
		}
		dev.CrashAfterFlushes(cut)
		for k := uint64(0); k < 300 && !dev.Crashed(); k++ {
			_ = m.Put(th, k, k^0xFFFF)
		}
		th.Ctx().Merge()
		dev.Crash()
		h2, _, err := core.Open(dev, core.DefaultOptions(core.LOG))
		if err != nil {
			t.Fatalf("cut=%d: heap recovery: %v", cut, err)
		}
		th2 := h2.NewThread()
		m2, err := Open(h2, 0)
		if err != nil {
			// The index header itself may not have committed for tiny
			// cuts; that is a consistent outcome.
			if cut < 64 {
				th2.Close()
				continue
			}
			t.Fatalf("cut=%d: index open: %v", cut, err)
		}
		// Every present entry must be fully intact (key matches blob).
		for k := uint64(0); k < 300; k++ {
			if v, ok := m2.Get(th2, k); ok && v != k^0xFFFF {
				t.Fatalf("cut=%d: torn entry for key %d: %d", cut, k, v)
			}
		}
		th2.Close()
	}
}

func TestConcurrentPutGet(t *testing.T) {
	_, h, th0, m := newMap(t, 512)
	defer th0.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := h.NewThread()
			defer th.Close()
			base := uint64(w) << 32
			for i := uint64(0); i < 2000; i++ {
				if err := m.Put(th, base|i, i); err != nil {
					errs <- err
					return
				}
				if v, ok := m.Get(th, base|i); !ok || v != i {
					errs <- errTorn
					return
				}
				if i%3 == 0 {
					if _, err := m.Delete(th, base|i); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errTorn = &tornError{}

type tornError struct{}

func (*tornError) Error() string { return "phash: wrong value" }

func TestOpenWithoutIndex(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(h, 7); err == nil {
		t.Fatal("open of empty slot must error")
	}
}
