// Package phash implements a crash-consistent persistent hash index in
// the spirit of the persistent hashing schemes the paper cites as
// allocator consumers (level hashing, Dash): a fixed bucket directory in
// persistent memory with 8-slot buckets, one-byte fingerprints to avoid
// probing full keys, allocator-backed value blobs, and overflow buckets
// chained through the allocator. Every insert allocates (and every delete
// frees) through the allocator under test, so the index doubles as an
// allocation workload.
//
// Persistent bucket layout (160 B, 2.5 cache lines):
//
//	[0,8)    presence bitmap (bits 0..7)
//	[8,16)   fingerprints, one byte per slot
//	[16,24)  overflow bucket PAddr (0 = none)
//	[24,32)  reserved
//	[32,160) 8 entries x (key u64, blob PAddr)
//
// Consistency: blob contents are persisted first, then the entry, then
// the fingerprint byte, and finally — the commit point — the presence
// bit (an 8-byte atomic persist). A crash before the commit leaves the
// slot empty and, under the LOG/IC variants, a recorded-but-unreachable
// blob that WAL replay or an Objects walk resolves.
package phash

import (
	"fmt"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// Slots per bucket.
const Slots = 8

// BucketBytes is the persistent footprint of one bucket.
const BucketBytes = 160

// Bucket field offsets.
const (
	bPresence = 0
	bFPs      = 8
	bOverflow = 16
	bEntries  = 32
)

// Header layout (one page, referenced from the root slot).
const (
	hMagic    = 0
	hNBuckets = 8
	hDir      = 16
	hBlobSize = 24

	phashMagic = 0x5048415348363421 // "PHASH64!"
)

const lockStripes = 64

// Map is a persistent hash index bound to a heap.
type Map struct {
	heap     alloc.Heap
	dev      pmem.Dev
	header   pmem.PAddr
	dir      pmem.PAddr
	nBuckets uint64
	blobSize uint64
	locks    [lockStripes]pmem.Resource
}

func hash64(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	key *= 0xC4CEB9FE1A85EC53
	key ^= key >> 33
	return key
}

func fp(h uint64) byte {
	b := byte(h >> 56)
	if b == 0 {
		b = 1
	}
	return b
}

// Create builds an empty index with nBuckets (rounded up to a power of
// two) whose header address persists in the heap's rootSlot. Each value
// is stored in a freshly allocated blob of blobSize bytes (>= 16).
func Create(h alloc.Heap, th alloc.Thread, rootSlot int, nBuckets int, blobSize uint64) (*Map, error) {
	if blobSize < 16 {
		blobSize = 16
	}
	n := uint64(1)
	for n < uint64(nBuckets) {
		n *= 2
	}
	c := th.Ctx()
	dev := h.Device()

	dir, err := th.Malloc(n * BucketBytes)
	if err != nil {
		return nil, err
	}
	dev.Zero(dir, int(n*BucketBytes))
	c.Flush(pmem.CatOther, dir, int(n*BucketBytes))

	header, err := th.MallocTo(h.RootSlot(rootSlot), 4096)
	if err != nil {
		_ = th.Free(dir)
		return nil, err
	}
	dev.WriteU64(header+hMagic, phashMagic)
	dev.WriteU64(header+hNBuckets, n)
	dev.WriteU64(header+hDir, uint64(dir))
	dev.WriteU64(header+hBlobSize, blobSize)
	c.Flush(pmem.CatOther, header, 32)
	c.Fence()

	return &Map{heap: h, dev: dev, header: header, dir: dir, nBuckets: n, blobSize: blobSize}, nil
}

// Open attaches to an existing index via the heap's root slot.
func Open(h alloc.Heap, rootSlot int) (*Map, error) {
	dev := h.Device()
	header := pmem.PAddr(dev.ReadU64(h.RootSlot(rootSlot)))
	if header == pmem.Null || dev.ReadU64(header+hMagic) != phashMagic {
		return nil, fmt.Errorf("phash: no index at root slot %d", rootSlot)
	}
	return &Map{
		heap:     h,
		dev:      dev,
		header:   header,
		dir:      pmem.PAddr(dev.ReadU64(header + hDir)),
		nBuckets: dev.ReadU64(header + hNBuckets),
		blobSize: dev.ReadU64(header + hBlobSize),
	}, nil
}

func (m *Map) bucketAddr(i uint64) pmem.PAddr {
	return m.dir + pmem.PAddr(i*BucketBytes)
}

func (m *Map) lockFor(h uint64) *pmem.Resource {
	return &m.locks[(h&(m.nBuckets-1))%lockStripes]
}

// findSlot scans the bucket chain for key; it returns the bucket and slot
// holding it, or (with found=false) the first free bucket/slot. Caller
// holds the stripe lock.
func (m *Map) findSlot(c *pmem.Ctx, key uint64, f byte) (b pmem.PAddr, slot int, found bool, freeB pmem.PAddr, freeSlot int) {
	freeB, freeSlot = pmem.Null, -1
	b = m.bucketAddr(hash64(key) & (m.nBuckets - 1))
	for b != pmem.Null {
		present := m.dev.ReadU64(b + bPresence)
		fps := m.dev.ReadU64(b + bFPs)
		c.Charge(pmem.CatSearch, 10)
		for s := 0; s < Slots; s++ {
			if present&(1<<s) == 0 {
				if freeSlot < 0 {
					freeB, freeSlot = b, s
				}
				continue
			}
			if byte(fps>>(8*s)) != f {
				continue
			}
			c.Charge(pmem.CatSearch, 4)
			if m.dev.ReadU64(b+bEntries+pmem.PAddr(s*16)) == key {
				return b, s, true, freeB, freeSlot
			}
		}
		next := pmem.PAddr(m.dev.ReadU64(b + bOverflow))
		if next == pmem.Null {
			return b, -1, false, freeB, freeSlot
		}
		b = next
	}
	return pmem.Null, -1, false, freeB, freeSlot
}

// Put inserts or updates key with value.
func (m *Map) Put(th alloc.Thread, key, value uint64) error {
	c := th.Ctx()
	h := hash64(key)
	f := fp(h)
	lk := m.lockFor(h)
	lk.Acquire(c)
	defer lk.Release(c)

	lastB, slot, found, freeB, freeSlot := m.findSlot(c, key, f)
	if found {
		blob := pmem.PAddr(m.dev.ReadU64(lastB + bEntries + pmem.PAddr(slot*16) + 8))
		c.PersistU64(pmem.CatOther, blob+8, value)
		c.Fence()
		return nil
	}
	if freeSlot < 0 {
		// Chain a fresh overflow bucket; link it only after it is zeroed
		// and persistent.
		nb, err := th.Malloc(BucketBytes)
		if err != nil {
			return err
		}
		m.dev.Zero(nb, BucketBytes)
		c.Flush(pmem.CatOther, nb, BucketBytes)
		c.Fence()
		c.PersistU64(pmem.CatMeta, lastB+bOverflow, uint64(nb))
		c.Fence()
		freeB, freeSlot = nb, 0
	}

	blob, err := th.Malloc(m.blobSize)
	if err != nil {
		return err
	}
	m.dev.WriteU64(blob, key)
	m.dev.WriteU64(blob+8, value)
	c.Flush(pmem.CatOther, blob, 16)

	ea := freeB + bEntries + pmem.PAddr(freeSlot*16)
	m.dev.WriteU64(ea, key)
	m.dev.WriteU64(ea+8, uint64(blob))
	c.Flush(pmem.CatOther, ea, 16)
	m.dev.WriteU8(freeB+bFPs+pmem.PAddr(freeSlot), f)
	c.Flush(pmem.CatMeta, freeB+bFPs+pmem.PAddr(freeSlot), 1)
	c.Fence()
	// Commit point.
	present := m.dev.ReadU64(freeB + bPresence)
	c.PersistU64(pmem.CatMeta, freeB+bPresence, present|1<<freeSlot)
	c.Fence()
	return nil
}

// Get returns the value stored under key.
func (m *Map) Get(th alloc.Thread, key uint64) (uint64, bool) {
	c := th.Ctx()
	h := hash64(key)
	lk := m.lockFor(h)
	lk.Acquire(c)
	defer lk.Release(c)
	b, slot, found, _, _ := m.findSlot(c, key, fp(h))
	if !found {
		return 0, false
	}
	blob := pmem.PAddr(m.dev.ReadU64(b + bEntries + pmem.PAddr(slot*16) + 8))
	return m.dev.ReadU64(blob + 8), true
}

// Delete removes key, freeing its blob. It reports whether the key was
// present.
func (m *Map) Delete(th alloc.Thread, key uint64) (bool, error) {
	c := th.Ctx()
	h := hash64(key)
	lk := m.lockFor(h)
	lk.Acquire(c)
	defer lk.Release(c)
	b, slot, found, _, _ := m.findSlot(c, key, fp(h))
	if !found {
		return false, nil
	}
	blob := pmem.PAddr(m.dev.ReadU64(b + bEntries + pmem.PAddr(slot*16) + 8))
	present := m.dev.ReadU64(b + bPresence)
	// Clearing the presence bit is the atomic delete.
	c.PersistU64(pmem.CatMeta, b+bPresence, present&^(1<<slot))
	c.Fence()
	return true, th.Free(blob)
}

// Len counts live entries by walking every bucket chain (test helper).
func (m *Map) Len() int {
	n := 0
	for i := uint64(0); i < m.nBuckets; i++ {
		for b := m.bucketAddr(i); b != pmem.Null; b = pmem.PAddr(m.dev.ReadU64(b + bOverflow)) {
			present := m.dev.ReadU64(b + bPresence)
			for ; present != 0; present &= present - 1 {
				n++
			}
		}
	}
	return n
}
