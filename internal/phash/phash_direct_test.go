package phash

import (
	"fmt"
	"sync"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

// TestConcurrentDeleteOverwriteDirect hammers the index's delete and
// overwrite paths from real goroutines on the direct (wall-clock)
// device, where stripe locks are plain mutexes and there is no virtual-
// time serialization to hide ordering bugs. Run under -race.
//
// Each worker owns a private key shard (insert → overwrite → delete →
// re-insert cycles, verified against a local model) and also churns a
// small shared hot band where the only invariants are: no errors, every
// read observes some worker's complete tagged value, and the final
// directory agrees with a cold reopen.
func TestConcurrentDeleteOverwriteDirect(t *testing.T) {
	dev, err := pmem.NewDirect(pmem.DirectConfig{Size: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	setup := h.NewThread()
	m, err := Create(h, setup, 0, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const (
		workers  = 8
		perShard = 200
		hotKeys  = 16
		rounds   = 400
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	models := make([]map[uint64]uint64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := h.NewThread()
			defer th.Close()
			model := make(map[uint64]uint64)
			models[w] = model
			base := uint64(1000 + w*perShard)
			fail := func(format string, args ...any) {
				errs[w] = fmt.Errorf("worker %d: %s", w, fmt.Sprintf(format, args...))
			}
			for r := 0; r < rounds; r++ {
				// Private shard: insert/overwrite/delete cycle.
				k := base + uint64(r%perShard)
				switch r % 4 {
				case 0, 1: // insert or overwrite
					v := uint64(r)<<16 | uint64(w)
					if err := m.Put(th, k, v); err != nil {
						fail("put %d: %v", k, err)
						return
					}
					model[k] = v
				case 2: // read back
					v, ok := m.Get(th, k)
					wantV, want := model[k]
					if ok != want || (ok && v != wantV) {
						fail("get %d = %d,%v want %d,%v", k, v, ok, wantV, want)
						return
					}
				default: // delete
					ok, err := m.Delete(th, k)
					if err != nil {
						fail("delete %d: %v", k, err)
						return
					}
					if _, want := model[k]; ok != want {
						fail("delete %d = %v, model %v", k, ok, want)
						return
					}
					delete(model, k)
				}
				// Shared hot band: concurrent overwrite/delete/get on the
				// same keys from every worker.
				hk := uint64(r % hotKeys)
				switch (r + w) % 3 {
				case 0:
					if err := m.Put(th, hk, uint64(w)*1e9+uint64(r)); err != nil {
						fail("hot put %d: %v", hk, err)
						return
					}
				case 1:
					if v, ok := m.Get(th, hk); ok && v%1e9 > rounds {
						fail("hot get %d: torn value %d", hk, v)
						return
					}
				default:
					if _, err := m.Delete(th, hk); err != nil {
						fail("hot delete %d: %v", hk, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Verify the final directory against the merged per-worker models
	// (private shards are disjoint).
	th := h.NewThread()
	live := 0
	for w := 0; w < workers; w++ {
		for k, want := range models[w] {
			v, ok := m.Get(th, k)
			if !ok || v != want {
				t.Fatalf("final: key %d = %d,%v want %d", k, v, ok, want)
			}
			live++
		}
	}
	hot := make(map[uint64]uint64)
	for hk := uint64(0); hk < hotKeys; hk++ {
		if v, ok := m.Get(th, hk); ok {
			hot[hk] = v
			live++
		}
	}
	if got := m.Len(); got != live {
		t.Fatalf("Len %d, want %d", got, live)
	}
	if f, ok := th.(alloc.Flusher); ok {
		f.Flush()
	}
	th.Close()

	// Cold reopen on the same device must agree exactly.
	h2, _, err := core.Open(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(h2, 0)
	if err != nil {
		t.Fatal(err)
	}
	th2 := h2.NewThread()
	defer th2.Close()
	if got := m2.Len(); got != live {
		t.Fatalf("reopened Len %d, want %d", got, live)
	}
	for w := 0; w < workers; w++ {
		for k, want := range models[w] {
			if v, ok := m2.Get(th2, k); !ok || v != want {
				t.Fatalf("reopened: key %d = %d,%v want %d", k, v, ok, want)
			}
		}
	}
	for hk, want := range hot {
		if v, ok := m2.Get(th2, hk); !ok || v != want {
			t.Fatalf("reopened hot: key %d = %d,%v want %d", hk, v, ok, want)
		}
	}
}
