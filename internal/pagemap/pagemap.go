// Package pagemap implements a lock-free two-level page map in the
// style of TCMalloc's PageMap: a direct-indexed radix over fixed-size
// page bases (64 KiB slabs here) whose entries are published with
// atomic pointers. Readers resolve an address to its page's value with
// two dependent loads and zero locks, which is what takes the global
// slab-index RWMutex out of the allocator's Free hot path.
//
// The root level is sized eagerly from the device size (a few hundred
// words even for multi-GiB devices); leaves of 512 entries are
// allocated on first store under a compare-and-swap, so sparse heaps
// stay cheap. Writers (slab create/release paths, which already hold an
// arena lock) use atomic stores; concurrent writers to *different*
// pages never contend, and a reader racing a writer sees either the old
// or the new pointer, never a torn value.
package pagemap

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"nvalloc/internal/pmem"
)

// leafBits selects the low radix width: 512 pages per leaf covers
// 32 MiB of heap per allocated leaf at 64 KiB pages.
const leafBits = 9

// leafSlots is the number of page entries per leaf.
const leafSlots = 1 << leafBits

type leaf[T any] struct {
	slots [leafSlots]atomic.Pointer[T]
}

// Map is a lock-free two-level page map from page base addresses to *T.
// The zero value is not usable; construct with New.
type Map[T any] struct {
	pageShift uint
	pages     uint64 // total addressable pages
	roots     []atomic.Pointer[leaf[T]]
	count     atomic.Int64
}

// New builds a map covering totalBytes of address space with the given
// page size (a power of two). Pages are identified by their base
// address; any address inside a page resolves to the page's entry.
func New[T any](totalBytes, pageBytes uint64) *Map[T] {
	if pageBytes == 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("pagemap: page size %d not a power of two", pageBytes))
	}
	pages := (totalBytes + pageBytes - 1) / pageBytes
	nLeaves := (pages + leafSlots - 1) / leafSlots
	return &Map[T]{
		pageShift: uint(bits.TrailingZeros64(pageBytes)),
		pages:     pages,
		roots:     make([]atomic.Pointer[leaf[T]], nLeaves),
	}
}

// index splits addr into (root index, leaf slot); ok is false when addr
// lies beyond the mapped address space.
func (m *Map[T]) index(addr pmem.PAddr) (ri int, si int, ok bool) {
	page := uint64(addr) >> m.pageShift
	if page >= m.pages {
		return 0, 0, false
	}
	return int(page >> leafBits), int(page & (leafSlots - 1)), true
}

// Lookup returns the entry of the page containing addr, or nil when the
// page has no entry or addr is outside the mapped space. It takes no
// locks and is safe against concurrent Store/Delete.
func (m *Map[T]) Lookup(addr pmem.PAddr) *T {
	ri, si, ok := m.index(addr)
	if !ok {
		return nil
	}
	l := m.roots[ri].Load()
	if l == nil {
		return nil
	}
	return l.slots[si].Load()
}

// Store publishes v as the entry of the page containing addr (nil v
// clears it, like Delete). The value must be fully initialized before
// Store: the atomic publish is the only ordering between the writer and
// lock-free readers.
func (m *Map[T]) Store(addr pmem.PAddr, v *T) {
	ri, si, ok := m.index(addr)
	if !ok {
		panic(fmt.Sprintf("pagemap: address %#x beyond mapped space", addr))
	}
	l := m.roots[ri].Load()
	for l == nil {
		if v == nil {
			return // clearing a page under an unallocated leaf: nothing to do
		}
		fresh := new(leaf[T])
		if m.roots[ri].CompareAndSwap(nil, fresh) {
			l = fresh
		} else {
			l = m.roots[ri].Load()
		}
	}
	old := l.slots[si].Swap(v)
	switch {
	case old == nil && v != nil:
		m.count.Add(1)
	case old != nil && v == nil:
		m.count.Add(-1)
	}
}

// Delete clears the entry of the page containing addr.
func (m *Map[T]) Delete(addr pmem.PAddr) { m.Store(addr, nil) }

// Len returns the number of live entries.
func (m *Map[T]) Len() int { return int(m.count.Load()) }

// Range invokes fn on every live entry in ascending page-base address
// order, stopping early when fn returns false. Entries stored or
// deleted concurrently may or may not be observed; entries present for
// the whole call are always visited exactly once. The deterministic
// order is load-bearing: recovery sweeps that previously iterated a Go
// map charged virtual time in randomized order.
func (m *Map[T]) Range(fn func(base pmem.PAddr, v *T) bool) {
	for ri := range m.roots {
		l := m.roots[ri].Load()
		if l == nil {
			continue
		}
		for si := 0; si < leafSlots; si++ {
			v := l.slots[si].Load()
			if v == nil {
				continue
			}
			base := pmem.PAddr((uint64(ri)<<leafBits | uint64(si)) << m.pageShift)
			if !fn(base, v) {
				return
			}
		}
	}
}
