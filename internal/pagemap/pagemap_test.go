package pagemap

import (
	"sync"
	"testing"

	"nvalloc/internal/pmem"
)

const page = 64 << 10

func TestLookupStoreDelete(t *testing.T) {
	m := New[int](1<<30, page)
	if got := m.Lookup(0); got != nil {
		t.Fatalf("empty map lookup = %v", got)
	}
	v := 7
	m.Store(3*page, &v)
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	// Any address inside the page resolves.
	for _, a := range []pmem.PAddr{3 * page, 3*page + 1, 4*page - 8} {
		if got := m.Lookup(a); got != &v {
			t.Fatalf("lookup %#x = %v", a, got)
		}
	}
	if got := m.Lookup(2*page + 8); got != nil {
		t.Fatalf("neighbour page lookup = %v", got)
	}
	m.Delete(3*page + 100)
	if m.Lookup(3*page) != nil || m.Len() != 0 {
		t.Fatalf("delete did not clear entry (len %d)", m.Len())
	}
}

func TestOutOfRange(t *testing.T) {
	m := New[int](32<<20, page)
	if m.Lookup(1<<40) != nil {
		t.Fatal("out-of-range lookup must be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range store must panic")
		}
	}()
	v := 1
	m.Store(1<<40, &v)
}

func TestRangeOrderedAndComplete(t *testing.T) {
	m := New[int](1<<30, page)
	// Spread entries across multiple leaves (leaf covers 512 pages).
	idxs := []uint64{0, 1, 511, 512, 513, 1024, 9000, 16383}
	vals := make([]*int, len(idxs))
	for i := len(idxs) - 1; i >= 0; i-- { // store in reverse order
		vals[i] = new(int)
		*vals[i] = int(idxs[i])
		m.Store(pmem.PAddr(idxs[i]*page), vals[i])
	}
	var seen []uint64
	m.Range(func(base pmem.PAddr, v *int) bool {
		seen = append(seen, uint64(base)/page)
		if *v != int(uint64(base)/page) {
			t.Fatalf("entry at %#x holds %d", base, *v)
		}
		return true
	})
	if len(seen) != len(idxs) {
		t.Fatalf("range visited %d entries, want %d", len(seen), len(idxs))
	}
	for i, want := range idxs {
		if seen[i] != want {
			t.Fatalf("range order: position %d = page %d, want %d", i, seen[i], want)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(pmem.PAddr, *int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestConcurrentPublishAndLookup(t *testing.T) {
	m := New[uint64](1<<30, page)
	const pages = 2048
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < pages; i += 4 {
				v := uint64(i)
				m.Store(pmem.PAddr(uint64(i)*page), &v)
			}
		}(w)
	}
	// Concurrent readers must only ever see nil or a fully published value.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < pages; i++ {
				if v := m.Lookup(pmem.PAddr(uint64(i)*page + 8)); v != nil && *v != uint64(i) {
					t.Errorf("page %d holds %d", i, *v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.Len() != pages {
		t.Fatalf("len = %d, want %d", m.Len(), pages)
	}
}
