package tcache

import (
	"testing"
	"testing/quick"
)

func TestPushPopLIFOWithinStripe(t *testing.T) {
	c := New(1, 16)
	c.Push(0, Block{Idx: 1})
	c.Push(0, Block{Idx: 2})
	b, ok := c.Pop()
	if !ok || b.Idx != 2 {
		t.Fatalf("want LIFO order, got %v", b)
	}
	b, _ = c.Pop()
	if b.Idx != 1 {
		t.Fatal("LIFO violated")
	}
	if _, ok := c.Pop(); ok {
		t.Fatal("empty cache must report no block")
	}
}

func TestRoundRobinAcrossStripes(t *testing.T) {
	c := New(4, 64)
	for stripe := 0; stripe < 4; stripe++ {
		for i := 0; i < 4; i++ {
			c.Push(stripe, Block{Idx: stripe*100 + i})
		}
	}
	// Sixteen pops must alternate stripes: 0,1,2,3,0,1,2,3,...
	for i := 0; i < 16; i++ {
		b, ok := c.Pop()
		if !ok {
			t.Fatal("pop failed")
		}
		if b.Idx/100 != i%4 {
			t.Fatalf("pop %d came from stripe %d, want %d", i, b.Idx/100, i%4)
		}
	}
}

func TestCursorSkipsEmptySubTcaches(t *testing.T) {
	c := New(4, 64)
	c.Push(2, Block{Idx: 42})
	b, ok := c.Pop()
	if !ok || b.Idx != 42 {
		t.Fatal("pop must find the only block")
	}
}

func TestCountersAndFull(t *testing.T) {
	c := New(2, 4)
	if !c.Empty() || c.Full() {
		t.Fatal("fresh cache state wrong")
	}
	for i := 0; i < 4; i++ {
		c.Push(i, Block{Idx: i})
	}
	if !c.Full() || c.Len() != 4 || c.Empty() {
		t.Fatal("full cache state wrong")
	}
	c.Pop()
	if c.Full() || c.Len() != 3 {
		t.Fatal("post-pop state wrong")
	}
}

func TestDrain(t *testing.T) {
	c := New(3, 16)
	for i := 0; i < 7; i++ {
		c.Push(i, Block{Idx: i})
	}
	got := c.Drain()
	if len(got) != 7 || c.Len() != 0 || !c.Empty() {
		t.Fatalf("drain returned %d blocks", len(got))
	}
	seen := map[int]bool{}
	for _, b := range got {
		if seen[b.Idx] {
			t.Fatal("duplicate in drain")
		}
		seen[b.Idx] = true
	}
}

func TestConservationProperty(t *testing.T) {
	// Whatever is pushed is popped exactly once, regardless of stripe mix.
	f := func(stripeSeq []uint8) bool {
		c := New(6, 1024)
		for i, s := range stripeSeq {
			c.Push(int(s), Block{Idx: i})
		}
		seen := map[int]bool{}
		for {
			b, ok := c.Pop()
			if !ok {
				break
			}
			if seen[b.Idx] {
				return false
			}
			seen[b.Idx] = true
		}
		return len(seen) == len(stripeSeq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateConfigs(t *testing.T) {
	c := New(0, 0) // clamped to 1 stripe, capacity >= stripes
	c.Push(5, Block{Idx: 9})
	if b, ok := c.Pop(); !ok || b.Idx != 9 {
		t.Fatal("degenerate cache broken")
	}
	if c.Stripes() != 1 || c.Cap() < 1 {
		t.Fatal("clamping wrong")
	}
}

func TestPopMagazineCapsAndPreservesBlocks(t *testing.T) {
	c := New(3, 64)
	for i := 0; i < 40; i++ {
		c.Push(i%3, Block{Idx: i})
	}
	var m Magazine
	if got := c.PopMagazine(&m, MagCap+10); got != MagCap {
		t.Fatalf("PopMagazine moved %d blocks, cap is %d", got, MagCap)
	}
	if c.Len() != 40-MagCap {
		t.Fatalf("cache Len=%d after magazine pop, want %d", c.Len(), 40-MagCap)
	}
	seen := map[int]bool{}
	for i := 0; i < m.N; i++ {
		if seen[m.Blocks[i].Idx] {
			t.Fatalf("block %d duplicated in magazine", m.Blocks[i].Idx)
		}
		seen[m.Blocks[i].Idx] = true
	}
	// Draining the rest must yield exactly the blocks the magazine missed.
	for {
		b, ok := c.Pop()
		if !ok {
			break
		}
		if seen[b.Idx] {
			t.Fatalf("block %d in both magazine and cache", b.Idx)
		}
		seen[b.Idx] = true
	}
	if len(seen) != 40 {
		t.Fatalf("magazine + cache held %d distinct blocks, want 40", len(seen))
	}
	// Popping from a drained cache moves nothing.
	if got := c.PopMagazine(&m, 4); got != 0 || m.N != 0 {
		t.Fatalf("empty cache produced a magazine of %d", got)
	}
}

func TestRemoteBufTakeReusesBackingArrays(t *testing.T) {
	var b RemoteBuf
	fill := func(n int) {
		for i := 0; i < n; i++ {
			b.Add(RemoteFree{Idx: i})
		}
	}
	fill(8)
	first := b.Take()
	if len(first) != 8 {
		t.Fatalf("Take returned %d frees", len(first))
	}
	fill(8)
	second := b.Take()
	fill(8)
	third := b.Take()
	// Steady state ping-pongs between two arrays: the third Take must
	// hand back the first's storage, not a fresh allocation.
	if &third[0] != &first[0] {
		t.Fatal("Take did not recycle the drained backing array")
	}
	if &second[0] == &first[0] {
		t.Fatal("Take handed out the array the caller still holds")
	}
	if b.Len() != 0 {
		t.Fatalf("Len=%d after Take", b.Len())
	}
}
