// Package tcache implements NVAlloc's thread-local cache with the
// interleaved layout of Section 5.1: per size class the cache is split
// into one sub-tcache per bit stripe, and a cursor round-robins across
// sub-tcaches so that consecutive allocations come from blocks whose
// bitmap bits live in different cache lines. With interleaving disabled
// the cache degenerates to a single LIFO list (the paper's baseline).
package tcache

// Block is a cached block reference: its slab-local logical index plus an
// opaque slab handle managed by the caller (the arena layer stores the
// *slab.Slab there).
type Block struct {
	Slab any
	Idx  int
}

// Cache is one thread's cache for one size class.
type Cache struct {
	subs   [][]Block // one LIFO stack per stripe
	cursor int
	count  int
	cap    int
}

// New creates a cache with the given number of sub-tcaches (stripes; 1
// disables interleaving) and total block capacity.
func New(stripes, capacity int) *Cache {
	if stripes < 1 {
		stripes = 1
	}
	if capacity < stripes {
		capacity = stripes
	}
	return &Cache{subs: make([][]Block, stripes), cap: capacity}
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return c.count }

// Cap returns the cache capacity.
func (c *Cache) Cap() int { return c.cap }

// Full reports whether a freed block should bypass the cache.
func (c *Cache) Full() bool { return c.count >= c.cap }

// Empty reports whether the cache needs a refill.
func (c *Cache) Empty() bool { return c.count == 0 }

// Push caches a block under the sub-tcache of its stripe (LIFO).
func (c *Cache) Push(stripe int, b Block) {
	s := stripe % len(c.subs)
	c.subs[s] = append(c.subs[s], b)
	c.count++
}

// Pop removes a block, rotating the cursor across sub-tcaches so
// consecutive allocations use bits in different cache lines. If the
// cursor's sub-tcache is empty the next non-empty one is used.
func (c *Cache) Pop() (Block, bool) {
	if c.count == 0 {
		return Block{}, false
	}
	n := len(c.subs)
	for i := 0; i < n; i++ {
		s := (c.cursor + i) % n
		if l := len(c.subs[s]); l > 0 {
			b := c.subs[s][l-1]
			c.subs[s] = c.subs[s][:l-1]
			c.count--
			c.cursor = (s + 1) % n
			return b, true
		}
	}
	return Block{}, false
}

// Drain removes and returns every cached block (used on thread exit to
// return blocks to their slabs).
func (c *Cache) Drain() []Block {
	out := make([]Block, 0, c.count)
	for s := range c.subs {
		out = append(out, c.subs[s]...)
		c.subs[s] = c.subs[s][:0]
	}
	c.count = 0
	return out
}

// Stripes returns the number of sub-tcaches.
func (c *Cache) Stripes() int { return len(c.subs) }

// MagCap is the fixed magazine capacity. A magazine moves this many
// blocks between a thread cache and a per-arena depot in one critical
// section, so cache overflow and refill cost one arena acquisition per
// MagCap blocks instead of one per block.
const MagCap = 16

// Magazine is a fixed-size batch of cached blocks, swapped whole between
// thread caches and arena depots (the magazine/depot design of classic
// multiprocessor allocators). Every block in a magazine is volatile-
// reserved in its slab: its persistent bitmap bit is already clear, so
// magazine transfers touch no persistent state and need no WAL entry or
// fence — a crash simply loses the reservations, which recovery already
// treats as free.
type Magazine struct {
	Blocks [MagCap]Block
	N      int
	// Pad to a cache-line multiple (392 → 448 bytes): magazines are
	// individually heap-allocated and swap between threads through arena
	// depots, so a trailing partial line would share a cache line with
	// whatever neighbouring allocation follows it — real-concurrency mode
	// turns that into measurable false sharing.
	_ [56]byte
}

// PopMagazine moves up to k blocks (capped at MagCap) out of the cache
// into m, using the same cursor rotation as Pop, and returns how many it
// moved. m's previous contents are discarded.
func (c *Cache) PopMagazine(m *Magazine, k int) int {
	if k > MagCap {
		k = MagCap
	}
	m.N = 0
	for m.N < k {
		b, ok := c.Pop()
		if !ok {
			break
		}
		m.Blocks[m.N] = b
		m.N++
	}
	return m.N
}

// RemoteFree is one buffered cross-arena free: the slab handle and the
// geometry snapshot (both opaque to this package, managed by the caller)
// the block index was resolved under, plus the block's address so a
// stale entry can be retried through the unbuffered path.
type RemoteFree struct {
	Slab any
	Geom any
	Addr uint64
	Idx  int
}

// RemoteBuf accumulates one thread's frees of blocks owned by a single
// remote arena, so they can be drained in one owner-arena critical
// section (a batched WAL append plus the bitmap clears, two fences
// total) instead of one acquisition and two fences per free.
//
// The buffer double-buffers its backing storage: Take hands the caller
// the filled array and swaps in the one returned by the previous Take,
// so the steady state allocates nothing. The caller must finish with a
// Take'd slice before calling Take again (true for the single-threaded
// drain, which never re-enters itself).
type RemoteBuf struct {
	frees []RemoteFree
	spare []RemoteFree
}

// Add appends one free and returns the new buffer length.
func (b *RemoteBuf) Add(f RemoteFree) int {
	b.frees = append(b.frees, f)
	return len(b.frees)
}

// Len returns the number of buffered frees.
func (b *RemoteBuf) Len() int { return len(b.frees) }

// Take removes and returns every buffered free, swapping in the other
// backing array for subsequent Adds.
func (b *RemoteBuf) Take() []RemoteFree {
	out := b.frees
	b.frees = b.spare[:0]
	b.spare = out[:0]
	return out
}
