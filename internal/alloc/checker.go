package alloc

import (
	"fmt"
	"sort"
	"sync"

	"nvalloc/internal/pmem"
)

// Checker wraps a Heap and verifies allocator invariants online: no two
// live allocations overlap, frees match a previous allocation exactly,
// and no allocation escapes the device. It is used by stress tests and
// is allocator-agnostic.
type Checker struct {
	Heap
	mu   sync.Mutex
	live map[pmem.PAddr]uint64 // addr -> requested size
	errs []string
}

// NewChecker wraps h.
func NewChecker(h Heap) *Checker {
	return &Checker{Heap: h, live: make(map[pmem.PAddr]uint64)}
}

// Errors returns every invariant violation observed so far.
func (c *Checker) Errors() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.errs...)
}

// LiveCount returns the number of live allocations.
func (c *Checker) LiveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.live)
}

func (c *Checker) fail(format string, args ...any) {
	c.errs = append(c.errs, fmt.Sprintf(format, args...))
}

func (c *Checker) noteAlloc(p pmem.PAddr, size uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p == pmem.Null {
		c.fail("allocation returned null for size %d", size)
		return
	}
	if uint64(p)+size > c.Device().Size() {
		c.fail("allocation [%#x,+%d) escapes the device", p, size)
	}
	if prev, ok := c.live[p]; ok {
		c.fail("address %#x returned twice (live size %d)", p, prev)
		return
	}
	// Overlap check against neighbours (live is address-keyed; scan the
	// closest entries). A full interval tree is overkill for tests.
	for a, sz := range c.live {
		if p < a+pmem.PAddr(sz) && a < p+pmem.PAddr(size) {
			c.fail("allocation [%#x,+%d) overlaps live [%#x,+%d)", p, size, a, sz)
			break
		}
	}
	c.live[p] = size
}

func (c *Checker) noteFree(p pmem.PAddr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.live[p]; !ok {
		c.fail("free of address %#x that is not live", p)
		return false
	}
	delete(c.live, p)
	return true
}

// NewThread wraps the underlying heap's thread with checking.
func (c *Checker) NewThread() Thread {
	return &checkedThread{Thread: c.Heap.NewThread(), c: c}
}

// Snapshot returns the live set sorted by address (for post-recovery
// comparison).
func (c *Checker) Snapshot() []pmem.PAddr {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]pmem.PAddr, 0, len(c.live))
	for a := range c.live {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type checkedThread struct {
	Thread
	c *Checker
}

func (t *checkedThread) Malloc(size uint64) (pmem.PAddr, error) {
	p, err := t.Thread.Malloc(size)
	if err == nil {
		t.c.noteAlloc(p, size)
	}
	return p, err
}

func (t *checkedThread) Free(addr pmem.PAddr) error {
	// Deregister BEFORE the underlying free: once the allocator releases
	// the block, another thread may legally receive the same address, and
	// its noteAlloc must not race with our deregistration.
	known := t.c.noteFree(addr)
	err := t.Thread.Free(addr)
	if err != nil && known {
		// The free failed; restore the registration.
		t.c.mu.Lock()
		t.c.live[addr] = 0
		t.c.mu.Unlock()
	}
	return err
}

func (t *checkedThread) MallocTo(slot pmem.PAddr, size uint64) (pmem.PAddr, error) {
	p, err := t.Thread.MallocTo(slot, size)
	if err == nil {
		t.c.noteAlloc(p, size)
	}
	return p, err
}

func (t *checkedThread) FreeFrom(slot pmem.PAddr) error {
	addr := pmem.PAddr(t.c.Device().ReadU64(slot))
	known := false
	if addr != pmem.Null {
		known = t.c.noteFree(addr)
	}
	err := t.Thread.FreeFrom(slot)
	if err != nil && known {
		t.c.mu.Lock()
		t.c.live[addr] = 0
		t.c.mu.Unlock()
	}
	return err
}
