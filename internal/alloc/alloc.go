// Package alloc defines the allocator-neutral interface shared by NVAlloc
// and the five baseline persistent allocators, so that every benchmark and
// application in this repository can run against any of them.
package alloc

import (
	"errors"

	"nvalloc/internal/pmem"
)

// Common allocator errors.
var (
	// ErrOutOfMemory is returned when the device cannot satisfy a request.
	ErrOutOfMemory = errors.New("alloc: out of persistent memory")
	// ErrBadAddress is returned when freeing an address the allocator does
	// not recognize as allocated.
	ErrBadAddress = errors.New("alloc: address was not allocated")
	// ErrBadSize is returned for zero or over-large request sizes.
	ErrBadSize = errors.New("alloc: invalid allocation size")
	// ErrClosed is returned when using a closed heap.
	ErrClosed = errors.New("alloc: heap is closed")
)

// Thread is a per-worker allocation handle. A Thread must be used by a
// single goroutine; its Ctx carries the worker's virtual clock.
type Thread interface {
	// Malloc allocates size bytes and returns its persistent address.
	Malloc(size uint64) (pmem.PAddr, error)
	// Free releases a previously allocated block or extent.
	Free(addr pmem.PAddr) error
	// MallocTo atomically allocates size bytes and persists the result's
	// address into the persistent pointer slot at slot, so that a crash
	// leaves either no allocation or a reachable one (the paper's
	// nvalloc_malloc_to).
	MallocTo(slot pmem.PAddr, size uint64) (pmem.PAddr, error)
	// FreeFrom atomically frees the block referenced by the persistent
	// pointer slot and clears the slot (the paper's nvalloc_free_from).
	FreeFrom(slot pmem.PAddr) error
	// Ctx exposes the worker's pmem context for instrumentation.
	Ctx() *pmem.Ctx
	// Close merges the thread's statistics into the device and returns
	// cached blocks where the allocator supports it.
	Close()
}

// Flusher is implemented by threads that buffer deferred work — batched
// remote frees, most notably. Flush drains every buffer, so that all
// operations acknowledged before the call are persistent (recoverable)
// afterwards. Close flushes implicitly; callers that keep a thread open
// across an application-level durability point flush explicitly.
type Flusher interface {
	Flush()
}

// Heap is a persistent heap instance bound to a device.
type Heap interface {
	// NewThread registers a worker with the heap.
	NewThread() Thread
	// Device returns the underlying persistent memory device.
	Device() pmem.Dev
	// RootSlot returns the persistent address of root pointer slot i.
	// Roots anchor application data across restarts and are the scan
	// origins for GC-based recovery.
	RootSlot(i int) pmem.PAddr
	// Used returns the bytes of persistent memory currently committed to
	// live data, metadata regions and partially used slabs (the paper's
	// "memory consumption").
	Used() uint64
	// Peak returns the high-water mark of Used since creation or the last
	// ResetPeak.
	Peak() uint64
	// ResetPeak restarts peak tracking from the current usage.
	ResetPeak()
	// Close performs a normal shutdown (persisting the clean-shutdown
	// flag where the allocator has one).
	Close() error
}

// Recoverable is implemented by heaps that support post-crash recovery.
type Recoverable interface {
	// Recover rebuilds volatile metadata from the device's persistent
	// image and resolves leaks per the allocator's consistency model.
	// It returns the virtual nanoseconds the recovery consumed.
	Recover() (int64, error)
}

// NumRootSlots is how many persistent root pointers every heap provides.
const NumRootSlots = 64
