package alloc_test

import (
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/core"
	"nvalloc/internal/pmem"
)

func TestCheckerDetectsViolationsAndPassesCleanUse(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	c := alloc.NewChecker(h)
	th := c.NewThread()
	defer th.Close()

	p1, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := th.MallocTo(c.RootSlot(0), 128)
	if err != nil {
		t.Fatal(err)
	}
	_ = p2
	if c.LiveCount() != 2 {
		t.Fatalf("live %d", c.LiveCount())
	}
	if err := th.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := th.FreeFrom(c.RootSlot(0)); err != nil {
		t.Fatal(err)
	}
	if errs := c.Errors(); len(errs) != 0 {
		t.Fatalf("clean usage reported violations: %v", errs)
	}
	if c.LiveCount() != 0 {
		t.Fatal("live set not drained")
	}
	if got := c.Snapshot(); len(got) != 0 {
		t.Fatal("snapshot should be empty")
	}
}

// brokenHeap returns overlapping allocations to prove the checker works.
type brokenThread struct {
	alloc.Thread
	n int
}

func (b *brokenThread) Malloc(size uint64) (pmem.PAddr, error) {
	b.n++
	if b.n > 1 {
		return 0x10000, nil // same address every time
	}
	return 0x10000, nil
}

type brokenHeap struct{ alloc.Heap }

func (b *brokenHeap) NewThread() alloc.Thread {
	return &brokenThread{Thread: b.Heap.NewThread()}
}

func TestCheckerCatchesDoubleHandout(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	h, err := core.Create(dev, core.DefaultOptions(core.LOG))
	if err != nil {
		t.Fatal(err)
	}
	c := alloc.NewChecker(&brokenHeap{h})
	th := c.NewThread()
	_, _ = th.Malloc(64)
	_, _ = th.Malloc(64)
	if len(c.Errors()) == 0 {
		t.Fatal("checker missed a double handout")
	}
}
