package sizeclass

import (
	"testing"
	"testing/quick"
)

func TestTableIsSortedAndBounded(t *testing.T) {
	if NumClasses() == 0 {
		t.Fatal("no classes")
	}
	if Size(0) != 8 {
		t.Fatalf("first class must be 8, got %d", Size(0))
	}
	for c := 1; c < NumClasses(); c++ {
		if Size(c) <= Size(c-1) {
			t.Fatalf("classes not strictly increasing at %d", c)
		}
	}
	if Size(NumClasses()-1) != SmallMax {
		t.Fatalf("last class must be SmallMax, got %d", Size(NumClasses()-1))
	}
}

func TestClassRoundsUpTightly(t *testing.T) {
	for size := uint32(1); size <= SmallMax; size++ {
		c := Class(size)
		if Size(c) < size {
			t.Fatalf("class %d (%d B) too small for %d", c, Size(c), size)
		}
		if c > 0 && Size(c-1) >= size {
			t.Fatalf("class for %d not minimal: class %d=%d, prev=%d", size, c, Size(c), Size(c-1))
		}
	}
}

func TestInternalFragmentationBound(t *testing.T) {
	// Waste must never exceed 25% for sizes >= 32.
	for size := uint32(32); size <= SmallMax; size++ {
		r := Round(size)
		if float64(r-size) > 0.25*float64(size)+0.0001 {
			t.Fatalf("size %d rounds to %d: waste > 25%%", size, r)
		}
	}
}

func TestRoundProperty(t *testing.T) {
	f := func(raw uint16) bool {
		size := uint32(raw)%SmallMax + 1
		r := Round(size)
		return r >= size && Class(r) == Class(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSize(t *testing.T) {
	if Class(0) != 0 {
		t.Fatal("zero size must map to the smallest class")
	}
}

func TestIsSmall(t *testing.T) {
	if !IsSmall(1) || !IsSmall(SmallMax) {
		t.Fatal("small sizes misclassified")
	}
	if IsSmall(0) || IsSmall(SmallMax+1) {
		t.Fatal("non-small sizes misclassified")
	}
}

func TestKnownClasses(t *testing.T) {
	// Spot-check jemalloc-style spacing: 40,48,56,64 then 80,96,112,128.
	want := map[uint32]uint32{
		33: 40, 41: 48, 64: 64, 65: 80, 100: 112, 129: 160,
		257: 320, 1025: 1280, 8193: 10240,
	}
	for in, out := range want {
		if got := Round(in); got != out {
			t.Errorf("Round(%d) = %d, want %d", in, got, out)
		}
	}
}
