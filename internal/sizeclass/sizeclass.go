// Package sizeclass implements the jemalloc-style size-class table used by
// every small allocator in this repository. Classes cover 8 B through the
// small-allocation limit (16 KiB); within each power-of-two "group" there
// are four classes spaced a quarter of the group apart, which bounds
// internal fragmentation at 25%.
package sizeclass

// SmallMax is the largest size served by slabs; anything bigger goes to
// the large allocator, matching the paper's 16 KB threshold.
const SmallMax = 16 << 10

// Quantum is the minimum allocation granularity and alignment.
const Quantum = 8

var (
	classes []uint32 // class index -> block size
	lookup  []uint8  // ceil(size/Quantum) -> class index, for size <= 2048
)

func init() {
	// 8, 16, 24, 32, then groups of four: 40..64, 80..128, 160..256, ...
	sizes := []uint32{8, 16, 24, 32}
	for base := uint32(32); base < SmallMax; base *= 2 {
		step := base / 4
		for i := 1; i <= 4; i++ {
			sizes = append(sizes, base+step*uint32(i))
		}
	}
	classes = sizes

	lookup = make([]uint8, 2048/Quantum+1)
	ci := 0
	for q := 1; q <= 2048/Quantum; q++ {
		sz := uint32(q * Quantum)
		for classes[ci] < sz {
			ci++
		}
		lookup[q] = uint8(ci)
	}
}

// NumClasses is the number of small size classes.
func NumClasses() int { return len(classes) }

// Size returns the block size of class c.
func Size(c int) uint32 { return classes[c] }

// Class returns the smallest size class whose block size is >= size.
// size must be in (0, SmallMax].
func Class(size uint32) int {
	if size == 0 {
		size = 1
	}
	if size <= 2048 {
		return int(lookup[(size+Quantum-1)/Quantum])
	}
	// Binary search the tail; it is short (a few groups).
	lo, hi := 0, len(classes)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if classes[mid] < size {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Round returns size rounded up to its size-class block size.
func Round(size uint32) uint32 { return classes[Class(size)] }

// IsSmall reports whether size is served by the small allocator.
func IsSmall(size uint64) bool { return size > 0 && size <= SmallMax }
