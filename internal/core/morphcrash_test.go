package core

import (
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// morphCrashSetup builds a deterministic heap on the verge of morphing:
// one arena, a small class filled then mostly freed so its slabs drop
// under the SU occupancy threshold, and survivors published through root
// slots so recovery can be checked against them. The thread's context is
// merged before returning, so device-level flush counts from here on
// belong entirely to the morph phase.
func morphCrashSetup(t *testing.T, v Variant) (*pmem.Device, *Heap, alloc.Thread) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 256 << 20, Strict: true})
	opts := DefaultOptions(v)
	opts.Arenas = 1
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	var ptrs []pmem.PAddr
	for i := 0; i < 3000; i++ {
		p, err := th.Malloc(100)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	slot := 0
	for i, p := range ptrs {
		if i%64 == 0 && slot < alloc.NumRootSlots {
			c := th.Ctx()
			c.PersistU64(pmem.CatOther, h.RootSlot(slot), uint64(p))
			dev.WriteU64(p, uint64(0x5AB0+i))
			c.Flush(pmem.CatOther, p, 8)
			slot++
			continue
		}
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	th.Ctx().Merge()
	return dev, h, th
}

// morphTrigger allocates a different class until the arena records a
// morph (or the armed power cut fires). Returns the number of
// allocations issued.
func morphTrigger(h *Heap, th alloc.Thread) int {
	dev := h.Device()
	i := 0
	for ; i < 2000 && !dev.Crashed() && h.arenas[0].morphs == 0; i++ {
		_, _ = th.Malloc(1000)
	}
	// A few more so the morphed slab actually hands out new-class blocks
	// before the cut window closes.
	for j := 0; j < 8 && !dev.Crashed(); j++ {
		_, _ = th.Malloc(1000)
	}
	th.Ctx().Merge()
	return i
}

// TestMorphCrashSweep cuts power at every flush boundary inside the
// window that contains a slab morph — before the transform, between each
// flag step of the §5.2 protocol, and just after — and verifies each
// variant's recovery either completes or undoes the morph without losing
// published objects.
func TestMorphCrashSweep(t *testing.T) {
	for _, v := range []Variant{LOG, GC, IC} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			// Measure the morph flush window on an uninterrupted run.
			dev, h, th := morphCrashSetup(t, v)
			before := dev.Stats().Flushes
			morphTrigger(h, th)
			if h.arenas[0].morphs == 0 {
				t.Skip("workload did not trigger a morph; geometry changed?")
			}
			window := int64(dev.Stats().Flushes - before)
			if window <= 0 {
				t.Fatalf("morph phase issued no flushes")
			}
			maxCuts := int64(150)
			if testing.Short() {
				maxCuts = 12 // thinned sweep for -short (and the -race CI job)
			}
			stride := (window + maxCuts - 1) / maxCuts
			for cut := int64(1); cut <= window; cut += stride {
				dev2, h2, th2 := morphCrashSetup(t, v)
				dev2.CrashAfterFlushes(cut)
				morphTrigger(h2, th2)
				dev2.Crash()
				h3, _, err := Open(dev2, DefaultOptions(v))
				if err != nil {
					t.Fatalf("cut=%d/%d: recovery failed: %v", cut, window, err)
				}
				verifyAfterRecovery(t, cut, h3)
			}
		})
	}
}
