package core

import (
	"sort"

	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
)

// This file implements the paper's stated future-work variant: internal
// collection (Section 4.1 / Section 7, "Allocators using internal
// collection"). PMDK's non-transactional atomic allocations rely on the
// allocator being able to enumerate every live object (POBJ_FIRST /
// POBJ_NEXT), so users "never lose a reference" and no write-ahead log is
// needed: after a crash the application walks the collection and decides
// what to keep.
//
// In NVAlloc-IC the small path persists bitmap updates eagerly (like
// NVAlloc-LOG, with interleaved mapping so the flushes stay cheap) but
// writes no WAL; the bookkeeping log already enumerates extents. Objects
// iterates every live allocation in address order.

// Object describes one live allocation reported by Objects.
type Object struct {
	Addr pmem.PAddr
	Size uint64
	// Slab reports whether the object is a small block (true) or a large
	// extent (false).
	Slab bool
}

// Objects invokes fn on every live allocation — small blocks via slab
// bitmaps, large objects via the extent allocator — in address order,
// stopping early if fn returns false. It is the internal-collection
// iteration interface (PMDK's POBJ_FIRST/POBJ_NEXT); after a crash of an
// NVAlloc-IC heap it enumerates exactly the allocations whose metadata
// had been persisted.
//
// The snapshot is consistent per slab/extent but not globally atomic;
// quiesce mutators for an exact enumeration.
func (h *Heap) Objects(fn func(Object) bool) {
	// Collect slab bases and extents, then walk in address order (the
	// page map already ranges in ascending base order).
	slabs := make([]*slab.Slab, 0, h.slabs.Len())
	h.slabs.Range(func(_ pmem.PAddr, s *slab.Slab) bool {
		slabs = append(slabs, s)
		return true
	})

	h.large.Res.Lock()
	exts := make([]Object, 0, len(h.large.Activated()))
	for addr, v := range h.large.Activated() {
		if !v.Slab {
			exts = append(exts, Object{Addr: addr, Size: v.Size, Slab: false})
		}
	}
	h.large.Res.Unlock()
	// Shard sub-allocations live inside leases whose VEHs are hidden from
	// the activated walk; enumerate them through their own pools.
	if h.shards != nil {
		h.shards.Objects(func(addr pmem.PAddr, size uint64) bool {
			exts = append(exts, Object{Addr: addr, Size: size, Slab: false})
			return true
		})
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].Addr < exts[j].Addr })

	ei := 0
	emit := func(o Object) bool { return fn(o) }
	for _, s := range slabs {
		// Flush extents that precede this slab.
		for ei < len(exts) && exts[ei].Addr < s.Base {
			if !emit(exts[ei]) {
				return
			}
			ei++
		}
		s.Mu.Lock()
		var objs []Object
		for idx := 0; idx < s.Blocks; idx++ {
			// Reserved (tcache) blocks are not live objects; new-class
			// blocks pinned by old-class survivors are reported through
			// the index table instead.
			if s.BlockAllocated(idx) && s.OverlapCount(idx) == 0 && !s.BlockReserved(idx) {
				objs = append(objs, Object{Addr: s.BlockAddr(idx), Size: uint64(s.BlockSize), Slab: true})
			}
		}
		if s.IsSlabIn() {
			oldSize := s.OldBlockSize()
			for _, oldIdx := range s.OldIndices() {
				objs = append(objs, Object{Addr: s.OldBlockAddr(oldIdx), Size: oldSize, Slab: true})
			}
		}
		s.Mu.Unlock()
		sort.Slice(objs, func(i, j int) bool { return objs[i].Addr < objs[j].Addr })
		for _, o := range objs {
			if !emit(o) {
				return
			}
		}
	}
	for ; ei < len(exts); ei++ {
		if !emit(exts[ei]) {
			return
		}
	}
}
