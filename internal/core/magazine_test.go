package core

import (
	"testing"

	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/slab"
)

// parkDepot allocates and then frees n blocks of the given size on one
// thread, overflowing its tcache so evictions park magazines in the
// arena depot. Returns the freed addresses.
func parkDepot(t *testing.T, th *Thread, n int, size uint64) []pmem.PAddr {
	t.Helper()
	addrs := make([]pmem.PAddr, 0, n)
	for i := 0; i < n; i++ {
		a, err := th.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := th.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	return addrs
}

func TestMagazineEvictionParksDepotAndRefillConsumes(t *testing.T) {
	for _, v := range []Variant{LOG, GC} {
		t.Run(v.String(), func(t *testing.T) {
			_, h := newHeap(t, v, func(o *Options) { o.Arenas = 1 })
			th := h.NewThread().(*Thread)
			defer th.Close()
			class := sizeclass.Class(64)
			addrs := parkDepot(t, th, 200, 64)

			a := h.arenas[0]
			parked := len(a.depots[class])
			if parked == 0 {
				t.Fatal("200 frees through a 24-block tcache parked no magazine")
			}
			if parked > depotMags {
				t.Fatalf("depot holds %d magazines, bound is %d", parked, depotMags)
			}

			// Refill must consume the parked magazines before carving fresh
			// blocks out of slabs.
			for range addrs {
				if _, err := th.Malloc(64); err != nil {
					t.Fatal(err)
				}
			}
			if got := len(a.depots[class]); got != 0 {
				t.Fatalf("depot still holds %d magazines after refilling %d blocks", got, len(addrs))
			}
		})
	}
}

func TestDepotBoundedWithBypassFallback(t *testing.T) {
	_, h := newHeap(t, LOG, func(o *Options) { o.Arenas = 1 })
	th := h.NewThread().(*Thread)
	defer th.Close()
	class := sizeclass.Class(64)
	// Far more frees than tcache + full depot can hold: the overflow must
	// take the per-block bypass path, and the depot must stay bounded.
	addrs := parkDepot(t, th, 600, 64)
	a := h.arenas[0]
	if got := len(a.depots[class]); got > depotMags {
		t.Fatalf("depot grew to %d magazines, bound is %d", got, depotMags)
	}
	seen := map[pmem.PAddr]bool{}
	for _, addr := range addrs {
		if seen[addr] {
			t.Fatalf("address %#x freed twice", addr)
		}
		seen[addr] = true
	}
}

func TestLastThreadCloseDrainsDepots(t *testing.T) {
	_, h := newHeap(t, LOG, func(o *Options) { o.Arenas = 1 })
	th := h.NewThread().(*Thread)
	addrs := parkDepot(t, th, 200, 64)
	th.Close()

	a := h.arenas[0]
	for class, d := range a.depots {
		if len(d) != 0 {
			t.Fatalf("class %d depot still holds %d magazines after last thread closed", class, len(d))
		}
	}
	for _, addr := range addrs {
		if h.BlockAllocated(addr) {
			t.Fatalf("freed block %#x still allocated after last thread closed", addr)
		}
	}
	h.slabs.Range(func(_ pmem.PAddr, s *slab.Slab) bool {
		s.Mu.Lock()
		defer s.Mu.Unlock()
		if s.Reserved != 0 {
			t.Fatalf("slab %#x has %d reservations after last thread closed", s.Base, s.Reserved)
		}
		return true
	})
}

func TestHeapCloseDrainsLeakedDepots(t *testing.T) {
	// A worker parks magazines and closes; an idle thread stays open so
	// the last-thread drain never fires. Heap.Close must still unreserve
	// the depot blocks before the GC variant's bitmap sync, or the parked
	// reservations would be persisted as allocated.
	dev, h := newHeap(t, GC, func(o *Options) { o.Arenas = 1 })
	idle := h.NewThread()
	_ = idle // deliberately left open across Close
	worker := h.NewThread().(*Thread)
	addrs := parkDepot(t, worker, 200, 64)
	worker.Close()

	a := h.arenas[0]
	parked := 0
	for _, d := range a.depots {
		parked += len(d)
	}
	if parked == 0 {
		t.Skip("no magazines parked; eviction path not reached")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	for class, d := range a.depots {
		if len(d) != 0 {
			t.Fatalf("class %d depot still holds %d magazines after Heap.Close", class, len(d))
		}
	}
	h2, _, err := Open(dev, DefaultOptions(GC))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if h2.BlockAllocated(addr) {
			t.Fatalf("freed block %#x allocated after shutdown recovery (depot reservation persisted)", addr)
		}
	}
}
