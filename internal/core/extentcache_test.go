package core

import (
	"testing"

	"nvalloc/internal/extent"
	"nvalloc/internal/pmem"
)

// mixedRun drives one thread through a deterministic small+large
// malloc/free mix and returns the thread's final virtual clock.
func mixedRun(t *testing.T, h *Heap) int64 {
	t.Helper()
	th := h.NewThread()
	defer th.Close()
	var small, large []pmem.PAddr
	for i := 0; i < 6000; i++ {
		switch i % 7 {
		case 6:
			p, err := th.Malloc(uint64(32<<10 + (i%8)*(8<<10))) // 32..88 KiB
			if err != nil {
				t.Fatal(err)
			}
			large = append(large, p)
		default:
			p, err := th.Malloc(uint64(48 + i%512))
			if err != nil {
				t.Fatal(err)
			}
			small = append(small, p)
		}
		if i%3 == 2 && len(small) > 0 {
			if err := th.Free(small[len(small)-1]); err != nil {
				t.Fatal(err)
			}
			small = small[:len(small)-1]
		}
		if i%31 == 30 && len(large) > 0 {
			if err := th.Free(large[0]); err != nil {
				t.Fatal(err)
			}
			large = large[1:]
		}
	}
	for _, p := range small {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range large {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	return th.Ctx().Now
}

// TestExtentCacheDeterminism: two identical single-thread runs of the
// cached configuration must produce bit-identical virtual time, and the
// cached-vs-nocache delta must stay within the documented charge-model
// band (batched refills reorder extent carving and move record flushes
// off the allocation critical path, but charge the same work overall).
func TestExtentCacheDeterminism(t *testing.T) {
	run := func(nocache bool) int64 {
		dev := pmem.New(pmem.Config{Size: 256 << 20})
		opts := DefaultOptions(LOG)
		opts.NoExtentCache = nocache
		h, err := Create(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		return mixedRun(t, h)
	}
	a1, a2 := run(false), run(false)
	if a1 != a2 {
		t.Fatalf("cached config nondeterministic: %d vs %d ns", a1, a2)
	}
	base := run(true)
	ratio := float64(a1) / float64(base)
	// The batching charge model (DESIGN.md §8): same flushes and fences
	// per recorded extent, fewer fences per slab batch, different carve
	// order. Single-thread totals may differ slightly but not structurally.
	if ratio < 0.70 || ratio > 1.30 {
		t.Fatalf("cached/nocache virtual-time ratio %.3f outside charge-model band (cached=%d base=%d)", ratio, a1, base)
	}
}

// TestGlobalLockAmortization: the number of global large-allocator lock
// acquisitions per slab created must be amortized below 1 (the legacy
// path took 3 per slab: AllocDeferRecord + Record + Free).
func TestGlobalLockAmortization(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 256 << 20})
	h, err := Create(dev, DefaultOptions(LOG))
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	defer th.Close()
	var ps []pmem.PAddr
	for i := 0; i < 20000; i++ {
		p, err := th.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	slabs := h.SlabCreates()
	if slabs < 8 {
		t.Fatalf("workload created only %d slabs; not a refill test", slabs)
	}
	var largeAcq uint64
	for _, r := range h.Contention() {
		if r.Name == "large" {
			largeAcq = r.Acquires
		}
	}
	if largeAcq >= slabs {
		t.Fatalf("%d global acquisitions for %d slabs; want amortized < 1 per slab", largeAcq, slabs)
	}
	for _, p := range ps {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardRoutingAndFallback: moderate large allocations route through
// the shard pools; oversized ones take the global lock; with the cache
// disabled everything is global. Frees resolve correctly either way.
func TestShardRoutingAndFallback(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 256 << 20})
	h, err := Create(dev, DefaultOptions(LOG))
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	defer th.Close()

	inShard, err := th.Malloc(40 << 10)
	if err != nil {
		t.Fatal(err)
	}
	global, err := th.Malloc(extent.MaxShardAlloc + 4096)
	if err != nil {
		t.Fatal(err)
	}
	shardAcq := func() (n uint64) {
		for _, r := range h.Contention() {
			if len(r.Name) > 5 && r.Name[:5] == "shard" {
				n += r.Acquires
			}
		}
		return
	}
	if shardAcq() == 0 {
		t.Fatal("40 KiB allocation did not touch a shard pool")
	}
	if err := th.Free(inShard); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(global); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(global); err == nil {
		t.Fatal("double free of global extent must error")
	}
	if err := th.Free(inShard); err == nil {
		t.Fatal("double free of shard extent must error")
	}
}

// TestCacheBackPressure: a heap whose free space is tied up in sibling
// arena caches must flush them rather than report a spurious OOM, and a
// full malloc/free/malloc cycle over the device must succeed twice.
func TestCacheBackPressure(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 48 << 20})
	opts := DefaultOptions(LOG)
	opts.Arenas = 4
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		th := h.NewThread()
		var ps []pmem.PAddr
		for {
			p, err := th.Malloc(256 << 10)
			if err != nil {
				break
			}
			ps = append(ps, p)
		}
		if len(ps) < 64 {
			t.Fatalf("round %d: only %d×256 KiB allocated on a 48 MiB device", round, len(ps))
		}
		for _, p := range ps {
			if err := th.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		th.Close()
	}
}

// The shard-heavy crash sweep (40–480 KiB published objects across power
// cuts) now runs at every flush boundary in the crash-point model
// checker: internal/crashmc's TestCrashSweepShards.
