package core

import (
	"sort"
	"testing"

	"nvalloc/internal/pmem"
)

func objectSet(h *Heap) map[pmem.PAddr]uint64 {
	out := map[pmem.PAddr]uint64{}
	h.Objects(func(o Object) bool {
		out[o.Addr] = o.Size
		return true
	})
	return out
}

func TestObjectsEnumeratesExactlyLiveSet(t *testing.T) {
	_, h := newHeap(t, IC, nil)
	th := h.NewThread()
	defer th.Close()
	want := map[pmem.PAddr]uint64{}
	var order []pmem.PAddr
	for i := 0; i < 3000; i++ {
		size := uint64(16 + i%700)
		if i%40 == 0 {
			size = 64 << 10 // some large objects
		}
		p, err := th.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		want[p] = size
		order = append(order, p)
	}
	// Free a third.
	for i := 0; i < len(order); i += 3 {
		if err := th.Free(order[i]); err != nil {
			t.Fatal(err)
		}
		delete(want, order[i])
	}
	got := objectSet(h)
	if len(got) != len(want) {
		t.Fatalf("Objects reported %d, want %d", len(got), len(want))
	}
	for p := range want {
		sz, ok := got[p]
		if !ok {
			t.Fatalf("live object %#x missing from collection", p)
		}
		// Small sizes are rounded up to their class; the reported size
		// must cover the request.
		if sz < want[p] && sz != 0 {
			t.Fatalf("object %#x reported size %d < requested %d", p, sz, want[p])
		}
	}
	// Address order and early stop.
	var addrs []pmem.PAddr
	h.Objects(func(o Object) bool {
		addrs = append(addrs, o.Addr)
		return len(addrs) < 10
	})
	if len(addrs) != 10 {
		t.Fatalf("early stop failed: %d", len(addrs))
	}
	if !sort.SliceIsSorted(addrs, func(i, j int) bool { return addrs[i] < addrs[j] }) {
		t.Fatal("Objects not in address order")
	}
}

func TestObjectsExcludesTcacheResidents(t *testing.T) {
	_, h := newHeap(t, IC, nil)
	th := h.NewThread()
	defer th.Close()
	p, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	// p now sits in the tcache (reserved, not live).
	if _, ok := objectSet(h)[p]; ok {
		t.Fatal("tcache-resident block reported as a live object")
	}
}

func TestICVariantCrashKeepsAllPersistedAllocations(t *testing.T) {
	dev, h := newHeap(t, IC, nil)
	th := h.NewThread()
	// Allocate objects; none published anywhere — with internal
	// collection they must survive a crash and be enumerable.
	want := map[pmem.PAddr]bool{}
	for i := 0; i < 500; i++ {
		p, err := th.Malloc(256)
		if err != nil {
			t.Fatal(err)
		}
		want[p] = true
	}
	th.Ctx().Merge()
	dev.Crash()
	h2, _, err := Open(dev, DefaultOptions(IC))
	if err != nil {
		t.Fatal(err)
	}
	got := objectSet(h2)
	for p := range want {
		if _, ok := got[p]; !ok {
			t.Fatalf("object %#x lost by IC recovery", p)
		}
	}
	// The application resolves leaks by iterating and freeing.
	th2 := h2.NewThread()
	defer th2.Close()
	for p := range want {
		if err := th2.Free(p); err != nil {
			t.Fatalf("collection object %#x not freeable: %v", p, err)
		}
	}
	if n := len(objectSet(h2)); n != 0 {
		t.Fatalf("%d objects remain after freeing everything", n)
	}
}

func TestICVariantFlushesBitmapsButNoWAL(t *testing.T) {
	dev, h := newHeap(t, IC, nil)
	th := h.NewThread()
	defer th.Close()
	dev.ResetStats()
	for i := 0; i < 500; i++ {
		p, _ := th.Malloc(64)
		if i%2 == 0 {
			_ = th.Free(p)
		}
	}
	th.Ctx().Merge()
	s := dev.Stats()
	if s.CatFlush[pmem.CatWAL] != 0 {
		t.Fatalf("IC variant wrote %d WAL flushes", s.CatFlush[pmem.CatWAL])
	}
	if s.CatFlush[pmem.CatMeta] == 0 {
		t.Fatal("IC variant must flush bitmap metadata")
	}
}

func TestICObjectsSeeMorphedSlabSurvivors(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 256 << 20, Strict: true})
	opts := DefaultOptions(IC)
	opts.Arenas = 1
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	defer th.Close()
	var ptrs []pmem.PAddr
	for i := 0; i < 20000; i++ {
		p, err := th.Malloc(100)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if i%64 != 0 {
			if err := th.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := th.Malloc(1000); err != nil {
			t.Fatal(err)
		}
	}
	if m, _ := h.MorphStats(); m == 0 {
		t.Skip("no morphs triggered")
	}
	got := objectSet(h)
	for i := 0; i < len(ptrs); i += 64 {
		if _, ok := got[ptrs[i]]; !ok {
			t.Fatalf("old-class survivor %#x missing from collection", ptrs[i])
		}
	}
}
