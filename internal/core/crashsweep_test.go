package core

import (
	"fmt"
	"sync"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// crashWorkload runs a deterministic mix of published (MallocTo/FreeFrom)
// and anonymous operations until the device's injected power cut fires.
func crashWorkload(h *Heap) {
	th := h.NewThread()
	dev := h.Device()
	slot := 0
	for i := 0; i < 4000 && !dev.Crashed(); i++ {
		switch i % 5 {
		case 0, 1:
			// Publish a small object.
			if p, err := th.MallocTo(h.RootSlot(slot%alloc.NumRootSlots), uint64(64+i%256)); err == nil {
				dev.WriteU64(p, uint64(i))
				th.Ctx().Flush(pmem.CatOther, p, 8)
				slot++
			}
		case 2:
			// Retract an earlier publication.
			s := h.RootSlot((slot + 3) % alloc.NumRootSlots)
			if dev.ReadU64(s) != 0 {
				_ = th.FreeFrom(s)
			}
		case 3:
			// Anonymous allocation (a potential leak at crash time).
			_, _ = th.Malloc(128)
		case 4:
			// A large publication every so often.
			if i%25 == 4 {
				if _, err := th.MallocTo(h.RootSlot(slot%alloc.NumRootSlots), 64<<10); err == nil {
					slot++
				}
			}
		}
	}
	th.Ctx().Merge()
}

// verifyAfterRecovery checks the recovered heap's fundamental guarantees:
// every non-null root slot references an allocated object (freeable
// exactly once), and fresh allocations never overlap recovered ones.
func verifyAfterRecovery(t *testing.T, cut int64, h2 *Heap) {
	t.Helper()
	dev := h2.Device()
	ck := alloc.NewChecker(h2)
	th := ck.NewThread()
	defer th.Close()

	roots := map[pmem.PAddr]bool{}
	for i := 0; i < alloc.NumRootSlots; i++ {
		p := pmem.PAddr(dev.ReadU64(h2.RootSlot(i)))
		if p == pmem.Null {
			continue
		}
		if roots[p] {
			t.Fatalf("cut=%d: two roots reference %#x", cut, p)
		}
		roots[p] = true
	}
	// New allocations must not collide with published objects.
	for i := 0; i < 3000; i++ {
		p, err := th.Malloc(uint64(64 + i%256))
		if err != nil {
			t.Fatalf("cut=%d: alloc after recovery: %v", cut, err)
		}
		if roots[p] {
			t.Fatalf("cut=%d: published object %#x handed out again", cut, p)
		}
	}
	// Published objects are allocated: freeing succeeds exactly once.
	// (Use a raw thread — the checker has no record of pre-recovery
	// allocations.)
	thRaw := h2.NewThread()
	defer thRaw.Close()
	for p := range roots {
		if err := thRaw.Free(p); err != nil {
			t.Fatalf("cut=%d: published %#x not allocated after recovery: %v", cut, p, err)
		}
	}
	if errs := ck.Errors(); len(errs) != 0 {
		t.Fatalf("cut=%d: invariant violations: %v", cut, errs)
	}
}

// TestCrashSweepLOG cuts power at a sweep of flush counts across a mixed
// workload and verifies the WAL-variant recovery restores a consistent
// heap every time.
func TestCrashSweepLOG(t *testing.T) {
	for _, cut := range []int64{1, 3, 7, 17, 40, 97, 217, 500, 1111, 2500, 6000} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
			opts := DefaultOptions(LOG)
			opts.Arenas = 2
			h, err := Create(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			dev.CrashAfterFlushes(cut)
			crashWorkload(h)
			dev.Crash()
			h2, _, err := Open(dev, DefaultOptions(LOG))
			if err != nil {
				t.Fatalf("cut=%d: recovery failed: %v", cut, err)
			}
			verifyAfterRecovery(t, cut, h2)
		})
	}
}

// crashWorkloadSharded drives concurrent large publications from several
// threads, so bookkeeping records stream into many blog shards at once:
// the power cut can land with any subset of shards mid-append.
func crashWorkloadSharded(h *Heap, threads int) {
	var wg sync.WaitGroup
	slots := alloc.NumRootSlots / threads
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := h.NewThread()
			defer th.Close()
			dev := h.Device()
			base := w * slots
			slot := 0
			for i := 0; i < 1000 && !dev.Crashed(); i++ {
				switch i % 3 {
				case 0, 1:
					// Publish a large object (shard-pool path: one
					// bookkeeping record per allocation).
					if _, err := th.MallocTo(h.RootSlot(base+slot%slots), uint64(32<<10+i%8*(16<<10))); err == nil {
						slot++
					}
				case 2:
					// Retract an earlier publication (tombstone).
					s := h.RootSlot(base + (slot+1)%slots)
					if dev.ReadU64(s) != 0 {
						_ = th.FreeFrom(s)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCrashSweepShardedBookkeeping cuts power at a sweep of flush counts
// while four threads publish and retract large extents concurrently —
// records spread over eight bookkeeping-log shards — and verifies the
// merged recovery: every published root resolves to a live extent
// (no recorded extent is leaked by the merge) and no retracted extent
// comes back (verifyAfterRecovery's collision check would catch a
// resurrected record shadowing a fresh allocation).
func TestCrashSweepShardedBookkeeping(t *testing.T) {
	for _, cut := range []int64{5, 23, 101, 419, 1733, 7001} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dev := pmem.New(pmem.Config{Size: 256 << 20, Strict: true})
			opts := DefaultOptions(LOG)
			opts.Arenas = 4
			opts.BookShards = 8
			h, err := Create(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			dev.CrashAfterFlushes(cut)
			crashWorkloadSharded(h, 4)
			dev.Crash()
			// Reopen with defaults: the shard count must come from the
			// superblock, not the caller's options.
			h2, _, err := Open(dev, DefaultOptions(LOG))
			if err != nil {
				t.Fatalf("cut=%d: recovery failed: %v", cut, err)
			}
			if got := h2.Blog().NumShards(); got != 8 {
				t.Fatalf("cut=%d: reopened with %d shards, want persisted 8", cut, got)
			}
			verifyAfterRecovery(t, cut, h2)
		})
	}
}

// TestCrashSweepGC does the same under the conservative-GC model; here
// anonymous allocations are reclaimed, published ones survive.
func TestCrashSweepGC(t *testing.T) {
	for _, cut := range []int64{2, 11, 47, 199, 800, 3000} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
			opts := DefaultOptions(GC)
			opts.Arenas = 2
			h, err := Create(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			dev.CrashAfterFlushes(cut)
			crashWorkload(h)
			dev.Crash()
			h2, _, err := Open(dev, DefaultOptions(GC))
			if err != nil {
				t.Fatalf("cut=%d: recovery failed: %v", cut, err)
			}
			verifyAfterRecovery(t, cut, h2)
		})
	}
}

// TestDoubleCrashDuringRecovery crashes again in the middle of recovery
// itself (the paper's recovery flag handles this case) and verifies the
// second recovery still converges.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	for _, v := range []Variant{LOG, GC, IC} {
		t.Run(v.String(), func(t *testing.T) {
			dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
			opts := DefaultOptions(v)
			opts.Arenas = 2
			h, err := Create(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			dev.CrashAfterFlushes(1500)
			crashWorkload(h)
			dev.Crash()
			// First recovery gets its power cut too.
			dev.CrashAfterFlushes(5)
			_, _, _ = Open(dev, DefaultOptions(v))
			dev.Crash()
			h2, _, err := Open(dev, DefaultOptions(v))
			if err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			verifyAfterRecovery(t, -1, h2)
		})
	}
}

// TestCrashSweepIC covers the internal-collection variant: published
// objects recover like LOG's, and anonymous ones remain enumerable (not
// leaked from the collection's perspective).
func TestCrashSweepIC(t *testing.T) {
	for _, cut := range []int64{2, 19, 73, 311, 1200, 4000} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
			opts := DefaultOptions(IC)
			opts.Arenas = 2
			h, err := Create(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			dev.CrashAfterFlushes(cut)
			crashWorkload(h)
			dev.Crash()
			h2, _, err := Open(dev, DefaultOptions(IC))
			if err != nil {
				t.Fatalf("cut=%d: recovery failed: %v", cut, err)
			}
			verifyAfterRecovery(t, cut, h2)
			// Every published root must also appear in the collection...
			// (verifyAfterRecovery already freed them, so just walk once
			// for self-consistency: no duplicate addresses.)
			seen := map[pmem.PAddr]bool{}
			h2.Objects(func(o Object) bool {
				if seen[o.Addr] {
					t.Fatalf("cut=%d: duplicate object %#x", cut, o.Addr)
				}
				seen[o.Addr] = true
				return true
			})
		})
	}
}
