package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/slab"
)

func newHeap(t *testing.T, v Variant, mutate func(*Options)) (*pmem.Device, *Heap) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
	opts := DefaultOptions(v)
	opts.Arenas = 4
	if mutate != nil {
		mutate(&opts)
	}
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return dev, h
}

func TestCreateAndBasicMallocFree(t *testing.T) {
	for _, v := range []Variant{LOG, GC} {
		t.Run(v.String(), func(t *testing.T) {
			_, h := newHeap(t, v, nil)
			th := h.NewThread()
			defer th.Close()
			p, err := th.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if p == pmem.Null || uint64(p) >= h.dev.Size() {
				t.Fatalf("bad address %#x", p)
			}
			// The block is usable.
			h.Device().WriteU64(p, 0xABCD)
			if h.Device().ReadU64(p) != 0xABCD {
				t.Fatal("block not writable")
			}
			if err := th.Free(p); err != nil {
				t.Fatal(err)
			}
			if err := th.Free(pmem.Null); err == nil {
				t.Fatal("free of null must error")
			}
			if _, err := th.Malloc(0); err == nil {
				t.Fatal("zero malloc must error")
			}
		})
	}
}

func TestSmallAllocationsAreDistinctAndAligned(t *testing.T) {
	_, h := newHeap(t, LOG, nil)
	th := h.NewThread()
	defer th.Close()
	seen := map[pmem.PAddr]bool{}
	for i := 0; i < 5000; i++ {
		size := uint64(8 + i%500)
		p, err := th.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("address %#x handed out twice", p)
		}
		if p%8 != 0 {
			t.Fatalf("misaligned block %#x", p)
		}
		seen[p] = true
	}
}

func TestLargeAllocations(t *testing.T) {
	_, h := newHeap(t, LOG, nil)
	th := h.NewThread()
	defer th.Close()
	sizes := []uint64{17 << 10, 64 << 10, 500 << 10, 2 << 20, 3 << 20}
	var ptrs []pmem.PAddr
	for _, sz := range sizes {
		p, err := th.Malloc(sz)
		if err != nil {
			t.Fatalf("size %d: %v", sz, err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMallocWriteFreeStress(t *testing.T) {
	for _, v := range []Variant{LOG, GC} {
		t.Run(v.String(), func(t *testing.T) {
			_, h := newHeap(t, v, nil)
			th := h.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(42))
			type obj struct {
				p    pmem.PAddr
				size uint64
				tag  uint64
			}
			var live []obj
			for op := 0; op < 20000; op++ {
				if len(live) == 0 || rng.Intn(100) < 55 {
					size := uint64(rng.Intn(1000) + 8)
					if rng.Intn(50) == 0 {
						size = uint64(rng.Intn(200)+17) << 10
					}
					p, err := th.Malloc(size)
					if err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
					tag := rng.Uint64()
					h.Device().WriteU64(p, tag)
					live = append(live, obj{p, size, tag})
				} else {
					i := rng.Intn(len(live))
					o := live[i]
					if got := h.Device().ReadU64(o.p); got != o.tag {
						t.Fatalf("op %d: object %#x corrupted: %#x != %#x", op, o.p, got, o.tag)
					}
					if err := th.Free(o.p); err != nil {
						t.Fatal(err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			// All surviving objects intact.
			for _, o := range live {
				if h.Device().ReadU64(o.p) != o.tag {
					t.Fatalf("final check: %#x corrupted", o.p)
				}
			}
		})
	}
}

func TestMultithreadedStress(t *testing.T) {
	for _, v := range []Variant{LOG, GC, IC} {
		t.Run(v.String(), func(t *testing.T) {
			dev, h := newHeap(t, v, nil)
			ck := alloc.NewChecker(h)
			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := ck.NewThread()
					defer th.Close()
					rng := rand.New(rand.NewSource(seed))
					var mine []pmem.PAddr
					for op := 0; op < 4000; op++ {
						if len(mine) == 0 || rng.Intn(100) < 60 {
							p, err := th.Malloc(uint64(rng.Intn(400) + 8))
							if err != nil {
								errs <- err
								return
							}
							dev.WriteU64(p, uint64(p)^0x5555)
							mine = append(mine, p)
						} else {
							i := rng.Intn(len(mine))
							p := mine[i]
							if dev.ReadU64(p) != uint64(p)^0x5555 {
								errs <- fmt.Errorf("corruption at %#x", p)
								return
							}
							if err := th.Free(p); err != nil {
								errs <- err
								return
							}
							mine[i] = mine[len(mine)-1]
							mine = mine[:len(mine)-1]
						}
					}
				}(int64(w))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if verrs := ck.Errors(); len(verrs) != 0 {
				t.Fatalf("invariant violations: %v", verrs[:min(len(verrs), 5)])
			}
		})
	}
}

func TestCrossThreadFree(t *testing.T) {
	// Producer-consumer: one thread allocates, another frees.
	_, h := newHeap(t, LOG, nil)
	prod := h.NewThread()
	cons := h.NewThread()
	defer prod.Close()
	defer cons.Close()
	for i := 0; i < 2000; i++ {
		p, err := prod.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := cons.Free(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNormalShutdownRecovery(t *testing.T) {
	for _, v := range []Variant{LOG, GC} {
		t.Run(v.String(), func(t *testing.T) {
			dev, h := newHeap(t, v, nil)
			th := h.NewThread()
			var small, large pmem.PAddr
			var err error
			if small, err = th.MallocTo(h.RootSlot(0), 128); err != nil {
				t.Fatal(err)
			}
			dev.WriteU64(small, 0x1111)
			th.Ctx().Flush(pmem.CatOther, small, 8)
			if large, err = th.MallocTo(h.RootSlot(1), 64<<10); err != nil {
				t.Fatal(err)
			}
			dev.WriteU64(large, 0x2222)
			th.Ctx().Flush(pmem.CatOther, large, 8)
			th.Close()
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			dev.Crash() // clean shutdown: crash discards nothing that matters

			h2, ns, err := Open(dev, DefaultOptions(v))
			if err != nil {
				t.Fatal(err)
			}
			if ns <= 0 {
				t.Fatal("recovery must consume virtual time")
			}
			// Roots still point at the objects; contents preserved.
			if got := pmem.PAddr(dev.ReadU64(h2.RootSlot(0))); got != small {
				t.Fatalf("root 0 lost: %#x != %#x", got, small)
			}
			if dev.ReadU64(small) != 0x1111 || dev.ReadU64(large) != 0x2222 {
				t.Fatal("object contents lost across shutdown")
			}
			// The heap is fully usable: new allocations do not collide
			// with recovered objects.
			th2 := h2.NewThread()
			defer th2.Close()
			for i := 0; i < 1000; i++ {
				p, err := th2.Malloc(128)
				if err != nil {
					t.Fatal(err)
				}
				if p == small {
					t.Fatal("recovered live block handed out again")
				}
			}
			// Freeing recovered objects works.
			if err := th2.Free(small); err != nil {
				t.Fatal(err)
			}
			if err := th2.Free(large); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCrashRecoveryLOGPreservesPublishedObjects(t *testing.T) {
	dev, h := newHeap(t, LOG, nil)
	th := h.NewThread()
	var ptrs []pmem.PAddr
	for i := 0; i < 40; i++ {
		p, err := th.MallocTo(h.RootSlot(i%alloc.NumRootSlots), uint64(64+i*16))
		if err != nil {
			t.Fatal(err)
		}
		dev.WriteU64(p, uint64(i)+1000)
		th.Ctx().Flush(pmem.CatOther, p, 8)
		ptrs = append(ptrs, p)
	}
	th.Ctx().Merge()
	// Hard crash: no Close().
	dev.Crash()
	h2, _, err := Open(dev, DefaultOptions(LOG))
	if err != nil {
		t.Fatal(err)
	}
	// Only the last 64 roots survive overwriting; every published object
	// whose slot still points at it must be allocated and intact.
	th2 := h2.NewThread()
	defer th2.Close()
	recovered := 0
	for i := 0; i < alloc.NumRootSlots; i++ {
		p := pmem.PAddr(dev.ReadU64(h2.RootSlot(i)))
		if p == pmem.Null {
			continue
		}
		recovered++
		if err := th2.Free(p); err != nil {
			t.Fatalf("recovered object %#x not freeable: %v", p, err)
		}
	}
	if recovered < 30 {
		t.Fatalf("only %d objects recovered", recovered)
	}
	_ = ptrs
}

func TestCrashRecoveryGCReclaimsUnreachable(t *testing.T) {
	dev, h := newHeap(t, GC, nil)
	th := h.NewThread()
	// One published (reachable) object and many leaked ones.
	kept, err := th.MallocTo(h.RootSlot(0), 256)
	if err != nil {
		t.Fatal(err)
	}
	dev.WriteU64(kept, 0xBEEF)
	th.Ctx().Flush(pmem.CatOther, kept, 8)
	for i := 0; i < 500; i++ {
		if _, err := th.Malloc(256); err != nil { // leaked: never published
			t.Fatal(err)
		}
	}
	th.Ctx().Merge()
	usedBefore := h.Used()
	dev.Crash()

	h2, _, err := Open(dev, DefaultOptions(GC))
	if err != nil {
		t.Fatal(err)
	}
	if dev.ReadU64(kept) != 0xBEEF {
		t.Fatal("reachable object lost")
	}
	// The leaked blocks were reclaimed: allocating 500 more objects must
	// not need more memory than before.
	th2 := h2.NewThread()
	defer th2.Close()
	for i := 0; i < 500; i++ {
		if _, err := th2.Malloc(256); err != nil {
			t.Fatal(err)
		}
	}
	if h2.Used() > usedBefore {
		t.Fatalf("GC did not reclaim leaks: %d > %d", h2.Used(), usedBefore)
	}
	// And the reachable one is still allocated (not handed out again).
	if err := th2.Free(kept); err != nil {
		t.Fatalf("reachable object not allocated after GC: %v", err)
	}
}

func TestGCFollowsPointerChains(t *testing.T) {
	dev, h := newHeap(t, GC, nil)
	th := h.NewThread()
	// Build a linked list of 50 nodes reachable from root 0.
	const nodes = 50
	var first pmem.PAddr
	var prev pmem.PAddr
	for i := 0; i < nodes; i++ {
		p, err := th.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		dev.WriteU64(p, 0)                   // next
		dev.WriteU64(p+8, uint64(i))         // payload
		th.Ctx().Flush(pmem.CatOther, p, 16) // persist node
		if prev != pmem.Null {
			dev.WriteU64(prev, uint64(p))
			th.Ctx().Flush(pmem.CatOther, prev, 8)
		} else {
			first = p
		}
		prev = p
	}
	c := th.Ctx()
	c.PersistU64(pmem.CatOther, h.RootSlot(0), uint64(first))
	c.Merge()
	dev.Crash()

	h2, _, err := Open(dev, DefaultOptions(GC))
	if err != nil {
		t.Fatal(err)
	}
	// Walk the list: every node must be intact and allocated.
	th2 := h2.NewThread()
	defer th2.Close()
	count := 0
	for p := pmem.PAddr(dev.ReadU64(h2.RootSlot(0))); p != pmem.Null; p = pmem.PAddr(dev.ReadU64(p)) {
		if dev.ReadU64(p+8) != uint64(count) {
			t.Fatalf("node %d payload corrupted", count)
		}
		count++
		if count > nodes {
			t.Fatal("list cycle after recovery")
		}
	}
	if count != nodes {
		t.Fatalf("walked %d nodes, want %d", count, nodes)
	}
}

func TestFreeFromClearsSlot(t *testing.T) {
	dev, h := newHeap(t, LOG, nil)
	th := h.NewThread()
	defer th.Close()
	p, err := th.MallocTo(h.RootSlot(3), 512)
	if err != nil {
		t.Fatal(err)
	}
	if pmem.PAddr(dev.ReadU64(h.RootSlot(3))) != p {
		t.Fatal("slot not set")
	}
	if err := th.FreeFrom(h.RootSlot(3)); err != nil {
		t.Fatal(err)
	}
	if dev.ReadU64(h.RootSlot(3)) != 0 {
		t.Fatal("slot not cleared")
	}
	if err := th.FreeFrom(h.RootSlot(3)); err == nil {
		t.Fatal("double FreeFrom must error")
	}
}

func TestSlabMorphingReducesFootprint(t *testing.T) {
	// Allocate many 100 B objects, free 95%, then allocate 1 KB objects:
	// with morphing the freed slabs are reused; without it the heap must
	// grow.
	run := func(morph bool) uint64 {
		dev := pmem.New(pmem.Config{Size: 256 << 20})
		opts := DefaultOptions(LOG)
		opts.Arenas = 1
		opts.Morphing = morph
		h, err := Create(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		defer th.Close()
		var ptrs []pmem.PAddr
		for i := 0; i < 100000; i++ {
			p, err := th.Malloc(100)
			if err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
		}
		// Free 97% scattered (every block except each 32nd).
		for i, p := range ptrs {
			if i%32 != 0 {
				if err := th.Free(p); err != nil {
					t.Fatal(err)
				}
			}
		}
		h.ResetPeak()
		for i := 0; i < 10000; i++ {
			if _, err := th.Malloc(1000); err != nil {
				t.Fatal(err)
			}
		}
		return h.Peak()
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("morphing did not reduce peak: with=%d without=%d", with, without)
	}
	t.Logf("peak with morphing %d, without %d (%.1f%% saved)", with, without,
		100*(1-float64(with)/float64(without)))
}

func TestMorphedHeapSurvivesCrash(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 256 << 20, Strict: true})
	opts := DefaultOptions(LOG)
	opts.Arenas = 1
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	th := h.NewThread()
	var ptrs []pmem.PAddr
	for i := 0; i < 10000; i++ {
		p, err := th.Malloc(100)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if i%64 != 0 {
			if err := th.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Trigger morphs by allocating a different class.
	for i := 0; i < 2000; i++ {
		if _, err := th.Malloc(1000); err != nil {
			t.Fatal(err)
		}
	}
	if m := h.arenas[0].morphs; m == 0 {
		t.Skip("workload did not trigger a morph; geometry changed?")
	}
	// Publish a survivor so we can check it post-crash.
	c := th.Ctx()
	c.PersistU64(pmem.CatOther, h.RootSlot(0), uint64(ptrs[0]))
	dev.WriteU64(ptrs[0], 0x7777)
	c.Flush(pmem.CatOther, ptrs[0], 8)
	c.Merge()
	dev.Crash()
	h2, _, err := Open(dev, DefaultOptions(LOG))
	if err != nil {
		t.Fatal(err)
	}
	if dev.ReadU64(ptrs[0]) != 0x7777 {
		t.Fatal("old-class survivor lost after morph + crash")
	}
	th2 := h2.NewThread()
	defer th2.Close()
	if err := th2.Free(ptrs[0]); err != nil {
		t.Fatalf("survivor not freeable: %v", err)
	}
}

func TestUsedPeakAndRootSlots(t *testing.T) {
	_, h := newHeap(t, LOG, nil)
	if h.Used() == 0 {
		t.Fatal("metadata must count as used")
	}
	u0 := h.Used()
	th := h.NewThread()
	defer th.Close()
	if _, err := th.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if h.Used() <= u0 || h.Peak() < h.Used() {
		t.Fatal("usage accounting wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range root slot must panic")
		}
	}()
	h.RootSlot(alloc.NumRootSlots)
}

func TestCloseIdempotenceAndOpenBadDevice(t *testing.T) {
	dev, h := newHeap(t, LOG, nil)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err == nil {
		t.Fatal("second close must error")
	}
	_ = dev
	fresh := pmem.New(pmem.Config{Size: 64 << 20})
	if _, _, err := Open(fresh, DefaultOptions(LOG)); err == nil {
		t.Fatal("open of unformatted device must error")
	}
}

func TestInterleavingEliminatesReflushes(t *testing.T) {
	// The headline mechanism check: consecutive small mallocs with
	// interleaving on vs off.
	run := func(on bool) float64 {
		dev := pmem.New(pmem.Config{Size: 128 << 20})
		opts := DefaultOptions(LOG)
		opts.Arenas = 1
		opts.InterleaveBitmap = on
		opts.InterleaveTcache = on
		opts.InterleaveWAL = on
		h, err := Create(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		for i := 0; i < 5000; i++ {
			if _, err := th.Malloc(64); err != nil {
				t.Fatal(err)
			}
		}
		th.Close()
		s := dev.Stats()
		return s.ReflushRatio()
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("interleaving must cut the reflush ratio: %f vs %f", with, without)
	}
	if without < 0.3 {
		t.Fatalf("baseline reflush ratio suspiciously low: %f", without)
	}
	t.Logf("reflush ratio: interleaved %.3f, sequential %.3f", with, without)
}

func TestGCVariantFlushesAlmostNothingOnSmallPath(t *testing.T) {
	count := func(v Variant) uint64 {
		dev := pmem.New(pmem.Config{Size: 128 << 20})
		h, err := Create(dev, DefaultOptions(v))
		if err != nil {
			t.Fatal(err)
		}
		th := h.NewThread()
		dev.ResetStats()
		for i := 0; i < 2000; i++ {
			p, _ := th.Malloc(64)
			if i%2 == 0 {
				_ = th.Free(p)
			}
		}
		th.Ctx().Merge()
		return dev.Stats().Flushes
	}
	gc, log := count(GC), count(LOG)
	if gc*5 > log {
		t.Fatalf("GC small path should flush far less: gc=%d log=%d", gc, log)
	}
}

func TestSizeClassBoundaries(t *testing.T) {
	_, h := newHeap(t, LOG, nil)
	th := h.NewThread()
	defer th.Close()
	for _, size := range []uint64{1, 8, 9, 16, 17, 4095, 4096, 16384, 16385, 17 << 10} {
		p, err := th.Malloc(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if err := th.Free(p); err != nil {
			t.Fatalf("size %d free: %v", size, err)
		}
	}
	// SmallMax boundary behaves per the slab/extent split.
	if sizeclass.IsSmall(slab.Size) {
		t.Fatal("64K must be a large allocation")
	}
}
