package core

import (
	"fmt"
	"sync"
	"testing"

	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
)

// blockFreed reports whether addr no longer holds a live small block on
// heap h: its slab is gone (released — all blocks freed), or its bit is
// clear. A live old-class block (morphed slab) counts as not freed.
func blockFreed(h *Heap, addr pmem.PAddr) bool {
	s := h.slabs.Lookup(addr &^ (slab.Size - 1))
	if s == nil {
		return true
	}
	s.Mu.Lock()
	defer s.Mu.Unlock()
	if s.OldBlockIndex(addr) >= 0 {
		return false
	}
	idx := s.BlockIndex(addr)
	return idx < 0 || !s.BlockAllocated(idx)
}

// TestRemoteFreeProducerConsumerStress allocates blocks from producer
// threads and frees every one of them from consumer threads bound to
// other arenas, exercising the buffered remote-free path (with periodic
// explicit Flushes) under the race detector. No free may be lost: after
// the consumers close, every block is free.
func TestRemoteFreeProducerConsumerStress(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 128 << 20})
	opts := DefaultOptions(LOG)
	opts.Arenas = 4
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}

	const producers, perProducer = 4, 3000
	addrCh := make(chan []pmem.PAddr, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := h.NewThread()
			defer th.Close()
			addrs := make([]pmem.PAddr, 0, perProducer)
			for i := 0; i < perProducer; i++ {
				a, err := th.Malloc(uint64(64 + i%4*64))
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					break
				}
				addrs = append(addrs, a)
			}
			addrCh <- addrs
		}(p)
	}
	wg.Wait()
	close(addrCh)
	var all []pmem.PAddr
	for addrs := range addrCh {
		all = append(all, addrs...)
	}

	// Consumers free everything concurrently, interleaving explicit
	// Flushes so drains happen both on full buffers and on demand.
	const consumers = 4
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			th := h.NewThread().(*Thread)
			defer th.Close()
			for i := c; i < len(all); i += consumers {
				if err := th.Free(all[i]); err != nil {
					t.Errorf("consumer %d: free %#x: %v", c, all[i], err)
				}
				if i%97 == c {
					th.Flush()
				}
			}
		}(c)
	}
	wg.Wait()

	for _, a := range all {
		if !blockFreed(h, a) {
			t.Fatalf("free of %#x lost (block still allocated after Close)", a)
		}
	}
}

// TestRemoteFreeFlushPublishes checks the alloc.Flusher contract: frees
// sitting in a partially full buffer become visible (bits cleared, WAL
// entries persisted) as soon as Flush returns, without closing the
// thread.
func TestRemoteFreeFlushPublishes(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	opts := DefaultOptions(LOG)
	opts.Arenas = 2
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	thA := h.NewThread()
	thB := h.NewThread().(*Thread)
	defer thA.Close()
	defer thB.Close()

	var addrs []pmem.PAddr
	for i := 0; i < 10; i++ { // below remoteBatch: no automatic drain
		a, err := thA.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := thB.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	thB.Flush()
	for _, a := range addrs {
		if !blockFreed(h, a) {
			t.Fatalf("block %#x still allocated after Flush", a)
		}
	}
}

// TestRemoteFreeCrashMidDrainRecoversPrefix arms a power cut that lands
// inside the batched drains and verifies the valid-prefix property: the
// frees that survive recovery are exactly a prefix of the acknowledged
// free order (each drain appends its WAL batch in buffer order and
// fences it before any bitmap line is cleared, and replay re-applies
// the durable entries).
func TestRemoteFreeCrashMidDrainRecoversPrefix(t *testing.T) {
	const K = 64
	for _, cut := range []int64{1, 2, 5, 11, 23, 47, 95, 191, 383} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dev := pmem.New(pmem.Config{Size: 128 << 20, Strict: true})
			opts := DefaultOptions(LOG)
			opts.Arenas = 2
			h, err := Create(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			thA := h.NewThread()
			thB := h.NewThread().(*Thread)
			addrs := make([]pmem.PAddr, 0, K)
			for i := 0; i < K; i++ {
				a, err := thA.Malloc(256)
				if err != nil {
					t.Fatal(err)
				}
				addrs = append(addrs, a)
			}
			// Everything above is durable; the cut races the frees below.
			dev.CrashAfterFlushes(cut)
			for _, a := range addrs {
				if err := thB.Free(a); err != nil {
					t.Fatalf("free %#x: %v", a, err)
				}
			}
			thB.Flush()
			dev.Crash()

			h2, _, err := Open(dev, DefaultOptions(LOG))
			if err != nil {
				t.Fatalf("cut=%d: recovery failed: %v", cut, err)
			}
			// The applied frees must form a prefix of the free order: once
			// one free is missing, none after it may have been applied.
			lost := -1
			for i, a := range addrs {
				if blockFreed(h2, a) {
					if lost >= 0 {
						t.Fatalf("cut=%d: free %d applied but earlier free %d lost", cut, i, lost)
					}
				} else if lost < 0 {
					lost = i
				}
			}
		})
	}
}
