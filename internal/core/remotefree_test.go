package core

import (
	"sync"
	"testing"

	"nvalloc/internal/pmem"
)

// blockFreed reports whether addr no longer holds a live small block on
// heap h. A live old-class block (morphed slab) counts as not freed.
func blockFreed(h *Heap, addr pmem.PAddr) bool {
	return !h.BlockAllocated(addr)
}

// TestRemoteFreeProducerConsumerStress allocates blocks from producer
// threads and frees every one of them from consumer threads bound to
// other arenas, exercising the buffered remote-free path (with periodic
// explicit Flushes) under the race detector. No free may be lost: after
// the consumers close, every block is free.
func TestRemoteFreeProducerConsumerStress(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 128 << 20})
	opts := DefaultOptions(LOG)
	opts.Arenas = 4
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}

	const producers, perProducer = 4, 3000
	addrCh := make(chan []pmem.PAddr, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := h.NewThread()
			defer th.Close()
			addrs := make([]pmem.PAddr, 0, perProducer)
			for i := 0; i < perProducer; i++ {
				a, err := th.Malloc(uint64(64 + i%4*64))
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					break
				}
				addrs = append(addrs, a)
			}
			addrCh <- addrs
		}(p)
	}
	wg.Wait()
	close(addrCh)
	var all []pmem.PAddr
	for addrs := range addrCh {
		all = append(all, addrs...)
	}

	// Consumers free everything concurrently, interleaving explicit
	// Flushes so drains happen both on full buffers and on demand.
	const consumers = 4
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			th := h.NewThread().(*Thread)
			defer th.Close()
			for i := c; i < len(all); i += consumers {
				if err := th.Free(all[i]); err != nil {
					t.Errorf("consumer %d: free %#x: %v", c, all[i], err)
				}
				if i%97 == c {
					th.Flush()
				}
			}
		}(c)
	}
	wg.Wait()

	for _, a := range all {
		if !blockFreed(h, a) {
			t.Fatalf("free of %#x lost (block still allocated after Close)", a)
		}
	}
}

// TestRemoteFreeFlushPublishes checks the alloc.Flusher contract: frees
// sitting in a partially full buffer become visible (bits cleared, WAL
// entries persisted) as soon as Flush returns, without closing the
// thread.
func TestRemoteFreeFlushPublishes(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20})
	opts := DefaultOptions(LOG)
	opts.Arenas = 2
	h, err := Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	thA := h.NewThread()
	thB := h.NewThread().(*Thread)
	defer thA.Close()
	defer thB.Close()

	var addrs []pmem.PAddr
	for i := 0; i < 10; i++ { // below remoteBatch: no automatic drain
		a, err := thA.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := thB.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	thB.Flush()
	for _, a := range addrs {
		if !blockFreed(h, a) {
			t.Fatalf("block %#x still allocated after Flush", a)
		}
	}
}

// The crash-mid-drain prefix property (frees surviving recovery are a
// prefix of the acknowledged free order) is now verified at every
// boundary of the drain window by the crash-point model checker:
// internal/crashmc's TestRemoteFreeCrashMidDrainRecoversPrefix.
