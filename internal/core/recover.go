package core

import (
	"nvalloc/internal/blog"
	"nvalloc/internal/extent"
	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
	"nvalloc/internal/walog"
)

// validateSuper checks the superblock before any of its fields are
// trusted: magic, version, checksum, parameter ranges and the region
// layout. A zeroed, truncated or bit-flipped image yields a typed
// CorruptError here instead of a panic (or an absurd allocation) later.
func validateSuper(dev pmem.Dev) error {
	if dev.Size() < uint64(superBase)+4096 {
		return pmem.Corrupt("superblock", superBase, "device too small (%d bytes) for a superblock page", dev.Size())
	}
	if m := dev.ReadU64(superBase + sbMagic); m != superMagic {
		return pmem.Corrupt("superblock", superBase+sbMagic, "bad magic %#x (no heap on device)", m)
	}
	if v := dev.ReadU64(superBase + sbVersion); v != superVersion {
		return pmem.Corrupt("superblock", superBase+sbVersion, "unsupported heap version %d", v)
	}
	if got, want := dev.ReadU64(superBase+sbChecksum), uint64(superCRC(dev)); got != want {
		return pmem.Corrupt("superblock", superBase+sbChecksum, "checksum %#x, want %#x", got, want)
	}
	arenas := dev.ReadU64(superBase + sbArenas)
	stripes := dev.ReadU64(superBase + sbStripes)
	variant := dev.ReadU64(superBase + sbVariant)
	bookMode := dev.ReadU64(superBase + sbBookMode)
	walEnts := dev.ReadU64(superBase + sbWALEnts)
	walStripes := dev.ReadU64(superBase + sbWALStripes)
	bookShards := dev.ReadU64(superBase + sbBookShards)
	switch {
	case arenas < 1 || arenas > 1024:
		return pmem.Corrupt("superblock", superBase+sbArenas, "arena count %d out of range", arenas)
	case stripes < 1 || stripes > 64:
		return pmem.Corrupt("superblock", superBase+sbStripes, "stripe count %d out of range", stripes)
	case variant > uint64(IC):
		return pmem.Corrupt("superblock", superBase+sbVariant, "unknown variant %d", variant)
	case bookMode > 1:
		return pmem.Corrupt("superblock", superBase+sbBookMode, "unknown bookkeeping mode %d", bookMode)
	case walEnts < 1 || walEnts > 1<<20:
		return pmem.Corrupt("superblock", superBase+sbWALEnts, "WAL ring capacity %d out of range", walEnts)
	case walStripes < 1 || walStripes > 64:
		return pmem.Corrupt("superblock", superBase+sbWALStripes, "WAL stripe count %d out of range", walStripes)
	case bookMode == 1 && (bookShards < 1 || bookShards > 1024):
		return pmem.Corrupt("superblock", superBase+sbBookShards, "bookkeeping shard count %d out of range", bookShards)
	}
	walBase := dev.ReadU64(superBase + sbWALBase)
	blogBase := dev.ReadU64(superBase + sbBlogBase)
	blogSize := dev.ReadU64(superBase + sbBlogSize)
	heapBase := dev.ReadU64(superBase + sbHeapBase)
	walBytes := arenas * uint64(walog.RegionSize(int(walEnts), int(stripes)))
	switch {
	case walBase < uint64(superBase)+4096 || walBase%8 != 0 || walBase+walBytes > blogBase:
		return pmem.Corrupt("superblock", superBase+sbWALBase, "WAL region [%#x,%#x) overlaps neighbours", walBase, walBase+walBytes)
	case bookMode == 1 && blogBase+blogSize > heapBase:
		return pmem.Corrupt("superblock", superBase+sbBlogBase, "bookkeeping-log region [%#x,%#x) overlaps the heap", blogBase, blogBase+blogSize)
	case heapBase%extent.ChunkSize != 0 || heapBase+extent.ChunkSize > dev.Size():
		return pmem.Corrupt("superblock", superBase+sbHeapBase, "heap base %#x misaligned or past device end", heapBase)
	}
	return nil
}

// Open reopens an existing heap after a restart or crash (Section 4.4).
// It performs the normal-shutdown recovery — recreate arenas, reopen
// heap/log regions, slow-GC the bookkeeping log, rebuild vslabs and
// VEHs — and, if the persisted state flag shows the previous run did not
// shut down cleanly, additionally resolves leaks per the variant's
// consistency model: WAL replay for NVAlloc-LOG, conservative GC for
// NVAlloc-GC. It returns the recovery's virtual nanoseconds.
func Open(dev pmem.Dev, opts Options) (*Heap, int64, error) {
	if err := validateSuper(dev); err != nil {
		return nil, 0, err
	}
	opts = opts.withDefaults()
	// Persistent layout parameters override whatever the caller passed.
	opts.Arenas = int(dev.ReadU64(superBase + sbArenas))
	opts.Stripes = int(dev.ReadU64(superBase + sbStripes))
	opts.Variant = Variant(dev.ReadU64(superBase + sbVariant))
	opts.LogBookkeeping = dev.ReadU64(superBase+sbBookMode) == 1
	opts.WALEntries = int(dev.ReadU64(superBase + sbWALEnts))
	walStripes := int(dev.ReadU64(superBase + sbWALStripes))
	opts.InterleaveWAL = walStripes > 1
	if opts.LogBookkeeping {
		// The shard count determines the region split and the record
		// routing, so the persisted value always wins.
		opts.BookShards = int(dev.ReadU64(superBase + sbBookShards))
	}

	h := &Heap{dev: dev, mem: dev.Mem(), opts: opts}
	h.heapBase = pmem.PAddr(dev.ReadU64(superBase + sbHeapBase))
	h.initVolatile(dev, opts)

	c := dev.NewCtx()
	state, ok := pmem.UnsealU64(dev.ReadU64(superBase + sbState))
	if !ok {
		return nil, 0, pmem.Corrupt("superblock", superBase+sbState, "run-state word fails seal check")
	}
	crashed := state != stateShutdown
	closing := state == stateClosing
	// Mark recovery in progress so a crash *during* recovery is detected.
	// A closing-state crash keeps its marker instead: recovery from it is
	// idempotent, and downgrading to stateRecovery would re-arm WAL replay
	// on a second crash — exactly the unsafe path the marker forbids.
	if !closing {
		c.PersistU64(pmem.CatMeta, superBase+sbState, pmem.SealU64(stateRecovery))
		c.Fence()
	}

	// Reopen the bookkeeper and enumerate live extents.
	var records []extent.LiveRecord
	if opts.LogBookkeeping {
		// Every shard recovers independently; the merged record list is
		// address-ordered across shards.
		bl, recs, err := blog.OpenSharded(dev, h.blogBase(), h.blogSize(), h.walStripes, opts.BookShards)
		if err != nil {
			return nil, 0, err
		}
		if !opts.BlogGC {
			bl.SetSlowGCThreshold(^uint64(0) >> 1)
		} else if opts.BlogGCThreshold > 0 {
			bl.SetSlowGCThreshold(opts.BlogGCThreshold)
		}
		// Normal-shutdown recovery performs a slow GC to drop tombstones
		// (Section 4.4).
		if opts.BlogGC {
			bl.SlowGCAll(c)
		}
		h.blog = bl
		h.book = bl
		for _, r := range recs {
			records = append(records, extent.LiveRecord{Addr: r.Addr, Size: r.Size, Slab: r.Slab})
		}
	} else {
		ib := extent.NewInPlace(dev, h.heapBase, superBase+sbBreak)
		h.book = ib
		records = ib.Recover(c)
	}

	// Rebuild the large allocator (gaps become reclaimed extents).
	large, live, err := extent.Rebuild(dev, h.book, extent.Config{
		HeapBase:  h.heapBase,
		HeapEnd:   pmem.PAddr(dev.Size()),
		BreakPtr:  superBase + sbBreak,
		MetaBytes: uint64(h.heapBase),
	}, c, records)
	if err != nil {
		return nil, 0, err
	}
	h.large = large
	h.large.FirstFit = opts.FirstFitExtents
	// Attach the (empty) extent caches and shard pools. Leases and cached
	// extents never survive a restart: unrecorded space was rebuilt as
	// free, recorded shard sub-allocations as ordinary global extents.
	h.initExtentLayer()

	// Rebuild vslabs; morph undo happens inside slab.Load.
	next := 0
	for _, v := range live {
		if !v.Slab {
			continue
		}
		// A record flagged as a slab must have slab shape before its
		// header is interpreted. The record (not the slab) is at fault,
		// so the error names the bookkeeping layer.
		if uint64(v.Addr)%slab.Size != 0 || v.Size != slab.Size {
			return nil, 0, pmem.Corrupt("extent", v.Addr, "slab record misaligned or sized %d, want %d", v.Size, uint64(slab.Size))
		}
		s, err := slab.Load(dev.Mem(), c, v.Addr)
		if err != nil {
			return nil, 0, err
		}
		s.Owner = next % len(h.arenas)
		next++
		h.slabs.Store(v.Addr, s)
		a := h.arenas[s.Owner]
		if s.FreeCount() > 0 {
			a.freelistPush(s)
		}
		if !s.IsSlabIn() {
			a.lruPushTail(s)
		}
	}

	// Reopen the WALs.
	for i := range h.arenas {
		wal, err := h.newWAL(i, false)
		if err != nil {
			return nil, 0, err
		}
		h.arenas[i].wal = wal
	}

	if crashed {
		switch opts.Variant {
		case LOG:
			if closing {
				// The crash hit Close's checkpoint window: every logged
				// operation already persisted in full before Close began, and
				// some rings may be truncated. Replaying the remainder could
				// apply an OpFreeFrom whose superseding OpMallocTo (another
				// arena, same recycled address) was checkpointed away — so
				// retire the surviving entries unapplied. Replay with a no-op
				// visitor still CRC-validates the rings and advances each
				// log's sequence so the checkpoint lands past the survivors.
				for _, a := range h.arenas {
					if _, err := a.wal.Replay(c, func(walog.Entry) {}); err != nil {
						return nil, 0, err
					}
					a.wal.Checkpoint(c)
				}
			} else if err := h.replayWALs(c); err != nil {
				return nil, 0, err
			}
		case GC:
			h.conservativeGC(c)
		case IC:
			// Internal collection: the eagerly persisted bitmaps are the
			// truth; crash-time leaks stay allocated until the application
			// walks Heap.Objects and frees what it does not recognize.
		}
	}

	// Back in business.
	for i := range h.arenas {
		c.PersistU64(pmem.CatMeta, arenaFlagsBase+pmem.PAddr(i*8), stateRunning)
	}
	c.PersistU64(pmem.CatMeta, superBase+sbState, pmem.SealU64(stateRunning))
	c.Fence()
	ns := c.Now
	c.Merge()
	return h, ns, nil
}

// replayWALs applies every un-checkpointed WAL entry idempotently
// (NVAlloc-LOG failure recovery, "replay WALs as in nvm_malloc").
// Entry payloads are CRC-protected, but the 24-bit checksum is thin, so
// every address acted on is bounds-checked against the device first.
//
// A pre-pass collects the live publish/retract entries so that replaying
// a stale entry can never clobber a later reuse: after FreeFrom's space
// is re-allocated (extent addresses recycle quickly through the shard
// pools), the old OpMallocTo must not resurrect the retracted slot, and
// the old OpFreeFrom must not free the new allocation living at the same
// address. "Later" is precise within one arena (WAL sequence numbers);
// across arenas — where sequences are incomparable — the skip is applied
// conservatively, trading a possible leak of an unacknowledged operation
// for the impossibility of a dangling root.
func (h *Heap) replayWALs(c *pmem.Ctx) error {
	inDev := func(a pmem.PAddr) bool { return uint64(a)+8 <= h.dev.Size() }

	type tagged struct {
		arena int
		seq   uint64
	}
	type pair struct{ slot, addr pmem.PAddr }
	pubs := map[pmem.PAddr][]tagged{}     // OpMallocTo entries by block address
	slotPubs := map[pmem.PAddr][]tagged{} // OpMallocTo entries by slot address
	rets := map[pair][]tagged{}           // OpFreeFrom entries by (slot, block)
	for i, a := range h.arenas {
		_, err := a.wal.Replay(c, func(e walog.Entry) {
			switch e.Op {
			case walog.OpMallocTo:
				p := pmem.PAddr(e.Aux)
				pubs[p] = append(pubs[p], tagged{i, e.Seq})
				slotPubs[e.Addr] = append(slotPubs[e.Addr], tagged{i, e.Seq})
			case walog.OpFreeFrom:
				k := pair{e.Addr, pmem.PAddr(e.Aux)}
				rets[k] = append(rets[k], tagged{i, e.Seq})
			}
		})
		if err != nil {
			return err
		}
	}
	// supersededBy: a conflicting entry exists in another arena, or in the
	// same arena with a higher sequence number.
	supersededBy := func(ts []tagged, arena int, seq uint64) bool {
		for _, t := range ts {
			if t.arena != arena || t.seq > seq {
				return true
			}
		}
		return false
	}

	for i, a := range h.arenas {
		_, err := a.wal.Replay(c, func(e walog.Entry) {
			switch e.Op {
			case walog.OpAllocBit:
				// Aux2 names the size class the entry was logged under; a
				// mismatch means the slab has since completed a morph whose
				// step-3 bitmap snapshot already captured this operation —
				// applying the stale index to the new geometry would flip
				// an unrelated block.
				if s := h.slabs.Lookup(e.Addr); s != nil && int(e.Aux2) == s.Class {
					h.forceBit(c, s, int(e.Aux), true)
				}
			case walog.OpFreeBit:
				if s := h.slabs.Lookup(e.Addr); s != nil && int(e.Aux2) == s.Class {
					h.forceBit(c, s, int(e.Aux), false)
				}
			case walog.OpMallocTo:
				// A later retraction of this very pair means the slot must
				// stay clear — completing the publish would resurrect it.
				// Likewise a later publish of a *different* block to the same
				// slot (MallocTo overwrites occupied slots): completing this
				// one would clobber the newer root with a stale address.
				if supersededBy(rets[pair{e.Addr, pmem.PAddr(e.Aux)}], i, e.Seq) ||
					supersededBy(slotPubs[e.Addr], i, e.Seq) {
					return
				}
				// Complete the publish if the slot write was lost.
				if inDev(e.Addr) && pmem.PAddr(h.dev.ReadU64(e.Addr)) != pmem.PAddr(e.Aux) {
					c.PersistU64(pmem.CatMeta, e.Addr, e.Aux)
				}
			case walog.OpFreeFrom:
				if !inDev(e.Addr) || !inDev(pmem.PAddr(e.Aux)) {
					return
				}
				// The block was published again after this retraction: the
				// retraction's free completed (reallocation requires it) and
				// whatever is allocated at this address now is the new
				// object. Touch nothing.
				if supersededBy(pubs[pmem.PAddr(e.Aux)], i, e.Seq) {
					return
				}
				// Complete the retraction: clear the slot and free the
				// block if still marked allocated.
				if pmem.PAddr(h.dev.ReadU64(e.Addr)) == pmem.PAddr(e.Aux) {
					c.PersistU64(pmem.CatMeta, e.Addr, 0)
				}
				h.forceFreeBlock(c, pmem.PAddr(e.Aux))
			case walog.OpMorph:
				// Morph steps are sealed by the slab's own flag field;
				// slab.Load already undid or kept the transform.
			}
		})
		if err != nil {
			return err
		}
		a.wal.Checkpoint(c)
	}
	return nil
}

// forceBit sets the allocation state of a slab block to val regardless of
// its current state (idempotent WAL replay helper).
func (h *Heap) forceBit(c *pmem.Ctx, s *slab.Slab, idx int, val bool) {
	if idx < 0 || idx >= s.Blocks {
		return
	}
	allocated := s.BlockAllocated(idx)
	switch {
	case val && !allocated:
		s.AllocBlock(c, idx, true)
	case !val && allocated:
		s.FreeBlock(c, idx, true)
	}
}

// forceFreeBlock frees addr whether it is a slab block or an extent, if
// it is currently allocated.
func (h *Heap) forceFreeBlock(c *pmem.Ctx, addr pmem.PAddr) {
	base := addr &^ (slab.Size - 1)
	if s := h.slabs.Lookup(base); s != nil {
		if idx := s.BlockIndex(addr); idx >= 0 {
			h.forceBit(c, s, idx, false)
		}
		return
	}
	if _, ok := h.large.Lookup(addr); ok {
		_ = h.large.Free(c, addr)
	}
}
