package core

import (
	"fmt"

	"nvalloc/internal/blog"
	"nvalloc/internal/extent"
	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
	"nvalloc/internal/walog"
)

// Open reopens an existing heap after a restart or crash (Section 4.4).
// It performs the normal-shutdown recovery — recreate arenas, reopen
// heap/log regions, slow-GC the bookkeeping log, rebuild vslabs and
// VEHs — and, if the persisted state flag shows the previous run did not
// shut down cleanly, additionally resolves leaks per the variant's
// consistency model: WAL replay for NVAlloc-LOG, conservative GC for
// NVAlloc-GC. It returns the recovery's virtual nanoseconds.
func Open(dev *pmem.Device, opts Options) (*Heap, int64, error) {
	if dev.ReadU64(superBase+sbMagic) != superMagic {
		return nil, 0, fmt.Errorf("core: no heap on device (bad magic)")
	}
	if v := dev.ReadU64(superBase + sbVersion); v != superVersion {
		return nil, 0, fmt.Errorf("core: unsupported heap version %d", v)
	}
	opts = opts.withDefaults()
	// Persistent layout parameters override whatever the caller passed.
	opts.Arenas = int(dev.ReadU64(superBase + sbArenas))
	opts.Stripes = int(dev.ReadU64(superBase + sbStripes))
	opts.Variant = Variant(dev.ReadU64(superBase + sbVariant))
	opts.LogBookkeeping = dev.ReadU64(superBase+sbBookMode) == 1
	opts.WALEntries = int(dev.ReadU64(superBase + sbWALEnts))
	walStripes := int(dev.ReadU64(superBase + sbWALStripes))
	opts.InterleaveWAL = walStripes > 1

	h := &Heap{dev: dev, opts: opts}
	h.heapBase = pmem.PAddr(dev.ReadU64(superBase + sbHeapBase))
	h.initVolatile(dev, opts)

	c := dev.NewCtx()
	state := dev.ReadU64(superBase + sbState)
	crashed := state != stateShutdown
	// Mark recovery in progress so a crash *during* recovery is detected.
	c.PersistU64(pmem.CatMeta, superBase+sbState, stateRecovery)
	c.Fence()

	// Reopen the bookkeeper and enumerate live extents.
	var records []extent.LiveRecord
	if opts.LogBookkeeping {
		bl, recs, err := blog.Open(dev, h.blogBase(), h.blogSize(), h.walStripes)
		if err != nil {
			return nil, 0, err
		}
		if !opts.BlogGC {
			bl.SlowGCThreshold = ^uint64(0) >> 1
		} else if opts.BlogGCThreshold > 0 {
			bl.SlowGCThreshold = opts.BlogGCThreshold
		}
		// Normal-shutdown recovery performs a slow GC to drop tombstones
		// (Section 4.4).
		if opts.BlogGC {
			if _, err := bl.SlowGC(c); err != nil {
				return nil, 0, err
			}
		}
		h.blog = bl
		h.book = bl
		for _, r := range recs {
			records = append(records, extent.LiveRecord{Addr: r.Addr, Size: r.Size, Slab: r.Slab})
		}
	} else {
		ib := extent.NewInPlace(dev, h.heapBase, superBase+sbBreak)
		h.book = ib
		records = ib.Recover(c)
	}

	// Rebuild the large allocator (gaps become reclaimed extents).
	var live []*extent.VEH
	h.large, live = extent.Rebuild(dev, h.book, extent.Config{
		HeapBase:  h.heapBase,
		HeapEnd:   pmem.PAddr(dev.Size()),
		BreakPtr:  superBase + sbBreak,
		MetaBytes: uint64(h.heapBase),
	}, c, records)
	h.large.FirstFit = opts.FirstFitExtents

	// Rebuild vslabs; morph undo happens inside slab.Load.
	next := 0
	for _, v := range live {
		if !v.Slab {
			continue
		}
		s, err := slab.Load(dev, c, v.Addr)
		if err != nil {
			return nil, 0, err
		}
		s.Owner = next % len(h.arenas)
		next++
		h.slabs[v.Addr] = s
		a := h.arenas[s.Owner]
		if s.FreeCount() > 0 {
			a.freelistPush(s)
		}
		if !s.IsSlabIn() {
			a.lruPushTail(s)
		}
	}

	// Reopen the WALs.
	for i := range h.arenas {
		h.arenas[i].wal = h.newWAL(i, false)
	}

	if crashed {
		switch opts.Variant {
		case LOG:
			h.replayWALs(c)
		case GC:
			h.conservativeGC(c)
		case IC:
			// Internal collection: the eagerly persisted bitmaps are the
			// truth; crash-time leaks stay allocated until the application
			// walks Heap.Objects and frees what it does not recognize.
		}
	}

	// Back in business.
	for i := range h.arenas {
		c.PersistU64(pmem.CatMeta, arenaFlagsBase+pmem.PAddr(i*8), stateRunning)
	}
	c.PersistU64(pmem.CatMeta, superBase+sbState, stateRunning)
	c.Fence()
	ns := c.Now
	c.Merge()
	return h, ns, nil
}

// replayWALs applies every un-checkpointed WAL entry idempotently
// (NVAlloc-LOG failure recovery, "replay WALs as in nvm_malloc").
func (h *Heap) replayWALs(c *pmem.Ctx) {
	for _, a := range h.arenas {
		a.wal.Replay(c, func(e walog.Entry) {
			switch e.Op {
			case walog.OpAllocBit:
				if s := h.slabs[e.Addr]; s != nil {
					h.forceBit(c, s, int(e.Aux), true)
				}
			case walog.OpFreeBit:
				if s := h.slabs[e.Addr]; s != nil {
					h.forceBit(c, s, int(e.Aux), false)
				}
			case walog.OpMallocTo:
				// Complete the publish if the slot write was lost.
				if pmem.PAddr(h.dev.ReadU64(e.Addr)) != pmem.PAddr(e.Aux) {
					c.PersistU64(pmem.CatMeta, e.Addr, e.Aux)
				}
			case walog.OpFreeFrom:
				// Complete the retraction: clear the slot and free the
				// block if still marked allocated.
				if pmem.PAddr(h.dev.ReadU64(e.Addr)) == pmem.PAddr(e.Aux) {
					c.PersistU64(pmem.CatMeta, e.Addr, 0)
				}
				h.forceFreeBlock(c, pmem.PAddr(e.Aux))
			case walog.OpMorph:
				// Morph steps are sealed by the slab's own flag field;
				// slab.Load already undid or kept the transform.
			}
		})
		a.wal.Checkpoint(c)
	}
}

// forceBit sets the allocation state of a slab block to val regardless of
// its current state (idempotent WAL replay helper).
func (h *Heap) forceBit(c *pmem.Ctx, s *slab.Slab, idx int, val bool) {
	if idx < 0 || idx >= s.Blocks {
		return
	}
	allocated := s.BlockAllocated(idx)
	switch {
	case val && !allocated:
		s.AllocBlock(c, idx, true)
	case !val && allocated:
		s.FreeBlock(c, idx, true)
	}
}

// forceFreeBlock frees addr whether it is a slab block or an extent, if
// it is currently allocated.
func (h *Heap) forceFreeBlock(c *pmem.Ctx, addr pmem.PAddr) {
	base := addr &^ (slab.Size - 1)
	if s := h.slabs[base]; s != nil {
		if idx := s.BlockIndex(addr); idx >= 0 {
			h.forceBit(c, s, idx, false)
		}
		return
	}
	if _, ok := h.large.Lookup(addr); ok {
		_ = h.large.Free(c, addr)
	}
}
