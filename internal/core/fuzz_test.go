package core

import (
	"testing"

	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
)

// FuzzHeapOps interprets the fuzz input as an allocation script and runs
// it against all three variants under the invariant checker: byte pairs
// (op, arg) where even ops allocate (size derived from arg) and odd ops
// free a pseudo-random live allocation. No input may panic the allocator,
// violate the no-overlap invariant, or corrupt block contents.
func FuzzHeapOps(f *testing.F) {
	f.Add([]byte{0, 10, 0, 200, 1, 0, 0, 255, 1, 1, 1, 2})
	f.Add([]byte{0, 0, 1, 0})
	f.Add([]byte{2, 100, 4, 250, 6, 3, 1, 9, 3, 7, 5, 5})
	f.Fuzz(func(t *testing.T, script []byte) {
		for _, v := range []Variant{LOG, GC, IC} {
			dev := pmem.New(pmem.Config{Size: 64 << 20})
			opts := DefaultOptions(v)
			opts.Arenas = 2
			h, err := Create(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			ck := alloc.NewChecker(h)
			th := ck.NewThread()
			type obj struct {
				p   pmem.PAddr
				tag uint64
			}
			var live []obj
			for i := 0; i+1 < len(script); i += 2 {
				op, arg := script[i], script[i+1]
				if op%2 == 0 || len(live) == 0 {
					size := uint64(arg)*97 + 1 // 1..24736: small and near-class-boundary
					if op%8 == 6 {
						size = uint64(arg)<<12 + 17<<10 // large path
					}
					p, err := th.Malloc(size)
					if err != nil {
						continue // heap exhaustion is fine
					}
					tag := uint64(p) ^ 0xA5A5
					dev.WriteU64(p, tag)
					live = append(live, obj{p, tag})
				} else {
					j := int(arg) % len(live)
					o := live[j]
					if dev.ReadU64(o.p) != o.tag {
						t.Fatalf("%v: corruption at %#x", v, o.p)
					}
					if err := th.Free(o.p); err != nil {
						t.Fatalf("%v: free(%#x): %v", v, o.p, err)
					}
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, o := range live {
				if dev.ReadU64(o.p) != o.tag {
					t.Fatalf("%v: final corruption at %#x", v, o.p)
				}
			}
			if errs := ck.Errors(); len(errs) != 0 {
				t.Fatalf("%v: invariants violated: %v", v, errs)
			}
			th.Close()
		}
	})
}

// FuzzCrashRecovery drives a short published-object workload, cuts power
// at a fuzz-chosen flush count, and requires recovery to restore a
// consistent heap for every variant.
func FuzzCrashRecovery(f *testing.F) {
	f.Add(uint16(3), byte(0))
	f.Add(uint16(50), byte(1))
	f.Add(uint16(400), byte(2))
	f.Fuzz(func(t *testing.T, cut uint16, variantRaw byte) {
		v := Variant(variantRaw % 3)
		dev := pmem.New(pmem.Config{Size: 64 << 20, Strict: true})
		opts := DefaultOptions(v)
		opts.Arenas = 2
		h, err := Create(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		dev.CrashAfterFlushes(int64(cut%2000) + 1)
		th := h.NewThread()
		for i := 0; i < 300 && !dev.Crashed(); i++ {
			slot := h.RootSlot(i % alloc.NumRootSlots)
			if i%4 == 3 {
				if dev.ReadU64(slot) != 0 {
					_ = th.FreeFrom(slot)
				}
				continue
			}
			_, _ = th.MallocTo(slot, uint64(64+i%512))
		}
		th.Ctx().Merge()
		dev.Crash()
		h2, _, err := Open(dev, DefaultOptions(v))
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		// Every surviving root must reference a freeable allocation.
		th2 := h2.NewThread()
		defer th2.Close()
		for i := 0; i < alloc.NumRootSlots; i++ {
			p := pmem.PAddr(dev.ReadU64(h2.RootSlot(i)))
			if p == pmem.Null {
				continue
			}
			if err := th2.Free(p); err != nil {
				t.Fatalf("root %d -> %#x not allocated: %v", i, p, err)
			}
		}
	})
}
