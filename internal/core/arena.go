package core

import (
	"sync"

	"nvalloc/internal/extent"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/slab"
	"nvalloc/internal/tcache"
	"nvalloc/internal/walog"
)

// arena is one per-core allocation domain: per-class freelists of
// partially full slabs, the LRU list of morph candidates, and the
// arena's WAL. Its resource lock serializes all structural operations
// and models the paper's arena synchronization in virtual time.
type arena struct {
	h     *Heap
	index int
	// Align res to its own cache line (h + index fill 16 bytes; the pad
	// brings res to offset 64). Resource is itself padded to 64 bytes, so
	// the arena lock — the hottest word in real-concurrency mode — never
	// shares a line with the read-mostly header fields above or the
	// freelist pointers below.
	_   [48]byte
	res pmem.Resource
	wal   *walog.Log // nil in the GC variant's runtime path? (kept for morph records)

	// cache is the arena-local slab-extent cache (nil when disabled):
	// newSlab and releaseSlab trade extents with it so the global large
	// lock is touched only on batched refills and overflow flushes.
	cache *extent.SlabCache

	// slabsCreated counts newSlab successes (amortization diagnostics).
	slabsCreated uint64

	// freelists[class] heads doubly linked lists of slabs with free (or
	// reservable) blocks.
	freelists []*slab.Slab
	// LRU list of slabs (morph candidates); head = least recently used.
	lruHead, lruTail *slab.Slab
	// candidates holds slabs whose usage dropped below the SU threshold;
	// morphInto validates and consumes them in O(1) instead of scanning
	// the whole LRU list on every slab acquisition. candMu protects it
	// because the GC variant's free path runs without the arena lock.
	candMu     sync.Mutex
	candidates []*slab.Slab

	// depots[class] stacks full magazines of volatile-reserved blocks
	// (see tcache.Magazine); magSpares recycles emptied magazine arrays.
	// Both are guarded by the arena resource. A full depot makes overflow
	// fall back to the per-block bypass path, so each stack is bounded.
	depots    [][]*tcache.Magazine
	magSpares []*tcache.Magazine

	threads int // assigned thread count (least-loaded assignment)

	// Stats.
	morphs, morphRefusals uint64
}

func newArena(h *Heap, index int) *arena {
	return &arena{
		h:         h,
		index:     index,
		freelists: make([]*slab.Slab, sizeclass.NumClasses()),
		depots:    make([][]*tcache.Magazine, sizeclass.NumClasses()),
	}
}

// depotMags bounds the per-class magazine stack of one arena.
const depotMags = 4

// depotPop removes one full magazine for the class, or nil. Caller holds
// the arena resource.
func (a *arena) depotPop(class int) *tcache.Magazine {
	d := a.depots[class]
	if len(d) == 0 {
		return nil
	}
	m := d[len(d)-1]
	a.depots[class] = d[:len(d)-1]
	return m
}

// depotRoom reports whether the class can take another magazine. Caller
// holds the arena resource.
func (a *arena) depotRoom(class int) bool { return len(a.depots[class]) < depotMags }

// depotPush stacks a full magazine. Caller holds the arena resource and
// has checked depotRoom.
func (a *arena) depotPush(class int, m *tcache.Magazine) {
	a.depots[class] = append(a.depots[class], m)
}

// spareMag recycles an emptied magazine (bounded pool). Caller holds the
// arena resource.
func (a *arena) spareMag(m *tcache.Magazine) {
	if len(a.magSpares) < depotMags {
		a.magSpares = append(a.magSpares, m)
	}
}

// takeSpareMag returns a recycled empty magazine or nil. Caller holds
// the arena resource.
func (a *arena) takeSpareMag() *tcache.Magazine {
	if n := len(a.magSpares); n > 0 {
		m := a.magSpares[n-1]
		a.magSpares = a.magSpares[:n-1]
		return m
	}
	return nil
}

// ---- intrusive list plumbing -------------------------------------------

func (a *arena) freelistPush(s *slab.Slab) {
	cls := s.Class
	s.FreeNext = a.freelists[cls]
	s.FreePrev = nil
	if a.freelists[cls] != nil {
		a.freelists[cls].FreePrev = s
	}
	a.freelists[cls] = s
}

func (a *arena) freelistRemove(s *slab.Slab) {
	if s.FreePrev != nil {
		s.FreePrev.FreeNext = s.FreeNext
	} else if a.freelists[s.Class] == s {
		a.freelists[s.Class] = s.FreeNext
	}
	if s.FreeNext != nil {
		s.FreeNext.FreePrev = s.FreePrev
	}
	s.FreePrev, s.FreeNext = nil, nil
}

func (a *arena) onFreelist(s *slab.Slab) bool {
	return s.FreePrev != nil || s.FreeNext != nil || a.freelists[s.Class] == s
}

func (a *arena) lruPushTail(s *slab.Slab) {
	s.LRUPrev = a.lruTail
	s.LRUNext = nil
	if a.lruTail != nil {
		a.lruTail.LRUNext = s
	}
	a.lruTail = s
	if a.lruHead == nil {
		a.lruHead = s
	}
}

func (a *arena) lruRemove(s *slab.Slab) {
	if s.LRUPrev != nil {
		s.LRUPrev.LRUNext = s.LRUNext
	} else if a.lruHead == s {
		a.lruHead = s.LRUNext
	}
	if s.LRUNext != nil {
		s.LRUNext.LRUPrev = s.LRUPrev
	} else if a.lruTail == s {
		a.lruTail = s.LRUPrev
	}
	s.LRUPrev, s.LRUNext = nil, nil
}

func (a *arena) lruTouch(s *slab.Slab) {
	if a.lruTail == s {
		return
	}
	a.lruRemove(s)
	a.lruPushTail(s)
}

// ---- slab acquisition ---------------------------------------------------

// fill refills tc with up to want blocks of the class. Caller does NOT
// hold the arena lock. Returns the number of blocks cached.
func (a *arena) fill(c *pmem.Ctx, class int, tc *tcache.Cache, want int) int {
	a.res.Acquire(c)
	defer a.res.Release(c)
	return a.fillLocked(c, class, tc, want)
}

// fillLocked is fill's body; caller holds the arena lock.
//
// Depot magazines are consumed first: each one restocks MagCap blocks
// with no slab lock, no bitmap search and no persistent write (the
// blocks are already volatile-reserved). Only then are fresh blocks
// carved out of freelist slabs.
func (a *arena) fillLocked(c *pmem.Ctx, class int, tc *tcache.Cache, want int) int {
	got := 0
	for got < want {
		m := a.depotPop(class)
		if m == nil {
			break
		}
		for i := 0; i < m.N; i++ {
			b := m.Blocks[i]
			tc.Push(a.tcacheStripe(b.Slab.(*slab.Slab), b.Idx), b)
			m.Blocks[i] = tcache.Block{}
		}
		got += m.N
		m.N = 0
		a.spareMag(m)
	}
	var idxBuf []int
	for got < want {
		s := a.freelists[class]
		if s == nil {
			s = a.acquireSlab(c, class)
			if s == nil {
				break
			}
		}
		s.Mu.Lock()
		idxBuf = s.Reserve(want-got, idxBuf[:0])
		full := s.FreeCount() == 0
		for _, idx := range idxBuf {
			tc.Push(a.tcacheStripe(s, idx), tcache.Block{Slab: s, Idx: idx})
		}
		s.Mu.Unlock()
		got += len(idxBuf)
		a.lruTouch(s)
		if full {
			a.freelistRemove(s)
		}
		c.Charge(pmem.CatSearch, 20)
	}
	return got
}

// fillAndCommit refills tc and, in the WAL variant, pops and commits the
// first block (WAL append + bitmap bit) under the same arena-resource
// acquisition — mallocSmall would otherwise release the arena only to
// re-acquire it immediately for the commit. The charge sequence is
// identical to fill-then-commit; only the redundant handoff disappears.
// Returns the committed block's address, or ok=false when the heap is
// exhausted.
func (a *arena) fillAndCommit(c *pmem.Ctx, class int, tc *tcache.Cache, want int) (pmem.PAddr, bool) {
	a.res.Acquire(c)
	defer a.res.Release(c)
	if a.fillLocked(c, class, tc, want) == 0 {
		return pmem.Null, false
	}
	b, ok := tc.Pop()
	if !ok {
		return pmem.Null, false
	}
	s := b.Slab.(*slab.Slab)
	s.Mu.Lock()
	// Aux2 records the geometry the entry was logged under; entry and bit
	// share one trailing fence (see mallocSmall).
	a.wal.AppendNoFence(c, walog.Entry{Op: walog.OpAllocBit, Addr: s.Base, Aux: uint64(b.Idx), Aux2: uint32(s.Class)})
	s.CommitAllocBatched(c, b.Idx, true)
	c.Fence()
	s.Mu.Unlock()
	return s.BlockAddr(b.Idx), true
}

func (a *arena) tcacheStripe(s *slab.Slab, idx int) int {
	if a.h.tcacheStripes == 1 {
		return 0
	}
	return s.Stripe(idx)
}

// tcacheStripeGeom is tcacheStripe against a geometry snapshot, for
// callers that resolved the block index lock-free.
func (a *arena) tcacheStripeGeom(g *slab.Geom, idx int) int {
	if a.h.tcacheStripes == 1 {
		return 0
	}
	return g.Stripe(idx)
}

// acquireSlab finds a slab with free blocks for the class: morphing an
// underused slab of another class first (per the paper), else a new slab
// extent from the large allocator. Caller holds the arena lock.
func (a *arena) acquireSlab(c *pmem.Ctx, class int) *slab.Slab {
	if a.h.opts.Morphing {
		if s := a.morphInto(c, class); s != nil {
			return s
		}
	}
	return a.newSlab(c, class)
}

// noteCandidate queues a slab whose occupancy fell below the SU
// threshold. Caller holds the slab lock; list membership is guarded by
// candMu, because morphInto manipulates it without the slab lock. The
// lock-free MorphCand pre-check keeps the steady state (slab already
// queued, which is where every free of a below-threshold slab lands)
// off candMu entirely; a stale true at worst skips one re-queue that
// the next free retries.
func (a *arena) noteCandidate(s *slab.Slab) {
	if !a.h.opts.Morphing || s.Dead || s.OldClass >= 0 || s.MorphCand.Load() {
		return
	}
	a.candMu.Lock()
	if !s.MorphCand.Load() {
		s.MorphCand.Store(true)
		a.candidates = append(a.candidates, s)
	}
	a.candMu.Unlock()
}

// morphInto consumes the candidate list — slabs whose usage dropped below
// the SU occupancy threshold — looking for one that can legally morph
// into the requested class (the paper scans the LRU list; the candidate
// list finds the same slabs without a per-acquisition O(n) walk). On
// success the slab is re-labelled and moved to the class's freelist.
func (a *arena) morphInto(c *pmem.Ctx, class int) *slab.Slab {
	h := a.h
	a.candMu.Lock()
	cands := a.candidates
	a.candidates = nil
	// Clear the queued flags while still holding candMu: MorphCand means
	// exactly "in the candidate list", and these slabs just left it. A
	// concurrent noteCandidate may re-queue one of them before the merge
	// below; the merge checks the flag again so the list never holds
	// duplicates.
	for _, s := range cands {
		s.MorphCand.Store(false)
	}
	a.candMu.Unlock()
	var keep []*slab.Slab
	var winner *slab.Slab
	for len(cands) > 0 && winner == nil {
		s := cands[len(cands)-1]
		cands = cands[:len(cands)-1]
		c.Charge(pmem.CatSearch, 15)
		if s.Dead || s.Owner != a.index {
			continue
		}
		s.Mu.Lock()
		if s.Class == class || !s.UsageBelowMille(h.suMille) || !s.CanMorphTo(class) {
			// Not usable for this class; keep it queued if it remains a
			// plausible candidate for other classes.
			requeue := s.OldClass < 0 && s.UsageBelowMille(h.suMille)
			s.Mu.Unlock()
			a.morphRefusals++
			if requeue {
				keep = append(keep, s)
			}
			continue
		}
		if a.wal != nil && h.useWAL {
			a.wal.Append(c, walog.Entry{Op: walog.OpMorph, Addr: s.Base, Aux: uint64(class)})
		}
		a.freelistRemove(s)
		// The morph transform is control metadata, not deferrable "small
		// metadata": its geometry switch (class, data offset, flag, index
		// table) must be durable in every variant, or a crash reverts the
		// slab to pre-morph geometry underneath live new-class blocks.
		// Variants with persistSmall=false only defer bitmap persistence.
		err := s.MorphTo(c, class, true)
		s.Mu.Unlock()
		if err != nil {
			a.freelistPush(s)
			a.morphRefusals++
			continue
		}
		// A slab_in leaves the LRU list (it cannot morph again) and joins
		// the new class's freelist.
		a.lruRemove(s)
		a.freelistPush(s)
		a.morphs++
		winner = s
	}
	a.candMu.Lock()
	for _, s := range append(cands, keep...) {
		if !s.MorphCand.Load() {
			s.MorphCand.Store(true)
			a.candidates = append(a.candidates, s)
		}
	}
	a.candMu.Unlock()
	return winner
}

// newSlab allocates and formats a fresh slab extent. Caller holds the
// arena lock (the large allocator has its own).
func (a *arena) newSlab(c *pmem.Ctx, class int) *slab.Slab {
	h := a.h
	// Crash ordering: carve the extent, format the slab header, and only
	// then persist the bookkeeping record — recovery must never see a
	// recorded slab without a valid header. With the arena extent cache
	// the carve happened at refill time (batched, still unrecorded), so
	// the same ordering holds: a crash before RecordExtent leaves free
	// space, never a recorded slab with a garbage header.
	base, ok := a.slabExtent(c)
	if !ok {
		return nil
	}
	s := slab.Format(h.mem, c, base, class, h.bitmapStripes, h.persistSmall)
	var err error
	if a.cache != nil {
		// Record under BookRes alone: the global large lock stays free.
		err = h.large.RecordExtent(c, base, slab.Size, true)
	} else {
		h.large.Res.Acquire(c)
		err = h.large.Record(c, base)
		h.large.Res.Release(c)
	}
	if err != nil {
		// Bookkeeping exhausted: surface as allocation failure; the extent
		// goes back to the cache (still activated, unrecorded) or the free
		// lists.
		if a.cache != nil {
			a.cache.Put(c, base)
		} else {
			h.large.Res.Acquire(c)
			_ = h.large.Free(c, base)
			h.large.Res.Release(c)
		}
		return nil
	}
	s.Owner = a.index
	a.slabsCreated++
	// Publish last: Format already installed the geometry snapshot, so a
	// lock-free reader that wins the race sees a fully-initialized slab.
	h.slabs.Store(base, s)
	a.freelistPush(s)
	a.lruPushTail(s)
	return s
}

// slabExtent produces one activated, unrecorded slab-sized extent: from
// the arena cache when enabled (amortized <1 global-lock acquisition per
// slab), else straight from the global allocator.
func (a *arena) slabExtent(c *pmem.Ctx) (pmem.PAddr, bool) {
	h := a.h
	if a.cache != nil {
		if base, ok := a.cache.Get(c); ok {
			return base, true
		}
		// The heap could not refill this cache, but sibling arenas may be
		// sitting on cached extents: flush them and retry once.
		if h.flushExtentCaches(c, a) {
			if base, ok := a.cache.Get(c); ok {
				return base, true
			}
		}
		return pmem.Null, false
	}
	h.large.Res.Acquire(c)
	base, err := h.large.AllocDeferRecord(c, slab.Size, slab.Size, true)
	h.large.Res.Release(c)
	if err != nil {
		return pmem.Null, false
	}
	return base, true
}

// releaseSlab returns a completely empty slab to the large allocator (or
// the arena cache). The slab is already off every list and unpublished.
func (a *arena) releaseSlab(c *pmem.Ctx, s *slab.Slab) {
	h := a.h
	s.Dead = true
	h.slabs.Delete(s.Base)
	if a.cache != nil {
		// Tombstone before the extent becomes reusable: a new record for
		// overlapping space must never coexist with the old one after a
		// crash. On tombstone failure the extent stays recorded+activated
		// (leaked until shutdown), matching the legacy path's behavior.
		if h.large.TombstoneExtent(c, s.Base) == nil {
			a.cache.Put(c, s.Base)
		}
		return
	}
	h.large.Res.Acquire(c)
	_ = h.large.Free(c, s.Base)
	h.large.Res.Release(c)
}

// freeBypass returns a block straight to its slab (tcache full or
// drained). Caller does not hold locks. When g is non-nil it is the
// geometry snapshot idx was resolved against; the call reports false
// without acting if the slab morphed since (caller re-resolves).
// Tcache drains pass g == nil: their blocks are Reserved, and
// reservations pin the geometry (CanMorphTo requires Reserved == 0).
func (a *arena) freeBypass(c *pmem.Ctx, s *slab.Slab, idx int, fromCache bool, g *slab.Geom) bool {
	a.res.Acquire(c)
	s.Mu.Lock()
	if g != nil && s.Geometry() != g {
		s.Mu.Unlock()
		a.res.Release(c)
		return false
	}
	if fromCache {
		s.Unreserve(idx)
	} else if a.wal != nil && a.h.useWAL {
		// One merged trailing fence for entry + bit (see mallocSmall).
		a.wal.AppendNoFence(c, walog.Entry{Op: walog.OpFreeBit, Addr: s.Base, Aux: uint64(idx), Aux2: uint32(s.Class)})
		s.FreeBlockBatched(c, idx, a.h.persistSmall)
		c.Fence()
	} else {
		s.FreeBlock(c, idx, a.h.persistSmall)
	}
	empty := s.Allocated == 0 && s.Reserved == 0
	wasOff := !a.onFreelist(s)
	if s.UsageBelowMille(a.h.suMille) {
		a.noteCandidate(s)
	}
	s.Mu.Unlock()
	if wasOff && !empty {
		a.freelistPush(s)
	}
	a.lruTouch(s)
	if empty && s.OldClass < 0 {
		// Keep one spare slab per class; release the rest.
		if a.spareExists(s) {
			if a.onFreelist(s) {
				a.freelistRemove(s)
			}
			a.lruRemove(s)
			a.res.Release(c)
			a.releaseSlab(c, s)
			return true
		}
		if wasOff {
			a.freelistPush(s)
		}
	}
	a.res.Release(c)
	return true
}

// drainDepots unreserves every depot-magazine block back into its slab,
// returning slabs that regained space to their freelists. Reservations
// are volatile, so this writes nothing persistent — but the GC variant's
// shutdown SyncBitmap requires reservations drained first, and after the
// arena's last thread detaches every acknowledged free must read as free
// (a depot block is a reservation, which BlockAllocated counts as live).
func (a *arena) drainDepots(c *pmem.Ctx) {
	// Detach the magazines under the arena lock, then return each block
	// through its owner's bypass path: depot blocks can sit in foreign
	// slabs (the GC variant caches cross-arena frees), and freeBypass is
	// the one place that does freelist/release maintenance correctly under
	// the owner's resource.
	a.res.Acquire(c)
	var mags []*tcache.Magazine
	for class := range a.depots {
		mags = append(mags, a.depots[class]...)
		a.depots[class] = a.depots[class][:0]
	}
	a.res.Release(c)
	for _, m := range mags {
		for i := 0; i < m.N; i++ {
			b := m.Blocks[i]
			s := b.Slab.(*slab.Slab)
			a.h.arenas[s.Owner].freeBypass(c, s, b.Idx, true, nil)
			m.Blocks[i] = tcache.Block{}
		}
		m.N = 0
	}
}

// spareExists reports whether the class has another slab with free space
// besides s. Caller holds the arena lock.
func (a *arena) spareExists(s *slab.Slab) bool {
	head := a.freelists[s.Class]
	return head != nil && (head != s || head.FreeNext != nil)
}
