package core

import (
	"sort"

	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
)

// conservativeGC implements NVAlloc-GC's failure recovery: a
// conservative mark-and-sweep from the persistent root slots, as in
// Makalu. Any 8-byte-aligned word inside a reachable object whose value
// is the exact start address of a slab block or extent keeps that object
// alive. Unreachable small blocks have their bitmap bits cleared;
// unreachable (non-slab) extents are freed. Interior pointers are not
// chased (objects must be referenced by their start address).
func (h *Heap) conservativeGC(c *pmem.Ctx) {
	type object struct {
		addr pmem.PAddr
		size uint64
	}

	// resolve maps a candidate pointer value to the object it starts.
	resolve := func(p pmem.PAddr) (object, bool) {
		if p < h.heapBase || uint64(p) >= h.dev.Size() || p%8 != 0 {
			return object{}, false
		}
		base := p &^ (slab.Size - 1)
		if s := h.slabs.Lookup(base); s != nil {
			if idx := s.BlockIndex(p); idx >= 0 {
				return object{addr: p, size: uint64(s.BlockSize)}, true
			}
			if oldIdx := s.OldBlockIndex(p); oldIdx >= 0 {
				return object{addr: p, size: uint64(s.BlockSize)}, true
			}
			return object{}, false
		}
		if v, ok := h.large.Lookup(p); ok && v.Addr == p && !v.Slab {
			return object{addr: p, size: v.Size}, true
		}
		return object{}, false
	}

	marked := make(map[pmem.PAddr]bool)
	var work []object

	// Roots: the heap's root pointer slots.
	for i := 0; i < 64; i++ {
		p := pmem.PAddr(h.dev.ReadU64(h.RootSlot(i)))
		if o, ok := resolve(p); ok && !marked[o.addr] {
			marked[o.addr] = true
			work = append(work, o)
		}
	}

	// Mark: scan every reachable object for further pointers.
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		c.Charge(pmem.CatSearch, int64(o.size)/16+10)
		for off := uint64(0); off+8 <= o.size; off += 8 {
			p := pmem.PAddr(h.dev.ReadU64(o.addr + pmem.PAddr(off)))
			if no, ok := resolve(p); ok && !marked[no.addr] {
				marked[no.addr] = true
				work = append(work, no)
			}
		}
	}

	// Sweep slabs in address order (deterministic freelist rebuild):
	// allocation state becomes exactly the marked set.
	h.slabs.Range(func(_ pmem.PAddr, s *slab.Slab) bool {
		a := h.arenas[s.Owner]
		wasFree := s.FreeCount() > 0
		for idx := 0; idx < s.Blocks; idx++ {
			addr := s.BlockAddr(idx)
			allocated := s.BlockAllocated(idx)
			reachable := marked[addr]
			if s.IsSlabIn() {
				// Blocks pinned by live old-class data stay allocated.
				if cnt := s.OverlapCount(idx); cnt > 0 {
					continue
				}
			}
			switch {
			case reachable && !allocated:
				s.AllocBlock(c, idx, true)
			case !reachable && allocated:
				s.FreeBlock(c, idx, true)
			}
		}
		// Old-class blocks: sweep via the index table.
		if s.IsSlabIn() {
			for _, oldIdx := range s.OldIndices() {
				if !marked[s.OldBlockAddr(oldIdx)] {
					_, _ = s.FreeOldBlock(c, oldIdx, true)
				}
			}
		}
		if !wasFree && s.FreeCount() > 0 && !a.onFreelist(s) {
			a.freelistPush(s)
		}
		c.Charge(pmem.CatSearch, int64(s.Blocks)/8)
		return true
	})

	// Sweep extents: unreachable non-slab extents are leaks; free them in
	// address order so the rebuilt extent freelists are deterministic.
	var leaked []pmem.PAddr
	for addr, v := range h.large.Activated() {
		if !v.Slab && !marked[addr] {
			leaked = append(leaked, addr)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i] < leaked[j] })
	// Batched tombstones: one fence for the whole leak sweep. Safe here
	// because a crash mid-batch just leaves some leaks for the next
	// recovery's GC to re-find (idempotent).
	_ = h.large.FreeBatch(c, leaked)
}
