package core

import (
	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
	"nvalloc/internal/walog"
)

// MetaRanges returns the device regions holding checksummed or sealed
// NVAlloc metadata: the superblock fields, the WAL rings, the
// bookkeeping-log header line and the header lines of the first slabs.
// Fault-injection harnesses restrict bit flips to these ranges to
// exercise the detection paths (a flip in plain object data is the
// application's problem, not the allocator's). The device must hold a
// valid superblock.
func MetaRanges(dev *pmem.Device) []pmem.Range {
	rs := []pmem.Range{{Start: superBase, End: superBase + sbRoots}}
	arenas := dev.ReadU64(superBase + sbArenas)
	walEnts := int(dev.ReadU64(superBase + sbWALEnts))
	stripes := int(dev.ReadU64(superBase + sbStripes))
	walBase := pmem.PAddr(dev.ReadU64(superBase + sbWALBase))
	region := pmem.PAddr(walog.RegionSize(walEnts, stripes))
	rs = append(rs, pmem.Range{Start: walBase, End: walBase + pmem.PAddr(arenas)*region})
	if dev.ReadU64(superBase+sbBookMode) == 1 {
		blogBase := pmem.PAddr(dev.ReadU64(superBase + sbBlogBase))
		rs = append(rs, pmem.Range{Start: blogBase, End: blogBase + pmem.LineSize})
	}
	heapBase := pmem.PAddr(dev.ReadU64(superBase + sbHeapBase))
	for k := pmem.PAddr(0); k < 32; k++ {
		base := heapBase + k*slab.Size
		if uint64(base)+pmem.LineSize > dev.Size() {
			break
		}
		rs = append(rs, pmem.Range{Start: base, End: base + pmem.LineSize})
	}
	return rs
}
