package core

import (
	"nvalloc/internal/alloc"
	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
	"nvalloc/internal/walog"
)

// Region is one labeled device range of the NVAlloc on-media layout.
// Crash harnesses use the labels to classify which persistent structure
// a flush (or a fault) landed in.
type Region struct {
	Name  string // "superblock", "roots", "wal", "blog" or "heap"
	Range pmem.Range
}

// Regions returns the labeled layout of an NVAlloc device: the
// checksummed superblock fields, the root-slot array, the WAL rings, the
// bookkeeping-log region (log-structured mode only) and the slab/extent
// heap area. The device must hold a valid superblock.
func Regions(dev pmem.Dev) []Region {
	rs := []Region{
		{Name: "superblock", Range: pmem.Range{Start: superBase, End: superBase + sbRoots}},
		{Name: "roots", Range: pmem.Range{Start: superBase + sbRoots, End: superBase + sbRoots + 8*alloc.NumRootSlots}},
	}
	arenas := dev.ReadU64(superBase + sbArenas)
	walEnts := int(dev.ReadU64(superBase + sbWALEnts))
	stripes := int(dev.ReadU64(superBase + sbStripes))
	walBase := pmem.PAddr(dev.ReadU64(superBase + sbWALBase))
	region := pmem.PAddr(walog.RegionSize(walEnts, stripes))
	rs = append(rs, Region{Name: "wal", Range: pmem.Range{Start: walBase, End: walBase + pmem.PAddr(arenas)*region}})
	if dev.ReadU64(superBase+sbBookMode) == 1 {
		blogBase := pmem.PAddr(dev.ReadU64(superBase + sbBlogBase))
		blogSize := dev.ReadU64(superBase + sbBlogSize) // total across shards
		rs = append(rs, Region{Name: "blog", Range: pmem.Range{Start: blogBase, End: blogBase + pmem.PAddr(blogSize)}})
	}
	heapBase := pmem.PAddr(dev.ReadU64(superBase + sbHeapBase))
	rs = append(rs, Region{Name: "heap", Range: pmem.Range{Start: heapBase, End: pmem.PAddr(dev.Size())}})
	return rs
}

// MetaRanges returns the device regions holding checksummed or sealed
// NVAlloc metadata: the superblock fields, the WAL rings, the
// bookkeeping-log header line and the header lines of the first slabs.
// Fault-injection harnesses restrict bit flips to these ranges to
// exercise the detection paths (a flip in plain object data is the
// application's problem, not the allocator's). The device must hold a
// valid superblock.
func MetaRanges(dev pmem.Dev) []pmem.Range {
	rs := []pmem.Range{{Start: superBase, End: superBase + sbRoots}}
	arenas := dev.ReadU64(superBase + sbArenas)
	walEnts := int(dev.ReadU64(superBase + sbWALEnts))
	stripes := int(dev.ReadU64(superBase + sbStripes))
	walBase := pmem.PAddr(dev.ReadU64(superBase + sbWALBase))
	region := pmem.PAddr(walog.RegionSize(walEnts, stripes))
	rs = append(rs, pmem.Range{Start: walBase, End: walBase + pmem.PAddr(arenas)*region})
	if dev.ReadU64(superBase+sbBookMode) == 1 {
		blogBase := pmem.PAddr(dev.ReadU64(superBase + sbBlogBase))
		rs = append(rs, pmem.Range{Start: blogBase, End: blogBase + pmem.LineSize})
	}
	heapBase := pmem.PAddr(dev.ReadU64(superBase + sbHeapBase))
	for k := pmem.PAddr(0); k < 32; k++ {
		base := heapBase + k*slab.Size
		if uint64(base)+pmem.LineSize > dev.Size() {
			break
		}
		rs = append(rs, pmem.Range{Start: base, End: base + pmem.LineSize})
	}
	return rs
}
