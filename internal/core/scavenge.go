package core

import (
	"errors"
	"fmt"
	"strings"

	"nvalloc/internal/alloc"
	"nvalloc/internal/blog"
	"nvalloc/internal/extent"
	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
	"nvalloc/internal/walog"
)

// maxScavengeRounds bounds the repair loop. Every successful round
// removes at least one corrupt structure from the open path, so the
// bound is only hit by images whose damage repairs cannot converge on.
const maxScavengeRounds = 32

// Check opens a clone of the device and reports everything wrong with
// the image without modifying it. An empty result means the image opens
// cleanly. When the image is damaged, the first entry is the error Open
// hit and the rest describe what a Scavenge run would do about it.
// Cloning is a simulation feature, so Check takes the concrete device.
func Check(dev *pmem.Device, opts Options) []string {
	clone := dev.Clone()
	if _, _, err := Open(clone, opts); err == nil {
		return nil
	}
	_, issues, err := Scavenge(dev.Clone(), opts)
	if err != nil {
		issues = append(issues, "unrepairable: "+err.Error())
	}
	return issues
}

// Scavenge repeatedly opens the heap, repairing each detected corruption
// in place, until the image opens cleanly or a corruption has no repair.
// Repairs are conservative — damaged structures are quarantined, reset
// or truncated (leaking or dropping their contents), never guessed at —
// and dangling root slots are scrubbed after a successful open. On
// success it returns the opened heap and a description of every repair.
func Scavenge(dev pmem.Dev, opts Options) (*Heap, []string, error) {
	var repairs []string
	for round := 0; round < maxScavengeRounds; round++ {
		h, _, err := Open(dev, opts)
		if err == nil {
			repairs = append(repairs, h.scrubRoots()...)
			return h, repairs, nil
		}
		var ce *pmem.CorruptError
		if !errors.As(err, &ce) {
			return nil, repairs, err
		}
		did, ok := repairOne(dev, ce)
		if !ok {
			return nil, repairs, err
		}
		repairs = append(repairs, fmt.Sprintf("%s — %s", err, did))
	}
	return nil, repairs, fmt.Errorf("core: scavenge did not converge after %d rounds", maxScavengeRounds)
}

// repairOne applies the conservative repair for one CorruptError. The
// superblock must already validate for every region except "superblock"
// itself (Open fails there first), so superblock field reads below are
// safe. Returns what was done and whether a repair was possible.
func repairOne(dev pmem.Dev, ce *pmem.CorruptError) (string, bool) {
	switch ce.Region {
	case "superblock":
		switch ce.Addr {
		case superBase + sbState:
			dev.WriteU64(superBase+sbState, pmem.SealU64(stateRunning))
			return "resealed run state as running (forces crash recovery)", true
		case superBase + sbChecksum:
			// A flipped field would now pass the checksum but still hits
			// the range and layout validation on the next open.
			dev.WriteU64(superBase+sbChecksum, uint64(superCRC(dev)))
			return "recomputed superblock checksum", true
		}
		return "", false

	case "wal":
		// Reset the damaged ring. Its entries are lost, which matches a
		// crash before any of them were appended: the operations they
		// guarded simply stay un-redone.
		walBase := dev.ReadU64(superBase + sbWALBase)
		ents := int(dev.ReadU64(superBase + sbWALEnts))
		stripes := int(dev.ReadU64(superBase + sbStripes))
		arenas := dev.ReadU64(superBase + sbArenas)
		region := uint64(walog.RegionSize(ents, stripes))
		if uint64(ce.Addr) < walBase || uint64(ce.Addr) >= walBase+arenas*region {
			return "", false
		}
		ring := (uint64(ce.Addr) - walBase) / region
		dev.Zero(pmem.PAddr(walBase+ring*region), int(region))
		return fmt.Sprintf("reset WAL ring %d", ring), true

	case "blog":
		base := pmem.PAddr(dev.ReadU64(superBase + sbBlogBase))
		size := dev.ReadU64(superBase + sbBlogSize)
		stripes := int(dev.ReadU64(superBase + sbWALStripes))
		shards := int(dev.ReadU64(superBase + sbBookShards))
		if done := blog.ScrubSharded(dev, base, size, stripes, shards); len(done) > 0 {
			return strings.Join(done, "; "), true
		}
		return "", false

	case "slab":
		base := ce.Addr &^ (slab.Size - 1)
		heapBase := dev.ReadU64(superBase + sbHeapBase)
		if uint64(base) < heapBase || uint64(base)+slab.Size > dev.Size() {
			return "", false
		}
		c := dev.NewCtx()
		slab.Quarantine(dev.Mem(), c, base, 1)
		c.Merge()
		return fmt.Sprintf("quarantined slab %#x as fully allocated", base), true

	case "extent":
		// A live-extent record failed validation; drop the record. The
		// bytes it covered leak into the free pool (or stay leaked), but
		// every other record becomes recoverable again.
		if dev.ReadU64(superBase+sbBookMode) == 1 {
			base := pmem.PAddr(dev.ReadU64(superBase + sbBlogBase))
			size := dev.ReadU64(superBase + sbBlogSize)
			stripes := int(dev.ReadU64(superBase + sbWALStripes))
			shards := int(dev.ReadU64(superBase + sbBookShards))
			if n := blog.DropRecordSharded(dev, base, size, stripes, shards, ce.Addr); n > 0 {
				return fmt.Sprintf("dropped %d bookkeeping-log record(s) for %#x", n, ce.Addr), true
			}
			return "", false
		}
		heapBase := dev.ReadU64(superBase + sbHeapBase)
		if uint64(ce.Addr) < heapBase {
			return "", false
		}
		off := uint64(ce.Addr) - heapBase
		slotAddr := heapBase + off/extent.ChunkSize*extent.ChunkSize + off%extent.ChunkSize/extent.PageSize*8
		if slotAddr+8 > dev.Size() {
			return "", false
		}
		dev.WriteU64(pmem.PAddr(slotAddr), 0)
		return fmt.Sprintf("cleared in-place header record for %#x", ce.Addr), true
	}
	return "", false
}

// scrubRoots clears root-pointer slots that do not reference a live
// object after recovery — a flipped root word would otherwise hand the
// application a dangling pointer the first time it follows it.
func (h *Heap) scrubRoots() []string {
	var out []string
	c := h.dev.NewCtx()
	defer c.Merge()
	for i := 0; i < alloc.NumRootSlots; i++ {
		slot := h.RootSlot(i)
		p := pmem.PAddr(h.dev.ReadU64(slot))
		if p == pmem.Null || h.resolvesLive(p) {
			continue
		}
		c.PersistU64(pmem.CatMeta, slot, 0)
		c.Fence()
		out = append(out, fmt.Sprintf("cleared root slot %d (dangling pointer %#x)", i, p))
	}
	return out
}

// resolvesLive reports whether p is the start address of a live slab
// block (current or old class) or large extent.
func (h *Heap) resolvesLive(p pmem.PAddr) bool {
	if p < h.heapBase || uint64(p) >= h.dev.Size() || p%8 != 0 {
		return false
	}
	base := p &^ (slab.Size - 1)
	if s := h.slabs.Lookup(base); s != nil {
		s.Mu.Lock()
		defer s.Mu.Unlock()
		if idx := s.BlockIndex(p); idx >= 0 {
			return s.BlockAllocated(idx)
		}
		return s.OldBlockIndex(p) >= 0
	}
	if h.shards != nil && h.shards.Resolves(p) {
		return true
	}
	v, ok := h.large.Lookup(p)
	return ok && v.Addr == p && !v.Slab
}
