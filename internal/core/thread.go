package core

import (
	"nvalloc/internal/alloc"
	"nvalloc/internal/extent"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/slab"
	"nvalloc/internal/tcache"
	"nvalloc/internal/walog"
)

// Thread is a per-worker allocation handle: a pmem context (virtual
// clock) plus one tcache per size class, bound to the least-loaded
// arena.
type Thread struct {
	h      *Heap
	arena  *arena
	ctx    *pmem.Ctx
	caches []*tcache.Cache
	// remote holds one cross-arena free buffer per owner arena (LOG
	// variant only): frees of blocks another arena owns accumulate here
	// and drain in one owner-resource section (see drainRemote).
	remote []tcache.RemoteBuf
	closed bool

	// drainRemote scratch, reused across drains so the steady-state
	// remote-free path allocates nothing.
	drainEntries []walog.Entry
	drainStale   []tcache.RemoteFree
	drainApply   []tcache.RemoteFree
	drainSlabs   []*slab.Slab
}

var (
	_ alloc.Thread  = (*Thread)(nil)
	_ alloc.Flusher = (*Thread)(nil)
)

// remoteBatch bounds each per-owner-arena remote-free buffer: a drain
// amortizes one owner-resource acquisition and two fences (one for the
// WAL batch, one for the bitmap clears) over up to this many frees.
const remoteBatch = 16

// NewThread registers a worker with the heap, assigning it to the arena
// with the fewest threads (Section 4.2).
func (h *Heap) NewThread() alloc.Thread {
	h.threadsMu.Lock()
	// Least-loaded arena, with a rotating starting point so that ties
	// (e.g. short-lived threads created one after another) still spread
	// across arenas the way core-pinned threads would.
	n := len(h.arenas)
	best := h.arenas[h.nextOwner%n]
	for i := 1; i < n; i++ {
		a := h.arenas[(h.nextOwner+i)%n]
		if a.threads < best.threads {
			best = a
		}
	}
	h.nextOwner++
	best.threads++
	h.threadsMu.Unlock()

	t := &Thread{
		h:      h,
		arena:  best,
		ctx:    h.dev.NewCtx(),
		caches: make([]*tcache.Cache, sizeclass.NumClasses()),
		remote: make([]tcache.RemoteBuf, len(h.arenas)),
	}
	return t
}

// Ctx returns the worker's pmem context.
func (t *Thread) Ctx() *pmem.Ctx { return t.ctx }

func (t *Thread) cache(class int) *tcache.Cache {
	c := t.caches[class]
	if c == nil {
		cap := t.h.opts.TcacheCap
		// Large classes cache fewer blocks (bounded bytes).
		if bs := int(sizeclass.Size(class)); bs > 1024 {
			cap = 8
		}
		c = tcache.New(t.h.tcacheStripes, cap)
		t.caches[class] = c
	}
	return c
}

// opBaseNS is the CPU cost charged per allocator operation outside of
// explicit search charges (fast-path bookkeeping, size-class lookup).
const opBaseNS = 18

// Malloc allocates size bytes.
func (t *Thread) Malloc(size uint64) (pmem.PAddr, error) {
	if size == 0 {
		return pmem.Null, alloc.ErrBadSize
	}
	t.ctx.Charge(pmem.CatOther, opBaseNS)
	if !sizeclass.IsSmall(size) {
		return t.mallocLarge(size)
	}
	return t.mallocSmall(sizeclass.Class(uint32(size)))
}

func (t *Thread) mallocSmall(class int) (pmem.PAddr, error) {
	tc := t.cache(class)
	if tc.Empty() {
		if t.h.useWAL {
			// The refill already holds the arena resource: batch the first
			// block's WAL append + bitmap commit into the same acquisition.
			if addr, ok := t.arena.fillAndCommit(t.ctx, class, tc, tc.Cap()); ok {
				return addr, nil
			}
			return pmem.Null, alloc.ErrOutOfMemory
		}
		if t.arena.fill(t.ctx, class, tc, tc.Cap()) == 0 {
			return pmem.Null, alloc.ErrOutOfMemory
		}
	}
	b, ok := tc.Pop()
	if !ok {
		return pmem.Null, alloc.ErrOutOfMemory
	}
	s := b.Slab.(*slab.Slab)
	// Persist the allocation: WAL entry (LOG) plus the interleaved bitmap
	// bit (LOG and IC); the GC variant commits in DRAM only.
	switch {
	case t.h.useWAL:
		a := t.h.arenas[s.Owner]
		a.res.Acquire(t.ctx)
		s.Mu.Lock()
		// Aux2 records the geometry the entry was logged under: replay
		// must not apply this block index to a since-morphed slab.
		// Entry flush and bitmap flush share one trailing fence: durability
		// follows flush order, so no crash boundary sees the bit without
		// its entry, and a persisted entry replays idempotently. The fence
		// stays inside the critical section so at most one append per log
		// is ever in flight (replay tolerates exactly one torn slot).
		a.wal.AppendNoFence(t.ctx, walog.Entry{Op: walog.OpAllocBit, Addr: s.Base, Aux: uint64(b.Idx), Aux2: uint32(s.Class)})
		s.CommitAllocBatched(t.ctx, b.Idx, true)
		t.ctx.Fence()
		s.Mu.Unlock()
		a.res.Release(t.ctx)
	default:
		s.Mu.Lock()
		s.CommitAlloc(t.ctx, b.Idx, t.h.persistSmall)
		s.Mu.Unlock()
	}
	return s.BlockAddr(b.Idx), nil
}

func (t *Thread) mallocLarge(size uint64) (pmem.PAddr, error) {
	h := t.h
	// Moderate sizes go through the thread's shard pool — its own lock,
	// leases refilled from the global allocator — so parallel large
	// allocations stop serializing on large.Res.
	if h.shards != nil && size <= extent.MaxShardAlloc {
		addr, err := h.shards.Pool(t.arena.index).Alloc(t.ctx, size)
		if err == nil {
			return addr, nil
		}
		// Lease refill failed (heap nearly full): spill cached extents back
		// to the global pool and fall through to the global path.
		h.flushExtentCaches(t.ctx, nil)
	}
	h.large.Res.Acquire(t.ctx)
	addr, err := h.large.Alloc(t.ctx, size, 0, false)
	h.large.Res.Release(t.ctx)
	if err != nil {
		return pmem.Null, alloc.ErrOutOfMemory
	}
	return addr, nil
}

// Free releases a block or extent.
func (t *Thread) Free(addr pmem.PAddr) error {
	if addr == pmem.Null {
		return alloc.ErrBadAddress
	}
	t.ctx.Charge(pmem.CatOther, opBaseNS)
	// Resolve the slab by its 64 KiB-aligned base: a lock-free page-map
	// lookup (the address index the paper implements with an R-tree).
	s := t.h.slabs.Lookup(addr &^ (slab.Size - 1))
	if s == nil {
		return t.freeLarge(addr)
	}
	return t.freeSmall(s, addr, true)
}

// freeSmall returns a block to its slab through a single critical
// section. Address-to-index resolution runs lock-free against the
// slab's published geometry snapshot; pointer identity of the snapshot
// is revalidated under s.Mu (or the arena lock on the bypass path)
// before the index is applied, and the whole operation retries on the
// rare concurrent morph. In the WAL variant a cross-arena free is
// buffered instead (buffer=true) and applied later by drainRemote;
// drain retries pass buffer=false to keep the retry path acyclic.
func (t *Thread) freeSmall(s *slab.Slab, addr pmem.PAddr, buffer bool) error {
	owner := t.h.arenas[s.Owner]
	for {
		g := s.Geometry()
		if g.SlabIn {
			// A block_before (old size class) bypasses the tcache entirely.
			// Old-class membership is an index-table property, not a
			// geometric one, so it is decided under the slab lock.
			s.Mu.Lock()
			if s.Geometry() != g {
				s.Mu.Unlock()
				continue
			}
			oldIdx := s.OldBlockIndex(addr)
			s.Mu.Unlock()
			if oldIdx >= 0 {
				return t.freeOld(owner, s, oldIdx)
			}
		}
		idx := g.BlockIndex(s.Base, addr)
		if idx < 0 {
			return alloc.ErrBadAddress
		}
		if buffer && t.h.useWAL && s.Owner != t.arena.index {
			// Cross-arena free: buffer it for a batched drain instead of
			// taking the owner's resource (and paying two fences) per free.
			t.bufferRemoteFree(s, g, addr, idx)
			return nil
		}
		tc := t.cache(g.Class)
		if tc.Full() && !t.evictMagazine(tc, g.Class) {
			// Depot full too: return directly to the slab.
			if !owner.freeBypass(t.ctx, s, idx, false, g) {
				continue
			}
			return nil
		}
		// Persist the free, then cache the block in this thread's tcache.
		if t.h.useWAL {
			owner.res.Acquire(t.ctx)
		}
		s.Mu.Lock()
		if s.Geometry() != g {
			s.Mu.Unlock()
			if t.h.useWAL {
				owner.res.Release(t.ctx)
			}
			continue
		}
		if t.h.useWAL {
			// One merged trailing fence for entry + bit, as in mallocSmall.
			owner.wal.AppendNoFence(t.ctx, walog.Entry{Op: walog.OpFreeBit, Addr: s.Base, Aux: uint64(idx), Aux2: uint32(g.Class)})
			s.CommitFreeToCacheBatched(t.ctx, idx, t.h.persistSmall)
			t.ctx.Fence()
		} else {
			s.CommitFreeToCache(t.ctx, idx, t.h.persistSmall)
		}
		if s.UsageBelowMille(t.h.suMille) {
			owner.noteCandidate(s)
		}
		s.Mu.Unlock()
		if t.h.useWAL {
			owner.res.Release(t.ctx)
		}
		tc.Push(owner.tcacheStripeGeom(g, idx), tcache.Block{Slab: s, Idx: idx})
		return nil
	}
}

// evictMagazine relieves a full tcache by moving half its capacity into
// the thread's arena depot in one critical section. The transfer is
// purely volatile — no WAL entry, no flush, no fence — because every
// moved block is a reservation whose persistent bit is already clear;
// a crash merely forgets the reservations, which recovery treats as
// free space. Returns false when the depot is full, sending the caller
// down the per-block bypass path instead.
func (t *Thread) evictMagazine(tc *tcache.Cache, class int) bool {
	a := t.arena
	a.res.Acquire(t.ctx)
	if !a.depotRoom(class) {
		a.res.Release(t.ctx)
		return false
	}
	m := a.takeSpareMag()
	if m == nil {
		m = new(tcache.Magazine)
	}
	k := tc.Cap() / 2
	if k < 1 {
		k = 1
	}
	if tc.PopMagazine(m, k) == 0 {
		a.spareMag(m)
		a.res.Release(t.ctx)
		return false
	}
	a.depotPush(class, m)
	a.res.Release(t.ctx)
	return true
}

func (t *Thread) freeOld(owner *arena, s *slab.Slab, oldIdx int) error {
	owner.res.Acquire(t.ctx)
	defer owner.res.Release(t.ctx)
	s.Mu.Lock()
	done, err := s.FreeOldBlock(t.ctx, oldIdx, t.h.persistSmall)
	if err == nil && s.UsageBelowMille(t.h.suMille) {
		owner.noteCandidate(s)
	}
	hasFree := err == nil && s.FreeCount() > 0
	s.Mu.Unlock()
	if err != nil {
		return err
	}
	if done {
		// Fully demoted to a regular slab: it may morph again.
		owner.lruTouch(s)
	}
	if hasFree && !owner.onFreelist(s) {
		owner.freelistPush(s)
	}
	return nil
}

// bufferRemoteFree queues a cross-arena free for its owner arena,
// draining the buffer when it reaches remoteBatch. The free is
// acknowledged immediately; until the drain persists its WAL entry a
// crash leaks the block (the block stays allocated on media, exactly as
// if the free had never been called), while a clean Close — and any
// explicit Flush — always drains. Callers that need the stronger
// "freed-before-crash" guarantee use FreeFrom, whose own WAL record is
// fenced before this buffering ever runs.
func (t *Thread) bufferRemoteFree(s *slab.Slab, g *slab.Geom, addr pmem.PAddr, idx int) {
	ai := s.Owner
	if t.remote[ai].Add(tcache.RemoteFree{Slab: s, Geom: g, Addr: uint64(addr), Idx: idx}) >= remoteBatch {
		t.drainRemote(ai)
	}
}

// drainRemote applies every buffered free for owner arena ai in one
// owner-resource critical section: one batched WAL append (per-entry
// flush), then the bitmap clears (per-line flush), closed by a single
// trailing fence for the whole batch. A crash
// between the two persists a valid prefix of WAL entries whose replay
// re-clears the bits, so partially drained frees are never lost once
// their WAL entry is in. Entries whose slab morphed since buffering are
// retried through the unbuffered path afterwards.
func (t *Thread) drainRemote(ai int) {
	frees := t.remote[ai].Take()
	if len(frees) == 0 {
		return
	}
	owner := t.h.arenas[ai]
	stale, apply := t.drainStale[:0], t.drainApply[:0]
	entries := t.drainEntries[:0]
	owner.res.Acquire(t.ctx)
	for _, f := range frees {
		s := f.Slab.(*slab.Slab)
		// Geometry only changes under the owner's resource (morphs run in
		// morphInto), which we hold: one snapshot comparison decides each
		// entry for the whole drain.
		if s.Geometry() != f.Geom.(*slab.Geom) {
			stale = append(stale, f)
			continue
		}
		entries = append(entries, walog.Entry{
			Op: walog.OpFreeBit, Addr: s.Base, Aux: uint64(f.Idx), Aux2: uint32(f.Geom.(*slab.Geom).Class),
		})
		apply = append(apply, f)
	}
	t.drainStale, t.drainApply, t.drainEntries = stale, apply, entries
	if len(apply) == 0 {
		owner.res.Release(t.ctx)
		for _, f := range stale {
			_ = t.freeSmall(f.Slab.(*slab.Slab), pmem.PAddr(f.Addr), false)
		}
		return
	}
	// The batch's entry flushes and the bitmap clears below share the one
	// trailing fence after the clears (see mallocSmall's merge argument):
	// one fence per drain instead of two.
	owner.wal.AppendBatchNoFence(t.ctx, entries)
	slabs := t.drainSlabs[:0]
	for _, f := range apply {
		s := f.Slab.(*slab.Slab)
		s.Mu.Lock()
		s.FreeBlockBatched(t.ctx, f.Idx, t.h.persistSmall)
		if s.UsageBelowMille(t.h.suMille) {
			owner.noteCandidate(s)
		}
		s.Mu.Unlock()
		seen := false
		for _, x := range slabs {
			if x == s {
				seen = true
				break
			}
		}
		if !seen {
			slabs = append(slabs, s)
		}
	}
	t.ctx.Fence()
	// Per-slab list maintenance, mirroring freeBypass: refreshed slabs
	// rejoin their freelist, and a fully empty slab beyond the per-class
	// spare is released (outside the resource, like every release).
	var release []*slab.Slab
	for _, s := range slabs {
		s.Mu.Lock()
		empty := s.Allocated == 0 && s.Reserved == 0
		old := s.OldClass >= 0
		s.Mu.Unlock()
		wasOff := !owner.onFreelist(s)
		if wasOff && !empty {
			owner.freelistPush(s)
		}
		owner.lruTouch(s)
		if empty && !old {
			if owner.spareExists(s) {
				if owner.onFreelist(s) {
					owner.freelistRemove(s)
				}
				owner.lruRemove(s)
				release = append(release, s)
				continue
			}
			if wasOff {
				owner.freelistPush(s)
			}
		}
	}
	owner.res.Release(t.ctx)
	for _, s := range release {
		owner.releaseSlab(t.ctx, s)
	}
	for _, f := range stale {
		_ = t.freeSmall(f.Slab.(*slab.Slab), pmem.PAddr(f.Addr), false)
	}
}

// Flush drains every buffered remote free (alloc.Flusher): after Flush
// returns, every free acknowledged before it is persistent.
func (t *Thread) Flush() {
	for ai := range t.remote {
		t.drainRemote(ai)
	}
}

func (t *Thread) freeLarge(addr pmem.PAddr) error {
	h := t.h
	// A lease-map hit routes the free back to its shard; a miss (including
	// shard sub-allocations from before a crash, rebuilt as ordinary
	// extents) falls through to the global allocator.
	if h.shards != nil {
		if handled, err := h.shards.Free(t.ctx, addr); handled {
			if err != nil {
				return alloc.ErrBadAddress
			}
			return nil
		}
	}
	h.large.Res.Acquire(t.ctx)
	defer h.large.Res.Release(t.ctx)
	if err := h.large.Free(t.ctx, addr); err != nil {
		return alloc.ErrBadAddress
	}
	return nil
}

// MallocTo atomically allocates and publishes the result into the
// persistent pointer slot (the paper's nvalloc_malloc_to): in the LOG
// variant a WAL record makes the pair {slot, block} recoverable; in the
// GC variant reachability from the slot is what keeps the block alive.
func (t *Thread) MallocTo(slot pmem.PAddr, size uint64) (pmem.PAddr, error) {
	addr, err := t.Malloc(size)
	if err != nil {
		return pmem.Null, err
	}
	if t.h.useWAL {
		a := t.arena
		a.res.Acquire(t.ctx)
		a.wal.Append(t.ctx, walog.Entry{
			Op: walog.OpMallocTo, Addr: slot, Aux: uint64(addr), Aux2: uint32(size),
		})
		a.res.Release(t.ctx)
	}
	t.ctx.PersistU64(pmem.CatOther, slot, uint64(addr))
	t.ctx.Fence()
	return addr, nil
}

// FreeFrom atomically frees the block referenced by the persistent slot
// and clears the slot.
func (t *Thread) FreeFrom(slot pmem.PAddr) error {
	addr := pmem.PAddr(t.h.dev.ReadU64(slot))
	if addr == pmem.Null {
		return alloc.ErrBadAddress
	}
	if t.h.useWAL {
		a := t.arena
		a.res.Acquire(t.ctx)
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpFreeFrom, Addr: slot, Aux: uint64(addr)})
		a.res.Release(t.ctx)
	}
	t.ctx.PersistU64(pmem.CatOther, slot, 0)
	t.ctx.Fence()
	return t.Free(addr)
}

// Close drains the thread's tcaches back to their slabs and merges its
// statistics into the device.
func (t *Thread) Close() {
	if t.closed {
		return
	}
	t.closed = true
	t.Flush()
	for _, tc := range t.caches {
		if tc == nil {
			continue
		}
		for _, b := range tc.Drain() {
			s := b.Slab.(*slab.Slab)
			t.h.arenas[s.Owner].freeBypass(t.ctx, s, b.Idx, true, nil)
		}
	}
	t.h.threadsMu.Lock()
	t.arena.threads--
	last := t.arena.threads == 0
	t.h.threadsMu.Unlock()
	if last {
		// No thread is left to refill from this arena's depot: unreserve
		// the parked magazines so every acknowledged free reads as free.
		t.arena.drainDepots(t.ctx)
	}
	t.ctx.Merge()
}
