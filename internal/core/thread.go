package core

import (
	"nvalloc/internal/alloc"
	"nvalloc/internal/extent"
	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
	"nvalloc/internal/slab"
	"nvalloc/internal/tcache"
	"nvalloc/internal/walog"
)

// Thread is a per-worker allocation handle: a pmem context (virtual
// clock) plus one tcache per size class, bound to the least-loaded
// arena.
type Thread struct {
	h      *Heap
	arena  *arena
	ctx    *pmem.Ctx
	caches []*tcache.Cache
	closed bool
}

var _ alloc.Thread = (*Thread)(nil)

// NewThread registers a worker with the heap, assigning it to the arena
// with the fewest threads (Section 4.2).
func (h *Heap) NewThread() alloc.Thread {
	h.threadsMu.Lock()
	// Least-loaded arena, with a rotating starting point so that ties
	// (e.g. short-lived threads created one after another) still spread
	// across arenas the way core-pinned threads would.
	n := len(h.arenas)
	best := h.arenas[h.nextOwner%n]
	for i := 1; i < n; i++ {
		a := h.arenas[(h.nextOwner+i)%n]
		if a.threads < best.threads {
			best = a
		}
	}
	h.nextOwner++
	best.threads++
	h.threadsMu.Unlock()

	t := &Thread{
		h:      h,
		arena:  best,
		ctx:    h.dev.NewCtx(),
		caches: make([]*tcache.Cache, sizeclass.NumClasses()),
	}
	return t
}

// Ctx returns the worker's pmem context.
func (t *Thread) Ctx() *pmem.Ctx { return t.ctx }

func (t *Thread) cache(class int) *tcache.Cache {
	c := t.caches[class]
	if c == nil {
		cap := t.h.opts.TcacheCap
		// Large classes cache fewer blocks (bounded bytes).
		if bs := int(sizeclass.Size(class)); bs > 1024 {
			cap = 8
		}
		c = tcache.New(t.h.tcacheStripes, cap)
		t.caches[class] = c
	}
	return c
}

// opBaseNS is the CPU cost charged per allocator operation outside of
// explicit search charges (fast-path bookkeeping, size-class lookup).
const opBaseNS = 18

// Malloc allocates size bytes.
func (t *Thread) Malloc(size uint64) (pmem.PAddr, error) {
	if size == 0 {
		return pmem.Null, alloc.ErrBadSize
	}
	t.ctx.Charge(pmem.CatOther, opBaseNS)
	if !sizeclass.IsSmall(size) {
		return t.mallocLarge(size)
	}
	return t.mallocSmall(sizeclass.Class(uint32(size)))
}

func (t *Thread) mallocSmall(class int) (pmem.PAddr, error) {
	tc := t.cache(class)
	if tc.Empty() {
		if t.h.useWAL {
			// The refill already holds the arena resource: batch the first
			// block's WAL append + bitmap commit into the same acquisition.
			if addr, ok := t.arena.fillAndCommit(t.ctx, class, tc, tc.Cap()); ok {
				return addr, nil
			}
			return pmem.Null, alloc.ErrOutOfMemory
		}
		if t.arena.fill(t.ctx, class, tc, tc.Cap()) == 0 {
			return pmem.Null, alloc.ErrOutOfMemory
		}
	}
	b, ok := tc.Pop()
	if !ok {
		return pmem.Null, alloc.ErrOutOfMemory
	}
	s := b.Slab.(*slab.Slab)
	// Persist the allocation: WAL entry (LOG) plus the interleaved bitmap
	// bit (LOG and IC); the GC variant commits in DRAM only.
	switch {
	case t.h.useWAL:
		a := t.h.arenas[s.Owner]
		a.res.Acquire(t.ctx)
		s.Mu.Lock()
		// Aux2 records the geometry the entry was logged under: replay
		// must not apply this block index to a since-morphed slab.
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpAllocBit, Addr: s.Base, Aux: uint64(b.Idx), Aux2: uint32(s.Class)})
		s.CommitAlloc(t.ctx, b.Idx, true)
		s.Mu.Unlock()
		a.res.Release(t.ctx)
	default:
		s.Mu.Lock()
		s.CommitAlloc(t.ctx, b.Idx, t.h.persistSmall)
		s.Mu.Unlock()
	}
	return s.BlockAddr(b.Idx), nil
}

func (t *Thread) mallocLarge(size uint64) (pmem.PAddr, error) {
	h := t.h
	// Moderate sizes go through the thread's shard pool — its own lock,
	// leases refilled from the global allocator — so parallel large
	// allocations stop serializing on large.Res.
	if h.shards != nil && size <= extent.MaxShardAlloc {
		addr, err := h.shards.Pool(t.arena.index).Alloc(t.ctx, size)
		if err == nil {
			return addr, nil
		}
		// Lease refill failed (heap nearly full): spill cached extents back
		// to the global pool and fall through to the global path.
		h.flushExtentCaches(t.ctx, nil)
	}
	h.large.Res.Acquire(t.ctx)
	addr, err := h.large.Alloc(t.ctx, size, 0, false)
	h.large.Res.Release(t.ctx)
	if err != nil {
		return pmem.Null, alloc.ErrOutOfMemory
	}
	return addr, nil
}

// Free releases a block or extent.
func (t *Thread) Free(addr pmem.PAddr) error {
	if addr == pmem.Null {
		return alloc.ErrBadAddress
	}
	t.ctx.Charge(pmem.CatOther, opBaseNS)
	// Resolve the slab by its 64 KiB-aligned base: a lock-free page-map
	// lookup (the address index the paper implements with an R-tree).
	s := t.h.slabs.Lookup(addr &^ (slab.Size - 1))
	if s == nil {
		return t.freeLarge(addr)
	}
	return t.freeSmall(s, addr)
}

// freeSmall returns a block to its slab through a single critical
// section. Address-to-index resolution runs lock-free against the
// slab's published geometry snapshot; pointer identity of the snapshot
// is revalidated under s.Mu (or the arena lock on the bypass path)
// before the index is applied, and the whole operation retries on the
// rare concurrent morph.
func (t *Thread) freeSmall(s *slab.Slab, addr pmem.PAddr) error {
	owner := t.h.arenas[s.Owner]
	for {
		g := s.Geometry()
		if g.SlabIn {
			// A block_before (old size class) bypasses the tcache entirely.
			// Old-class membership is an index-table property, not a
			// geometric one, so it is decided under the slab lock.
			s.Mu.Lock()
			if s.Geometry() != g {
				s.Mu.Unlock()
				continue
			}
			oldIdx := s.OldBlockIndex(addr)
			s.Mu.Unlock()
			if oldIdx >= 0 {
				return t.freeOld(owner, s, oldIdx)
			}
		}
		idx := g.BlockIndex(s.Base, addr)
		if idx < 0 {
			return alloc.ErrBadAddress
		}
		tc := t.cache(g.Class)
		if tc.Full() {
			// Bypass: return directly to the slab.
			if !owner.freeBypass(t.ctx, s, idx, false, g) {
				continue
			}
			return nil
		}
		// Persist the free, then cache the block in this thread's tcache.
		if t.h.useWAL {
			owner.res.Acquire(t.ctx)
		}
		s.Mu.Lock()
		if s.Geometry() != g {
			s.Mu.Unlock()
			if t.h.useWAL {
				owner.res.Release(t.ctx)
			}
			continue
		}
		if t.h.useWAL {
			owner.wal.Append(t.ctx, walog.Entry{Op: walog.OpFreeBit, Addr: s.Base, Aux: uint64(idx), Aux2: uint32(g.Class)})
		}
		s.CommitFreeToCache(t.ctx, idx, t.h.persistSmall)
		if s.Usage() < t.h.opts.SU {
			owner.noteCandidate(s)
		}
		s.Mu.Unlock()
		if t.h.useWAL {
			owner.res.Release(t.ctx)
		}
		tc.Push(owner.tcacheStripeGeom(g, idx), tcache.Block{Slab: s, Idx: idx})
		return nil
	}
}

func (t *Thread) freeOld(owner *arena, s *slab.Slab, oldIdx int) error {
	owner.res.Acquire(t.ctx)
	defer owner.res.Release(t.ctx)
	s.Mu.Lock()
	done, err := s.FreeOldBlock(t.ctx, oldIdx, t.h.persistSmall)
	if err == nil && s.Usage() < t.h.opts.SU {
		owner.noteCandidate(s)
	}
	hasFree := err == nil && s.FreeCount() > 0
	s.Mu.Unlock()
	if err != nil {
		return err
	}
	if done {
		// Fully demoted to a regular slab: it may morph again.
		owner.lruTouch(s)
	}
	if hasFree && !owner.onFreelist(s) {
		owner.freelistPush(s)
	}
	return nil
}

func (t *Thread) freeLarge(addr pmem.PAddr) error {
	h := t.h
	// A lease-map hit routes the free back to its shard; a miss (including
	// shard sub-allocations from before a crash, rebuilt as ordinary
	// extents) falls through to the global allocator.
	if h.shards != nil {
		if handled, err := h.shards.Free(t.ctx, addr); handled {
			if err != nil {
				return alloc.ErrBadAddress
			}
			return nil
		}
	}
	h.large.Res.Acquire(t.ctx)
	defer h.large.Res.Release(t.ctx)
	if err := h.large.Free(t.ctx, addr); err != nil {
		return alloc.ErrBadAddress
	}
	return nil
}

// MallocTo atomically allocates and publishes the result into the
// persistent pointer slot (the paper's nvalloc_malloc_to): in the LOG
// variant a WAL record makes the pair {slot, block} recoverable; in the
// GC variant reachability from the slot is what keeps the block alive.
func (t *Thread) MallocTo(slot pmem.PAddr, size uint64) (pmem.PAddr, error) {
	addr, err := t.Malloc(size)
	if err != nil {
		return pmem.Null, err
	}
	if t.h.useWAL {
		a := t.arena
		a.res.Acquire(t.ctx)
		a.wal.Append(t.ctx, walog.Entry{
			Op: walog.OpMallocTo, Addr: slot, Aux: uint64(addr), Aux2: uint32(size),
		})
		a.res.Release(t.ctx)
	}
	t.ctx.PersistU64(pmem.CatOther, slot, uint64(addr))
	t.ctx.Fence()
	return addr, nil
}

// FreeFrom atomically frees the block referenced by the persistent slot
// and clears the slot.
func (t *Thread) FreeFrom(slot pmem.PAddr) error {
	addr := pmem.PAddr(t.h.dev.ReadU64(slot))
	if addr == pmem.Null {
		return alloc.ErrBadAddress
	}
	if t.h.useWAL {
		a := t.arena
		a.res.Acquire(t.ctx)
		a.wal.Append(t.ctx, walog.Entry{Op: walog.OpFreeFrom, Addr: slot, Aux: uint64(addr)})
		a.res.Release(t.ctx)
	}
	t.ctx.PersistU64(pmem.CatOther, slot, 0)
	t.ctx.Fence()
	return t.Free(addr)
}

// Close drains the thread's tcaches back to their slabs and merges its
// statistics into the device.
func (t *Thread) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, tc := range t.caches {
		if tc == nil {
			continue
		}
		for _, b := range tc.Drain() {
			s := b.Slab.(*slab.Slab)
			t.h.arenas[s.Owner].freeBypass(t.ctx, s, b.Idx, true, nil)
		}
	}
	t.h.threadsMu.Lock()
	t.arena.threads--
	t.h.threadsMu.Unlock()
	t.ctx.Merge()
}
