// Package core assembles NVAlloc from its substrates: per-core arenas
// with per-class slab freelists and an LRU list of morph candidates,
// per-thread interleaved tcaches, per-arena write-ahead logs, the global
// large allocator with log-structured bookkeeping, slab morphing, and
// the two consistency variants of the paper — NVAlloc-LOG (WAL-based)
// and NVAlloc-GC (post-crash conservative garbage collection).
package core

import (
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"nvalloc/internal/alloc"
	"nvalloc/internal/blog"
	"nvalloc/internal/extent"
	"nvalloc/internal/pagemap"
	"nvalloc/internal/pmem"
	"nvalloc/internal/slab"
	"nvalloc/internal/walog"
)

// Variant selects the crash-consistency model.
type Variant int

// Consistency variants.
const (
	// LOG is NVAlloc-LOG: every metadata update goes through a WAL and is
	// flushed eagerly (strongly consistent).
	LOG Variant = iota
	// GC is NVAlloc-GC: the small-allocation path persists nothing;
	// recovery runs a conservative GC from the root slots (weakly
	// consistent, fastest runtime).
	GC
	// IC is NVAlloc-IC, the paper's future-work variant using internal
	// collection: bitmap updates are persisted eagerly (no WAL), and the
	// application resolves crash-time leaks by iterating Heap.Objects —
	// the PMDK POBJ_FIRST/POBJ_NEXT model.
	IC
)

func (v Variant) String() string {
	switch v {
	case GC:
		return "NVAlloc-GC"
	case IC:
		return "NVAlloc-IC"
	default:
		return "NVAlloc-LOG"
	}
}

// Options configures a heap. The zero value is completed by
// (&Options{}).withDefaults(); feature toggles exist so the Figure 11
// ablations (Base, +Interleaved, +Log) can be built from the same code.
type Options struct {
	Variant Variant
	// Arenas is the number of per-core arenas (the paper binds one arena
	// per CPU core on a 40-core machine). Default 16.
	Arenas int
	// Stripes is the interleaved-mapping stripe count (paper default 6).
	Stripes int
	// InterleaveBitmap applies interleaved mapping to slab bitmaps.
	InterleaveBitmap bool
	// InterleaveTcache splits tcaches into per-stripe sub-tcaches.
	InterleaveTcache bool
	// InterleaveWAL applies interleaved mapping to WAL entries.
	InterleaveWAL bool
	// LogBookkeeping uses the log-structured bookkeeping log for large
	// allocations; false falls back to classic in-place chunk headers.
	LogBookkeeping bool
	// Morphing enables slab morphing.
	Morphing bool
	// SU is the slab space-utilization threshold below which a slab may
	// morph (paper default 0.20).
	SU float64
	// TcacheCap is the per-class tcache capacity in blocks.
	TcacheCap int
	// WALEntries is the per-arena WAL ring capacity.
	WALEntries int
	// BlogGC enables the bookkeeping log's garbage collection.
	BlogGC bool
	// BlogGCThreshold overrides the active-chain byte size that triggers
	// slow GC (0 = the log's default of 3/4 of its region; the paper's
	// Usage_pmem is a small fraction of the heap).
	BlogGCThreshold uint64
	// FirstFitExtents switches the large allocator to address-ordered
	// first fit (ablation).
	FirstFitExtents bool
	// NoExtentCache disables the arena-local slab-extent caches and the
	// sharded large-allocation pools, restoring the PR 2 behavior of one
	// global critical section per extent operation (contention baseline).
	NoExtentCache bool
	// LargeShards is the number of address-partitioned large-allocation
	// pools (default 8). Ignored when NoExtentCache is set.
	LargeShards int
	// BookShards is the number of independent bookkeeping-log shards
	// (default: one per arena). Ignored with in-place bookkeeping.
	BookShards int
}

// DefaultOptions returns the paper's configuration for a variant.
func DefaultOptions(v Variant) Options {
	return Options{
		Variant:          v,
		Arenas:           16,
		Stripes:          6,
		InterleaveBitmap: true,
		InterleaveTcache: true,
		InterleaveWAL:    true,
		LogBookkeeping:   true,
		Morphing:         true,
		SU:               0.20,
		TcacheCap:        24,
		WALEntries:       1024,
		BlogGC:           true,
	}
}

func (o Options) withDefaults() Options {
	if o.Arenas <= 0 {
		o.Arenas = 16
	}
	if o.Stripes <= 0 {
		o.Stripes = 6
	}
	if o.SU <= 0 {
		o.SU = 0.20
	}
	if o.TcacheCap <= 0 {
		o.TcacheCap = 24
	}
	if o.WALEntries <= 0 {
		o.WALEntries = 1024
	}
	if o.LargeShards <= 0 {
		o.LargeShards = 8
	}
	if o.BookShards <= 0 {
		o.BookShards = o.Arenas
	}
	return o
}

// Superblock layout (at device page 1; page 0 is the null guard).
const (
	superBase = pmem.PAddr(4096)

	sbMagic      = 0
	sbVersion    = 8
	sbState      = 16
	sbArenas     = 24
	sbStripes    = 32
	sbVariant    = 40
	sbHeapBase   = 48
	sbBreak      = 56 // the heap break cell itself
	sbBlogBase   = 64
	sbBlogSize   = 72
	sbWALBase    = 80
	sbWALEnts    = 88
	sbBookMode   = 96
	sbWALStripes = 104 // stripe count used by WAL + blog entry layout
	sbBookShards = 112 // bookkeeping-log shard count
	sbChecksum   = 120 // CRC-32C over [0,120) with state and break zeroed
	sbRoots      = 128 // alloc.NumRootSlots * 8 bytes

	superMagic   = 0x4E56414C4C4F4321 // "NVALLOC!"
	superVersion = 3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// superCRC computes the superblock checksum: CRC-32C over the first 120
// bytes of the superblock with the run-state word [16,24) and the heap
// break [56,64) zeroed. Both change at runtime without a checksum
// update — the state word carries its own seal (pmem.SealU64) and the
// break self-heals in extent.Rebuild.
func superCRC(dev pmem.Dev) uint32 {
	var buf [sbChecksum]byte
	copy(buf[:], dev.Bytes(superBase, sbChecksum))
	for i := sbState; i < sbState+8; i++ {
		buf[i] = 0
	}
	for i := sbBreak; i < sbBreak+8; i++ {
		buf[i] = 0
	}
	return crc32.Checksum(buf[:], crcTable)
}

// Heap run-state values (the paper's per-arena flag, kept globally plus
// per arena).
const (
	stateFresh    = 0
	stateRunning  = 1
	stateShutdown = 2
	stateRecovery = 3
	// stateClosing: Close has begun checkpointing WALs. Every operation
	// acknowledged before Close is already durably applied, but the
	// arena-by-arena checkpoints destroy cross-arena superseding
	// witnesses (a checkpointed OpMallocTo no longer shields another
	// arena's surviving OpFreeFrom for the same reused address), so a
	// crash in this window must recover WITHOUT replaying WALs.
	stateClosing = 4
)

// arenaFlagsBase: per-arena run-state flags live in the superblock page.
const arenaFlagsBase = superBase + 1024

// Heap is an NVAlloc heap instance.
type Heap struct {
	dev  pmem.Dev
	mem  pmem.Mem // dev's concrete image view, for dispatch-free hot paths
	opts Options

	bitmapStripes int // 1 when bitmap interleaving is off
	tcacheStripes int
	walStripes    int
	persistSmall  bool // LOG and IC variants flush small metadata
	useWAL        bool // LOG variant only
	suMille       int  // opts.SU quantized to per-mille for the hot paths

	arenas []*arena
	large  *extent.Allocator
	book   extent.Bookkeeper
	blog   *blog.Sharded // non-nil iff LogBookkeeping
	// shards are the address-partitioned large-allocation pools (nil when
	// NoExtentCache is set); requests up to extent.MaxShardAlloc route
	// through them instead of the global allocator lock.
	shards *extent.Shards

	// slabs maps slab base addresses to vslabs through a lock-free
	// two-level page map: Free resolves an address to its slab with two
	// atomic loads and no global lock. Writers (newSlab/releaseSlab)
	// publish fully-constructed slabs with an atomic store.
	slabs *pagemap.Map[slab.Slab]

	threadsMu sync.Mutex
	nextOwner int
	closed    bool

	heapBase pmem.PAddr
}

var _ alloc.Heap = (*Heap)(nil)

// Create formats the device as a fresh NVAlloc heap.
func Create(dev pmem.Dev, opts Options) (*Heap, error) {
	opts = opts.withDefaults()
	h, err := layout(dev, opts)
	if err != nil {
		return nil, err
	}
	c := dev.NewCtx()
	defer c.Merge()

	// Persist the superblock.
	w := func(off pmem.PAddr, v uint64) { dev.WriteU64(superBase+off, v) }
	w(sbMagic, superMagic)
	w(sbVersion, superVersion)
	w(sbState, pmem.SealU64(stateRunning))
	w(sbArenas, uint64(opts.Arenas))
	w(sbStripes, uint64(opts.Stripes))
	w(sbVariant, uint64(opts.Variant))
	w(sbHeapBase, uint64(h.heapBase))
	w(sbBreak, uint64(h.heapBase))
	bookMode := uint64(0)
	if opts.LogBookkeeping {
		bookMode = 1
	}
	w(sbBookMode, bookMode)
	w(sbBookShards, uint64(opts.BookShards))
	dev.Zero(superBase+sbRoots, alloc.NumRootSlots*8)

	h.initVolatile(dev, opts)
	w(sbWALStripes, uint64(h.walStripes))
	w(sbChecksum, uint64(superCRC(dev)))
	c.Flush(pmem.CatMeta, superBase, 4096)
	c.Fence()
	// Fresh persistent structures.
	if opts.LogBookkeeping {
		h.blog = blog.NewSharded(dev.Mem(), h.blogBase(), h.blogSize(), h.walStripesForBlog(), opts.BookShards)
		if !opts.BlogGC {
			h.blog.SetSlowGCThreshold(^uint64(0) >> 1)
		} else if opts.BlogGCThreshold > 0 {
			h.blog.SetSlowGCThreshold(opts.BlogGCThreshold)
		}
		h.book = h.blog
	} else {
		h.book = extent.NewInPlace(dev, h.heapBase, superBase+sbBreak)
	}
	h.large = extent.New(dev, h.book, extent.Config{
		HeapBase:  h.heapBase,
		HeapEnd:   pmem.PAddr(dev.Size()),
		BreakPtr:  superBase + sbBreak,
		MetaBytes: uint64(h.heapBase),
	})
	h.large.FirstFit = opts.FirstFitExtents
	h.initExtentLayer()
	for i := range h.arenas {
		wal, err := h.newWAL(i, true)
		if err != nil {
			return nil, err
		}
		h.arenas[i].wal = wal
		c.PersistU64(pmem.CatMeta, arenaFlagsBase+pmem.PAddr(i*8), stateRunning)
	}
	return h, nil
}

// layout computes region addresses for a fresh heap and records them in
// the (not yet flushed) superblock.
func layout(dev pmem.Dev, opts Options) (*Heap, error) {
	h := &Heap{dev: dev, mem: dev.Mem(), opts: opts}
	walBytes := uint64(opts.Arenas) * uint64(walog.RegionSize(opts.WALEntries, opts.Stripes))
	walBase := uint64(8192)
	blogBase := (walBase + walBytes + 4095) &^ 4095
	blogSize := blog.ShardedRegionSize(dev.Size(), opts.BookShards)
	heapBase := (blogBase + blogSize + extent.ChunkSize - 1) &^ (extent.ChunkSize - 1)
	if heapBase+extent.ChunkSize > dev.Size() {
		return nil, fmt.Errorf("core: device too small (%d bytes) for metadata regions", dev.Size())
	}
	dev.WriteU64(superBase+sbWALBase, walBase)
	dev.WriteU64(superBase+sbWALEnts, uint64(opts.WALEntries))
	dev.WriteU64(superBase+sbBlogBase, blogBase)
	dev.WriteU64(superBase+sbBlogSize, blogSize)
	h.heapBase = pmem.PAddr(heapBase)
	return h, nil
}

func (h *Heap) blogBase() pmem.PAddr { return pmem.PAddr(h.dev.ReadU64(superBase + sbBlogBase)) }
func (h *Heap) blogSize() uint64     { return h.dev.ReadU64(superBase + sbBlogSize) }
func (h *Heap) walBase() pmem.PAddr  { return pmem.PAddr(h.dev.ReadU64(superBase + sbWALBase)) }

// walStripesForBlog: the bookkeeping log uses the same stripe setting as
// WALs (interleaved mapping toggle applies to both, per Table 2).
func (h *Heap) walStripesForBlog() int { return h.walStripes }

func (h *Heap) initVolatile(dev pmem.Dev, opts Options) {
	h.bitmapStripes = 1
	if opts.InterleaveBitmap {
		h.bitmapStripes = opts.Stripes
	}
	h.tcacheStripes = 1
	if opts.InterleaveTcache {
		h.tcacheStripes = opts.Stripes
	}
	h.walStripes = 1
	if opts.InterleaveWAL {
		h.walStripes = opts.Stripes
	}
	h.persistSmall = opts.Variant == LOG || opts.Variant == IC
	h.useWAL = opts.Variant == LOG
	// The morph-candidate threshold compares integers on the hot free
	// paths; SU is quantized to per-mille (0.1% steps) once here.
	h.suMille = int(math.Round(opts.SU * 1000))
	h.slabs = pagemap.New[slab.Slab](dev.Size(), slab.Size)
	h.arenas = make([]*arena, opts.Arenas)
	for i := range h.arenas {
		h.arenas[i] = newArena(h, i)
	}
}

func (h *Heap) newWAL(i int, fresh bool) (*walog.Log, error) {
	base := h.walBase() + pmem.PAddr(i*walog.RegionSize(h.opts.WALEntries, h.opts.Stripes))
	if fresh {
		h.dev.Zero(base, walog.RegionSize(h.opts.WALEntries, h.opts.Stripes))
	}
	return walog.New(h.mem, base, h.opts.WALEntries, h.walStripes)
}

// Device returns the underlying device.
func (h *Heap) Device() pmem.Dev { return h.dev }

// Options returns the heap's effective options.
func (h *Heap) Options() Options { return h.opts }

// RootSlot returns the persistent address of root pointer slot i.
func (h *Heap) RootSlot(i int) pmem.PAddr {
	if i < 0 || i >= alloc.NumRootSlots {
		panic("core: root slot out of range")
	}
	return superBase + sbRoots + pmem.PAddr(i*8)
}

// Used returns committed persistent memory (see extent.Allocator.Used).
// Lock-only acquisition: reading a counter is not an allocator operation
// and must neither allocate a throwaway context nor perturb virtual time.
func (h *Heap) Used() uint64 {
	h.large.Res.Lock()
	defer h.large.Res.Unlock()
	return h.large.Used()
}

// Peak returns the high-water mark of Used.
func (h *Heap) Peak() uint64 {
	h.large.Res.Lock()
	defer h.large.Res.Unlock()
	return h.large.Peak()
}

// ResetPeak restarts peak tracking.
func (h *Heap) ResetPeak() {
	h.large.Res.Lock()
	defer h.large.Res.Unlock()
	h.large.ResetPeak()
}

// initExtentLayer attaches the arena-local slab-extent caches and the
// sharded large-allocation pools to a heap whose large allocator is
// ready. Called by both Create and Open (after recovery has rebuilt the
// extent tree, before threads run).
func (h *Heap) initExtentLayer() {
	if h.opts.NoExtentCache {
		return
	}
	for _, a := range h.arenas {
		a.cache = extent.NewSlabCache(h.large, slab.Size)
	}
	h.shards = extent.NewShards(h.large, h.dev.Size(), h.opts.LargeShards)
}

// flushExtentCaches returns every sibling arena's cached extents to the
// global allocator — exhaustion back-pressure, so a heap that still has
// free space spread across caches cannot report OOM. except's own cache
// has already been tried by the caller. Must not be called while holding
// large.Res (Flush acquires it). Reports whether anything was flushed.
func (h *Heap) flushExtentCaches(c *pmem.Ctx, except *arena) bool {
	flushed := false
	for _, a := range h.arenas {
		if a == except || a.cache == nil {
			continue
		}
		if a.cache.Len() > 0 {
			a.cache.Flush(c)
			flushed = true
		}
	}
	return flushed
}

// Blog exposes the sharded bookkeeping log (nil when in-place
// bookkeeping is configured); used by GC-overhead experiments.
func (h *Heap) Blog() *blog.Sharded { return h.blog }

// BlockAllocated reports whether addr holds a live small block: its slab
// still exists and the block's bit (or, on a morphed slab, its old-class
// index entry) is set. It is the read-only probe crash tests use to ask
// whether a free survived recovery — unlike Free, it never mutates and
// is safe on already-freed addresses.
func (h *Heap) BlockAllocated(addr pmem.PAddr) bool {
	s := h.slabs.Lookup(addr &^ (slab.Size - 1))
	if s == nil {
		return false
	}
	s.Mu.Lock()
	defer s.Mu.Unlock()
	if s.OldBlockIndex(addr) >= 0 {
		return true
	}
	idx := s.BlockIndex(addr)
	return idx >= 0 && s.BlockAllocated(idx)
}

// LeaseOverhead returns the bytes of activated-but-idle space parked in
// arena slab caches and shard-pool leases (see extent.LeaseOverhead).
func (h *Heap) LeaseOverhead() uint64 { return h.large.LeaseOverhead() }

// LargeStats returns split/coalesce/grow counters.
func (h *Heap) LargeStats() (splits, coalesces, grows uint64) {
	return h.large.Splits, h.large.Coalesces, h.large.Grows
}

// MorphStats returns total morphs and refused candidates across arenas.
func (h *Heap) MorphStats() (morphs, refusals uint64) {
	for _, a := range h.arenas {
		morphs += a.morphs
		refusals += a.morphRefusals
	}
	return
}

// SlabUtilization buckets live slabs by occupancy — <30%, 30-70%, >70% —
// and returns the slab counts per bucket (Figure 15(b)'s breakdown).
func (h *Heap) SlabUtilization() (buckets [3]int) {
	h.slabs.Range(func(_ pmem.PAddr, s *slab.Slab) bool {
		s.Mu.Lock()
		u := s.Usage()
		s.Mu.Unlock()
		switch {
		case u < 0.30:
			buckets[0]++
		case u < 0.70:
			buckets[1]++
		default:
			buckets[2]++
		}
		return true
	})
	return
}

// Close performs a normal shutdown: drains nothing (threads must be
// closed by their owners first), checkpoints WALs, syncs GC-variant
// bitmaps, and persists the shutdown flag.
func (h *Heap) Close() error {
	h.threadsMu.Lock()
	defer h.threadsMu.Unlock()
	if h.closed {
		return alloc.ErrClosed
	}
	h.closed = true
	c := h.dev.NewCtx()
	defer c.Merge()

	// Depot magazines hold volatile-reserved blocks; return the
	// reservations to their slabs before any bitmap sync.
	for _, a := range h.arenas {
		a.drainDepots(c)
	}
	if !h.persistSmall {
		// GC variant: bitmaps were never flushed at runtime; persist the
		// volatile truth now so normal-shutdown recovery is cheap.
		h.slabs.Range(func(_ pmem.PAddr, s *slab.Slab) bool {
			s.Mu.Lock()
			s.SyncBitmap(c)
			s.Mu.Unlock()
			return true
		})
	}
	// Seal "no operation is in flight" before the first checkpoint: WAL
	// rings are truncated one arena at a time, and replaying the survivors
	// of a partial truncation can free a block whose republication witness
	// sat in an already-truncated ring (see stateClosing).
	c.PersistU64(pmem.CatMeta, superBase+sbState, pmem.SealU64(stateClosing))
	c.Fence()
	for i, a := range h.arenas {
		if a.wal != nil {
			a.res.Acquire(c)
			a.wal.Checkpoint(c)
			a.res.Release(c)
		}
		c.PersistU64(pmem.CatMeta, arenaFlagsBase+pmem.PAddr(i*8), stateShutdown)
	}
	c.PersistU64(pmem.CatMeta, superBase+sbState, pmem.SealU64(stateShutdown))
	c.Fence()
	return nil
}

// ArenaLoads returns each arena resource's accumulated virtual load in
// microseconds (diagnostics).
func (h *Heap) ArenaLoads() []int64 {
	out := make([]int64, len(h.arenas))
	for i, a := range h.arenas {
		out[i] = a.res.Load() / 1000
	}
	return out
}

// LargeLoad returns the large allocator lock's accumulated load (ns).
func (h *Heap) LargeLoad() int64 { return h.large.Res.Load() }

// ResourceLoad is one lock's contention record: total virtual time spent
// inside its critical sections (LoadNS), total virtual time threads spent
// waiting for it (WaitNS), and how many times it was acquired.
type ResourceLoad struct {
	Name     string
	LoadNS   int64
	WaitNS   int64
	Acquires uint64
}

// Contention returns the per-resource load table for the heap: the
// global large-allocator lock, the bookkeeper lock, each shard pool, and
// each arena (the contention-breakdown report of the PR 3 acceptance
// criteria).
func (h *Heap) Contention() []ResourceLoad {
	row := func(name string, r *pmem.Resource) ResourceLoad {
		return ResourceLoad{Name: name, LoadNS: r.Load(), WaitNS: r.WaitNS(), Acquires: r.Acquires()}
	}
	out := []ResourceLoad{
		row("large", &h.large.Res),
	}
	if h.blog != nil {
		// The sharded log serializes itself per shard; the "book" row
		// aggregates all shards (comparable to the old single BookRes)
		// and each shard also reports its own row.
		agg := ResourceLoad{Name: "book"}
		for i := 0; i < h.blog.NumShards(); i++ {
			r := h.blog.Res(i)
			agg.LoadNS += r.Load()
			agg.WaitNS += r.WaitNS()
			agg.Acquires += r.Acquires()
		}
		out = append(out, agg)
		for i := 0; i < h.blog.NumShards(); i++ {
			out = append(out, row(fmt.Sprintf("book%d", i), h.blog.Res(i)))
		}
	} else {
		out = append(out, row("book", &h.large.BookRes))
	}
	if h.shards != nil {
		for i := 0; i < h.shards.NumPools(); i++ {
			out = append(out, row(fmt.Sprintf("shard%d", i), &h.shards.Pool(i).Res))
		}
	}
	for i, a := range h.arenas {
		out = append(out, row(fmt.Sprintf("arena%d", i), &a.res))
	}
	return out
}

// SlabCreates returns the number of slabs formatted since startup,
// summed over arenas — the denominator of the "global-lock acquisitions
// per slab refill" amortization check.
func (h *Heap) SlabCreates() uint64 {
	var n uint64
	for _, a := range h.arenas {
		n += a.slabsCreated
	}
	return n
}

// CacheStats aggregates the arena slab-cache counters: cache hits,
// batched refills, overflow/back-pressure flushes, and total extents
// carved through the batched path.
func (h *Heap) CacheStats() (hits, refills, flushes, carved uint64) {
	for _, a := range h.arenas {
		if a.cache == nil {
			continue
		}
		ch, cr, cf, cc := a.cache.Stats()
		hits, refills, flushes, carved = hits+ch, refills+cr, flushes+cf, carved+cc
	}
	return
}
