package slab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvalloc/internal/pmem"
	"nvalloc/internal/sizeclass"
)

const slabBase = pmem.PAddr(Size) // second 64K of the device

func newSlab(t *testing.T, class, stripes int) (*pmem.Device, *pmem.Ctx, *Slab) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 4 * Size, Strict: true})
	c := dev.NewCtx()
	s := Format(dev.Mem(), c, slabBase, class, stripes, true)
	return dev, c, s
}

func TestGeometrySanity(t *testing.T) {
	for class := 0; class < sizeclass.NumClasses(); class++ {
		for _, stripes := range []int{1, 4, 6, 8} {
			blocks, bitmapBase, dataOff := geometry(class, stripes)
			if blocks <= 0 {
				t.Fatalf("class %d: no blocks", class)
			}
			bsize := int(sizeclass.Size(class))
			if int(dataOff)+blocks*bsize > Size {
				t.Fatalf("class %d stripes %d: blocks overflow the slab", class, stripes)
			}
			if bitmapBase < pmem.LineSize || dataOff <= bitmapBase {
				t.Fatalf("class %d: bad layout bm=%d data=%d", class, bitmapBase, dataOff)
			}
			// Space efficiency: for small classes the metadata overhead
			// must stay low.
			if bsize <= 256 && float64(dataOff) > 0.08*Size {
				t.Fatalf("class %d (%dB): metadata overhead %d too large", class, bsize, dataOff)
			}
		}
	}
}

func TestFormatAllocFree(t *testing.T) {
	_, c, s := newSlab(t, sizeclass.Class(64), 6)
	if s.Allocated != 0 || s.FreeCount() != s.Blocks {
		t.Fatal("fresh slab must be empty")
	}
	s.AllocBlock(c, 0, true)
	s.AllocBlock(c, 5, true)
	if s.Allocated != 2 {
		t.Fatal("alloc count wrong")
	}
	s.FreeBlock(c, 0, true)
	if s.Allocated != 1 || s.bitTest(0) || !s.bitTest(5) {
		t.Fatal("free bookkeeping wrong")
	}
}

func TestDoubleAllocAndFreePanic(t *testing.T) {
	_, c, s := newSlab(t, 0, 6)
	s.AllocBlock(c, 3, true)
	for name, fn := range map[string]func(){
		"double alloc": func() { s.AllocBlock(c, 3, true) },
		"double free":  func() { s.FreeBlock(c, 4, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBlockAddrIndexRoundtrip(t *testing.T) {
	_, _, s := newSlab(t, sizeclass.Class(100), 6)
	f := func(raw uint16) bool {
		idx := int(raw) % s.Blocks
		return s.BlockIndex(s.BlockAddr(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if s.BlockIndex(s.Base) != -1 || s.BlockIndex(s.BlockAddr(0)+1) != -1 {
		t.Fatal("non-block addresses must map to -1")
	}
}

func TestConsecutiveAllocsAvoidReflush(t *testing.T) {
	reflushes := func(stripes int) uint64 {
		dev := pmem.New(pmem.Config{Size: 4 * Size})
		c := dev.NewCtx()
		s := Format(dev.Mem(), c, slabBase, sizeclass.Class(64), stripes, true)
		start := c.Local().Reflushes
		for i := 0; i < 64; i++ {
			s.AllocBlock(c, i, true)
		}
		return c.Local().Reflushes - start
	}
	if r := reflushes(6); r != 0 {
		t.Fatalf("interleaved bitmap reflushed %d times", r)
	}
	if r := reflushes(1); r < 50 {
		t.Fatalf("sequential bitmap should reflush nearly every alloc, got %d", r)
	}
}

func TestTakeFree(t *testing.T) {
	_, c, s := newSlab(t, sizeclass.Class(128), 6)
	got := s.Reserve(10, nil)
	if len(got) != 10 || s.Reserved != 10 {
		t.Fatalf("Reserve returned %d blocks", len(got))
	}
	for _, idx := range got {
		s.CommitAlloc(c, idx, true)
	}
	if s.Allocated != 10 || s.Reserved != 0 {
		t.Fatalf("commit bookkeeping wrong: a=%d r=%d", s.Allocated, s.Reserved)
	}
	seen := map[int]bool{}
	for _, idx := range got {
		if seen[idx] {
			t.Fatal("duplicate block from TakeFree")
		}
		seen[idx] = true
	}
	// Exhaustion: ask for more than remain.
	rest := s.Reserve(s.Blocks, nil)
	if len(rest) != s.Blocks-10 || s.FreeCount() != 0 {
		t.Fatalf("Reserve exhaustion wrong: %d", len(rest))
	}
	if more := s.Reserve(1, nil); len(more) != 0 {
		t.Fatal("full slab must yield no blocks")
	}
	// Unreserve returns blocks to the free pool.
	s.Unreserve(rest[0])
	if s.FreeCount() != 1 {
		t.Fatal("unreserve did not free")
	}
}

func TestLoadRebuildsVslab(t *testing.T) {
	dev, c, s := newSlab(t, sizeclass.Class(64), 6)
	want := map[int]bool{}
	for _, idx := range []int{0, 7, 13, 100, s.Blocks - 1} {
		s.AllocBlock(c, idx, true)
		want[idx] = true
	}
	dev.Crash()
	s2, err := Load(dev.Mem(), dev.NewCtx(), slabBase)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Class != s.Class || s2.Blocks != s.Blocks || s2.DataOff != s.DataOff {
		t.Fatal("reloaded geometry differs")
	}
	if s2.Allocated != len(want) {
		t.Fatalf("reloaded alloc count %d, want %d", s2.Allocated, len(want))
	}
	for idx := range want {
		if !s2.bitTest(idx) {
			t.Fatalf("bit %d lost", idx)
		}
	}
}

func TestLoadBadMagic(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 4 * Size})
	if _, err := Load(dev.Mem(), dev.NewCtx(), slabBase); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestMorphBasicSmallToLarge(t *testing.T) {
	dev, c, s := newSlab(t, sizeclass.Class(64), 6)
	// Allocate a few scattered blocks near the end (clear of the new
	// metadata region), emulating low occupancy.
	liveIdx := []int{s.Blocks - 1, s.Blocks - 10, s.Blocks - 33}
	for _, idx := range liveIdx {
		s.AllocBlock(c, idx, true)
	}
	oldAddrs := make([]pmem.PAddr, len(liveIdx))
	for i, idx := range liveIdx {
		oldAddrs[i] = s.BlockAddr(idx)
	}
	newClass := sizeclass.Class(256)
	if !s.CanMorphTo(newClass) {
		t.Fatal("slab should be morphable")
	}
	if err := s.MorphTo(c, newClass, true); err != nil {
		t.Fatal(err)
	}
	if s.Class != newClass || !s.IsSlabIn() || s.CntSlab != 3 {
		t.Fatalf("morph state wrong: class=%d cntSlab=%d", s.Class, s.CntSlab)
	}
	// Old blocks remain addressable and identified as old.
	for i, a := range oldAddrs {
		if got := s.OldBlockIndex(a); got != liveIdx[i] {
			t.Fatalf("old block %#x: index %d, want %d", a, got, liveIdx[i])
		}
	}
	// New blocks overlapping old live data must be marked allocated.
	for _, a := range oldAddrs {
		nb := int((int64(a) - int64(s.Base) - int64(s.DataOff)) / int64(s.BlockSize))
		if nb >= 0 && nb < s.Blocks && !s.bitTest(nb) {
			t.Fatalf("overlapped new block %d not allocated", nb)
		}
	}
	// Allocating from the morphed slab never returns overlapped space.
	taken := s.Reserve(s.Blocks, nil)
	for _, nb := range taken {
		lo := s.BlockAddr(nb)
		hi := lo + pmem.PAddr(s.BlockSize)
		for _, a := range oldAddrs {
			if a >= lo && a < hi {
				t.Fatalf("handed out block %d overlapping live old data", nb)
			}
		}
	}
	dev.Crash() // morph must be fully persistent
	s2, err := Load(dev.Mem(), dev.NewCtx(), slabBase)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Class != newClass || s2.CntSlab != 3 || s2.OldClass != sizeclass.Class(64) {
		t.Fatalf("morph lost in crash: %+v", s2)
	}
}

func TestMorphLargeToSmall(t *testing.T) {
	_, c, s := newSlab(t, sizeclass.Class(1024), 6)
	idx := s.Blocks - 2
	s.AllocBlock(c, idx, true)
	oldAddr := s.BlockAddr(idx)
	newClass := sizeclass.Class(64)
	if err := s.MorphTo(c, newClass, true); err != nil {
		t.Fatal(err)
	}
	// The 1024 B old block now spans many 64 B new blocks; all of them
	// must be unavailable.
	span := int(1024 / s.BlockSize)
	nb0 := int((int64(oldAddr) - int64(s.Base) - int64(s.DataOff)) / int64(s.BlockSize))
	cnt := 0
	for nb := nb0; nb < nb0+span+1 && nb < s.Blocks; nb++ {
		if nb >= 0 && s.bitTest(nb) {
			cnt++
		}
	}
	if cnt < span {
		t.Fatalf("only %d of ~%d overlapped blocks protected", cnt, span)
	}
	// Freeing the old block releases the overlapped new blocks.
	done, err := s.FreeOldBlock(c, idx, true)
	if err != nil || !done {
		t.Fatalf("FreeOldBlock: done=%v err=%v", done, err)
	}
	if s.IsSlabIn() || s.Allocated != 0 {
		t.Fatalf("slab_after should be fully free, allocated=%d", s.Allocated)
	}
}

func TestMorphRefusals(t *testing.T) {
	_, c, s := newSlab(t, sizeclass.Class(64), 6)
	// Block 0 lives at the data start, inside any plausible new header
	// region for a larger index table? Actually block 0 sits exactly at
	// DataOff; morphing to a class whose metadata needs more space than
	// DataOff must be refused.
	s.AllocBlock(c, 0, true)
	if s.CanMorphTo(sizeclass.Class(8)) {
		// The 8 B class has a much larger bitmap; its dataOff exceeds the
		// 64 B class's, so block 0 overlaps the new metadata.
		t.Fatal("morph over live data must be refused")
	}
	if s.CanMorphTo(s.Class) {
		t.Fatal("morph to the same class must be refused")
	}
	if err := s.MorphTo(c, sizeclass.Class(8), true); err == nil {
		t.Fatal("MorphTo must fail when CanMorphTo is false")
	}
	// Already-morphed slabs cannot morph again.
	s.FreeBlock(c, 0, true)
	if err := s.MorphTo(c, sizeclass.Class(256), true); err != nil {
		t.Fatal(err)
	}
	// Note: CntSlab == 0 because no live blocks, so it is a regular slab
	// immediately; but OldClass persists until demotion. For a slab with
	// zero live old blocks the morph yields CntSlab=0; treat as regular.
	if s.CanMorphTo(sizeclass.Class(512)) && s.OldClass >= 0 {
		t.Fatal("slab_in must not morph again")
	}
}

func TestFreeOldBlockUnknown(t *testing.T) {
	_, c, s := newSlab(t, sizeclass.Class(64), 6)
	s.AllocBlock(c, s.Blocks-1, true)
	if err := s.MorphTo(c, sizeclass.Class(256), true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FreeOldBlock(c, 1, true); err == nil {
		t.Fatal("freeing unknown old block must error")
	}
}

func TestMorphCrashUndoAtEachStep(t *testing.T) {
	// Crash after each flush during a morph; recovery must either undo
	// the morph entirely (flag 1/2) or land in the completed state.
	for cut := int64(1); cut < 20; cut++ {
		dev := pmem.New(pmem.Config{Size: 4 * Size, Strict: true})
		c := dev.NewCtx()
		s := Format(dev.Mem(), c, slabBase, sizeclass.Class(64), 6, true)
		liveIdx := []int{s.Blocks - 1, s.Blocks - 5}
		for _, idx := range liveIdx {
			s.AllocBlock(c, idx, true)
		}
		oldClass := s.Class
		dev.CrashAfterFlushes(cut)
		_ = s.MorphTo(c, sizeclass.Class(256), true)
		completed := !dev.Crashed()
		dev.Crash()
		s2, err := Load(dev.Mem(), dev.NewCtx(), slabBase)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if completed {
			if s2.Class != sizeclass.Class(256) || s2.CntSlab != 2 {
				t.Fatalf("cut=%d: completed morph not recovered: %+v", cut, s2)
			}
		} else if s2.Class == oldClass {
			// Undone: the original allocation state must be intact.
			if s2.Allocated != 2 || !s2.bitTest(liveIdx[0]) || !s2.bitTest(liveIdx[1]) {
				t.Fatalf("cut=%d: undo lost blocks: allocated=%d", cut, s2.Allocated)
			}
			if s2.OldClass >= 0 || dev.ReadU32(slabBase+hFlag) != 0 {
				t.Fatalf("cut=%d: undo left morph residue", cut)
			}
		} else {
			// Landed in the new class despite the cut: must be complete.
			if s2.CntSlab != 2 {
				t.Fatalf("cut=%d: torn morph visible: %+v", cut, s2)
			}
		}
	}
}

func TestMorphedSlabAllocFreeRandomized(t *testing.T) {
	dev, c, s := newSlab(t, sizeclass.Class(64), 6)
	rng := rand.New(rand.NewSource(11))
	liveIdx := []int{s.Blocks - 1, s.Blocks - 7, s.Blocks - 20}
	for _, idx := range liveIdx {
		s.AllocBlock(c, idx, true)
	}
	if err := s.MorphTo(c, sizeclass.Class(320), true); err != nil {
		t.Fatal(err)
	}
	held := map[int]bool{}
	for op := 0; op < 2000; op++ {
		if rng.Intn(2) == 0 {
			got := s.Reserve(1, nil)
			if len(got) == 1 {
				if held[got[0]] {
					t.Fatal("block handed out twice")
				}
				s.CommitAlloc(c, got[0], true)
				held[got[0]] = true
			}
		} else if len(held) > 0 {
			for idx := range held {
				s.FreeBlock(c, idx, true)
				delete(held, idx)
				break
			}
		}
	}
	// Invariant: allocated == held + overlapped-by-old
	overlapped := 0
	for nb := 0; nb < s.Blocks; nb++ {
		if s.cntBlock[nb] > 0 {
			overlapped++
		}
	}
	if s.Allocated != len(held)+overlapped {
		t.Fatalf("allocated=%d held=%d overlapped=%d", s.Allocated, len(held), overlapped)
	}
	// Crash + reload preserves everything.
	dev.Crash()
	s2, err := Load(dev.Mem(), dev.NewCtx(), slabBase)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Allocated != s.Allocated || s2.CntSlab != 3 {
		t.Fatalf("reload mismatch: %d vs %d", s2.Allocated, s.Allocated)
	}
	// Free old blocks one by one; last one demotes the slab.
	for i, idx := range liveIdx {
		done, err := s2.FreeOldBlock(c, idx, true)
		if err != nil {
			t.Fatal(err)
		}
		if (i == len(liveIdx)-1) != done {
			t.Fatalf("demotion at wrong point: i=%d done=%v", i, done)
		}
	}
	if s2.OldClass != -1 {
		t.Fatal("slab_after must clear old class")
	}
	// And the demotion is persistent.
	dev.Crash()
	s3, err := Load(dev.Mem(), dev.NewCtx(), slabBase)
	if err != nil {
		t.Fatal(err)
	}
	if s3.OldClass != -1 || s3.IsSlabIn() {
		t.Fatal("demotion lost in crash")
	}
}

func TestSecondMorphAfterDemotion(t *testing.T) {
	// slab_after (with an index-table hole) must be able to morph again.
	dev, c, s := newSlab(t, sizeclass.Class(64), 6)
	idx := s.Blocks - 1
	s.AllocBlock(c, idx, true)
	if err := s.MorphTo(c, sizeclass.Class(256), true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FreeOldBlock(c, idx, true); err != nil {
		t.Fatal(err)
	}
	// Now a regular 256 B slab with an idxCap hole; allocate one block
	// high and morph once more.
	s.AllocBlock(c, s.Blocks-1, true)
	if err := s.MorphTo(c, sizeclass.Class(512), true); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	s2, err := Load(dev.Mem(), dev.NewCtx(), slabBase)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Class != sizeclass.Class(512) || s2.CntSlab != 1 {
		t.Fatalf("second morph lost: %+v", s2)
	}
}

func TestGCVariantSkipsBitmapFlushes(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 4 * Size})
	c := dev.NewCtx()
	s := Format(dev.Mem(), c, slabBase, sizeclass.Class(64), 6, false)
	before := c.Local().Flushes
	for i := 0; i < 100; i++ {
		s.AllocBlock(c, i, false)
	}
	if c.Local().Flushes != before {
		t.Fatal("GC variant must not flush bitmap updates")
	}
}

func TestStripeAssignmentMatchesMapping(t *testing.T) {
	_, _, s := newSlab(t, sizeclass.Class(64), 6)
	for i := 0; i < 32; i++ {
		if s.Stripe(i) != i%6 {
			t.Fatalf("stripe of %d = %d", i, s.Stripe(i))
		}
	}
}

func TestSyncBitmapPersistsVolatileTruth(t *testing.T) {
	// GC-variant shutdown: runtime never flushed bitmap updates; SyncBitmap
	// must make the persistent image match the volatile one.
	dev := pmem.New(pmem.Config{Size: 4 * Size, Strict: true})
	c := dev.NewCtx()
	s := Format(dev.Mem(), c, slabBase, sizeclass.Class(64), 6, false)
	want := map[int]bool{}
	for _, idx := range []int{1, 5, 99, s.Blocks - 1} {
		s.AllocBlock(c, idx, false) // no flush
		want[idx] = true
	}
	s.SyncBitmap(c)
	dev.Crash()
	s2, err := Load(dev.Mem(), dev.NewCtx(), slabBase)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Allocated != len(want) {
		t.Fatalf("synced bitmap lost state: %d vs %d", s2.Allocated, len(want))
	}
	for idx := range want {
		if !s2.BlockAllocated(idx) {
			t.Fatalf("bit %d lost", idx)
		}
	}
}

func TestReservedBitsTracking(t *testing.T) {
	_, c, s := newSlab(t, sizeclass.Class(64), 6)
	got := s.Reserve(3, nil)
	for _, idx := range got {
		if !s.BlockReserved(idx) || !s.BlockAllocated(idx) {
			t.Fatalf("reserved block %d not tracked", idx)
		}
	}
	s.CommitAlloc(c, got[0], true)
	if s.BlockReserved(got[0]) {
		t.Fatal("committed block still marked reserved")
	}
	s.Unreserve(got[1])
	if s.BlockReserved(got[1]) || s.BlockAllocated(got[1]) {
		t.Fatal("unreserved block still marked")
	}
	s.CommitFreeToCache(c, got[0], true)
	if !s.BlockReserved(got[0]) {
		t.Fatal("freed-to-cache block must be reserved")
	}
}
